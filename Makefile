GO ?= go

.PHONY: all build vet test race bench bench-parallel bench-parallel-quick bench-wire bench-wire-quick fuzz gateway-smoke trace-smoke cluster-smoke health-smoke dag-smoke lab-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# Full benchmark sweep (figures + ablations + parallelism).
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate BENCH_parallel.json — the fleet/pipelining/ML parallelism record.
bench-parallel:
	$(GO) run ./cmd/benchparallel -o BENCH_parallel.json

# Fast variant for CI smoke: small transfers, single repetitions.
bench-parallel-quick:
	$(GO) run ./cmd/benchparallel -quick -o BENCH_parallel.json

# Regenerate BENCH_wire.json — the v1-vs-v2 framing and streaming-
# analysis record. The thresholds double as the regression gate: v2
# must carry at least 2x the RPC throughput of v1 over the saturated
# control link, and the streamed verdict must land within 10% of the
# acquisition window after instrument release.
bench-wire:
	$(GO) run ./cmd/benchparallel -o '' -wire-o BENCH_wire.json -min-wire-speedup 2 -max-stream-lag 0.1

# Fast variant for CI smoke, with looser thresholds for noisy runners.
bench-wire-quick:
	$(GO) run ./cmd/benchparallel -quick -o '' -wire-o BENCH_wire.json -min-wire-speedup 1.5 -max-stream-lag 0.25

# End-to-end gateway check: icegated on a self-deployed lab, two
# tenants' jobs through the HTTP API, leases verified clean.
gateway-smoke:
	$(GO) run ./cmd/icegated -smoke

# Tracing acceptance drill: a two-cell campaign job through the
# gateway, its trace fetched by ID and checked for a parent-complete
# span tree and a critical-path partition that sums to the wall time.
# The JSONL export lands in trace_smoke.jsonl for offline icetrace
# inspection (CI uploads it when the drill fails).
trace-smoke:
	$(GO) run ./cmd/icegated -trace-smoke -trace-export trace_smoke.jsonl

# Federation acceptance drill: two facility gateways over one lab, one
# killed mid-CV (kill -9 semantics); the peer must adopt the job from
# the replicated WAL within 10s and finish it exactly once (audit
# verified). State, replicated WALs, and the trace JSONL land in
# cluster_smoke_state/ (CI uploads them when the drill fails).
cluster-smoke:
	$(GO) run ./cmd/icegated -cluster-smoke

# Instrument-health acceptance drill: the simulated potentiostat
# wedges mid-acquisition; the breaker must quarantine it, fence the
# wedged run with an emergency abort, checkpoint-requeue the job,
# recover via a half-open probe and finish exactly once (audit
# verified, goroutine-leak checked). An unmeetable deadline_ms must be
# rejected at admission with 503 + Retry-After. State and the trace
# JSONL land in health_smoke_state/ (CI uploads them on failure).
health-smoke:
	$(GO) run ./cmd/icegated -health-smoke

# DAG-engine acceptance drill: the examples/dag specs against
# self-deployed labs. The cv_classic.json graph must reproduce the
# hardwired cv job's measurement digest and ML verdict bit for bit;
# resubmitting it must serve every cacheable node from the
# content-keyed cache with the instrument untouched; a kill -9
# mid-DAG must resume exactly once from the checkpoint journal; and
# the two-cell campaign round must analyze both branches. State and
# per-job journals land in dag_smoke_state/ (CI uploads them on
# failure).
dag-smoke:
	$(GO) run ./cmd/icegated -dag-smoke

# Declarative-registry acceptance drill: the
# examples/labs/microscopy.yaml config must bring up a multi-station
# facility (echem control agent + scan-steering STEM) from
# configuration alone, run a cv job and a scan job side by side on one
# scheduler with registry-derived health supervision, show exactly one
# acquisition per instrument in the per-station audit journals, and
# tear down with zero leaked leases or goroutines. Facility state
# lands in lab_smoke_state/ (CI uploads it on failure).
lab-smoke:
	$(GO) run ./cmd/icegated -lab-smoke

fuzz:
	for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' "$$pkg" | grep '^Fuzz' || true); do \
			$(GO) test -run "^$$target$$" -fuzz "^$$target$$" -fuzztime=10s "$$pkg" || exit 1; \
		done; \
	done
