module ice

go 1.22
