// Techniques_tour runs every electrochemical technique the simulated
// SP200 supports against one ferrocene cell and prints what each one
// measures — a guided tour of the instrument's capability surface
// (the paper demonstrates CV; the rest are its "other techniques"
// future work).
package main

import (
	"fmt"
	"log"

	"ice/internal/analysis"
	"ice/internal/echem"
	"ice/internal/labstate"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

func main() {
	cell := labstate.DefaultCell()
	if err := cell.AddSolution(echem.FerroceneSolution(), units.Milliliters(8)); err != nil {
		log.Fatal(err)
	}
	sink := potentiostat.NewMemSink()
	dev := potentiostat.NewSP200(cell, sink)
	must(dev.Initialize(potentiostat.DefaultSystemConfig()))
	must(dev.Connect())
	must(dev.LoadFirmware())

	run := func(tech potentiostat.Technique) []potentiostat.Record {
		must(dev.ConfigureTechnique(1, tech))
		must(dev.LoadTechnique(1))
		must(dev.StartChannel(1))
		recs, err := dev.Wait(1)
		if err != nil {
			log.Fatal(err)
		}
		return recs
	}

	// 1. Cyclic voltammetry: the paper's demonstration.
	fmt.Println("== CV — cyclic voltammetry ==")
	recs := run(potentiostat.DefaultCV())
	e, i := analysis.FromRecords(recs)
	s, err := analysis.AnalyzeCV(e, i, units.Celsius(25))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(" ", s)

	// 2. LSV: single sweep.
	fmt.Println("== LSV — linear sweep ==")
	recs = run(potentiostat.LSV{
		Ei: units.Volts(0.05), Ef: units.Volts(0.8),
		Rate: units.MillivoltsPerSecond(50), Points: 600,
	})
	peak := 0.0
	for _, r := range recs {
		if r.I > peak {
			peak = r.I
		}
	}
	fmt.Printf("  forward peak %v (no reverse wave)\n", units.Amperes(peak))

	// 3. CA + Anson: potential step, chronocoulometric D extraction.
	fmt.Println("== CA — chronoamperometry + Anson analysis ==")
	recs = run(potentiostat.CA{
		Rest: units.Volts(0.05), Step: units.Volts(0.9),
		RestSeconds: 0, StepSeconds: 5, Points: 2000,
	})
	times := make([]float64, len(recs))
	currents := make([]float64, len(recs))
	for k, r := range recs {
		times[k], currents[k] = r.T, r.I
	}
	anson, err := analysis.AnsonAnalysis(times, currents, 0.25,
		1, units.SquareCentimeters(0.07), units.Millimolar(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Anson D = %.3g m²/s (truth 2.4e-9, r² = %.5f)\n", anson.Diffusion, anson.R2)

	// 4. CP: constant current, Sand transition.
	fmt.Println("== CP — chronopotentiometry ==")
	iCP := units.Microamperes(60)
	tau := potentiostat.SandTransitionTime(1, units.SquareCentimeters(0.07),
		units.Millimolar(2), 2.4e-9, iCP)
	recs = run(potentiostat.CP{Current: iCP, Seconds: tau * 2, Points: 400})
	fmt.Printf("  Sand transition τ = %.2f s; potential rails after exhaustion (final Ewe %.1f V)\n",
		tau, recs[len(recs)-1].Ewe)

	// 5. OCV: rest potential.
	fmt.Println("== OCV — open-circuit monitoring ==")
	recs = run(potentiostat.OCV{Seconds: 10, Points: 100})
	fmt.Printf("  rest potential %.3f V (mostly reduced couple sits below E0' = 0.400 V)\n", recs[0].Ewe)

	// 6. SWV: differential pulse sharpness.
	fmt.Println("== SWV — square-wave voltammetry ==")
	swvPts, _, err := dev.RunSWV(2, potentiostat.SWV{StartV: 0.1, EndV: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	peakE, peakDelta := echem.SWVPeak(swvPts)
	fmt.Printf("  differential peak %.3f V, ΔIp = %v\n", peakE, units.Amperes(peakDelta))

	// 7. EIS: impedance spectrum.
	fmt.Println("== PEIS — impedance spectroscopy ==")
	spectrum, _, err := dev.RunEIS(2, potentiostat.DefaultEIS())
	if err != nil {
		log.Fatal(err)
	}
	eis, err := analysis.AnalyzeEIS(spectrum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(" ", eis)

	fmt.Printf("\n%d measurement files written to the sink: %v\n",
		len(sink.Names()), sink.Names())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
