// Remote_cv reproduces the paper's demonstration end to end: it
// deploys the full cross-facility ICE (ACL hub → gateway → site →
// K200) in-process, connects from the simulated DGX, and executes the
// electrochemical workflow tasks A–E — remote J-Kem steering (Fig. 5),
// the SP200 pipeline (Fig. 6) and retrieval plus analysis of the I-V
// profile over the data channel (Fig. 7). The I-V data is written to
// fig7.csv alongside the printed transcript.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ice/internal/analysis"
	"ice/internal/core"
	"ice/internal/netsim"
)

func main() {
	dir, err := os.MkdirTemp("", "ice-measurements-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Deploy the ICE (instant instrument pacing; pass e.g. 0.01 to
	// watch the syringe and sweep in scaled real time).
	dep, err := core.Deploy(dir, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	fmt.Println("ICE topology:")
	fmt.Print(dep.Network.Describe())
	if lat, err := dep.Network.PathLatency(netsim.HostDGX, netsim.HostControlAgent); err == nil {
		fmt.Printf("DGX → control agent one-way latency: %v\n\n", lat)
	}

	// Connect from the DGX at K200 (workflow task A happens inside the
	// notebook; this opens the transports).
	session, mount, err := dep.ConnectFrom(netsim.HostDGX)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	defer mount.Close()

	nb, outcome := core.BuildCVWorkflow(session, mount, core.PaperCVWorkflowConfig())
	if err := nb.Execute(context.Background()); err != nil {
		log.Fatalf("workflow failed: %v", err)
	}

	fmt.Println("notebook transcript:")
	for _, line := range nb.Transcript() {
		fmt.Println(" ", line)
	}
	fmt.Println("\ntask summary:")
	for _, line := range nb.Summary() {
		fmt.Println(" ", line)
	}

	// Fig. 7: the I-V profile as CSV + terminal plot.
	e, i := analysis.FromRecords(outcome.Records)
	f, err := os.Create("fig7.csv")
	if err != nil {
		log.Fatal(err)
	}
	if err := analysis.WriteCSV(f, e, i); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("\nI-V profile (%d points from %s, saved to fig7.csv):\n", len(e), outcome.FileName)
	fmt.Println(analysis.ASCIIPlot(e, i, 70, 20))
	fmt.Println(outcome.Summary)
	fmt.Printf("\ndata channel served %d bytes\n", dep.Agent.DataBytesServed())
}
