// Quickstart runs a single cyclic-voltammetry experiment on the local
// simulated workstation — no networking — and prints the analysed I-V
// profile. It is the smallest possible use of the library: build a
// cell, fill it, run the potentiostat pipeline, analyse the records.
package main

import (
	"fmt"
	"log"

	"ice/internal/analysis"
	"ice/internal/echem"
	"ice/internal/labstate"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

func main() {
	// The bench: a 20 mL cell filled with the paper's test solution.
	cell := labstate.DefaultCell()
	if err := cell.AddSolution(echem.FerroceneSolution(), units.Milliliters(8)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cell:", cell)

	// The SP200 pipeline (Fig. 6 steps 1–7), writing to memory.
	sink := potentiostat.NewMemSink()
	dev := potentiostat.NewSP200(cell, sink)
	steps := []struct {
		label string
		call  func() error
	}{
		{"initialize", func() error { return dev.Initialize(potentiostat.DefaultSystemConfig()) }},
		{"connect", dev.Connect},
		{"load firmware", dev.LoadFirmware},
		{"configure CV", func() error { return dev.ConfigureTechnique(1, potentiostat.DefaultCV()) }},
		{"load technique", func() error { return dev.LoadTechnique(1) }},
		{"start channel", func() error { return dev.StartChannel(1) }},
	}
	for _, s := range steps {
		if err := s.call(); err != nil {
			log.Fatalf("%s: %v", s.label, err)
		}
		fmt.Println("•", s.label, "OK")
	}
	recs, err := dev.Wait(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("• acquired %d points\n\n", len(recs))

	// Analyse and plot.
	e, i := analysis.FromRecords(recs)
	summary, err := analysis.AnalyzeCV(e, i, units.Celsius(25))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.ASCIIPlot(e, i, 70, 20))
	fmt.Println(summary)

	// Compare the peak against Randles–Ševčík theory.
	want := echem.RandlesSevcik(1, units.SquareCentimeters(0.07), units.Millimolar(2),
		units.MillivoltsPerSecond(50), 2.4e-9, units.Celsius(25))
	fmt.Printf("Randles–Ševčík prediction: %v (measured %v)\n", want, summary.AnodicPeak)
}
