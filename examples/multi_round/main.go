// Multi_round demonstrates the adaptive, multi-round experiment
// steering the ICE exists to enable: a remote controller sweeps the
// scan rate across rounds, retrieves each voltammogram over the data
// channel, and validates the chemistry in real time by regressing peak
// current against √(scan rate) (Randles–Ševčík) to recover the
// diffusion coefficient of ferrocene — all without touching the lab.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"ice/internal/analysis"
	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

func main() {
	dir, err := os.MkdirTemp("", "ice-multiround-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dep, err := core.Deploy(dir, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	session, mount, err := dep.ConnectFrom(netsim.HostDGX)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	defer mount.Close()

	// Round 0: fill the cell once.
	for _, step := range []func() (string, error){
		func() (string, error) { return session.SetRateSyringePump(1, 5) },
		func() (string, error) { return session.SetPortSyringePump(1, 8) },
		func() (string, error) { return session.WithdrawSyringePump(1, 6) },
		func() (string, error) { return session.SetPortSyringePump(1, 1) },
		func() (string, error) { return session.DispenseSyringePump(1, 6) },
	} {
		if _, err := step(); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := session.CallInitializeSP200API(core.PaperSystemParams()); err != nil {
		log.Fatal(err)
	}
	if _, err := session.CallConnectSP200(); err != nil {
		log.Fatal(err)
	}
	if _, err := session.CallLoadFirmwareSP200(); err != nil {
		log.Fatal(err)
	}

	ratesMV := []float64{20, 50, 100, 200, 400}
	rates := make([]units.ScanRate, 0, len(ratesMV))
	peaks := make([]units.Current, 0, len(ratesMV))
	fmt.Println("round  rate(mV/s)  anodic peak     ΔEp(mV)  E½(V)")
	for round, mv := range ratesMV {
		params := core.PaperCVParams()
		params.RateMVs = mv
		params.Points = 800
		if _, err := session.CallInitializeCVTechSP200(params); err != nil {
			log.Fatal(err)
		}
		if _, err := session.CallLoadTechniqueSP200(); err != nil {
			log.Fatal(err)
		}
		if _, err := session.CallStartChannelSP200(); err != nil {
			log.Fatal(err)
		}
		name, err := session.CallGetTechPathRslt()
		if err != nil {
			log.Fatal(err)
		}
		data, _, err := mount.WaitFor(name, 10*time.Millisecond, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		mf, err := potentiostat.ParseMPT(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		e, i := analysis.FromRecords(mf.Records)
		s, err := analysis.AnalyzeCV(e, i, units.Celsius(25))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %10.0f  %-14v %7.1f  %.4f\n",
			round+1, mv, s.AnodicPeak, s.PeakSeparation.Millivolts(), s.HalfWave.Volts())
		rates = append(rates, units.MillivoltsPerSecond(mv))
		peaks = append(peaks, s.AnodicPeak)
	}

	d, r2, err := analysis.RandlesSevcikFit(rates, peaks, 1,
		units.SquareCentimeters(0.07), units.Millimolar(2), units.Celsius(25))
	if err != nil {
		log.Fatal(err)
	}
	const trueD = 2.4e-9
	fmt.Printf("\nRandles–Ševčík regression: r² = %.5f\n", r2)
	fmt.Printf("recovered D = %.3g m²/s (simulator truth %.3g, %.1f%% off)\n",
		d, trueD, math.Abs(d-trueD)/trueD*100)

	if _, err := session.CallDisconnectSP200(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npotentiostat disconnected; multi-round campaign complete")
}
