// Anomaly_detection reproduces the paper's §4.3.3 ML normality check:
// it trains the GPR-feature + ensemble-of-trees classifier on
// simulated voltammograms of the three experimental conditions
// (normal, disconnected electrode, under-filled cell), reports
// held-out accuracy and the confusion matrix, then classifies fresh
// runs of each condition the way the workflow does in real time.
package main

import (
	"fmt"
	"log"

	"ice/internal/echem"
	"ice/internal/ml"
	"ice/internal/units"
)

func main() {
	fmt.Println("generating training corpus (3 classes × 20 runs)...")
	ds, err := ml.Generate(ml.GenerateConfig{PerClass: 20, Samples: 400, BaseSeed: 7})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(5)
	fmt.Printf("dataset: %d train / %d test samples, %d features each\n",
		train.Len(), test.Len(), len(train.X[0]))

	clf := &ml.Ensemble{Trees: 30, MaxDepth: 8, Seed: 42}
	if err := clf.Fit(train.X, train.Y); err != nil {
		log.Fatal(err)
	}
	acc, err := ml.Accuracy(clf, test.X, test.Y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble of %d trees, held-out accuracy: %.1f%%\n\n", clf.Size(), acc*100)

	cm, err := ml.ConfusionMatrix(clf, test.X, test.Y, ml.NumClasses)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("confusion matrix (rows = truth, cols = prediction):")
	fmt.Printf("%-34s %8s %8s %8s\n", "", "normal", "disc", "lowvol")
	for c := 0; c < ml.NumClasses; c++ {
		fmt.Printf("%-34s %8d %8d %8d\n", ml.ClassName(c), cm[c][0], cm[c][1], cm[c][2])
	}

	// Classify fresh, unseen experiments.
	fmt.Println("\nclassifying fresh runs:")
	prog := echem.CVProgram{
		Ei: units.Volts(0.05), E1: units.Volts(0.8), E2: units.Volts(0.05), Ef: units.Volts(0.05),
		Rate: units.MillivoltsPerSecond(50), Cycles: 1,
	}
	w, err := prog.Waveform()
	if err != nil {
		log.Fatal(err)
	}
	for _, fault := range []echem.Fault{
		echem.FaultNone, echem.FaultDisconnectedElectrode, echem.FaultLowVolume,
	} {
		cfg := echem.DefaultCell()
		cfg.Fault = fault
		cfg.NoiseSeed = 123456 + int64(fault)
		vg, err := echem.Simulate(cfg, w, 400)
		if err != nil {
			log.Fatal(err)
		}
		feats, err := ml.Features(vg.Potentials(), vg.Currents())
		if err != nil {
			log.Fatal(err)
		}
		class, err := clf.Predict(feats)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "✓"
		if class != ml.ClassOfFault(fault) {
			verdict = "✗"
		}
		fmt.Printf("  condition %-24s → %-34s %s\n", fault, ml.ClassName(class), verdict)
	}
}
