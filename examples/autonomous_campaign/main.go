// Autonomous_campaign runs the paper's future-work vision end to end:
// a remote controller orders the robotic synthesis workstation to
// prepare ferrocene batches at several target concentrations, has the
// mobile robot carry each batch to the electrochemistry workstation,
// runs cyclic voltammetry remotely, retrieves the measurements over
// the data channel, and closes the loop by fitting the calibration
// curve (peak current vs concentration) plus an EIS health check of
// the cell — all without a human in the lab.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"ice/internal/analysis"
	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

func main() {
	dir, err := os.MkdirTemp("", "ice-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dep, err := core.Deploy(dir, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	if err := dep.AttachLab(2024, 0); err != nil {
		log.Fatal(err)
	}
	session, mount, err := dep.ConnectLabFrom(netsim.HostDGX)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	defer mount.Close()

	targets := []float64{0.5, 1, 2, 4} // mM
	var concentrations []float64
	var peaks []units.Current

	fmt.Println("autonomous campaign: synthesis → robot transfer → CV → analysis")
	fmt.Println("round  target(mM)  achieved(mM)  anodic peak   robot battery")
	for round, target := range targets {
		dep.Agent.Cell().Drain()

		batch, err := session.SynthesizeFerrocene(target, 8)
		if err != nil {
			log.Fatalf("synthesis: %v", err)
		}
		if _, err := session.TransferBatchToCell(batch.ID); err != nil {
			log.Fatalf("robot transfer: %v", err)
		}

		// Bring the potentiostat up (first round) or reuse it.
		if round == 0 {
			if _, err := session.CallInitializeSP200API(core.PaperSystemParams()); err != nil {
				log.Fatal(err)
			}
			if _, err := session.CallConnectSP200(); err != nil {
				log.Fatal(err)
			}
			if _, err := session.CallLoadFirmwareSP200(); err != nil {
				log.Fatal(err)
			}
		}
		params := core.PaperCVParams()
		params.Points = 800
		if _, err := session.CallInitializeCVTechSP200(params); err != nil {
			log.Fatal(err)
		}
		if _, err := session.CallLoadTechniqueSP200(); err != nil {
			log.Fatal(err)
		}
		if _, err := session.CallStartChannelSP200(); err != nil {
			log.Fatal(err)
		}
		name, err := session.CallGetTechPathRslt()
		if err != nil {
			log.Fatal(err)
		}
		data, _, err := mount.WaitFor(name, 10*time.Millisecond, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		mf, err := potentiostat.ParseMPT(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		e, i := analysis.FromRecords(mf.Records)
		s, err := analysis.AnalyzeCV(e, i, units.Celsius(25))
		if err != nil {
			log.Fatal(err)
		}
		batt, _ := session.RobotBattery()
		fmt.Printf("%5d  %10.2f  %12.3f  %-12v %8.0f%%\n",
			round+1, target, batch.AchievedMM, s.AnodicPeak, batt*100)
		concentrations = append(concentrations, batch.AchievedMM)
		peaks = append(peaks, s.AnodicPeak)
	}

	// Calibration curve: ip is linear in concentration.
	xs := make([]float64, len(concentrations))
	ys := make([]float64, len(peaks))
	for i := range xs {
		xs[i] = concentrations[i]
		ys[i] = peaks[i].Microamperes()
	}
	slope, intercept, r2, err := analysis.LinearFit(xs, ys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncalibration: ip = %.2f µA/mM · C %+.2f µA  (r² = %.5f)\n", slope, intercept, r2)

	// EIS health check of the final cell state.
	eisFile, err := session.RunEIS(core.EISParams{FreqMinHz: 1, FreqMaxHz: 100_000, PointsPerDecade: 10})
	if err != nil {
		log.Fatal(err)
	}
	eisData, _, err := mount.WaitFor(eisFile, 10*time.Millisecond, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	_, points, err := potentiostat.ParseEIS(bytes.NewReader(eisData))
	if err != nil {
		log.Fatal(err)
	}
	eis, err := analysis.AnalyzeEIS(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cell health:", eis)

	// Send the robot home.
	if _, err := session.RobotMoveTo("dock"); err != nil {
		log.Fatal(err)
	}
	if _, err := session.RobotCharge(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("robot docked and charging; campaign complete")
}
