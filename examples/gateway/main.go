// Gateway walks the multi-tenant scheduling gateway end to end, all
// in one process: deploy the simulated cross-facility lab, start an
// icegated scheduler serving the HTTP/JSON API on a loopback port,
// then act as two facility tenants — "acl" submits a cyclic-voltammetry
// job while "dgx" submits a two-round campaign. The two jobs contend
// for the same physical potentiostat: the lease manager serialises
// instrument time and releases it the moment acquisition lands, so one
// tenant's WAN retrieval overlaps the other's electrochemistry. The
// walkthrough tails the cv job's server-sent event stream so the
// lease handoffs are visible, then prints both results and the
// scheduler's metrics.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/sched"
)

func main() {
	base, err := os.MkdirTemp("", "ice-gateway-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	// The lab: a deployed ICE over the simulated Fig. 4 topology, with
	// the synthesis workstation and robot attached for campaigns.
	labDir := filepath.Join(base, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		log.Fatal(err)
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	if err := d.AttachLab(7, 0); err != nil {
		log.Fatal(err)
	}

	// The gateway daemon: a crash-recoverable scheduler (WAL in the
	// state directory) dispatching onto the lab, fronted by HTTP.
	s, err := sched.New(sched.Config{
		Dir:     filepath.Join(base, "state"),
		Workers: 2,
		Tenants: map[string]sched.TenantLimits{
			"acl": {Weight: 3},
			"dgx": {Weight: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	s.SetRunner(&sched.LabRunner{
		Connector: &sched.DeploymentConnector{D: d, Host: netsim.HostDGX},
		Leases:    s.Leases(),
		Dir:       s.Dir(),
	})
	if err := s.Start(); err != nil {
		log.Fatal(err)
	}
	defer s.Stop()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: sched.NewGateway(s)}
	go srv.Serve(l)
	defer srv.Close()
	baseURL := "http://" + l.Addr().String()
	fmt.Println("icegated listening on", baseURL)

	// Tenant acl: one cv acquisition.
	cv := submit(baseURL, `{"tenant": "acl", "kind": "cv", "points": 600}`)
	fmt.Printf("tenant acl submitted %s (cv, 600 points)\n", cv.ID)

	// Tenant dgx: a two-round fixed campaign on the same instruments.
	camp := submit(baseURL, `{"tenant": "dgx", "kind": "campaign", "cells": [
		{"name": "demo", "rounds": [{"concentration_mm": 1}, {"concentration_mm": 4}]}
	]}`)
	fmt.Printf("tenant dgx submitted %s (campaign, 2 rounds)\n\n", camp.ID)

	// Tail the cv job's event stream: lease grants, workflow task
	// checkpoints, the measured→released handoff.
	fmt.Println("event stream for", cv.ID, "—")
	streamEvents(baseURL, cv.ID)

	// Both jobs run to completion.
	for _, id := range []string{cv.ID, camp.ID} {
		job := wait(baseURL, id)
		fmt.Printf("\n%s (%s) → %s\n", job.ID, job.Tenant, job.State)
		var pretty map[string]any
		if err := json.Unmarshal(job.Result, &pretty); err == nil {
			out, _ := json.MarshalIndent(pretty, "  ", "  ")
			fmt.Println(" ", string(out))
		}
	}

	// No leases survive the jobs; the metrics tell the story.
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nscheduler metrics —")
	for _, line := range strings.Split(strings.TrimSpace(string(report)), "\n") {
		if strings.HasPrefix(line, "sched.") {
			fmt.Println(" ", line)
		}
	}
}

func submit(base, spec string) sched.Job {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit: %s\n%s", resp.Status, body)
	}
	var job sched.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	return job
}

func streamEvents(base, id string) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "event: "); ok {
			event = rest
			if event == "end" {
				return
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "data: "); ok {
			var ev sched.Event
			if json.Unmarshal([]byte(rest), &ev) == nil && ev.Message != "" {
				fmt.Printf("  [%s] %s\n", ev.Type, ev.Message)
			}
		}
	}
}

func wait(base, id string) sched.Job {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var job sched.Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if job.State.Terminal() {
			return job
		}
		time.Sleep(50 * time.Millisecond)
	}
}
