// Workbench regenerates the paper's figures from a single process: it
// deploys the full simulated ICE and writes the artifacts behind each
// figure of the evaluation section.
//
//	workbench -fig 5    # Fig. 5: remote J-Kem steering transcript
//	workbench -fig 6    # Fig. 6: SP200 8-step pipeline transcripts
//	workbench -fig 7    # Fig. 7: I-V profile (CSV + terminal plot)
//	workbench -fig ml   # §4.3.3: ML normality-check report
//	workbench -fig kinetics  # extension: Nicholson ΔEp working surface
//	workbench -fig all  # everything, into -out (default ./artifacts)
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ice/internal/analysis"
	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/echem"
	"ice/internal/ml"
	"ice/internal/netsim"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, ml or all")
	out := flag.String("out", "artifacts", "output directory for artifacts")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	run := func(name string, fn func(out string) error) {
		fmt.Printf("== %s ==\n", name)
		if err := fn(*out); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	switch *fig {
	case "5":
		run("Fig 5", fig5)
	case "6":
		run("Fig 6", fig6)
	case "7":
		run("Fig 7", fig7)
	case "ml":
		run("ML report", mlReport)
	case "kinetics":
		run("Kinetics map", kineticsMap)
	case "eis":
		run("EIS Nyquist", eisNyquist)
	case "all":
		run("Fig 5", fig5)
		run("Fig 6", fig6)
		run("Fig 7", fig7)
		run("ML report", mlReport)
		run("Kinetics map", kineticsMap)
		run("EIS Nyquist", eisNyquist)
	default:
		log.Fatalf("unknown -fig %q", *fig)
	}
	fmt.Println("artifacts written to", *out)
}

// deployed runs fn against a freshly deployed ICE and session.
func deployed(fn func(*core.Deployment, *core.RemoteSession, *datachan.Mount) error) error {
	dir, err := os.MkdirTemp("", "ice-workbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dep, err := core.Deploy(dir, 0)
	if err != nil {
		return err
	}
	defer dep.Close()
	session, m, err := dep.ConnectFrom(netsim.HostDGX)
	if err != nil {
		return err
	}
	defer session.Close()
	defer m.Close()
	return fn(dep, session, m)
}

// fig5 regenerates the remote J-Kem steering transcript.
func fig5(out string) error {
	return deployed(func(dep *core.Deployment, session *core.RemoteSession, _ *datachan.Mount) error {
		var b strings.Builder
		b.WriteString("Fig. 5a — remote steering of J-Kem setup from the DGX notebook\n\n")
		cells := []struct {
			label string
			call  func() (string, error)
		}{
			{"Fill Syringe with liquid from Fraction Collector", nil},
			{"Set_Rate_SyringePump", func() (string, error) { return session.SetRateSyringePump(1, 5.0) }},
			{"Set_Port_SyringePump", func() (string, error) { return session.SetPortSyringePump(1, 8) }},
			{"Set_Vial_FractionCollector", func() (string, error) { return session.SetVialFractionCollector(1, "BOTTOM") }},
			{"Withdraw_SyringePump", func() (string, error) { return session.WithdrawSyringePump(1, 6.0) }},
			{"Send liquid to electrochemical cell", nil},
			{"Set_Port_SyringePump", func() (string, error) { return session.SetPortSyringePump(1, 1) }},
			{"Dispense_SyringePump", func() (string, error) { return session.DispenseSyringePump(1, 6.0) }},
		}
		for _, c := range cells {
			if c.call == nil {
				fmt.Fprintf(&b, "%s\n\n", c.label)
				continue
			}
			outp, err := c.call()
			if err != nil {
				return fmt.Errorf("%s: %w", c.label, err)
			}
			fmt.Fprintf(&b, "%s\n%s\n\n", c.label, outp)
		}
		exit, err := session.CallExitJKemAPI()
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "PS200_WF.call_Exit_JKem_API()\n%s\n", exit)

		b.WriteString("\nFig. 5b — J-Kem single-board computer responses (control agent console)\n\n")
		for _, line := range dep.Agent.SBC().CommandLog() {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		fmt.Print(b.String())
		return os.WriteFile(filepath.Join(out, "fig5.txt"), []byte(b.String()), 0o644)
	})
}

// fig6 regenerates the SP200 pipeline transcripts.
func fig6(out string) error {
	return deployed(func(dep *core.Deployment, session *core.RemoteSession, _ *datachan.Mount) error {
		// Fill first so the run is normal.
		if err := fillCell(session); err != nil {
			return err
		}
		var b strings.Builder
		b.WriteString("Fig. 6a — SP200 working pipeline from the DGX notebook\n\n")
		params := core.PaperCVParams()
		steps := []struct {
			label string
			call  func() (string, error)
		}{
			{"PS200_WF.call_Initialize_SP200_API(SP200_config_params)", func() (string, error) { return session.CallInitializeSP200API(core.PaperSystemParams()) }},
			{"PS200_WF.call_Connect_SP200()", session.CallConnectSP200},
			{"PS200_WF.call_Load_Firmware_SP200()", session.CallLoadFirmwareSP200},
			{"PS200_WF.call_Initialize_CV_Tech_SP200(SP200_Technique_params)", func() (string, error) { return session.CallInitializeCVTechSP200(params) }},
			{"PS200_WF.call_Load_Technique_SP200()", session.CallLoadTechniqueSP200},
			{"PS200_WF.call_Start_Channel_SP200()", session.CallStartChannelSP200},
			{"PS200_WF.call_Get_Tech_Path_Rslt()", session.CallGetTechPathRslt},
		}
		for n, s := range steps {
			outp, err := s.call()
			if err != nil {
				return fmt.Errorf("step %d: %w", n+1, err)
			}
			fmt.Fprintf(&b, "(%d) %s\n    %s\n\n", n+1, s.label, outp)
		}
		b.WriteString("Fig. 6b — control agent responses (Pyro server console)\n\n")
		for _, line := range dep.Agent.SP200().EventLog() {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		fmt.Print(b.String())
		return os.WriteFile(filepath.Join(out, "fig6.txt"), []byte(b.String()), 0o644)
	})
}

// fig7 regenerates the I-V profile.
func fig7(out string) error {
	return deployed(func(dep *core.Deployment, session *core.RemoteSession, m *datachan.Mount) error {
		cfg := core.PaperCVWorkflowConfig()
		nb, outcome := core.BuildCVWorkflow(session, m, cfg)
		if err := nb.Execute(context.Background()); err != nil {
			return err
		}
		e, i := analysis.FromRecords(outcome.Records)
		var csv bytes.Buffer
		if err := analysis.WriteCSV(&csv, e, i); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(out, "fig7.csv"), csv.Bytes(), 0o644); err != nil {
			return err
		}
		plot := analysis.ASCIIPlot(e, i, 70, 22) + "\n" + outcome.Summary.String() + "\n"
		fmt.Print(plot)
		return os.WriteFile(filepath.Join(out, "fig7.txt"), []byte(plot), 0o644)
	})
}

// mlReport regenerates the §4.3.3 classification report.
func mlReport(out string) error {
	clf, acc, err := ml.TrainNormalityClassifier(ml.GenerateConfig{PerClass: 20, Samples: 400, BaseSeed: 7})
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3.3 — ML normality check (GPR features + ensemble of trees)\n")
	fmt.Fprintf(&b, "held-out accuracy: %.1f%% (chance 33.3%%)\n\n", acc*100)

	// Fresh-run classification through the full ICE.
	b.WriteString("fresh cross-facility runs:\n")
	conditions := []struct {
		label string
		brk   func(*core.Deployment)
		want  int
	}{
		{"normal", nil, ml.ClassNormal},
		{"disconnected electrode", func(d *core.Deployment) { d.Agent.Cell().SetElectrodesConnected(false) }, ml.ClassDisconnected},
	}
	for _, cond := range conditions {
		err := func() error {
			dir, err := os.MkdirTemp("", "ice-ml-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			dep, err := core.Deploy(dir, 0)
			if err != nil {
				return err
			}
			defer dep.Close()
			if cond.brk != nil {
				cond.brk(dep)
			}
			session, m, err := dep.ConnectFrom(netsim.HostDGX)
			if err != nil {
				return err
			}
			defer session.Close()
			defer m.Close()
			cfg := core.PaperCVWorkflowConfig()
			cfg.CV.Points = 400
			cfg.Classifier = clf
			nb, outcome := core.BuildCVWorkflow(session, m, cfg)
			if err := nb.Execute(context.Background()); err != nil {
				return err
			}
			mark := "✓"
			if outcome.Class != cond.want {
				mark = "✗"
			}
			fmt.Fprintf(&b, "  %-24s → %-36s %s\n", cond.label, outcome.ClassName, mark)
			return nil
		}()
		if err != nil {
			return fmt.Errorf("%s: %w", cond.label, err)
		}
	}
	fmt.Print(b.String())
	return os.WriteFile(filepath.Join(out, "ml_report.txt"), []byte(b.String()), 0o644)
}

// kineticsMap writes the extension figure: peak separation versus scan
// rate for electron-transfer rate constants spanning reversible to
// quasi-reversible behaviour (the Nicholson working surface), computed
// directly from the physics engine.
func kineticsMap(out string) error {
	rates := []float64{20, 50, 100, 200, 400} // mV/s
	k0s := []float64{1e-2, 1e-4, 2e-5, 5e-6}  // m/s

	var b strings.Builder
	b.WriteString("k0_m_per_s,scan_rate_mV_s,delta_Ep_mV,ipa_uA\n")
	var pretty strings.Builder
	fmt.Fprintf(&pretty, "%-10s", "k0\\v(mV/s)")
	for _, v := range rates {
		fmt.Fprintf(&pretty, "%8.0f", v)
	}
	pretty.WriteByte('\n')

	for _, k0 := range k0s {
		fmt.Fprintf(&pretty, "%-10.0e", k0)
		for _, rate := range rates {
			cfg := echem.DefaultCell()
			cfg.NoiseRMS = 0
			cfg.UncompensatedResistance = 0
			cfg.DoubleLayerCapacitance = 0
			cfg.Solution.Analyte.RateConstant = k0
			prog := echem.CVProgram{
				Ei: units.Volts(0.05), E1: units.Volts(0.8), E2: units.Volts(0.05), Ef: units.Volts(0.05),
				Rate: units.MillivoltsPerSecond(rate), Cycles: 1,
			}
			w, err := prog.Waveform()
			if err != nil {
				return err
			}
			vg, err := echem.Simulate(cfg, w, 1200)
			if err != nil {
				return err
			}
			e, i := vg.Potentials(), vg.Currents()
			s, err := analysis.AnalyzeCV(e, i, units.Celsius(25))
			if err != nil {
				return err
			}
			dEp := s.PeakSeparation.Millivolts()
			fmt.Fprintf(&b, "%g,%g,%.2f,%.3f\n", k0, rate, dEp, s.AnodicPeak.Microamperes())
			fmt.Fprintf(&pretty, "%8.1f", dEp)
		}
		pretty.WriteByte('\n')
	}
	fmt.Print("ΔEp (mV) by rate constant and scan rate:\n" + pretty.String())
	if err := os.WriteFile(filepath.Join(out, "kinetics_map.csv"), []byte(b.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(out, "kinetics_map.txt"), []byte(pretty.String()), 0o644)
}

// eisNyquist runs a remote impedance sweep through the full ICE and
// renders the Nyquist plot (−Im Z vs Re Z) — the extension-technique
// artifact.
func eisNyquist(out string) error {
	return deployed(func(dep *core.Deployment, session *core.RemoteSession, m *datachan.Mount) error {
		if err := fillCell(session); err != nil {
			return err
		}
		if _, err := session.CallInitializeSP200API(core.PaperSystemParams()); err != nil {
			return err
		}
		if _, err := session.CallConnectSP200(); err != nil {
			return err
		}
		if _, err := session.CallLoadFirmwareSP200(); err != nil {
			return err
		}
		name, err := session.RunEIS(core.EISParams{FreqMinHz: 0.1, FreqMaxHz: 1_000_000, PointsPerDecade: 10})
		if err != nil {
			return err
		}
		data, _, err := m.WaitFor(name, 10*time.Millisecond, time.Minute)
		if err != nil {
			return err
		}
		label, points, err := potentiostat.ParseEIS(bytes.NewReader(data))
		if err != nil {
			return err
		}
		re := make([]float64, len(points))
		negIm := make([]float64, len(points))
		var csv strings.Builder
		csv.WriteString("freq_hz,re_ohm,neg_im_ohm\n")
		for i, p := range points {
			re[i] = p.Zre
			negIm[i] = -p.Zim
			fmt.Fprintf(&csv, "%.6e,%.6e,%.6e\n", p.Frequency, p.Zre, -p.Zim)
		}
		summary, err := analysis.AnalyzeEIS(points)
		if err != nil {
			return err
		}
		plot := fmt.Sprintf("Nyquist plot of %s (condition %s)\n\n%s\n%s\n",
			name, label, analysis.ASCIIPlotXY(re, negIm, 70, 20, "Re Z/Ω", "−Im Z/Ω"), summary)
		fmt.Print(plot)
		if err := os.WriteFile(filepath.Join(out, "eis_nyquist.csv"), []byte(csv.String()), 0o644); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(out, "eis_nyquist.txt"), []byte(plot), 0o644)
	})
}

// fillCell performs the standard fill sequence.
func fillCell(session *core.RemoteSession) error {
	for _, step := range []func() (string, error){
		func() (string, error) { return session.SetPortSyringePump(1, 8) },
		func() (string, error) { return session.WithdrawSyringePump(1, 6.0) },
		func() (string, error) { return session.SetPortSyringePump(1, 1) },
		func() (string, error) { return session.DispenseSyringePump(1, 6.0) },
	} {
		if _, err := step(); err != nil {
			return err
		}
	}
	return nil
}
