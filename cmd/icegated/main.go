// Icegated is the experiment-scheduling gateway: a daemon that admits
// job submissions from many tenants over HTTP/JSON, orders them with
// per-tenant fair sharing, guards the shared instruments with TTL'd
// leases, and journals every job transition so a crashed gateway
// restarts without losing or duplicating work.
//
//	icegated -selflab                                  # simulated lab, HTTP on :9700
//	icegated -selflab -dir /var/lib/icegated           # durable state directory
//	icegated -lab examples/labs/microscopy.yaml        # declarative facility from a registry config
//	icegated -agent acl-host -token s3cret -reliable   # schedule onto a real control agent
//	icegated -smoke                                    # one-shot self-test: two tenants, then exit
//	icegated -lab-smoke                                # one-shot registry drill: mixed cv+scan, then exit
//
// Federate gateways across facilities (replicated WAL, leader
// failover, partition-tolerant routing):
//
//	icegated -selflab -facility faca -peer facb=http://b:9700 -peer-lab facb=b-lab:9690
//	icegated -cluster-smoke                            # one-shot failover drill, then exit
//
// Submit with icectl:
//
//	icectl -gateway http://localhost:9700 submit -tenant acl -kind cv
//	icectl -gateway http://localhost:9700 wait j-000001
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ice/internal/core"
	"ice/internal/labreg"
	"ice/internal/netsim"
	"ice/internal/sched"
	"ice/internal/sched/cluster"
	"ice/internal/testutil"
	"ice/internal/trace"
)

func main() {
	listen := flag.String("listen", "localhost:9700", "HTTP listen address (host:port; :0 picks a free port)")
	dir := flag.String("dir", "icegated_state", "state directory: job WAL plus per-job workflow journals")
	queueCap := flag.Int("queue", 64, "queued-job capacity across all tenants; beyond it submissions get 429 + Retry-After")
	workers := flag.Int("workers", 2, "concurrent jobs (instrument access still serialises on the lease)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "instrument lease TTL; a holder that stops heartbeating loses the lab")
	probeInterval := flag.Duration("probe-interval", time.Second, "instrument health probe cadence; an open breaker quarantines the instrument and checkpoint-requeues its jobs (0 disables health supervision)")
	minDeadline := flag.Duration("min-deadline", 500*time.Millisecond, "admission floor for job deadline_ms: shorter deadlines get 503 + Retry-After at submit instead of occupying a lease (0 disables the floor)")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "back-off hint attached to full-queue rejections")
	weights := flag.String("weights", "", "per-tenant fair-share weights, e.g. acl=3,dgx=1 (default weight 1)")
	campaignPoints := flag.Int("campaign-points", 300, "CV points acquired per campaign round")
	dagCacheMax := flag.Int64("dag-cache-max", 256<<20, "DAG blob cache cap in bytes: least-recently-used measurement payloads are evicted past it (0 = unbounded)")

	selflab := flag.Bool("selflab", false, "serve an in-process simulated lab (netsim) instead of dialing an agent")
	seed := flag.Int64("seed", 1, "selflab/-lab: synthesis noise seed")
	timeScale := flag.Float64("timescale", 0, "selflab/-lab: instrument pacing (0 = instant)")
	labConfig := flag.String("lab", "", "declarative lab: materialize a facility from this YAML/JSON registry config (see examples/labs/) instead of the hardcoded -selflab deployment")

	agentHost := flag.String("agent", "", "control agent host (real-TCP mode; mutually exclusive with -selflab)")
	controlPort := flag.Int("control-port", 9690, "control channel port")
	dataPort := flag.Int("data-port", 4450, "data channel port")
	token := flag.String("token", "", "control-channel credential (must match the agent's -token)")
	reliable := flag.Bool("reliable", false, "retry instrument commands across transport faults with exactly-once semantics")
	reliableData := flag.Bool("reliable-data", false, "self-healing data mount: redial and resume interrupted transfers")
	wire := flag.String("wire", "v2", "control-channel framing towards the agent: v2 negotiates the compact binary protocol (falling back against old agents), v1 pins the legacy JSON framing")
	streamAnalysis := flag.Bool("stream-analysis", false, "cv jobs: tail the measurement file during acquisition and analyze online, so the verdict is ready at instrument release")

	traceExport := flag.String("trace-export", "", "append finished trace spans to this JSONL file (crash-safe batched writes; view with icetrace)")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling ratio for traces (errors and flight-recorder dumps are always kept)")

	facility := flag.String("facility", "", "federated cluster: this gateway's home facility name; job IDs get the facility prefix and -peer gateways receive synchronous WAL replication")
	peers := assignments{}
	flag.Var(peers, "peer", "federated cluster: a peer gateway as facility=http://host:9700 (repeatable)")
	peerLabs := assignments{}
	flag.Var(peerLabs, "peer-lab", "federated cluster: a peer facility's lab address as facility=host:port, dialed as the failover fencing probe (repeatable; omitted = never adopt that peer's jobs)")

	smoke := flag.Bool("smoke", false, "one-shot self-test: selflab gateway, two tenants submit, wait, report, exit")
	traceSmoke := flag.Bool("trace-smoke", false, "one-shot trace self-test: selflab two-cell campaign, fetch its trace, verify the span tree and critical-path partition, exit")
	clusterSmoke := flag.Bool("cluster-smoke", false, "one-shot federation self-test: two in-process facility gateways over one lab, kill one mid-CV, the peer must adopt via the replicated WAL within 10s and finish exactly once, exit")
	healthSmoke := flag.Bool("health-smoke", false, "one-shot health drill: wedge the simulated potentiostat mid-acquisition, the breaker must quarantine it, checkpoint-requeue the job, recover via a probe and finish exactly once, exit")
	dagSmoke := flag.Bool("dag-smoke", false, "one-shot DAG drill: run the examples/dag specs against a selflab, assert digest equivalence with the classic cv path, cache hits on re-run, and crash-resume exactly once, exit")
	labSmoke := flag.Bool("lab-smoke", false, "one-shot registry drill: bring up examples/labs/microscopy.yaml from config alone, run a mixed cv+scan workload, assert exactly-once audit and zero leaked leases/goroutines, exit")
	flag.Parse()

	if *labSmoke {
		if err := runLabSmoke("lab_smoke_state", *dagCacheMax); err != nil {
			log.Fatalf("lab-smoke: %v", err)
		}
		log.Print("lab-smoke: OK")
		return
	}

	if *dagSmoke {
		if err := runDAGSmoke("dag_smoke_state"); err != nil {
			log.Fatalf("dag-smoke: %v", err)
		}
		log.Print("dag-smoke: OK")
		return
	}

	if *healthSmoke {
		if err := runHealthSmoke("health_smoke_state"); err != nil {
			log.Fatalf("health-smoke: %v", err)
		}
		log.Print("health-smoke: OK")
		return
	}

	if *clusterSmoke {
		if err := runClusterSmoke("cluster_smoke_state"); err != nil {
			log.Fatalf("cluster-smoke: %v", err)
		}
		log.Print("cluster-smoke: OK")
		return
	}

	if *smoke || *traceSmoke {
		*selflab = true
		*listen = "127.0.0.1:0"
	}

	var wireVersion int
	switch *wire {
	case "v2", "":
		wireVersion = 0 // newest: negotiate binary, fall back to JSON
	case "v1":
		wireVersion = 1
	default:
		log.Fatalf("unknown -wire %q (want v1 or v2)", *wire)
	}

	var connector sched.Connector
	var labFacility *labreg.Facility
	modes := 0
	for _, on := range []bool{*selflab, *agentHost != "", *labConfig != ""} {
		if on {
			modes++
		}
	}
	switch {
	case modes > 1:
		log.Fatal("choose one lab source: -selflab, -agent HOST, or -lab CONFIG")
	case *labConfig != "":
		f, err := labreg.LoadAndBuild(*labConfig, labreg.BuildOptions{
			Dir:       filepath.Join(*dir, "lab"),
			TimeScale: *timeScale,
			Seed:      *seed,
			AuthToken: *token,
		})
		if err != nil {
			log.Fatalf("build facility from %s: %v", *labConfig, err)
		}
		defer f.Close()
		labFacility = f
		connector = f
		log.Printf("labreg: facility %q up from %s (%d stations: %s)",
			f.Config.Facility, *labConfig, len(f.Stations()), stationSummary(f))
	case *selflab:
		labDir := filepath.Join(*dir, "lab")
		if err := os.MkdirAll(labDir, 0o755); err != nil {
			log.Fatal(err)
		}
		d, err := core.Deploy(labDir, *timeScale)
		if err != nil {
			log.Fatalf("deploy simulated lab: %v", err)
		}
		defer d.Close()
		if err := d.AttachLab(*seed, *timeScale); err != nil {
			log.Fatalf("attach lab stations: %v", err)
		}
		connector = &sched.DeploymentConnector{D: d, Host: netsim.HostDGX}
		log.Printf("selflab: simulated lab up (seed %d, timescale %g)", *seed, *timeScale)
	case *agentHost != "":
		connector = &sched.NetConnector{
			Agent:        *agentHost,
			ControlPort:  *controlPort,
			DataPort:     *dataPort,
			Token:        *token,
			Reliable:     *reliable,
			ReliableData: *reliableData,
			WireVersion:  wireVersion,
		}
	default:
		log.Fatal("need a lab: -selflab, -agent HOST, or -lab CONFIG")
	}

	// The tracer always keeps an in-memory store (the gateway's
	// /v1/traces) and a flight recorder; -trace-export adds a durable
	// JSONL feed for offline icetrace analysis.
	traceOpts := []trace.Option{
		trace.WithStore(trace.NewStore(0, 0)),
		trace.WithRecorder(trace.NewRecorder(512)),
		trace.WithSampler(trace.Ratio(*traceSample)),
	}
	if *traceExport != "" {
		exp, err := trace.NewJSONLExporter(*traceExport, time.Second)
		if err != nil {
			log.Fatalf("open trace export: %v", err)
		}
		defer exp.Close()
		traceOpts = append(traceOpts, trace.WithExporter(exp))
		log.Printf("tracing: exporting spans to %s", *traceExport)
	}
	tracer := trace.New(traceOpts...)

	tenants, err := parseWeights(*weights)
	if err != nil {
		log.Fatal(err)
	}

	// With a declared lab, the health supervisor's instrument map comes
	// from the registry — every configured device class gets probed, and
	// scan jobs only wait on the stem class, not the echem pair.
	healthCfg := healthConfig(*probeInterval, *minDeadline)
	if labFacility != nil {
		healthCfg.Instruments = labFacility.HealthInstruments()
		healthCfg.ClassesFor = labFacility.ClassesFor
	}

	if *facility != "" {
		if labFacility != nil {
			log.Fatal("-lab does not federate yet: use -selflab or -agent with -facility")
		}
		peerList, err := clusterPeers(peers, peerLabs)
		if err != nil {
			log.Fatal(err)
		}
		node, err := cluster.NewNode(cluster.Config{
			Facility: *facility,
			Peers:    peerList,
			Sched: sched.Config{
				Dir:           *dir,
				QueueCapacity: *queueCap,
				RetryAfter:    *retryAfter,
				Workers:       *workers,
				LeaseTTL:      *leaseTTL,
				Tenants:       tenants,
				Tracer:        tracer,
				Health:        healthCfg,
			},
			NewRunner: func(n *cluster.Node, fac string) sched.Runner {
				return &sched.LabRunner{
					Connector:        connector,
					Leases:           n.Scheduler().Leases(),
					Dir:              n.Scheduler().Dir(),
					Resources:        cluster.FacilityResources(fac),
					MirrorJournal:    n.MirrorJournal,
					CampaignCVPoints: *campaignPoints,
					StreamAnalysis:   *streamAnalysis,
					Metrics:          n.Scheduler().Metrics(),
					CacheMaxBytes:    *dagCacheMax,
				}
			},
			RetryAfter: *retryAfter,
		})
		if err != nil {
			log.Fatal(err)
		}
		prober := wireProber(node.Scheduler(), node.Gateway(), connector,
			cluster.FacilityResources(*facility)...)
		defer prober.Close()
		serveCluster(*listen, node)
		return
	}
	if len(peers) > 0 || len(peerLabs) > 0 {
		log.Fatal("-peer/-peer-lab require -facility")
	}

	// Leak baseline for the one-shot smoke path: everything started
	// below (scheduler, prober, HTTP server) is torn down before the
	// check, so the count must settle back here.
	baseline := runtime.NumGoroutine()

	s, err := sched.New(sched.Config{
		Dir:           *dir,
		QueueCapacity: *queueCap,
		RetryAfter:    *retryAfter,
		Workers:       *workers,
		LeaseTTL:      *leaseTTL,
		Tenants:       tenants,
		Tracer:        tracer,
		Health:        healthCfg,
	})
	if err != nil {
		log.Fatalf("open job store: %v", err)
	}
	s.SetRunner(&sched.LabRunner{
		Connector:        connector,
		Leases:           s.Leases(),
		Dir:              s.Dir(),
		CampaignCVPoints: *campaignPoints,
		StreamAnalysis:   *streamAnalysis,
		Metrics:          s.Metrics(),
		CacheMaxBytes:    *dagCacheMax,
	})
	gw := sched.NewGateway(s)
	var closeProbers func()
	if labFacility != nil {
		closeProbers = wireFacilityProbers(s, gw, labFacility)
	} else {
		prober := wireProber(s, gw, connector, sched.ResourceSP200, sched.ResourceJKem)
		closeProbers = prober.Close
	}
	defer closeProbers()
	if err := s.Start(); err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: gw}
	go func() {
		if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}()
	log.Printf("icegated: listening on http://%s (state in %s, queue %d, %d workers, lease TTL %v)",
		l.Addr(), *dir, *queueCap, *workers, *leaseTTL)

	if *smoke {
		err := runSmoke("http://" + l.Addr().String())
		srv.Shutdown(context.Background())
		s.Stop()
		closeProbers()
		if err == nil {
			err = testutil.WaitGoroutines(baseline, 8, 5*time.Second)
		}
		if err != nil {
			log.Fatalf("smoke: %v", err)
		}
		log.Print("smoke: OK")
		return
	}
	if *traceSmoke {
		err := runTraceSmoke("http://" + l.Addr().String())
		srv.Shutdown(context.Background())
		s.Stop()
		if err != nil {
			log.Fatalf("trace-smoke: %v", err)
		}
		log.Print("trace-smoke: OK")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Print("icegated: shutting down (queued jobs stay PENDING in the WAL)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	s.Stop()
}

// runTraceSmoke is the tracing acceptance drill: submit a two-cell
// campaign (the fleet shape whose WAN retrieval pipelines under the
// sibling cell's instrument hold), fetch its trace by the ID the
// submission returned, and verify the span tree is parent-complete and
// the critical-path segments partition the job's wall time.
func runTraceSmoke(base string) error {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{
		"tenant": "acl", "kind": "campaign", "cells": [
			{"name": "cell-a", "rounds": [{"concentration_mm": 1}, {"concentration_mm": 2}]},
			{"name": "cell-b", "rounds": [{"concentration_mm": 4}, {"concentration_mm": 8}]}
		]}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		return err
	}
	if job.TraceID == "" {
		return fmt.Errorf("job %s carries no trace ID", job.ID)
	}
	log.Printf("trace-smoke: submitted %s, trace %s", job.ID, job.TraceID)

	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s did not finish in time", job.ID)
		}
		resp, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			return err
		}
		var cur sched.Job
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if cur.State.Terminal() {
			if cur.State != sched.StateDone {
				return fmt.Errorf("job %s ended %s: %s", job.ID, cur.State, cur.Error)
			}
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The root span lands in the store when the scheduler finalises the
	// job, a hair after the state flips to DONE.
	var tr sched.TraceResponse
	for {
		resp, err := http.Get(base + "/v1/traces/" + job.TraceID)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &tr); err != nil {
				return err
			}
			if hasRoot(tr.Spans, "job "+job.ID) {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("trace %s never served a root span (last: %s %s)", job.TraceID, resp.Status, body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, want := range []string{"sched.run", "campaign.round 1", "campaign.acquire", "campaign.retrieve", "campaign.analyze"} {
		found := false
		for _, rec := range tr.Spans {
			if rec.Name == want {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("trace is missing span %q (%d spans)", want, len(tr.Spans))
		}
	}
	if orphans := trace.Orphans(tr.Spans); len(orphans) != 0 {
		return fmt.Errorf("trace has %d orphaned spans: %v", len(orphans), orphans)
	}
	b := tr.Breakdown
	if b.Wall <= 0 || b.Instrument <= 0 || b.Data <= 0 || b.Sched <= 0 {
		return fmt.Errorf("critical path has empty phases:\n%s", trace.RenderBreakdown(b))
	}
	sum := b.Instrument + b.Data + b.Analysis + b.Sched + b.Control + b.Other + b.Idle
	if diff := sum - b.Wall; diff < -b.Wall/20 || diff > b.Wall/20 {
		return fmt.Errorf("segments sum to %v against wall %v:\n%s", sum, b.Wall, trace.RenderBreakdown(b))
	}
	log.Printf("trace-smoke: %d spans, partition holds\n%s", len(tr.Spans), trace.RenderBreakdown(b))
	return nil
}

func hasRoot(recs []trace.Record, name string) bool {
	for _, rec := range recs {
		if rec.Name == name && rec.Parent == "" {
			return true
		}
	}
	return false
}

// healthConfig builds the scheduler's health supervision config from
// the -probe-interval and -min-deadline flags (probe interval 0
// disables supervision entirely; the admission floor survives that,
// since rejecting an unmeetable deadline needs no probes).
func healthConfig(probeInterval, minDeadline time.Duration) sched.HealthConfig {
	if probeInterval <= 0 {
		return sched.HealthConfig{Disabled: true, MinDeadline: minDeadline}
	}
	return sched.HealthConfig{ProbeInterval: probeInterval, MinDeadline: minDeadline}
}

// wireProber attaches lab-backed health probes, the quarantine fence,
// and the probe/session-liveness metrics to a scheduler and its
// gateway. Call before Start so the first probe tick has probers.
func wireProber(s *sched.Scheduler, gw *sched.Gateway, connector sched.Connector, resources ...string) *sched.LabProber {
	p := &sched.LabProber{Connector: connector}
	for _, res := range resources {
		s.RegisterProber(res, p.ProberFor(res))
	}
	s.SetFence(p.FenceFor)
	gw.Registry().AddSource(p.HealthSource())
	return p
}

// wireFacilityProbers wires health probes for every instrument a
// declared facility materialized: the echem prober covers the
// sp200/jkem classes, the scan prober covers stem devices, and the
// quarantine fence fans out to both (each fence ignores resources
// outside its class). Returns the combined closer.
func wireFacilityProbers(s *sched.Scheduler, gw *sched.Gateway, f *labreg.Facility) func() {
	instruments := f.HealthInstruments()
	var closers []func()
	var fences []func(ctx context.Context, resource string)

	var echemRes []string
	for class, resources := range instruments {
		if class == "stem" {
			continue
		}
		echemRes = append(echemRes, resources...)
	}
	if len(echemRes) > 0 {
		p := &sched.LabProber{Connector: f}
		for _, res := range echemRes {
			s.RegisterProber(res, p.ProberFor(res))
		}
		fences = append(fences, p.FenceFor)
		gw.Registry().AddSource(p.HealthSource())
		closers = append(closers, p.Close)
	}
	if scanRes := instruments["stem"]; len(scanRes) > 0 {
		p := &sched.ScanProber{Connector: f}
		for _, res := range scanRes {
			s.RegisterProber(res, p.Prober())
		}
		fences = append(fences, p.Fence)
		gw.Registry().AddSource(p.HealthSource())
		closers = append(closers, p.Close)
	}
	s.SetFence(func(ctx context.Context, resource string) {
		for _, fence := range fences {
			fence(ctx, resource)
		}
	})
	return func() {
		for _, c := range closers {
			c()
		}
	}
}

// stationSummary renders a facility's stations for the startup log.
func stationSummary(f *labreg.Facility) string {
	var parts []string
	for _, st := range f.Stations() {
		parts = append(parts, fmt.Sprintf("%s:%d", st.Host, st.Port))
	}
	return strings.Join(parts, ", ")
}

// parseWeights turns "acl=3,dgx=1" into per-tenant limits.
func parseWeights(s string) (map[string]sched.TenantLimits, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]sched.TenantLimits)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -weights entry %q (want tenant=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight %q for tenant %s", val, name)
		}
		out[name] = sched.TenantLimits{Weight: w}
	}
	return out, nil
}

// runSmoke drives the gateway the way two tenants would: each submits
// a job over HTTP, both complete, and the lease table drains — the
// make gateway-smoke acceptance path.
func runSmoke(base string) error {
	submit := func(spec string) (sched.Job, error) {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			return sched.Job{}, err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			return sched.Job{}, fmt.Errorf("submit: %s: %s", resp.Status, body)
		}
		var job sched.Job
		if err := json.Unmarshal(body, &job); err != nil {
			return sched.Job{}, err
		}
		return job, nil
	}

	jobA, err := submit(`{"tenant": "acl", "kind": "cv", "points": 600}`)
	if err != nil {
		return err
	}
	jobB, err := submit(`{"tenant": "dgx", "kind": "campaign", "cells": [
		{"name": "smoke-cell", "rounds": [{"concentration_mm": 2}, {"scan_rate_mvs": 100}]}
	]}`)
	if err != nil {
		return err
	}
	log.Printf("smoke: submitted %s (acl/cv) and %s (dgx/campaign)", jobA.ID, jobB.ID)

	deadline := time.Now().Add(2 * time.Minute)
	for _, id := range []string{jobA.ID, jobB.ID} {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s did not finish in time", id)
			}
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				return err
			}
			var job sched.Job
			err = json.NewDecoder(resp.Body).Decode(&job)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if job.State.Terminal() {
				if job.State != sched.StateDone {
					return fmt.Errorf("job %s ended %s: %s", id, job.State, job.Error)
				}
				log.Printf("smoke: %s DONE: %s", id, job.Result)
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/v1/leases")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var leases struct {
		Leases []sched.LeaseInfo `json:"leases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&leases); err != nil {
		return err
	}
	if len(leases.Leases) != 0 {
		return fmt.Errorf("leaked leases after completion: %+v", leases.Leases)
	}
	return nil
}
