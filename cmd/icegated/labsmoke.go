package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ice/internal/core"
	"ice/internal/labreg"
	"ice/internal/sched"
	"ice/internal/testutil"
)

// runLabSmoke is the declarative-registry acceptance drill (make
// lab-smoke):
//
//  1. bring-up — examples/labs/microscopy.yaml materializes a
//     two-station facility (echem control agent + scan-steering STEM)
//     from configuration alone: topology, firewalls, devices, exports,
//     gates — no compiled-in lab;
//  2. mixed workload — a cv job and a scan job run on one scheduler
//     with health supervision wired from the registry's instrument
//     map; they lease disjoint instruments, so the echem acquisition
//     and the raster interleave;
//  3. exactly-once — the per-station audit journals record exactly one
//     potentiostat start and exactly one scan start/steer;
//  4. teardown — no leases and no goroutines leak.
func runLabSmoke(dir string, cacheMax int64) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	baseline := runtime.NumGoroutine()

	f, err := labreg.LoadAndBuild(filepath.Join("examples", "labs", "microscopy.yaml"), labreg.BuildOptions{
		Dir: filepath.Join(dir, "lab"),
	})
	if err != nil {
		return fmt.Errorf("build facility (run from the repo root): %v", err)
	}
	defer f.Close()
	if err := f.EnableAudit(); err != nil {
		return err
	}
	log.Printf("lab-smoke: facility %q up from config alone (%d stations: %s)",
		f.Config.Facility, len(f.Stations()), stationSummary(f))

	s, err := sched.New(sched.Config{
		Dir:     filepath.Join(dir, "state"),
		Workers: 2,
		Health: sched.HealthConfig{
			ProbeInterval: 500 * time.Millisecond,
			Instruments:   f.HealthInstruments(),
			ClassesFor:    f.ClassesFor,
		},
	})
	if err != nil {
		return err
	}
	gw := sched.NewGateway(s)
	closeProbers := wireFacilityProbers(s, gw, f)
	defer closeProbers()
	s.SetRunner(&sched.LabRunner{
		Connector:     f,
		Leases:        s.Leases(),
		Dir:           s.Dir(),
		Metrics:       s.Metrics(),
		CacheMaxBytes: cacheMax,
	})
	if err := s.Start(); err != nil {
		return err
	}
	defer s.Stop()

	// The mixed workload in flight together: disjoint leases
	// (sp200/jkem vs stem/scan1) and two workers let them overlap.
	cvJob, err := s.Submit(sched.JobSpec{Tenant: "acl", Kind: sched.KindCV, Points: 600})
	if err != nil {
		return err
	}
	scanJob, err := s.Submit(sched.JobSpec{
		Tenant: "stem",
		Kind:   sched.KindScan,
		Scan:   &sched.ScanSpec{TilesX: 6, TilesY: 6, PixelsPerTile: 8, ZoomFactor: 3},
	})
	if err != nil {
		return err
	}
	log.Printf("lab-smoke: submitted %s (acl/cv) and %s (stem/scan)", cvJob.ID, scanJob.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cvFinal, err := s.WaitTerminal(ctx, cvJob.ID)
	if err != nil {
		return err
	}
	if cvFinal.State != sched.StateDone {
		return fmt.Errorf("cv job ended %s: %s", cvFinal.State, cvFinal.Error)
	}
	var cv sched.CVResult
	if err := json.Unmarshal(cvFinal.Result, &cv); err != nil {
		return err
	}
	if cv.SHA256 == "" || cv.Points == 0 {
		return fmt.Errorf("cv result incomplete: %+v", cv)
	}
	log.Printf("lab-smoke: cv DONE (%d points, sha %.12s)", cv.Points, cv.SHA256)

	scanFinal, err := s.WaitTerminal(ctx, scanJob.ID)
	if err != nil {
		return err
	}
	if scanFinal.State != sched.StateDone {
		return fmt.Errorf("scan job ended %s: %s", scanFinal.State, scanFinal.Error)
	}
	var scan sched.ScanResult
	if err := json.Unmarshal(scanFinal.Result, &scan); err != nil {
		return err
	}
	if scan.SHA256 == "" || scan.Tiles < 36 {
		return fmt.Errorf("scan result incomplete: %+v", scan)
	}
	if !scan.Zoomed || scan.Passes < 2 {
		return fmt.Errorf("scan never steered onto a structure: %+v", scan)
	}
	log.Printf("lab-smoke: scan DONE (%d tiles over %d passes, steered to a %.0f%% window, sha %.12s)",
		scan.Tiles, scan.Passes, 100*scan.ZoomRegion.W, scan.SHA256)

	// Exactly-once, across every station's audit journal: one
	// potentiostat start, one survey start, one steer.
	counts, err := labAudit(f)
	if err != nil {
		return err
	}
	for method, want := range map[string]int{
		"StartChannelSP200": 1,
		"StartScanTech":     1,
		"SteerScan":         1,
		"FinishScan":        1,
	} {
		if counts[method] != want {
			return fmt.Errorf("exactly-once violated: %s ran %d times, want %d", method, counts[method], want)
		}
	}
	log.Print("lab-smoke: audit journals show exactly one acquisition per instrument")

	if active := s.Leases().Active(); len(active) != 0 {
		return fmt.Errorf("leaked leases after completion: %+v", active)
	}

	s.Stop()
	closeProbers()
	f.Close()
	if err := testutil.WaitGoroutines(baseline, 8, 5*time.Second); err != nil {
		return err
	}
	log.Printf("lab-smoke: goroutines settled (baseline %d)", baseline)
	return nil
}

// labAudit merges the audit journals of every station in a facility
// into one method→count map.
func labAudit(f *labreg.Facility) (map[string]int, error) {
	counts := make(map[string]int)
	for _, st := range f.Stations() {
		data, err := os.ReadFile(st.AuditPath())
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		entries, err := core.ParseAuditJournal(data)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			counts[e.Method]++
		}
	}
	return counts, nil
}
