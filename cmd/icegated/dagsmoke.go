package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ice/internal/core"
	"ice/internal/dag"
	"ice/internal/netsim"
	"ice/internal/sched"
	"ice/internal/testutil"
	"ice/internal/workflow"
)

// grabRunner wraps a sched.Runner and captures each job's context so
// the crash seam can block until the kill has actually cut the job —
// the same trick the recovery tests use.
type grabRunner struct {
	inner sched.Runner
	mu    sync.Mutex
	ctxs  map[string]context.Context
}

func (r *grabRunner) Run(ctx context.Context, job sched.Job, emit func(string, string)) (json.RawMessage, error) {
	r.mu.Lock()
	r.ctxs[job.ID] = ctx
	r.mu.Unlock()
	return r.inner.Run(ctx, job, emit)
}

func (r *grabRunner) ctx(id string) context.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctxs[id]
}

// runDAGSmoke is the DAG-engine acceptance drill (make dag-smoke):
//
//  1. equivalence — the shipped examples/dag/cv_classic.json spec, run
//     on a fresh simulated lab, must reproduce the hardwired cv job's
//     measurement bit for bit (same SHA-256) and the same ML normality
//     verdict on an equally fresh lab;
//  2. caching — resubmitting the identical spec serves every cacheable
//     node (acquire/retrieve/analyze/classify) from the content-keyed
//     cache: the audit journal still shows exactly one acquisition,
//     while the effectful fill honestly re-runs;
//  3. crash-resume — the daemon dies (kill -9 semantics) right after
//     the retrieve node checkpoints; a fresh daemon over the same
//     state directory resumes, restores the finished nodes from the
//     journal + blob store, and completes with every liquid-moving
//     command and acquisition having run exactly once;
//  4. the campaign_round.json example (two cells, overlapped
//     instrument/WAN phases) completes with both analyze branches;
//  5. no leases or goroutines leak.
func runDAGSmoke(dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	baseline := runtime.NumGoroutine()

	classicSpec, err := os.ReadFile(filepath.Join("examples", "dag", "cv_classic.json"))
	if err != nil {
		return fmt.Errorf("read example spec (run from the repo root): %v", err)
	}
	campaignSpec, err := os.ReadFile(filepath.Join("examples", "dag", "campaign_round.json"))
	if err != nil {
		return err
	}
	clf, err := dag.ClassifierForSeed(dag.DefaultClassifierSeed)
	if err != nil {
		return err
	}

	// Drill 1a: the classic hardwired cv job on lab A.
	labA, schedA, err := smokeLab(filepath.Join(dir, "a"))
	if err != nil {
		return err
	}
	defer labA.Close()
	schedA.s.SetRunner(&sched.LabRunner{
		Connector:  schedA.connector,
		Leases:     schedA.s.Leases(),
		Dir:        schedA.s.Dir(),
		Classifier: clf,
	})
	if err := schedA.s.Start(); err != nil {
		return err
	}
	defer schedA.s.Stop()
	classicJob, err := smokeRun(schedA.s, sched.JobSpec{Tenant: "acl", Kind: sched.KindCV})
	if err != nil {
		return fmt.Errorf("classic cv job: %v", err)
	}
	var classic sched.CVResult
	if err := json.Unmarshal(classicJob.Result, &classic); err != nil {
		return err
	}
	log.Printf("dag-smoke: classic path measured %s sha %.12s verdict %q",
		classic.File, classic.SHA256, classic.ClassName)

	// Drill 1b: the same experiment as a declarative DAG on fresh lab B.
	labB, schedB, err := smokeLab(filepath.Join(dir, "b"))
	if err != nil {
		return err
	}
	defer labB.Close()
	schedB.s.SetRunner(&sched.LabRunner{
		Connector:  schedB.connector,
		Leases:     schedB.s.Leases(),
		Dir:        schedB.s.Dir(),
		Classifier: clf,
		Metrics:    schedB.s.Metrics(),
	})
	if err := schedB.s.Start(); err != nil {
		return err
	}
	defer schedB.s.Stop()
	dagSpec := sched.JobSpec{Tenant: "acl", Kind: sched.KindDAG, DAG: classicSpec}
	dagJob, err := smokeRun(schedB.s, dagSpec)
	if err != nil {
		return fmt.Errorf("dag job: %v", err)
	}
	res, err := decodeDAGResult(dagJob.Result)
	if err != nil {
		return err
	}
	if got := res["d_retrieve"].Digest; got != classic.SHA256 {
		return fmt.Errorf("digest equivalence FAILED: dag %.12s vs classic %.12s", got, classic.SHA256)
	}
	if got := res["d_analyze"].Points; got != classic.Points {
		return fmt.Errorf("points diverged: dag %d vs classic %d", got, classic.Points)
	}
	if got := res["d_classify"].ClassName; got != classic.ClassName {
		return fmt.Errorf("verdict diverged: dag %q vs classic %q", got, classic.ClassName)
	}
	log.Printf("dag-smoke: DAG path digest-identical to classic (%.12s…) with matching verdict %q",
		classic.SHA256, classic.ClassName)

	// Drill 2: resubmit the identical spec — cacheable nodes hit, the
	// instrument stays untouched.
	rerunJob, err := smokeRun(schedB.s, dagSpec)
	if err != nil {
		return fmt.Errorf("cached re-run: %v", err)
	}
	var rerun dag.Result
	if err := json.Unmarshal(rerunJob.Result, &rerun); err != nil {
		return err
	}
	if rerun.NodesCached < 4 {
		return fmt.Errorf("re-run served %d nodes from cache, want >= 4", rerun.NodesCached)
	}
	counts, err := smokeAudit(labB.dir)
	if err != nil {
		return err
	}
	if counts["StartChannelSP200"] != 1 {
		return fmt.Errorf("cached re-run touched the instrument: %d acquisitions (want 1)", counts["StartChannelSP200"])
	}
	if counts["DispenseSyringePump"] != 2 {
		return fmt.Errorf("fill ran %d times across two submissions, want 2 (never cached)", counts["DispenseSyringePump"])
	}
	log.Printf("dag-smoke: re-run served %d/%d nodes from cache, acquisition count still 1",
		rerun.NodesCached, len(rerun.Nodes))

	// Drill 3: kill -9 mid-DAG, restart, resume exactly once.
	if err := dagCrashDrill(filepath.Join(dir, "c"), classicSpec); err != nil {
		return fmt.Errorf("crash drill: %v", err)
	}

	// Drill 4: the two-cell campaign round on its own fresh lab (the
	// earlier drills left lab B's cell filled; lab physics would
	// rightly overflow it).
	labD, schedD, err := smokeLab(filepath.Join(dir, "d"))
	if err != nil {
		return err
	}
	defer labD.Close()
	schedD.s.SetRunner(&sched.LabRunner{
		Connector: schedD.connector,
		Leases:    schedD.s.Leases(),
		Dir:       schedD.s.Dir(),
	})
	if err := schedD.s.Start(); err != nil {
		return err
	}
	defer schedD.s.Stop()
	campJob, err := smokeRun(schedD.s, sched.JobSpec{Tenant: "acl", Kind: sched.KindDAG, DAG: campaignSpec})
	if err != nil {
		return fmt.Errorf("campaign round: %v", err)
	}
	camp, err := decodeDAGResult(campJob.Result)
	if err != nil {
		return err
	}
	for _, id := range []string{"c1_analyze", "c2_analyze"} {
		if camp[id].Points == 0 {
			return fmt.Errorf("campaign branch %s produced no analysis", id)
		}
	}
	log.Printf("dag-smoke: campaign round analyzed both cells (peaks %.2f / %.2f µA)",
		camp["c1_analyze"].AnodicPeakUA, camp["c2_analyze"].AnodicPeakUA)

	// Drill 5: nothing leaked.
	for _, s := range []*sched.Scheduler{schedA.s, schedB.s, schedD.s} {
		if active := s.Leases().Active(); len(active) != 0 {
			return fmt.Errorf("leaked leases: %+v", active)
		}
	}
	schedA.s.Stop()
	schedB.s.Stop()
	schedD.s.Stop()
	labA.Close()
	labB.Close()
	labD.Close()
	if err := testutil.WaitGoroutines(baseline, 8, 5*time.Second); err != nil {
		return err
	}
	log.Printf("dag-smoke: goroutines settled (baseline %d)", baseline)
	return nil
}

// dagCrashDrill kills the daemon the moment d_retrieve checkpoints,
// restarts over the same state directory, and verifies exactly-once
// completion with the finished nodes restored from journal + cache.
func dagCrashDrill(dir string, spec json.RawMessage) error {
	lab, env, err := smokeLab(dir)
	if err != nil {
		return err
	}
	defer lab.Close()

	killed := make(chan struct{})
	var crashOnce sync.Once
	lab1 := &sched.LabRunner{Connector: env.connector, Leases: env.s.Leases(), Dir: env.s.Dir()}
	grab := &grabRunner{inner: lab1, ctxs: make(map[string]context.Context)}
	lab1.OnTask = func(jobID string, rec workflow.TaskRecord) {
		if rec.TaskID != "d_retrieve" || rec.Status != "OK" {
			return
		}
		crashOnce.Do(func() {
			// Kill waits for the worker goroutine this callback runs in, so
			// it must fire concurrently; holding here until the job context
			// dies models the process vanishing mid-node.
			go func() {
				env.s.Kill()
				close(killed)
			}()
			<-grab.ctx(jobID).Done()
		})
	}
	env.s.SetRunner(grab)
	if err := env.s.Start(); err != nil {
		return err
	}
	job, err := env.s.Submit(sched.JobSpec{Tenant: "acl", Kind: sched.KindDAG, DAG: spec})
	if err != nil {
		return err
	}
	select {
	case <-killed:
		log.Printf("dag-smoke: daemon killed after d_retrieve checkpointed (job %s)", job.ID)
	case <-time.After(60 * time.Second):
		return fmt.Errorf("daemon never died at the crash seam")
	}

	// Incarnation two over the same WAL.
	s2, err := sched.New(sched.Config{Dir: env.s.Dir(), Workers: 1})
	if err != nil {
		return err
	}
	recovered, ok := s2.Job(job.ID)
	if !ok {
		return fmt.Errorf("crashed job missing after WAL replay")
	}
	if recovered.State != sched.StatePending || !recovered.Resumed {
		return fmt.Errorf("replayed job = %s resumed=%v, want PENDING resumed", recovered.State, recovered.Resumed)
	}
	s2.SetRunner(&sched.LabRunner{Connector: env.connector, Leases: s2.Leases(), Dir: s2.Dir()})
	if err := s2.Start(); err != nil {
		return err
	}
	defer s2.Stop()
	final, err := smokeWait(s2, job.ID)
	if err != nil {
		return err
	}
	if final.Attempts != 2 || !final.Resumed {
		return fmt.Errorf("resumed job attempts=%d resumed=%v, want 2 resumed", final.Attempts, final.Resumed)
	}
	var res dag.Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		return err
	}
	if res.NodesRestored == 0 {
		return fmt.Errorf("resume restored no nodes from the checkpoint journal")
	}
	counts, err := smokeAudit(lab.dir)
	if err != nil {
		return err
	}
	for _, method := range []string{"WithdrawSyringePump", "DispenseSyringePump", "StartChannelSP200"} {
		if counts[method] != 1 {
			return fmt.Errorf("exactly-once violated: %s ran %d times", method, counts[method])
		}
	}
	if active := s2.Leases().Active(); len(active) != 0 {
		return fmt.Errorf("leaked leases after recovery: %+v", active)
	}
	log.Printf("dag-smoke: crash-resume DONE on attempt 2, %d nodes restored, audit exactly-once", res.NodesRestored)
	return nil
}

// smokeEnv bundles one scheduler and its lab connector.
type smokeEnv struct {
	s         *sched.Scheduler
	connector *sched.DeploymentConnector
}

// smokeDeployment is a deployment plus its lab directory (where the
// audit journal lives).
type smokeDeployment struct {
	*core.Deployment
	dir string
}

// smokeLab stands up one fresh audited lab and an idle scheduler.
func smokeLab(dir string) (*smokeDeployment, *smokeEnv, error) {
	labDir := filepath.Join(dir, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		return nil, nil, err
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("deploy simulated lab: %v", err)
	}
	if err := d.Agent.EnableAudit(); err != nil {
		d.Close()
		return nil, nil, err
	}
	s, err := sched.New(sched.Config{Dir: filepath.Join(dir, "state"), Workers: 1})
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	return &smokeDeployment{Deployment: d, dir: labDir},
		&smokeEnv{s: s, connector: &sched.DeploymentConnector{D: d, Host: netsim.HostDGX}}, nil
}

func smokeRun(s *sched.Scheduler, spec sched.JobSpec) (sched.Job, error) {
	job, err := s.Submit(spec)
	if err != nil {
		return sched.Job{}, err
	}
	return smokeWait(s, job.ID)
}

func smokeWait(s *sched.Scheduler, id string) (sched.Job, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := s.WaitTerminal(ctx, id)
	if err != nil {
		return sched.Job{}, err
	}
	if final.State != sched.StateDone {
		return sched.Job{}, fmt.Errorf("job %s = %s: %s", id, final.State, final.Error)
	}
	return final, nil
}

func smokeAudit(labDir string) (map[string]int, error) {
	data, err := os.ReadFile(filepath.Join(labDir, core.AuditFileName))
	if err != nil {
		return nil, err
	}
	entries, err := core.ParseAuditJournal(data)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	for _, e := range entries {
		counts[e.Method]++
	}
	return counts, nil
}

func decodeDAGResult(raw json.RawMessage) (map[string]dag.NodeResult, error) {
	var res dag.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	nodes := make(map[string]dag.NodeResult, len(res.Nodes))
	for _, n := range res.Nodes {
		nodes[n.Node] = n
	}
	return nodes, nil
}
