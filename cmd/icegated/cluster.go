package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/sched"
	"ice/internal/sched/cluster"
	"ice/internal/trace"
	"ice/internal/workflow"
)

// assignments is a repeatable "name=value" flag (-peer facb=http://b:9700).
type assignments map[string]string

func (a assignments) String() string {
	var parts []string
	for k, v := range a {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (a assignments) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" || val == "" {
		return fmt.Errorf("want facility=value, got %q", s)
	}
	a[name] = val
	return nil
}

// clusterPeers assembles the peer table from the -peer / -peer-lab
// flags. A peer without a -peer-lab probe address never triggers a
// failover from this node (the fencing probe always fails): silence
// is then always treated as a partition, the safe default.
func clusterPeers(peers, labs assignments) ([]cluster.Peer, error) {
	var out []cluster.Peer
	for fac, url := range peers {
		out = append(out, cluster.Peer{Facility: fac, URL: url, LabAddr: labs[fac]})
	}
	for fac := range labs {
		if _, ok := peers[fac]; !ok {
			return nil, fmt.Errorf("-peer-lab %s without a matching -peer", fac)
		}
	}
	return out, nil
}

// serveCluster runs the federated gateway: the local scheduler wrapped
// in a cluster node that heartbeats its peers, replicates the WAL and
// checkpoint journals, and adopts a dead peer's jobs after fencing.
func serveCluster(listen string, node *cluster.Node) {
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: node}
	go func() {
		if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}()
	st := node.Ready()
	log.Printf("icegated: facility %s (%s, term %d) listening on http://%s, %d peer(s)",
		node.Facility(), st.Role, st.Term, l.Addr(), len(st.Peers))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Print("icegated: shutting down (queued jobs stay PENDING in the replicated WAL)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	node.Stop()
}

// smokeGrabRunner captures each job's context so the crash seam can
// wait for the kill to land before releasing the workflow engine.
type smokeGrabRunner struct {
	inner sched.Runner
	mu    sync.Mutex
	ctxs  map[string]context.Context
}

func (r *smokeGrabRunner) Run(ctx context.Context, job sched.Job, emit func(string, string)) (json.RawMessage, error) {
	r.mu.Lock()
	r.ctxs[job.ID] = ctx
	r.mu.Unlock()
	return r.inner.Run(ctx, job, emit)
}

func (r *smokeGrabRunner) ctx(id string) context.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctxs[id]
}

// runClusterSmoke is the make cluster-smoke acceptance drill: two
// in-process facility gateways over real TCP share one simulated lab;
// a CV job submitted to facility A is cut down mid-run by killing A's
// gateway (kill -9 semantics), and facility B must adopt it from the
// replicated WAL within 10 seconds and finish it exactly once. State
// and the exported trace JSONL land under dir for CI artifacts.
func runClusterSmoke(dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	labDir := filepath.Join(dir, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		return err
	}
	dep, err := core.Deploy(labDir, 0)
	if err != nil {
		return fmt.Errorf("deploy simulated lab: %w", err)
	}
	defer dep.Close()
	if err := dep.Agent.EnableAudit(); err != nil {
		return err
	}
	connector := &sched.DeploymentConnector{D: dep, Host: netsim.HostDGX}

	exporter, err := trace.NewJSONLExporter(filepath.Join(dir, "cluster_smoke_trace.jsonl"), 200*time.Millisecond)
	if err != nil {
		return err
	}
	defer exporter.Close()
	tracer := trace.New(
		trace.WithStore(trace.NewStore(0, 0)),
		trace.WithExporter(exporter),
	)

	lisA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	lisB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	urlA := "http://" + lisA.Addr().String()
	urlB := "http://" + lisB.Addr().String()
	// Both nodes live in this process next to the lab: the fencing
	// probe trivially passes, which is the point — the drill exercises
	// the crashed-gateway path, not the partition path.
	labAlive := func(ctx context.Context) error { return nil }

	killed := make(chan struct{})
	var crashOnce sync.Once
	var srvA *http.Server
	var nodeA *cluster.Node
	nodeA, err = cluster.NewNode(cluster.Config{
		Facility: "faca",
		Peers:    []cluster.Peer{{Facility: "facb", URL: urlB, Probe: labAlive}},
		Sched:    sched.Config{Dir: filepath.Join(dir, "state-a"), Workers: 1, Tracer: tracer},
		NewRunner: func(n *cluster.Node, fac string) sched.Runner {
			lr := &sched.LabRunner{
				Connector:     connector,
				Leases:        n.Scheduler().Leases(),
				Dir:           n.Scheduler().Dir(),
				Resources:     cluster.FacilityResources(fac),
				MirrorJournal: n.MirrorJournal,
			}
			grab := &smokeGrabRunner{inner: lr, ctxs: make(map[string]context.Context)}
			lr.OnTask = func(jobID string, rec workflow.TaskRecord) {
				if rec.TaskID != "C" || rec.Status != "OK" {
					return
				}
				crashOnce.Do(func() {
					log.Printf("cluster-smoke: killing facility A's gateway at the C→D task boundary of %s", jobID)
					go func() {
						srvA.Close()
						nodeA.Kill()
						close(killed)
					}()
					<-grab.ctx(jobID).Done()
				})
			}
			return grab
		},
		HeartbeatEvery: 100 * time.Millisecond,
		FailoverAfter:  500 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	nodeB, err := cluster.NewNode(cluster.Config{
		Facility: "facb",
		Peers:    []cluster.Peer{{Facility: "faca", URL: urlA, Probe: labAlive}},
		Sched:    sched.Config{Dir: filepath.Join(dir, "state-b"), Workers: 1, Tracer: tracer},
		NewRunner: func(n *cluster.Node, fac string) sched.Runner {
			return &sched.LabRunner{
				Connector:     connector,
				Leases:        n.Scheduler().Leases(),
				Dir:           n.Scheduler().Dir(),
				Resources:     cluster.FacilityResources(fac),
				MirrorJournal: n.MirrorJournal,
			}
		},
		HeartbeatEvery: 100 * time.Millisecond,
		FailoverAfter:  500 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	srvA = &http.Server{Handler: nodeA}
	srvB := &http.Server{Handler: nodeB}
	go srvA.Serve(lisA)
	go srvB.Serve(lisB)
	defer srvB.Close()
	if err := nodeB.Start(); err != nil {
		return err
	}
	defer nodeB.Stop()
	if err := nodeA.Start(); err != nil {
		return err
	}
	log.Printf("cluster-smoke: faca on %s, facb on %s", urlA, urlB)

	// Wait for the heartbeat mesh so replication is synchronous before
	// the job is admitted.
	deadline := time.Now().Add(10 * time.Second)
	for !(nodeA.Ready().Peers["facb"] && nodeB.Ready().Peers["faca"]) {
		if time.Now().After(deadline) {
			return fmt.Errorf("peers never saw each other")
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Post(urlA+"/v1/jobs", "application/json",
		strings.NewReader(`{"tenant":"acl","kind":"cv","points":400}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		return err
	}
	log.Printf("cluster-smoke: submitted %s to faca", job.ID)

	select {
	case <-killed:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("facility A's gateway never died at the crash seam")
	}
	killedAt := time.Now()

	// Failover must land within 10s: B notices the silence, fences,
	// and adopts the replicated job.
	for {
		if _, known := nodeB.Scheduler().Job(job.ID); known {
			break
		}
		if time.Since(killedAt) > 10*time.Second {
			return fmt.Errorf("facility B did not adopt %s within 10s of the kill", job.ID)
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("cluster-smoke: facb adopted %s %s after the kill", job.ID, time.Since(killedAt).Round(time.Millisecond))

	waitDeadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(urlB + "/v1/jobs/" + job.ID)
		if err != nil {
			return err
		}
		var cur sched.Job
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if cur.State.Terminal() {
			if cur.State != sched.StateDone || cur.Attempts != 2 || !cur.Resumed {
				return fmt.Errorf("adopted job ended %s attempts=%d resumed=%v (%s), want DONE/2/resumed",
					cur.State, cur.Attempts, cur.Resumed, cur.Error)
			}
			break
		}
		if time.Now().After(waitDeadline) {
			return fmt.Errorf("adopted job %s did not finish in time", job.ID)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Exactly-once: each liquid-moving command appears once in the
	// lab's audit journal despite the mid-run kill.
	auditData, err := os.ReadFile(filepath.Join(labDir, core.AuditFileName))
	if err != nil {
		return err
	}
	entries, err := core.ParseAuditJournal(auditData)
	if err != nil {
		return err
	}
	counts := make(map[string]int)
	for _, e := range entries {
		counts[e.Method]++
	}
	for _, method := range []string{"WithdrawSyringePump", "DispenseSyringePump", "StartChannelSP200"} {
		if counts[method] != 1 {
			return fmt.Errorf("audit journal shows %s ×%d, want exactly once", method, counts[method])
		}
	}

	// The survivor's health endpoints reflect the takeover.
	resp, err = http.Get(urlB + "/v1/readyz")
	if err != nil {
		return err
	}
	var ready sched.ReadyStatus
	err = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || !ready.Ready || ready.Role != "leader" {
		return fmt.Errorf("survivor readiness = HTTP %d %+v, want ready leader", resp.StatusCode, ready)
	}
	log.Printf("cluster-smoke: %s DONE exactly once on facb (attempt 2, audit clean)", job.ID)
	return nil
}
