package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/potentiostat"
	"ice/internal/sched"
	"ice/internal/sched/health"
	"ice/internal/testutil"
	"ice/internal/trace"
	"ice/internal/workflow"
)

// runHealthSmoke is the instrument-health acceptance drill (make
// health-smoke). It wedges the simulated potentiostat mid-acquisition
// and requires the full supervision loop to fire:
//
//  1. the acquire-phase budget detects the wedge in seconds, the
//     breaker trips, the instrument is quarantined and fenced
//     (AbortSP200), and the job is checkpoint-requeued, not failed;
//  2. once the fault clears, a half-open recovery probe (status read +
//     busy=0) closes the breaker and the requeued job resumes from its
//     journal and completes — with every liquid-handling command and
//     every completed acquisition happening exactly once;
//  3. the job's trace carries instrument.quarantine and
//     instrument.recovered events, /v1/healthz shows the breaker's
//     open/recover history, and no lease or goroutine leaks;
//  4. separately, a submission whose deadline is below the facility
//     minimum bounces at admission with 503 + Retry-After instead of
//     ever occupying a lease.
func runHealthSmoke(dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	baseline := runtime.NumGoroutine()

	labDir := filepath.Join(dir, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		return err
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		return fmt.Errorf("deploy simulated lab: %v", err)
	}
	defer d.Close()
	connector := &sched.DeploymentConnector{D: d, Host: netsim.HostDGX}

	exp, err := trace.NewJSONLExporter(filepath.Join(dir, "trace.jsonl"), 100*time.Millisecond)
	if err != nil {
		return err
	}
	defer exp.Close()
	tracer := trace.New(
		trace.WithStore(trace.NewStore(0, 0)),
		trace.WithRecorder(trace.NewRecorder(512)),
		trace.WithExporter(exp),
	)

	s, err := sched.New(sched.Config{
		Dir:           filepath.Join(dir, "state"),
		QueueCapacity: 16,
		Workers:       2,
		LeaseTTL:      2 * time.Second,
		RetryAfter:    time.Second,
		Tracer:        tracer,
		Health: sched.HealthConfig{
			ProbeInterval:    200 * time.Millisecond,
			ProbeTimeout:     500 * time.Millisecond,
			FailureThreshold: 2,
			OpenFor:          time.Second,
			RetryBudget:      2,
			MinDeadline:      500 * time.Millisecond,
		},
	})
	if err != nil {
		return err
	}

	// The fault arms at an exact task boundary: the moment task C (the
	// cell fill) checkpoints OK, the potentiostat wedges — commands
	// still answer, but acquisition streaming stalls. Task D's acquire
	// budget is the only thing that can catch it.
	sp := d.Agent.SP200()
	var wedgeOnce sync.Once
	s.SetRunner(&sched.LabRunner{
		Connector:     connector,
		Leases:        s.Leases(),
		Dir:           s.Dir(),
		WaitPoll:      10 * time.Millisecond,
		WaitTimeout:   30 * time.Second,
		AcquireBudget: 1500 * time.Millisecond,
		OnTask: func(jobID string, rec workflow.TaskRecord) {
			if rec.TaskID == "C" && rec.Status == "OK" {
				wedgeOnce.Do(func() {
					sp.InjectFault(potentiostat.DeviceFault{Mode: potentiostat.FaultWedgeBusy})
					log.Printf("health-smoke: wedged the potentiostat after task C (job %s)", jobID)
				})
			}
		},
	})
	gw := sched.NewGateway(s)
	prober := wireProber(s, gw, connector, sched.ResourceSP200, sched.ResourceJKem)
	defer prober.Close()
	if err := s.Start(); err != nil {
		return err
	}
	defer s.Stop()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: gw}
	go srv.Serve(l)
	defer srv.Close()
	base := "http://" + l.Addr().String()

	// Drill A: an unmeetable deadline must bounce at admission — 503
	// with a Retry-After hint — never reaching the queue or a lease.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"tenant": "acl", "kind": "cv", "deadline_ms": 100}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("deadline drill: want 503, got %s: %s", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("deadline drill: 503 carries no Retry-After header")
	}
	log.Printf("health-smoke: unmeetable deadline rejected at admission (503, Retry-After %ss)",
		resp.Header.Get("Retry-After"))

	// Drill B: the wedge. Submit a cv job; the OnTask hook wedges the
	// instrument after the fill.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"tenant": "acl", "kind": "cv", "points": 600}`))
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		return err
	}
	log.Printf("health-smoke: submitted %s", job.ID)

	getJob := func() (sched.Job, error) {
		resp, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			return sched.Job{}, err
		}
		defer resp.Body.Close()
		var cur sched.Job
		return cur, json.NewDecoder(resp.Body).Decode(&cur)
	}

	// The quarantine must checkpoint-requeue the job (Resumed flips
	// true), well inside the lease TTL it would otherwise ride out.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := getJob()
		if err != nil {
			return err
		}
		if cur.Resumed {
			log.Printf("health-smoke: %s checkpoint-requeued (attempt %d)", job.ID, cur.Attempts)
			break
		}
		if cur.State.Terminal() {
			return fmt.Errorf("job %s ended %s before any requeue: %s", job.ID, cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s was never checkpoint-requeued", job.ID)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Wait for the quarantine fence to land: the breaker-open abort is
	// asynchronous, and clearing the fault before it arrives would let
	// the wedged run complete behind the scheduler's back (which the
	// exactly-once audit below would rightly flag). The fence abort
	// terminates the wedged acquisition, so busy drops to 0 while the
	// fault is still injected — wedge-busy answers status by design.
	for !strings.Contains(sp.Status(), "busy=0") {
		if time.Now().After(deadline) {
			return fmt.Errorf("quarantine fence never aborted the wedged acquisition: %s", sp.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Clear the fault: the next half-open recovery probe sees an idle,
	// answering instrument and closes the breaker; the parked job
	// redispatches and resumes from its journal.
	sp.ClearFault()
	log.Print("health-smoke: fault cleared, waiting for recovery + resume")
	for {
		cur, err := getJob()
		if err != nil {
			return err
		}
		if cur.State.Terminal() {
			if cur.State != sched.StateDone {
				return fmt.Errorf("job %s ended %s: %s", job.ID, cur.State, cur.Error)
			}
			if cur.Attempts < 2 {
				return fmt.Errorf("job %s finished with %d attempt(s); the wedge never bit", job.ID, cur.Attempts)
			}
			log.Printf("health-smoke: %s DONE after %d attempts: %s", job.ID, cur.Attempts, cur.Result)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s did not finish after recovery", job.ID)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Exactly-once audit: the fill's dispense ran once (tasks A–C were
	// restored from the journal, not re-executed), and exactly one
	// acquisition completed (the wedged one was fenced into an abort,
	// never a second silent success).
	dispenses := 0
	for _, line := range d.Agent.SBC().CommandLog() {
		if strings.Contains(line, "SYRINGEPUMP_DISPENSE") {
			dispenses++
		}
	}
	if dispenses != 1 {
		return fmt.Errorf("exactly-once violated: %d dispense commands in the audit log (want 1)", dispenses)
	}
	completed := 0
	for _, line := range sp.EventLog() {
		if strings.Contains(line, "> data record") {
			completed++
		}
	}
	if completed != 1 {
		return fmt.Errorf("exactly-once violated: %d completed acquisitions (want 1)", completed)
	}

	// The breaker's history must show the round trip: opened at least
	// once, recovered, and closed now.
	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		return err
	}
	var hz struct {
		OK          bool                    `json:"ok"`
		Quarantined int                     `json:"quarantined"`
		Instruments []health.ResourceHealth `json:"instruments"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if hz.Quarantined != 0 {
		return fmt.Errorf("healthz still reports %d quarantined instruments", hz.Quarantined)
	}
	sawRoundTrip := false
	for _, ih := range hz.Instruments {
		if ih.Resource == sched.ResourceSP200 && ih.Opens >= 1 && ih.Recovered >= 1 && ih.State == health.Closed {
			sawRoundTrip = true
		}
	}
	if !sawRoundTrip {
		return fmt.Errorf("healthz shows no open→recover round trip for %s: %+v", sched.ResourceSP200, hz.Instruments)
	}

	// The stitched trace must tell the story: quarantine and recovery
	// events landed on the job's spans.
	resp, err = http.Get(base + "/v1/traces/" + job.TraceID)
	if err != nil {
		return err
	}
	var tr sched.TraceResponse
	err = json.NewDecoder(resp.Body).Decode(&tr)
	resp.Body.Close()
	if err != nil {
		return err
	}
	wantEvents := map[string]bool{"instrument.quarantine": false, "instrument.recovered": false, "sched.requeue": false}
	for _, rec := range tr.Spans {
		for _, ev := range rec.Events {
			if _, ok := wantEvents[ev.Name]; ok {
				wantEvents[ev.Name] = true
			}
		}
	}
	for name, seen := range wantEvents {
		if !seen {
			return fmt.Errorf("trace %s is missing a %s event", job.TraceID, name)
		}
	}

	// No leaked leases.
	resp, err = http.Get(base + "/v1/leases")
	if err != nil {
		return err
	}
	var leases struct {
		Leases []sched.LeaseInfo `json:"leases"`
	}
	err = json.NewDecoder(resp.Body).Decode(&leases)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if len(leases.Leases) != 0 {
		return fmt.Errorf("leaked leases after completion: %+v", leases.Leases)
	}

	// No leaked goroutines: tear everything down and require the count
	// to settle back near the pre-drill baseline.
	srv.Close()
	s.Stop()
	prober.Close()
	exp.Close()
	d.Close()
	if err := testutil.WaitGoroutines(baseline, 8, 5*time.Second); err != nil {
		return err
	}
	log.Printf("health-smoke: goroutines settled (baseline %d)", baseline)
	return nil
}
