package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ice/internal/sched"
)

func acceptSubmit(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/jobs" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(sched.Job{ID: "facb-000001", Tenant: "acl", State: sched.StatePending})
	}
}

// TestGatewayClientFailsOverOn503 is the satellite's contract: a
// gateway answering 503 + Retry-After (its peer facility is
// unreachable from there) must not stall the client for the hint —
// the next endpoint is tried immediately and, once it answers, stays
// pinned.
func TestGatewayClientFailsOverOn503(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"facility facb unreachable (partitioned)"}`))
	}))
	defer busy.Close()
	var served atomic.Int64
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		acceptSubmit(t)(w, r)
	}))
	defer alive.Close()

	gc, err := newGatewayClient(busy.URL + ", " + alive.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	start := time.Now()
	job, err := gc.submit(ctx, []byte(`{"tenant":"acl","kind":"cv"}`))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "facb-000001" {
		t.Fatalf("job = %+v", job)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("failover took %v: client slept out the 30s Retry-After instead of rotating", elapsed)
	}

	// The surviving endpoint is pinned: the next call goes there
	// directly, no repeat visit to the 503ing gateway.
	if _, err := gc.submit(ctx, []byte(`{"tenant":"acl","kind":"cv"}`)); err != nil {
		t.Fatal(err)
	}
	if got := served.Load(); got != 2 {
		t.Fatalf("surviving endpoint served %d requests, want 2 (pinned after failover)", got)
	}
}

// TestGatewayClientFailsOverOnTransportError covers the killed-gateway
// shape: the first endpoint's TCP port is dead, the client must
// re-resolve to the surviving peer transparently.
func TestGatewayClientFailsOverOnTransportError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // port now refuses connections

	alive := httptest.NewServer(acceptSubmit(t))
	defer alive.Close()

	gc, err := newGatewayClient(deadURL + "," + alive.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	job, err := gc.submit(ctx, []byte(`{"tenant":"acl","kind":"cv"}`))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "facb-000001" {
		t.Fatalf("job = %+v", job)
	}
}

// TestGatewayClientHonorsRetryAfterWhenAllUnavailable: when every
// endpoint 503s, the client sleeps out the hint before the next sweep
// instead of hot-looping.
func TestGatewayClientHonorsRetryAfterWhenAllUnavailable(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		acceptSubmit(t)(w, r)
	}))
	defer flaky.Close()

	gc, err := newGatewayClient(flaky.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := gc.submit(ctx, []byte(`{"tenant":"acl","kind":"cv"}`)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s (the Retry-After hint)", elapsed)
	}
}

// TestGatewayClientRejectsValidationErrors: a 4xx is final, not a
// failover trigger.
func TestGatewayClientRejectsValidationErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "sched: job spec needs a kind", http.StatusBadRequest)
	}))
	defer srv.Close()
	gc, err := newGatewayClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gc.submit(context.Background(), []byte(`{"tenant":"acl"}`)); err == nil {
		t.Fatal("validation error did not surface")
	}
}

// A permanent 503 (deadline below the facility floor) fails over —
// another facility may have a lower floor — but once every endpoint
// has permanently rejected the request the client gives up instead of
// sleeping out Retry-After forever.
func TestGatewayClientGivesUpWhenAllRejectPermanently(t *testing.T) {
	reject := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"deadline 100ms below this facility's minimum 500ms","retry_after_s":30,"permanent":true}`))
	}
	a := httptest.NewServer(http.HandlerFunc(reject))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(reject))
	defer b.Close()

	gc, err := newGatewayClient(a.URL + "," + b.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := gc.submit(ctx, []byte(`{"tenant":"acl","kind":"cv","deadline_ms":100}`)); err == nil {
		t.Fatal("permanently rejected submit reported success")
	} else if !strings.Contains(err.Error(), "rejected by every gateway") {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("gave up after %v: the client slept on a permanent rejection", elapsed)
	}
}
