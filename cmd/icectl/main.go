// Icectl is the remote-side CLI: it connects to a running
// cmd/controlagent over real TCP and drives workflows against it — the
// role the Jupyter notebook on the DGX plays in the paper.
//
//	icectl -agent localhost status
//	icectl -agent localhost fill
//	icectl -agent localhost cv
//	icectl -agent localhost workflow   # full tasks A–E
//	icectl -agent localhost -journal cv.journal workflow            # checkpoint progress
//	icectl -agent localhost -journal cv.journal -resume workflow    # resume after a crash
//	icectl -agent localhost -reliable -timeout 15m workflow         # chaos-tolerant session
//	icectl -agent localhost -reliable -reliable-data workflow       # both channels self-heal
//	icectl -agent localhost campaign   # adaptive target-peak search (agent needs -lab)
//	icectl -agent localhost qos        # control-RTT histogram + data throughput
//	icectl -agent localhost abort      # emergency-stop a running acquisition
//	icectl -agent localhost files
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"ice/internal/analysis"
	"ice/internal/campaign"
	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/potentiostat"
	"ice/internal/pyro"
	"ice/internal/units"
	"ice/internal/workflow"
)

func main() {
	agentHost := flag.String("agent", "localhost", "control agent host")
	controlPort := flag.Int("control-port", 9690, "control channel port")
	dataPort := flag.Int("data-port", 4450, "data channel port")
	volume := flag.Float64("volume", 6, "fill volume in mL")
	rate := flag.Float64("scan-rate", 50, "CV scan rate in mV/s")
	token := flag.String("token", "", "control-channel credential (must match the agent's -token)")
	targetUA := flag.Float64("target-peak", 30, "campaign target anodic peak in µA")
	fleetN := flag.Int("fleet", 1, "campaign: run N concurrent campaigns sharing the lab (targets spread ±20% around -target-peak)")
	readahead := flag.Int("readahead", datachan.DefaultReadahead, "data channel: chunk requests kept in flight per whole-file read (1 = serial)")
	timeout := flag.Duration("timeout", 0, "overall command deadline (0 = none), e.g. 15m")
	reliable := flag.Bool("reliable", false, "retry commands across transport faults with exactly-once semantics")
	wire := flag.String("wire", "v2", "control-channel framing: v2 negotiates the compact binary protocol (falling back automatically against old agents), v1 pins the legacy JSON framing")
	streamAnalysis := flag.Bool("stream-analysis", false, "workflow: tail the measurement file during acquisition and classify online, so the verdict is ready when the instrument is released")
	reliableData := flag.Bool("reliable-data", false, "self-healing data mount: redial the share and resume interrupted transfers from the last verified offset")
	journalPath := flag.String("journal", "", "workflow: checkpoint task progress to this file")
	resume := flag.Bool("resume", false, "workflow: restore completed tasks from -journal before executing")
	gateway := flag.String("gateway", "", "icegated URL(s), comma-separated for a federated cluster: verbs become submit|status|wait|trace|cancel against the scheduling gateway (503s and dead endpoints fail over to the next)")
	tenant := flag.String("tenant", "", "gateway: tenant identity for submit")
	kind := flag.String("kind", "cv", "gateway submit from flags: job kind, cv or scan (a scan job surveys and steers the facility's STEM; tile geometry via a spec file)")
	deadline := flag.Duration("deadline", 0, "gateway submit: end-to-end deadline from admission (0 = none); unmeetable deadlines are rejected with 503 + Retry-After instead of occupying a lease")
	dagSpec := flag.String("dag", "", "gateway: submit the declarative experiment DAG in this JSON file (\"-\" = stdin) as a dag job; implies the submit verb (see examples/dag/)")
	flag.Parse()
	if flag.NArg() < 1 && *dagSpec == "" {
		log.Fatal("usage: icectl [flags] status|fill|cv|eis|workflow|campaign|qos|abort|retain|replay|files\n" +
			"       icectl -gateway URL [flags] submit|status|wait|trace|cancel [args]\n" +
			"       icectl -gateway URL -tenant NAME -dag spec.json [wait]")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *gateway != "" {
		verb, rest := "submit", []string(nil)
		switch {
		case *dagSpec != "":
			// -dag implies submit; a trailing "wait" blocks on the result.
			rest = flag.Args()
		case flag.NArg() >= 1:
			verb, rest = flag.Arg(0), flag.Args()[1:]
		}
		runGateway(ctx, *gateway, verb, rest, gatewayOpts{
			tenant:   *tenant,
			kind:     *kind,
			scanRate: *rate,
			deadline: *deadline,
			dagPath:  *dagSpec,
		})
		return
	}
	if *dagSpec != "" {
		log.Fatal("-dag submits through a scheduling gateway: add -gateway URL")
	}

	var wireVersion int
	switch *wire {
	case "v2", "":
		wireVersion = 0 // newest: negotiate binary, fall back to JSON
	case "v1":
		wireVersion = 1
	default:
		log.Fatalf("unknown -wire %q (want v1 or v2)", *wire)
	}

	uri := pyro.URI{Object: core.JKemObject, Host: *agentHost, Port: *controlPort}
	sessionOpts := core.SessionOptions{Token: *token, WireVersion: wireVersion}
	var session *core.RemoteSession
	if *reliable {
		session = core.ConnectSessionReliable(uri, nil, sessionOpts)
	} else {
		var err error
		session, err = core.ConnectSessionOpts(uri, nil, sessionOpts)
		if err != nil {
			log.Fatalf("control channel: %v", err)
		}
	}
	defer session.Close()

	dataAddr := fmt.Sprintf("%s:%d", *agentHost, *dataPort)
	newMount := func() (datachan.Share, error) {
		if *reliableData {
			rm := datachan.NewReliableMount(func() (net.Conn, error) {
				return net.Dial("tcp", dataAddr)
			})
			rm.Readahead = *readahead
			return rm, nil
		}
		mountConn, err := net.Dial("tcp", dataAddr)
		if err != nil {
			return nil, err
		}
		m := datachan.NewMount(mountConn)
		m.SetReadahead(*readahead)
		return m, nil
	}
	mount, err := newMount()
	if err != nil {
		log.Fatalf("data channel: %v", err)
	}
	defer mount.Close()

	switch cmd := flag.Arg(0); cmd {
	case "status":
		jk, err := session.JKemStatus()
		if err != nil {
			log.Fatal(err)
		}
		sp, err := session.SP200Status()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("J-Kem:", jk)
		fmt.Println("SP200:", sp)

	case "fill":
		for _, step := range []struct {
			label string
			call  func() (string, error)
		}{
			{"set rate", func() (string, error) { return session.SetRateSyringePump(1, 5) }},
			{"select stock port", func() (string, error) { return session.SetPortSyringePump(1, 8) }},
			{"withdraw", func() (string, error) { return session.WithdrawSyringePump(1, *volume) }},
			{"select cell port", func() (string, error) { return session.SetPortSyringePump(1, 1) }},
			{"dispense", func() (string, error) { return session.DispenseSyringePump(1, *volume) }},
		} {
			out, err := step.call()
			if err != nil {
				log.Fatalf("%s: %v", step.label, err)
			}
			fmt.Printf("%-20s %s\n", step.label, out)
		}

	case "cv":
		params := core.PaperCVParams()
		params.RateMVs = *rate
		for _, step := range []struct {
			label string
			call  func() (string, error)
		}{
			{"initialize", func() (string, error) { return session.CallInitializeSP200API(core.PaperSystemParams()) }},
			{"connect", session.CallConnectSP200},
			{"load firmware", session.CallLoadFirmwareSP200},
			{"configure CV", func() (string, error) { return session.CallInitializeCVTechSP200(params) }},
			{"load technique", session.CallLoadTechniqueSP200},
			{"start channel", session.CallStartChannelSP200},
		} {
			out, err := step.call()
			if err != nil {
				log.Fatalf("%s: %v", step.label, err)
			}
			fmt.Printf("%-20s %s\n", step.label, out)
		}
		name, err := session.CallGetTechPathRslt()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("measurement file:", name)
		data, _, err := mount.WaitFor(name, 100*time.Millisecond, 10*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		mf, err := potentiostat.ParseMPT(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		e, i := analysis.FromRecords(mf.Records)
		summary, err := analysis.AnalyzeCV(e, i, units.Celsius(25))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(analysis.ASCIIPlot(e, i, 70, 20))
		fmt.Println(summary)

	case "workflow":
		cfg := core.PaperCVWorkflowConfig()
		cfg.CV.RateMVs = *rate
		cfg.Fill.VolumeML = *volume
		cfg.WaitPoll = 100 * time.Millisecond
		cfg.WaitTimeout = 10 * time.Minute
		cfg.StreamAnalysis = *streamAnalysis
		nb, outcome := core.BuildCVWorkflow(session, mount, cfg)
		if *resume {
			if *journalPath == "" {
				log.Fatal("-resume requires -journal")
			}
			data, err := os.ReadFile(*journalPath)
			if err != nil && !os.IsNotExist(err) {
				log.Fatalf("read journal: %v", err)
			}
			if err == nil {
				records, err := workflow.ReadJournal(bytes.NewReader(data))
				if err != nil {
					log.Fatalf("parse journal: %v", err)
				}
				if n := nb.Restore(records); n > 0 {
					fmt.Printf("resuming: %d completed task(s) restored from %s\n", n, *journalPath)
				}
			}
			// The crash may have left the instrument mid-pipeline, where
			// the resumed acquisition task could not legally re-run.
			if err := session.ResetSP200(); err != nil {
				log.Fatalf("reset instrument before resume: %v", err)
			}
		}
		if *journalPath != "" {
			dir, name := filepath.Split(*journalPath)
			if dir == "" {
				dir = "."
			}
			j, err := core.OpenAppendFile(dir, name)
			if err != nil {
				log.Fatalf("open journal: %v", err)
			}
			defer j.Close()
			nb.SetJournal(j)
		}
		if err := nb.Execute(ctx); err != nil {
			for _, line := range nb.Transcript() {
				fmt.Println(line)
			}
			log.Fatal(err)
		}
		for _, line := range nb.Transcript() {
			fmt.Println(line)
		}
		fmt.Println()
		for _, line := range nb.Summary() {
			fmt.Println(line)
		}
		if outcome.Streamed {
			fmt.Printf("streamed: %d online verdict(s) during acquisition, final analysis %v after instrument release\n",
				outcome.StreamEvals, outcome.VerdictReady.Sub(outcome.AcquireEnd).Round(time.Millisecond))
		}
		if outcome.Summary != nil {
			e, i := analysis.FromRecords(outcome.Records)
			fmt.Println(analysis.ASCIIPlot(e, i, 70, 20))
		}

	case "eis":
		for _, step := range []func() (string, error){
			func() (string, error) { return session.CallInitializeSP200API(core.PaperSystemParams()) },
			session.CallConnectSP200,
			session.CallLoadFirmwareSP200,
		} {
			if _, err := step(); err != nil {
				// Device may already be up from a previous command.
				break
			}
		}
		name, err := session.RunEIS(core.EISParams{FreqMinHz: 1, FreqMaxHz: 100_000, PointsPerDecade: 10})
		if err != nil {
			log.Fatal(err)
		}
		data, _, err := mount.WaitFor(name, 100*time.Millisecond, 10*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		label, points, err := potentiostat.ParseEIS(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		summary, err := analysis.AnalyzeEIS(points)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spectrum %s (%d points, condition %s)\n%s\n", name, len(points), label, summary)

	case "campaign":
		// Requires the agent to run with -lab.
		if *fleetN <= 1 {
			lab, err := core.ConnectLabSessionToken(uri, nil, *token)
			if err != nil {
				log.Fatalf("lab stations unreachable (start the agent with -lab): %v", err)
			}
			defer lab.Close()
			exec := &campaign.Executor{Session: lab, Mount: mount, CVPoints: 800}
			planner := &campaign.TargetPeakSearch{
				TargetPeakUA: *targetUA, MinMM: 0.25, MaxMM: 5,
			}
			history, err := exec.Run(planner)
			if err != nil {
				log.Fatalf("campaign after %d rounds: %v", len(history), err)
			}
			fmt.Println("round  conc(mM)  peak")
			for _, obs := range history {
				fmt.Printf("%5d  %8.3f  %v\n", obs.Round, obs.Params.ConcentrationMM, obs.Peak)
			}
			last := history[len(history)-1]
			fmt.Printf("converged: %.3f mM gives %v (target %.1f µA)\n",
				last.Params.ConcentrationMM, last.Peak, *targetUA)
			break
		}

		// Fleet mode: N concurrent target-peak searches share the lab.
		// The instrument phase serialises on the fleet gate while each
		// cell's WAN retrieval and analysis overlap its siblings'
		// acquisitions. Targets spread ±20% around -target-peak so the
		// fleet maps the concentration–peak curve, not one point N times.
		fleet := &campaign.Fleet{History: &campaign.SharedHistory{}}
		for i := 0; i < *fleetN; i++ {
			lab, err := core.ConnectLabSessionToken(uri, nil, *token)
			if err != nil {
				log.Fatalf("fleet cell %d: lab stations unreachable (start the agent with -lab): %v", i+1, err)
			}
			defer lab.Close()
			cellMount, err := newMount()
			if err != nil {
				log.Fatalf("fleet cell %d: data channel: %v", i+1, err)
			}
			defer cellMount.Close()
			spread := 1.0
			if *fleetN > 1 {
				spread = 0.8 + 0.4*float64(i)/float64(*fleetN-1)
			}
			fleet.Cells = append(fleet.Cells, campaign.FleetCell{
				Executor: &campaign.Executor{Session: lab, Mount: cellMount, CVPoints: 800},
				Planner: &campaign.TargetPeakSearch{
					TargetPeakUA: *targetUA * spread, MinMM: 0.25, MaxMM: 5,
				},
			})
		}
		start := time.Now()
		results, err := fleet.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fleet of %d campaigns finished in %v (%d observations)\n",
			len(results), time.Since(start).Round(time.Millisecond), fleet.History.Len())
		fmt.Println("cell     rounds  conc(mM)  peak")
		for _, res := range results {
			if res.Err != nil {
				fmt.Printf("%-8s FAILED after %d rounds: %v\n", res.Name, len(res.History), res.Err)
				continue
			}
			last := res.History[len(res.History)-1]
			fmt.Printf("%-8s %6d  %8.3f  %v\n",
				res.Name, len(res.History), last.Params.ConcentrationMM, last.Peak)
		}

	case "qos":
		files, err := mount.List()
		if err != nil {
			log.Fatal(err)
		}
		probe := ""
		if len(files) > 0 {
			probe = files[0].Name
		}
		report, err := core.MeasureQoS(session, mount, 50, probe, 5)
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range report.Lines() {
			fmt.Println(line)
		}

	case "replay":
		// Fetch the provenance journal off the share and re-execute it
		// against this agent — reproduce the recorded experiment.
		data, _, err := mount.WaitFor(core.AuditFileName, 100*time.Millisecond, 10*time.Second)
		if err != nil {
			log.Fatalf("no audit journal on the share (agent needs -audit): %v", err)
		}
		entries, err := core.ParseAuditJournal(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d journaled commands…\n", len(entries))
		results, err := core.ReplayJournal(entries, uri, nil, *token, true)
		if err != nil {
			log.Fatal(err)
		}
		failed := 0
		for _, r := range results {
			status := "OK"
			if r.Err != nil {
				status = "ERR " + r.Err.Error()
				failed++
			}
			fmt.Printf("  %3d %s.%s → %s\n", r.Entry.Seq, r.Entry.Object, r.Entry.Method, status)
		}
		fmt.Printf("replay complete: %d ok, %d failed\n", len(results)-failed, failed)

	case "abort":
		out, err := session.AbortSP200()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)

	case "retain":
		removed, err := session.RetainMeasurements(20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pruned %d old measurement files (kept newest 20)\n", removed)

	case "files":
		files, err := mount.List()
		if err != nil {
			log.Fatal(err)
		}
		if len(files) == 0 {
			fmt.Println("(no measurement files yet)")
		}
		for _, f := range files {
			fmt.Printf("%-32s %8d bytes  %s\n", f.Name, f.Size,
				time.Unix(0, f.ModTimeUnixNano).Format(time.RFC3339))
		}

	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
