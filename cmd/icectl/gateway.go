package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ice/internal/backoff"
	"ice/internal/sched"
	"ice/internal/trace"
)

// runGateway is icectl's client mode against an icegated scheduling
// gateway: instead of driving the lab directly, experiments are
// submitted as jobs and the gateway arbitrates tenants.
//
//	icectl -gateway http://host:9700 -tenant acl submit            # cv job from flags
//	icectl -gateway http://host:9700 -tenant acl submit spec.json  # spec from file ("-" = stdin)
//	icectl -gateway http://host:9700 -tenant acl -dag dag.json     # declarative experiment DAG
//	icectl -gateway http://host-a:9700,http://host-b:9700 wait jobID
//	icectl -gateway http://host:9700 status [jobID]
//	icectl -gateway http://host:9700 trace jobID    # span tree + critical path
//	icectl -gateway http://host:9700 cancel jobID
//
// -gateway takes one or more comma-separated endpoints — the federated
// cluster's gateways. Requests retry through the shared backoff
// policy: transport errors and 503 + Retry-After responses rotate to
// the next endpoint before sleeping (so a surviving peer answers
// immediately after a failover), and 429 responses honor the
// gateway's Retry-After hint in place.
// gatewayOpts carries the submit-shaping flags into gateway mode.
type gatewayOpts struct {
	tenant   string
	kind     string // -kind: flag-shaped submit kind (cv|scan)
	scanRate float64
	deadline time.Duration
	dagPath  string // -dag: wrap this DAG document in a dag job
}

func runGateway(ctx context.Context, gateways, verb string, args []string, opts gatewayOpts) {
	gc, err := newGatewayClient(gateways)
	if err != nil {
		log.Fatal(err)
	}
	switch verb {
	case "submit":
		var spec []byte
		switch {
		case opts.dagPath != "":
			// A DAG document is not a JobSpec: wrap it so the gateway's
			// admission validation (schema, cycles) sees a dag job.
			if opts.tenant == "" {
				log.Fatal("-dag needs -tenant")
			}
			var raw []byte
			var err error
			if opts.dagPath == "-" {
				raw, err = io.ReadAll(os.Stdin)
			} else {
				raw, err = os.ReadFile(opts.dagPath)
			}
			if err != nil {
				log.Fatalf("read dag spec: %v", err)
			}
			spec, _ = json.Marshal(sched.JobSpec{
				Tenant:     opts.tenant,
				Kind:       sched.KindDAG,
				DAG:        raw,
				DeadlineMS: opts.deadline.Milliseconds(),
			})
		case len(args) >= 1:
			var err error
			if args[0] == "-" {
				spec, err = io.ReadAll(os.Stdin)
			} else {
				spec, err = os.ReadFile(args[0])
			}
			if err != nil {
				log.Fatalf("read spec: %v", err)
			}
		case opts.tenant == "":
			log.Fatal("submit needs -tenant (or a spec file)")
		default:
			switch opts.kind {
			case "cv", "":
				spec, _ = json.Marshal(sched.JobSpec{
					Tenant:      opts.tenant,
					Kind:        sched.KindCV,
					ScanRateMVs: opts.scanRate,
					DeadlineMS:  opts.deadline.Milliseconds(),
				})
			case "scan":
				// Instrument-default geometry; non-default rasters go
				// through a spec file.
				spec, _ = json.Marshal(sched.JobSpec{
					Tenant:     opts.tenant,
					Kind:       sched.KindScan,
					Scan:       &sched.ScanSpec{},
					DeadlineMS: opts.deadline.Milliseconds(),
				})
			default:
				log.Fatalf("unknown -kind %q (want cv or scan; other kinds submit via a spec file)", opts.kind)
			}
		}
		job, err := gc.submit(ctx, spec)
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		fmt.Printf("%s %s submitted for tenant %s\n", job.ID, job.Spec.Kind, job.Tenant)
		if opts.dagPath != "" && len(args) >= 1 && args[0] == "wait" {
			waitJob(ctx, gc, job.ID)
		}

	case "status":
		if len(args) >= 1 {
			printJob(gc.job(ctx, args[0]))
			return
		}
		body, err := gc.get(ctx, "/v1/jobs")
		if err != nil {
			log.Fatal(err)
		}
		var list struct {
			Jobs []sched.Job `json:"jobs"`
		}
		if err := json.Unmarshal(body, &list); err != nil {
			log.Fatal(err)
		}
		fmt.Println("job       tenant        kind      state")
		for _, j := range list.Jobs {
			fmt.Printf("%-9s %-13s %-9s %s\n", j.ID, j.Tenant, j.Spec.Kind, j.State)
		}

	case "wait":
		if len(args) < 1 {
			log.Fatal("wait needs a job ID")
		}
		waitJob(ctx, gc, args[0])

	case "trace":
		if len(args) < 1 {
			log.Fatal("trace needs a job ID or trace ID")
		}
		// A job ID resolves to its trace; a 32-hex trace ID passes
		// straight through.
		id := args[0]
		if len(id) != 32 {
			job := gc.job(ctx, id)
			if job.TraceID == "" {
				log.Fatalf("job %s carries no trace ID (daemon predates tracing?)", id)
			}
			id = job.TraceID
		}
		body, err := gc.get(ctx, "/v1/traces/"+id)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		var tr sched.TraceResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			log.Fatal(err)
		}
		fmt.Print(trace.RenderTree(tr.Spans))
		fmt.Print(trace.RenderBreakdown(tr.Breakdown))

	case "cancel":
		if len(args) < 1 {
			log.Fatal("cancel needs a job ID")
		}
		resp, body, err := gc.do(ctx, http.MethodPost, "/v1/jobs/"+args[0]+"/cancel", nil)
		if err != nil {
			log.Fatalf("cancel: %v", err)
		}
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("cancel: %s: %s", resp.Status, body)
		}
		fmt.Printf("%s cancel requested\n", args[0])

	default:
		log.Fatalf("unknown gateway verb %q (want submit|status|wait|trace|cancel)", verb)
	}
}

// waitJob polls until the job reaches a terminal state, printing it
// and exiting nonzero on failure.
func waitJob(ctx context.Context, gc *gatewayClient, id string) {
	for {
		job := gc.job(ctx, id)
		if job.State.Terminal() {
			printJob(job)
			if job.State != sched.StateDone {
				os.Exit(1)
			}
			return
		}
		select {
		case <-ctx.Done():
			log.Fatalf("wait: %v", ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// gatewayClient talks to a federated gateway cluster through one or
// more endpoints. It pins the endpoint that answered last and
// re-resolves on failure: a transport error (gateway dead) or a 503 +
// Retry-After (facility unreachable from that gateway) rotates to the
// next endpoint immediately; only after every endpoint has failed in a
// row does the client sleep — honoring the largest Retry-After hint it
// was handed, or the jittered exponential policy when there was none.
// 429 (queue full) is not a failover signal: the client stays on the
// same endpoint and sleeps out the hint.
type gatewayClient struct {
	bases  []string
	cur    int
	client *http.Client
}

func newGatewayClient(spec string) (*gatewayClient, error) {
	var bases []string
	for _, b := range strings.Split(spec, ",") {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("gateway: no endpoints in %q", spec)
	}
	return &gatewayClient{bases: bases, client: http.DefaultClient}, nil
}

// do issues the request against the pinned endpoint, failing over
// across the others until one answers with something other than a
// transport error, 503, or 429. The response is returned with its
// body already read.
func (g *gatewayClient) do(ctx context.Context, method, path string, body []byte) (*http.Response, []byte, error) {
	var policy backoff.Policy
	seq := policy.StartWith(200*time.Millisecond, 5*time.Second)
	failed := 0            // consecutive endpoints that failed
	perm := 0              // consecutive permanent rejections
	var hint time.Duration // largest Retry-After seen this sweep
	for {
		base := g.bases[g.cur]
		req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		if len(body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := g.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			log.Printf("gateway %s: %v", base, err)
			if err := g.advance(ctx, &failed, &hint, seq); err != nil {
				return nil, nil, err
			}
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			if d := retryAfterHint(resp); d > hint {
				hint = d
			}
			// A permanent rejection (deadline below the facility floor)
			// cannot be cured by resubmitting the same request: fail
			// over, but once every endpoint has said so, give up
			// instead of sleeping on Retry-After forever.
			if permanentReject(data) {
				if perm++; perm >= len(g.bases) {
					return nil, nil, fmt.Errorf("rejected by every gateway: %s", strings.TrimSpace(string(data)))
				}
			} else {
				perm = 0
			}
			log.Printf("gateway %s unavailable: %s", base, strings.TrimSpace(string(data)))
			if err := g.advance(ctx, &failed, &hint, seq); err != nil {
				return nil, nil, err
			}
		case http.StatusTooManyRequests:
			perm = 0
			d := seq.Next()
			if h := retryAfterHint(resp); h > 0 {
				d = h
			}
			log.Printf("gateway busy: %s (retrying in %v)", strings.TrimSpace(string(data)), d)
			if err := sleepOrDone(ctx, d); err != nil {
				return nil, nil, err
			}
			failed = 0
		default:
			return resp, data, nil
		}
	}
}

// advance rotates to the next endpoint; once the whole list has failed
// in a row it sleeps (Retry-After hint or backoff) before the next
// sweep.
func (g *gatewayClient) advance(ctx context.Context, failed *int, hint *time.Duration, seq *backoff.Sequence) error {
	g.cur = (g.cur + 1) % len(g.bases)
	*failed++
	if *failed < len(g.bases) {
		return nil
	}
	d := seq.Next()
	if *hint > d {
		d = *hint
	}
	log.Printf("all %d gateway endpoints unavailable (retrying in %v)", len(g.bases), d)
	*failed, *hint = 0, 0
	return sleepOrDone(ctx, d)
}

// permanentReject reports whether a 503 body carries the gateway's
// permanent marker (the request itself can never be admitted there).
func permanentReject(data []byte) bool {
	var e struct {
		Permanent bool `json:"permanent"`
	}
	return json.Unmarshal(data, &e) == nil && e.Permanent
}

func retryAfterHint(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

func sleepOrDone(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// submit posts the spec until a gateway admits it; 4xx validation
// errors fail immediately.
func (g *gatewayClient) submit(ctx context.Context, spec []byte) (sched.Job, error) {
	resp, body, err := g.do(ctx, http.MethodPost, "/v1/jobs", spec)
	if err != nil {
		return sched.Job{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return sched.Job{}, fmt.Errorf("rejected: %s: %s", resp.Status, body)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		return sched.Job{}, fmt.Errorf("bad response: %w", err)
	}
	return job, nil
}

// get fetches a path, following the failover policy, and returns the
// body of a 200.
func (g *gatewayClient) get(ctx context.Context, path string) ([]byte, error) {
	resp, body, err := g.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, body)
	}
	return body, nil
}

func (g *gatewayClient) job(ctx context.Context, id string) sched.Job {
	body, err := g.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		log.Fatal(err)
	}
	return job
}

func printJob(job sched.Job) {
	fmt.Printf("%s  tenant=%s kind=%s state=%s attempts=%d\n",
		job.ID, job.Tenant, job.Spec.Kind, job.State, job.Attempts)
	if job.Error != "" {
		fmt.Printf("  error: %s\n", job.Error)
	}
	if len(job.Result) > 0 {
		fmt.Printf("  result: %s\n", job.Result)
	}
}
