package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ice/internal/backoff"
	"ice/internal/sched"
	"ice/internal/trace"
)

// runGateway is icectl's client mode against an icegated scheduling
// gateway: instead of driving the lab directly, experiments are
// submitted as jobs and the gateway arbitrates tenants.
//
//	icectl -gateway http://host:9700 -tenant acl submit            # cv job from flags
//	icectl -gateway http://host:9700 -tenant acl submit spec.json  # spec from file ("-" = stdin)
//	icectl -gateway http://host:9700 status [jobID]
//	icectl -gateway http://host:9700 wait jobID
//	icectl -gateway http://host:9700 trace jobID    # span tree + critical path
//	icectl -gateway http://host:9700 cancel jobID
//
// Submissions retry through the shared backoff policy: transport
// errors redial with jittered exponential delays, and 429 responses
// honor the gateway's Retry-After hint.
func runGateway(ctx context.Context, base, verb string, args []string, tenant string, scanRate float64) {
	base = strings.TrimRight(base, "/")
	switch verb {
	case "submit":
		var spec []byte
		switch {
		case len(args) >= 1:
			var err error
			if args[0] == "-" {
				spec, err = io.ReadAll(os.Stdin)
			} else {
				spec, err = os.ReadFile(args[0])
			}
			if err != nil {
				log.Fatalf("read spec: %v", err)
			}
		case tenant == "":
			log.Fatal("submit needs -tenant (or a spec file)")
		default:
			spec, _ = json.Marshal(sched.JobSpec{Tenant: tenant, Kind: sched.KindCV, ScanRateMVs: scanRate})
		}
		job := submitWithRetry(ctx, base, spec)
		fmt.Printf("%s %s submitted for tenant %s\n", job.ID, job.Spec.Kind, job.Tenant)

	case "status":
		if len(args) >= 1 {
			job := getJob(base, args[0])
			printJob(job)
			return
		}
		resp, err := http.Get(base + "/v1/jobs")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var list struct {
			Jobs []sched.Job `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			log.Fatal(err)
		}
		fmt.Println("job       tenant        kind      state")
		for _, j := range list.Jobs {
			fmt.Printf("%-9s %-13s %-9s %s\n", j.ID, j.Tenant, j.Spec.Kind, j.State)
		}

	case "wait":
		if len(args) < 1 {
			log.Fatal("wait needs a job ID")
		}
		id := args[0]
		for {
			job := getJob(base, id)
			if job.State.Terminal() {
				printJob(job)
				if job.State != sched.StateDone {
					os.Exit(1)
				}
				return
			}
			select {
			case <-ctx.Done():
				log.Fatalf("wait: %v", ctx.Err())
			case <-time.After(250 * time.Millisecond):
			}
		}

	case "trace":
		if len(args) < 1 {
			log.Fatal("trace needs a job ID or trace ID")
		}
		// A job ID resolves to its trace; a 32-hex trace ID passes
		// straight through.
		id := args[0]
		if len(id) != 32 {
			job := getJob(base, id)
			if job.TraceID == "" {
				log.Fatalf("job %s carries no trace ID (daemon predates tracing?)", id)
			}
			id = job.TraceID
		}
		resp, err := http.Get(base + "/v1/traces/" + id)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("trace: %s: %s", resp.Status, body)
		}
		var tr sched.TraceResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			log.Fatal(err)
		}
		fmt.Print(trace.RenderTree(tr.Spans))
		fmt.Print(trace.RenderBreakdown(tr.Breakdown))

	case "cancel":
		if len(args) < 1 {
			log.Fatal("cancel needs a job ID")
		}
		resp, err := http.Post(base+"/v1/jobs/"+args[0]+"/cancel", "application/json", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("cancel: %s: %s", resp.Status, body)
		}
		fmt.Printf("%s cancel requested\n", args[0])

	default:
		log.Fatalf("unknown gateway verb %q (want submit|status|wait|trace|cancel)", verb)
	}
}

// submitWithRetry posts the spec until the gateway admits it: 429s
// sleep out the Retry-After hint, transport errors follow the jittered
// exponential policy, and 4xx validation errors fail immediately.
func submitWithRetry(ctx context.Context, base string, spec []byte) sched.Job {
	var policy backoff.Policy
	seq := policy.StartWith(200*time.Millisecond, 5*time.Second)
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(spec)))
		if err != nil {
			d := seq.Next()
			log.Printf("submit: %v (retrying in %v)", err, d.Round(time.Millisecond))
			sleepCtx(ctx, d)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var job sched.Job
			if err := json.Unmarshal(body, &job); err != nil {
				log.Fatalf("submit: bad response: %v", err)
			}
			return job
		case http.StatusTooManyRequests:
			d := seq.Next()
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				d = time.Duration(secs) * time.Second
			}
			log.Printf("gateway busy: %s (retrying in %v)", strings.TrimSpace(string(body)), d)
			sleepCtx(ctx, d)
		default:
			log.Fatalf("submit rejected: %s: %s", resp.Status, body)
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
		log.Fatalf("aborted: %v", ctx.Err())
	case <-time.After(d):
	}
}

func getJob(base, id string) sched.Job {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("status: %s: %s", resp.Status, body)
	}
	var job sched.Job
	if err := json.Unmarshal(body, &job); err != nil {
		log.Fatal(err)
	}
	return job
}

func printJob(job sched.Job) {
	fmt.Printf("%s  tenant=%s kind=%s state=%s attempts=%d\n",
		job.ID, job.Tenant, job.Spec.Kind, job.State, job.Attempts)
	if job.Error != "" {
		fmt.Printf("  error: %s\n", job.Error)
	}
	if len(job.Result) > 0 {
		fmt.Printf("  result: %s\n", job.Result)
	}
}
