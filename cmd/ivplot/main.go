// Ivplot renders a measurement file (the .mpt files the potentiostat
// streams over the data channel) as a terminal I-V plot with the
// standard analysis — the offline counterpart of the notebook's Fig. 7
// cell.
//
//	ivplot measurements/CV_ch1_run001.mpt
//	ivplot -csv out.csv measurements/CV_ch1_run001.mpt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ice/internal/analysis"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

func main() {
	csvOut := flag.String("csv", "", "also write potential/current CSV to this path")
	width := flag.Int("width", 70, "plot width")
	height := flag.Int("height", 20, "plot height")
	tempC := flag.Float64("temp", 25, "analysis temperature in °C")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: ivplot [flags] <measurement.mpt>")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	mf, err := potentiostat.ParseMPT(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("technique %s, condition %s, %d points\n\n", mf.Technique, mf.Label, len(mf.Records))

	e, i := analysis.FromRecords(mf.Records)
	fmt.Println(analysis.ASCIIPlot(e, i, *width, *height))

	if mf.Technique == "CV" || mf.Technique == "LSV" {
		s, err := analysis.AnalyzeCV(e, i, units.Celsius(*tempC))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(s)
	}

	if *csvOut != "" {
		out, err := os.Create(*csvOut)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := analysis.WriteCSV(out, e, i); err != nil {
			log.Fatal(err)
		}
		fmt.Println("CSV written to", *csvOut)
	}
}
