// Icetrace is the offline trace viewer: it reads the JSONL span
// exports the daemons append (crash-safe, so a file cut off mid-write
// still parses) and renders each trace as an indented span tree plus
// the critical-path breakdown the paper's bottleneck analysis needs.
//
//	icetrace traces.jsonl                 # every trace in the export
//	icetrace -trace 4f1a...c2 traces.jsonl # one trace
//	icetrace -breakdown traces.jsonl      # tables only, no trees
//	cat traces.jsonl | icetrace -         # from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"ice/internal/trace"
)

func main() {
	log.SetFlags(0)
	traceID := flag.String("trace", "", "show only this trace ID")
	breakdownOnly := flag.Bool("breakdown", false, "print only the critical-path tables, not the span trees")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: icetrace [-trace ID] [-breakdown] FILE.jsonl... ('-' = stdin)")
	}

	var recs []trace.Record
	for _, path := range flag.Args() {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		got, err := trace.ReadSpans(r)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		recs = append(recs, got...)
	}

	byTrace := make(map[string][]trace.Record)
	for _, rec := range recs {
		byTrace[rec.TraceID] = append(byTrace[rec.TraceID], rec)
	}
	if *traceID != "" {
		one, ok := byTrace[*traceID]
		if !ok {
			log.Fatalf("trace %s not in the export (%d traces read)", *traceID, len(byTrace))
		}
		byTrace = map[string][]trace.Record{*traceID: one}
	}
	if len(byTrace) == 0 {
		log.Fatal("no spans read")
	}

	// Oldest trace first, so a tail of the export reads chronologically.
	ids := make([]string, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := byTrace[ids[i]], byTrace[ids[j]]
		return earliest(a).Before(earliest(b))
	})

	for _, id := range ids {
		spans := byTrace[id]
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		if !*breakdownOnly {
			fmt.Print(trace.RenderTree(spans))
			if orphans := trace.Orphans(spans); len(orphans) > 0 {
				fmt.Printf("  ! %d orphaned spans (parents missing from export): %v\n", len(orphans), orphans)
			}
		}
		fmt.Print(trace.RenderBreakdown(trace.Analyze(spans)))
		fmt.Println()
	}
}

func earliest(recs []trace.Record) time.Time {
	t0 := recs[0].Start
	for _, r := range recs[1:] {
		if r.Start.Before(t0) {
			t0 = r.Start
		}
	}
	return t0
}
