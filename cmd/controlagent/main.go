// Controlagent runs the ACL instrument-side daemon over real TCP: the
// simulated workstation (cell, J-Kem SBC, SP200) behind the Pyro
// control channel and the file-share data channel — the process that
// runs on the paper's Windows control agent. Pair it with cmd/icectl
// on another machine (or terminal).
//
//	controlagent -control :9690 -data :4450 -dir ./measurements
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ice/internal/core"
	"ice/internal/robot"
	"ice/internal/synthesis"
	"ice/internal/trace"
)

func main() {
	controlAddr := flag.String("control", ":9690", "control channel (Pyro daemon) listen address")
	dataAddr := flag.String("data", ":4450", "data channel (file share) listen address")
	dir := flag.String("dir", "measurements", "measurement directory to write and export")
	timeScale := flag.Float64("timescale", 0, "instrument pacing: 0 instant, 1 real time")
	token := flag.String("token", "", "shared-secret credential required on the control channel (empty = open)")
	lab := flag.Bool("lab", false, "attach the extended lab stations (synthesis workstation + mobile robot)")
	audit := flag.Bool("audit", true, "journal every control-channel command to control_audit.jsonl on the share")
	traceExport := flag.String("trace-export", "", "append daemon-side trace spans to this JSONL file; requests carrying a traceparent join the caller's trace")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultAgentConfig(*dir)
	cfg.TimeScale = *timeScale
	cfg.AuthToken = *token
	agent, err := core.NewControlAgent(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer agent.Close()

	controlL, err := net.Listen("tcp", *controlAddr)
	if err != nil {
		log.Fatalf("control channel: %v", err)
	}
	jkemURI, sp200URI, err := agent.ServeControl(controlL)
	if err != nil {
		log.Fatal(err)
	}
	if *traceExport != "" {
		exp, err := trace.NewJSONLExporter(*traceExport, time.Second)
		if err != nil {
			log.Fatalf("open trace export: %v", err)
		}
		defer exp.Close()
		agent.Daemon().SetTracer(trace.New(
			trace.WithExporter(exp),
			trace.WithRecorder(trace.NewRecorder(512)),
		))
		fmt.Println("  tracing:         exporting daemon-side spans to", *traceExport)
	}
	dataL, err := net.Listen("tcp", *dataAddr)
	if err != nil {
		log.Fatalf("data channel: %v", err)
	}
	if err := agent.ServeData(dataL); err != nil {
		log.Fatal(err)
	}
	// A flaky client connection must not take the export down; log each
	// failure so operators can spot a degrading fabric.
	agent.DataExport().SetLogf(log.Printf)
	if *audit {
		if err := agent.EnableAudit(); err != nil {
			log.Fatal(err)
		}
	}
	if *lab {
		station := synthesis.NewWorkstation(1)
		station.TimeScale = *timeScale
		rob := robot.New()
		rob.TimeScale = *timeScale
		if err := agent.AttachLabStations(station, rob); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  lab stations:    synthesis workstation + mobile robot attached")
	}

	fmt.Println("ACL control agent up")
	fmt.Println("  control channel:", controlL.Addr())
	fmt.Println("    ", jkemURI)
	fmt.Println("    ", sp200URI)
	fmt.Println("  data channel:   ", dataL.Addr(), "exporting", *dir)
	fmt.Println("press Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
}
