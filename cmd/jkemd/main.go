// Jkemd runs the J-Kem single-board computer simulator standalone: the
// text command protocol served over TCP (each connection behaves like
// a serial session). Useful for poking the instrument protocol with
// netcat, exactly the way the real SBC answers its serial line:
//
//	jkemd -listen :5020
//	printf 'SYRINGEPUMP_RATE(1,5.0)\n' | nc localhost 5020
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"ice/internal/jkem"
	"ice/internal/labstate"
)

func main() {
	listen := flag.String("listen", ":5020", "TCP listen address for the serial bridge")
	timeScale := flag.Float64("timescale", 0, "liquid-motion pacing: 0 instant, 1 real time")
	flag.Parse()

	cell := labstate.DefaultCell()
	sbc := jkem.DefaultSBC(cell)
	sbc.TimeScale = *timeScale

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("J-Kem SBC simulator listening on", l.Addr())
	fmt.Println("cell:", cell)

	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		// net.Conn satisfies serial.Port (ReadWriteCloser +
		// SetReadDeadline), so the firmware loop serves it directly.
		go func() {
			defer conn.Close()
			if err := sbc.Serve(conn); err != nil {
				log.Printf("session %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}
