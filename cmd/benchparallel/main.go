// Benchparallel measures the fleet-scale parallelism work end to end
// and writes the numbers to BENCH_parallel.json — the machine-readable
// record the repo's experiment table references:
//
//   - data-channel pipelining: whole-file throughput over the netsim
//     WAN at readahead windows 1 (strict request/reply), 4 and 8;
//   - campaign fleet: N campaigns back-to-back vs the same N run
//     concurrently over one deployment (overlap, not cores);
//   - EOT training: Ensemble.Fit wall time across worker counts.
//
// Numbers are environment-honest: GOMAXPROCS is recorded, and on a
// single-core runner the CPU-bound Fit rows show handoff overhead
// rather than speedup, while the latency-bound rows (pipelining,
// fleet) still show their wins.
//
// With -wire-o it additionally (or, with -o '', exclusively) writes
// BENCH_wire.json — the control-plane wire-protocol record:
//
//   - RPC framing: pipelined small calls over a bandwidth-limited
//     netsim WAN link with the session pinned to the v1 JSON framing
//     vs the v2 binary framing (throughput, bytes and allocations per
//     call);
//   - streaming analysis: the paper CV acquired with real pacing,
//     comparing how long after instrument release the normality
//     verdict lands when analysis streams during acquisition vs the
//     classic retrieve-then-analyze path.
//
//	go run ./cmd/benchparallel -o BENCH_parallel.json
//	go run ./cmd/benchparallel -quick
//	go run ./cmd/benchparallel -o '' -wire-o BENCH_wire.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ice/internal/campaign"
	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/ml"
	"ice/internal/netsim"
	"ice/internal/pyro"
	"ice/internal/telemetry"
)

type readaheadResult struct {
	Window      int     `json:"window"`
	MBPerSec    float64 `json:"mb_per_sec"`
	SpeedupVsW1 float64 `json:"speedup_vs_window1"`
}

type fleetResult struct {
	Cells         int     `json:"cells"`
	SerialSeconds float64 `json:"serial_seconds"`
	FleetSeconds  float64 `json:"fleet_seconds"`
	Speedup       float64 `json:"speedup"`
}

type fitResult struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type report struct {
	GOMAXPROCS  int               `json:"gomaxprocs"`
	GoVersion   string            `json:"go_version"`
	Quick       bool              `json:"quick"`
	Readahead   []readaheadResult `json:"readahead"`
	Fleet       fleetResult       `json:"fleet"`
	EnsembleFit []fitResult       `json:"ensemble_fit"`
}

type wireRPCResult struct {
	WireVersion  int     `json:"wire_version"`
	CallsPerSec  float64 `json:"calls_per_sec"`
	BytesPerCall float64 `json:"bytes_per_call"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	SpeedupVsV1  float64 `json:"speedup_vs_v1"`
}

type streamingResult struct {
	TimeScale          float64 `json:"time_scale"`
	AcquisitionSeconds float64 `json:"acquisition_seconds"`
	StreamLagSeconds   float64 `json:"stream_verdict_lag_seconds"`
	StreamLagFraction  float64 `json:"stream_verdict_lag_fraction"`
	ClassicLagSeconds  float64 `json:"classic_verdict_lag_seconds"`
	StreamEvals        int     `json:"stream_evals"`
}

type wireReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	GoVersion  string          `json:"go_version"`
	Quick      bool            `json:"quick"`
	RPC        []wireRPCResult `json:"rpc"`
	Streaming  streamingResult `json:"streaming"`
}

func main() {
	out := flag.String("o", "BENCH_parallel.json", "parallelism report path ('' skips)")
	wireOut := flag.String("wire-o", "", "wire-protocol report path ('' skips)")
	quick := flag.Bool("quick", false, "fewer repetitions and smaller transfers (CI smoke)")
	minWireSpeedup := flag.Float64("min-wire-speedup", 0, "fail unless v2 RPC throughput beats v1 by this factor (0 disables)")
	maxStreamLag := flag.Float64("max-stream-lag", 0, "fail if the streamed verdict lags instrument release by more than this fraction of the acquisition (0 disables)")
	flag.Parse()

	if *out != "" {
		rep := report{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			Quick:      *quick,
		}
		var err error
		if rep.Readahead, err = measureReadahead(*quick); err != nil {
			log.Fatalf("readahead: %v", err)
		}
		if rep.Fleet, err = measureFleet(*quick); err != nil {
			log.Fatalf("fleet: %v", err)
		}
		if rep.EnsembleFit, err = measureFit(*quick); err != nil {
			log.Fatalf("ensemble fit: %v", err)
		}
		writeReport(*out, rep)
	}

	if *wireOut != "" {
		wrep := wireReport{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			Quick:      *quick,
		}
		var err error
		if wrep.RPC, err = measureWireRPC(*quick); err != nil {
			log.Fatalf("wire rpc: %v", err)
		}
		if wrep.Streaming, err = measureStreaming(*quick); err != nil {
			log.Fatalf("streaming: %v", err)
		}
		writeReport(*wireOut, wrep)
		if *minWireSpeedup > 0 {
			v2 := wrep.RPC[len(wrep.RPC)-1]
			if v2.SpeedupVsV1 < *minWireSpeedup {
				log.Fatalf("wire regression: v2 speedup %.2fx < required %.2fx", v2.SpeedupVsV1, *minWireSpeedup)
			}
			if v1 := wrep.RPC[0]; v2.AllocsPerOp >= v1.AllocsPerOp {
				log.Fatalf("wire regression: v2 allocs/op %.1f not below v1 %.1f", v2.AllocsPerOp, v1.AllocsPerOp)
			}
		}
		if *maxStreamLag > 0 && wrep.Streaming.StreamLagFraction > *maxStreamLag {
			log.Fatalf("streaming regression: verdict lag %.1f%% of acquisition > allowed %.1f%%",
				100*wrep.Streaming.StreamLagFraction, 100**maxStreamLag)
		}
	}
}

func writeReport(path string, rep any) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n%s", path, data)
}

// wireBench is the RPC target for the framing benchmark.
type wireBench struct{}

func (wireBench) Add(a, b int) int { return a + b }

// measureWireRPC drives pipelined small calls over a netsim WAN whose
// bottleneck is a 64 kbit/s link — the regime where frame size, not
// propagation delay or local CPU, sets the call rate (the paper's
// instrument links are fast, but a saturated control channel degrades
// to exactly this regime, and it is where framing overhead is the
// measurable quantity) — once pinned to the v1 JSON framing and once
// on the v2 binary framing. The 2 ms propagation delay is hidden by
// the four pipelined workers either way. Bytes per call come from the
// client's pyro.wire.* counters; allocations per op are the
// whole-process malloc delta (client and in-process daemon both
// counted) divided by calls.
func measureWireRPC(quick bool) ([]wireRPCResult, error) {
	const workers = 4
	calls := 250
	if quick {
		calls = 80
	}

	run := func(pin int) (wireRPCResult, error) {
		network := netsim.New()
		if err := network.AddHub("wan", 2*time.Millisecond, 8e3); err != nil {
			return wireRPCResult{}, err
		}
		if err := network.AddHost("server", "wan"); err != nil {
			return wireRPCResult{}, err
		}
		if err := network.AddHost("client", "wan"); err != nil {
			return wireRPCResult{}, err
		}
		l, err := network.Listen("server", netsim.PaperPorts.Control)
		if err != nil {
			return wireRPCResult{}, err
		}
		d := pyro.NewDaemon(l)
		d.SetAdvertised("server", netsim.PaperPorts.Control)
		d.MaxWireVersion = pin
		uri, err := d.Register("Bench", wireBench{})
		if err != nil {
			return wireRPCResult{}, err
		}
		go d.RequestLoop()
		defer d.Close()

		metrics := telemetry.NewCollector()
		proxy, err := pyro.DialConfigured(uri, func(addr string) (net.Conn, error) {
			return network.Dial("client", addr)
		}, pyro.DialConfig{MaxWireVersion: pin, Metrics: metrics})
		if err != nil {
			return wireRPCResult{}, err
		}
		defer proxy.Close()

		call := func() error {
			var out int
			if err := proxy.CallInto(&out, "Add", 2, 3); err != nil {
				return err
			}
			if out != 5 {
				return fmt.Errorf("Add(2,3) = %d", out)
			}
			return nil
		}
		for i := 0; i < 32; i++ { // warmup: negotiation + pools
			if err := call(); err != nil {
				return wireRPCResult{}, err
			}
		}

		bytesBase := metrics.CounterValue("pyro.wire.bytes_in") + metrics.CounterValue("pyro.wire.bytes_out")
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					if err := call(); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		select {
		case err := <-errCh:
			return wireRPCResult{}, err
		default:
		}

		total := float64(workers * calls)
		wireBytes := metrics.CounterValue("pyro.wire.bytes_in") + metrics.CounterValue("pyro.wire.bytes_out") - bytesBase
		return wireRPCResult{
			WireVersion:  proxy.WireVersion(),
			CallsPerSec:  round2(total / elapsed.Seconds()),
			BytesPerCall: round2(float64(wireBytes) / total),
			AllocsPerOp:  round2(float64(m1.Mallocs-m0.Mallocs) / total),
		}, nil
	}

	v1, err := run(1)
	if err != nil {
		return nil, fmt.Errorf("v1: %w", err)
	}
	v2, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("v2: %w", err)
	}
	if v1.WireVersion != 1 || v2.WireVersion != 2 {
		return nil, fmt.Errorf("negotiated versions %d and %d, want 1 and 2", v1.WireVersion, v2.WireVersion)
	}
	v1.SpeedupVsV1 = 1
	v2.SpeedupVsV1 = round2(v2.CallsPerSec / v1.CallsPerSec)
	return []wireRPCResult{v1, v2}, nil
}

// measureStreaming runs the paper CV with real acquisition pacing
// twice — analysis streamed during acquisition, then the classic
// retrieve-then-analyze path — and reports how long after instrument
// release the normality verdict landed in each case.
func measureStreaming(quick bool) (streamingResult, error) {
	timeScale := 0.02
	if quick {
		timeScale = 0.01
	}
	clf, acc, err := ml.TrainNormalityClassifier(ml.GenerateConfig{PerClass: 8, Samples: 250, BaseSeed: 7})
	if err != nil {
		return streamingResult{}, err
	}
	if acc < 0.6 {
		return streamingResult{}, fmt.Errorf("classifier accuracy %v too low to benchmark with", acc)
	}

	run := func(stream bool) (*core.CVOutcome, time.Duration, error) {
		dir, err := os.MkdirTemp("", "ice-benchwire-*")
		if err != nil {
			return nil, 0, err
		}
		defer os.RemoveAll(dir)
		dep, err := core.Deploy(dir, timeScale)
		if err != nil {
			return nil, 0, err
		}
		defer dep.Close()
		session, mount, err := dep.ConnectFrom(netsim.HostDGX)
		if err != nil {
			return nil, 0, err
		}
		defer session.Close()
		defer mount.Close()
		cfg := core.PaperCVWorkflowConfig()
		cfg.CV.Points = 400
		cfg.Classifier = clf
		cfg.StreamAnalysis = stream
		nb, outcome := core.BuildCVWorkflow(session, mount, cfg)
		start := time.Now()
		if err := nb.Execute(context.Background()); err != nil {
			return nil, 0, err
		}
		if stream && !outcome.Streamed {
			return nil, 0, fmt.Errorf("streaming path did not engage")
		}
		// The instrument phase: workflow start to instrument release
		// (cell prep and bring-up are scaled by the same factor).
		return outcome, outcome.AcquireEnd.Sub(start), nil
	}

	streamed, acquisition, err := run(true)
	if err != nil {
		return streamingResult{}, fmt.Errorf("streamed run: %w", err)
	}
	classic, _, err := run(false)
	if err != nil {
		return streamingResult{}, fmt.Errorf("classic run: %w", err)
	}

	streamLag := streamed.VerdictReady.Sub(streamed.AcquireEnd).Seconds()
	return streamingResult{
		TimeScale:          timeScale,
		AcquisitionSeconds: round3(acquisition.Seconds()),
		StreamLagSeconds:   round3(streamLag),
		StreamLagFraction:  round3(streamLag / acquisition.Seconds()),
		ClassicLagSeconds:  round3(classic.VerdictReady.Sub(classic.AcquireEnd).Seconds()),
		StreamEvals:        streamed.StreamEvals,
	}, nil
}

// measureReadahead times the same WAN retrieval at increasing windows.
func measureReadahead(quick bool) ([]readaheadResult, error) {
	size := 4 << 20
	reps := 3
	if quick {
		size = 1 << 20
		reps = 1
	}
	dir, err := os.MkdirTemp("", "ice-benchparallel-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "bulk.mpt"), bytes.Repeat([]byte{0x42}, size), 0o644); err != nil {
		return nil, err
	}

	var results []readaheadResult
	base := 0.0
	for _, window := range []int{1, 4, 8} {
		network, err := netsim.PaperTopology()
		if err != nil {
			return nil, err
		}
		l, err := network.Listen(netsim.HostControlAgent, netsim.PaperPorts.Data)
		if err != nil {
			return nil, err
		}
		exp := datachan.NewExport(dir, l)
		go exp.Serve()
		conn, err := network.Dial(netsim.HostDGX, fmt.Sprintf("%s:%d", netsim.HostControlAgent, netsim.PaperPorts.Data))
		if err != nil {
			exp.Close()
			return nil, err
		}
		mount := datachan.NewMount(conn)
		mount.SetReadahead(window)
		mount.SetChunkBytes(64 << 10)

		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			data, err := mount.ReadAll("bulk.mpt")
			if err != nil {
				mount.Close()
				exp.Close()
				return nil, err
			}
			if len(data) != size {
				mount.Close()
				exp.Close()
				return nil, fmt.Errorf("short read: %d of %d bytes", len(data), size)
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		mount.Close()
		exp.Close()

		mbps := float64(size) / (1 << 20) / best
		if window == 1 {
			base = mbps
		}
		results = append(results, readaheadResult{
			Window:      window,
			MBPerSec:    round2(mbps),
			SpeedupVsW1: round2(mbps / base),
		})
	}
	return results, nil
}

// measureFleet times N single-round campaigns sequentially, then the
// same N as a concurrent fleet over one deployment.
func measureFleet(quick bool) (fleetResult, error) {
	cells := 3
	points := 400
	if quick {
		cells = 2
		points = 300
	}
	run := func(workers int) (float64, error) {
		dir, err := os.MkdirTemp("", "ice-benchfleet-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		dep, err := core.Deploy(dir, 0)
		if err != nil {
			return 0, err
		}
		defer dep.Close()
		if err := dep.AttachLab(1, 0); err != nil {
			return 0, err
		}
		planners := make([]campaign.Planner, cells)
		for i := range planners {
			planners[i] = campaign.ScanRateLadder{RatesMVs: []float64{50}, ConcentrationMM: 2}
		}
		fleet, cleanup, err := campaign.ConnectFleet(dep, netsim.HostDGX, planners)
		if err != nil {
			return 0, err
		}
		defer cleanup()
		for _, cell := range fleet.Cells {
			cell.Executor.CVPoints = points
		}
		fleet.Workers = workers
		start := time.Now()
		results, err := fleet.Run(context.Background())
		if err != nil {
			return 0, err
		}
		for _, res := range results {
			if res.Err != nil {
				return 0, fmt.Errorf("%s: %w", res.Name, res.Err)
			}
		}
		return time.Since(start).Seconds(), nil
	}

	serial, err := run(1)
	if err != nil {
		return fleetResult{}, err
	}
	concurrent, err := run(cells)
	if err != nil {
		return fleetResult{}, err
	}
	return fleetResult{
		Cells:         cells,
		SerialSeconds: round3(serial),
		FleetSeconds:  round3(concurrent),
		Speedup:       round2(serial / concurrent),
	}, nil
}

// measureFit times deterministic EOT training across worker counts.
func measureFit(quick bool) ([]fitResult, error) {
	samples, trees := 300, 30
	reps := 3
	if quick {
		samples, trees = 150, 15
		reps = 1
	}
	x := make([][]float64, samples)
	y := make([]int, samples)
	for i := range x {
		row := make([]float64, 49)
		for j := range row {
			row[j] = math.Sin(float64(i*7+j*13)) + float64(i%3)
		}
		x[i] = row
		y[i] = i % 3
	}

	var results []fitResult
	base := 0.0
	for _, workers := range []int{1, 2, 4} {
		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			e := &ml.Ensemble{Trees: trees, MaxDepth: 8, MinLeaf: 1, Seed: 5, Workers: workers}
			start := time.Now()
			if err := e.Fit(x, y); err != nil {
				return nil, err
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		if workers == 1 {
			base = best
		}
		results = append(results, fitResult{
			Workers: workers,
			Seconds: round3(best),
			Speedup: round2(base / best),
		})
	}
	return results, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
