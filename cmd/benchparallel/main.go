// Benchparallel measures the fleet-scale parallelism work end to end
// and writes the numbers to BENCH_parallel.json — the machine-readable
// record the repo's experiment table references:
//
//   - data-channel pipelining: whole-file throughput over the netsim
//     WAN at readahead windows 1 (strict request/reply), 4 and 8;
//   - campaign fleet: N campaigns back-to-back vs the same N run
//     concurrently over one deployment (overlap, not cores);
//   - EOT training: Ensemble.Fit wall time across worker counts.
//
// Numbers are environment-honest: GOMAXPROCS is recorded, and on a
// single-core runner the CPU-bound Fit rows show handoff overhead
// rather than speedup, while the latency-bound rows (pipelining,
// fleet) still show their wins.
//
//	go run ./cmd/benchparallel -o BENCH_parallel.json
//	go run ./cmd/benchparallel -quick
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ice/internal/campaign"
	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/ml"
	"ice/internal/netsim"
)

type readaheadResult struct {
	Window      int     `json:"window"`
	MBPerSec    float64 `json:"mb_per_sec"`
	SpeedupVsW1 float64 `json:"speedup_vs_window1"`
}

type fleetResult struct {
	Cells         int     `json:"cells"`
	SerialSeconds float64 `json:"serial_seconds"`
	FleetSeconds  float64 `json:"fleet_seconds"`
	Speedup       float64 `json:"speedup"`
}

type fitResult struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type report struct {
	GOMAXPROCS  int               `json:"gomaxprocs"`
	GoVersion   string            `json:"go_version"`
	Quick       bool              `json:"quick"`
	Readahead   []readaheadResult `json:"readahead"`
	Fleet       fleetResult       `json:"fleet"`
	EnsembleFit []fitResult       `json:"ensemble_fit"`
}

func main() {
	out := flag.String("o", "BENCH_parallel.json", "output path")
	quick := flag.Bool("quick", false, "fewer repetitions and smaller transfers (CI smoke)")
	flag.Parse()

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Quick:      *quick,
	}

	var err error
	if rep.Readahead, err = measureReadahead(*quick); err != nil {
		log.Fatalf("readahead: %v", err)
	}
	if rep.Fleet, err = measureFleet(*quick); err != nil {
		log.Fatalf("fleet: %v", err)
	}
	if rep.EnsembleFit, err = measureFit(*quick); err != nil {
		log.Fatalf("ensemble fit: %v", err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n%s", *out, data)
}

// measureReadahead times the same WAN retrieval at increasing windows.
func measureReadahead(quick bool) ([]readaheadResult, error) {
	size := 4 << 20
	reps := 3
	if quick {
		size = 1 << 20
		reps = 1
	}
	dir, err := os.MkdirTemp("", "ice-benchparallel-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "bulk.mpt"), bytes.Repeat([]byte{0x42}, size), 0o644); err != nil {
		return nil, err
	}

	var results []readaheadResult
	base := 0.0
	for _, window := range []int{1, 4, 8} {
		network, err := netsim.PaperTopology()
		if err != nil {
			return nil, err
		}
		l, err := network.Listen(netsim.HostControlAgent, netsim.PaperPorts.Data)
		if err != nil {
			return nil, err
		}
		exp := datachan.NewExport(dir, l)
		go exp.Serve()
		conn, err := network.Dial(netsim.HostDGX, fmt.Sprintf("%s:%d", netsim.HostControlAgent, netsim.PaperPorts.Data))
		if err != nil {
			exp.Close()
			return nil, err
		}
		mount := datachan.NewMount(conn)
		mount.SetReadahead(window)
		mount.SetChunkBytes(64 << 10)

		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			data, err := mount.ReadAll("bulk.mpt")
			if err != nil {
				mount.Close()
				exp.Close()
				return nil, err
			}
			if len(data) != size {
				mount.Close()
				exp.Close()
				return nil, fmt.Errorf("short read: %d of %d bytes", len(data), size)
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		mount.Close()
		exp.Close()

		mbps := float64(size) / (1 << 20) / best
		if window == 1 {
			base = mbps
		}
		results = append(results, readaheadResult{
			Window:      window,
			MBPerSec:    round2(mbps),
			SpeedupVsW1: round2(mbps / base),
		})
	}
	return results, nil
}

// measureFleet times N single-round campaigns sequentially, then the
// same N as a concurrent fleet over one deployment.
func measureFleet(quick bool) (fleetResult, error) {
	cells := 3
	points := 400
	if quick {
		cells = 2
		points = 300
	}
	run := func(workers int) (float64, error) {
		dir, err := os.MkdirTemp("", "ice-benchfleet-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		dep, err := core.Deploy(dir, 0)
		if err != nil {
			return 0, err
		}
		defer dep.Close()
		if err := dep.AttachLab(1, 0); err != nil {
			return 0, err
		}
		planners := make([]campaign.Planner, cells)
		for i := range planners {
			planners[i] = campaign.ScanRateLadder{RatesMVs: []float64{50}, ConcentrationMM: 2}
		}
		fleet, cleanup, err := campaign.ConnectFleet(dep, netsim.HostDGX, planners)
		if err != nil {
			return 0, err
		}
		defer cleanup()
		for _, cell := range fleet.Cells {
			cell.Executor.CVPoints = points
		}
		fleet.Workers = workers
		start := time.Now()
		results, err := fleet.Run(context.Background())
		if err != nil {
			return 0, err
		}
		for _, res := range results {
			if res.Err != nil {
				return 0, fmt.Errorf("%s: %w", res.Name, res.Err)
			}
		}
		return time.Since(start).Seconds(), nil
	}

	serial, err := run(1)
	if err != nil {
		return fleetResult{}, err
	}
	concurrent, err := run(cells)
	if err != nil {
		return fleetResult{}, err
	}
	return fleetResult{
		Cells:         cells,
		SerialSeconds: round3(serial),
		FleetSeconds:  round3(concurrent),
		Speedup:       round2(serial / concurrent),
	}, nil
}

// measureFit times deterministic EOT training across worker counts.
func measureFit(quick bool) ([]fitResult, error) {
	samples, trees := 300, 30
	reps := 3
	if quick {
		samples, trees = 150, 15
		reps = 1
	}
	x := make([][]float64, samples)
	y := make([]int, samples)
	for i := range x {
		row := make([]float64, 49)
		for j := range row {
			row[j] = math.Sin(float64(i*7+j*13)) + float64(i%3)
		}
		x[i] = row
		y[i] = i % 3
	}

	var results []fitResult
	base := 0.0
	for _, workers := range []int{1, 2, 4} {
		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			e := &ml.Ensemble{Trees: trees, MaxDepth: 8, MinLeaf: 1, Seed: 5, Workers: workers}
			start := time.Now()
			if err := e.Fit(x, y); err != nil {
				return nil, err
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		if workers == 1 {
			base = best
		}
		results = append(results, fitResult{
			Workers: workers,
			Seconds: round3(best),
			Speedup: round2(base / best),
		})
	}
	return results, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
