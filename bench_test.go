// Package bench is the experiment harness: one benchmark per artifact
// of the paper's evaluation section (see DESIGN.md §4 and
// EXPERIMENTS.md). The paper is a workshop demonstration with figures
// rather than numeric tables, so each benchmark regenerates the
// behaviour behind a figure and reports the relevant quantitative
// shape (latency, throughput, accuracy, physics agreement) as
// benchmark metrics.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ice/internal/analysis"
	"ice/internal/campaign"
	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/echem"
	"ice/internal/ml"
	"ice/internal/netsim"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

// deployBench stands up a full ICE for benchmarking.
func deployBench(b *testing.B) (*core.Deployment, *core.RemoteSession, *datachan.Mount) {
	b.Helper()
	dir, err := os.MkdirTemp("", "ice-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	dep, err := core.Deploy(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dep.Close() })
	session, mount, err := dep.ConnectFrom(netsim.HostDGX)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { session.Close(); mount.Close() })
	return dep, session, mount
}

// BenchmarkFig5JKemRemoteSteering measures the Fig. 5 remote J-Kem
// command sequence (rate, port, vial, withdraw, port, dispense) across
// the simulated cross-facility network.
func BenchmarkFig5JKemRemoteSteering(b *testing.B) {
	dep, session, _ := deployBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calls := []func() (string, error){
			func() (string, error) { return session.SetRateSyringePump(1, 5.0) },
			func() (string, error) { return session.SetPortSyringePump(1, 8) },
			func() (string, error) { return session.SetVialFractionCollector(1, "BOTTOM") },
			func() (string, error) { return session.WithdrawSyringePump(1, 6.0) },
			func() (string, error) { return session.SetPortSyringePump(1, 1) },
			func() (string, error) { return session.DispenseSyringePump(1, 6.0) },
		}
		for _, call := range calls {
			if out, err := call(); err != nil || out != "OK" {
				b.Fatalf("remote command: %q, %v", out, err)
			}
		}
		b.StopTimer()
		dep.Agent.Cell().Drain()
		b.StartTimer()
	}
}

// BenchmarkFig6PotentiostatPipeline measures the Fig. 6 eight-step
// SP200 pipeline including acquisition of the demonstration CV.
func BenchmarkFig6PotentiostatPipeline(b *testing.B) {
	dep, session, _ := deployBench(b)
	if err := fillOnce(session); err != nil {
		b.Fatal(err)
	}
	params := core.PaperCVParams()
	params.Points = 600
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := session.CallInitializeSP200API(core.PaperSystemParams()); err != nil {
			b.Fatal(err)
		}
		mustCall(b, session.CallConnectSP200)
		mustCall(b, session.CallLoadFirmwareSP200)
		if _, err := session.CallInitializeCVTechSP200(params); err != nil {
			b.Fatal(err)
		}
		mustCall(b, session.CallLoadTechniqueSP200)
		mustCall(b, session.CallStartChannelSP200)
		if _, err := session.CallGetTechPathRslt(); err != nil {
			b.Fatal(err)
		}
		mustCall(b, session.CallDisconnectSP200)
	}
	_ = dep
}

// BenchmarkFig7CVWorkflow measures the complete demonstrated workflow
// (tasks A–E): remote fill, CV acquisition, data-channel retrieval and
// remote analysis. The reported peak-accuracy metric is the relative
// deviation of the measured anodic peak from Randles–Ševčík theory.
func BenchmarkFig7CVWorkflow(b *testing.B) {
	dep, session, mount := deployBench(b)
	cfg := core.PaperCVWorkflowConfig()
	cfg.CV.Points = 600
	cfg.WaitPoll = 5 * time.Millisecond
	var lastDev float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dep.Agent.Cell().Drain()
		b.StartTimer()
		nb, outcome := core.BuildCVWorkflow(session, mount, cfg)
		if err := nb.Execute(context.Background()); err != nil {
			b.Fatal(err)
		}
		want := echem.RandlesSevcik(1, units.SquareCentimeters(0.07), units.Millimolar(2),
			units.MillivoltsPerSecond(cfg.CV.RateMVs), 2.4e-9, units.Celsius(25)).Amperes()
		lastDev = math.Abs(outcome.Summary.AnodicPeak.Amperes()-want) / want
	}
	b.ReportMetric(lastDev*100, "peak-dev-%")
}

// BenchmarkMLClassify measures the §4.3.3 per-run normality check
// (GPR feature extraction + EOT vote) on a fresh voltammogram.
func BenchmarkMLClassify(b *testing.B) {
	clf, acc, err := ml.TrainNormalityClassifier(ml.GenerateConfig{PerClass: 12, Samples: 300, BaseSeed: 3})
	if err != nil {
		b.Fatal(err)
	}
	vg := simulateVG(b, echem.FaultNone, 400)
	e, i := vg.Potentials(), vg.Currents()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		feats, err := ml.Features(e, i)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := clf.Predict(feats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(acc*100, "holdout-acc-%")
}

// BenchmarkMLTrain measures end-to-end training of the normality
// classifier (dataset simulation + GPR features + bagged trees).
func BenchmarkMLTrain(b *testing.B) {
	for n := 0; n < b.N; n++ {
		_, acc, err := ml.TrainNormalityClassifier(ml.GenerateConfig{
			PerClass: 8, Samples: 250, BaseSeed: int64(n + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if acc < 0.5 {
			b.Fatalf("training collapsed: accuracy %v", acc)
		}
	}
}

// BenchmarkControlChannelRPC measures one Pyro round trip across the
// ACL→gateway→site→gateway→K200 path (Fig. 3's client/server hop).
func BenchmarkControlChannelRPC(b *testing.B) {
	_, session, _ := deployBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := session.ReadTemperature(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataChannelThroughput measures bulk file retrieval over the
// data channel across the same path (Fig. 4's data-channel role).
func BenchmarkDataChannelThroughput(b *testing.B) {
	dir, err := os.MkdirTemp("", "ice-bulk-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	const size = 1 << 20
	if err := os.WriteFile(filepath.Join(dir, "bulk.mpt"), bytes.Repeat([]byte{0x42}, size), 0o644); err != nil {
		b.Fatal(err)
	}
	network, err := netsim.PaperTopology()
	if err != nil {
		b.Fatal(err)
	}
	l, err := network.Listen(netsim.HostControlAgent, netsim.PaperPorts.Data)
	if err != nil {
		b.Fatal(err)
	}
	exp := datachan.NewExport(dir, l)
	go exp.Serve()
	b.Cleanup(func() { exp.Close() })
	conn, err := network.Dial(netsim.HostDGX, fmt.Sprintf("%s:%d", netsim.HostControlAgent, netsim.PaperPorts.Data))
	if err != nil {
		b.Fatal(err)
	}
	mount := datachan.NewMount(conn)
	b.Cleanup(func() { mount.Close() })

	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := mount.ReadAll("bulk.mpt")
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != size {
			b.Fatalf("got %d bytes", len(data))
		}
	}
}

// BenchmarkReadAllReadahead quantifies data-channel pipelining on the
// netsim WAN: the same 1 MiB retrieval at 64 KiB chunks with 1 (strict
// request/reply), 4 and 8 chunk requests in flight. Serial pays one
// round trip per chunk; the windowed read pays it once, so throughput
// approaches the link's bandwidth limit.
func BenchmarkReadAllReadahead(b *testing.B) {
	dir, err := os.MkdirTemp("", "ice-ra-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	const size = 4 << 20
	if err := os.WriteFile(filepath.Join(dir, "bulk.mpt"), bytes.Repeat([]byte{0x42}, size), 0o644); err != nil {
		b.Fatal(err)
	}
	for _, window := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			network, err := netsim.PaperTopology()
			if err != nil {
				b.Fatal(err)
			}
			l, err := network.Listen(netsim.HostControlAgent, netsim.PaperPorts.Data)
			if err != nil {
				b.Fatal(err)
			}
			exp := datachan.NewExport(dir, l)
			go exp.Serve()
			b.Cleanup(func() { exp.Close() })
			conn, err := network.Dial(netsim.HostDGX, fmt.Sprintf("%s:%d", netsim.HostControlAgent, netsim.PaperPorts.Data))
			if err != nil {
				b.Fatal(err)
			}
			mount := datachan.NewMount(conn)
			b.Cleanup(func() { mount.Close() })
			mount.SetReadahead(window)
			mount.SetChunkBytes(64 << 10)

			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := mount.ReadAll("bulk.mpt")
				if err != nil {
					b.Fatal(err)
				}
				if len(data) != size {
					b.Fatalf("got %d bytes", len(data))
				}
			}
		})
	}
}

// BenchmarkChannelSeparation quantifies the design choice the paper
// motivates in §3.1: control-command latency while the data channel is
// saturated with bulk transfers. Compare against
// BenchmarkControlChannelRPC (unloaded) — with dedicated channels the
// control path stays flat.
func BenchmarkChannelSeparation(b *testing.B) {
	dep, session, mount := deployBench(b)
	// Park a large file on the share and hammer it in the background.
	if err := os.WriteFile(filepath.Join(dep.Agent.MeasurementDir(), "bulk.mpt"),
		bytes.Repeat([]byte{7}, 1<<20), 0o644); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				mount.ReadAll("bulk.mpt")
			}
		}
	}()
	b.Cleanup(func() { close(stop) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := session.ReadTemperature(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayRouting measures connection establishment across the
// two-gateway path, the fabric cost of the Fig. 1/4 topology.
func BenchmarkGatewayRouting(b *testing.B) {
	network, err := netsim.PaperTopology()
	if err != nil {
		b.Fatal(err)
	}
	l, err := network.Listen(netsim.HostControlAgent, netsim.PaperPorts.Control)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1)
				conn.Read(buf)
				conn.Write(buf)
				conn.Close()
			}()
		}
	}()
	addr := fmt.Sprintf("%s:%d", netsim.HostControlAgent, netsim.PaperPorts.Control)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := network.Dial(netsim.HostDGX, addr)
		if err != nil {
			b.Fatal(err)
		}
		conn.Write([]byte{1})
		buf := make([]byte, 1)
		conn.Read(buf)
		conn.Close()
	}
}

// BenchmarkAblationGridResolution sweeps the diffusion solver's
// substep count — the DESIGN.md accuracy-vs-cost ablation. The metric
// is the relative error of the simulated peak against Randles–Ševčík.
func BenchmarkAblationGridResolution(b *testing.B) {
	prog := echem.CVProgram{
		Ei: units.Volts(0.05), E1: units.Volts(0.8), E2: units.Volts(0.05), Ef: units.Volts(0.05),
		Rate: units.MillivoltsPerSecond(50), Cycles: 1,
	}
	w, err := prog.Waveform()
	if err != nil {
		b.Fatal(err)
	}
	want := echem.RandlesSevcik(1, units.SquareCentimeters(0.07), units.Millimolar(2),
		units.MillivoltsPerSecond(50), 2.4e-9, units.Celsius(25)).Amperes()
	for _, sub := range []int{2, 5, 20, 50} {
		b.Run(fmt.Sprintf("substeps-%d", sub), func(b *testing.B) {
			cfg := echem.DefaultCell()
			cfg.NoiseRMS = 0
			cfg.UncompensatedResistance = 0
			cfg.DoubleLayerCapacitance = 0
			cfg.Substeps = sub
			var dev float64
			for i := 0; i < b.N; i++ {
				vg, err := echem.Simulate(cfg, w, 1000)
				if err != nil {
					b.Fatal(err)
				}
				peak := 0.0
				for _, p := range vg.Points {
					if p.I.Amperes() > peak {
						peak = p.I.Amperes()
					}
				}
				dev = math.Abs(peak-want) / want
			}
			b.ReportMetric(dev*100, "peak-dev-%")
		})
	}
}

// BenchmarkAblationFeatureExtraction compares the GPR feature pipeline
// against naive down-sampling, the DESIGN.md classifier ablation.
func BenchmarkAblationFeatureExtraction(b *testing.B) {
	vg := simulateVG(b, echem.FaultNone, 400)
	e, i := vg.Potentials(), vg.Currents()
	b.Run("gpr-features", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := ml.Features(e, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-downsample", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			out := make([]float64, 49)
			for k := range out {
				out[k] = i[k*(len(i)-1)/48]
			}
		}
	})
}

// BenchmarkPyroRawCommand measures a raw instrument-protocol command
// forwarded across the control channel (RPC hop + serial transaction).
func BenchmarkPyroRawCommand(b *testing.B) {
	_, session, _ := deployBench(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := session.RawJKem("FRACTIONCOLLECTOR_POSITION(1)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEISRemoteSweep measures the extension technique: a remote
// impedance sweep including data-channel retrieval and Nyquist
// analysis (paper future work: other potentiostat techniques).
func BenchmarkEISRemoteSweep(b *testing.B) {
	_, session, mount := deployBench(b)
	if err := fillOnce(session); err != nil {
		b.Fatal(err)
	}
	if _, err := session.CallInitializeSP200API(core.PaperSystemParams()); err != nil {
		b.Fatal(err)
	}
	mustCall(b, session.CallConnectSP200)
	mustCall(b, session.CallLoadFirmwareSP200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name, err := session.RunEIS(core.EISParams{FreqMinHz: 1, FreqMaxHz: 100_000, PointsPerDecade: 10})
		if err != nil {
			b.Fatal(err)
		}
		data, _, err := mount.WaitFor(name, 2*time.Millisecond, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		_, points, err := potentiostat.ParseEIS(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := analysis.AnalyzeEIS(points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignRound measures one adaptive-campaign round:
// synthesis, robot transfer, remote CV, retrieval, analysis (paper
// future work: AI-driven real-time workflows).
func BenchmarkCampaignRound(b *testing.B) {
	dir, err := os.MkdirTemp("", "ice-campaign-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	dep, err := core.Deploy(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dep.Close() })
	if err := dep.AttachLab(1, 0); err != nil {
		b.Fatal(err)
	}
	session, mount, err := dep.ConnectLabFrom(netsim.HostDGX)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { session.Close(); mount.Close() })
	exec := &campaign.Executor{Session: session, Mount: mount, CVPoints: 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(campaign.ScanRateLadder{RatesMVs: []float64{50}, ConcentrationMM: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignFleet compares N campaigns run back-to-back against
// the same N run as a concurrent fleet over one deployment. The
// speedup comes from overlap, not cores: while one cell holds the
// instrument gate, its siblings' WAN retrievals and analyses proceed —
// so the fleet wins even at GOMAXPROCS=1.
func BenchmarkCampaignFleet(b *testing.B) {
	ladder := func() campaign.Planner {
		return campaign.ScanRateLadder{RatesMVs: []float64{50}, ConcentrationMM: 2}
	}
	const cells = 3
	for _, mode := range []string{"serial", "fleet"} {
		b.Run(fmt.Sprintf("%s-%dcells", mode, cells), func(b *testing.B) {
			dep, err := core.Deploy(b.TempDir(), 0)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { dep.Close() })
			if err := dep.AttachLab(1, 0); err != nil {
				b.Fatal(err)
			}
			planners := make([]campaign.Planner, cells)
			for i := range planners {
				planners[i] = ladder()
			}
			fleet, cleanup, err := campaign.ConnectFleet(dep, netsim.HostDGX, planners)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(cleanup)
			for _, cell := range fleet.Cells {
				cell.Executor.CVPoints = 400
			}
			if mode == "serial" {
				fleet.Workers = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := fleet.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// BenchmarkEnsembleFitWorkers measures EOT training across worker
// counts (the model is identical for all of them). Scaling tracks
// available cores; at GOMAXPROCS=1 the parallel path only adds handoff
// overhead, which this benchmark also quantifies.
func BenchmarkEnsembleFitWorkers(b *testing.B) {
	x := make([][]float64, 300)
	y := make([]int, 300)
	for i := range x {
		row := make([]float64, 49)
		for j := range row {
			row[j] = math.Sin(float64(i*7+j*13)) + float64(i%3)
		}
		x[i] = row
		y[i] = i % 3
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := &ml.Ensemble{Trees: 30, MaxDepth: 8, MinLeaf: 1, Seed: 5, Workers: workers}
				if err := e.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- helpers ---

func mustCall(b *testing.B, fn func() (string, error)) {
	b.Helper()
	if _, err := fn(); err != nil {
		b.Fatal(err)
	}
}

func fillOnce(session *core.RemoteSession) error {
	for _, step := range []func() (string, error){
		func() (string, error) { return session.SetPortSyringePump(1, 8) },
		func() (string, error) { return session.WithdrawSyringePump(1, 6.0) },
		func() (string, error) { return session.SetPortSyringePump(1, 1) },
		func() (string, error) { return session.DispenseSyringePump(1, 6.0) },
	} {
		if _, err := step(); err != nil {
			return err
		}
	}
	return nil
}

func simulateVG(b *testing.B, fault echem.Fault, samples int) *echem.Voltammogram {
	b.Helper()
	cfg := echem.DefaultCell()
	cfg.Fault = fault
	prog := echem.CVProgram{
		Ei: units.Volts(0.05), E1: units.Volts(0.8), E2: units.Volts(0.05), Ef: units.Volts(0.05),
		Rate: units.MillivoltsPerSecond(50), Cycles: 1,
	}
	w, err := prog.Waveform()
	if err != nil {
		b.Fatal(err)
	}
	vg, err := echem.Simulate(cfg, w, samples)
	if err != nil {
		b.Fatal(err)
	}
	return vg
}
