package serial

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	msg := []byte("SYRINGEPUMP_RATE(1,5.000000)\n")
	if _, err := a.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read %q, want %q", got, msg)
	}
}

func TestPipeBothDirections(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	if _, err := a.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "ping" {
		t.Errorf("b read %q err %v, want ping", buf, err)
	}
	if _, err := io.ReadFull(a, buf); err != nil || string(buf) != "pong" {
		t.Errorf("a read %q err %v, want pong", buf, err)
	}
}

func TestReadBlocksUntilWrite(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 5)
		n, err := b.Read(buf)
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		done <- string(buf[:n])
	}()
	// Give the reader time to block, then write.
	time.Sleep(10 * time.Millisecond)
	if _, err := a.Write([]byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != "late" {
			t.Errorf("read %q, want %q", got, "late")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader never woke up")
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	a, b := Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != io.EOF {
			t.Errorf("read after close = %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock reader")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	a, b := Pipe()
	_ = b
	a.Close()
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Write after close = %v, want ErrClosed", err)
	}
}

func TestBufferedDataReadableAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	if _, err := a.Write([]byte("final")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if string(buf) != "final" {
		t.Errorf("read %q, want final", buf)
	}
	// After draining, EOF.
	if _, err := b.Read(buf); err != io.EOF {
		t.Errorf("drained read = %v, want io.EOF", err)
	}
}

func TestReadDeadlineExpires(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := b.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := b.Read(make([]byte, 1))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Read = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, deadline was 20ms", elapsed)
	}
}

func TestClearedDeadlineBlocksAgain(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(time.Millisecond))
	if _, err := b.Read(make([]byte, 1)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	b.SetReadDeadline(time.Time{})
	done := make(chan struct{})
	go func() {
		a.Write([]byte("x"))
		close(done)
	}()
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err != nil {
		t.Fatalf("Read after clearing deadline: %v", err)
	}
	<-done
}

func TestPipeBaudPacesWrites(t *testing.T) {
	// 1000 baud = 100 bytes/s → 10 bytes takes ≥ 100 ms.
	a, b := PipeBaud(1000)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := a.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("10 bytes at 1000 baud took %v, want ≥ ~100ms", elapsed)
	}
}

func TestConcurrentWritersDeliverAllBytes(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := a.Write([]byte{'x'}); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); a.Close() }()
	total := 0
	buf := make([]byte, 64)
	for {
		n, err := b.Read(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if total != writers*per {
		t.Errorf("received %d bytes, want %d", total, writers*per)
	}
}

func TestLineConnRoundTrip(t *testing.T) {
	a, b := Pipe()
	ca, cb := NewLineConn(a), NewLineConn(b)
	defer ca.Close()
	defer cb.Close()

	if err := ca.WriteLine("FRACTIONCOLLECTOR.VIAL(1,BOTTOM)"); err != nil {
		t.Fatal(err)
	}
	got, err := cb.ReadLine()
	if err != nil {
		t.Fatal(err)
	}
	if got != "FRACTIONCOLLECTOR.VIAL(1,BOTTOM)" {
		t.Errorf("ReadLine = %q", got)
	}
}

func TestLineConnRejectsEmbeddedNewline(t *testing.T) {
	a, _ := Pipe()
	c := NewLineConn(a)
	if err := c.WriteLine("bad\nline"); err == nil {
		t.Error("WriteLine accepted embedded newline")
	}
}

func TestLineConnStripsCRLF(t *testing.T) {
	a, b := Pipe()
	cb := NewLineConn(b)
	a.Write([]byte("OK\r\n"))
	got, err := cb.ReadLine()
	if err != nil || got != "OK" {
		t.Errorf("ReadLine = %q, %v; want OK", got, err)
	}
}

func TestLineConnTransact(t *testing.T) {
	a, b := Pipe()
	ca, cb := NewLineConn(a), NewLineConn(b)
	go func() {
		cmd, err := cb.ReadLine()
		if err != nil {
			return
		}
		if cmd == "STATUS" {
			cb.WriteLine("OK")
		}
	}()
	resp, err := ca.Transact("STATUS", time.Second)
	if err != nil {
		t.Fatalf("Transact: %v", err)
	}
	if resp != "OK" {
		t.Errorf("Transact = %q, want OK", resp)
	}
}

func TestLineConnTransactTimeout(t *testing.T) {
	a, b := Pipe()
	_ = b // silent peer
	ca := NewLineConn(a)
	if _, err := ca.Transact("STATUS", 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("Transact with silent peer = %v, want ErrTimeout", err)
	}
}

func TestLineConnManyLinesInOrder(t *testing.T) {
	a, b := Pipe()
	ca, cb := NewLineConn(a), NewLineConn(b)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			ca.WriteLine(string(rune('A' + i%26)))
		}
		ca.Close()
	}()
	for i := 0; i < n; i++ {
		got, err := cb.ReadLine()
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if want := string(rune('A' + i%26)); got != want {
			t.Fatalf("line %d = %q, want %q", i, got, want)
		}
	}
}

// Property: any newline-free payload survives a line round trip.
func TestLineRoundTripProperty(t *testing.T) {
	a, b := Pipe()
	ca, cb := NewLineConn(a), NewLineConn(b)
	f := func(s string) bool {
		for _, r := range s {
			if r == '\n' || r == '\r' {
				return true // skip
			}
		}
		if err := ca.WriteLine(s); err != nil {
			return false
		}
		got, err := cb.ReadLine()
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: bytes are never reordered or corrupted through the pipe.
func TestPipePreservesBytesProperty(t *testing.T) {
	f := func(data []byte) bool {
		a, b := Pipe()
		defer b.Close()
		go func() {
			a.Write(data)
			a.Close()
		}()
		got, err := io.ReadAll(b)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
