// Package serial emulates the point-to-point serial links that connect
// the control agent to the J-Kem single-board computer and the SP200
// potentiostat. Real deployments use RS-232/USB; here both endpoints
// live in the same process (or across the simulated network), so the
// package provides in-memory duplex ports with the semantics instrument
// firmware actually relies on: ordered delivery, blocking reads,
// read deadlines, and optional baud-rate pacing.
package serial

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Errors returned by port operations.
var (
	// ErrClosed is returned when reading from or writing to a closed port.
	ErrClosed = errors.New("serial: port closed")
	// ErrTimeout is returned when a read deadline expires before data
	// arrives. It satisfies errors.Is(err, ErrTimeout).
	ErrTimeout = errors.New("serial: read timeout")
)

// Port is one end of a serial link.
type Port interface {
	io.ReadWriteCloser
	// SetReadDeadline sets the deadline for future Read calls. A zero
	// time means reads never time out.
	SetReadDeadline(t time.Time) error
}

// pipeHalf is a unidirectional byte stream with blocking reads,
// deadlines and close semantics.
type pipeHalf struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	closed   bool
	deadline time.Time
	timer    *time.Timer
}

func newPipeHalf() *pipeHalf {
	h := &pipeHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *pipeHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, ErrClosed
	}
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	return len(p), nil
}

func (h *pipeHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if len(h.buf) > 0 {
			n := copy(p, h.buf)
			h.buf = h.buf[n:]
			return n, nil
		}
		if h.closed {
			return 0, io.EOF
		}
		if !h.deadline.IsZero() && !time.Now().Before(h.deadline) {
			return 0, ErrTimeout
		}
		h.cond.Wait()
	}
}

func (h *pipeHalf) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.cond.Broadcast()
}

func (h *pipeHalf) setDeadline(t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.deadline = t
	if h.timer != nil {
		h.timer.Stop()
		h.timer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		// Wake any blocked reader when the deadline passes so it can
		// observe the expiry.
		h.timer = time.AfterFunc(d, h.cond.Broadcast)
	}
	h.cond.Broadcast()
}

// port is one endpoint of an in-memory duplex serial link.
type port struct {
	rx *pipeHalf // data we read
	tx *pipeHalf // data the peer reads
	// byteDelay > 0 paces writes to emulate a limited baud rate.
	byteDelay time.Duration

	closeOnce sync.Once
}

// Pipe returns the two endpoints of a connected serial link. Data
// written to one endpoint becomes readable at the other, in order.
func Pipe() (Port, Port) {
	a2b := newPipeHalf()
	b2a := newPipeHalf()
	return &port{rx: b2a, tx: a2b}, &port{rx: a2b, tx: b2a}
}

// PipeBaud is like Pipe but paces each endpoint's writes at the given
// baud rate (10 bits per byte: 8N1 framing). A rate <= 0 disables
// pacing.
func PipeBaud(baud int) (Port, Port) {
	a, b := Pipe()
	if baud > 0 {
		delay := time.Duration(float64(time.Second) * 10 / float64(baud))
		a.(*port).byteDelay = delay
		b.(*port).byteDelay = delay
	}
	return a, b
}

func (p *port) Read(b []byte) (int, error) { return p.rx.read(b) }
func (p *port) Write(b []byte) (int, error) {
	if p.byteDelay > 0 && len(b) > 0 {
		time.Sleep(p.byteDelay * time.Duration(len(b)))
	}
	return p.tx.write(b)
}

func (p *port) Close() error {
	p.closeOnce.Do(func() {
		p.tx.close()
		p.rx.close()
	})
	return nil
}

func (p *port) SetReadDeadline(t time.Time) error {
	p.rx.setDeadline(t)
	return nil
}
