package serial

import (
	"bufio"
	"fmt"
	"strings"
	"time"
)

// LineConn frames a serial byte stream into newline-terminated text
// lines, the convention used by the J-Kem command protocol. It is safe
// for one reader and one writer goroutine.
type LineConn struct {
	port Port
	r    *bufio.Reader
}

// NewLineConn wraps port in a line-oriented codec.
func NewLineConn(port Port) *LineConn {
	return &LineConn{port: port, r: bufio.NewReader(port)}
}

// WriteLine sends one line, appending the newline terminator. The line
// must not itself contain a newline.
func (c *LineConn) WriteLine(line string) error {
	if strings.ContainsAny(line, "\r\n") {
		return fmt.Errorf("serial: line contains newline: %q", line)
	}
	_, err := c.port.Write([]byte(line + "\n"))
	return err
}

// ReadLine blocks until a full line arrives and returns it without the
// terminator. Carriage returns are stripped so both "\n" and "\r\n"
// peers interoperate.
func (c *LineConn) ReadLine() (string, error) {
	s, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

// ReadLineTimeout is ReadLine bounded by a deadline d from now. On
// expiry it returns ErrTimeout. Note that an expired read may leave a
// partial line buffered; the next ReadLine continues from it.
func (c *LineConn) ReadLineTimeout(d time.Duration) (string, error) {
	if err := c.port.SetReadDeadline(time.Now().Add(d)); err != nil {
		return "", err
	}
	defer c.port.SetReadDeadline(time.Time{})
	return c.ReadLine()
}

// Transact writes a command line and waits up to d for the single-line
// response, the request/response pattern of instrument protocols.
func (c *LineConn) Transact(cmd string, d time.Duration) (string, error) {
	if err := c.WriteLine(cmd); err != nil {
		return "", err
	}
	return c.ReadLineTimeout(d)
}

// Close closes the underlying port.
func (c *LineConn) Close() error { return c.port.Close() }
