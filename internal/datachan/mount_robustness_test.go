package datachan

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRoundTripPoisonsOnShortRead injects a reply that promises more
// payload than it delivers: the mount must refuse all further use
// rather than reuse the desynchronized stream.
func TestRoundTripPoisonsOnShortRead(t *testing.T) {
	client, server := net.Pipe()
	m := NewMount(client)
	defer m.Close()
	go func() {
		var req request
		if err := readFrame(server, &req); err != nil {
			return
		}
		writeFrame(server, &reply{Payload: 1000})
		server.Write(make([]byte, 10)) // short: 10 of 1000 promised bytes
		server.Close()
	}()
	if _, _, err := m.ReadAt("x", 0, 1000); err == nil {
		t.Fatal("short read not surfaced")
	}
	if !m.Broken() {
		t.Fatal("mount not poisoned after short read")
	}
	if _, err := m.List(); !errors.Is(err, ErrMountBroken) {
		t.Fatalf("List on poisoned mount = %v, want ErrMountBroken", err)
	}
	if _, err := m.ReadAll("x"); !errors.Is(err, ErrMountBroken) {
		t.Fatalf("ReadAll on poisoned mount = %v, want ErrMountBroken", err)
	}
}

// TestRoundTripPoisonsOnCRCMismatch corrupts a payload byte in
// transit; the per-chunk CRC must catch it and poison the mount.
func TestRoundTripPoisonsOnCRCMismatch(t *testing.T) {
	client, server := net.Pipe()
	m := NewMount(client)
	defer m.Close()
	go func() {
		var req request
		if err := readFrame(server, &req); err != nil {
			return
		}
		// CRC of the true payload, but one byte flipped on the wire.
		writeFrame(server, &reply{Payload: 4, CRC: 0xdeadbeef})
		server.Write([]byte("data"))
		server.Close()
	}()
	if _, _, err := m.ReadAt("x", 0, 4); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	if !m.Broken() {
		t.Fatal("mount not poisoned after CRC mismatch")
	}
}

// TestRemoteErrorsDoNotPoison confirms application-level errors leave
// the stream usable (it stays synchronized).
func TestRemoteErrorsDoNotPoison(t *testing.T) {
	_, m := startShare(t)
	_, err := m.Stat("missing.mpt")
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if m.Broken() {
		t.Fatal("remote error poisoned the mount")
	}
	if _, err := m.List(); err != nil {
		t.Fatalf("List after remote error: %v", err)
	}
}

// TestWatcherSurvivesTransientListError is the regression test for the
// watcher dying permanently on a single failed List: a share-side
// error within the grace window must not terminate it.
func TestWatcherSurvivesTransientListError(t *testing.T) {
	dir, m := startShare(t)
	w := m.Watch(5 * time.Millisecond)
	defer w.Stop()
	time.Sleep(20 * time.Millisecond) // prime

	// Break listings share-side (the transport stays healthy), then heal.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // several failing polls
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "after.mpt"), []byte("recovered"), 0o644)

	ev := waitEvent(t, w)
	if ev.Type != Created || ev.File.Name != "after.mpt" {
		t.Fatalf("event after recovery = %v %q", ev.Type, ev.File.Name)
	}
	if w.Err() != nil {
		t.Errorf("watcher recorded error despite recovery: %v", w.Err())
	}
}

// TestWatcherGraceExpiry: errors persisting past the grace window do
// terminate the watcher, with the error recorded.
func TestWatcherGraceExpiry(t *testing.T) {
	dir, m := startShare(t)
	w := m.WatchGrace(5*time.Millisecond, 30*time.Millisecond)
	defer w.Stop()
	time.Sleep(20 * time.Millisecond)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-w.Events():
		if ok {
			for range w.Events() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop after grace expiry")
	}
	if w.Err() == nil {
		t.Error("watcher stopped without recording the persistent error")
	}
}

// TestWaitForToleratesTransientListErrors is the regression test for
// WaitFor aborting on the first List error.
func TestWaitForToleratesTransientListErrors(t *testing.T) {
	dir, m := startShare(t)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		os.Mkdir(dir, 0o755)
		os.WriteFile(filepath.Join(dir, "late.mpt"), []byte("finally here\n"), 0o644)
	}()
	data, name, err := m.WaitFor("late", 10*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatalf("WaitFor did not tolerate transient errors: %v", err)
	}
	if name != "late.mpt" || len(data) == 0 {
		t.Errorf("WaitFor = %q (%d bytes)", name, len(data))
	}
}

// TestWaitForContextCancel: the poll loop must abort promptly on
// cancellation rather than busy-sleep to its deadline.
func TestWaitForContextCancel(t *testing.T) {
	_, m := startShare(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := m.WaitForContext(ctx, "never", 10*time.Millisecond)
	if err == nil {
		t.Fatal("cancelled WaitForContext succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("WaitForContext took %v to notice cancellation", elapsed)
	}
}

func TestWaitForBrokenMountFailsFast(t *testing.T) {
	_, m := startShare(t)
	m.Close()
	start := time.Now()
	if _, _, err := m.WaitFor("x", 10*time.Millisecond, 10*time.Second); err == nil {
		t.Fatal("WaitFor on closed mount succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("WaitFor on dead mount ran out the clock instead of failing fast")
	}
}

func TestMountChecksum(t *testing.T) {
	dir, m := startShare(t)
	content := []byte("EC-Lab ASCII FILE (ICE simulated)\ndata rows here\n")
	os.WriteFile(filepath.Join(dir, "cv.mpt"), content, 0o644)
	sum, size, err := m.Checksum("cv.mpt")
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(content)
	if sum != hex.EncodeToString(want[:]) {
		t.Errorf("Checksum sum = %s", sum)
	}
	if size != int64(len(content)) {
		t.Errorf("Checksum size = %d, want %d", size, len(content))
	}
	if _, _, err := m.Checksum("missing"); err == nil {
		t.Error("Checksum of missing file succeeded")
	}
	if _, _, err := m.Checksum("../escape"); err == nil {
		t.Error("Checksum path escape accepted")
	}
}

func TestMountReadAllVerified(t *testing.T) {
	dir, m := startShare(t)
	content := make([]byte, 700_000) // spans multiple chunks
	for i := range content {
		content[i] = byte(i * 7)
	}
	os.WriteFile(filepath.Join(dir, "big.bin"), content, 0o644)
	data, err := m.ReadAllVerified("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(content) {
		t.Errorf("ReadAllVerified = %d bytes, want %d", len(data), len(content))
	}
	if _, err := m.ReadAllVerified("missing"); err == nil {
		t.Error("ReadAllVerified of missing file succeeded")
	}
}
