package datachan

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// ErrMountBroken marks a mount whose connection suffered a transport
// error mid-exchange. The request/reply stream may be desynchronized
// (a reply header could be read as payload bytes, silently corrupting
// a measurement), so the mount refuses all further use: errors.Is
// against this sentinel tells callers to redial, which ReliableMount
// does automatically.
var ErrMountBroken = errors.New("datachan: mount broken")

// RemoteError is an error the export answered with — the share is
// reachable and the stream intact; the operation itself failed (file
// missing, invalid name). It is never grounds for redialing.
type RemoteError struct{ Msg string }

// Error implements the error interface.
func (e *RemoteError) Error() string { return "datachan: remote: " + e.Msg }

// Share is the read-side contract both mount flavors satisfy: the
// plain single-connection Mount and the reconnecting ReliableMount.
// Workflow code holds a Share so swapping reliability in or out is a
// construction-time choice.
type Share interface {
	List() ([]FileInfo, error)
	Stat(name string) (FileInfo, error)
	ReadAt(name string, offset int64, length int) ([]byte, bool, error)
	ReadAll(name string) ([]byte, error)
	ReadAllVerified(name string) ([]byte, error)
	Checksum(name string) (string, int64, error)
	WaitFor(substr string, poll, timeout time.Duration) ([]byte, string, error)
	WaitForContext(ctx context.Context, substr string, poll time.Duration) ([]byte, string, error)
	Watch(interval time.Duration) *Watcher
	Broken() bool
	Close() error
}

// Mount is the remote side of the share — the moral equivalent of the
// CIFS mount point on the DGX. It is safe for concurrent use; requests
// on the single connection are serialised.
type Mount struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool
	broken error // sticky transport failure; see ErrMountBroken
}

// NewMount attaches to an export over an established connection.
func NewMount(conn net.Conn) *Mount { return &Mount{conn: conn} }

// Close detaches the mount.
func (m *Mount) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.conn.Close()
}

// Broken reports whether the mount's transport is permanently
// unusable — poisoned by a mid-exchange error, or closed.
func (m *Mount) Broken() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.broken != nil || m.closed
}

// roundTrip sends a request and reads the reply header plus any
// payload. Any transport failure mid-exchange poisons the mount: a
// partially-read reply leaves the stream desynchronized, and reusing
// it could hand the next caller another request's bytes.
func (m *Mount) roundTrip(req *request) (*reply, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, fmt.Errorf("datachan: mount closed")
	}
	if m.broken != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrMountBroken, m.broken)
	}
	poison := func(err error) (*reply, []byte, error) {
		m.broken = err
		m.conn.Close()
		return nil, nil, err
	}
	if err := writeFrame(m.conn, req); err != nil {
		return poison(fmt.Errorf("datachan: send: %w", err))
	}
	var rep reply
	if err := readFrame(m.conn, &rep); err != nil {
		return poison(fmt.Errorf("datachan: receive: %w", err))
	}
	if rep.Error != "" {
		return nil, nil, &RemoteError{Msg: rep.Error}
	}
	var payload []byte
	if rep.Payload > 0 {
		payload = make([]byte, rep.Payload)
		if _, err := io.ReadFull(m.conn, payload); err != nil {
			return poison(fmt.Errorf("datachan: payload: %w", err))
		}
		if crc := crc32.Checksum(payload, castagnoli); crc != rep.CRC {
			return poison(fmt.Errorf("datachan: payload CRC mismatch (got %08x, want %08x)", crc, rep.CRC))
		}
	}
	return &rep, payload, nil
}

// List returns the shared files sorted by name.
func (m *Mount) List() ([]FileInfo, error) {
	rep, _, err := m.roundTrip(&request{Op: opList})
	if err != nil {
		return nil, err
	}
	files := rep.Files
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
	return files, nil
}

// Stat returns metadata for one file.
func (m *Mount) Stat(name string) (FileInfo, error) {
	rep, _, err := m.roundTrip(&request{Op: opStat, Name: name})
	if err != nil {
		return FileInfo{}, err
	}
	if rep.File == nil {
		return FileInfo{}, fmt.Errorf("datachan: stat %q: empty reply", name)
	}
	return *rep.File, nil
}

// Checksum returns the whole-file SHA-256 (hex) and size as the export
// sees them — the end-to-end integrity reference for a completed
// transfer.
func (m *Mount) Checksum(name string) (string, int64, error) {
	rep, _, err := m.roundTrip(&request{Op: opChecksum, Name: name})
	if err != nil {
		return "", 0, err
	}
	if rep.File == nil || rep.Sum == "" {
		return "", 0, fmt.Errorf("datachan: checksum %q: empty reply", name)
	}
	return rep.Sum, rep.File.Size, nil
}

// readChunk is the transfer unit for whole-file reads.
const readChunk = 256 * 1024

// ReadAt reads up to length bytes from offset. The chunk's CRC32C has
// been verified against the reply header by the time it returns.
func (m *Mount) ReadAt(name string, offset int64, length int) ([]byte, bool, error) {
	rep, payload, err := m.roundTrip(&request{Op: opRead, Name: name, Offset: offset, Length: length})
	if err != nil {
		return nil, false, err
	}
	return payload, rep.EOF, nil
}

// ReadAll fetches a whole file.
func (m *Mount) ReadAll(name string) ([]byte, error) {
	var buf bytes.Buffer
	var off int64
	for {
		chunk, eof, err := m.ReadAt(name, off, readChunk)
		if err != nil {
			return nil, err
		}
		buf.Write(chunk)
		off += int64(len(chunk))
		if eof || len(chunk) == 0 {
			return buf.Bytes(), nil
		}
	}
}

// verifyAttempts bounds ReadAllVerified's re-reads: a file that keeps
// changing (still streaming) or keeps failing verification is an
// error, not a retry loop.
const verifyAttempts = 3

// ReadAllVerified fetches a whole file and proves it intact end to
// end: the assembled bytes must match the export-side SHA-256 and
// size. A size mismatch (the file grew mid-read) re-reads; a digest
// mismatch at matching size is corruption and fails.
func (m *Mount) ReadAllVerified(name string) ([]byte, error) {
	return readAllVerified(name, m.ReadAll, m.Checksum, nil)
}

// readAllVerified implements end-to-end verification over any
// readAll/checksum pair; onMismatch (optional) observes digest
// failures for telemetry.
func readAllVerified(
	name string,
	readAll func(string) ([]byte, error),
	checksum func(string) (string, int64, error),
	onMismatch func(),
) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < verifyAttempts; attempt++ {
		data, err := readAll(name)
		if err != nil {
			return nil, err
		}
		sum, size, err := checksum(name)
		if err != nil {
			return nil, err
		}
		if int64(len(data)) != size {
			// The file changed between read and checksum (e.g. still
			// streaming): re-read rather than fail.
			lastErr = fmt.Errorf("datachan: %q changed during transfer (read %d bytes, share now %d)", name, len(data), size)
			continue
		}
		got := sha256.Sum256(data)
		if hex.EncodeToString(got[:]) == sum {
			return data, nil
		}
		if onMismatch != nil {
			onMismatch()
		}
		lastErr = fmt.Errorf("datachan: end-to-end SHA-256 mismatch for %q", name)
	}
	return nil, fmt.Errorf("datachan: verified read of %q failed after %d attempts: %w", name, verifyAttempts, lastErr)
}

// EventType classifies a watch event.
type EventType int

// Watch event types.
const (
	// Created fires when a new file appears in the share.
	Created EventType = iota
	// Modified fires when an existing file grows or changes mtime.
	Modified
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case Created:
		return "created"
	case Modified:
		return "modified"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one observed change.
type Event struct {
	Type EventType
	File FileInfo
}

// Watcher polls the share and reports changes, the mechanism the
// remote analysis uses to notice measurement files arriving or growing
// during acquisition.
type Watcher struct {
	events chan Event
	stop   chan struct{}
	once   sync.Once

	mu  sync.Mutex
	err error
}

// Events returns the change stream. It is closed when the watcher
// stops.
func (w *Watcher) Events() <-chan Event { return w.events }

// Stop halts polling and closes Events.
func (w *Watcher) Stop() { w.once.Do(func() { close(w.stop) }) }

// Err returns the error that terminated the watcher, if any.
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *Watcher) setErr(err error) {
	w.mu.Lock()
	w.err = err
	w.mu.Unlock()
}

// Watch starts polling at the given interval. Transient listing errors
// are retried for a default grace window of 30 poll intervals (at
// least one second) before the watcher gives up; use WatchGrace to
// choose the window.
func (m *Mount) Watch(interval time.Duration) *Watcher {
	grace := 30 * interval
	if grace < time.Second {
		grace = time.Second
	}
	return m.WatchGrace(interval, grace)
}

// WatchGrace is Watch with an explicit error-grace window: a List
// failure only terminates the watcher once errors have persisted for
// the window (grace <= 0 retries forever). A poisoned mount terminates
// immediately — it can never heal, so waiting out the grace would only
// delay the report.
func (m *Mount) WatchGrace(interval, grace time.Duration) *Watcher {
	return startWatcher(m.List, m.Broken, interval, grace)
}

// startWatcher runs the shared poll loop over any lister. permanent
// reports conditions no retry can heal (poisoned or closed transport).
func startWatcher(list func() ([]FileInfo, error), permanent func() bool, interval, grace time.Duration) *Watcher {
	w := &Watcher{events: make(chan Event, 64), stop: make(chan struct{})}
	go func() {
		defer close(w.events)
		seen := make(map[string]FileInfo)
		// Prime with the current listing so only subsequent changes
		// are reported. The seen set survives reconnects, so a re-list
		// after an outage never re-announces files already reported.
		if files, err := list(); err == nil {
			for _, f := range files {
				seen[f.Name] = f
			}
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var failingSince time.Time
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
			}
			files, err := list()
			if err != nil {
				if permanent != nil && permanent() {
					w.setErr(err)
					return
				}
				if failingSince.IsZero() {
					failingSince = time.Now()
				}
				if grace > 0 && time.Since(failingSince) >= grace {
					w.setErr(err)
					return
				}
				continue
			}
			failingSince = time.Time{}
			for _, f := range files {
				prev, ok := seen[f.Name]
				switch {
				case !ok:
					seen[f.Name] = f
					select {
					case w.events <- Event{Type: Created, File: f}:
					case <-w.stop:
						return
					}
				case f.Size != prev.Size || f.ModTimeUnixNano != prev.ModTimeUnixNano:
					seen[f.Name] = f
					select {
					case w.events <- Event{Type: Modified, File: f}:
					case <-w.stop:
						return
					}
				}
			}
		}
	}()
	return w
}

// WaitFor polls until a file whose name contains substr exists and its
// size is stable across two polls, then returns its verified contents.
// It is how the workflow retrieves a measurement file that may still
// be streaming.
func (m *Mount) WaitFor(substr string, poll, timeout time.Duration) ([]byte, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return m.WaitForContext(ctx, substr, poll)
}

// WaitForContext is WaitFor bounded by a context instead of a fixed
// timeout: the poll loop aborts promptly on cancellation, and
// transient listing errors are tolerated until the deadline.
func (m *Mount) WaitForContext(ctx context.Context, substr string, poll time.Duration) ([]byte, string, error) {
	return waitFor(ctx, m, substr, poll)
}

// waitFor is the shared stable-file wait loop over any Share.
func waitFor(ctx context.Context, s Share, substr string, poll time.Duration) ([]byte, string, error) {
	lastSize := int64(-1)
	lastName := ""
	stable := 0
	var lastErr error
	// Two consecutive unchanged observations guard against sampling a
	// writer mid-burst.
	const stableNeeded = 2
	timer := time.NewTimer(poll)
	defer timer.Stop()
	for {
		files, err := s.List()
		switch {
		case err == nil:
			for _, f := range files {
				if !containsName(f.Name, substr) {
					continue
				}
				if f.Name == lastName && f.Size == lastSize && f.Size > 0 {
					stable++
					if stable >= stableNeeded {
						data, err := s.ReadAllVerified(f.Name)
						return data, f.Name, err
					}
				} else {
					stable = 0
					lastName, lastSize = f.Name, f.Size
				}
				break
			}
		case s.Broken():
			// The transport can never heal on its own; a plain mount
			// reports immediately rather than spinning out the clock.
			return nil, "", err
		default:
			// Transient: keep polling until the deadline.
			lastErr = err
			stable = 0
		}
		timer.Reset(poll)
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return nil, "", fmt.Errorf("datachan: timed out waiting for file matching %q (last error: %v)", substr, lastErr)
			}
			return nil, "", fmt.Errorf("datachan: timed out waiting for file matching %q", substr)
		case <-timer.C:
		}
	}
}

func containsName(name, substr string) bool {
	return substr == "" || bytes.Contains([]byte(name), []byte(substr))
}
