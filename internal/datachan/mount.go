package datachan

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// ErrMountBroken marks a mount whose connection suffered a transport
// error mid-exchange. The request/reply stream may be desynchronized
// (a reply header could be read as payload bytes, silently corrupting
// a measurement), so the mount refuses all further use: errors.Is
// against this sentinel tells callers to redial, which ReliableMount
// does automatically.
var ErrMountBroken = errors.New("datachan: mount broken")

// RemoteError is an error the export answered with — the share is
// reachable and the stream intact; the operation itself failed (file
// missing, invalid name). It is never grounds for redialing.
type RemoteError struct{ Msg string }

// Error implements the error interface.
func (e *RemoteError) Error() string { return "datachan: remote: " + e.Msg }

// Share is the read-side contract both mount flavors satisfy: the
// plain single-connection Mount and the reconnecting ReliableMount.
// Workflow code holds a Share so swapping reliability in or out is a
// construction-time choice.
type Share interface {
	List() ([]FileInfo, error)
	Stat(name string) (FileInfo, error)
	ReadAt(name string, offset int64, length int) ([]byte, bool, error)
	ReadAll(name string) ([]byte, error)
	ReadAllVerified(name string) ([]byte, error)
	Checksum(name string) (string, int64, error)
	WaitFor(substr string, poll, timeout time.Duration) ([]byte, string, error)
	WaitForContext(ctx context.Context, substr string, poll time.Duration) ([]byte, string, error)
	Watch(interval time.Duration) *Watcher
	Broken() bool
	Close() error
}

// DefaultReadahead is the number of chunk requests a whole-file read
// keeps in flight. On a high-latency link each additional in-flight
// request hides one round trip; 4 covers the netsim WAN's
// latency×bandwidth product at the default chunk size with margin.
const DefaultReadahead = 4

// Mount is the remote side of the share — the moral equivalent of the
// CIFS mount point on the DGX. It is safe for concurrent use; requests
// on the single connection are serialised.
type Mount struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool
	broken error // sticky transport failure; see ErrMountBroken
	// tag numbers requests so every reply is provably the answer to
	// the request the client expects (see request.Tag).
	tag uint64
	// readahead is the whole-file read window (0 = DefaultReadahead,
	// ≤1 = strictly serial request/reply).
	readahead int
	// chunkBytes is the whole-file read transfer unit (0 = readChunk).
	chunkBytes int
}

// NewMount attaches to an export over an established connection.
func NewMount(conn net.Conn) *Mount { return &Mount{conn: conn} }

// SetReadahead sets how many chunk requests ReadAll keeps in flight
// (≤1 disables pipelining, 0 restores the default).
func (m *Mount) SetReadahead(k int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readahead = k
}

// SetChunkBytes sets the whole-file read transfer unit (0 restores the
// default).
func (m *Mount) SetChunkBytes(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chunkBytes = n
}

// Close detaches the mount.
func (m *Mount) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.conn.Close()
}

// Broken reports whether the mount's transport is permanently
// unusable — poisoned by a mid-exchange error, or closed.
func (m *Mount) Broken() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.broken != nil || m.closed
}

// usableLocked reports whether the mount can carry a request.
func (m *Mount) usableLocked() error {
	if m.closed {
		return fmt.Errorf("datachan: mount closed")
	}
	if m.broken != nil {
		return fmt.Errorf("%w: %v", ErrMountBroken, m.broken)
	}
	return nil
}

// poisonLocked records a sticky transport failure and kills the
// connection; every later operation fails with ErrMountBroken.
func (m *Mount) poisonLocked(err error) error {
	m.broken = err
	m.conn.Close()
	return err
}

// nextTagLocked issues the next request tag.
func (m *Mount) nextTagLocked() uint64 {
	m.tag++
	return m.tag
}

// readReplyLocked reads one reply header plus any payload and verifies
// it: the echoed tag must match the request the caller is waiting for
// and the payload must match its CRC32C. Any transport failure, tag
// mismatch or CRC mismatch poisons the mount — the stream can no
// longer be trusted. A RemoteError leaves the stream intact.
func (m *Mount) readReplyLocked(wantTag uint64) (*reply, []byte, error) {
	var rep reply
	if err := readFrame(m.conn, &rep); err != nil {
		return nil, nil, m.poisonLocked(fmt.Errorf("datachan: receive: %w", err))
	}
	if rep.Tag != wantTag {
		return nil, nil, m.poisonLocked(fmt.Errorf("datachan: reply tag %d does not answer request %d", rep.Tag, wantTag))
	}
	if rep.Error != "" {
		return nil, nil, &RemoteError{Msg: rep.Error}
	}
	var payload []byte
	if rep.Payload > 0 {
		payload = make([]byte, rep.Payload)
		if _, err := io.ReadFull(m.conn, payload); err != nil {
			return nil, nil, m.poisonLocked(fmt.Errorf("datachan: payload: %w", err))
		}
		if crc := crc32.Checksum(payload, castagnoli); crc != rep.CRC {
			return nil, nil, m.poisonLocked(fmt.Errorf("datachan: payload CRC mismatch (got %08x, want %08x)", crc, rep.CRC))
		}
	}
	return &rep, payload, nil
}

// roundTrip sends a request and reads the reply header plus any
// payload. Any transport failure mid-exchange poisons the mount: a
// partially-read reply leaves the stream desynchronized, and reusing
// it could hand the next caller another request's bytes.
func (m *Mount) roundTrip(req *request) (*reply, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.roundTripLocked(req)
}

func (m *Mount) roundTripLocked(req *request) (*reply, []byte, error) {
	if err := m.usableLocked(); err != nil {
		return nil, nil, err
	}
	req.Tag = m.nextTagLocked()
	if err := writeFrame(m.conn, req); err != nil {
		return nil, nil, m.poisonLocked(fmt.Errorf("datachan: send: %w", err))
	}
	return m.readReplyLocked(req.Tag)
}

// List returns the shared files sorted by name.
func (m *Mount) List() ([]FileInfo, error) {
	rep, _, err := m.roundTrip(&request{Op: opList})
	if err != nil {
		return nil, err
	}
	files := rep.Files
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
	return files, nil
}

// Stat returns metadata for one file.
func (m *Mount) Stat(name string) (FileInfo, error) {
	rep, _, err := m.roundTrip(&request{Op: opStat, Name: name})
	if err != nil {
		return FileInfo{}, err
	}
	if rep.File == nil {
		return FileInfo{}, fmt.Errorf("datachan: stat %q: empty reply", name)
	}
	return *rep.File, nil
}

// Checksum returns the whole-file SHA-256 (hex) and size as the export
// sees them — the end-to-end integrity reference for a completed
// transfer.
func (m *Mount) Checksum(name string) (string, int64, error) {
	rep, _, err := m.roundTrip(&request{Op: opChecksum, Name: name})
	if err != nil {
		return "", 0, err
	}
	if rep.File == nil || rep.Sum == "" {
		return "", 0, fmt.Errorf("datachan: checksum %q: empty reply", name)
	}
	return rep.Sum, rep.File.Size, nil
}

// readChunk is the transfer unit for whole-file reads.
const readChunk = 256 * 1024

// ReadAt reads up to length bytes from offset. The chunk's CRC32C has
// been verified against the reply header by the time it returns.
func (m *Mount) ReadAt(name string, offset int64, length int) ([]byte, bool, error) {
	rep, payload, err := m.roundTrip(&request{Op: opRead, Name: name, Offset: offset, Length: length})
	if err != nil {
		return nil, false, err
	}
	return payload, rep.EOF, nil
}

// ReadAll fetches a whole file. The transfer is pipelined: a size
// prefetch (opChecksum) preallocates the destination once, then up to
// SetReadahead chunk requests stay in flight so the WAN round-trip
// time is paid once, not once per chunk. Per-chunk CRC32C
// verification, reply-tag matching and sticky poisoning semantics are
// identical to the serial path.
func (m *Mount) ReadAll(name string) ([]byte, error) {
	data, _, err := m.readAllFrom(name, 0, nil, 0, 0)
	return data, err
}

// readAllFrom continues a whole-file read at offset off, appending to
// buf (the bytes verified so far — ReliableMount uses this to resume
// across redials). It returns the accumulated bytes, the new verified
// offset, and the first error; on error the returned buf/off reflect
// verified progress. chunk/window of 0 use the mount's settings.
func (m *Mount) readAllFrom(name string, off int64, buf []byte, chunk, window int) ([]byte, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if chunk <= 0 {
		chunk = m.chunkBytes
	}
	if chunk <= 0 {
		chunk = readChunk
	}
	if window <= 0 {
		window = m.readahead
	}
	if window <= 0 {
		window = DefaultReadahead
	}
	if err := m.usableLocked(); err != nil {
		return buf, off, err
	}
	// Size prefetch: one round trip tells us how much data is already
	// there, so the destination is allocated exactly once and the
	// pipelined window knows its bounds.
	rep, _, err := m.roundTripLocked(&request{Op: opChecksum, Name: name})
	if err != nil {
		return buf, off, err
	}
	var size int64
	if rep.File != nil {
		size = rep.File.Size
	}
	if size > off && int64(cap(buf)-len(buf)) < size-off {
		grown := make([]byte, len(buf), int64(len(buf))+(size-off))
		copy(grown, buf)
		buf = grown
	}
	if window > 1 && size > off {
		if buf, off, err = m.readWindowLocked(name, off, size, buf, chunk, window); err != nil {
			return buf, off, err
		}
	}
	// Serial tail: covers window ≤ 1, bytes appended to the file after
	// the size prefetch (still streaming), and the final EOF probe.
	for {
		rep, payload, err := m.roundTripLocked(&request{Op: opRead, Name: name, Offset: off, Length: chunk})
		if err != nil {
			return buf, off, err
		}
		buf = append(buf, payload...)
		off += int64(len(payload))
		if rep.EOF || len(payload) == 0 {
			return buf, off, nil
		}
	}
}

// readWindowLocked fetches [off, size) keeping up to window chunk
// requests in flight. Requests are written by a companion goroutine —
// a synchronous transport like net.Pipe would deadlock a single
// thread that writes ahead of reading — while this goroutine consumes
// replies in request order, verifying each tag and CRC as the serial
// path does. The export serves one request at a time per connection,
// so replies arrive in request order by construction; a reordered or
// desynchronized stream surfaces as a tag mismatch and poisons the
// mount.
func (m *Mount) readWindowLocked(name string, off, size int64, buf []byte, chunk, window int) ([]byte, int64, error) {
	type chunkReq struct {
		tag    uint64
		offset int64
		length int
	}
	var plan []chunkReq
	for at := off; at < size; {
		length := chunk
		if rem := size - at; rem < int64(length) {
			length = int(rem)
		}
		plan = append(plan, chunkReq{tag: m.nextTagLocked(), offset: at, length: length})
		at += int64(length)
	}

	conn := m.conn
	slots := make(chan struct{}, window)
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopWriter := func() { stopOnce.Do(func() { close(stop) }) }
	defer stopWriter()
	// sentCh carries each request the writer actually put on the wire
	// (closed when the writer exits); it is what the reader trusts to
	// know how many replies are owed, so the stream stays synchronized
	// even when the read stops early.
	sentCh := make(chan chunkReq, len(plan))
	go func() {
		defer close(sentCh)
		for _, cr := range plan {
			select {
			case slots <- struct{}{}:
			case <-stop:
				return
			}
			req := request{Op: opRead, Name: name, Offset: cr.offset, Length: cr.length, Tag: cr.tag}
			if err := writeFrame(conn, &req); err != nil {
				// The reader sees the same dead transport on its next
				// reply and poisons the mount there.
				return
			}
			sentCh <- cr
		}
	}()

	// drain consumes replies for requests already on the wire after an
	// early stop, keeping the stream request/reply-aligned. Remote
	// errors are answers (discarded); transport failures poison.
	drain := func() error {
		stopWriter()
		for cr := range sentCh {
			_, _, err := m.readReplyLocked(cr.tag)
			<-slots
			if err != nil {
				var remote *RemoteError
				if !errors.As(err, &remote) {
					return err
				}
			}
		}
		return nil
	}

	for cr := range sentCh {
		rep, payload, err := m.readReplyLocked(cr.tag)
		<-slots
		if err != nil {
			var remote *RemoteError
			if !errors.As(err, &remote) {
				return buf, off, err // transport: mount already poisoned
			}
			if derr := drain(); derr != nil {
				return buf, off, derr
			}
			return buf, off, err
		}
		buf = append(buf, payload...)
		off += int64(len(payload))
		if len(payload) < cr.length || rep.EOF {
			// The file ended or shrank below the size snapshot; later
			// requested offsets no longer line up with the verified
			// stream — discard their replies and let the serial tail
			// re-probe from the verified offset.
			if derr := drain(); derr != nil {
				return buf, off, derr
			}
			return buf, off, nil
		}
	}
	return buf, off, nil
}

// verifyAttempts bounds ReadAllVerified's re-reads: a file that keeps
// changing (still streaming) or keeps failing verification is an
// error, not a retry loop.
const verifyAttempts = 3

// ReadAllVerified fetches a whole file and proves it intact end to
// end: the assembled bytes must match the export-side SHA-256 and
// size. A size mismatch (the file grew mid-read) re-reads; a digest
// mismatch at matching size is corruption and fails.
func (m *Mount) ReadAllVerified(name string) ([]byte, error) {
	return readAllVerified(name, m.ReadAll, m.Checksum, nil)
}

// readAllVerified implements end-to-end verification over any
// readAll/checksum pair; onMismatch (optional) observes digest
// failures for telemetry.
func readAllVerified(
	name string,
	readAll func(string) ([]byte, error),
	checksum func(string) (string, int64, error),
	onMismatch func(),
) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < verifyAttempts; attempt++ {
		data, err := readAll(name)
		if err != nil {
			return nil, err
		}
		sum, size, err := checksum(name)
		if err != nil {
			return nil, err
		}
		if int64(len(data)) != size {
			// The file changed between read and checksum (e.g. still
			// streaming): re-read rather than fail.
			lastErr = fmt.Errorf("datachan: %q changed during transfer (read %d bytes, share now %d)", name, len(data), size)
			continue
		}
		got := sha256.Sum256(data)
		if hex.EncodeToString(got[:]) == sum {
			return data, nil
		}
		if onMismatch != nil {
			onMismatch()
		}
		lastErr = fmt.Errorf("datachan: end-to-end SHA-256 mismatch for %q", name)
	}
	return nil, fmt.Errorf("datachan: verified read of %q failed after %d attempts: %w", name, verifyAttempts, lastErr)
}

// EventType classifies a watch event.
type EventType int

// Watch event types.
const (
	// Created fires when a new file appears in the share.
	Created EventType = iota
	// Modified fires when an existing file grows or changes mtime.
	Modified
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case Created:
		return "created"
	case Modified:
		return "modified"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one observed change.
type Event struct {
	Type EventType
	File FileInfo
}

// Watcher polls the share and reports changes, the mechanism the
// remote analysis uses to notice measurement files arriving or growing
// during acquisition.
type Watcher struct {
	events chan Event
	stop   chan struct{}
	once   sync.Once

	mu  sync.Mutex
	err error
}

// Events returns the change stream. It is closed when the watcher
// stops.
func (w *Watcher) Events() <-chan Event { return w.events }

// Stop halts polling and closes Events.
func (w *Watcher) Stop() { w.once.Do(func() { close(w.stop) }) }

// Err returns the error that terminated the watcher, if any.
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *Watcher) setErr(err error) {
	w.mu.Lock()
	w.err = err
	w.mu.Unlock()
}

// Watch starts polling at the given interval. Transient listing errors
// are retried for a default grace window of 30 poll intervals (at
// least one second) before the watcher gives up; use WatchGrace to
// choose the window.
func (m *Mount) Watch(interval time.Duration) *Watcher {
	grace := 30 * interval
	if grace < time.Second {
		grace = time.Second
	}
	return m.WatchGrace(interval, grace)
}

// WatchGrace is Watch with an explicit error-grace window: a List
// failure only terminates the watcher once errors have persisted for
// the window (grace <= 0 retries forever). A poisoned mount terminates
// immediately — it can never heal, so waiting out the grace would only
// delay the report.
func (m *Mount) WatchGrace(interval, grace time.Duration) *Watcher {
	return startWatcher(m.List, m.Broken, interval, grace)
}

// startWatcher runs the shared poll loop over any lister. permanent
// reports conditions no retry can heal (poisoned or closed transport).
func startWatcher(list func() ([]FileInfo, error), permanent func() bool, interval, grace time.Duration) *Watcher {
	w := &Watcher{events: make(chan Event, 64), stop: make(chan struct{})}
	go func() {
		defer close(w.events)
		seen := make(map[string]FileInfo)
		// Prime with the current listing so only subsequent changes
		// are reported. The seen set survives reconnects, so a re-list
		// after an outage never re-announces files already reported.
		if files, err := list(); err == nil {
			for _, f := range files {
				seen[f.Name] = f
			}
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var failingSince time.Time
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
			}
			files, err := list()
			if err != nil {
				if permanent != nil && permanent() {
					w.setErr(err)
					return
				}
				if failingSince.IsZero() {
					failingSince = time.Now()
				}
				if grace > 0 && time.Since(failingSince) >= grace {
					w.setErr(err)
					return
				}
				continue
			}
			failingSince = time.Time{}
			for _, f := range files {
				prev, ok := seen[f.Name]
				switch {
				case !ok:
					seen[f.Name] = f
					select {
					case w.events <- Event{Type: Created, File: f}:
					case <-w.stop:
						return
					}
				case f.Size != prev.Size || f.ModTimeUnixNano != prev.ModTimeUnixNano:
					seen[f.Name] = f
					select {
					case w.events <- Event{Type: Modified, File: f}:
					case <-w.stop:
						return
					}
				}
			}
		}
	}()
	return w
}

// WaitFor polls until a file whose name contains substr exists and its
// size is stable across two polls, then returns its verified contents.
// It is how the workflow retrieves a measurement file that may still
// be streaming.
func (m *Mount) WaitFor(substr string, poll, timeout time.Duration) ([]byte, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return m.WaitForContext(ctx, substr, poll)
}

// WaitForContext is WaitFor bounded by a context instead of a fixed
// timeout: the poll loop aborts promptly on cancellation, and
// transient listing errors are tolerated until the deadline.
func (m *Mount) WaitForContext(ctx context.Context, substr string, poll time.Duration) ([]byte, string, error) {
	return waitFor(ctx, m, substr, poll)
}

// waitFor is the shared stable-file wait loop over any Share.
func waitFor(ctx context.Context, s Share, substr string, poll time.Duration) ([]byte, string, error) {
	lastSize := int64(-1)
	lastName := ""
	stable := 0
	var lastErr error
	// Two consecutive unchanged observations guard against sampling a
	// writer mid-burst.
	const stableNeeded = 2
	timer := time.NewTimer(poll)
	defer timer.Stop()
	for {
		files, err := s.List()
		switch {
		case err == nil:
			for _, f := range files {
				if !containsName(f.Name, substr) {
					continue
				}
				if f.Name == lastName && f.Size == lastSize && f.Size > 0 {
					stable++
					if stable >= stableNeeded {
						data, err := s.ReadAllVerified(f.Name)
						return data, f.Name, err
					}
				} else {
					stable = 0
					lastName, lastSize = f.Name, f.Size
				}
				break
			}
		case s.Broken():
			// The transport can never heal on its own; a plain mount
			// reports immediately rather than spinning out the clock.
			return nil, "", err
		default:
			// Transient: keep polling until the deadline.
			lastErr = err
			stable = 0
		}
		timer.Reset(poll)
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return nil, "", fmt.Errorf("datachan: timed out waiting for file matching %q (last error: %v)", substr, lastErr)
			}
			return nil, "", fmt.Errorf("datachan: timed out waiting for file matching %q", substr)
		case <-timer.C:
		}
	}
}

func containsName(name, substr string) bool {
	return substr == "" || bytes.Contains([]byte(name), []byte(substr))
}
