package datachan

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// Mount is the remote side of the share — the moral equivalent of the
// CIFS mount point on the DGX. It is safe for concurrent use; requests
// on the single connection are serialised.
type Mount struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// NewMount attaches to an export over an established connection.
func NewMount(conn net.Conn) *Mount { return &Mount{conn: conn} }

// Close detaches the mount.
func (m *Mount) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.conn.Close()
}

// roundTrip sends a request and reads the reply header plus any
// payload.
func (m *Mount) roundTrip(req *request) (*reply, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, fmt.Errorf("datachan: mount closed")
	}
	if err := writeFrame(m.conn, req); err != nil {
		return nil, nil, fmt.Errorf("datachan: send: %w", err)
	}
	var rep reply
	if err := readFrame(m.conn, &rep); err != nil {
		return nil, nil, fmt.Errorf("datachan: receive: %w", err)
	}
	if rep.Error != "" {
		return nil, nil, fmt.Errorf("datachan: remote: %s", rep.Error)
	}
	var payload []byte
	if rep.Payload > 0 {
		payload = make([]byte, rep.Payload)
		if _, err := io.ReadFull(m.conn, payload); err != nil {
			return nil, nil, fmt.Errorf("datachan: payload: %w", err)
		}
	}
	return &rep, payload, nil
}

// List returns the shared files sorted by name.
func (m *Mount) List() ([]FileInfo, error) {
	rep, _, err := m.roundTrip(&request{Op: opList})
	if err != nil {
		return nil, err
	}
	files := rep.Files
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
	return files, nil
}

// Stat returns metadata for one file.
func (m *Mount) Stat(name string) (FileInfo, error) {
	rep, _, err := m.roundTrip(&request{Op: opStat, Name: name})
	if err != nil {
		return FileInfo{}, err
	}
	if rep.File == nil {
		return FileInfo{}, fmt.Errorf("datachan: stat %q: empty reply", name)
	}
	return *rep.File, nil
}

// readChunk is the transfer unit for whole-file reads.
const readChunk = 256 * 1024

// ReadAt reads up to length bytes from offset.
func (m *Mount) ReadAt(name string, offset int64, length int) ([]byte, bool, error) {
	rep, payload, err := m.roundTrip(&request{Op: opRead, Name: name, Offset: offset, Length: length})
	if err != nil {
		return nil, false, err
	}
	return payload, rep.EOF, nil
}

// ReadAll fetches a whole file.
func (m *Mount) ReadAll(name string) ([]byte, error) {
	var buf bytes.Buffer
	var off int64
	for {
		chunk, eof, err := m.ReadAt(name, off, readChunk)
		if err != nil {
			return nil, err
		}
		buf.Write(chunk)
		off += int64(len(chunk))
		if eof || len(chunk) == 0 {
			return buf.Bytes(), nil
		}
	}
}

// EventType classifies a watch event.
type EventType int

// Watch event types.
const (
	// Created fires when a new file appears in the share.
	Created EventType = iota
	// Modified fires when an existing file grows or changes mtime.
	Modified
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case Created:
		return "created"
	case Modified:
		return "modified"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one observed change.
type Event struct {
	Type EventType
	File FileInfo
}

// Watcher polls the share and reports changes, the mechanism the
// remote analysis uses to notice measurement files arriving or growing
// during acquisition.
type Watcher struct {
	events chan Event
	stop   chan struct{}
	once   sync.Once
	err    error
}

// Events returns the change stream. It is closed when the watcher
// stops.
func (w *Watcher) Events() <-chan Event { return w.events }

// Stop halts polling and closes Events.
func (w *Watcher) Stop() { w.once.Do(func() { close(w.stop) }) }

// Err returns the error that terminated the watcher, if any.
func (w *Watcher) Err() error { return w.err }

// Watch starts polling at the given interval.
func (m *Mount) Watch(interval time.Duration) *Watcher {
	w := &Watcher{events: make(chan Event, 64), stop: make(chan struct{})}
	go func() {
		defer close(w.events)
		seen := make(map[string]FileInfo)
		// Prime with the current listing so only subsequent changes
		// are reported.
		if files, err := m.List(); err == nil {
			for _, f := range files {
				seen[f.Name] = f
			}
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
			}
			files, err := m.List()
			if err != nil {
				w.err = err
				return
			}
			for _, f := range files {
				prev, ok := seen[f.Name]
				switch {
				case !ok:
					seen[f.Name] = f
					select {
					case w.events <- Event{Type: Created, File: f}:
					case <-w.stop:
						return
					}
				case f.Size != prev.Size || f.ModTimeUnixNano != prev.ModTimeUnixNano:
					seen[f.Name] = f
					select {
					case w.events <- Event{Type: Modified, File: f}:
					case <-w.stop:
						return
					}
				}
			}
		}
	}()
	return w
}

// WaitFor polls until a file whose name contains substr exists and its
// size is stable across two polls, then returns its contents. It is
// how the workflow retrieves a measurement file that may still be
// streaming.
func (m *Mount) WaitFor(substr string, poll time.Duration, timeout time.Duration) ([]byte, string, error) {
	deadline := time.Now().Add(timeout)
	lastSize := int64(-1)
	lastName := ""
	stable := 0
	// Two consecutive unchanged observations guard against sampling a
	// writer mid-burst.
	const stableNeeded = 2
	for time.Now().Before(deadline) {
		files, err := m.List()
		if err != nil {
			return nil, "", err
		}
		for _, f := range files {
			if !containsName(f.Name, substr) {
				continue
			}
			if f.Name == lastName && f.Size == lastSize && f.Size > 0 {
				stable++
				if stable >= stableNeeded {
					data, err := m.ReadAll(f.Name)
					return data, f.Name, err
				}
			} else {
				stable = 0
				lastName, lastSize = f.Name, f.Size
			}
			break
		}
		time.Sleep(poll)
	}
	return nil, "", fmt.Errorf("datachan: timed out waiting for file matching %q", substr)
}

func containsName(name, substr string) bool {
	return substr == "" || bytes.Contains([]byte(name), []byte(substr))
}
