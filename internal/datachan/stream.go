package datachan

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// StreamOptions tunes a StreamFile tail-read.
type StreamOptions struct {
	// Poll is the growth-check interval (default 50 ms).
	Poll time.Duration
	// ChunkBytes bounds each incremental ReadAt (default readChunk).
	ChunkBytes int
	// OnChunk, when set, receives every newly-retrieved byte range in
	// file order, as soon as it arrives. The slice is only valid for
	// the duration of the call; copy it to retain.
	OnChunk func(chunk []byte)
	// Finished, when set, reports that the remote writer has completed
	// the file; streaming then drains the remaining bytes and stops
	// instead of waiting for two stable size polls.
	Finished func() bool
}

// StreamResult describes how a streamed retrieval went.
type StreamResult struct {
	// Name is the matched remote file.
	Name string
	// Bytes is the final verified length.
	Bytes int64
	// Reads counts incremental ReadAt calls, Polls the growth checks
	// that found no new data.
	Reads, Polls int
	// Refetched is true when the streamed bytes failed the final
	// digest check and the file was re-read from scratch — the
	// fallback that keeps streaming exactly as trustworthy as the
	// classic stable-then-ReadAllVerified retrieval.
	Refetched bool
}

// StreamFile tails a remote file while it is still being written:
// it waits for a file whose name contains substr to appear, then
// incrementally reads each appended range (per-chunk CRC32C verified
// by the transport) and hands it to OnChunk. When the writer is done —
// signalled by Finished, or inferred from two stable size polls — the
// accumulated bytes are verified end-to-end against the export's
// SHA-256. On a digest mismatch (a writer that rewrote earlier bytes,
// which append-only measurement files never do, but the channel must
// not assume) the file is silently re-read whole and re-verified, so
// the returned contents carry the same integrity guarantee as
// ReadAllVerified.
//
// StreamFile works over any Share, including ReliableMount: a link
// flap mid-stream surfaces as one failed ReadAt, which the next poll
// retries through the redialed transport.
func StreamFile(ctx context.Context, s Share, substr string, opt StreamOptions) ([]byte, StreamResult, error) {
	res := StreamResult{}
	poll := opt.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	chunk := opt.ChunkBytes
	if chunk <= 0 {
		chunk = readChunk
	}

	timer := time.NewTimer(poll)
	defer timer.Stop()
	wait := func() error {
		timer.Reset(poll)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
			return nil
		}
	}

	// Phase 1: wait for the file to exist. The writer creates it with
	// its header almost immediately after acquisition starts, so this
	// loop is short in practice.
	name := ""
	for name == "" {
		files, err := s.List()
		if err != nil {
			if s.Broken() {
				return nil, res, err
			}
		} else {
			for _, f := range files {
				if containsName(f.Name, substr) {
					name = f.Name
					break
				}
			}
		}
		if name == "" {
			if err := wait(); err != nil {
				return nil, res, fmt.Errorf("datachan: stream: no file matching %q: %w", substr, err)
			}
		}
	}
	res.Name = name

	// Phase 2: tail the file as it grows.
	var buf []byte
	var off int64
	stable := 0
	for {
		fi, err := s.Stat(name)
		if err != nil {
			if s.Broken() {
				return nil, res, err
			}
			if werr := wait(); werr != nil {
				return nil, res, fmt.Errorf("datachan: stream %q: %v: %w", name, err, werr)
			}
			continue
		}
		if fi.Size > off {
			stable = 0
			progressed := false
			for off < fi.Size {
				n := int(fi.Size - off)
				if n > chunk {
					n = chunk
				}
				data, _, err := s.ReadAt(name, off, n)
				if err != nil {
					if s.Broken() {
						return nil, res, err
					}
					break // transient; re-Stat and retry next poll
				}
				if len(data) == 0 {
					break
				}
				progressed = true
				res.Reads++
				buf = append(buf, data...)
				off += int64(len(data))
				if opt.OnChunk != nil {
					opt.OnChunk(data)
				}
			}
			if progressed {
				continue // check for more growth immediately
			}
			// A failing read must not busy-spin past cancellation:
			// fall through to the poll wait and retry.
		}
		// No growth this poll.
		if opt.Finished != nil && opt.Finished() && off == fi.Size {
			break
		}
		if opt.Finished == nil && off == fi.Size && off > 0 {
			stable++
			if stable >= 2 {
				break
			}
		}
		res.Polls++
		if err := wait(); err != nil {
			return nil, res, fmt.Errorf("datachan: stream %q: %w", name, err)
		}
	}

	// Phase 3: end-to-end verification of the accumulated bytes.
	sum, size, err := s.Checksum(name)
	if err != nil {
		return nil, res, err
	}
	if size > off {
		// Bytes landed between the last Stat and the Checksum.
		for off < size {
			n := int(size - off)
			if n > chunk {
				n = chunk
			}
			data, _, err := s.ReadAt(name, off, n)
			if err != nil {
				return nil, res, err
			}
			if len(data) == 0 {
				break
			}
			res.Reads++
			buf = append(buf, data...)
			off += int64(len(data))
			if opt.OnChunk != nil {
				opt.OnChunk(data)
			}
		}
		sum, size, err = s.Checksum(name)
		if err != nil {
			return nil, res, err
		}
	}
	digest := sha256.Sum256(buf)
	if int64(len(buf)) == size && hex.EncodeToString(digest[:]) == sum {
		res.Bytes = size
		return buf, res, nil
	}

	// Digest mismatch: fall back to a fresh verified whole-file read.
	res.Refetched = true
	data, err := s.ReadAllVerified(name)
	if err != nil {
		return nil, res, err
	}
	res.Bytes = int64(len(data))
	if opt.OnChunk != nil && !bytes.HasPrefix(data, buf) {
		// The streamed prefix was wrong, not merely short: replay the
		// authoritative contents so incremental consumers can recover.
		opt.OnChunk(nil) // nil chunk = reset signal
		opt.OnChunk(data)
	} else if opt.OnChunk != nil && int64(len(data)) > int64(len(buf)) {
		opt.OnChunk(data[len(buf):])
	}
	return data, res, nil
}
