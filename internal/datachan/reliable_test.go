package datachan

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ice/internal/telemetry"
)

// flakyConn fails every Read after roughly budget bytes have been
// delivered, standing in for a WAN killing the stream mid-transfer.
// budget < 0 means unlimited.
type flakyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (c *flakyConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.budget == 0 {
		c.mu.Unlock()
		c.Conn.Close()
		return 0, fmt.Errorf("flaky: injected read failure")
	}
	limit := len(p)
	if c.budget > 0 && c.budget < limit {
		limit = c.budget
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p[:limit])
	c.mu.Lock()
	if c.budget > 0 {
		c.budget -= n
	}
	c.mu.Unlock()
	return n, err
}

// reliableHarness exports a temp dir over loopback TCP and returns a
// ReliableMount whose successive dials draw read budgets from budgets
// (exhausted budgets repeat the last entry; empty = all unlimited). It
// also returns the export dir and a slice of live client conns so
// tests can kill the active connection.
type reliableHarness struct {
	dir   string
	rm    *ReliableMount
	mu    sync.Mutex
	conns []net.Conn
}

func newReliableHarness(t *testing.T, budgets ...int) *reliableHarness {
	t.Helper()
	dir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExport(dir, l)
	go exp.Serve()
	t.Cleanup(func() { exp.Close() })

	h := &reliableHarness{dir: dir}
	dialCount := 0
	h.rm = NewReliableMount(func() (net.Conn, error) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		budget := -1
		if len(budgets) > 0 {
			i := dialCount
			if i >= len(budgets) {
				i = len(budgets) - 1
			}
			budget = budgets[i]
		}
		dialCount++
		fc := &flakyConn{Conn: conn, budget: budget}
		h.mu.Lock()
		h.conns = append(h.conns, fc)
		h.mu.Unlock()
		return fc, nil
	})
	h.rm.Backoff = time.Millisecond
	h.rm.MaxBackoff = 5 * time.Millisecond
	t.Cleanup(func() { h.rm.Close() })
	return h
}

// killActive closes the most recently dialed connection.
func (h *reliableHarness) killActive() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.conns) > 0 {
		h.conns[len(h.conns)-1].Close()
	}
}

func (h *reliableHarness) write(t *testing.T, name string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(h.dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReliableMountRedialsAfterKill(t *testing.T) {
	h := newReliableHarness(t)
	h.write(t, "f.mpt", []byte("payload"))
	if _, err := h.rm.List(); err != nil {
		t.Fatal(err)
	}
	h.killActive()
	data, err := h.rm.ReadAll("f.mpt")
	if err != nil {
		t.Fatalf("ReadAll across kill: %v", err)
	}
	if string(data) != "payload" {
		t.Errorf("data = %q", data)
	}
	if s := h.rm.Stats(); s.Redials == 0 {
		t.Errorf("no redial counted: %+v", s)
	}
}

func TestReliableMountResumesFromVerifiedOffset(t *testing.T) {
	// First connection dies after ~40 KB delivered; the read must
	// resume from the last verified 16 KB chunk boundary, not restart.
	h := newReliableHarness(t, 40_000, -1)
	metrics := telemetry.NewCollector()
	h.rm.SetMetrics(metrics)
	h.rm.ChunkBytes = 16 * 1024
	big := make([]byte, 100*1024)
	for i := range big {
		big[i] = byte(i * 13)
	}
	h.write(t, "big.bin", big)

	data, err := h.rm.ReadAll("big.bin")
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(data, big) {
		t.Fatal("resumed read returned wrong bytes")
	}
	s := h.rm.Stats()
	if s.Redials == 0 || s.Resumes == 0 {
		t.Fatalf("reliability machinery idle: %+v", s)
	}
	if s.BytesResumed < 16*1024 {
		t.Errorf("BytesResumed = %d, want at least one verified chunk", s.BytesResumed)
	}
	for counter, want := range map[string]int64{
		"datachan.redials":       s.Redials,
		"datachan.resumes":       s.Resumes,
		"datachan.bytes_resumed": s.BytesResumed,
	} {
		if got := metrics.CounterValue(counter); got != want {
			t.Errorf("%s = %d, want %d", counter, got, want)
		}
	}
}

// killNthWriteConn closes the connection on its nth Write, before any
// bytes go out — the netsim loss model, where losing one pipelined
// chunk request tears the whole stream down before the first response
// lands.
type killNthWriteConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
	fatal  int
}

func (c *killNthWriteConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	kill := c.writes == c.fatal
	c.mu.Unlock()
	if kill {
		c.Conn.Close()
		return 0, fmt.Errorf("killnth: injected write loss")
	}
	return c.Conn.Write(p)
}

func TestReliableMountDegradesWindowUnderBurstLoss(t *testing.T) {
	// Every connection dies on its third write: the size prefetch and
	// the first chunk request get through, the second chunk request
	// kills the stream. A pipelined window fires its requests back to
	// back, so at any width ≥ 2 the connection is torn down before the
	// first chunk's response arrives — zero verified progress, forever.
	// Only the zero-progress-streak fallback to a stop-and-wait window
	// (one request, one response, one verified chunk per connection)
	// lets the transfer complete.
	dir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExport(dir, l)
	go exp.Serve()
	t.Cleanup(func() { exp.Close() })

	rm := NewReliableMount(func() (net.Conn, error) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		return &killNthWriteConn{Conn: conn, fatal: 3}, nil
	})
	t.Cleanup(func() { rm.Close() })
	rm.Backoff = time.Millisecond
	rm.MaxBackoff = 5 * time.Millisecond
	rm.MaxRetries = 5
	rm.ChunkBytes = 512
	rm.Readahead = 8

	big := make([]byte, 5*512)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := os.WriteFile(filepath.Join(dir, "burst.bin"), big, 0o644); err != nil {
		t.Fatal(err)
	}

	data, err := rm.ReadAll("burst.bin")
	if err != nil {
		t.Fatalf("ReadAll under burst loss: %v (a fixed-width window starves: every burst dies on its second chunk request before the first response lands)", err)
	}
	if !bytes.Equal(data, big) {
		t.Fatal("degraded-window read returned wrong bytes")
	}
	if s := rm.Stats(); s.Resumes == 0 {
		t.Errorf("transfer completed without resuming from a verified offset: %+v", s)
	}
}

func TestReliableMountVerifiedRead(t *testing.T) {
	h := newReliableHarness(t)
	content := []byte("EC-Lab ASCII FILE\nmode 2\n")
	h.write(t, "cv.mpt", content)
	data, err := h.rm.ReadAllVerified("cv.mpt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, content) {
		t.Errorf("data = %q", data)
	}
	sum, size, err := h.rm.Checksum("cv.mpt")
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(content)
	if sum != hex.EncodeToString(want[:]) || size != int64(len(content)) {
		t.Errorf("Checksum = %s/%d", sum, size)
	}
}

func TestReliableMountRemoteErrorsNotRetried(t *testing.T) {
	h := newReliableHarness(t)
	_, err := h.rm.Stat("missing.mpt")
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if s := h.rm.Stats(); s.Redials != 0 {
		t.Errorf("remote error triggered %d redials", s.Redials)
	}
}

func TestReliableMountWaitForAcrossKill(t *testing.T) {
	h := newReliableHarness(t)
	if _, err := h.rm.List(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		h.killActive()
		h.write(t, "run.mpt", []byte("settled measurement data\n"))
	}()
	data, name, err := h.rm.WaitFor("run", 10*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if name != "run.mpt" || len(data) == 0 {
		t.Errorf("WaitFor = %q (%d bytes)", name, len(data))
	}
}

func TestReliableWatcherExactlyOnceAcrossOutage(t *testing.T) {
	h := newReliableHarness(t)
	h.write(t, "before.mpt", []byte("pre-existing"))
	w := h.rm.Watch(10 * time.Millisecond)
	defer w.Stop()
	time.Sleep(40 * time.Millisecond) // prime

	h.write(t, "first.mpt", []byte("one"))
	ev := waitEvent(t, w)
	if ev.Type != Created || ev.File.Name != "first.mpt" {
		t.Fatalf("event = %v %q", ev.Type, ev.File.Name)
	}

	// Outage: kill the connection, create a file while down.
	h.killActive()
	h.write(t, "during.mpt", []byte("two"))
	ev = waitEvent(t, w)
	if ev.Type != Created || ev.File.Name != "during.mpt" {
		t.Fatalf("post-outage event = %v %q", ev.Type, ev.File.Name)
	}

	// No duplicates: nothing further pending, and the primed or
	// already-reported files were not re-announced after the re-list.
	select {
	case ev := <-w.Events():
		t.Fatalf("duplicate event after reconnect: %v %q", ev.Type, ev.File.Name)
	case <-time.After(100 * time.Millisecond):
	}
	if s := h.rm.Stats(); s.Redials == 0 {
		t.Error("watcher rode out the outage without a redial?")
	}
	if w.Err() != nil {
		t.Errorf("self-healing watcher recorded error: %v", w.Err())
	}
}

func TestReliableMountClosed(t *testing.T) {
	h := newReliableHarness(t)
	if _, err := h.rm.List(); err != nil {
		t.Fatal(err)
	}
	if err := h.rm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.rm.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
	if _, err := h.rm.List(); !errors.Is(err, ErrReliableMountClosed) {
		t.Errorf("List after close = %v", err)
	}
	if _, err := h.rm.ReadAll("f"); !errors.Is(err, ErrReliableMountClosed) {
		t.Errorf("ReadAll after close = %v", err)
	}
}

func TestReliableMountConcurrentUse(t *testing.T) {
	h := newReliableHarness(t)
	h.write(t, "f", bytes.Repeat([]byte("z"), 4096))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if i == 0 && j == 5 {
					h.killActive()
				}
				if _, err := h.rm.ReadAllVerified("f"); err != nil {
					t.Errorf("ReadAllVerified: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestReliableMountDialFailureExhaustsRetries(t *testing.T) {
	rm := NewReliableMount(func() (net.Conn, error) {
		return nil, fmt.Errorf("refused")
	})
	rm.Backoff = time.Millisecond
	rm.MaxRetries = 2
	defer rm.Close()
	if _, err := rm.List(); err == nil {
		t.Fatal("List with failing dialer succeeded")
	}
}
