package datachan

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// startShare exports a temp directory over loopback TCP and returns
// the directory, a connected mount and a cleanup func.
func startShare(t *testing.T) (string, *Mount) {
	t.Helper()
	dir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExport(dir, l)
	go exp.Serve()
	t.Cleanup(func() { exp.Close() })

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMount(conn)
	t.Cleanup(func() { m.Close() })
	return dir, m
}

func TestListStatRead(t *testing.T) {
	dir, m := startShare(t)
	content := []byte("EC-Lab ASCII FILE (ICE simulated)\ndata...\n")
	if err := os.WriteFile(filepath.Join(dir, "CV_ch1_run001.mpt"), content, 0o644); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "a.txt"), []byte("x"), 0o644)
	os.Mkdir(filepath.Join(dir, "subdir"), 0o755) // directories are skipped

	files, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("List = %v, want 2 files", files)
	}
	if files[0].Name != "CV_ch1_run001.mpt" || files[1].Name != "a.txt" {
		t.Errorf("sorted names = %v, %v", files[0].Name, files[1].Name)
	}

	fi, err := m.Stat("CV_ch1_run001.mpt")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != int64(len(content)) {
		t.Errorf("Stat size = %d, want %d", fi.Size, len(content))
	}

	data, err := m.ReadAll("CV_ch1_run001.mpt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, content) {
		t.Errorf("ReadAll = %q", data)
	}
}

func TestReadAtPartial(t *testing.T) {
	dir, m := startShare(t)
	os.WriteFile(filepath.Join(dir, "f.bin"), []byte("0123456789"), 0o644)
	chunk, eof, err := m.ReadAt("f.bin", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(chunk) != "3456" || eof {
		t.Errorf("ReadAt = %q eof=%v", chunk, eof)
	}
	chunk, eof, err = m.ReadAt("f.bin", 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(chunk) != "89" || !eof {
		t.Errorf("tail ReadAt = %q eof=%v", chunk, eof)
	}
}

func TestErrorsSurface(t *testing.T) {
	_, m := startShare(t)
	if _, err := m.Stat("missing.mpt"); err == nil {
		t.Error("Stat of missing file succeeded")
	}
	if _, err := m.ReadAll("missing.mpt"); err == nil {
		t.Error("ReadAll of missing file succeeded")
	}
	// Path escapes rejected.
	for _, bad := range []string{"../etc/passwd", "a/b", `a\b`, "..", "."} {
		if _, err := m.Stat(bad); err == nil {
			t.Errorf("Stat(%q) accepted", bad)
		}
	}
	// Bad read length.
	if _, _, err := m.ReadAt("x", 0, 0); err == nil {
		t.Error("zero-length read accepted")
	}
	// Connection still alive after errors.
	if _, err := m.List(); err != nil {
		t.Errorf("List after errors: %v", err)
	}
}

func TestLargeFileRoundTrip(t *testing.T) {
	dir, m := startShare(t)
	big := make([]byte, 1_500_000) // spans several read chunks
	for i := range big {
		big[i] = byte(i * 31)
	}
	os.WriteFile(filepath.Join(dir, "big.bin"), big, 0o644)
	got, err := m.ReadAll("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("large file corrupted in transfer")
	}
}

func TestGrowingFileVisibleAcrossReads(t *testing.T) {
	// The data channel must expose a file that is still being written,
	// as during acquisition streaming.
	dir, m := startShare(t)
	path := filepath.Join(dir, "grow.mpt")
	os.WriteFile(path, []byte("part1\n"), 0o644)
	d1, err := m.ReadAll("grow.mpt")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("part2\n")
	f.Close()
	d2, err := m.ReadAll("grow.mpt")
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) <= len(d1) {
		t.Errorf("second read %d bytes, first %d; growth invisible", len(d2), len(d1))
	}
}

func TestWatcherSeesCreateAndModify(t *testing.T) {
	dir, m := startShare(t)
	w := m.Watch(10 * time.Millisecond)
	defer w.Stop()

	time.Sleep(30 * time.Millisecond) // let the watcher prime
	path := filepath.Join(dir, "run.mpt")
	os.WriteFile(path, []byte("header\n"), 0o644)

	ev := waitEvent(t, w)
	if ev.Type != Created || ev.File.Name != "run.mpt" {
		t.Fatalf("first event = %v %q", ev.Type, ev.File.Name)
	}

	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("more data\n")
	f.Close()
	ev = waitEvent(t, w)
	if ev.Type != Modified || ev.File.Name != "run.mpt" {
		t.Fatalf("second event = %v %q", ev.Type, ev.File.Name)
	}
}

func waitEvent(t *testing.T, w *Watcher) Event {
	t.Helper()
	select {
	case ev, ok := <-w.Events():
		if !ok {
			t.Fatalf("watcher stopped: %v", w.Err())
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("no watch event within 5s")
	}
	return Event{}
}

func TestWatcherStop(t *testing.T) {
	_, m := startShare(t)
	w := m.Watch(5 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent
	select {
	case _, ok := <-w.Events():
		if ok {
			t.Error("event after Stop")
		}
	case <-time.After(2 * time.Second):
		t.Error("Events not closed after Stop")
	}
}

func TestWaitForStableFile(t *testing.T) {
	dir, m := startShare(t)
	// Simulate streaming: grow the file in the background, then stop.
	go func() {
		path := filepath.Join(dir, "CV_ch1_run001.mpt")
		os.WriteFile(path, []byte("chunk0\n"), 0o644)
		for i := 1; i <= 3; i++ {
			time.Sleep(10 * time.Millisecond)
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			f.WriteString("chunkN\n")
			f.Close()
		}
	}()
	data, name, err := m.WaitFor("CV_ch1", 25*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if name != "CV_ch1_run001.mpt" {
		t.Errorf("name = %q", name)
	}
	if len(data) != len("chunk0\n")+3*len("chunkN\n") {
		t.Errorf("WaitFor returned %d bytes before file settled", len(data))
	}
}

func TestWaitForTimeout(t *testing.T) {
	_, m := startShare(t)
	if _, _, err := m.WaitFor("never", 5*time.Millisecond, 50*time.Millisecond); err == nil {
		t.Error("WaitFor for absent file succeeded")
	}
}

func TestBytesServedAccounting(t *testing.T) {
	dir := t.TempDir()
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	exp := NewExport(dir, l)
	go exp.Serve()
	defer exp.Close()
	conn, _ := net.Dial("tcp", l.Addr().String())
	m := NewMount(conn)
	defer m.Close()

	payload := make([]byte, 10_000)
	os.WriteFile(filepath.Join(dir, "f"), payload, 0o644)
	m.ReadAll("f")
	if got := exp.BytesServed(); got != 10_000 {
		t.Errorf("BytesServed = %d, want 10000", got)
	}
}

func TestConcurrentMountUse(t *testing.T) {
	dir, m := startShare(t)
	os.WriteFile(filepath.Join(dir, "f"), bytes.Repeat([]byte("z"), 4096), 0o644)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := m.ReadAll("f"); err != nil {
					t.Errorf("ReadAll: %v", err)
					return
				}
				if _, err := m.List(); err != nil {
					t.Errorf("List: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMountClosed(t *testing.T) {
	_, m := startShare(t)
	m.Close()
	if _, err := m.List(); err == nil {
		t.Error("List on closed mount succeeded")
	}
	if err := m.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestMultipleMounts(t *testing.T) {
	dir := t.TempDir()
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	exp := NewExport(dir, l)
	go exp.Serve()
	defer exp.Close()
	os.WriteFile(filepath.Join(dir, "f"), []byte("shared"), 0o644)

	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		m := NewMount(conn)
		data, err := m.ReadAll("f")
		if err != nil || string(data) != "shared" {
			t.Errorf("mount %d: %q, %v", i, data, err)
		}
		m.Close()
	}
}

func TestEventTypeString(t *testing.T) {
	if Created.String() != "created" || Modified.String() != "modified" {
		t.Error("event type names wrong")
	}
	if EventType(9).String() != "event(9)" {
		t.Errorf("unknown event = %q", EventType(9).String())
	}
}

// Property: arbitrary binary content survives the share round trip.
func TestShareRoundTripProperty(t *testing.T) {
	dir, m := startShare(t)
	i := 0
	f := func(data []byte) bool {
		i++
		name := filepath.Join(dir, "prop.bin")
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return false
		}
		got, err := m.ReadAll("prop.bin")
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExportOverNetPipeTransport(t *testing.T) {
	// The mount works over any net.Conn — here a raw in-memory pipe,
	// standing in for the netsim fabric.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "f"), []byte("via pipe"), 0o644)
	client, server := net.Pipe()
	exp := NewExport(dir, nil) // Serve not used; handle one conn directly
	go exp.serveConn(server)
	m := NewMount(client)
	defer m.Close()
	data, err := m.ReadAll("f")
	if err != nil || string(data) != "via pipe" {
		t.Errorf("pipe transport = %q, %v", data, err)
	}
}

func TestWatcherReportsErrorWhenExportDies(t *testing.T) {
	dir := t.TempDir()
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	exp := NewExport(dir, l)
	go exp.Serve()
	conn, _ := net.Dial("tcp", l.Addr().String())
	m := NewMount(conn)
	defer m.Close()

	w := m.Watch(10 * time.Millisecond)
	defer w.Stop()
	exp.Close()
	select {
	case _, ok := <-w.Events():
		if ok {
			// Drain until close.
			for range w.Events() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not notice dead export")
	}
	if w.Err() == nil {
		t.Error("watcher terminated without recording an error")
	}
	if !strings.Contains(w.Err().Error(), "datachan") {
		t.Errorf("err = %v", w.Err())
	}
}
