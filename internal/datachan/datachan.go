// Package datachan implements the ICE data channel: a CIFS-style file
// share that makes the measurement files written by the control agent
// appear on remote computing systems. The control agent Exports a
// directory; the remote side Mounts it over any net.Conn transport
// (real TCP or the netsim fabric) and can list, stat, read and watch
// files as they grow during acquisition.
//
// Like the paper's CIFS cross-mount, the share is read-only from the
// remote side and persistent: a Mount survives across workflow runs.
package datachan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Operation codes.
const (
	opList byte = iota + 1
	opStat
	opRead
	// opChecksum returns a whole-file SHA-256 and size so a client can
	// verify a multi-chunk transfer end to end.
	opChecksum
)

// castagnoli is the CRC32C table used for per-chunk payload checksums;
// the polynomial hardware-accelerated on most platforms.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxFrameBytes bounds request/response headers and read payloads.
const maxFrameBytes = 8 << 20

// FileInfo describes one shared file.
type FileInfo struct {
	// Name is the file's base name within the share.
	Name string `json:"name"`
	// Size in bytes at the time of the call.
	Size int64 `json:"size"`
	// ModTimeUnixNano is the modification time.
	ModTimeUnixNano int64 `json:"mtime"`
}

// request is the client→server header.
type request struct {
	Op     byte   `json:"op"`
	Name   string `json:"name,omitempty"`
	Offset int64  `json:"offset,omitempty"`
	Length int    `json:"length,omitempty"`
	// Tag correlates a reply with its request. The export echoes it
	// verbatim, which is what lets a client keep several requests in
	// flight (readahead) and still prove each reply answers the request
	// it expects — a silent stream desynchronization becomes a detected
	// tag mismatch instead of corrupt data.
	Tag uint64 `json:"tag,omitempty"`
}

// reply is the server→client header; binary payload (for reads)
// follows separately.
type reply struct {
	Error   string     `json:"error,omitempty"`
	Files   []FileInfo `json:"files,omitempty"`
	File    *FileInfo  `json:"file,omitempty"`
	Payload int        `json:"payload,omitempty"` // bytes following
	EOF     bool       `json:"eof,omitempty"`
	// CRC is the CRC32C of the following payload bytes, so the client
	// detects in-transit corruption per chunk instead of parsing
	// garbage downstream.
	CRC uint32 `json:"crc,omitempty"`
	// Sum is the whole-file SHA-256 (hex) in opChecksum replies.
	Sum string `json:"sum,omitempty"`
	// Tag echoes the request's tag.
	Tag uint64 `json:"tag,omitempty"`
}

// writeFrame frames v as uint32 length + JSON, emitted as a single
// Write so a frame costs one transport operation (one latency charge
// on a simulated link, one syscall on a real one).
func writeFrame(w io.Writer, v any) error {
	return writeFrameAndPayload(w, v, nil)
}

// writeFrameAndPayload frames v and appends an opaque payload in the
// same Write. Coalescing header and payload matters on high-latency
// links: a chunk reply is one transport operation instead of three.
func writeFrameAndPayload(w io.Writer, v any, payload []byte) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > maxFrameBytes {
		return fmt.Errorf("datachan: frame of %d bytes too large", len(body))
	}
	frame := make([]byte, 4+len(body)+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	copy(frame[4+len(body):], payload)
	_, err = w.Write(frame)
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return fmt.Errorf("datachan: incoming frame of %d bytes too large", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// validName rejects names that could escape the share root.
func validName(name string) error {
	if name == "" || strings.ContainsAny(name, `/\`) || name == "." || name == ".." {
		return fmt.Errorf("datachan: invalid file name %q", name)
	}
	return nil
}

// Export serves a directory read-only over a listener.
type Export struct {
	dir      string
	listener net.Listener

	mu           sync.Mutex
	closed       bool
	conns        map[net.Conn]struct{}
	bytesServed  int64
	connFailures int64
	logf         func(format string, args ...any)
}

// NewExport shares dir over l. Call Serve to start handling clients.
func NewExport(dir string, l net.Listener) *Export {
	return &Export{dir: dir, listener: l, conns: make(map[net.Conn]struct{})}
}

// Serve accepts clients until Close; it returns nil after a clean
// Close.
func (e *Export) Serve() error {
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return nil
		}
		e.conns[conn] = struct{}{}
		e.mu.Unlock()
		go e.serveConn(conn)
	}
}

// Close stops the export and drops all client connections.
func (e *Export) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	err := e.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// BytesServed returns the total payload bytes sent to clients, for
// throughput accounting.
func (e *Export) BytesServed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bytesServed
}

// ConnFailures reports how many client connections terminated on a
// transport or framing error rather than a clean disconnect. The
// export itself survives every such failure; each costs only the one
// client its connection.
func (e *Export) ConnFailures() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.connFailures
}

// SetLogf attaches a logger for per-connection failures (nil keeps the
// export silent, the test default).
func (e *Export) SetLogf(f func(format string, args ...any)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.logf = f
}

// noteConnFailure records one failed client connection.
func (e *Export) noteConnFailure(conn net.Conn, err error) {
	e.mu.Lock()
	e.connFailures++
	logf := e.logf
	closed := e.closed
	e.mu.Unlock()
	if logf != nil && !closed {
		logf("datachan: connection %v failed: %v", conn.RemoteAddr(), err)
	}
}

func (e *Export) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			// io.EOF on a frame boundary is the clean "client detached"
			// case; anything else is a failure worth accounting.
			if !errors.Is(err, io.EOF) {
				e.noteConnFailure(conn, err)
			}
			return
		}
		if err := e.handle(conn, &req); err != nil {
			e.noteConnFailure(conn, err)
			return
		}
	}
}

func (e *Export) handle(conn net.Conn, req *request) error {
	fail := func(err error) error {
		return writeFrame(conn, &reply{Error: err.Error(), Tag: req.Tag})
	}
	switch req.Op {
	case opList:
		entries, err := os.ReadDir(e.dir)
		if err != nil {
			return fail(err)
		}
		var files []FileInfo
		for _, ent := range entries {
			if ent.IsDir() {
				continue
			}
			info, err := ent.Info()
			if err != nil {
				continue
			}
			files = append(files, FileInfo{
				Name: ent.Name(), Size: info.Size(), ModTimeUnixNano: info.ModTime().UnixNano(),
			})
		}
		return writeFrame(conn, &reply{Files: files, Tag: req.Tag})

	case opStat:
		if err := validName(req.Name); err != nil {
			return fail(err)
		}
		info, err := os.Stat(filepath.Join(e.dir, req.Name))
		if err != nil {
			return fail(err)
		}
		return writeFrame(conn, &reply{File: &FileInfo{
			Name: req.Name, Size: info.Size(), ModTimeUnixNano: info.ModTime().UnixNano(),
		}, Tag: req.Tag})

	case opRead:
		if err := validName(req.Name); err != nil {
			return fail(err)
		}
		if req.Length <= 0 || req.Length > maxFrameBytes {
			return fail(fmt.Errorf("datachan: read length %d invalid", req.Length))
		}
		f, err := os.Open(filepath.Join(e.dir, req.Name))
		if err != nil {
			return fail(err)
		}
		buf := make([]byte, req.Length)
		n, err := f.ReadAt(buf, req.Offset)
		f.Close()
		eof := errors.Is(err, io.EOF)
		if err != nil && !eof {
			return fail(err)
		}
		rep := &reply{Payload: n, EOF: eof, CRC: crc32.Checksum(buf[:n], castagnoli), Tag: req.Tag}
		if n > 0 {
			// Count before the write: a client that has received the
			// payload must observe the accounting (the write blocks
			// until consumed, so counting after races with observers).
			e.mu.Lock()
			e.bytesServed += int64(n)
			e.mu.Unlock()
		}
		return writeFrameAndPayload(conn, rep, buf[:n])

	case opChecksum:
		if err := validName(req.Name); err != nil {
			return fail(err)
		}
		f, err := os.Open(filepath.Join(e.dir, req.Name))
		if err != nil {
			return fail(err)
		}
		h := sha256.New()
		size, err := io.Copy(h, f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		return writeFrame(conn, &reply{
			Sum:  hex.EncodeToString(h.Sum(nil)),
			File: &FileInfo{Name: req.Name, Size: size},
			Tag:  req.Tag,
		})

	default:
		return fail(fmt.Errorf("datachan: unknown op %d", req.Op))
	}
}
