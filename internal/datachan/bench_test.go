package datachan

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
)

func benchMount(b *testing.B, fileSize int) *Mount {
	b.Helper()
	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.mpt"), bytes.Repeat([]byte{1}, fileSize), 0o644); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	exp := NewExport(dir, l)
	go exp.Serve()
	b.Cleanup(func() { exp.Close() })
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	m := NewMount(conn)
	b.Cleanup(func() { m.Close() })
	return m
}

// BenchmarkList measures share listing latency.
func BenchmarkList(b *testing.B) {
	m := benchMount(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.List(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadAll1MB measures whole-file retrieval throughput over
// loopback TCP (no netsim shaping; see the root bench for the shaped
// cross-facility number).
func BenchmarkReadAll1MB(b *testing.B) {
	const size = 1 << 20
	m := benchMount(b, size)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := m.ReadAll("f.mpt")
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != size {
			b.Fatal("short read")
		}
	}
}

// BenchmarkReadAllAllocs is the allocation regression gate for the
// size-prefetch path: ReadAll asks the export for the file size up
// front and allocates the result buffer once, so per-read allocations
// must stay flat in file size (no append-doubling of a multi-megabyte
// buffer). A regression here roughly doubles transient garbage per
// retrieved measurement.
func BenchmarkReadAllAllocs(b *testing.B) {
	for _, size := range []int{64 << 10, 1 << 20, 4 << 20} {
		b.Run(byteLabel(size), func(b *testing.B) {
			m := benchMount(b, size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := m.ReadAll("f.mpt")
				if err != nil {
					b.Fatal(err)
				}
				if len(data) != size {
					b.Fatal("short read")
				}
			}
		})
	}
}

func byteLabel(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMiB", n>>20)
	}
	return fmt.Sprintf("%dKiB", n>>10)
}
