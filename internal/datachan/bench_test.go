package datachan

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
)

func benchMount(b *testing.B, fileSize int) *Mount {
	b.Helper()
	dir := b.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.mpt"), bytes.Repeat([]byte{1}, fileSize), 0o644); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	exp := NewExport(dir, l)
	go exp.Serve()
	b.Cleanup(func() { exp.Close() })
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	m := NewMount(conn)
	b.Cleanup(func() { m.Close() })
	return m
}

// BenchmarkList measures share listing latency.
func BenchmarkList(b *testing.B) {
	m := benchMount(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.List(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadAll1MB measures whole-file retrieval throughput over
// loopback TCP (no netsim shaping; see the root bench for the shaped
// cross-facility number).
func BenchmarkReadAll1MB(b *testing.B) {
	const size = 1 << 20
	m := benchMount(b, size)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := m.ReadAll("f.mpt")
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != size {
			b.Fatal("short read")
		}
	}
}
