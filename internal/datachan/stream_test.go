package datachan

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamFileTailsGrowingFile streams a file while a writer is
// still appending: every chunk must arrive in order, and the final
// bytes must be digest-verified and identical to the file.
func TestStreamFileTailsGrowingFile(t *testing.T) {
	dir, m := startShare(t)
	path := filepath.Join(dir, "run_ch1_run001.mpt")

	var want []byte
	var writerDone atomic.Bool
	go func() {
		f, err := os.Create(path)
		if err != nil {
			t.Error(err)
			writerDone.Store(true)
			return
		}
		for i := 0; i < 20; i++ {
			chunk := bytes.Repeat([]byte{byte('a' + i%26)}, 1000)
			want = append(want, chunk...)
			f.Write(chunk)
			f.Sync()
			time.Sleep(5 * time.Millisecond)
		}
		f.Close()
		writerDone.Store(true)
	}()

	var streamed []byte
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	data, res, err := StreamFile(ctx, m, "run001", StreamOptions{
		Poll:    2 * time.Millisecond,
		OnChunk: func(c []byte) { streamed = append(streamed, c...) },
		Finished: func() bool {
			return writerDone.Load()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "run_ch1_run001.mpt" {
		t.Errorf("matched %q", res.Name)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("streamed %d bytes, want %d", len(data), len(want))
	}
	if !bytes.Equal(streamed, want) {
		t.Fatalf("OnChunk saw %d bytes, want %d", len(streamed), len(want))
	}
	if res.Refetched {
		t.Error("append-only stream should not need a refetch")
	}
	if res.Reads < 2 {
		t.Errorf("expected incremental reads, got %d", res.Reads)
	}
}

// TestStreamFileStableStop infers completion from size stability when
// no Finished signal is provided.
func TestStreamFileStableStop(t *testing.T) {
	dir, m := startShare(t)
	want := bytes.Repeat([]byte("xyz"), 5000)
	if err := os.WriteFile(filepath.Join(dir, "done.mpt"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	data, _, err := StreamFile(ctx, m, "done", StreamOptions{Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("got %d bytes, want %d", len(data), len(want))
	}
}

// TestStreamFileRefetchOnRewrite rewrites already-streamed bytes (a
// writer streaming files never does this, but the channel must not
// assume): the final digest check must catch it and fall back to a
// verified whole-file read, replaying through OnChunk after a reset.
func TestStreamFileRefetchOnRewrite(t *testing.T) {
	dir, m := startShare(t)
	path := filepath.Join(dir, "mutated.mpt")
	if err := os.WriteFile(path, bytes.Repeat([]byte("A"), 4096), 0o644); err != nil {
		t.Fatal(err)
	}

	var finished atomic.Bool
	firstChunk := make(chan struct{})
	var sawReset atomic.Bool
	var replay []byte
	go func() {
		<-firstChunk
		// Rewrite the first bytes after they were streamed, then stop.
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err == nil {
			f.WriteAt(bytes.Repeat([]byte("B"), 1024), 0)
			f.Close()
		}
		finished.Store(true)
	}()

	var once bool
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	data, res, err := StreamFile(ctx, m, "mutated", StreamOptions{
		Poll: 2 * time.Millisecond,
		OnChunk: func(c []byte) {
			if c == nil {
				sawReset.Store(true)
				replay = nil
				return
			}
			if sawReset.Load() {
				replay = append(replay, c...)
			}
			if !once {
				once = true
				close(firstChunk)
				// Give the mutator time before we report more progress.
				time.Sleep(50 * time.Millisecond)
			}
		},
		Finished: func() bool { return finished.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Refetched {
		t.Fatal("rewrite was not detected by the final digest check")
	}
	want, _ := os.ReadFile(path)
	if !bytes.Equal(data, want) {
		t.Fatalf("refetched contents differ: %d bytes vs %d", len(data), len(want))
	}
	if sawReset.Load() && !bytes.Equal(replay, want) {
		t.Fatalf("post-reset replay differs: %d bytes vs %d", len(replay), len(want))
	}
}

// TestStreamFileCancel aborts a stream whose file never appears.
func TestStreamFileCancel(t *testing.T) {
	_, m := startShare(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := StreamFile(ctx, m, "never", StreamOptions{Poll: 5 * time.Millisecond})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

// TestStreamFileOverReliableMount streams through the reconnecting
// mount flavor, exercising the Share seam streaming relies on.
func TestStreamFileOverReliableMount(t *testing.T) {
	dir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExport(dir, l)
	go exp.Serve()
	t.Cleanup(func() { exp.Close() })

	rm := NewReliableMount(func() (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	})
	t.Cleanup(func() { rm.Close() })

	want := bytes.Repeat([]byte("reliable"), 2000)
	if err := os.WriteFile(filepath.Join(dir, "rel.mpt"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	data, _, err := StreamFile(ctx, rm, "rel", StreamOptions{Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("got %d bytes, want %d", len(data), len(want))
	}
}
