package datachan

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ice/internal/backoff"
	"ice/internal/telemetry"
	"ice/internal/trace"
)

// ErrReliableMountClosed is returned by every operation after Close.
var ErrReliableMountClosed = errors.New("datachan: reliable mount closed")

// MountStats counts the reliability machinery's interventions on one
// ReliableMount. All zeros on a healthy fabric.
type MountStats struct {
	// Redials counts reconnections after the initial dial.
	Redials int64
	// Resumes counts interrupted whole-file reads continued from their
	// last verified offset instead of restarting.
	Resumes int64
	// ChecksumFailures counts end-to-end SHA-256 verification failures.
	ChecksumFailures int64
	// BytesResumed totals the already-verified bytes that did not need
	// re-reading across all resumes.
	BytesResumed int64
}

// ReliableMount is a self-healing data-channel mount: the reliability
// layer symmetric to the control channel's ReconnectingProxy. It
// redials the export with jittered capped backoff after transport
// failures, never reuses a desynchronized stream (any mid-frame error
// poisons the underlying Mount, which is then replaced), resumes
// interrupted whole-file reads from the last verified offset, and
// verifies completed transfers end to end against the export-side
// SHA-256. Remote application errors (missing file, bad name) are
// answers, not transport failures, and are never retried.
//
// It is safe for concurrent use.
type ReliableMount struct {
	dial func() (net.Conn, error)

	// MaxRetries bounds redial attempts per operation (default 3).
	MaxRetries int
	// Backoff is the initial redial delay, doubled per attempt with
	// ±50% jitter (default 50 ms).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 2 s).
	MaxBackoff time.Duration
	// ChunkBytes is the whole-file read transfer unit (default 256 KiB).
	// Smaller chunks checkpoint verified progress more often under a
	// lossy link at the cost of more round trips.
	ChunkBytes int
	// Readahead is how many chunk requests a whole-file read keeps in
	// flight (default DefaultReadahead; 1 = strictly serial). Each
	// in-flight request hides one WAN round trip; resume-from-verified-
	// offset semantics are unchanged because chunks are verified in
	// request order. Under a streak of interruptions that verify no new
	// chunk, the window temporarily degrades toward 1 so the transfer
	// cannot starve on a link lossy enough to kill every full-width
	// burst; it restores to full width after the next verified chunk.
	Readahead int

	rng backoff.Policy

	mu     sync.Mutex
	mount  *Mount
	closed bool
	dialed bool

	redials          atomic.Int64
	resumes          atomic.Int64
	checksumFailures atomic.Int64
	bytesResumed     atomic.Int64
	metrics          atomic.Pointer[telemetry.Collector]
	span             atomic.Pointer[trace.Span]

	// done unblocks backoff sleeps when the handle is closed.
	done chan struct{}
}

// NewReliableMount returns a handle that dials lazily on first use.
func NewReliableMount(dial func() (net.Conn, error)) *ReliableMount {
	return &ReliableMount{
		dial:       dial,
		MaxRetries: 3,
		Backoff:    50 * time.Millisecond,
		MaxBackoff: 2 * time.Second,
		done:       make(chan struct{}),
	}
}

// SetMetrics attaches a telemetry collector; the mount counts
// "datachan.redials", "datachan.resumes", "datachan.checksum_failures"
// and "datachan.bytes_resumed".
func (r *ReliableMount) SetMetrics(c *telemetry.Collector) { r.metrics.Store(c) }

func (r *ReliableMount) count(name string, delta int64) {
	if c := r.metrics.Load(); c != nil {
		c.Counter(name).Add(delta)
	}
}

// SetSpan binds (or, with nil, unbinds) the trace span that receives
// this mount's reliability events: every redial and resume is noted
// on the bound span, so a trace shows exactly which retrieval healed
// which fault. Bind around a retrieval window and unbind before the
// span ends — events after a span finishes are dropped.
func (r *ReliableMount) SetSpan(s *trace.Span) { r.span.Store(s) }

// note records a reliability event on the bound span, if any.
func (r *ReliableMount) note(event string, kv ...string) {
	r.span.Load().Event(event, kv...)
}

// Stats snapshots the reliability counters.
func (r *ReliableMount) Stats() MountStats {
	return MountStats{
		Redials:          r.redials.Load(),
		Resumes:          r.resumes.Load(),
		ChecksumFailures: r.checksumFailures.Load(),
		BytesResumed:     r.bytesResumed.Load(),
	}
}

// Broken reports whether the mount is permanently unusable, which for
// a self-healing mount means closed.
func (r *ReliableMount) Broken() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Close shuts the handle down; subsequent operations fail and
// in-flight backoff sleeps abort.
func (r *ReliableMount) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	m := r.mount
	r.mount = nil
	r.mu.Unlock()
	close(r.done)
	if m != nil {
		return m.Close()
	}
	return nil
}

// current returns a live underlying mount, dialing (and counting a
// redial after the first dial) if the previous one broke.
func (r *ReliableMount) current() (*Mount, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrReliableMountClosed
	}
	if r.mount != nil && !r.mount.Broken() {
		return r.mount, nil
	}
	if r.mount != nil {
		r.mount.Close()
		r.mount = nil
	}
	if r.dialed {
		r.redials.Add(1)
		r.count("datachan.redials", 1)
		r.note("datachan.redial")
	}
	conn, err := r.dial()
	r.dialed = true
	if err != nil {
		return nil, err
	}
	r.mount = NewMount(conn)
	return r.mount, nil
}

// dropIf discards the cached mount if it is still the failed one.
func (r *ReliableMount) dropIf(m *Mount) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mount == m {
		r.mount.Close()
		r.mount = nil
	}
}

// retryable reports whether err is a transport failure worth a redial
// (remote application errors and handle closure are not).
func retryable(err error) bool {
	var remote *RemoteError
	return err != nil && !errors.As(err, &remote) && !errors.Is(err, ErrReliableMountClosed)
}

// do runs op against a live mount, redialing across transport
// failures up to MaxRetries times.
func (r *ReliableMount) do(op func(*Mount) error) error {
	seq := r.rng.StartWith(r.Backoff, r.MaxBackoff)
	var lastErr error
	for attempt := 0; attempt <= r.MaxRetries; attempt++ {
		if attempt > 0 {
			if !seq.Sleep(r.done) {
				return ErrReliableMountClosed
			}
		}
		m, err := r.current()
		if err != nil {
			if errors.Is(err, ErrReliableMountClosed) {
				return err
			}
			lastErr = err
			continue
		}
		err = op(m)
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		lastErr = err
		r.dropIf(m)
	}
	return fmt.Errorf("datachan: operation failed after %d attempts: %w", r.MaxRetries+1, lastErr)
}

// List returns the shared files sorted by name.
func (r *ReliableMount) List() ([]FileInfo, error) {
	var files []FileInfo
	err := r.do(func(m *Mount) error {
		var err error
		files, err = m.List()
		return err
	})
	return files, err
}

// Stat returns metadata for one file.
func (r *ReliableMount) Stat(name string) (FileInfo, error) {
	var fi FileInfo
	err := r.do(func(m *Mount) error {
		var err error
		fi, err = m.Stat(name)
		return err
	})
	return fi, err
}

// Checksum returns the export-side whole-file SHA-256 (hex) and size.
func (r *ReliableMount) Checksum(name string) (string, int64, error) {
	var sum string
	var size int64
	err := r.do(func(m *Mount) error {
		var err error
		sum, size, err = m.Checksum(name)
		return err
	})
	return sum, size, err
}

// ReadAt reads up to length bytes from offset (CRC-verified per
// chunk), retrying across transport failures.
func (r *ReliableMount) ReadAt(name string, offset int64, length int) ([]byte, bool, error) {
	var payload []byte
	var eof bool
	err := r.do(func(m *Mount) error {
		var err error
		payload, eof, err = m.ReadAt(name, offset, length)
		return err
	})
	return payload, eof, err
}

// ReadAll fetches a whole file through the pipelined windowed read. A
// transport failure mid-transfer redials and resumes from the last
// CRC-verified offset: bytes already received are never re-fetched, so
// at most the in-flight window is read twice per interruption.
func (r *ReliableMount) ReadAll(name string) ([]byte, error) {
	chunk := r.ChunkBytes
	if chunk <= 0 {
		chunk = readChunk
	}
	window := r.Readahead
	if window <= 0 {
		window = DefaultReadahead
	}
	seq := r.rng.StartWith(r.Backoff, r.MaxBackoff)
	var buf []byte
	var off int64
	failures := 0
	stalls := 0
	for {
		m, err := r.current()
		if err != nil {
			if errors.Is(err, ErrReliableMountClosed) {
				return nil, err
			}
			failures++
			if failures > r.MaxRetries {
				return nil, fmt.Errorf("datachan: read of %q failed after %d attempts: %w", name, failures, err)
			}
			if !seq.Sleep(r.done) {
				return nil, ErrReliableMountClosed
			}
			continue
		}
		// A zero-progress streak degrades the readahead window toward
		// stop-and-wait. Pipelining fires a whole window of chunk
		// requests back to back, and on a lossy link any one of them can
		// tear the connection down before the first response lands — so
		// a wide window can starve indefinitely, every interruption
		// arriving before a single chunk verifies. Halving the window
		// per stall (floor 1) guarantees that one surviving round trip
		// makes progress, which resets both the streak and the retry
		// budget; the next attempt after progress runs at full width.
		w := window >> stalls
		if w < 1 {
			w = 1
		}
		newBuf, newOff, err := m.readAllFrom(name, off, buf, chunk, w)
		progressed := newOff > off
		buf, off = newBuf, newOff
		if err == nil {
			return buf, nil
		}
		if !retryable(err) {
			return nil, err
		}
		r.dropIf(m)
		if progressed {
			// Progress resets the retry budget and backoff: a long
			// transfer over a flaky link should survive many separated
			// interruptions, just never spin on a link that is down
			// outright.
			failures = 0
			stalls = 0
			seq = r.rng.StartWith(r.Backoff, r.MaxBackoff)
		} else {
			stalls++
		}
		failures++
		if failures > r.MaxRetries {
			return nil, fmt.Errorf("datachan: read of %q failed after %d attempts: %w", name, failures, err)
		}
		if off > 0 {
			// The next attempt continues at off instead of byte 0.
			r.resumes.Add(1)
			r.count("datachan.resumes", 1)
			r.bytesResumed.Add(off)
			r.count("datachan.bytes_resumed", off)
			r.note("datachan.resume", "file", name, "offset", strconv.FormatInt(off, 10))
		}
		if !seq.Sleep(r.done) {
			return nil, ErrReliableMountClosed
		}
	}
}

// ReadAllVerified is ReadAll plus end-to-end SHA-256 verification
// against the export; digest mismatches are counted and re-read.
func (r *ReliableMount) ReadAllVerified(name string) ([]byte, error) {
	return readAllVerified(name, r.ReadAll, r.Checksum, func() {
		r.checksumFailures.Add(1)
		r.count("datachan.checksum_failures", 1)
		r.note("datachan.checksum_failure", "file", name)
	})
}

// WaitFor polls until a file matching substr is stable, then returns
// its verified contents, riding out transport failures throughout.
func (r *ReliableMount) WaitFor(substr string, poll, timeout time.Duration) ([]byte, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return r.WaitForContext(ctx, substr, poll)
}

// WaitForContext is WaitFor bounded by a context.
func (r *ReliableMount) WaitForContext(ctx context.Context, substr string, poll time.Duration) ([]byte, string, error) {
	return waitFor(ctx, r, substr, poll)
}

// Watch starts a self-healing watcher: polls ride through redials, the
// seen-set survives reconnects so a re-list after an outage reports
// each file exactly once, and the watcher only stops on Stop or Close
// (it never gives up on a link that might heal).
func (r *ReliableMount) Watch(interval time.Duration) *Watcher {
	return startWatcher(r.List, r.Broken, interval, 0)
}
