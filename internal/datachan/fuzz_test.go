package datachan

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary wire bytes to the frame decoder: it
// must reject oversized length headers, truncated bodies and invalid
// JSON without panicking or over-allocating.
func FuzzReadFrame(f *testing.F) {
	frame := func(body []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		return append(hdr[:], body...)
	}
	f.Add(frame([]byte(`{"op":1}`)))
	f.Add(frame([]byte(`{"op":3,"name":"cv.mpt","offset":0,"length":1024}`)))
	f.Add(frame([]byte(`{`)))             // truncated JSON
	f.Add(frame(nil))                     // empty body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length header
	f.Add([]byte{0, 0})                   // truncated header
	f.Add(frame([]byte(`{"op":1,"name":"` + string(bytes.Repeat([]byte("a"), 100)) + `"}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Claimed frame lengths above the cap must be refused before
		// any allocation of that size.
		if len(data) >= 4 {
			if n := binary.BigEndian.Uint32(data[:4]); n > maxFrameBytes {
				var req request
				if err := readFrame(bytes.NewReader(data), &req); err == nil {
					t.Fatalf("oversized frame of %d bytes accepted", n)
				}
				return
			}
		}
		var req request
		if err := readFrame(bytes.NewReader(data), &req); err != nil {
			return
		}
		// A frame that decoded must re-encode and decode identically.
		var buf bytes.Buffer
		if err := writeFrame(&buf, &req); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		var again request
		if err := readFrame(&buf, &again); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if req != again {
			t.Fatalf("frame round trip diverged: %+v vs %+v", req, again)
		}
	})
}

// FuzzFrameRoundTrip drives writeFrame/readFrame with arbitrary
// request field values: whatever goes in must come out.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), "", int64(0), 0)
	f.Add(byte(3), "CV_ch1_run001.mpt", int64(1<<40), 256*1024)
	f.Add(byte(255), "päth/with/ünïcode\x00", int64(-1), -5)

	f.Fuzz(func(t *testing.T, op byte, name string, offset int64, length int) {
		in := request{Op: op, Name: name, Offset: offset, Length: length}
		var buf bytes.Buffer
		if err := writeFrame(&buf, &in); err != nil {
			t.Skip() // e.g. unencodable string; not a framing concern
		}
		var out request
		if err := readFrame(&buf, &out); err != nil {
			t.Fatalf("decode of freshly encoded frame failed: %v", err)
		}
		// JSON escapes invalid UTF-8; compare through the same lens.
		if in.Op != out.Op || in.Offset != out.Offset || in.Length != out.Length {
			t.Fatalf("round trip diverged: %+v vs %+v", in, out)
		}
	})
}
