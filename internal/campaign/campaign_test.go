package campaign

import (
	"math"
	"testing"

	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/ml"
	"ice/internal/netsim"
	"ice/internal/telemetry"
	"ice/internal/units"
)

// deployExecutor stands up a full ICE with lab stations and returns a
// ready executor.
func deployExecutor(t *testing.T) *Executor {
	t.Helper()
	d, err := core.Deploy(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.AttachLab(7, 0); err != nil {
		t.Fatal(err)
	}
	session, mount, err := d.ConnectLabFrom(netsim.HostDGX)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { session.Close(); mount.Close() })
	return &Executor{Session: session, Mount: mount, CVPoints: 400}
}

func TestScanRateLadderCampaign(t *testing.T) {
	e := deployExecutor(t)
	history, err := e.Run(ScanRateLadder{
		RatesMVs:        []float64{50, 200},
		ConcentrationMM: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("rounds = %d", len(history))
	}
	// ip ∝ √v: quadrupling the rate doubles the peak.
	ratio := history[1].Peak.Amperes() / history[0].Peak.Amperes()
	if math.Abs(ratio-2) > 0.15 {
		t.Errorf("peak ratio = %v, want ≈ 2", ratio)
	}
	// Only the first round synthesised.
	if history[0].AchievedMM == 0 || history[1].AchievedMM != 0 {
		t.Errorf("synthesis pattern wrong: %v, %v", history[0].AchievedMM, history[1].AchievedMM)
	}
	if history[0].Summary == nil || !history[0].Summary.Reversible {
		t.Error("round 1 analysis missing or irreversible")
	}
}

func TestTargetPeakSearchConverges(t *testing.T) {
	e := deployExecutor(t)
	// 2 mM gives ≈ 40 µA, so 30 µA lives near 1.5 mM.
	planner := &TargetPeakSearch{
		TargetPeakUA:      30,
		MinMM:             0.25,
		MaxMM:             4,
		ToleranceFraction: 0.06,
	}
	history, err := e.Run(planner)
	if err != nil {
		t.Fatalf("search failed after %d rounds: %v", len(history), err)
	}
	if len(history) == 0 {
		t.Fatal("no rounds executed")
	}
	last := history[len(history)-1]
	rel := math.Abs(last.Peak.Microamperes()-30) / 30
	if rel > 0.06 {
		t.Errorf("final peak %v µA, want within 6%% of 30", last.Peak.Microamperes())
	}
	// Bisection should need only a handful of rounds.
	if len(history) > 8 {
		t.Errorf("took %d rounds; bisection should converge faster", len(history))
	}
	t.Logf("converged in %d rounds at %.3g mM → %v",
		len(history), last.Params.ConcentrationMM, last.Peak)
}

func TestPlannersValidate(t *testing.T) {
	if _, _, err := (ScanRateLadder{}).Next(nil); err == nil {
		t.Error("empty ladder accepted")
	}
	bad := &TargetPeakSearch{TargetPeakUA: 0, MinMM: 1, MaxMM: 2}
	if _, _, err := bad.Next(nil); err == nil {
		t.Error("zero target accepted")
	}
	bad = &TargetPeakSearch{TargetPeakUA: 10, MinMM: 2, MaxMM: 1}
	if _, _, err := bad.Next(nil); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestExecutorValidation(t *testing.T) {
	e := &Executor{}
	if _, err := e.Run(ScanRateLadder{RatesMVs: []float64{50}}); err == nil {
		t.Error("empty executor accepted")
	}
}

func TestLadderDoneImmediatelyOnFullHistory(t *testing.T) {
	l := ScanRateLadder{RatesMVs: []float64{50}}
	_, done, err := l.Next(make([]Observation, 1))
	if err != nil || !done {
		t.Errorf("Next on full history = done=%v err=%v", done, err)
	}
}

func TestSearchUnreachableTargetErrors(t *testing.T) {
	e := deployExecutor(t)
	// 500 µA is beyond the 0.25–4 mM window (max ≈ 80 µA): the search
	// interval collapses and errors rather than looping forever.
	planner := &TargetPeakSearch{TargetPeakUA: 500, MinMM: 0.25, MaxMM: 4}
	if _, err := e.Run(planner); err == nil {
		t.Error("unreachable target converged")
	}
}

// Ensure the campaign respects the instrument's measurement chain —
// the observed peaks really came through the data channel.
func TestObservationsCarryFullAnalysis(t *testing.T) {
	e := deployExecutor(t)
	history, err := e.Run(ScanRateLadder{RatesMVs: []float64{50}, ConcentrationMM: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := history[0].Summary
	if s == nil {
		t.Fatal("no summary")
	}
	if math.Abs(s.HalfWave.Volts()-0.40) > 0.02 {
		t.Errorf("E½ = %v", s.HalfWave)
	}
	want := units.Microamperes(40)
	if math.Abs(s.AnodicPeak.Microamperes()-want.Microamperes()) > 6 {
		t.Errorf("peak = %v, want ≈ 40 µA at 2 mM", s.AnodicPeak)
	}
	_ = datachan.Created // the mount path is exercised above
}

// A neighbour tenant crashed mid-pipeline and left the shared SP200
// connected but not firmware-loaded: the campaign must reset the
// stranded instrument, count the anomaly, and still complete.
func TestStrandedInstrumentResetCounted(t *testing.T) {
	e := deployExecutor(t)
	e.Metrics = telemetry.NewCollector()
	// Strand the device: bring it partway up outside the campaign.
	if _, err := e.Session.CallInitializeSP200API(core.PaperSystemParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Session.CallConnectSP200(); err != nil {
		t.Fatal(err)
	}
	history, err := e.Run(ScanRateLadder{RatesMVs: []float64{50}, ConcentrationMM: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 {
		t.Fatalf("rounds = %d, want 1", len(history))
	}
	if got := e.Metrics.CounterValue("campaign.stranded_resets"); got != 1 {
		t.Errorf("campaign.stranded_resets = %d, want 1", got)
	}
}

// A healthy bring-up must not inflate the anomaly counter.
func TestHealthyBringUpCountsNoStrandedResets(t *testing.T) {
	e := deployExecutor(t)
	e.Metrics = telemetry.NewCollector()
	if _, err := e.Run(ScanRateLadder{RatesMVs: []float64{50}, ConcentrationMM: 2}); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics.CounterValue("campaign.stranded_resets"); got != 0 {
		t.Errorf("campaign.stranded_resets = %d, want 0", got)
	}
}

// TestCampaignStreamingRounds runs a two-round ladder with streaming
// retrieval and an online classifier: every round must stream, agree
// with the classic analysis, and carry a normality verdict.
func TestCampaignStreamingRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a classifier")
	}
	clf, acc, err := ml.TrainNormalityClassifier(ml.GenerateConfig{PerClass: 8, Samples: 250, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Fatalf("classifier accuracy %v too low to test with", acc)
	}

	e := deployExecutor(t)
	e.StreamAnalysis = true
	e.Classifier = clf
	history, err := e.Run(ScanRateLadder{
		RatesMVs:        []float64{50, 200},
		ConcentrationMM: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("rounds = %d", len(history))
	}
	for _, obs := range history {
		if !obs.Streamed {
			t.Errorf("round %d did not stream", obs.Round)
		}
		if !obs.Classified || obs.Class != ml.ClassNormal {
			t.Errorf("round %d verdict = %q (classified=%v), want normal", obs.Round, obs.ClassName, obs.Classified)
		}
		if obs.Summary == nil || !obs.Summary.Reversible {
			t.Errorf("round %d analysis missing or irreversible", obs.Round)
		}
	}
	ratio := history[1].Peak.Amperes() / history[0].Peak.Amperes()
	if math.Abs(ratio-2) > 0.15 {
		t.Errorf("peak ratio = %v, want ≈ 2 (streamed bytes must match classic)", ratio)
	}
}
