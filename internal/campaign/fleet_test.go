package campaign

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/netsim"
	"ice/internal/telemetry"
)

// The fleet tests drive FixedRounds planners: every round carries its
// own concentration, so sibling campaigns interleaving on the shared
// cell cannot contaminate each other's chemistry.

// deployLab stands up one ICE with lab stations attached.
func deployLab(t *testing.T) *core.Deployment {
	t.Helper()
	d, err := core.Deploy(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.AttachLab(7, 0); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFleetRunsCampaignsConcurrently(t *testing.T) {
	d := deployLab(t)
	planners := []Planner{
		FixedRounds{Label: "low", Rounds: []Params{
			{ConcentrationMM: 1, ScanRateMVs: 100},
			{ConcentrationMM: 1, ScanRateMVs: 100},
		}},
		FixedRounds{Label: "mid", Rounds: []Params{
			{ConcentrationMM: 2, ScanRateMVs: 100},
			{ConcentrationMM: 2, ScanRateMVs: 100},
		}},
		FixedRounds{Label: "high", Rounds: []Params{
			{ConcentrationMM: 4, ScanRateMVs: 100},
			{ConcentrationMM: 4, ScanRateMVs: 100},
		}},
	}
	fleet, cleanup, err := ConnectFleet(d, netsim.HostDGX, planners)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	for _, cell := range fleet.Cells {
		cell.Executor.CVPoints = 300
	}

	results, err := fleet.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	wantNames := []string{"cell-01", "cell-02", "cell-03"}
	totalRounds := 0
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("%s failed: %v", res.Name, res.Err)
		}
		if res.Name != wantNames[i] {
			t.Errorf("result %d name = %q, want %q", i, res.Name, wantNames[i])
		}
		if len(res.History) != 2 {
			t.Fatalf("%s ran %d rounds, want 2", res.Name, len(res.History))
		}
		for _, obs := range res.History {
			if obs.Peak.Amperes() <= 0 {
				t.Errorf("%s round %d: non-positive peak %v", res.Name, obs.Round, obs.Peak)
			}
			if obs.Summary == nil {
				t.Errorf("%s round %d: no analysis", res.Name, obs.Round)
			}
		}
		totalRounds += len(res.History)
	}
	if got := fleet.History.Len(); got != totalRounds {
		t.Errorf("shared history holds %d observations, want %d", got, totalRounds)
	}

	// Randles–Ševčík: peak ∝ concentration at fixed scan rate. The
	// interleaved campaigns must each have measured their *own* cell
	// contents — cross-contamination would collapse these ratios.
	low := results[0].History[0].Peak.Amperes()
	mid := results[1].History[0].Peak.Amperes()
	high := results[2].History[0].Peak.Amperes()
	if ratio := mid / low; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("2 mM / 1 mM peak ratio = %.2f, want ≈ 2", ratio)
	}
	if ratio := high / mid; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("4 mM / 2 mM peak ratio = %.2f, want ≈ 2", ratio)
	}
}

func TestFleetWorkerCapAndValidation(t *testing.T) {
	f := &Fleet{}
	if _, err := f.Run(context.Background()); err == nil {
		t.Error("empty fleet accepted")
	}
	f = &Fleet{Cells: []FleetCell{{}}}
	if _, err := f.Run(context.Background()); err == nil {
		t.Error("cell without executor/planner accepted")
	}

	// Workers=1 degrades gracefully to sequential execution.
	d := deployLab(t)
	planners := []Planner{
		FixedRounds{Label: "a", Rounds: []Params{{ConcentrationMM: 2, ScanRateMVs: 100}}},
		FixedRounds{Label: "b", Rounds: []Params{{ConcentrationMM: 2, ScanRateMVs: 200}}},
	}
	fleet, cleanup, err := ConnectFleet(d, netsim.HostDGX, planners)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	fleet.Workers = 1
	for _, cell := range fleet.Cells {
		cell.Executor.CVPoints = 300
	}
	results, err := fleet.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Name, res.Err)
		}
		if len(res.History) != 1 {
			t.Errorf("%s ran %d rounds, want 1", res.Name, len(res.History))
		}
	}
}

// cancellingPlan cancels the fleet's context once it has one
// observation, then keeps proposing rounds forever.
type cancellingPlan struct {
	cancel context.CancelFunc
}

func (p cancellingPlan) Name() string { return "cancelling" }

func (p cancellingPlan) Next(history []Observation) (Params, bool, error) {
	if len(history) >= 1 {
		p.cancel()
	}
	return Params{ConcentrationMM: 2, ScanRateMVs: 100}, false, nil
}

func TestFleetCancellationReturnsPartialHistories(t *testing.T) {
	d := deployLab(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	planners := []Planner{cancellingPlan{cancel: cancel}, cancellingPlan{cancel: cancel}}
	fleet, cleanup, err := ConnectFleet(d, netsim.HostDGX, planners)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	for _, cell := range fleet.Cells {
		cell.Executor.CVPoints = 300
	}
	results, err := fleet.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sawCancel := false
	for _, res := range results {
		if res.Err == nil {
			t.Errorf("%s completed despite cancellation", res.Name)
			continue
		}
		if errors.Is(res.Err, context.Canceled) {
			sawCancel = true
		}
		if len(res.History) > 2 {
			t.Errorf("%s kept running after cancel: %d rounds", res.Name, len(res.History))
		}
	}
	if !sawCancel {
		t.Error("no cell reported context.Canceled")
	}
}

// fleetChaosSeed is a fixed fault-generator seed under which the 20%
// data-port loss schedule provably interrupts fleet transfers (the
// loss-counter assertion below fails if a future change shifts the
// schedule away from faults entirely).
const fleetChaosSeed = 11

func TestFleetChaosParallelCampaignsUnderLoss(t *testing.T) {
	// Two campaigns run concurrently while 20% of data-port writes on
	// the site network are lost in transit, each loss tearing the
	// connection down mid-stream. The control channel stays clean: the
	// experiment isolates the measurement-retrieval path. Every cell
	// must still finish with exactly-once, digest-verified results.
	d := deployLab(t)
	metrics := telemetry.NewCollector()
	d.Network.SetSeed(fleetChaosSeed)
	d.Network.SetMetrics(metrics)
	if err := d.Network.SetHubFaults(netsim.HubSite, netsim.FaultSpec{
		Loss:  0.20,
		Ports: []int{netsim.PaperPorts.Data},
	}); err != nil {
		t.Fatal(err)
	}

	fleet := &Fleet{History: &SharedHistory{}}
	var mounts []*datachan.ReliableMount
	planners := []Planner{
		FixedRounds{Label: "low", Rounds: []Params{
			{ConcentrationMM: 1, ScanRateMVs: 100},
			{ConcentrationMM: 1, ScanRateMVs: 100},
		}},
		FixedRounds{Label: "high", Rounds: []Params{
			{ConcentrationMM: 4, ScanRateMVs: 100},
			{ConcentrationMM: 4, ScanRateMVs: 100},
		}},
	}
	for i, p := range planners {
		session, plain, err := d.ConnectLabFrom(netsim.HostDGX)
		if err != nil {
			t.Fatalf("cell %d: %v", i+1, err)
		}
		plain.Close() // the cell reads through a reliable mount instead
		t.Cleanup(func() { session.Close() })
		rm := datachan.NewReliableMount(func() (net.Conn, error) {
			return d.Network.Dial(netsim.HostDGX, d.DataAddr)
		})
		rm.MaxRetries = 50
		rm.Backoff = time.Millisecond
		rm.MaxBackoff = 10 * time.Millisecond
		// Small chunks checkpoint verified progress often, so the lossy
		// link interrupts transfers mid-file rather than between files.
		rm.ChunkBytes = 2048
		rm.SetMetrics(metrics)
		t.Cleanup(func() { rm.Close() })
		mounts = append(mounts, rm)
		fleet.Cells = append(fleet.Cells, FleetCell{
			Executor: &Executor{Session: session, Mount: rm, CVPoints: 300},
			Planner:  p,
		})
	}

	results, err := fleet.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s failed under chaos: %v", res.Name, res.Err)
		}
		if len(res.History) != 2 {
			t.Fatalf("%s ran %d rounds under chaos, want 2", res.Name, len(res.History))
		}
		for _, obs := range res.History {
			if obs.Peak.Amperes() <= 0 || obs.Summary == nil {
				t.Errorf("%s round %d incomplete under chaos", res.Name, obs.Round)
			}
		}
	}
	// Exactly-once chemistry: the 4 mM campaign's peak is still ≈ 4×
	// the 1 mM campaign's — retried transfers did not duplicate or
	// cross-wire any cell's measurements.
	low := results[0].History[0].Peak.Amperes()
	high := results[1].History[0].Peak.Amperes()
	if ratio := high / low; ratio < 3.2 || ratio > 4.8 {
		t.Errorf("4 mM / 1 mM peak ratio = %.2f under chaos, want ≈ 4", ratio)
	}

	// The schedule must actually have engaged, and every completed
	// transfer was digest-verified with zero mismatches.
	if v := metrics.CounterValue("netsim.faults.loss"); v == 0 {
		t.Error("no losses injected — chaos schedule did not engage")
	}
	healed := int64(0)
	for _, rm := range mounts {
		stats := rm.Stats()
		healed += stats.Redials + stats.Resumes
		if stats.ChecksumFailures != 0 {
			t.Errorf("mount saw %d checksum failures under pure loss", stats.ChecksumFailures)
		}
	}
	if healed == 0 {
		t.Error("fleet survived without any redials or resumes — faults never hit the data path")
	}
}
