package campaign

import (
	"fmt"
	"math"
)

// ScanRateLadder runs a fixed sweep of scan rates at a fixed
// concentration — the workload behind Randles–Ševčík validation.
type ScanRateLadder struct {
	// RatesMVs are the rates to visit in order.
	RatesMVs []float64
	// ConcentrationMM synthesised once, in the first round.
	ConcentrationMM float64
}

// Name implements Planner.
func (ScanRateLadder) Name() string { return "scan-rate-ladder" }

// Next implements Planner.
func (l ScanRateLadder) Next(history []Observation) (Params, bool, error) {
	if len(l.RatesMVs) == 0 {
		return Params{}, false, fmt.Errorf("campaign: ladder has no rates")
	}
	i := len(history)
	if i >= len(l.RatesMVs) {
		return Params{}, true, nil
	}
	p := Params{ScanRateMVs: l.RatesMVs[i]}
	if i == 0 {
		p.ConcentrationMM = l.ConcentrationMM
	}
	return p, false, nil
}

// FixedRounds replays a predeclared list of rounds and converges when
// the list is exhausted — the declarative job shape tenants submit
// through the scheduling gateway, and the deterministic workload the
// fleet tests drive.
type FixedRounds struct {
	// Label names the plan in logs (default "fixed-rounds").
	Label string
	// Rounds are executed in order.
	Rounds []Params
}

// Name implements Planner.
func (p FixedRounds) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "fixed-rounds"
}

// Next implements Planner.
func (p FixedRounds) Next(history []Observation) (Params, bool, error) {
	if len(history) >= len(p.Rounds) {
		return Params{}, true, nil
	}
	return p.Rounds[len(history)], false, nil
}

// TargetPeakSearch adapts the synthesised concentration by bisection
// until the measured anodic peak hits a target current — a minimal
// real-time steering loop: each round's measurement decides the next
// round's synthesis.
type TargetPeakSearch struct {
	// TargetPeakUA is the desired anodic peak in µA.
	TargetPeakUA float64
	// MinMM and MaxMM bound the concentration search.
	MinMM, MaxMM float64
	// ToleranceFraction ends the search when |peak−target|/target is
	// below it (default 0.05).
	ToleranceFraction float64
	// ScanRateMVs for every round (default 50).
	ScanRateMVs float64

	lo, hi float64
}

// Name implements Planner.
func (*TargetPeakSearch) Name() string { return "target-peak-bisection" }

// Next implements Planner.
func (s *TargetPeakSearch) Next(history []Observation) (Params, bool, error) {
	if s.TargetPeakUA <= 0 || s.MinMM <= 0 || s.MaxMM <= s.MinMM {
		return Params{}, false, fmt.Errorf("campaign: bad search bounds target=%g [%g,%g]",
			s.TargetPeakUA, s.MinMM, s.MaxMM)
	}
	tol := s.ToleranceFraction
	if tol <= 0 {
		tol = 0.05
	}
	rate := s.ScanRateMVs
	if rate <= 0 {
		rate = 50
	}
	if len(history) == 0 {
		s.lo, s.hi = s.MinMM, s.MaxMM
		return Params{ConcentrationMM: (s.lo + s.hi) / 2, ScanRateMVs: rate}, false, nil
	}
	last := history[len(history)-1]
	peakUA := last.Peak.Microamperes()
	if math.Abs(peakUA-s.TargetPeakUA)/s.TargetPeakUA <= tol {
		return Params{}, true, nil
	}
	// Peak current is monotone in concentration: bisect.
	mid := last.Params.ConcentrationMM
	if peakUA < s.TargetPeakUA {
		s.lo = mid
	} else {
		s.hi = mid
	}
	if s.hi-s.lo < 1e-4 {
		return Params{}, false, fmt.Errorf("campaign: search interval collapsed without hitting target %g µA", s.TargetPeakUA)
	}
	return Params{ConcentrationMM: (s.lo + s.hi) / 2, ScanRateMVs: rate}, false, nil
}
