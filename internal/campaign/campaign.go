// Package campaign provides closed-loop, multi-round experiment
// orchestration over the ICE — the "sophisticated AI-driven and
// real-time electrochemistry workflows" the paper lists as future
// work. A Planner inspects the history of observations and proposes
// the next round's parameters; the Executor realises each round
// physically (synthesis, robot transfer, remote CV, data-channel
// retrieval, analysis) and feeds the result back, until the planner
// declares convergence.
package campaign

import (
	"bytes"
	"fmt"
	"time"

	"ice/internal/analysis"
	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

// Params are the tunable knobs of one round.
type Params struct {
	// ConcentrationMM is the analyte concentration to synthesise; 0
	// reuses the current cell contents.
	ConcentrationMM float64
	// ScanRateMVs is the CV scan rate.
	ScanRateMVs float64
}

// Observation is one completed round.
type Observation struct {
	// Round index, starting at 1.
	Round int
	// Params the round ran with.
	Params Params
	// AchievedMM is the synthesised concentration actually delivered.
	AchievedMM float64
	// Peak is the measured anodic peak current.
	Peak units.Current
	// Summary is the full remote analysis.
	Summary *analysis.CVSummary
}

// Planner proposes round parameters from history.
type Planner interface {
	// Name labels the strategy.
	Name() string
	// Next returns the next round's parameters, or done=true when the
	// campaign has converged.
	Next(history []Observation) (p Params, done bool, err error)
}

// Executor realises rounds on a deployed ICE. It needs only the
// remote handles — every action, including draining the cell between
// rounds, goes through the control channel, so an executor can run
// from any machine that can reach the control agent.
type Executor struct {
	// Session and Mount are open cross-facility handles. Mount may be a
	// plain or reliable mount (any datachan.Share).
	Session *core.LabSession
	Mount   datachan.Share
	// MaxRounds bounds runaway planners (default 20).
	MaxRounds int
	// CVPoints per acquisition (default 600).
	CVPoints int
	// VolumeML synthesised per round (default 8).
	VolumeML float64

	potentiostatUp bool
}

// Run executes the campaign and returns the observation history. The
// potentiostat is brought up lazily on the first round and left
// connected between rounds.
func (e *Executor) Run(p Planner) ([]Observation, error) {
	if e.Session == nil || e.Mount == nil {
		return nil, fmt.Errorf("campaign: executor needs session and mount")
	}
	maxRounds := e.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 20
	}
	points := e.CVPoints
	if points <= 0 {
		points = 600
	}
	volume := e.VolumeML
	if volume <= 0 {
		volume = 8
	}

	var history []Observation
	for round := 1; round <= maxRounds; round++ {
		params, done, err := p.Next(history)
		if err != nil {
			return history, fmt.Errorf("campaign: planner %s: %w", p.Name(), err)
		}
		if done {
			return history, nil
		}
		obs, err := e.runRound(round, params, points, volume)
		if err != nil {
			return history, fmt.Errorf("campaign: round %d: %w", round, err)
		}
		history = append(history, *obs)
	}
	return history, fmt.Errorf("campaign: planner %s did not converge in %d rounds", p.Name(), maxRounds)
}

func (e *Executor) runRound(round int, params Params, points int, volumeML float64) (*Observation, error) {
	obs := &Observation{Round: round, Params: params}

	if params.ConcentrationMM > 0 {
		if _, err := e.Session.DrainCell(); err != nil {
			return nil, fmt.Errorf("drain: %w", err)
		}
		batch, err := e.Session.SynthesizeFerrocene(params.ConcentrationMM, volumeML)
		if err != nil {
			return nil, fmt.Errorf("synthesis: %w", err)
		}
		if _, err := e.Session.TransferBatchToCell(batch.ID); err != nil {
			return nil, fmt.Errorf("transfer: %w", err)
		}
		obs.AchievedMM = batch.AchievedMM
	}

	if !e.potentiostatUp {
		if _, err := e.Session.CallInitializeSP200API(core.PaperSystemParams()); err != nil {
			return nil, err
		}
		if _, err := e.Session.CallConnectSP200(); err != nil {
			return nil, err
		}
		if _, err := e.Session.CallLoadFirmwareSP200(); err != nil {
			return nil, err
		}
		e.potentiostatUp = true
	}

	cv := core.PaperCVParams()
	if params.ScanRateMVs > 0 {
		cv.RateMVs = params.ScanRateMVs
	}
	cv.Points = points
	if _, err := e.Session.CallInitializeCVTechSP200(cv); err != nil {
		return nil, err
	}
	if _, err := e.Session.CallLoadTechniqueSP200(); err != nil {
		return nil, err
	}
	if _, err := e.Session.CallStartChannelSP200(); err != nil {
		return nil, err
	}
	name, err := e.Session.CallGetTechPathRslt()
	if err != nil {
		return nil, err
	}
	data, _, err := e.Mount.WaitFor(name, 10*time.Millisecond, 2*time.Minute)
	if err != nil {
		return nil, err
	}
	mf, err := potentiostat.ParseMPT(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	pot, cur := analysis.FromRecords(mf.Records)
	summary, err := analysis.AnalyzeCV(pot, cur, units.Celsius(25))
	if err != nil {
		return nil, err
	}
	obs.Peak = summary.AnodicPeak
	obs.Summary = summary
	return obs, nil
}
