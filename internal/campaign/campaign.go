// Package campaign provides closed-loop, multi-round experiment
// orchestration over the ICE — the "sophisticated AI-driven and
// real-time electrochemistry workflows" the paper lists as future
// work. A Planner inspects the history of observations and proposes
// the next round's parameters; the Executor realises each round
// physically (synthesis, robot transfer, remote CV, data-channel
// retrieval, analysis) and feeds the result back, until the planner
// declares convergence.
package campaign

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ice/internal/analysis"
	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/ml"
	"ice/internal/potentiostat"
	"ice/internal/telemetry"
	"ice/internal/trace"
	"ice/internal/units"
)

// Params are the tunable knobs of one round.
type Params struct {
	// ConcentrationMM is the analyte concentration to synthesise; 0
	// reuses the current cell contents.
	ConcentrationMM float64
	// ScanRateMVs is the CV scan rate.
	ScanRateMVs float64
}

// Observation is one completed round.
type Observation struct {
	// Round index, starting at 1.
	Round int
	// Params the round ran with.
	Params Params
	// AchievedMM is the synthesised concentration actually delivered.
	AchievedMM float64
	// Peak is the measured anodic peak current.
	Peak units.Current
	// Summary is the full remote analysis.
	Summary *analysis.CVSummary
	// Streamed reports that this round's bytes arrived by tailing the
	// measurement file during acquisition instead of a post-hoc
	// retrieval (see Executor.StreamAnalysis).
	Streamed bool
	// StreamEvals counts the provisional online verdicts produced while
	// the instrument was still acquiring (0 without a Classifier).
	StreamEvals int
	// Classified, Class and ClassName carry the normality verdict when
	// the executor has a Classifier.
	Classified bool
	Class      int
	ClassName  string
}

// Planner proposes round parameters from history.
type Planner interface {
	// Name labels the strategy.
	Name() string
	// Next returns the next round's parameters, or done=true when the
	// campaign has converged.
	Next(history []Observation) (p Params, done bool, err error)
}

// Executor realises rounds on a deployed ICE. It needs only the
// remote handles — every action, including draining the cell between
// rounds, goes through the control channel, so an executor can run
// from any machine that can reach the control agent.
type Executor struct {
	// Session and Mount are open cross-facility handles. Mount may be a
	// plain or reliable mount (any datachan.Share).
	Session *core.LabSession
	Mount   datachan.Share
	// MaxRounds bounds runaway planners (default 20).
	MaxRounds int
	// CVPoints per acquisition (default 600).
	CVPoints int
	// VolumeML synthesised per round (default 8).
	VolumeML float64
	// InstrumentGate, when set, serialises the physical phase of a
	// round (cell prep, instrument bring-up, acquisition) against other
	// executors driving the same lab. The gate is released as soon as
	// the measurement file is complete on the agent's disk, so one
	// campaign's WAN retrieval and analysis overlap the next campaign's
	// instrument time — the concurrency a fleet exploits.
	InstrumentGate sync.Locker
	// PlannerLock, when set, guards planner calls; required when one
	// stateful planner instance steers several concurrent campaigns.
	PlannerLock sync.Locker
	// Observe, when set, is called after every completed round (fleets
	// use it to maintain a shared cross-cell history).
	Observe func(Observation)
	// Label names this executor in trace phase spans (a fleet sets the
	// cell name); the critical-path analyzer uses it to attribute one
	// cell's data phase overlapping another's instrument phase.
	Label string
	// Metrics, when set, counts operational anomalies — currently
	// campaign.stranded_resets, incremented when bringUp finds the
	// shared potentiostat stranded mid-pipeline by another tenant and
	// has to force it back to power-on state.
	Metrics *telemetry.Collector
	// StreamAnalysis tails each round's measurement file over the data
	// channel while the SP200 is still acquiring, so the round's data
	// phase overlaps its own instrument phase (not just the next
	// round's, which the InstrumentGate already arranges). Any stream
	// failure silently falls back to the classic verified retrieval.
	StreamAnalysis bool
	// Classifier, when set with StreamAnalysis, runs the online
	// normality ensemble over the streamed records and records the
	// verdict in each Observation.
	Classifier *ml.Ensemble
}

// Run executes the campaign and returns the observation history. The
// potentiostat is brought up lazily on the first round and left
// connected between rounds.
func (e *Executor) Run(p Planner) ([]Observation, error) {
	return e.RunContext(context.Background(), p)
}

// RunContext is Run bounded by a context: cancellation stops the
// campaign at the next phase boundary, returning the rounds completed
// so far alongside the context's error.
func (e *Executor) RunContext(ctx context.Context, p Planner) ([]Observation, error) {
	if e.Session == nil || e.Mount == nil {
		return nil, fmt.Errorf("campaign: executor needs session and mount")
	}
	maxRounds := e.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 20
	}
	points := e.CVPoints
	if points <= 0 {
		points = 600
	}
	volume := e.VolumeML
	if volume <= 0 {
		volume = 8
	}

	var history []Observation
	for round := 1; round <= maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return history, fmt.Errorf("campaign: %w", err)
		}
		params, done, err := e.plan(p, history)
		if err != nil {
			return history, fmt.Errorf("campaign: planner %s: %w", p.Name(), err)
		}
		if done {
			return history, nil
		}
		obs, err := e.runRound(ctx, round, params, points, volume)
		if err != nil {
			return history, fmt.Errorf("campaign: round %d: %w", round, err)
		}
		history = append(history, *obs)
		if e.Observe != nil {
			e.Observe(*obs)
		}
	}
	return history, fmt.Errorf("campaign: planner %s did not converge in %d rounds", p.Name(), maxRounds)
}

// plan consults the planner, under the planner lock when one is set.
func (e *Executor) plan(p Planner, history []Observation) (Params, bool, error) {
	if e.PlannerLock != nil {
		e.PlannerLock.Lock()
		defer e.PlannerLock.Unlock()
	}
	return p.Next(history)
}

// phase opens a classed sub-span stamped with this executor's holder
// label for the critical-path analyzer.
func (e *Executor) phase(ctx context.Context, name, class string) (context.Context, *trace.Span) {
	ctx, span := trace.Start(ctx, name, class)
	if e.Label != "" {
		span.SetAttr("holder", e.Label)
	}
	return ctx, span
}

func (e *Executor) runRound(ctx context.Context, round int, params Params, points int, volumeML float64) (o *Observation, err error) {
	ctx, span := trace.Start(ctx, fmt.Sprintf("campaign.round %d", round), "")
	if e.Label != "" {
		span.SetAttr("cell", e.Label)
	}
	defer func() { span.EndErr(err) }()
	obs := &Observation{Round: round, Params: params}
	name, rs, err := e.acquireRound(ctx, obs, params, points, volumeML)
	if rs != nil {
		defer rs.cancel()
	}
	if err != nil {
		return nil, err
	}
	if err := e.retrieveRound(ctx, obs, name, rs); err != nil {
		return nil, err
	}
	return obs, nil
}

// roundStream is one round's in-flight streaming retrieval, launched
// during acquisition and harvested by retrieveRound.
type roundStream struct {
	done        chan struct{}
	cancel      context.CancelFunc
	acquireDone atomic.Bool
	online      *ml.OnlineClassifier
	data        []byte
	res         datachan.StreamResult
	err         error
}

// startStream tails the named measurement file concurrently with the
// blocking GetTechPathRslt call. The retrieve span it opens runs in
// parallel with the campaign.acquire instrument span, so the
// critical-path analyzer attributes the round's data phase to its own
// instrument hold.
func (e *Executor) startStream(ctx context.Context, name string) *roundStream {
	sctx, cancel := context.WithCancel(ctx)
	rs := &roundStream{done: make(chan struct{}), cancel: cancel}
	parser := &potentiostat.StreamParser{}
	if e.Classifier != nil {
		rs.online = &ml.OnlineClassifier{Classifier: e.Classifier}
	}
	go func() {
		defer close(rs.done)
		var err error
		_, span := e.phase(ctx, "campaign.retrieve", trace.ClassData)
		span.SetAttr("file", name)
		span.SetAttr("mode", "stream")
		defer func() { span.EndErr(err) }()
		rs.data, rs.res, err = datachan.StreamFile(sctx, e.Mount, name, datachan.StreamOptions{
			OnChunk: func(chunk []byte) {
				if chunk == nil { // authoritative refetch: restart consumers
					parser.Reset()
					if rs.online != nil {
						rs.online.Reset()
					}
					return
				}
				recs, ferr := parser.Feed(chunk)
				if ferr != nil || rs.online == nil || len(recs) == 0 {
					return
				}
				pot, cur := analysis.FromRecords(recs)
				rs.online.Add(pot, cur)
			},
			Finished: rs.acquireDone.Load,
		})
		rs.err = err
	}()
	return rs
}

// acquireRound is the physical phase of a round — everything that
// needs exclusive use of the cell and instrument. It returns the name
// of the completed measurement file. GetTechPathRslt blocks until
// acquisition has finished streaming to the agent's disk, so when this
// returns the lab is free for the next campaign even though this
// round's data has not yet crossed the WAN.
func (e *Executor) acquireRound(ctx context.Context, obs *Observation, params Params, points int, volumeML float64) (name string, rs *roundStream, err error) {
	if e.InstrumentGate != nil {
		e.InstrumentGate.Lock()
		defer e.InstrumentGate.Unlock()
	}
	// The instrument-hold span starts only after the gate is won:
	// waiting for another cell's acquisition is queueing, not
	// instrument time, and counting it would fake overlap.
	acqCtx, span := e.phase(ctx, "campaign.acquire", trace.ClassInstrument)
	defer func() { span.EndErr(err) }()
	e.Session.BindTraceContext(acqCtx)
	defer e.Session.BindTraceContext(ctx)
	// The gate wait can be long in a busy fleet; honor cancellation
	// before touching the cell.
	if err := ctx.Err(); err != nil {
		return "", nil, err
	}

	if params.ConcentrationMM > 0 {
		if _, err := e.Session.DrainCell(); err != nil {
			return "", nil, fmt.Errorf("drain: %w", err)
		}
		batch, err := e.Session.SynthesizeFerrocene(params.ConcentrationMM, volumeML)
		if err != nil {
			return "", nil, fmt.Errorf("synthesis: %w", err)
		}
		if _, err := e.Session.TransferBatchToCell(batch.ID); err != nil {
			return "", nil, fmt.Errorf("transfer: %w", err)
		}
		obs.AchievedMM = batch.AchievedMM
	}

	// Readiness is re-checked under the gate every round, not cached:
	// between our rounds another tenant sharing the instrument may have
	// torn it down (a cv workflow's shutdown task) or crashed partway
	// through the pipeline.
	if err := e.bringUp(acqCtx); err != nil {
		return "", nil, err
	}

	cv := core.PaperCVParams()
	if params.ScanRateMVs > 0 {
		cv.RateMVs = params.ScanRateMVs
	}
	cv.Points = points
	if _, err := e.Session.CallInitializeCVTechSP200(cv); err != nil {
		return "", nil, err
	}
	if _, err := e.Session.CallLoadTechniqueSP200(); err != nil {
		return "", nil, err
	}
	if _, err := e.Session.CallStartChannelSP200(); err != nil {
		return "", nil, err
	}
	if e.StreamAnalysis {
		// A failed name lookup is not fatal: the round just retrieves
		// classically, exactly as if streaming were off.
		if fn, ferr := e.Session.CallGetTechFileName(); ferr == nil && fn != "" {
			rs = e.startStream(ctx, fn)
		}
	}
	name, err = e.Session.CallGetTechPathRslt()
	if rs != nil {
		rs.acquireDone.Store(true)
	}
	return name, rs, err
}

// bringUp walks the SP200 through Initialize→Connect→LoadFirmware. In
// a fleet, another campaign may already have brought the shared
// instrument up — Initialize from any state but off fails with
// ErrBadState — so a firmware-loaded instrument is taken as ready
// rather than an error. A device stranded elsewhere in the pipeline
// (a tenant crashed mid-acquisition) is reset before initialising.
func (e *Executor) bringUp(ctx context.Context) error {
	if status, err := e.Session.SP200Status(); err == nil {
		if strings.Contains(status, potentiostat.StateFirmwareLoaded.String()) {
			return nil
		}
		if !strings.Contains(status, "["+potentiostat.StateOff.String()+" ") {
			// A stranded reset is evidence of a crashed or cut-down
			// neighbour — worth a trace event and a counter, not silence:
			// a climbing campaign.stranded_resets is how an operator
			// notices tenants crashing mid-acquisition.
			trace.SpanFromContext(ctx).Event("campaign.stranded_reset",
				"status", status, "cell", e.Label)
			if e.Metrics != nil {
				e.Metrics.Counter("campaign.stranded_resets").Inc()
			}
			if err := e.Session.ResetSP200(); err != nil {
				return err
			}
		}
	}
	if _, err := e.Session.CallInitializeSP200API(core.PaperSystemParams()); err != nil {
		return err
	}
	if _, err := e.Session.CallConnectSP200(); err != nil {
		return err
	}
	if _, err := e.Session.CallLoadFirmwareSP200(); err != nil {
		return err
	}
	return nil
}

// retrieveRound is the data phase of a round: pull the measurement
// file across the WAN (digest-verified) and analyze it. It runs
// outside the instrument gate. When a stream was launched during
// acquisition its bytes are harvested instead — they carry the same
// SHA-256 guarantee — and any stream failure falls back to the
// classic retrieval below.
func (e *Executor) retrieveRound(ctx context.Context, obs *Observation, name string, rs *roundStream) error {
	if rs != nil {
		harvest := func() ([]byte, bool) {
			timer := time.NewTimer(2 * time.Minute)
			defer timer.Stop()
			select {
			case <-rs.done:
			case <-timer.C:
				rs.cancel()
				<-rs.done
			}
			if rs.err != nil {
				return nil, false
			}
			return rs.data, true
		}
		if data, ok := harvest(); ok {
			obs.Streamed = true
			if rs.online != nil {
				obs.StreamEvals = rs.online.Evals()
			}
			return e.analyzeRound(ctx, obs, data)
		}
		trace.SpanFromContext(ctx).Event("campaign.stream_fallback",
			"file", name, "err", fmt.Sprint(rs.err))
	}
	data, err := func() (data []byte, err error) {
		retrCtx, span := e.phase(ctx, "campaign.retrieve", trace.ClassData)
		span.SetAttr("file", name)
		defer func() { span.EndErr(err) }()
		if binder, ok := e.Mount.(interface{ SetSpan(*trace.Span) }); ok {
			binder.SetSpan(span)
			defer binder.SetSpan(nil)
		}
		waitCtx, cancel := context.WithTimeout(retrCtx, 2*time.Minute)
		defer cancel()
		data, _, err = e.Mount.WaitForContext(waitCtx, name, 10*time.Millisecond)
		return data, err
	}()
	if err != nil {
		return err
	}
	return e.analyzeRound(ctx, obs, data)
}

// analyzeRound parses and analyzes a round's verified bytes, filling
// in the observation's summary and, with a Classifier, its verdict.
// The offline parse is authoritative for both paths: the streamed and
// classic retrievals hand over byte-identical, digest-verified data.
func (e *Executor) analyzeRound(ctx context.Context, obs *Observation, data []byte) error {
	summary, err := func() (s *analysis.CVSummary, err error) {
		_, span := e.phase(ctx, "campaign.analyze", trace.ClassAnalysis)
		if obs.Streamed {
			span.SetAttr("mode", "stream-final")
		}
		defer func() { span.EndErr(err) }()
		mf, err := potentiostat.ParseMPT(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		pot, cur := analysis.FromRecords(mf.Records)
		if e.Classifier != nil {
			feats, ferr := ml.Features(pot, cur)
			if ferr == nil {
				if class, perr := e.Classifier.Predict(feats); perr == nil {
					obs.Classified = true
					obs.Class = class
					obs.ClassName = ml.ClassName(class)
				}
			}
		}
		return analysis.AnalyzeCV(pot, cur, units.Celsius(25))
	}()
	if err != nil {
		return err
	}
	obs.Peak = summary.AnodicPeak
	obs.Summary = summary
	return nil
}
