package campaign

import (
	"context"
	"fmt"
	"sync"

	"ice/internal/core"
)

// FleetCell is one member of a fleet: a named campaign with its own
// cross-facility handles and planner, sharing the deployment's lab
// with its siblings.
type FleetCell struct {
	// Name labels the cell in results and logs.
	Name string
	// Executor holds the cell's session and mount. Fleet.Run installs
	// the shared instrument gate, planner lock and history hook on it.
	Executor *Executor
	// Planner steers this cell. Distinct cells may share one stateful
	// planner instance; Fleet serialises its calls via PlannerLock.
	Planner Planner
}

// FleetResult is one cell's outcome: its per-cell observation history
// and terminal error, if any.
type FleetResult struct {
	Name    string
	History []Observation
	Err     error
}

// SharedHistory is a concurrency-safe observation log a fleet feeds
// through each executor's Observe hook, so a shared planner or a live
// monitor sees every cell's completed rounds as they land.
type SharedHistory struct {
	mu  sync.Mutex
	obs []Observation
}

// Append records one completed observation.
func (h *SharedHistory) Append(o Observation) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.obs = append(h.obs, o)
}

// Snapshot returns the observations in completion order.
func (h *SharedHistory) Snapshot() []Observation {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Observation, len(h.obs))
	copy(out, h.obs)
	return out
}

// Len reports how many observations have landed.
func (h *SharedHistory) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.obs)
}

// Fleet runs several campaigns concurrently over one deployment. The
// physical phase of each round (cell prep, acquisition) is serialised
// on a shared instrument gate, while WAN retrieval and analysis of one
// cell's round overlap the next cell's instrument time — so a fleet of
// N campaigns finishes well ahead of N sequential ones even with a
// single potentiostat.
type Fleet struct {
	// Cells are the member campaigns.
	Cells []FleetCell
	// Workers bounds how many campaigns run concurrently (default: all
	// cells). Excess cells queue for a free worker.
	Workers int
	// Gate serialises instrument access across cells. Left nil, Run
	// installs one shared mutex — the correct default when every cell
	// drives the same deployment. Executors that already carry a gate
	// keep it.
	Gate sync.Locker
	// History, when set, accumulates every cell's observations (in
	// completion order) alongside the per-cell histories.
	History *SharedHistory
}

// Run executes all cells and returns one result per cell, in Cells
// order. Cancelling ctx stops every campaign at its next phase
// boundary; the partial histories are still returned. Run itself only
// errors on misconfiguration — per-cell failures land in the results,
// so one cell's dead planner does not discard its siblings' science.
func (f *Fleet) Run(ctx context.Context) ([]FleetResult, error) {
	if len(f.Cells) == 0 {
		return nil, fmt.Errorf("campaign: fleet has no cells")
	}
	for i := range f.Cells {
		if f.Cells[i].Executor == nil || f.Cells[i].Planner == nil {
			return nil, fmt.Errorf("campaign: fleet cell %d needs executor and planner", i)
		}
		if f.Cells[i].Name == "" {
			f.Cells[i].Name = fmt.Sprintf("cell-%02d", i+1)
		}
	}
	gate := f.Gate
	if gate == nil {
		gate = &sync.Mutex{}
	}
	// One fleet-wide planner lock: a stateful planner instance shared
	// between cells is never consulted concurrently. Planner calls are
	// pure computation, so the serialisation costs nothing next to a
	// round's instrument and WAN time.
	plannerLock := &sync.Mutex{}
	for i := range f.Cells {
		ex := f.Cells[i].Executor
		if ex.InstrumentGate == nil {
			ex.InstrumentGate = gate
		}
		if ex.PlannerLock == nil {
			ex.PlannerLock = plannerLock
		}
		if f.History != nil && ex.Observe == nil {
			ex.Observe = f.History.Append
		}
		if ex.Label == "" {
			ex.Label = f.Cells[i].Name
		}
	}

	workers := f.Workers
	if workers <= 0 || workers > len(f.Cells) {
		workers = len(f.Cells)
	}
	results := make([]FleetResult, len(f.Cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cell := f.Cells[i]
				history, err := cell.Executor.RunContext(ctx, cell.Planner)
				results[i] = FleetResult{Name: cell.Name, History: history, Err: err}
			}
		}()
	}
	for i := range f.Cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, nil
}

// ConnectFleet opens one lab session and data mount per planner from
// host and assembles a Fleet over the deployment, with a shared
// instrument gate and shared history pre-wired. Close the returned
// fleet's handles with the cleanup function.
func ConnectFleet(d *core.Deployment, host string, planners []Planner) (*Fleet, func(), error) {
	fleet := &Fleet{History: &SharedHistory{}}
	var cleanups []func()
	cleanup := func() {
		for _, c := range cleanups {
			c()
		}
	}
	for i, p := range planners {
		session, mount, err := d.ConnectLabFrom(host)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("campaign: connect fleet cell %d: %w", i+1, err)
		}
		cleanups = append(cleanups, func() { session.Close(); mount.Close() })
		fleet.Cells = append(fleet.Cells, FleetCell{
			Name:     fmt.Sprintf("cell-%02d", i+1),
			Executor: &Executor{Session: session, Mount: mount},
			Planner:  p,
		})
	}
	return fleet, cleanup, nil
}
