package dag

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"ice/internal/telemetry"
	"ice/internal/trace"
	"ice/internal/workflow"
)

// NodeResult is the durable outcome of one node. It is what the
// journal checkpoints (as the task record's Output), what the cache
// stores, and what downstream nodes see as their resolved input.
type NodeResult struct {
	Node   string `json:"node"`
	Type   string `json:"type"`
	Cached bool   `json:"cached,omitempty"`
	// Digest is the content digest of this node's output: the
	// measurement SHA-256 for acquire/retrieve, the result-JSON hash
	// otherwise. It feeds dependents' cache keys.
	Digest string `json:"digest,omitempty"`
	// File is the measurement file name for acquire/retrieve nodes.
	File   string `json:"file,omitempty"`
	Output string `json:"output,omitempty"`
	// Analysis fields (analyze nodes).
	Points       int     `json:"points,omitempty"`
	AnodicPeakUA float64 `json:"anodic_peak_ua,omitempty"`
	// Classification fields (ml-classify nodes). ClassName is the
	// cross-path equality field ("" means not classified).
	Class     int    `json:"class,omitempty"`
	ClassName string `json:"class_name,omitempty"`
}

// Result summarises a whole DAG run.
type Result struct {
	Name string `json:"name"`
	// NodesRun counts nodes executed live this run.
	NodesRun int `json:"nodes_run"`
	// NodesCached counts nodes served from the content-keyed cache.
	NodesCached int `json:"nodes_cached"`
	// NodesRestored counts nodes replayed from the journal on resume.
	NodesRestored int `json:"nodes_restored"`
	// Nodes holds per-node results in deterministic (ID) order.
	Nodes []NodeResult `json:"nodes"`
}

// Invocation is everything an Executor needs to run one node.
type Invocation struct {
	Node *Node
	// Deps maps dependency IDs to their resolved results.
	Deps map[string]*NodeResult
	// Payload maps dependency IDs to raw bytes (retrieve output) for
	// nodes that consume measurement content.
	Payload map[string][]byte
	// OnMeasured fires when an acquire node's remote measurement
	// exists, marking the acquire→retrieve boundary where the
	// instrument gate can release.
	OnMeasured func(file string)
}

// Executor runs one node and returns its result, plus raw payload
// bytes for nodes (retrieve) whose output is content downstream nodes
// consume.
type Executor interface {
	RunNode(ctx context.Context, inv *Invocation) (*NodeResult, []byte, error)
}

// instrumentTypes holds exclusive instrument or liquid hardware, so
// the engine serialises them on the gate and on an internal mutex.
func isInstrumentType(t string) bool {
	return t == TypePyro || t == TypeFill || t == TypeAcquire
}

// cacheableTypes may be served from the content-keyed cache.
// Effectful control and liquid operations (pyro, fill) never are —
// skipping a dispense because "we dispensed this before" would be
// wrong on real hardware.
func isCacheableType(t string) bool {
	switch t {
	case TypeAcquire, TypeRetrieve, TypeAnalyze, TypeClassify:
		return true
	}
	return false
}

func classForType(t string) string {
	switch t {
	case TypePyro:
		return trace.ClassControl
	case TypeFill, TypeAcquire:
		return trace.ClassInstrument
	case TypeRetrieve:
		return trace.ClassData
	default:
		return trace.ClassAnalysis
	}
}

// Engine executes a validated Spec: topological parallel execution on
// a bounded worker pool, per-node JSONL checkpoints, content-keyed
// caching, and instrument-gate scoping to the nodes that need the
// device.
type Engine struct {
	Spec *Spec
	Exec Executor
	// Workers bounds concurrent node execution (default 4).
	Workers int
	// Journal receives workflow.TaskRecord JSONL checkpoints.
	Journal io.Writer
	// Cache, when set, enables content-keyed caching and payload
	// rehydration for resumed retrieve nodes.
	Cache *Cache
	// Gate, when set, is held while instrument nodes (pyro, fill,
	// acquire) run and released at the acquire→retrieve boundary once
	// no instrument nodes remain, so WAN retrieval overlaps the next
	// job's instrument time.
	Gate sync.Locker
	// Metrics receives dag.* counters and the cache hit-ratio gauge.
	Metrics *telemetry.Collector
	// TraceLabel tags per-node spans with the owning job.
	TraceLabel string
	// Restored holds journal records from a previous attempt; nodes
	// checkpointed OK there are replayed, not re-executed.
	Restored []workflow.TaskRecord

	mu       sync.Mutex
	results  map[string]*NodeResult
	payloads map[string][]byte
	// instMu serialises instrument nodes with each other even when
	// the worker pool would otherwise run them concurrently.
	instMu sync.Mutex
	// instLeft counts instrument nodes not yet finished; when it hits
	// zero the gate is released for good.
	instLeft int
	gk       gateKeeper
	journalW sync.Mutex
}

// gateKeeper makes gate release idempotent: the acquire→retrieve
// boundary releases early, the engine's final sweep releases at most
// once more.
type gateKeeper struct {
	mu   sync.Mutex
	gate sync.Locker
	held bool
}

func (g *gateKeeper) hold() {
	if g.gate == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.held {
		g.gate.Lock()
		g.held = true
	}
}

func (g *gateKeeper) release() {
	if g.gate == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.held {
		g.gate.Unlock()
		g.held = false
	}
}

// Run executes the DAG. The first node failure cancels the remainder
// (in-flight nodes drain; unstarted dependents are skipped) and is
// returned after the journal records it.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	e.Spec.normalize()
	if err := e.Spec.Validate(); err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = 4
	}
	byID := e.Spec.byID()
	e.results = make(map[string]*NodeResult, len(e.Spec.Nodes))
	e.payloads = make(map[string][]byte)
	e.gk.gate = e.Gate

	restored := e.restoredResults()
	for _, n := range e.Spec.Nodes {
		if isInstrumentType(n.Type) {
			if _, ok := restored[n.ID]; !ok {
				e.instLeft++
			}
		}
	}

	indeg := make(map[string]int, len(e.Spec.Nodes))
	children := make(map[string][]string, len(e.Spec.Nodes))
	for _, n := range e.Spec.Nodes {
		indeg[n.ID] = len(n.Needs)
		for _, dep := range n.Needs {
			children[dep] = append(children[dep], n.ID)
		}
	}

	res := &Result{Name: e.Spec.Name}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)

	type outcome struct {
		id  string
		err error
	}
	done := make(chan outcome)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	defer e.gk.release()

	running := 0
	finished := 0
	var firstErr error
	failed := make(map[string]bool)

	start := func(id string) {
		running++
		go func() {
			err := e.runNode(runCtx, byID[id], restored, res)
			done <- outcome{id: id, err: err}
		}()
	}

	for finished < len(e.Spec.Nodes) {
		for firstErr == nil && running < workers && len(ready) > 0 {
			id := ready[0]
			ready = ready[1:]
			start(id)
		}
		if running == 0 {
			// Nothing in flight: either a failure poisoned the ready
			// set, or dependents of failed nodes remain. Mark the
			// rest skipped and stop.
			break
		}
		o := <-done
		running--
		finished++
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dag: node %q: %w", o.id, o.err)
				cancel()
			}
			failed[o.id] = true
			continue
		}
		added := false
		for _, ch := range children[o.id] {
			indeg[ch]--
			if indeg[ch] == 0 && !failed[o.id] {
				ready = append(ready, ch)
				added = true
			}
		}
		if added {
			sort.Strings(ready)
		}
	}
	// Drain any stragglers so no goroutine outlives the engine.
	for running > 0 {
		o := <-done
		running--
		if o.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dag: node %q: %w", o.id, o.err)
		}
	}
	e.gk.release()

	// Journal unreached nodes as skipped so the record is complete.
	if firstErr != nil {
		for _, n := range e.Spec.Nodes {
			e.mu.Lock()
			_, done := e.results[n.ID]
			e.mu.Unlock()
			if !done && !failed[n.ID] {
				e.journal(n.ID, workflow.Skipped.String(), "", "")
			}
		}
	}

	e.mu.Lock()
	ids := make([]string, 0, len(e.results))
	for id := range e.results {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		res.Nodes = append(res.Nodes, *e.results[id])
	}
	e.mu.Unlock()

	if e.Metrics != nil {
		total := res.NodesRun + res.NodesCached
		if total > 0 {
			e.Metrics.Gauge("dag.cache.hit_ratio").Set(int64(res.NodesCached * 100 / total))
		}
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// restoredResults decodes the journal records from a previous attempt
// into node results. Latest record per node wins; only OK records
// with a matching workflow name count.
func (e *Engine) restoredResults() map[string]*NodeResult {
	out := make(map[string]*NodeResult)
	for _, rec := range e.Restored {
		if rec.Workflow != e.Spec.Name || rec.TaskID == "" {
			continue
		}
		if rec.Status != workflow.OK.String() {
			delete(out, rec.TaskID)
			continue
		}
		var nr NodeResult
		if err := json.Unmarshal([]byte(rec.Output), &nr); err != nil {
			continue
		}
		out[rec.TaskID] = &nr
	}
	return out
}

// runNode executes (or restores, or cache-serves) one node and
// records the outcome.
func (e *Engine) runNode(ctx context.Context, n *Node, restored map[string]*NodeResult, res *Result) error {
	spanCtx, span := trace.Start(ctx, "dag."+n.ID, classForType(n.Type))
	if e.TraceLabel != "" {
		span.SetAttr("holder", e.TraceLabel)
	}
	span.SetAttr("node_type", n.Type)

	// Resolve dependency results and payloads.
	deps := make(map[string]*NodeResult, len(n.Needs))
	payload := make(map[string][]byte)
	e.mu.Lock()
	for _, dep := range n.Needs {
		deps[dep] = e.results[dep]
		if p, ok := e.payloads[dep]; ok {
			payload[dep] = p
		}
	}
	e.mu.Unlock()
	for _, dep := range n.Needs {
		if deps[dep] == nil {
			err := fmt.Errorf("dependency %q did not complete", dep)
			span.EndErr(err)
			return err
		}
	}
	// Retrieve payloads may be needed by analyze/classify nodes that
	// resumed past the retrieve: rehydrate from the blob store.
	for _, dep := range n.Needs {
		d := deps[dep]
		if d.Type == TypeRetrieve && payload[dep] == nil {
			if data, ok := e.Cache.GetBlob(d.Digest); ok {
				payload[dep] = data
			}
		}
	}

	// Journal replay: a node checkpointed OK on a previous attempt is
	// restored, not re-run — the crash-recovery exactly-once path.
	if prior, ok := restored[n.ID]; ok {
		if usable := e.restorable(n, prior); usable {
			span.SetAttr("restored", "true")
			e.commit(n, prior, nil, res, "restored")
			span.End()
			return nil
		}
	}

	key := e.cacheKeyFor(n, deps)
	if key != "" {
		if hit, ok := e.Cache.Lookup(key); ok {
			if e.usableHit(n, hit) {
				hit.Cached = true
				span.SetAttr("cached", "true")
				if e.Metrics != nil {
					e.Metrics.Counter("dag.nodes.cached").Inc()
				}
				e.journal(n.ID, workflow.Running.String(), "", "")
				e.commit(n, hit, nil, res, "cached")
				span.End()
				return nil
			}
		}
	}

	inv := &Invocation{Node: n, Deps: deps, Payload: payload}
	if isInstrumentType(n.Type) {
		e.instMu.Lock()
		defer e.instMu.Unlock()
		e.gk.hold()
		if n.Type == TypeAcquire {
			inv.OnMeasured = func(file string) {
				span.Event("measured", "file", file)
				e.instrumentDone(1)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		span.EndErr(err)
		return err
	}

	e.journal(n.ID, workflow.Running.String(), "", "")
	nr, data, err := e.Exec.RunNode(spanCtx, inv)
	if isInstrumentType(n.Type) && n.Type != TypeAcquire {
		e.instrumentDone(1)
	} else if n.Type == TypeAcquire && err != nil {
		// OnMeasured never fired; retire the slot so the gate is not
		// pinned by a failed acquisition.
		e.instrumentDone(1)
	}
	if err != nil {
		if e.Metrics != nil {
			e.Metrics.Counter("dag.nodes.failed").Inc()
		}
		e.journal(n.ID, workflow.Failed.String(), "", err.Error())
		span.EndErr(err)
		return err
	}
	nr.Node = n.ID
	nr.Type = n.Type
	if data != nil {
		// A payload-bearing node's digest is its content hash, and the
		// blob is written even for uncacheable runs: it is the
		// rehydration buffer for resumed downstream nodes.
		if e.Cache != nil {
			blobDigest, err := e.Cache.PutBlob(data)
			if err != nil {
				span.EndErr(err)
				return err
			}
			if nr.Digest == "" {
				nr.Digest = blobDigest
			}
		} else if nr.Digest == "" {
			nr.Digest = sha256Sum(data)
		}
	}
	if nr.Digest == "" {
		nr.Digest = resultDigest(nr)
	}
	if e.Metrics != nil {
		e.Metrics.Counter("dag.nodes.run").Inc()
	}
	if key != "" {
		if err := e.Cache.Store(key, nr); err != nil {
			span.EndErr(err)
			return err
		}
	}
	e.commit(n, nr, data, res, "run")
	span.End()
	return nil
}

// instrumentDone retires n instrument slots and releases the gate
// when none remain.
func (e *Engine) instrumentDone(n int) {
	e.mu.Lock()
	e.instLeft -= n
	left := e.instLeft
	e.mu.Unlock()
	if left <= 0 {
		e.gk.release()
	}
}

// restorable reports whether a journal-restored result can stand in
// for running the node. Retrieve nodes additionally need their bytes
// back for downstream consumers — served from the content-keyed blob
// store; without the blob the node re-runs.
func (e *Engine) restorable(n *Node, prior *NodeResult) bool {
	if prior.Type != n.Type {
		return false
	}
	if n.Type == TypeRetrieve {
		_, ok := e.Cache.GetBlob(prior.Digest)
		return ok
	}
	return true
}

// usableHit applies the same payload-availability rule to cache hits.
func (e *Engine) usableHit(n *Node, hit *NodeResult) bool {
	if hit.Type != n.Type {
		return false
	}
	if n.Type == TypeRetrieve {
		_, ok := e.Cache.GetBlob(hit.Digest)
		return ok
	}
	return true
}

// cacheKeyFor derives a node's content key, or "" when the node is
// not cacheable (by type or opt-out) or no cache is configured.
func (e *Engine) cacheKeyFor(n *Node, deps map[string]*NodeResult) string {
	if e.Cache == nil || n.NoCache || !isCacheableType(n.Type) {
		return ""
	}
	byID := e.Spec.byID()
	inputs := make([]string, 0, len(deps))
	for id, d := range deps {
		if isCacheableType(d.Type) {
			// Data-carrying dependency: its content digest is the input.
			inputs = append(inputs, d.Digest)
		} else if dn := byID[id]; dn != nil {
			// Effectful dependency (pyro, fill): what matters is the
			// operation performed, not its run-varying output (status
			// strings, temperature readings), so the spec digest stands in.
			inputs = append(inputs, "spec:"+dn.SpecDigest())
		}
	}
	return CacheKey(n.SpecDigest(), inputs)
}

// commit records a finished node: result map, payload buffer,
// counters, and the OK checkpoint (live and cached runs only —
// restored nodes already have their record in the journal).
func (e *Engine) commit(n *Node, nr *NodeResult, data []byte, res *Result, how string) {
	e.mu.Lock()
	e.results[n.ID] = nr
	if data != nil {
		e.payloads[n.ID] = data
	}
	switch how {
	case "run":
		res.NodesRun++
	case "cached":
		res.NodesCached++
	case "restored":
		res.NodesRestored++
	}
	e.mu.Unlock()
	if how != "restored" {
		out, _ := json.Marshal(nr)
		e.journal(n.ID, workflow.OK.String(), string(out), "")
	}
	if how == "restored" && isInstrumentType(n.Type) {
		// Restored instrument nodes were never counted into instLeft.
		return
	}
	if how == "cached" && isInstrumentType(n.Type) {
		e.instrumentDone(1)
	}
}

// journal emits one workflow.TaskRecord line. Writes are serialised;
// the underlying writer (core.AppendFile via the scheduler's tee) is
// also safe for concurrent use.
func (e *Engine) journal(taskID, status, output, errMsg string) {
	if e.Journal == nil {
		return
	}
	rec := workflow.TaskRecord{
		Workflow: e.Spec.Name,
		TaskID:   taskID,
		Status:   status,
		Output:   output,
		Error:    errMsg,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	e.journalW.Lock()
	defer e.journalW.Unlock()
	e.Journal.Write(append(data, '\n'))
}

// resultDigest hashes a node result's canonical JSON; used as the
// content digest for nodes without an inherent payload digest.
func resultDigest(nr *NodeResult) string {
	c := *nr
	c.Cached = false
	data, _ := json.Marshal(&c)
	sum := sha256Sum(data)
	return sum
}
