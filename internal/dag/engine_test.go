package dag

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ice/internal/telemetry"
	"ice/internal/workflow"
)

// fakeExec counts executions per node and returns canned results.
type fakeExec struct {
	mu   sync.Mutex
	runs map[string]int
	fail map[string]error
}

func newFakeExec() *fakeExec {
	return &fakeExec{runs: make(map[string]int), fail: make(map[string]error)}
}

func (f *fakeExec) RunNode(ctx context.Context, inv *Invocation) (*NodeResult, []byte, error) {
	f.mu.Lock()
	f.runs[inv.Node.ID]++
	f.mu.Unlock()
	if err := f.fail[inv.Node.ID]; err != nil {
		return nil, nil, err
	}
	if inv.OnMeasured != nil {
		inv.OnMeasured("fake.mpt")
	}
	var data []byte
	if inv.Node.Type == TypeRetrieve {
		data = []byte("payload-" + inv.Node.ID)
	}
	return &NodeResult{Output: "ok-" + inv.Node.ID}, data, nil
}

func (f *fakeExec) count(id string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs[id]
}

func pyroNode(id string, needs ...string) *Node {
	return &Node{ID: id, Type: TypePyro, Object: "jkem", Method: "Status", Needs: needs}
}

func diamondSpec() *Spec {
	// top → left,right → join: the shared top and join nodes must
	// execute exactly once even with parallel workers.
	return &Spec{Name: "diamond", Nodes: []*Node{
		pyroNode("top"),
		pyroNode("left", "top"),
		pyroNode("right", "top"),
		pyroNode("join", "left", "right"),
	}}
}

func TestDiamondExecutesEachNodeOnce(t *testing.T) {
	exec := newFakeExec()
	eng := &Engine{Spec: diamondSpec(), Exec: exec, Workers: 4}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesRun != 4 || res.NodesCached != 0 {
		t.Fatalf("result = %+v, want 4 run / 0 cached", res)
	}
	for _, id := range []string{"top", "left", "right", "join"} {
		if n := exec.count(id); n != 1 {
			t.Errorf("node %s executed %d times, want exactly once", id, n)
		}
	}
}

func TestFailureSkipsDependents(t *testing.T) {
	exec := newFakeExec()
	exec.fail["left"] = errors.New("boom")
	var journal bytes.Buffer
	eng := &Engine{Spec: diamondSpec(), Exec: exec, Workers: 1, Journal: &journal}
	_, err := eng.Run(context.Background())
	if err == nil || !errors.Is(err, exec.fail["left"]) && err.Error() == "" {
		t.Fatalf("run error = %v, want failure from left", err)
	}
	if n := exec.count("join"); n != 0 {
		t.Errorf("join executed %d times after dependency failure, want 0", n)
	}
	recs, err := workflow.ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	status := map[string]string{}
	for _, r := range recs {
		status[r.TaskID] = r.Status
	}
	if status["left"] != workflow.Failed.String() {
		t.Errorf("left journaled as %q, want FAILED", status["left"])
	}
	if status["join"] != workflow.Skipped.String() {
		t.Errorf("join journaled as %q, want skipped", status["join"])
	}
}

func TestJournalResumeSkipsCompletedNodes(t *testing.T) {
	exec := newFakeExec()
	spec := diamondSpec()
	var journal bytes.Buffer
	eng := &Engine{Spec: spec, Exec: exec, Workers: 2, Journal: &journal}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second engine restores from the first run's journal: nothing
	// re-executes.
	recs, err := workflow.ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	exec2 := newFakeExec()
	eng2 := &Engine{Spec: spec, Exec: exec2, Workers: 2, Restored: recs}
	res, err := eng2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesRestored != 4 || res.NodesRun != 0 {
		t.Fatalf("resume result = %+v, want 4 restored / 0 run", res)
	}
	for id := range exec2.runs {
		t.Errorf("node %s re-executed on resume", id)
	}
}

func TestContentCacheAcrossRuns(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "c", Nodes: []*Node{
		{ID: "acq", Type: TypeAcquire, Acquire: &AcquireSpec{}},
		{ID: "ret", Type: TypeRetrieve, Needs: []string{"acq"}},
		{ID: "ana", Type: TypeAnalyze, Needs: []string{"ret"}},
	}}
	metrics := telemetry.NewCollector()
	exec := newFakeExec()
	eng := &Engine{Spec: spec, Exec: exec, Cache: cache, Metrics: metrics}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A second job with the same spec hits on every cacheable node.
	exec2 := newFakeExec()
	eng2 := &Engine{Spec: spec, Exec: exec2, Cache: cache, Metrics: metrics}
	res, err := eng2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesCached != 3 || res.NodesRun != 0 {
		t.Fatalf("second run = %+v, want 3 cached / 0 run", res)
	}
	if len(exec2.runs) != 0 {
		t.Errorf("nodes re-executed despite cache: %v", exec2.runs)
	}
	if got := metrics.CounterValue("dag.nodes.cached"); got != 3 {
		t.Errorf("dag.nodes.cached = %d, want 3", got)
	}
	if got := metrics.GaugeValue("dag.cache.hit_ratio"); got != 100 {
		t.Errorf("dag.cache.hit_ratio = %d, want 100", got)
	}
}

func TestNoCacheOptOut(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "c", Nodes: []*Node{
		{ID: "acq", Type: TypeAcquire, Acquire: &AcquireSpec{}, NoCache: true},
	}}
	for i := 0; i < 2; i++ {
		exec := newFakeExec()
		eng := &Engine{Spec: spec, Exec: exec, Cache: cache}
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.NodesRun != 1 || res.NodesCached != 0 {
			t.Fatalf("run %d = %+v, want always live", i, res)
		}
	}
}

func TestPyroAndFillNeverCached(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "c", Nodes: []*Node{
		pyroNode("p"),
		{ID: "f", Type: TypeFill, Fill: &FillSpec{PumpAddr: 1, StockPort: 8, CellPort: 1, VolumeML: 6, RateMLMin: 5}},
	}}
	for i := 0; i < 2; i++ {
		exec := newFakeExec()
		eng := &Engine{Spec: spec, Exec: exec, Cache: cache}
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.NodesCached != 0 || exec.count("p") != 1 || exec.count("f") != 1 {
			t.Fatalf("run %d: effectful nodes were cached (%+v)", i, res)
		}
	}
}

// countGate counts Lock/Unlock transitions so the test can assert the
// instrument hold released at the acquire→retrieve boundary.
type countGate struct {
	mu       sync.Mutex
	held     bool
	acquired int
}

func (g *countGate) Lock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.held {
		panic("gate locked twice")
	}
	g.held = true
	g.acquired++
}

func (g *countGate) Unlock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.held {
		panic("gate unlocked while free")
	}
	g.held = false
}

// boundaryExec asserts the gate is already free when a retrieve node
// runs — the acquire→retrieve boundary released it.
type boundaryExec struct {
	fakeExec
	gate        *countGate
	heldAtRetr  atomic.Bool
	sawRetrieve atomic.Bool
}

func (b *boundaryExec) RunNode(ctx context.Context, inv *Invocation) (*NodeResult, []byte, error) {
	if inv.Node.Type == TypeRetrieve {
		b.sawRetrieve.Store(true)
		b.gate.mu.Lock()
		b.heldAtRetr.Store(b.gate.held)
		b.gate.mu.Unlock()
	}
	return b.fakeExec.RunNode(ctx, inv)
}

func TestGateReleasesAtAcquireRetrieveBoundary(t *testing.T) {
	gate := &countGate{}
	exec := &boundaryExec{gate: gate}
	exec.runs = make(map[string]int)
	exec.fail = make(map[string]error)
	spec := &Spec{Name: "g", Nodes: []*Node{
		{ID: "acq", Type: TypeAcquire, Acquire: &AcquireSpec{}},
		{ID: "ret", Type: TypeRetrieve, Needs: []string{"acq"}},
		{ID: "ana", Type: TypeAnalyze, Needs: []string{"ret"}},
	}}
	eng := &Engine{Spec: spec, Exec: exec, Gate: gate, Workers: 1}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !exec.sawRetrieve.Load() {
		t.Fatal("retrieve never ran")
	}
	if exec.heldAtRetr.Load() {
		t.Error("instrument gate still held while retrieve ran; should release at the acquire→retrieve boundary")
	}
	if gate.held {
		t.Error("gate left held after run")
	}
	if gate.acquired == 0 {
		t.Error("gate never acquired")
	}
}

func TestRestoredRetrieveNeedsBlob(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "r", Nodes: []*Node{
		{ID: "acq", Type: TypeAcquire, Acquire: &AcquireSpec{}},
		{ID: "ret", Type: TypeRetrieve, Needs: []string{"acq"}},
	}}
	// Forge a journal claiming both nodes completed, but with a
	// retrieve digest whose blob is absent: the retrieve must re-run.
	mk := func(id, typ, digest string) workflow.TaskRecord {
		out, _ := json.Marshal(&NodeResult{Node: id, Type: typ, Digest: digest})
		return workflow.TaskRecord{Workflow: "r", TaskID: id, Status: workflow.OK.String(), Output: string(out)}
	}
	restored := []workflow.TaskRecord{
		mk("acq", TypeAcquire, "d1"),
		mk("ret", TypeRetrieve, "missing-blob"),
	}
	exec := newFakeExec()
	eng := &Engine{Spec: spec, Exec: exec, Cache: cache, Restored: restored}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if exec.count("acq") != 0 {
		t.Error("acquire re-ran despite journal checkpoint")
	}
	if exec.count("ret") != 1 {
		t.Errorf("retrieve ran %d times, want re-run once (blob unavailable)", exec.count("ret"))
	}
	if res.NodesRestored != 1 {
		t.Errorf("restored = %d, want 1", res.NodesRestored)
	}
}
