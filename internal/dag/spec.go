// Package dag implements the declarative experiment DAG engine: a JSON
// job spec whose nodes are typed steps (pyro call, fill, acquire,
// retrieve, analyze, ml-classify) and whose edges are dependencies.
// Specs are validated at admission (schema, references, cycles),
// executed topologically on a bounded worker pool, checkpointed
// per-node into the same JSONL journal format the notebook workflows
// use, and cached by content key so identical nodes are skipped on
// resume and across jobs.
package dag

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ice/internal/core"
)

// Node types. Each type maps onto one phase of the paper's A–E CV
// workflow; arbitrary instrument control is expressed as pyro nodes.
const (
	// TypePyro is a raw RPC on a lab object ("jkem" or "sp200").
	TypePyro = "pyro"
	// TypeFill runs the five-step syringe-pump fill sequence (task C).
	TypeFill = "fill"
	// TypeAcquire runs the six-step SP200 acquisition pipeline (task D
	// phase 1) and reports the remote measurement file + digest.
	TypeAcquire = "acquire"
	// TypeRetrieve pulls a measurement produced by an acquire
	// dependency over the data channel with end-to-end verification.
	TypeRetrieve = "retrieve"
	// TypeAnalyze parses a retrieved measurement and runs CV peak
	// analysis.
	TypeAnalyze = "analyze"
	// TypeClassify runs the ML normality classifier over a retrieved
	// measurement.
	TypeClassify = "ml-classify"
)

// MaxSpecBytes bounds a DAG spec document, mirroring MaxJobSpecBytes.
const MaxSpecBytes = 64 * 1024

// MaxNodes bounds the node count so admission stays cheap and journal
// replay bounded.
const MaxNodes = 64

// maxPyroArgs bounds raw RPC argument lists.
const maxPyroArgs = 8

// FillSpec parameterises a fill node. Zero values resolve to the
// paper's fill parameters at decode time so cache keys always see the
// resolved values.
type FillSpec struct {
	PumpAddr  int     `json:"pump"`
	StockPort int     `json:"stock_port"`
	CellPort  int     `json:"cell_port"`
	VolumeML  float64 `json:"volume_ml"`
	RateMLMin float64 `json:"rate_ml_min"`
}

// AcquireSpec parameterises an acquire node. Zero-valued fields
// resolve to the paper's system/technique parameters at decode time.
type AcquireSpec struct {
	System core.SystemParams `json:"system"`
	CV     core.CVParams     `json:"cv"`
}

// Node is one typed step in the DAG.
type Node struct {
	ID   string `json:"id"`
	Type string `json:"type"`
	// Needs lists node IDs this node depends on.
	Needs []string `json:"needs,omitempty"`
	// NoCache opts this node out of content-keyed caching.
	NoCache bool `json:"nocache,omitempty"`

	// Pyro-node fields.
	Object string `json:"object,omitempty"`
	Method string `json:"method,omitempty"`
	Args   []any  `json:"args,omitempty"`

	// Typed-step payloads.
	Fill    *FillSpec    `json:"fill,omitempty"`
	Acquire *AcquireSpec `json:"acquire,omitempty"`

	// Seed selects the classifier training seed for ml-classify nodes
	// (default 7). Identical seeds yield identical ensembles, so the
	// verdict is reproducible across processes.
	Seed int64 `json:"seed,omitempty"`
}

// Spec is a full DAG job document.
type Spec struct {
	Name  string  `json:"name"`
	Nodes []*Node `json:"nodes"`
}

// DecodeSpec parses and validates a DAG spec. Decoding is strict:
// unknown fields, trailing data, and oversized documents are rejected,
// matching the gateway's JobSpec admission posture.
func DecodeSpec(data []byte) (*Spec, error) {
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("dag: spec exceeds %d bytes", MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("dag: decode spec: %w", err)
	}
	if err := trailingData(dec); err != nil {
		return nil, err
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func trailingData(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("dag: trailing data after spec document")
	}
	return nil
}

// normalize resolves zero-valued fill/acquire parameters to the
// paper's defaults before validation and digest computation, so a
// spec that spells out the defaults and one that omits them hash to
// the same cache key.
func (s *Spec) normalize() {
	for _, n := range s.Nodes {
		switch n.Type {
		case TypeFill:
			if n.Fill == nil {
				continue
			}
			def := core.PaperFillParams()
			if n.Fill.PumpAddr == 0 {
				n.Fill.PumpAddr = def.PumpAddr
			}
			if n.Fill.StockPort == 0 {
				n.Fill.StockPort = def.StockPort
			}
			if n.Fill.CellPort == 0 {
				n.Fill.CellPort = def.CellPort
			}
			if n.Fill.VolumeML == 0 {
				n.Fill.VolumeML = def.VolumeML
			}
			if n.Fill.RateMLMin == 0 {
				n.Fill.RateMLMin = def.RateMLMin
			}
		case TypeAcquire:
			if n.Acquire == nil {
				n.Acquire = &AcquireSpec{}
			}
			if n.Acquire.System == (core.SystemParams{}) {
				n.Acquire.System = core.PaperSystemParams()
			}
			if n.Acquire.CV == (core.CVParams{}) {
				n.Acquire.CV = core.PaperCVParams()
			}
		case TypeClassify:
			if n.Seed == 0 {
				n.Seed = DefaultClassifierSeed
			}
		}
	}
}

// Validate checks structure: IDs, references, per-type payloads, and
// acyclicity. Returned errors name the offending node.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("dag: spec needs a name")
	}
	if err := validID(s.Name); err != nil {
		return fmt.Errorf("dag: spec name: %w", err)
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("dag: spec %q has no nodes", s.Name)
	}
	if len(s.Nodes) > MaxNodes {
		return fmt.Errorf("dag: spec %q has %d nodes, max %d", s.Name, len(s.Nodes), MaxNodes)
	}
	byID := make(map[string]*Node, len(s.Nodes))
	for _, n := range s.Nodes {
		if n == nil {
			return fmt.Errorf("dag: spec %q contains a null node", s.Name)
		}
		if err := validID(n.ID); err != nil {
			return fmt.Errorf("dag: node id: %w", err)
		}
		if _, dup := byID[n.ID]; dup {
			return fmt.Errorf("dag: duplicate node id %q", n.ID)
		}
		byID[n.ID] = n
	}
	for _, n := range s.Nodes {
		seen := make(map[string]bool, len(n.Needs))
		for _, dep := range n.Needs {
			if dep == n.ID {
				return fmt.Errorf("dag: node %q depends on itself", n.ID)
			}
			if _, ok := byID[dep]; !ok {
				return fmt.Errorf("dag: node %q needs unknown node %q", n.ID, dep)
			}
			if seen[dep] {
				return fmt.Errorf("dag: node %q lists dependency %q twice", n.ID, dep)
			}
			seen[dep] = true
		}
		if err := n.validatePayload(byID); err != nil {
			return err
		}
	}
	if _, err := s.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func (n *Node) validatePayload(byID map[string]*Node) error {
	switch n.Type {
	case TypePyro:
		if n.Object != "jkem" && n.Object != "sp200" {
			return fmt.Errorf("dag: pyro node %q object must be \"jkem\" or \"sp200\" (got %q)", n.ID, n.Object)
		}
		if n.Method == "" {
			return fmt.Errorf("dag: pyro node %q needs a method", n.ID)
		}
		if err := validID(n.Method); err != nil {
			return fmt.Errorf("dag: pyro node %q method: %w", n.ID, err)
		}
		if len(n.Args) > maxPyroArgs {
			return fmt.Errorf("dag: pyro node %q has %d args, max %d", n.ID, len(n.Args), maxPyroArgs)
		}
		for i, a := range n.Args {
			switch a.(type) {
			case bool, float64, string:
			default:
				return fmt.Errorf("dag: pyro node %q arg %d must be a scalar (bool, number, or string)", n.ID, i)
			}
		}
	case TypeFill:
		if n.Fill == nil {
			return fmt.Errorf("dag: fill node %q needs a \"fill\" block", n.ID)
		}
		f := n.Fill
		if f.PumpAddr < 1 || f.PumpAddr > 16 {
			return fmt.Errorf("dag: fill node %q pump address %d out of range 1..16", n.ID, f.PumpAddr)
		}
		if f.StockPort < 1 || f.StockPort > 12 || f.CellPort < 1 || f.CellPort > 12 {
			return fmt.Errorf("dag: fill node %q ports out of range 1..12", n.ID)
		}
		if !(f.VolumeML > 0) || f.VolumeML > 100 {
			return fmt.Errorf("dag: fill node %q volume %.3f mL out of range (0,100]", n.ID, f.VolumeML)
		}
		if !(f.RateMLMin > 0) || f.RateMLMin > 50 {
			return fmt.Errorf("dag: fill node %q rate %.3f mL/min out of range (0,50]", n.ID, f.RateMLMin)
		}
	case TypeAcquire:
		if n.Acquire == nil {
			return fmt.Errorf("dag: acquire node %q needs an \"acquire\" block", n.ID)
		}
		if err := n.Acquire.CV.Validate(); err != nil {
			return fmt.Errorf("dag: acquire node %q: %w", n.ID, err)
		}
	case TypeRetrieve:
		if err := n.requireOneDepOfType(byID, TypeAcquire); err != nil {
			return err
		}
	case TypeAnalyze:
		if err := n.requireOneDepOfType(byID, TypeRetrieve); err != nil {
			return err
		}
	case TypeClassify:
		if err := n.requireOneDepOfType(byID, TypeRetrieve); err != nil {
			return err
		}
		if n.Seed < 0 {
			return fmt.Errorf("dag: ml-classify node %q seed must be non-negative", n.ID)
		}
	default:
		return fmt.Errorf("dag: node %q has unknown type %q", n.ID, n.Type)
	}
	return nil
}

// requireOneDepOfType enforces the data-flow shape for retrieve /
// analyze / classify: exactly one dependency of the producing type
// (extra control-flow edges of other types are allowed).
func (n *Node) requireOneDepOfType(byID map[string]*Node, want string) error {
	count := 0
	for _, dep := range n.Needs {
		if byID[dep].Type == want {
			count++
		}
	}
	if count != 1 {
		return fmt.Errorf("dag: %s node %q needs exactly one %s dependency (got %d)", n.Type, n.ID, want, count)
	}
	return nil
}

// depOfType returns the (single, validated) dependency of the given
// type.
func (n *Node) depOfType(byID map[string]*Node, want string) string {
	for _, dep := range n.Needs {
		if byID[dep].Type == want {
			return dep
		}
	}
	return ""
}

// TopoOrder returns node IDs in a deterministic topological order
// (Kahn's algorithm with lexicographic tie-breaking), or an error
// naming a node on a dependency cycle.
func (s *Spec) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(s.Nodes))
	children := make(map[string][]string, len(s.Nodes))
	for _, n := range s.Nodes {
		indeg[n.ID] += 0
		for _, dep := range n.Needs {
			indeg[n.ID]++
			children[dep] = append(children[dep], n.ID)
		}
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	order := make([]string, 0, len(s.Nodes))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		added := false
		for _, ch := range children[id] {
			indeg[ch]--
			if indeg[ch] == 0 {
				ready = append(ready, ch)
				added = true
			}
		}
		if added {
			sort.Strings(ready)
		}
	}
	if len(order) != len(s.Nodes) {
		var stuck []string
		for id, d := range indeg {
			if d > 0 {
				stuck = append(stuck, id)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("dag: dependency cycle involving %s", strings.Join(stuck, ", "))
	}
	return order, nil
}

// node lookup helper used by the engine.
func (s *Spec) byID() map[string]*Node {
	m := make(map[string]*Node, len(s.Nodes))
	for _, n := range s.Nodes {
		m[n.ID] = n
	}
	return m
}

// validID accepts short printable-ASCII identifiers with no
// whitespace or path-meaningful characters, mirroring the gateway's
// validateName.
func validID(s string) error {
	if s == "" {
		return fmt.Errorf("empty identifier")
	}
	if len(s) > 64 {
		return fmt.Errorf("identifier %q exceeds 64 bytes", s)
	}
	for _, r := range s {
		if r <= 0x20 || r > 0x7e || r == '/' || r == '\\' || r == '"' {
			return fmt.Errorf("identifier %q contains invalid character %q", s, r)
		}
	}
	return nil
}

// SpecDigest hashes a node's own definition, excluding identity
// (ID/Needs) and cache policy, so renaming a node or rewiring
// topology does not invalidate content that is otherwise identical.
func (n *Node) SpecDigest() string {
	c := *n
	c.ID = ""
	c.Needs = nil
	c.NoCache = false
	data, err := json.Marshal(&c)
	if err != nil {
		// Node came from json.Unmarshal; re-marshal cannot fail.
		panic(fmt.Sprintf("dag: marshal node: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
