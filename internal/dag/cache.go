package dag

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// cacheKeyVersion is folded into every key so a format change
// invalidates old entries instead of mis-hitting on them.
const cacheKeyVersion = "dagv1"

// Cache is a content-addressed result store shared across DAG jobs.
// Result entries live under the root keyed by the node's cache key;
// measurement payloads live in objects/ keyed by their SHA-256 so a
// resumed or cache-served retrieve node can rehydrate its bytes.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and opens a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("dag: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// CacheKey derives the content key for a node: a hash over the node's
// own spec digest plus the sorted digests of its resolved inputs.
// Identical work — same parameters, same input content — hashes to
// the same key regardless of node IDs, topology, or which job ran it.
func CacheKey(specDigest string, inputDigests []string) string {
	sorted := append([]string(nil), inputDigests...)
	sort.Strings(sorted)
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s", cacheKeyVersion, specDigest, strings.Join(sorted, "\n"))
	return hex.EncodeToString(h.Sum(nil))
}

// Lookup returns the cached result for a key, or ok=false on a miss.
// Unreadable or corrupt entries degrade to a miss.
func (c *Cache) Lookup(key string) (*NodeResult, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil, false
	}
	var res NodeResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// Store persists a node result under its key via tmp+rename so
// concurrent writers and crashes never leave a torn entry.
func (c *Cache) Store(key string, res *NodeResult) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dag: marshal cache entry: %w", err)
	}
	return c.writeAtomic(c.entryPath(key), data)
}

// PutBlob stores a payload in the object store and returns its
// hex SHA-256 digest. Writing an already-present blob is a no-op.
func (c *Cache) PutBlob(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	if c == nil {
		return digest, nil
	}
	path := c.blobPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	if err := c.writeAtomic(path, data); err != nil {
		return "", err
	}
	return digest, nil
}

// GetBlob returns the payload for a digest, verifying content on the
// way out; a missing or corrupt blob is reported as absent.
func (c *Cache) GetBlob(digest string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.blobPath(digest))
	if err != nil {
		return nil, false
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != digest {
		return nil, false
	}
	return data, true
}

// sha256Sum is the hex SHA-256 of a byte slice.
func sha256Sum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, sanitizeKey(key)+".json")
}

func (c *Cache) blobPath(digest string) string {
	return filepath.Join(c.dir, "objects", sanitizeKey(digest))
}

func (c *Cache) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("dag: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dag: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dag: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dag: cache write: %w", err)
	}
	return nil
}

// sanitizeKey keeps only hex-ish characters so a hostile key cannot
// escape the cache directory. Keys produced by CacheKey are already
// plain hex; anything else collapses to '_'.
func sanitizeKey(key string) string {
	out := make([]byte, 0, len(key))
	for i := 0; i < len(key) && i < 128; i++ {
		ch := key[i]
		switch {
		case ch >= '0' && ch <= '9', ch >= 'a' && ch <= 'f', ch >= 'A' && ch <= 'F':
			out = append(out, ch)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
