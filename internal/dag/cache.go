package dag

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ice/internal/telemetry"
)

// cacheKeyVersion is folded into every key so a format change
// invalidates old entries instead of mis-hitting on them.
const cacheKeyVersion = "dagv1"

// Cache is a content-addressed result store shared across DAG jobs.
// Result entries live under the root keyed by the node's cache key;
// measurement payloads live in objects/ keyed by their SHA-256 so a
// resumed or cache-served retrieve node can rehydrate its bytes.
type Cache struct {
	dir string
	// MaxBlobBytes caps the objects/ store (0 = unbounded). When a
	// PutBlob pushes the store past the cap, the least-recently-used
	// blobs are evicted until it fits — recency is tracked through
	// file mtimes, which GetBlob refreshes on every hit, so the store
	// survives daemon restarts with its LRU order intact. Evicting a
	// blob degrades its future readers to a cache miss (they re-fetch
	// over the data channel), never to an error.
	MaxBlobBytes int64
	// Metrics, when set, receives the "dag.cache.evictions" counter
	// and the "dag.cache.bytes" gauge.
	Metrics *telemetry.Collector

	// evictMu serializes cap-enforcement sweeps so concurrent PutBlobs
	// do not double-delete each other's survivors.
	evictMu sync.Mutex
}

// OpenCache creates (if needed) and opens a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("dag: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// CacheKey derives the content key for a node: a hash over the node's
// own spec digest plus the sorted digests of its resolved inputs.
// Identical work — same parameters, same input content — hashes to
// the same key regardless of node IDs, topology, or which job ran it.
func CacheKey(specDigest string, inputDigests []string) string {
	sorted := append([]string(nil), inputDigests...)
	sort.Strings(sorted)
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s", cacheKeyVersion, specDigest, strings.Join(sorted, "\n"))
	return hex.EncodeToString(h.Sum(nil))
}

// Lookup returns the cached result for a key, or ok=false on a miss.
// Unreadable or corrupt entries degrade to a miss.
func (c *Cache) Lookup(key string) (*NodeResult, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil, false
	}
	var res NodeResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// Store persists a node result under its key via tmp+rename so
// concurrent writers and crashes never leave a torn entry.
func (c *Cache) Store(key string, res *NodeResult) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dag: marshal cache entry: %w", err)
	}
	return c.writeAtomic(c.entryPath(key), data)
}

// PutBlob stores a payload in the object store and returns its
// hex SHA-256 digest. Writing an already-present blob is a no-op.
func (c *Cache) PutBlob(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	if c == nil {
		return digest, nil
	}
	path := c.blobPath(digest)
	if _, err := os.Stat(path); err == nil {
		c.touch(path)
		return digest, nil
	}
	if err := c.writeAtomic(path, data); err != nil {
		return "", err
	}
	c.enforceBlobCap()
	return digest, nil
}

// GetBlob returns the payload for a digest, verifying content on the
// way out; a missing or corrupt blob is reported as absent.
func (c *Cache) GetBlob(digest string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.blobPath(digest))
	if err != nil {
		return nil, false
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != digest {
		return nil, false
	}
	// A hit is a use: refresh the blob's mtime so the LRU sweep ranks
	// it young. Best effort — a read-only store still serves hits.
	c.touch(c.blobPath(digest))
	return data, true
}

// touch refreshes a path's mtime for LRU ordering.
func (c *Cache) touch(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}

// enforceBlobCap evicts least-recently-used blobs until the object
// store fits MaxBlobBytes, and publishes the store's size. Eviction
// is best effort: an unremovable file is skipped, not fatal.
func (c *Cache) enforceBlobCap() {
	if c == nil || (c.MaxBlobBytes <= 0 && c.Metrics == nil) {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()

	type blob struct {
		name string
		size int64
		mod  time.Time
	}
	objDir := filepath.Join(c.dir, "objects")
	entries, err := os.ReadDir(objDir)
	if err != nil {
		return
	}
	var blobs []blob
	var total int64
	for _, ent := range entries {
		if ent.IsDir() || strings.HasPrefix(ent.Name(), ".tmp-") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		blobs = append(blobs, blob{ent.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}

	evicted := int64(0)
	if c.MaxBlobBytes > 0 && total > c.MaxBlobBytes {
		sort.Slice(blobs, func(i, j int) bool { return blobs[i].mod.Before(blobs[j].mod) })
		for _, b := range blobs {
			if total <= c.MaxBlobBytes {
				break
			}
			if err := os.Remove(filepath.Join(objDir, b.name)); err != nil {
				continue
			}
			total -= b.size
			evicted++
		}
	}
	if c.Metrics != nil {
		if evicted > 0 {
			c.Metrics.Counter("dag.cache.evictions").Add(evicted)
		}
		c.Metrics.Gauge("dag.cache.bytes").Set(total)
	}
}

// sha256Sum is the hex SHA-256 of a byte slice.
func sha256Sum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, sanitizeKey(key)+".json")
}

func (c *Cache) blobPath(digest string) string {
	return filepath.Join(c.dir, "objects", sanitizeKey(digest))
}

func (c *Cache) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("dag: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dag: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dag: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dag: cache write: %w", err)
	}
	return nil
}

// sanitizeKey keeps only hex-ish characters so a hostile key cannot
// escape the cache directory. Keys produced by CacheKey are already
// plain hex; anything else collapses to '_'.
func sanitizeKey(key string) string {
	out := make([]byte, 0, len(key))
	for i := 0; i < len(key) && i < 128; i++ {
		ch := key[i]
		switch {
		case ch >= '0' && ch <= '9', ch >= 'a' && ch <= 'f', ch >= 'A' && ch <= 'F':
			out = append(out, ch)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
