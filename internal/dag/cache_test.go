package dag

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ice/internal/telemetry"
)

// backdate ages a blob so the LRU sweep sees it as cold. Tests use it
// instead of sleeping: mtime is the only recency signal the cache has.
func backdate(t *testing.T, c *Cache, digest string, age time.Duration) {
	t.Helper()
	when := time.Now().Add(-age)
	if err := os.Chtimes(c.blobPath(digest), when, when); err != nil {
		t.Fatal(err)
	}
}

func TestBlobCacheEvictsLRU(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	metrics := telemetry.NewCollector()
	cache.MaxBlobBytes = 2500
	cache.Metrics = metrics

	blob := func(fill byte) []byte { return bytes.Repeat([]byte{fill}, 1000) }

	old, err := cache.PutBlob(blob('a'))
	if err != nil {
		t.Fatal(err)
	}
	backdate(t, cache, old, 3*time.Hour)
	mid, err := cache.PutBlob(blob('b'))
	if err != nil {
		t.Fatal(err)
	}
	backdate(t, cache, mid, 2*time.Hour)

	if got := metrics.CounterValue("dag.cache.evictions"); got != 0 {
		t.Fatalf("evictions before overflow = %d", got)
	}
	if got := metrics.GaugeValue("dag.cache.bytes"); got != 2000 {
		t.Fatalf("dag.cache.bytes = %v, want 2000", got)
	}

	// The third kilobyte pushes the store to 3000 > 2500: exactly the
	// coldest blob must go, and the survivors must still verify.
	fresh, err := cache.PutBlob(blob('c'))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.GetBlob(old); ok {
		t.Fatal("coldest blob survived the cap")
	}
	for _, digest := range []string{mid, fresh} {
		if _, ok := cache.GetBlob(digest); !ok {
			t.Fatalf("warm blob %s evicted", digest)
		}
	}
	if got := metrics.CounterValue("dag.cache.evictions"); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := metrics.GaugeValue("dag.cache.bytes"); got != 2000 {
		t.Fatalf("dag.cache.bytes after eviction = %v, want 2000", got)
	}
}

func TestBlobCacheReadRefreshesRecency(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.MaxBlobBytes = 2500

	oldRead, err := cache.PutBlob(bytes.Repeat([]byte{'r'}, 1000))
	if err != nil {
		t.Fatal(err)
	}
	oldCold, err := cache.PutBlob(bytes.Repeat([]byte{'s'}, 1000))
	if err != nil {
		t.Fatal(err)
	}
	backdate(t, cache, oldRead, 3*time.Hour)
	backdate(t, cache, oldCold, 2*time.Hour)

	// Reading the oldest blob marks it used; the never-read one is now
	// the LRU victim despite being written later.
	if _, ok := cache.GetBlob(oldRead); !ok {
		t.Fatal("read-back of cached blob failed")
	}
	if _, err := cache.PutBlob(bytes.Repeat([]byte{'t'}, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.GetBlob(oldRead); !ok {
		t.Fatal("recently-read blob evicted — GetBlob did not refresh recency")
	}
	if _, ok := cache.GetBlob(oldCold); ok {
		t.Fatal("cold unread blob survived over the read one")
	}
}

func TestBlobCacheUnboundedKeepsEverything(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	metrics := telemetry.NewCollector()
	cache.Metrics = metrics

	var digests []string
	for fill := byte('a'); fill < 'a'+8; fill++ {
		d, err := cache.PutBlob(bytes.Repeat([]byte{fill}, 500))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	for _, d := range digests {
		if _, ok := cache.GetBlob(d); !ok {
			t.Fatalf("blob %s missing from unbounded store", d)
		}
	}
	if got := metrics.CounterValue("dag.cache.evictions"); got != 0 {
		t.Fatalf("unbounded store evicted %d blob(s)", got)
	}
	if got := metrics.GaugeValue("dag.cache.bytes"); got != 4000 {
		t.Fatalf("dag.cache.bytes = %v, want 4000", got)
	}
}

func TestBlobCapIgnoresEntriesAndTempFiles(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.MaxBlobBytes = 1500

	// A result entry lives beside objects/ and must never be counted
	// against — or evicted by — the blob cap.
	key := CacheKey("spec", nil)
	if err := cache.Store(key, &NodeResult{}); err != nil {
		t.Fatal(err)
	}
	// A leftover temp file inside objects/ (a crashed writeAtomic)
	// must not be treated as a blob.
	if err := os.WriteFile(filepath.Join(cache.dir, "objects", ".tmp-crashed"), bytes.Repeat([]byte{'x'}, 5000), 0o644); err != nil {
		t.Fatal(err)
	}

	digest, err := cache.PutBlob(bytes.Repeat([]byte{'k'}, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.GetBlob(digest); !ok {
		t.Fatal("blob evicted by non-blob files")
	}
	if _, ok := cache.Lookup(key); !ok {
		t.Fatal("result entry destroyed by blob sweep")
	}
}
