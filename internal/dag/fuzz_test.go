package dag

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeDAGSpec holds DecodeSpec to the admission contract: never
// panic on malformed input, and every accepted spec re-validates,
// marshals, and decodes again to an equally valid document.
func FuzzDecodeDAGSpec(f *testing.F) {
	f.Add([]byte(`{"name":"cv","nodes":[{"id":"a","type":"pyro","object":"jkem","method":"Status"}]}`))
	f.Add([]byte(`{"name":"cv","nodes":[
		{"id":"f","type":"fill","fill":{"pump":1,"stock_port":8,"cell_port":1,"volume_ml":6,"rate_ml_min":5}},
		{"id":"q","type":"acquire","needs":["f"]},
		{"id":"r","type":"retrieve","needs":["q"]},
		{"id":"n","type":"analyze","needs":["r"]},
		{"id":"m","type":"ml-classify","seed":7,"needs":["r"]}]}`))
	f.Add([]byte(`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"jkem","method":"Status","needs":["a"]}]}`))
	f.Add([]byte(`{"name":"x","nodes":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":"x","nodes":[{"id":"a","type":"acquire","acquire":{"cv":{"points":-1}}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
		if _, err := spec.TopoOrder(); err != nil {
			t.Fatalf("accepted spec has no topo order: %v", err)
		}
		encoded, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		again, err := DecodeSpec(encoded)
		if err != nil {
			t.Fatalf("round-tripped spec rejected: %v\n  %s", err, encoded)
		}
		if len(again.Nodes) != len(spec.Nodes) || again.Name != spec.Name {
			t.Fatalf("round-trip changed the spec: %d/%q vs %d/%q",
				len(again.Nodes), again.Name, len(spec.Nodes), spec.Name)
		}
		// Spec digests must be stable across the round trip — the cache
		// key depends on it.
		for i := range spec.Nodes {
			if spec.Nodes[i].SpecDigest() != again.Nodes[i].SpecDigest() {
				t.Fatalf("node %q digest unstable across round trip", spec.Nodes[i].ID)
			}
		}
	})
}
