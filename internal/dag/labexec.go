package dag

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"ice/internal/analysis"
	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/ml"
	"ice/internal/potentiostat"
	"ice/internal/units"
)

// DefaultClassifierSeed is the training seed ml-classify nodes use
// when the spec does not pin one. The seed fully determines the
// ensemble, so the verdict for a given measurement is reproducible
// across processes and facilities.
const DefaultClassifierSeed = 7

var (
	classifierMu    sync.Mutex
	classifierCache = map[int64]*ml.Ensemble{}
)

// ClassifierForSeed trains (once per process) and returns the
// normality classifier for a seed. Training is deterministic in the
// seed, so two facilities running the same spec agree on verdicts.
func ClassifierForSeed(seed int64) (*ml.Ensemble, error) {
	classifierMu.Lock()
	defer classifierMu.Unlock()
	if e, ok := classifierCache[seed]; ok {
		return e, nil
	}
	e, _, err := ml.TrainNormalityClassifier(ml.GenerateConfig{
		PerClass: 12,
		Samples:  300,
		BaseSeed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("dag: train classifier (seed %d): %w", seed, err)
	}
	classifierCache[seed] = e
	return e, nil
}

// LabExecutor runs DAG nodes against a live lab: pyro RPCs over the
// control channel, measurement retrieval over the data channel, and
// local analysis — the same split as the hardwired A–E workflow.
type LabExecutor struct {
	Session *core.RemoteSession
	Mount   datachan.Share
	// WaitPoll/WaitTimeout bound the data-channel wait for a
	// measurement file (defaults 20ms / 2m, as the CV workflow).
	WaitPoll    time.Duration
	WaitTimeout time.Duration
	// Classifier, when set, overrides seed-derived training for
	// ml-classify nodes (the smoke drills share one trained ensemble
	// between the classic and DAG paths this way).
	Classifier *ml.Ensemble
}

func (x *LabExecutor) waitPoll() time.Duration {
	if x.WaitPoll > 0 {
		return x.WaitPoll
	}
	return 20 * time.Millisecond
}

func (x *LabExecutor) waitTimeout() time.Duration {
	if x.WaitTimeout > 0 {
		return x.WaitTimeout
	}
	return 2 * time.Minute
}

// RunNode dispatches one node by type.
func (x *LabExecutor) RunNode(ctx context.Context, inv *Invocation) (*NodeResult, []byte, error) {
	n := inv.Node
	switch n.Type {
	case TypePyro:
		return x.runPyro(ctx, n)
	case TypeFill:
		return x.runFill(ctx, n)
	case TypeAcquire:
		return x.runAcquire(ctx, inv)
	case TypeRetrieve:
		return x.runRetrieve(ctx, inv)
	case TypeAnalyze:
		return x.runAnalyze(inv)
	case TypeClassify:
		return x.runClassify(inv)
	}
	return nil, nil, fmt.Errorf("no executor for node type %q", n.Type)
}

func (x *LabExecutor) runPyro(ctx context.Context, n *Node) (*NodeResult, []byte, error) {
	x.Session.BindTraceContext(ctx)
	if n.Object == "sp200" && n.Method == "DisconnectSP200" {
		// Teardown must also succeed when the upstream acquire was served
		// from cache or a checkpoint and the instrument never powered on;
		// ResetSP200 is the disconnect that tolerates the off state.
		if err := x.Session.ResetSP200(); err != nil {
			return nil, nil, fmt.Errorf("%s.%s: %w", n.Object, n.Method, err)
		}
		return &NodeResult{Output: "disconnected"}, nil, nil
	}
	out, err := x.Session.Call(n.Object, n.Method, n.Args...)
	if err != nil {
		return nil, nil, fmt.Errorf("%s.%s: %w", n.Object, n.Method, err)
	}
	return &NodeResult{Output: out}, nil, nil
}

func (x *LabExecutor) runFill(ctx context.Context, n *Node) (*NodeResult, []byte, error) {
	x.Session.BindTraceContext(ctx)
	f := n.Fill
	steps := []struct {
		label string
		call  func() (string, error)
	}{
		{"Set_Rate_SyringePump", func() (string, error) { return x.Session.SetRateSyringePump(f.PumpAddr, f.RateMLMin) }},
		{"Set_Port_SyringePump", func() (string, error) { return x.Session.SetPortSyringePump(f.PumpAddr, f.StockPort) }},
		{"Withdraw_SyringePump", func() (string, error) { return x.Session.WithdrawSyringePump(f.PumpAddr, f.VolumeML) }},
		{"Set_Port_SyringePump", func() (string, error) { return x.Session.SetPortSyringePump(f.PumpAddr, f.CellPort) }},
		{"Dispense_SyringePump", func() (string, error) { return x.Session.DispenseSyringePump(f.PumpAddr, f.VolumeML) }},
	}
	for _, s := range steps {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if _, err := s.call(); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", s.label, err)
		}
	}
	return &NodeResult{Output: fmt.Sprintf("filled %.1f mL via pump %d", f.VolumeML, f.PumpAddr)}, nil, nil
}

// runAcquire drives the six-step SP200 pipeline plus the blocking
// result wait. inv.OnMeasured fires as soon as the remote file
// exists — the acquire→retrieve boundary where the engine can release
// the instrument gate. The node's digest is the export-side SHA-256,
// read over the data channel after the instrument is free.
func (x *LabExecutor) runAcquire(ctx context.Context, inv *Invocation) (*NodeResult, []byte, error) {
	n := inv.Node
	x.Session.BindTraceContext(ctx)
	x.Session.BindCallContext(ctx)
	defer x.Session.BindCallContext(nil)
	// Clear any stale SP200 state from a previous node or crashed
	// attempt, exactly as the hardwired workflow does before task D.
	if err := x.Session.ResetSP200(); err != nil {
		return nil, nil, fmt.Errorf("reset sp200: %w", err)
	}
	steps := []struct {
		label string
		call  func() (string, error)
	}{
		{"call_Initialize_SP200_API", func() (string, error) { return x.Session.CallInitializeSP200API(n.Acquire.System) }},
		{"call_Connect_SP200", x.Session.CallConnectSP200},
		{"call_Load_Firmware_SP200", x.Session.CallLoadFirmwareSP200},
		{"call_Initialize_CV_Tech_SP200", func() (string, error) { return x.Session.CallInitializeCVTechSP200(n.Acquire.CV) }},
		{"call_Load_Technique_SP200", x.Session.CallLoadTechniqueSP200},
		{"call_Start_Channel_SP200", x.Session.CallStartChannelSP200},
	}
	for i, s := range steps {
		if _, err := s.call(); err != nil {
			return nil, nil, fmt.Errorf("step %d %s: %w", i+1, s.label, err)
		}
	}
	fileName, err := x.Session.CallGetTechPathRslt()
	if err != nil {
		return nil, nil, fmt.Errorf("step 7 call_Get_Tech_Path_Rslt: %w", err)
	}
	if inv.OnMeasured != nil {
		inv.OnMeasured(fileName)
	}
	// The instrument is free; the digest read rides the data channel.
	remoteSum, remoteSize, err := x.Mount.Checksum(fileName)
	if err != nil {
		return nil, nil, fmt.Errorf("checksum %q: %w", fileName, err)
	}
	return &NodeResult{
		File:   fileName,
		Digest: remoteSum,
		Output: fmt.Sprintf("measured %s (%d bytes)", fileName, remoteSize),
	}, nil, nil
}

// runRetrieve pulls the acquire dependency's measurement over the
// data channel with the workflow's end-to-end verification, and
// additionally pins the bytes to the digest the acquire node
// recorded — a re-acquisition cannot masquerade as the original.
func (x *LabExecutor) runRetrieve(ctx context.Context, inv *Invocation) (*NodeResult, []byte, error) {
	acq := inv.Deps[inv.Node.depOfType(specIndex(inv), TypeAcquire)]
	if acq == nil || acq.File == "" {
		return nil, nil, fmt.Errorf("acquire dependency reported no measurement file")
	}
	waitCtx, cancel := context.WithTimeout(ctx, x.waitTimeout())
	defer cancel()
	data, gotName, err := x.Mount.WaitForContext(waitCtx, acq.File, x.waitPoll())
	if err != nil {
		return nil, nil, fmt.Errorf("data channel: %w", err)
	}
	localSum := sha256Sum(data)
	remoteSum, remoteSize, err := x.Mount.Checksum(gotName)
	if err != nil {
		return nil, nil, fmt.Errorf("data channel checksum: %w", err)
	}
	if remoteSum != localSum || remoteSize != int64(len(data)) {
		return nil, nil, fmt.Errorf("measurement file %q failed end-to-end verification (local %d bytes sha %.8s, remote %d bytes sha %.8s)",
			gotName, len(data), localSum, remoteSize, remoteSum)
	}
	if acq.Digest != "" && acq.Digest != localSum {
		return nil, nil, fmt.Errorf("measurement file %q changed since acquisition (acquired sha %.8s, retrieved sha %.8s)",
			gotName, acq.Digest, localSum)
	}
	return &NodeResult{
		File:   gotName,
		Digest: localSum,
		Output: fmt.Sprintf("retrieved %d bytes, end-to-end verified", len(data)),
	}, data, nil
}

func (x *LabExecutor) runAnalyze(inv *Invocation) (*NodeResult, []byte, error) {
	data, err := retrievePayload(inv)
	if err != nil {
		return nil, nil, err
	}
	mf, err := potentiostat.ParseMPT(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("parse measurements: %w", err)
	}
	e, i := analysis.FromRecords(mf.Records)
	summary, err := analysis.AnalyzeCV(e, i, units.Celsius(25))
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: %w", err)
	}
	return &NodeResult{
		Points:       len(mf.Records),
		AnodicPeakUA: summary.AnodicPeak.Microamperes(),
		Output:       summary.String(),
	}, nil, nil
}

func (x *LabExecutor) runClassify(inv *Invocation) (*NodeResult, []byte, error) {
	data, err := retrievePayload(inv)
	if err != nil {
		return nil, nil, err
	}
	clf := x.Classifier
	if clf == nil {
		clf, err = ClassifierForSeed(inv.Node.Seed)
		if err != nil {
			return nil, nil, err
		}
	}
	mf, err := potentiostat.ParseMPT(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("parse measurements: %w", err)
	}
	e, i := analysis.FromRecords(mf.Records)
	feats, err := ml.Features(e, i)
	if err != nil {
		return nil, nil, fmt.Errorf("feature extraction: %w", err)
	}
	class, err := clf.Predict(feats)
	if err != nil {
		return nil, nil, fmt.Errorf("classification: %w", err)
	}
	return &NodeResult{
		Class:     class,
		ClassName: ml.ClassName(class),
		Output:    fmt.Sprintf("normality verdict: %s", ml.ClassName(class)),
	}, nil, nil
}

// retrievePayload finds the retrieve dependency's bytes in the
// invocation payload map.
func retrievePayload(inv *Invocation) ([]byte, error) {
	for dep, res := range inv.Deps {
		if res.Type == TypeRetrieve {
			if data, ok := inv.Payload[dep]; ok {
				return data, nil
			}
			return nil, fmt.Errorf("retrieve dependency %q has no payload (blob evicted?)", dep)
		}
	}
	return nil, fmt.Errorf("no retrieve dependency resolved")
}

// specIndex builds a type lookup over the invocation's dependencies
// so Node.depOfType works without the full spec.
func specIndex(inv *Invocation) map[string]*Node {
	m := make(map[string]*Node, len(inv.Deps))
	for id, res := range inv.Deps {
		m[id] = &Node{ID: id, Type: res.Type}
	}
	return m
}
