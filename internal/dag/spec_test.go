package dag

import (
	"strings"
	"testing"
)

func decodeErr(t *testing.T, doc string) error {
	t.Helper()
	_, err := DecodeSpec([]byte(doc))
	if err == nil {
		t.Fatalf("DecodeSpec accepted invalid document:\n%s", doc)
	}
	return err
}

func TestDecodeSpecValid(t *testing.T) {
	s, err := DecodeSpec([]byte(`{
		"name": "ok",
		"nodes": [
			{"id": "fill", "type": "fill", "fill": {"pump": 1, "stock_port": 8, "cell_port": 1, "volume_ml": 6, "rate_ml_min": 5}},
			{"id": "acq", "type": "acquire", "needs": ["fill"]},
			{"id": "ret", "type": "retrieve", "needs": ["acq"]},
			{"id": "ana", "type": "analyze", "needs": ["ret"]},
			{"id": "cls", "type": "ml-classify", "needs": ["ret"]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	// Defaults resolved at decode time: acquire gets the paper params,
	// classify gets the default seed.
	byID := s.byID()
	if got := byID["acq"].Acquire.CV.Points; got != 1200 {
		t.Errorf("acquire points = %d, want paper default 1200", got)
	}
	if got := byID["cls"].Seed; got != DefaultClassifierSeed {
		t.Errorf("classify seed = %d, want default %d", got, DefaultClassifierSeed)
	}
}

func TestValidateSelfEdge(t *testing.T) {
	err := decodeErr(t, `{"name": "x", "nodes": [
		{"id": "a", "type": "pyro", "object": "jkem", "method": "Status", "needs": ["a"]}
	]}`)
	if !strings.Contains(err.Error(), "depends on itself") {
		t.Errorf("self-edge error = %v", err)
	}
}

func TestValidateDuplicateIDs(t *testing.T) {
	err := decodeErr(t, `{"name": "x", "nodes": [
		{"id": "a", "type": "pyro", "object": "jkem", "method": "Status"},
		{"id": "a", "type": "pyro", "object": "jkem", "method": "Status"}
	]}`)
	if !strings.Contains(err.Error(), "duplicate node id") {
		t.Errorf("duplicate-id error = %v", err)
	}
}

func TestValidateMissingReference(t *testing.T) {
	err := decodeErr(t, `{"name": "x", "nodes": [
		{"id": "a", "type": "pyro", "object": "jkem", "method": "Status", "needs": ["ghost"]}
	]}`)
	if !strings.Contains(err.Error(), "unknown node") {
		t.Errorf("missing-reference error = %v", err)
	}
}

func TestValidateEmptyDAG(t *testing.T) {
	err := decodeErr(t, `{"name": "x", "nodes": []}`)
	if !strings.Contains(err.Error(), "no nodes") {
		t.Errorf("empty-dag error = %v", err)
	}
}

func TestValidateCycle(t *testing.T) {
	err := decodeErr(t, `{"name": "x", "nodes": [
		{"id": "a", "type": "pyro", "object": "jkem", "method": "Status", "needs": ["c"]},
		{"id": "b", "type": "pyro", "object": "jkem", "method": "Status", "needs": ["a"]},
		{"id": "c", "type": "pyro", "object": "jkem", "method": "Status", "needs": ["b"]}
	]}`)
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle error = %v", err)
	}
}

func TestValidateTypeRules(t *testing.T) {
	cases := map[string]string{
		`{"name":"x","nodes":[{"id":"a","type":"warp"}]}`:                                                     "unknown type",
		`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"oven","method":"Status"}]}`:                   "object must be",
		`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"jkem"}]}`:                                     "needs a method",
		`{"name":"x","nodes":[{"id":"a","type":"fill"}]}`:                                                     "needs a \"fill\" block",
		`{"name":"x","nodes":[{"id":"a","type":"retrieve"}]}`:                                                 "exactly one acquire",
		`{"name":"x","nodes":[{"id":"a","type":"analyze"}]}`:                                                  "exactly one retrieve",
		`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"jkem","method":"Status","args":[[1,2]]}]}`:    "must be a scalar",
		`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"jkem","method":"Status"}]} {"trailing":true}`: "trailing data",
		`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"jkem","method":"Status","bogus":1}]}`:         "unknown field",
	}
	for doc, want := range cases {
		err := decodeErr(t, doc)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("doc %s: error %v, want substring %q", doc, err, want)
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	doc := `{"name": "x", "nodes": [
		{"id": "z", "type": "pyro", "object": "jkem", "method": "Status"},
		{"id": "m", "type": "pyro", "object": "jkem", "method": "Status"},
		{"id": "a", "type": "pyro", "object": "jkem", "method": "Status", "needs": ["z", "m"]}
	]}`
	s, err := DecodeSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "m,z,a" {
		t.Errorf("topo order = %v, want lexicographic m,z,a", order)
	}
}

func TestSpecDigestIgnoresIdentity(t *testing.T) {
	a := &Node{ID: "one", Type: TypeAnalyze, Needs: []string{"x"}}
	b := &Node{ID: "two", Type: TypeAnalyze, Needs: []string{"y"}, NoCache: true}
	if a.SpecDigest() != b.SpecDigest() {
		t.Error("digests differ across identity-only changes")
	}
	c := &Node{ID: "one", Type: TypeClassify, Seed: 9}
	if a.SpecDigest() == c.SpecDigest() {
		t.Error("digests collide across different node content")
	}
}

func TestCacheKeyInputOrderIndependent(t *testing.T) {
	k1 := CacheKey("spec", []string{"aaa", "bbb"})
	k2 := CacheKey("spec", []string{"bbb", "aaa"})
	if k1 != k2 {
		t.Error("cache key depends on input digest order")
	}
	if CacheKey("spec", []string{"aaa"}) == k1 {
		t.Error("cache key ignores inputs")
	}
}
