package sched

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/potentiostat"
	"ice/internal/sched/health"
	"ice/internal/workflow"
)

// TestWedgeDrillEndToEnd is the ISSUE's acceptance drill, in-process
// and race-detector friendly: the potentiostat wedges mid-acquisition,
// the acquire budget trips the breaker, the job checkpoint-requeues
// with its journal intact, the fence aborts the wedged run, a recovery
// probe closes the breaker, and the job completes exactly once.
func TestWedgeDrillEndToEnd(t *testing.T) {
	base := t.TempDir()
	labDir := filepath.Join(base, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	connector := &DeploymentConnector{D: d, Host: netsim.HostDGX}

	s, err := New(Config{
		Dir:      filepath.Join(base, "state"),
		Workers:  2,
		LeaseTTL: 2 * time.Second,
		Health: HealthConfig{
			ProbeInterval:    100 * time.Millisecond,
			ProbeTimeout:     500 * time.Millisecond,
			FailureThreshold: 2,
			OpenFor:          500 * time.Millisecond,
			RetryBudget:      2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := d.Agent.SP200()
	var wedgeOnce sync.Once
	s.SetRunner(&LabRunner{
		Connector:   connector,
		Leases:      s.Leases(),
		Dir:         s.Dir(),
		WaitPoll:    10 * time.Millisecond,
		WaitTimeout: 30 * time.Second,
		// Generous enough that a healthy acquisition never blows it
		// even under the race detector's overhead; the wedged attempt
		// still trips it, just 2.5s in.
		AcquireBudget: 2500 * time.Millisecond,
		OnTask: func(jobID string, rec workflow.TaskRecord) {
			if rec.TaskID == "C" && rec.Status == "OK" {
				wedgeOnce.Do(func() {
					sp.InjectFault(potentiostat.DeviceFault{Mode: potentiostat.FaultWedgeBusy})
				})
			}
		},
	})
	prober := &LabProber{Connector: connector}
	s.RegisterProber(ResourceSP200, prober.ProberFor(ResourceSP200))
	s.RegisterProber(ResourceJKem, prober.ProberFor(ResourceJKem))
	s.SetFence(prober.FenceFor)
	t.Cleanup(prober.Close)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	job, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the wedge must checkpoint-requeue the job.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, ok := s.Job(job.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if cur.Resumed {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job ended %s before any requeue: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job was never checkpoint-requeued")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: wait for the quarantine fence to abort the wedged run
	// (busy drops to 0 while the fault is still injected), then heal
	// the instrument.
	for !strings.Contains(sp.Status(), "busy=0") {
		if time.Now().After(deadline) {
			t.Fatalf("fence never aborted the wedged acquisition: %s", sp.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	sp.ClearFault()

	// Phase 3: recovery probe closes the breaker; the job resumes from
	// its journal and completes.
	var final Job
	for {
		cur, _ := s.Job(job.ID)
		if cur.State.Terminal() {
			final = cur
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish after recovery")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.Attempts < 2 {
		t.Fatalf("job finished in %d attempt(s); the wedge never bit", final.Attempts)
	}

	// Exactly-once audit: one fill dispense (tasks A-C restored from
	// the journal, not re-run) and one completed acquisition (the
	// wedged run was fenced into an abort).
	dispenses := 0
	for _, line := range d.Agent.SBC().CommandLog() {
		if strings.Contains(line, "SYRINGEPUMP_DISPENSE") {
			dispenses++
		}
	}
	if dispenses != 1 {
		t.Errorf("exactly-once violated: %d dispense commands, want 1", dispenses)
	}
	completed := 0
	for _, line := range sp.EventLog() {
		if strings.Contains(line, "> data record") {
			completed++
		}
	}
	if completed != 1 {
		t.Errorf("exactly-once violated: %d completed acquisitions, want 1", completed)
	}

	// The breaker's history shows the round trip and nothing leaked.
	sawRoundTrip := false
	for _, ih := range s.Health().Snapshot() {
		if ih.Resource == ResourceSP200 && ih.Opens >= 1 && ih.Recovered >= 1 && ih.State == health.Closed {
			sawRoundTrip = true
		}
	}
	if !sawRoundTrip {
		t.Errorf("no open→recover round trip in health snapshot: %+v", s.Health().Snapshot())
	}
	if leases := s.Leases().Active(); len(leases) != 0 {
		t.Errorf("leaked leases: %+v", leases)
	}
}

// instrumentErr is classified ClassInstrument by health.Classify.
var instrumentErr = errors.New("potentiostat: injected device fault: StartChannel")

func TestCheckpointRequeueExhaustsRetryBudget(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	runner.failWith = instrumentErr
	s := newTestScheduler(t, t.TempDir(), Config{
		Workers: 1,
		Health: HealthConfig{
			// High threshold: the breaker must not open, so every retry
			// redispatches immediately and the budget alone stops it.
			FailureThreshold: 100,
			RetryBudget:      2,
		},
	}, runner)
	defer s.Stop()

	job, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var final Job
	for {
		cur, _ := s.Job(job.ID)
		if cur.State.Terminal() {
			final = cur
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed after budget exhaustion", final.State)
	}
	// 1 initial + RetryBudget extra attempts.
	if final.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + retry budget 2)", final.Attempts)
	}
	if !final.Resumed {
		t.Error("job was never checkpoint-requeued")
	}
}

func TestWorkloadErrorsDoNotRequeue(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	runner.failWith = errors.New("cv spec: scan rate out of range")
	s := newTestScheduler(t, t.TempDir(), Config{
		Workers: 1,
		Health:  HealthConfig{RetryBudget: 2},
	}, runner)
	defer s.Stop()

	job, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, _ := s.Job(job.ID)
		if cur.State.Terminal() {
			if cur.State != StateFailed {
				t.Fatalf("state = %s, want failed", cur.State)
			}
			if cur.Attempts != 1 {
				t.Errorf("attempts = %d: a workload error must not burn retry budget", cur.Attempts)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestUnmeetableDeadlineRejectedAtAdmission(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	s := newTestScheduler(t, t.TempDir(), Config{
		Workers:    1,
		RetryAfter: 2 * time.Second,
		Health:     HealthConfig{MinDeadline: 500 * time.Millisecond},
	}, runner)
	defer s.Stop()

	_, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV, DeadlineMS: 100})
	var unavail *Unavailable
	if !errors.As(err, &unavail) {
		t.Fatalf("Submit = %v, want *Unavailable", err)
	}
	if unavail.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", unavail.RetryAfter)
	}
	if !strings.Contains(unavail.Reason, "below this facility's minimum") {
		t.Errorf("Reason = %q", unavail.Reason)
	}
	// A meetable deadline (and no deadline at all) still admits.
	if _, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV, DeadlineMS: 60_000}); err != nil {
		t.Errorf("meetable deadline rejected: %v", err)
	}
	if _, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV}); err != nil {
		t.Errorf("no-deadline submit rejected: %v", err)
	}
}

func TestGatewayMaps503WithRetryAfter(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	s, srv := newTestGateway(t, Config{
		Workers:    1,
		RetryAfter: 2 * time.Second,
		Health:     HealthConfig{MinDeadline: 500 * time.Millisecond},
	}, runner)
	defer s.Stop()
	defer srv.Close()

	// Unmeetable deadline → 503 + Retry-After, marked permanent so
	// clients stop resubmitting the same doomed spec.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"tenant": "acl", "kind": "cv", "deadline_ms": 100}`))
	if err != nil {
		t.Fatal(err)
	}
	var deadlineErr struct {
		Error     string `json:"error"`
		Permanent bool   `json:"permanent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&deadlineErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After header")
	}
	if !deadlineErr.Permanent {
		t.Error("deadline-floor rejection is not marked permanent")
	}

	// All-quarantined facility → 503 as well.
	s.Health().ReportWedge(ResourceSP200, "drill")
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"tenant": "acl", "kind": "cv"}`))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr struct {
		Error     string `json:"error"`
		Permanent bool   `json:"permanent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-quarantined submit = %s, want 503", resp.Status)
	}
	if !strings.Contains(apiErr.Error, "quarantined") {
		t.Errorf("error = %q, want quarantine reason", apiErr.Error)
	}
	if apiErr.Permanent {
		t.Error("quarantine rejection marked permanent: recovery probes make it retriable")
	}

	// healthz exposes the quarantine.
	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Quarantined int                     `json:"quarantined"`
		Instruments []health.ResourceHealth `json:"instruments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Quarantined != 1 {
		t.Errorf("healthz quarantined = %d, want 1", hz.Quarantined)
	}
}

func TestJobDeadlineBoundsRunnerContext(t *testing.T) {
	runner := newStubRunner()
	runner.blockCtx = true // block until the job's ctx is cancelled
	s := newTestScheduler(t, t.TempDir(), Config{
		Workers: 1,
		Health:  HealthConfig{MinDeadline: 10 * time.Millisecond, RetryBudget: 2},
	}, runner)
	defer s.Stop()

	job, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV, DeadlineMS: 300})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-runner.started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never dispatched")
	}
	runner.mu.Lock()
	ctx := runner.lastCtx
	runner.mu.Unlock()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("runner context carries no deadline for a deadline_ms job")
	}

	// The deadline fires; the job must FAIL (its own budget ran out),
	// never checkpoint-requeue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, _ := s.Job(job.ID)
		if cur.State.Terminal() {
			if cur.State != StateFailed {
				t.Fatalf("state = %s, want failed", cur.State)
			}
			if cur.Attempts != 1 {
				t.Errorf("attempts = %d: a blown job deadline must not requeue", cur.Attempts)
			}
			if !strings.Contains(cur.Error, "end-to-end budget") {
				t.Errorf("error = %q, want end-to-end budget attribution", cur.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLeaseQuarantineInteraction covers the satellite: a lease whose
// holder's heartbeat died is revoked by TTL, the revocation feeds the
// breaker, the quarantined instrument grants no new lease, and
// recovery (via a half-open probe) restores granting.
func TestLeaseQuarantineInteraction(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	s := newTestScheduler(t, t.TempDir(), Config{
		Workers:  1,
		LeaseTTL: 50 * time.Millisecond,
		Health: HealthConfig{
			ProbeInterval:    time.Hour, // probes only via ProbeNow
			FailureThreshold: 1,
			OpenFor:          50 * time.Millisecond,
		},
	}, runner)
	defer s.Stop()

	healthy := true
	var mu sync.Mutex
	s.RegisterProber(ResourceSP200, func(ctx context.Context, recovering bool) error {
		mu.Lock()
		defer mu.Unlock()
		if !healthy {
			return instrumentErr
		}
		return nil
	})

	// Hold the lease and let the heartbeat die (never renew).
	lease, err := s.Leases().TryAcquire(ResourceSP200, "wedged-holder")
	if err != nil {
		t.Fatal(err)
	}
	_ = lease // the holder wedges: no Renew, no Release
	mu.Lock()
	healthy = false
	mu.Unlock()
	time.Sleep(80 * time.Millisecond) // TTL lapses

	// The next acquisition attempt revokes the stale grant; the
	// revocation reports to the breaker (threshold 1 → open). The
	// revocation callback is asynchronous, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Health().Quarantined(ResourceSP200) {
		if l, err := s.Leases().TryAcquire(ResourceSP200, "next-holder"); err == nil {
			// Won the pre-quarantine race; give it back and retry.
			l.Release()
		}
		if time.Now().After(deadline) {
			t.Fatal("lease expiry never quarantined the instrument")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// While quarantined, the free slot still grants nothing.
	if _, err := s.Leases().TryAcquire(ResourceSP200, "eager-holder"); err == nil {
		t.Fatal("quarantined instrument granted a lease")
	} else if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("TryAcquire = %v, want quarantine refusal", err)
	}

	// Heal, cool down, recover via a half-open probe; granting resumes.
	mu.Lock()
	healthy = true
	mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	s.Health().ProbeNow(ResourceSP200)
	if s.Health().Quarantined(ResourceSP200) {
		t.Fatal("instrument still quarantined after a successful recovery probe")
	}
	l, err := s.Leases().TryAcquire(ResourceSP200, "recovered-holder")
	if err != nil {
		t.Fatalf("TryAcquire after recovery: %v", err)
	}
	l.Release()
}
