package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ice/internal/campaign"
	"ice/internal/core"
	"ice/internal/dag"
	"ice/internal/datachan"
	"ice/internal/ml"
	"ice/internal/pyro"
	"ice/internal/telemetry"
	"ice/internal/trace"
	"ice/internal/workflow"
)

// Connector opens cross-facility handles for one job. The gateway
// daemon uses a TCP connector towards a real control agent; tests and
// the smoke target use a Deployment connector over netsim.
type Connector interface {
	// ConnectSession opens instrument handles (cv jobs).
	ConnectSession() (*core.RemoteSession, datachan.Share, error)
	// ConnectLab opens extended-lab handles (campaign jobs; the agent
	// must be serving the synthesis and robot stations).
	ConnectLab() (*core.LabSession, datachan.Share, error)
}

// DeploymentConnector serves jobs from an in-process netsim
// Deployment — the shape every test and the smoke target use.
type DeploymentConnector struct {
	// D is the deployed ICE.
	D *core.Deployment
	// Host is the remote end of the connections (e.g. netsim.HostDGX).
	Host string
	// NewMount, when set, replaces the default data mount — chaos tests
	// hand out reliable mounts that ride out injected faults.
	NewMount func() (datachan.Share, error)
}

// ConnectSession implements Connector.
func (c *DeploymentConnector) ConnectSession() (*core.RemoteSession, datachan.Share, error) {
	session, mount, err := c.D.ConnectFrom(c.Host)
	if err != nil {
		return nil, nil, err
	}
	share, err := c.replaceMount(mount)
	if err != nil {
		session.Close()
		return nil, nil, err
	}
	return session, share, nil
}

// ConnectLab implements Connector.
func (c *DeploymentConnector) ConnectLab() (*core.LabSession, datachan.Share, error) {
	session, mount, err := c.D.ConnectLabFrom(c.Host)
	if err != nil {
		return nil, nil, err
	}
	share, err := c.replaceMount(mount)
	if err != nil {
		session.Close()
		return nil, nil, err
	}
	return session, share, nil
}

func (c *DeploymentConnector) replaceMount(mount *datachan.Mount) (datachan.Share, error) {
	if c.NewMount == nil {
		return mount, nil
	}
	mount.Close()
	return c.NewMount()
}

// NetConnector reaches a control agent over real TCP — the daemon's
// production path (cmd/icegated -agent).
type NetConnector struct {
	// Agent is the control agent's host.
	Agent string
	// ControlPort and DataPort are the paper's channel ports.
	ControlPort, DataPort int
	// Token is the control-channel credential.
	Token string
	// Reliable retries control commands with exactly-once semantics.
	Reliable bool
	// ReliableData self-heals the data mount across redials.
	ReliableData bool
	// WireVersion caps the control-channel framing: 0 negotiates the
	// newest (binary v2, falling back against old agents), 1 pins the
	// legacy JSON framing.
	WireVersion int
}

func (c *NetConnector) uri() pyro.URI {
	return pyro.URI{Object: core.JKemObject, Host: c.Agent, Port: c.ControlPort}
}

func (c *NetConnector) dataAddr() string {
	return fmt.Sprintf("%s:%d", c.Agent, c.DataPort)
}

func (c *NetConnector) mount() (datachan.Share, error) {
	if c.ReliableData {
		addr := c.dataAddr()
		return datachan.NewReliableMount(func() (net.Conn, error) {
			return net.Dial("tcp", addr)
		}), nil
	}
	conn, err := net.Dial("tcp", c.dataAddr())
	if err != nil {
		return nil, err
	}
	return datachan.NewMount(conn), nil
}

// ConnectSession implements Connector.
func (c *NetConnector) ConnectSession() (*core.RemoteSession, datachan.Share, error) {
	opts := core.SessionOptions{Token: c.Token, WireVersion: c.WireVersion}
	var session *core.RemoteSession
	if c.Reliable {
		session = core.ConnectSessionReliable(c.uri(), nil, opts)
	} else {
		var err error
		session, err = core.ConnectSessionOpts(c.uri(), nil, opts)
		if err != nil {
			return nil, nil, err
		}
	}
	mount, err := c.mount()
	if err != nil {
		session.Close()
		return nil, nil, err
	}
	return session, mount, nil
}

// ConnectLab implements Connector.
func (c *NetConnector) ConnectLab() (*core.LabSession, datachan.Share, error) {
	session, err := core.ConnectLabSessionToken(c.uri(), nil, c.Token)
	if err != nil {
		return nil, nil, err
	}
	mount, err := c.mount()
	if err != nil {
		session.Close()
		return nil, nil, err
	}
	return session, mount, nil
}

// CVResult is a cv job's JSON result: the digest-verified measurement
// and its analysis.
type CVResult struct {
	File         string  `json:"file"`
	SHA256       string  `json:"sha256"`
	Points       int     `json:"points"`
	AnodicPeakUA float64 `json:"anodic_peak_ua"`
	// ClassName is the ML normality verdict when the runner carries a
	// classifier ("" otherwise).
	ClassName string `json:"class_name,omitempty"`
}

// RoundResult is one completed campaign round.
type RoundResult struct {
	Round           int     `json:"round"`
	ConcentrationMM float64 `json:"concentration_mm"`
	AchievedMM      float64 `json:"achieved_mm,omitempty"`
	ScanRateMVs     float64 `json:"scan_rate_mvs"`
	PeakUA          float64 `json:"peak_ua"`
}

// CellResult is one campaign cell's outcome.
type CellResult struct {
	Name   string        `json:"name"`
	Rounds []RoundResult `json:"rounds"`
	Error  string        `json:"error,omitempty"`
}

// CampaignResult is a campaign job's JSON result.
type CampaignResult struct {
	Cells []CellResult `json:"cells"`
}

// LabRunner executes admitted jobs against the lab: cv jobs through
// the paper's tasks A–E (crash-recoverable via the workflow checkpoint
// journal), campaign jobs through campaign.Fleet. Instrument access is
// guarded by lease-backed gates that release post-GetTechPathRslt, so
// one tenant's WAN retrieval and analysis overlap the next tenant's
// instrument time.
type LabRunner struct {
	// Connector opens per-job handles.
	Connector Connector
	// Leases is the gateway's lease manager.
	Leases *Leases
	// Dir holds per-job workflow checkpoint journals ("<job>.journal").
	Dir string
	// CampaignCVPoints is the per-round acquisition size for campaign
	// cells (default 300).
	CampaignCVPoints int
	// WaitPoll and WaitTimeout bound cv measurement retrieval.
	WaitPoll    time.Duration
	WaitTimeout time.Duration
	// StreamAnalysis makes cv jobs tail the measurement file during
	// acquisition and analyze online, so the verdict is ready at
	// instrument release; stream failures fall back to the classic
	// retrieval inside the workflow.
	StreamAnalysis bool
	// AcquireBudget bounds task D's acquire phase (connect through the
	// on-instrument wait). When zero and the job carries an end-to-end
	// deadline, a budget is derived from the remaining deadline, so a
	// wedged potentiostat surfaces as a phase timeout in seconds rather
	// than riding out the lease TTL.
	AcquireBudget time.Duration
	// OnTask, when set, observes every workflow checkpoint record as it
	// is journaled, synchronously — crash drills use it to cut the
	// daemon down at an exact task boundary.
	OnTask func(jobID string, rec workflow.TaskRecord)
	// Resources overrides the instrument lease names the runner's gates
	// contend on (default: the shared sp200/jkem pair). A cluster node
	// scopes them per facility ("facA/sp200/ch1") so adopted foreign
	// jobs never collide with local ones in the lease table.
	Resources []string
	// ScanResources is the scan-job analogue of Resources (default:
	// the stem/scan1 lease). Scan jobs never contend on the echem
	// pair, so the two workloads interleave on one scheduler.
	ScanResources []string
	// MirrorJournal, when set, replicates each workflow checkpoint line
	// to the cluster's peer(s) synchronously — the workflow engine does
	// not proceed past a task boundary until the checkpoint is
	// acknowledged remotely, which is what makes exactly-once resume
	// after failover possible.
	MirrorJournal func(jobID string, line []byte) error
	// Metrics receives the runner's dag.* counters when set.
	Metrics *telemetry.Collector
	// Classifier, when set, classifies cv measurements (the verdict
	// lands in CVResult.ClassName) and overrides seed-derived training
	// for DAG ml-classify nodes.
	Classifier *ml.Ensemble
	// DAGWorkers bounds a dag job's concurrent node execution
	// (default 4).
	DAGWorkers int
	// CacheMaxBytes caps the DAG blob cache's object store; least-
	// recently-used blobs are evicted past the cap (0 = unbounded).
	CacheMaxBytes int64
}

// ErrUnknownJobKind marks a job whose kind no runner path handles.
// The scheduler classifies it as a workload fault: the job fails
// terminally and is never requeued — retrying cannot make a kind
// learn to exist.
var ErrUnknownJobKind = errors.New("sched: no runner for job kind")

// Run implements Runner.
func (r *LabRunner) Run(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	switch job.Spec.Kind {
	case KindCV:
		return r.runCV(ctx, job, emit)
	case KindCampaign:
		return r.runCampaign(ctx, job, emit)
	case KindDAG:
		return r.runDAG(ctx, job, emit)
	case KindScan:
		return r.runScan(ctx, job, emit)
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownJobKind, job.Spec.Kind)
	}
}

// journalPath names the job's workflow checkpoint journal.
func (r *LabRunner) journalPath(jobID string) string {
	return filepath.Join(r.Dir, jobID+".journal")
}

// journalTee forwards every checkpoint line to the underlying journal
// file and mirrors it into the job's event stream (and the OnTask
// crash seam), synchronously with the workflow engine.
type journalTee struct {
	file   *core.AppendFile
	jobID  string
	emit   func(string, string)
	onTask func(string, workflow.TaskRecord)
	mirror func(string, []byte) error
}

func (t *journalTee) Write(p []byte) (int, error) {
	n, err := t.file.Write(p)
	if err != nil {
		return n, err
	}
	if t.mirror != nil {
		if err := t.mirror(t.jobID, p); err != nil {
			return n, fmt.Errorf("mirror journal: %w", err)
		}
	}
	var rec workflow.TaskRecord
	if jsonErr := json.Unmarshal(p, &rec); jsonErr == nil && rec.TaskID != "" {
		if t.emit != nil {
			t.emit("workflow", fmt.Sprintf("task %s %s", rec.TaskID, rec.Status))
		}
		if t.onTask != nil {
			t.onTask(t.jobID, rec)
		}
	}
	return n, nil
}

// runCV executes the paper's tasks A–E for one tenant, resuming from
// the checkpoint journal when the job was cut down by a daemon crash.
func (r *LabRunner) runCV(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	_, connSpan := trace.Start(ctx, "sched.connect", trace.ClassControl)
	session, mount, err := r.Connector.ConnectSession()
	connSpan.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("connect: %w", err)
	}
	defer session.Close()
	defer mount.Close()
	// RPCs issued outside any task/phase (the pre-execute reset) parent
	// under the attempt's run span.
	session.BindTraceContext(ctx)
	// Every RPC honours the job's deadline: a run context that expires
	// (end-to-end budget, quarantine cancel) aborts in-flight calls
	// instead of letting them block until the pyro timeout.
	session.BindCallContext(ctx)

	cfg := core.PaperCVWorkflowConfig()
	cfg.TraceLabel = job.ID
	if job.Spec.ScanRateMVs > 0 {
		cfg.CV.RateMVs = job.Spec.ScanRateMVs
	}
	if job.Spec.Points > 0 {
		cfg.CV.Points = job.Spec.Points
	}
	if r.WaitPoll > 0 {
		cfg.WaitPoll = r.WaitPoll
	}
	if r.WaitTimeout > 0 {
		cfg.WaitTimeout = r.WaitTimeout
	}
	cfg.AcquireTimeout = r.phaseBudgets(ctx)
	cfg.StreamAnalysis = r.StreamAnalysis
	cfg.Classifier = r.Classifier

	gate := &InstrumentGate{
		M:         r.Leases,
		Resources: r.gateResources(job),
		Holder:    job.ID,
		TraceCtx:  ctx,
		OnEvent: func(msg string) {
			emit("lease", msg)
		},
	}
	var unlockOnce sync.Once
	unlock := func() { unlockOnce.Do(gate.Unlock) }
	defer unlock()
	// Release the instruments the moment acquisition has landed on the
	// agent's disk — the WAN retrieval and analysis that follow do not
	// need the lab, so the next tenant's job takes the lease now.
	cfg.OnMeasured = func(fileName string) {
		emit("measured", fileName)
		unlock()
	}
	// Task E's instrument shutdown re-acquires the lease: a disconnect
	// must not fire inside another tenant's acquisition on the shared
	// instrument. The pre-lock release covers the resume path where
	// task D was restored from the journal and OnMeasured never fired.
	cfg.TeardownGate = &relockGate{pre: unlock, gate: gate}

	nb, outcome := core.BuildCVWorkflow(session, mount, cfg)

	// Crash recovery: restore completed tasks from the journal the
	// previous daemon incarnation checkpointed.
	if job.Resumed || job.Attempts > 1 {
		if data, err := os.ReadFile(r.journalPath(job.ID)); err == nil {
			records, err := workflow.ReadJournal(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("parse journal: %w", err)
			}
			if n := nb.Restore(records); n > 0 {
				emit("resumed", fmt.Sprintf("%d completed task(s) restored from checkpoint journal", n))
			}
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("read journal: %w", err)
		}
	}

	journal, err := core.OpenAppendFile(r.Dir, job.ID+".journal")
	if err != nil {
		return nil, fmt.Errorf("open journal: %w", err)
	}
	defer journal.Close()
	nb.SetJournal(&journalTee{file: journal, jobID: job.ID, emit: emit, onTask: r.OnTask, mirror: r.MirrorJournal})

	gate.Lock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The shared potentiostat may be mid-pipeline — a previous tenant's
	// campaign, or this job's own crashed attempt. Force it back to its
	// power-on state under the gate, so task D's full bring-up starts
	// from a known baseline. (Resetting outside the gate would disconnect
	// the instrument under another tenant's acquisition.)
	if err := session.ResetSP200(); err != nil {
		return nil, fmt.Errorf("reset instrument: %w", err)
	}
	if err := nb.Execute(ctx); err != nil {
		return nil, err
	}
	result := CVResult{
		File:   outcome.FileName,
		SHA256: outcome.SHA256,
		Points: len(outcome.Records),
	}
	if outcome.Summary != nil {
		result.AnodicPeakUA = outcome.Summary.AnodicPeak.Microamperes()
	}
	if outcome.Classified {
		result.ClassName = outcome.ClassName
	}
	return json.Marshal(result)
}

// runDAG executes a declarative node-graph job through the DAG
// engine: the same connect / journal / instrument-gate scaffolding as
// runCV, with per-node checkpoints in the job's journal and the
// runner-wide content-keyed cache shared across jobs.
func (r *LabRunner) runDAG(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	spec, err := dag.DecodeSpec(job.Spec.DAG)
	if err != nil {
		return nil, err
	}
	_, connSpan := trace.Start(ctx, "sched.connect", trace.ClassControl)
	session, mount, err := r.Connector.ConnectSession()
	connSpan.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("connect: %w", err)
	}
	defer session.Close()
	defer mount.Close()
	session.BindTraceContext(ctx)
	session.BindCallContext(ctx)

	// The cache lives beside the journals and is shared across jobs:
	// a second job submitting the same spec against unchanged content
	// hits on every cacheable node.
	cache, err := dag.OpenCache(filepath.Join(r.Dir, "dagcache"))
	if err != nil {
		return nil, err
	}
	cache.MaxBlobBytes = r.CacheMaxBytes
	cache.Metrics = r.Metrics

	// Crash recovery: replay the per-node checkpoints the previous
	// daemon incarnation journaled.
	var restored []workflow.TaskRecord
	if job.Resumed || job.Attempts > 1 {
		if data, err := os.ReadFile(r.journalPath(job.ID)); err == nil {
			records, err := workflow.ReadJournal(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("parse journal: %w", err)
			}
			restored = records
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("read journal: %w", err)
		}
	}

	journal, err := core.OpenAppendFile(r.Dir, job.ID+".journal")
	if err != nil {
		return nil, fmt.Errorf("open journal: %w", err)
	}
	defer journal.Close()
	tee := &journalTee{file: journal, jobID: job.ID, emit: emit, onTask: r.OnTask, mirror: r.MirrorJournal}

	gate := &InstrumentGate{
		M:         r.Leases,
		Resources: r.gateResources(job),
		Holder:    job.ID,
		TraceCtx:  ctx,
		OnEvent: func(msg string) {
			emit("lease", msg)
		},
	}

	eng := &dag.Engine{
		Spec: spec,
		Exec: &dag.LabExecutor{
			Session:     session,
			Mount:       mount,
			WaitPoll:    r.WaitPoll,
			WaitTimeout: r.WaitTimeout,
			Classifier:  r.Classifier,
		},
		Workers:    r.DAGWorkers,
		Journal:    tee,
		Cache:      cache,
		Gate:       gate,
		Metrics:    r.Metrics,
		TraceLabel: job.ID,
		Restored:   restored,
	}
	res, err := eng.Run(ctx)
	if err != nil {
		return nil, err
	}
	if res.NodesRestored > 0 {
		emit("resumed", fmt.Sprintf("%d completed node(s) restored from checkpoint journal", res.NodesRestored))
	}
	if res.NodesCached > 0 {
		emit("cached", fmt.Sprintf("%d node(s) served from content-keyed cache", res.NodesCached))
	}
	return json.Marshal(res)
}

// gateResources picks the lease names the job's gates contend on: the
// scheduler's per-job assignment when present (health routing), else
// the runner-wide default.
func (r *LabRunner) gateResources(job Job) []string {
	if len(job.Resources) > 0 {
		return job.Resources
	}
	return r.Resources
}

// phaseBudgets derives the acquire-phase sub-budget. An explicit
// AcquireBudget wins; otherwise, when the run context carries an
// end-to-end deadline, the acquire phase gets 60% of what remains —
// enough that a hang inside acquisition is detected and classified as
// a wedge well before the whole budget burns down.
func (r *LabRunner) phaseBudgets(ctx context.Context) time.Duration {
	if r.AcquireBudget > 0 {
		return r.AcquireBudget
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	remaining := time.Until(dl)
	if remaining <= 0 {
		return 0
	}
	return remaining * 6 / 10
}

// relockGate is the teardown locker: Lock releases any still-held
// leases (at most once, shared with the runner's deferred unlock) and
// then re-acquires the gate; Unlock releases it again.
type relockGate struct {
	pre  func()
	gate *InstrumentGate
}

func (r *relockGate) Lock() {
	r.pre()
	r.gate.Lock()
}

func (r *relockGate) Unlock() { r.gate.Unlock() }

// runCampaign executes one or more closed-loop campaigns as a fleet
// sharing the lease-backed instrument gate.
func (r *LabRunner) runCampaign(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	points := r.CampaignCVPoints
	if points <= 0 {
		points = 300
	}
	gate := &InstrumentGate{
		M:         r.Leases,
		Resources: r.gateResources(job),
		Holder:    job.ID,
		TraceCtx:  ctx,
		OnEvent: func(msg string) {
			emit("lease", msg)
		},
	}
	fleet := &campaign.Fleet{Gate: gate}
	var cleanups []func()
	defer func() {
		for _, c := range cleanups {
			c()
		}
	}()
	if err := func() (err error) {
		_, connSpan := trace.Start(ctx, "sched.connect", trace.ClassControl)
		defer func() { connSpan.EndErr(err) }()
		for i, cell := range job.Spec.Cells {
			name := cell.Name
			if name == "" {
				name = fmt.Sprintf("cell-%02d", i+1)
			}
			session, mount, err := r.Connector.ConnectLab()
			if err != nil {
				return fmt.Errorf("connect cell %s: %w", name, err)
			}
			session.BindCallContext(ctx)
			cleanups = append(cleanups, func() { session.Close(); mount.Close() })
			cellName := name
			fleet.Cells = append(fleet.Cells, campaign.FleetCell{
				Name: name,
				Executor: &campaign.Executor{
					Session:  session,
					Mount:    mount,
					CVPoints: points,
					Observe: func(obs campaign.Observation) {
						emit("round", fmt.Sprintf("%s round %d: %.3f mM → %.2f µA",
							cellName, obs.Round, obs.Params.ConcentrationMM, obs.Peak.Microamperes()))
					},
				},
				Planner: plannerFor(cell),
			})
		}
		return nil
	}(); err != nil {
		return nil, err
	}

	results, err := fleet.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := CampaignResult{}
	var failures []error
	for _, res := range results {
		cr := CellResult{Name: res.Name}
		for _, obs := range res.History {
			cr.Rounds = append(cr.Rounds, RoundResult{
				Round:           obs.Round,
				ConcentrationMM: obs.Params.ConcentrationMM,
				AchievedMM:      obs.AchievedMM,
				ScanRateMVs:     obs.Params.ScanRateMVs,
				PeakUA:          obs.Peak.Microamperes(),
			})
		}
		if res.Err != nil {
			cr.Error = res.Err.Error()
			failures = append(failures, fmt.Errorf("cell %s: %w", res.Name, res.Err))
		}
		out.Cells = append(out.Cells, cr)
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	return json.Marshal(out)
}

// plannerFor builds the cell's planner from its declarative spec
// (Validate guarantees exactly one of the two shapes).
func plannerFor(cell CellSpec) campaign.Planner {
	if len(cell.Rounds) > 0 {
		rounds := make([]campaign.Params, len(cell.Rounds))
		for i, r := range cell.Rounds {
			rounds[i] = campaign.Params{ConcentrationMM: r.ConcentrationMM, ScanRateMVs: r.ScanRateMVs}
		}
		return campaign.FixedRounds{Label: cell.Name, Rounds: rounds}
	}
	return &campaign.TargetPeakSearch{
		TargetPeakUA: cell.TargetPeakUA,
		MinMM:        cell.MinMM,
		MaxMM:        cell.MaxMM,
	}
}
