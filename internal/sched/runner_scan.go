package sched

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/microscope"
	"ice/internal/trace"
)

// ScanConnector opens scan-instrument handles for one job. A facility
// whose config includes a scan-steering microscope (labreg's "scan"
// kind) implements it alongside Connector; the classic hardcoded
// deployment does not, so scan jobs against it fail terminally at
// dispatch.
type ScanConnector interface {
	// ConnectScan opens a session onto the scan station's daemon, the
	// station's data share, and the scan object's export name.
	ConnectScan() (*core.RemoteSession, datachan.Share, string, error)
}

// ErrNoScanInstrument marks a scan job submitted to a facility whose
// connector serves no scan instrument. Like ErrUnknownJobKind it is a
// workload fault: requeueing cannot make a microscope appear.
var ErrNoScanInstrument = errors.New("sched: facility has no scan instrument")

// ScanResult is a scan job's JSON result: the digest-verified scan
// file plus the steering story.
type ScanResult struct {
	File   string `json:"file"`
	SHA256 string `json:"sha256"`
	Tiles  int    `json:"tiles"`
	Passes int    `json:"passes"`
	Steers int    `json:"steers"`
	// Zoomed reports whether the classifier steered the scan; when it
	// did, ZoomRegion is the window and BestScore the winning tile's
	// score.
	Zoomed     bool               `json:"zoomed"`
	ZoomRegion *microscope.Region `json:"zoom_region,omitempty"`
	BestScore  float64            `json:"best_score,omitempty"`
}

// runScan executes a scan job: survey pass → online tile
// classification → steer onto the best structure → zoom pass(es) →
// finish → retrieve the scan file over the data channel with digest
// verification. The instrument gate releases at Finish-complete (the
// scan file has landed on the agent's disk), so the WAN retrieval
// overlaps the next tenant's beam time — the same release point the
// cv path uses at OnMeasured.
func (r *LabRunner) runScan(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	sc, ok := r.Connector.(ScanConnector)
	if !ok {
		return nil, fmt.Errorf("%w (kind %q)", ErrNoScanInstrument, job.Spec.Kind)
	}
	_, connSpan := trace.Start(ctx, "sched.connect", trace.ClassControl)
	session, mount, object, err := sc.ConnectScan()
	connSpan.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("connect: %w", err)
	}
	defer session.Close()
	defer mount.Close()
	session.BindTraceContext(ctx)
	session.BindCallContext(ctx)

	caller, err := session.Object(object, microscope.NonIdempotentScanMethods...)
	if err != nil {
		return nil, fmt.Errorf("connect scan object: %w", err)
	}
	client := microscope.NewClient(caller)

	spec := job.Spec.Scan
	if spec == nil {
		spec = &ScanSpec{}
	}
	cfg := microscope.ScanConfig{
		TilesX:        spec.TilesX,
		TilesY:        spec.TilesY,
		PixelsPerTile: spec.PixelsPerTile,
		DwellUS:       spec.DwellUS,
	}
	maxSteers := spec.MaxSteers
	if maxSteers == 0 {
		maxSteers = 1
	}

	gate := &InstrumentGate{
		M:         r.Leases,
		Resources: r.scanGateResources(job),
		Holder:    job.ID,
		TraceCtx:  ctx,
		OnEvent: func(msg string) {
			emit("lease", msg)
		},
	}
	var unlockOnce sync.Once
	unlock := func() { unlockOnce.Do(gate.Unlock) }
	defer unlock()

	gate.Lock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Setup: the column may be mid-pipeline from a crashed attempt;
	// Disconnect is valid from every state and forces power-on baseline.
	_, setupSpan := trace.Start(ctx, "scan.setup", trace.ClassControl)
	err = func() error {
		if _, err := client.Disconnect(ctx); err != nil {
			return fmt.Errorf("reset instrument: %w", err)
		}
		if _, err := client.Initialize(ctx); err != nil {
			return fmt.Errorf("initialize: %w", err)
		}
		if _, err := client.Configure(ctx, cfg); err != nil {
			return fmt.Errorf("configure: %w", err)
		}
		return nil
	}()
	setupSpan.EndErr(err)
	if err != nil {
		return nil, err
	}

	// Survey: start the raster and observe streamed tiles online, so
	// the steering decision is ready the instant the pass completes.
	normalized, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	passTiles := normalized.TilesX * normalized.TilesY
	steering := &microscope.OnlineSteering{MinScore: spec.MinScore, ZoomFactor: spec.ZoomFactor}

	surveyCtx, surveySpan := trace.Start(ctx, "scan.survey", trace.ClassInstrument)
	err = func() error {
		if _, err := client.Start(surveyCtx); err != nil {
			return fmt.Errorf("start scan: %w", err)
		}
		return r.observeTiles(surveyCtx, client, steering, passTiles)
	}()
	surveySpan.EndErr(err)
	if err != nil {
		return nil, err
	}

	// Steering: zoom onto the best structure, re-running the decision
	// against each zoom pass for deeper magnification.
	result := ScanResult{}
	region := microscope.FullField
	if cfg.Region != (microscope.Region{}) {
		region = cfg.Region
	}
	for steerN := 0; steerN < maxSteers; steerN++ {
		dec := steering.Decide(region)
		if !dec.Zoom {
			break
		}
		steerCtx, steerSpan := trace.Start(ctx, "scan.zoom", trace.ClassInstrument)
		err = func() error {
			if _, err := client.Steer(steerCtx, dec.Region); err != nil {
				return fmt.Errorf("steer: %w", err)
			}
			emit("steered", fmt.Sprintf("zoom %d onto %.3f,%.3f+%.3fx%.3f (score %.3f)",
				steerN+1, dec.Region.X, dec.Region.Y, dec.Region.W, dec.Region.H, dec.BestScore))
			return r.observeTiles(steerCtx, client, steering, (steerN+2)*passTiles)
		}()
		steerSpan.EndErr(err)
		if err != nil {
			return nil, err
		}
		result.Zoomed = true
		zr := dec.Region
		result.ZoomRegion = &zr
		result.BestScore = dec.BestScore
		region = dec.Region
	}

	// Finish: close the held acquisition and wait for the scan file to
	// complete on the agent's disk — the instrument-release point.
	_, finishSpan := trace.Start(ctx, "scan.finish", trace.ClassInstrument)
	var scanRes microscope.Result
	err = func() error {
		if _, err := client.Finish(ctx); err != nil {
			return fmt.Errorf("finish: %w", err)
		}
		res, err := client.Wait(ctx)
		if err != nil {
			return fmt.Errorf("wait: %w", err)
		}
		scanRes = res
		return nil
	}()
	finishSpan.EndErr(err)
	if err != nil {
		return nil, err
	}
	emit("measured", scanRes.File)
	unlock()

	// Retrieval over the WAN, digest-verified end to end; the beam is
	// already someone else's.
	retrCtx, retrSpan := trace.Start(ctx, "scan.retrieve", trace.ClassData)
	data, err := r.retrieveVerified(retrCtx, mount, scanRes.File)
	retrSpan.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("retrieve %s: %w", scanRes.File, err)
	}

	sum := sha256.Sum256(data)
	result.File = scanRes.File
	result.SHA256 = hex.EncodeToString(sum[:])
	result.Tiles = scanRes.Tiles
	result.Passes = scanRes.Passes
	result.Steers = scanRes.Steers
	return json.Marshal(result)
}

// observeTiles polls the streamed tiles into the steering classifier
// until the scan has produced want tiles (the current pass is done).
func (r *LabRunner) observeTiles(ctx context.Context, client *microscope.Client, steering *microscope.OnlineSteering, want int) error {
	poll := r.WaitPoll
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	timeout := r.WaitTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	deadline := time.Now().Add(timeout)
	for {
		tiles, err := client.Tiles(ctx, steering.Seen())
		if err != nil {
			return fmt.Errorf("get tiles: %w", err)
		}
		for _, t := range tiles {
			steering.Observe(t)
		}
		if steering.Seen() >= want {
			return nil
		}
		if time.Now().After(deadline) {
			// The "exceeded its" phrasing is the wedge marker the health
			// classifier keys on; naming stem attributes the blame.
			return fmt.Errorf("stem scan phase exceeded its %v budget (%d/%d tiles)", timeout, steering.Seen(), want)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// retrieveVerified fetches the scan file over the data channel with
// the share's digest verification when available.
func (r *LabRunner) retrieveVerified(ctx context.Context, mount datachan.Share, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return mount.ReadAllVerified(name)
}

// scanGateResources picks the lease names a scan job's gate contends
// on: the scheduler's health assignment first, then the runner-wide
// override, and — unlike the echem paths, whose gate defaults to the
// sp200/jkem pair — an explicit scan default, so a scan job on a
// health-disabled scheduler never queues behind a potentiostat it does
// not use.
func (r *LabRunner) scanGateResources(job Job) []string {
	if len(job.Resources) > 0 {
		return job.Resources
	}
	if len(r.ScanResources) > 0 {
		return r.ScanResources
	}
	return []string{ResourceScan}
}
