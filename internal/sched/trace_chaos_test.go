package sched

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/netsim"
	"ice/internal/trace"
	"ice/internal/workflow"
)

// TestTraceChaosFleetEventAttribution runs a two-cell fleet job while
// the site hub loses 20% of data-port traffic, then audits the trace:
// every redial and resume the reliable mounts performed must appear as
// a timed event on the data-class retrieval span that was active when
// the fault healed — none lost, none attributed to the wrong phase.
func TestTraceChaosFleetEventAttribution(t *testing.T) {
	base := t.TempDir()
	labDir := filepath.Join(base, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.AttachLab(7, 0); err != nil {
		t.Fatal(err)
	}

	d.Network.SetSeed(schedChaosSeed)
	if err := d.Network.SetHubFaults(netsim.HubSite, netsim.FaultSpec{
		Loss:  0.20,
		Ports: []int{netsim.PaperPorts.Data},
	}); err != nil {
		t.Fatal(err)
	}

	var mountsMu sync.Mutex
	var mounts []*datachan.ReliableMount
	connector := &DeploymentConnector{
		D:    d,
		Host: netsim.HostDGX,
		NewMount: func() (datachan.Share, error) {
			rm := datachan.NewReliableMount(func() (net.Conn, error) {
				return d.Network.Dial(netsim.HostDGX, d.DataAddr)
			})
			rm.MaxRetries = 50
			rm.Backoff = time.Millisecond
			rm.MaxBackoff = 10 * time.Millisecond
			rm.ChunkBytes = 2048
			mountsMu.Lock()
			mounts = append(mounts, rm)
			mountsMu.Unlock()
			return rm, nil
		},
	}

	s, err := New(Config{Dir: filepath.Join(base, "state"), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRunner(&LabRunner{
		Connector:        connector,
		Leases:           s.Leases(),
		Dir:              s.Dir(),
		CampaignCVPoints: 300,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	job, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCampaign, Cells: []CellSpec{
		{Name: "cell-a", Rounds: []RoundSpec{{ConcentrationMM: 1}, {ConcentrationMM: 1}}},
		{Name: "cell-b", Rounds: []RoundSpec{{ConcentrationMM: 4}, {ConcentrationMM: 4}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.WaitTerminal(t.Context(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("fleet job = %s under chaos: %s", final.State, final.Error)
	}

	healed := int64(0)
	for _, rm := range mounts {
		stats := rm.Stats()
		healed += stats.Redials + stats.Resumes
	}
	if healed == 0 {
		t.Fatal("no redials or resumes — the chaos schedule never hit the data path")
	}

	recs := waitForRoot(t, s, job)
	events := 0
	for _, rec := range recs {
		for _, ev := range rec.Events {
			if ev.Name != "datachan.redial" && ev.Name != "datachan.resume" {
				continue
			}
			events++
			if rec.Class != trace.ClassData {
				t.Errorf("healing event %s landed on %q (class %q), want a data-class retrieval span",
					ev.Name, rec.Name, rec.Class)
			}
			if rec.Name != "campaign.retrieve" {
				t.Errorf("healing event %s landed on span %q, want campaign.retrieve", ev.Name, rec.Name)
			}
			if ev.Time.Before(rec.Start) || ev.Time.After(rec.End) {
				t.Errorf("healing event %s at %v lies outside its span's window [%v, %v]",
					ev.Name, ev.Time, rec.Start, rec.End)
			}
			if hold := rec.Attrs["holder"]; hold != "cell-a" && hold != "cell-b" {
				t.Errorf("healing event %s on span without a cell holder (attrs %v)", ev.Name, rec.Attrs)
			}
		}
	}
	if int64(events) != healed {
		t.Errorf("mounts healed %d faults but the trace carries %d healing events — attribution lost some",
			healed, events)
	}
	if orphans := trace.Orphans(recs); len(orphans) != 0 {
		t.Errorf("chaos trace has %d orphaned spans: %v", len(orphans), orphans)
	}
}

// TestTraceCrashRecoveryStitching kills the daemon at the C→D task
// boundary (no goodbye records), restarts over the same state
// directory and trace backend, and verifies the resumed job's spans
// stitch into the original trace: two roots (one per attempt), no
// orphaned spans, a task.restored event for the checkpointed tasks,
// and no re-executed task span.
func TestTraceCrashRecoveryStitching(t *testing.T) {
	base := t.TempDir()
	labDir := filepath.Join(base, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })

	stateDir := filepath.Join(base, "state")
	connector := &DeploymentConnector{D: d, Host: netsim.HostDGX}
	// Both incarnations share one tracer, standing in for the durable
	// trace backend a real restart would re-open.
	tracer := trace.New(trace.WithStore(trace.NewStore(0, 0)), trace.WithRecorder(trace.NewRecorder(512)))

	s1, err := New(Config{Dir: stateDir, Workers: 1, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	var crashOnce sync.Once
	lab1 := &LabRunner{Connector: connector, Leases: s1.Leases(), Dir: stateDir}
	grab := &ctxGrabRunner{inner: lab1, ctxs: make(map[string]context.Context)}
	lab1.OnTask = func(jobID string, rec workflow.TaskRecord) {
		if rec.TaskID != "C" || rec.Status != "OK" {
			return
		}
		crashOnce.Do(func() {
			go func() {
				s1.Kill()
				close(killed)
			}()
			<-grab.ctx(jobID).Done()
		})
	}
	s1.SetRunner(grab)
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}

	job, err := s1.Submit(JobSpec{Tenant: "acl", Kind: KindCV, Points: 400})
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID == "" {
		t.Fatal("job has no trace ID")
	}
	select {
	case <-killed:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never died at the crash seam")
	}

	s2, err := New(Config{Dir: stateDir, Workers: 1, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	recovered, ok := s2.Job(job.ID)
	if !ok {
		t.Fatal("crashed job missing after replay")
	}
	if recovered.TraceID != job.TraceID {
		t.Fatalf("WAL replay lost the trace ID: %q, want %q", recovered.TraceID, job.TraceID)
	}
	s2.SetRunner(&LabRunner{Connector: connector, Leases: s2.Leases(), Dir: stateDir})
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := s2.WaitTerminal(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Attempts != 2 {
		t.Fatalf("resumed job = %s attempts %d: %s", final.State, final.Attempts, final.Error)
	}

	recs := waitForRoot(t, s2, final)

	// Both incarnations re-rooted into the one trace.
	roots, restored := 0, 0
	counts := make(map[string]int)
	for _, rec := range recs {
		if rec.Parent == "" {
			roots++
		}
		counts[rec.Name]++
		for _, ev := range rec.Events {
			if ev.Name == "task.restored" {
				restored++
			}
		}
	}
	if roots != 2 {
		t.Errorf("stitched trace has %d roots, want 2 (one per attempt)", roots)
	}
	if restored == 0 {
		t.Error("no task.restored events — the resume is invisible in the trace")
	}
	// The checkpointed fill was restored, not re-executed: one task C
	// span (attempt one's), one retrieval (attempt two's).
	if counts["task C"] != 1 {
		t.Errorf("trace has %d task C spans, want exactly 1 (resume must not re-run the fill)", counts["task C"])
	}
	if counts["cv.retrieve"] != 1 {
		t.Errorf("trace has %d cv.retrieve spans, want exactly 1", counts["cv.retrieve"])
	}

	// The stitched trace is parent-complete: the crash lost no span an
	// existing record still points at.
	if orphans := trace.Orphans(recs); len(orphans) != 0 {
		t.Errorf("stitched trace has %d orphaned spans after crash recovery: %v", len(orphans), orphans)
	}
}

// waitForRoot fetches the job's trace from the scheduler's store,
// waiting out the hair's-width race between WaitTerminal returning and
// complete() closing the root span.
func waitForRoot(t *testing.T, s *Scheduler, job Job) []trace.Record {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := s.Tracer().Store().Trace(job.TraceID)
		for _, rec := range recs {
			if rec.Name == "job "+job.ID && rec.Parent == "" {
				return recs
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never got its root span (%d spans stored)", job.TraceID, len(recs))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
