package sched

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ice/internal/core"
)

// WALFileName is the job store's file inside the gateway's state
// directory.
const WALFileName = "icegated_jobs.jsonl"

// WALRecord is one job transition, appended as a JSON line. The spec
// travels with the first (PENDING) record so a restarted daemon can
// reconstruct and re-enqueue the job from the WAL alone.
type WALRecord struct {
	// TimeUnixNano is the transition wall time.
	TimeUnixNano int64 `json:"t,omitempty"`
	// Job is the job ID.
	Job string `json:"job"`
	// Tenant identifies the submitter (on the PENDING record).
	Tenant string `json:"tenant,omitempty"`
	// State is the new lifecycle state.
	State State `json:"state"`
	// Spec is the admitted request (on the PENDING record).
	Spec *JobSpec `json:"spec,omitempty"`
	// TraceID travels with the PENDING record so a restarted daemon
	// re-roots the job's spans into the same trace, stitching attempts
	// together instead of starting a fresh, disconnected trace.
	TraceID string `json:"trace_id,omitempty"`
	// Attempt counts executions begun (on RUNNING records).
	Attempt int `json:"attempt,omitempty"`
	// Result is the runner's output (on the DONE record).
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries the failure message (on FAILED records).
	Error string `json:"error,omitempty"`
}

// WAL is the append-only, fsynced job journal. Every Append survives
// a kill -9 of the daemon; OpenWAL replays what the previous
// incarnation had admitted.
type WAL struct {
	mu sync.Mutex
	f  *core.AppendFile
}

// OpenWAL opens (creating if needed) the job store under dir and
// replays its records into the last-known state of every job, in
// first-submission order.
func OpenWAL(dir string) (*WAL, []*Job, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("sched: wal dir: %w", err)
	}
	var jobs []*Job
	if f, err := os.Open(filepath.Join(dir, WALFileName)); err == nil {
		jobs, err = ReplayWAL(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("sched: open wal: %w", err)
	}
	af, err := core.OpenAppendFile(dir, WALFileName)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: append wal: %w", err)
	}
	return &WAL{f: af}, jobs, nil
}

// Append writes one fsynced record.
func (w *WAL) Append(rec WALRecord) error {
	if rec.TimeUnixNano == 0 {
		rec.TimeUnixNano = time.Now().UnixNano()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sched: encode wal record: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("sched: wal closed")
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("sched: append wal: %w", err)
	}
	return nil
}

// Close releases the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// ReplayWAL folds a journal into each job's latest state, in
// first-submission order. A truncated trailing line — the signature
// of a crash mid-append — is tolerated and dropped; corruption
// anywhere else is an error, because silently skipping interior
// records could resurrect an already-completed job.
func ReplayWAL(r io.Reader) ([]*Job, error) {
	byID := make(map[string]*Job)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was not the last one: real corruption.
			return nil, pendingErr
		}
		var rec WALRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("sched: wal line %d: %w", line, err)
			continue
		}
		if rec.Job == "" {
			pendingErr = fmt.Errorf("sched: wal line %d: record without job id", line)
			continue
		}
		job, ok := byID[rec.Job]
		if !ok {
			job = &Job{ID: rec.Job}
			byID[rec.Job] = job
			order = append(order, rec.Job)
		}
		applyRecord(job, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sched: read wal: %w", err)
	}
	jobs := make([]*Job, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, byID[id])
	}
	return jobs, nil
}

// applyRecord folds one transition into the job.
func applyRecord(job *Job, rec WALRecord) {
	job.State = rec.State
	if rec.Tenant != "" {
		job.Tenant = rec.Tenant
	}
	if rec.Spec != nil {
		job.Spec = *rec.Spec
	}
	if rec.TraceID != "" {
		job.TraceID = rec.TraceID
	}
	if rec.Attempt > job.Attempts {
		job.Attempts = rec.Attempt
	}
	switch rec.State {
	case StatePending:
		if job.SubmittedUnixNano == 0 {
			job.SubmittedUnixNano = rec.TimeUnixNano
		}
	case StateRunning:
		job.StartedUnixNano = rec.TimeUnixNano
	case StateDone:
		job.Result = rec.Result
		job.FinishedUnixNano = rec.TimeUnixNano
	case StateFailed:
		job.Error = rec.Error
		job.FinishedUnixNano = rec.TimeUnixNano
	case StateCancelled:
		job.FinishedUnixNano = rec.TimeUnixNano
	}
}

// highestJobSeq returns the largest numeric suffix among replayed job
// IDs so a restarted daemon keeps allocating fresh ones.
func highestJobSeq(jobs []*Job) int {
	max := 0
	for _, j := range jobs {
		if i := strings.LastIndexByte(j.ID, '-'); i >= 0 {
			if n, err := strconv.Atoi(j.ID[i+1:]); err == nil && n > max {
				max = n
			}
		}
	}
	return max
}

// sortJobsBySubmission orders jobs oldest-first for re-enqueueing.
func sortJobsBySubmission(jobs []*Job) {
	sort.SliceStable(jobs, func(i, j int) bool {
		return jobs[i].SubmittedUnixNano < jobs[j].SubmittedUnixNano
	})
}
