package sched

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WALFileName is the job store's file inside the gateway's state
// directory.
const WALFileName = "icegated_jobs.jsonl"

// WALRecord is one job transition, appended as a JSON line. The spec
// travels with the first (PENDING) record so a restarted daemon can
// reconstruct and re-enqueue the job from the WAL alone.
type WALRecord struct {
	// TimeUnixNano is the transition wall time.
	TimeUnixNano int64 `json:"t,omitempty"`
	// Seq is the record's position in this WAL stream, assigned by
	// Append. Replication ships records with their sequence numbers so
	// a replica can deduplicate retransmissions and order a merge
	// deterministically; replay drops duplicate sequences, keeping the
	// highest-term occurrence.
	Seq uint64 `json:"seq,omitempty"`
	// Term is the leadership term the record was written under. A
	// facility's term increases by one at every failover/handback, so
	// after a partition heals, conflicting records for the same
	// sequence resolve to the higher term.
	Term uint64 `json:"term,omitempty"`
	// Job is the job ID.
	Job string `json:"job"`
	// Tenant identifies the submitter (on the PENDING record).
	Tenant string `json:"tenant,omitempty"`
	// State is the new lifecycle state.
	State State `json:"state"`
	// Spec is the admitted request (on the PENDING record).
	Spec *JobSpec `json:"spec,omitempty"`
	// TraceID travels with the PENDING record so a restarted daemon
	// re-roots the job's spans into the same trace, stitching attempts
	// together instead of starting a fresh, disconnected trace.
	TraceID string `json:"trace_id,omitempty"`
	// Attempt counts executions begun (on RUNNING records).
	Attempt int `json:"attempt,omitempty"`
	// Result is the runner's output (on the DONE record).
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries the failure message (on FAILED records).
	Error string `json:"error,omitempty"`
}

// WALStats counts append and fsync activity; the group-commit test
// asserts Syncs stays well below Appends under concurrent load.
type WALStats struct {
	// Appends is the number of records durably acknowledged.
	Appends int64
	// Syncs is the number of fsync calls issued — one per commit batch.
	Syncs int64
}

// walBatch is one group-commit unit: the concatenated JSON lines of
// every record that joined while the previous batch was on its way to
// disk (or during the commit window), flushed with a single fsync.
type walBatch struct {
	buf  []byte
	done chan struct{}
	err  error
	// leader marks that an appender has taken responsibility for
	// flushing this batch; later arrivals just wait on done.
	leader bool
}

// WAL is the append-only, fsynced job journal. Every Append survives
// a kill -9 of the daemon; OpenWAL replays what the previous
// incarnation had admitted.
//
// Appends are group-committed: the first appender of a batch becomes
// its leader, waits out the (optional) commit window, and flushes the
// batch with one write+fsync while followers block on the batch's
// done channel. While a flush is in flight, new appenders form the
// next batch — so under concurrency one fsync serves many records,
// without weakening durability: Append still returns only after the
// record's batch is on disk (and, when a mirror is attached, after
// the mirror has acknowledged it).
type WAL struct {
	// fileMu serialises batch flushes in batch-creation order; a new
	// batch can only form after the previous one detached, and its
	// leader cannot write until the previous flush finished.
	fileMu sync.Mutex

	mu     sync.Mutex
	f      *os.File
	cur    *walBatch
	seq    uint64
	term   uint64
	window time.Duration
	mirror func(WALRecord) error
	stats  WALStats
}

// OpenWAL opens (creating if needed) the job store under dir and
// replays its records into the last-known state of every job, in
// first-submission order.
func OpenWAL(dir string) (*WAL, []*Job, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("sched: wal dir: %w", err)
	}
	var recs []WALRecord
	if f, err := os.Open(filepath.Join(dir, WALFileName)); err == nil {
		recs, err = ReadWALRecords(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("sched: open wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, WALFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: append wal: %w", err)
	}
	w := &WAL{f: f}
	for _, rec := range recs {
		if rec.Seq > w.seq {
			w.seq = rec.Seq
		}
		if rec.Term > w.term {
			w.term = rec.Term
		}
	}
	return w, FoldWALRecords(recs), nil
}

// SetCommitWindow widens group-commit batches: a batch leader waits
// this long for more records before flushing. Zero (the default)
// flushes immediately — batching still happens naturally while a
// previous flush is in flight.
func (w *WAL) SetCommitWindow(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.window = d
}

// SetTerm stamps subsequent records with the given leadership term.
func (w *WAL) SetTerm(term uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.term = term
}

// Term returns the current leadership term.
func (w *WAL) Term() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.term
}

// LastSeq returns the sequence number of the most recent record.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// SetMirror attaches the replication hook: it is called with every
// record, after the record is durable locally and before Append
// returns — a cluster node uses it to replicate the record to its
// peer(s) synchronously, so admission is only confirmed once the
// record is acknowledged remotely (or the replicator has explicitly
// degraded to async catch-up during a partition).
func (w *WAL) SetMirror(mirror func(WALRecord) error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mirror = mirror
}

// Stats returns append/fsync counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Append writes one record, returning after it is fsynced (as part of
// a group-commit batch) and mirrored.
func (w *WAL) Append(rec WALRecord) error {
	if rec.TimeUnixNano == 0 {
		rec.TimeUnixNano = time.Now().UnixNano()
	}
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return fmt.Errorf("sched: wal closed")
	}
	w.seq++
	rec.Seq = w.seq
	if rec.Term == 0 {
		rec.Term = w.term
	}
	mirror := w.mirror
	line, err := json.Marshal(rec)
	if err != nil {
		w.seq--
		w.mu.Unlock()
		return fmt.Errorf("sched: encode wal record: %w", err)
	}
	if w.cur == nil {
		w.cur = &walBatch{done: make(chan struct{})}
	}
	b := w.cur
	b.buf = append(b.buf, line...)
	b.buf = append(b.buf, '\n')
	lead := !b.leader
	b.leader = true
	window := w.window
	w.mu.Unlock()

	if lead {
		if window > 0 {
			time.Sleep(window)
		}
		w.flushBatch(b)
	} else {
		<-b.done
	}
	if b.err != nil {
		return fmt.Errorf("sched: append wal: %w", b.err)
	}
	w.mu.Lock()
	w.stats.Appends++
	w.mu.Unlock()
	if mirror != nil {
		if err := mirror(rec); err != nil {
			return fmt.Errorf("sched: mirror wal record: %w", err)
		}
	}
	return nil
}

// flushBatch detaches b (if still current) and commits it with one
// write+fsync. fileMu guarantees batches hit the file in creation
// order.
func (w *WAL) flushBatch(b *walBatch) {
	w.fileMu.Lock()
	defer w.fileMu.Unlock()
	w.mu.Lock()
	if w.cur == b {
		w.cur = nil
	}
	f := w.f
	w.mu.Unlock()
	select {
	case <-b.done:
		return // already flushed (by Close)
	default:
	}
	if f == nil {
		b.err = fmt.Errorf("wal closed")
	} else {
		if _, err := f.Write(b.buf); err != nil {
			b.err = err
		} else if err := f.Sync(); err != nil {
			b.err = err
		}
		w.mu.Lock()
		w.stats.Syncs++
		w.mu.Unlock()
	}
	close(b.done)
}

// Close flushes any pending batch and releases the journal file.
func (w *WAL) Close() error {
	w.fileMu.Lock()
	w.mu.Lock()
	b := w.cur
	w.cur = nil
	f := w.f
	w.f = nil
	w.mu.Unlock()
	if b != nil && f != nil {
		if _, err := f.Write(b.buf); err != nil {
			b.err = err
		} else if err := f.Sync(); err != nil {
			b.err = err
		}
		w.mu.Lock()
		w.stats.Syncs++
		w.mu.Unlock()
		close(b.done)
	} else if b != nil {
		b.err = fmt.Errorf("wal closed")
		close(b.done)
	}
	w.fileMu.Unlock()
	if f == nil {
		return nil
	}
	return f.Close()
}

// ReadWALRecords parses a journal into its records. A truncated
// trailing line — the signature of a crash mid-append — is tolerated
// and dropped; corruption anywhere else is an error, because silently
// skipping interior records could resurrect an already-completed job.
func ReadWALRecords(r io.Reader) ([]WALRecord, error) {
	var recs []WALRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was not the last one: real corruption.
			return nil, pendingErr
		}
		var rec WALRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("sched: wal line %d: %w", line, err)
			continue
		}
		if rec.Job == "" {
			pendingErr = fmt.Errorf("sched: wal line %d: record without job id", line)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sched: read wal: %w", err)
	}
	return recs, nil
}

// ReplayWAL folds a journal into each job's latest state, in
// first-submission order.
func ReplayWAL(r io.Reader) ([]*Job, error) {
	recs, err := ReadWALRecords(r)
	if err != nil {
		return nil, err
	}
	return FoldWALRecords(recs), nil
}

// FoldWALRecords merges a record stream into each job's latest state,
// in first-submission order. The fold is deterministic even when the
// stream is a post-partition merge of two divergent histories:
//
//   - records are ordered by sequence number (legacy records without
//     one keep their file position, which sorts them first — they can
//     only come from a pre-federation WAL prefix);
//   - duplicate sequence numbers — retransmissions, or the same slot
//     written under two leaders across a partition — collapse to one
//     winner: the highest term, ties broken by the later occurrence
//     (last-writer-wins, safe because duplicated slots only ever carry
//     idempotent status records for the same job).
func FoldWALRecords(recs []WALRecord) []*Job {
	ordered := make([]WALRecord, len(recs))
	copy(ordered, recs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })

	byID := make(map[string]*Job)
	var order []string
	// winner per duplicated sequence slot: highest term, then latest.
	lastTerm := make(map[uint64]uint64)
	for _, rec := range ordered {
		if rec.Seq != 0 {
			if t, dup := lastTerm[rec.Seq]; !dup || rec.Term >= t {
				lastTerm[rec.Seq] = rec.Term
			}
		}
	}
	for _, rec := range ordered {
		if rec.Seq != 0 && rec.Term < lastTerm[rec.Seq] {
			continue // lost the slot to a higher term
		}
		job, ok := byID[rec.Job]
		if !ok {
			job = &Job{ID: rec.Job}
			byID[rec.Job] = job
			order = append(order, rec.Job)
		}
		applyRecord(job, rec)
	}
	jobs := make([]*Job, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, byID[id])
	}
	return jobs
}

// applyRecord folds one transition into the job.
func applyRecord(job *Job, rec WALRecord) {
	job.State = rec.State
	if rec.Tenant != "" {
		job.Tenant = rec.Tenant
	}
	if rec.Spec != nil {
		job.Spec = *rec.Spec
	}
	if rec.TraceID != "" {
		job.TraceID = rec.TraceID
	}
	if rec.Attempt > job.Attempts {
		job.Attempts = rec.Attempt
	}
	switch rec.State {
	case StatePending:
		if job.SubmittedUnixNano == 0 {
			job.SubmittedUnixNano = rec.TimeUnixNano
		}
	case StateRunning:
		job.StartedUnixNano = rec.TimeUnixNano
	case StateDone:
		job.Result = rec.Result
		job.FinishedUnixNano = rec.TimeUnixNano
	case StateFailed:
		job.Error = rec.Error
		job.FinishedUnixNano = rec.TimeUnixNano
	case StateCancelled:
		job.FinishedUnixNano = rec.TimeUnixNano
	}
}

// highestJobSeq returns the largest numeric suffix among replayed job
// IDs so a restarted daemon keeps allocating fresh ones.
func highestJobSeq(jobs []*Job) int {
	max := 0
	for _, j := range jobs {
		if i := strings.LastIndexByte(j.ID, '-'); i >= 0 {
			if n, err := strconv.Atoi(j.ID[i+1:]); err == nil && n > max {
				max = n
			}
		}
	}
	return max
}

// sortJobsBySubmission orders jobs oldest-first for re-enqueueing.
func sortJobsBySubmission(jobs []*Job) {
	sort.SliceStable(jobs, func(i, j int) bool {
		return jobs[i].SubmittedUnixNano < jobs[j].SubmittedUnixNano
	})
}
