package sched

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/trace"
)

// TestGatewayTraceEndToEnd is the ISSUE's acceptance drill: submit a
// cv job through POST /v1/jobs, fetch its trace by the returned trace
// ID, and verify the span tree runs scheduler → workflow tasks A–E →
// pyro RPCs → data-channel retrieval with every span parented, and
// that the critical-path breakdown partitions the job's wall time.
func TestGatewayTraceEndToEnd(t *testing.T) {
	base := t.TempDir()
	labDir := filepath.Join(base, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })

	s, err := New(Config{Dir: filepath.Join(base, "state"), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRunner(&LabRunner{
		Connector: &DeploymentConnector{D: d, Host: netsim.HostDGX},
		Leases:    s.Leases(),
		Dir:       s.Dir(),
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	srv := httptest.NewServer(NewGateway(s))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"tenant": "acl", "kind": "cv", "points": 400}`))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID == "" {
		t.Fatal("submitted job carries no trace ID")
	}
	final, err := s.WaitTerminal(t.Context(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job = %s: %s", final.State, final.Error)
	}

	// The root span only closes (and lands in the store) once complete()
	// runs, which races WaitTerminal's channel close by a hair.
	var tr TraceResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(srv.URL + "/v1/traces/" + job.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK && hasSpan(tr.Spans, "job "+job.ID) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never served a root span (status %d, %d spans)",
				job.TraceID, resp.StatusCode, len(tr.Spans))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every layer contributed spans, all in the job's one trace.
	wantSpans := []string{
		"job " + job.ID, // scheduler root
		"sched.queued", "sched.run", "sched.connect",
		"lease.acquire", "lease.held",
		"task A", "task B", "task C", "task D", "task E", // workflow tasks
		"cv.fill", "cv.acquire", "cv.retrieve", "cv.analyze",
	}
	for _, name := range wantSpans {
		if !hasSpan(tr.Spans, name) {
			t.Errorf("trace is missing span %q", name)
		}
	}
	foundRPC := false
	for _, rec := range tr.Spans {
		if rec.TraceID != job.TraceID {
			t.Fatalf("span %q belongs to trace %s, want %s", rec.Name, rec.TraceID, job.TraceID)
		}
		if strings.HasPrefix(rec.Name, "call ") && rec.Class == trace.ClassControl {
			foundRPC = true
		}
	}
	if !foundRPC {
		t.Error("no pyro client RPC spans in the trace")
	}
	if orphans := trace.Orphans(tr.Spans); len(orphans) != 0 {
		t.Errorf("trace has %d orphaned spans: %v", len(orphans), orphans)
	}

	// The cv.retrieve span is the data phase, parented under task D.
	var retrieve, taskD *trace.Record
	for i := range tr.Spans {
		switch tr.Spans[i].Name {
		case "cv.retrieve":
			retrieve = &tr.Spans[i]
		case "task D":
			taskD = &tr.Spans[i]
		}
	}
	if retrieve.Class != trace.ClassData {
		t.Errorf("cv.retrieve class = %q, want %q", retrieve.Class, trace.ClassData)
	}
	if retrieve.Parent != taskD.SpanID {
		t.Errorf("cv.retrieve parent = %s, want task D (%s)", retrieve.Parent, taskD.SpanID)
	}

	// The critical-path decomposition: every phase nonzero, and the
	// segments plus idle partition the wall time (±5% per the ISSUE;
	// the sweep is exact by construction, the slack covers rounding).
	b := tr.Breakdown
	if b.Instrument <= 0 || b.Data <= 0 || b.Analysis <= 0 || b.Sched <= 0 {
		t.Errorf("breakdown has empty phases: %+v", b)
	}
	sum := b.Instrument + b.Data + b.Analysis + b.Sched + b.Control + b.Other + b.Idle
	if b.Wall <= 0 {
		t.Fatalf("breakdown wall = %v", b.Wall)
	}
	if diff := sum - b.Wall; diff < -b.Wall/20 || diff > b.Wall/20 {
		t.Errorf("segments sum to %v, wall is %v (diff %v)", sum, b.Wall, diff)
	}
	// Task E's teardown is best-effort: a Disconnect against an already
	// powered-down instrument errors benignly and the workflow ignores
	// it, but the trace still records the failed RPC faithfully. No
	// other span may carry an error on a clean run.
	for _, rec := range tr.Spans {
		if rec.Error != "" && !strings.Contains(rec.Name, "Disconnect") {
			t.Errorf("span %q errored on a clean run: %s", rec.Name, rec.Error)
		}
	}

	// The trace is listed in the summary index too.
	resp, err = http.Get(srv.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []trace.Summary `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sum := range list.Traces {
		if sum.TraceID == job.TraceID {
			found = true
			if sum.Root != "job "+job.ID {
				t.Errorf("summary root = %q, want %q", sum.Root, "job "+job.ID)
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from /v1/traces", job.TraceID)
	}

	// And the metrics snapshot carries the tracer's series.
	resp, err = http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	report, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace.spans.finished", "trace.store.traces", "sched.jobs.done"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("metrics missing %q:\n%s", want, report)
		}
	}
}

func hasSpan(recs []trace.Record, name string) bool {
	for _, rec := range recs {
		if rec.Name == name {
			return true
		}
	}
	return false
}
