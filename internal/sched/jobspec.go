package sched

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"ice/internal/dag"
)

// MaxJobSpecBytes bounds the JSON a tenant may submit; the gateway
// enforces it before decoding so a hostile body cannot balloon memory.
const MaxJobSpecBytes = 64 * 1024

// Job spec shape limits: declarative requests are small by
// construction, so anything outside these bounds is rejected at
// admission rather than discovered mid-experiment.
const (
	maxTenantLen = 64
	maxLabelLen  = 64
	maxCells     = 16
	maxRounds    = 64
	maxCVPoints  = 100_000
	maxPriority  = 9
)

// RoundSpec is one declarative campaign round.
type RoundSpec struct {
	// ConcentrationMM to synthesise before measuring; 0 reuses the cell
	// contents.
	ConcentrationMM float64 `json:"concentration_mm,omitempty"`
	// ScanRateMVs is the CV scan rate (0 = the paper's default).
	ScanRateMVs float64 `json:"scan_rate_mvs,omitempty"`
}

// CellSpec is one campaign within a job: either a fixed list of rounds
// or a target-peak search (exactly one of the two).
type CellSpec struct {
	// Name labels the cell in results and events (optional).
	Name string `json:"name,omitempty"`
	// Rounds, when set, replays these rounds in order.
	Rounds []RoundSpec `json:"rounds,omitempty"`
	// TargetPeakUA, when > 0, runs the bisection search for the
	// concentration hitting this anodic peak.
	TargetPeakUA float64 `json:"target_peak_ua,omitempty"`
	// MinMM and MaxMM bound the search (required with TargetPeakUA).
	MinMM float64 `json:"min_mm,omitempty"`
	MaxMM float64 `json:"max_mm,omitempty"`
}

// ScanSpec parameterises a scan job: the survey raster and the online
// steering policy the runner applies to the streamed tiles.
type ScanSpec struct {
	// TilesX and TilesY set the survey raster grid (0 = instrument
	// default 8×8; max 64 per axis).
	TilesX int `json:"tiles_x,omitempty"`
	TilesY int `json:"tiles_y,omitempty"`
	// PixelsPerTile sets per-tile resolution (0 = default 16; max 256).
	PixelsPerTile int `json:"pixels_per_tile,omitempty"`
	// DwellUS is the per-pixel dwell in microseconds (0 = default).
	DwellUS float64 `json:"dwell_us,omitempty"`
	// MinScore is the steering threshold: a survey whose best tile
	// scores below it finishes without zooming (0 = always zoom on the
	// best tile).
	MinScore float64 `json:"min_score,omitempty"`
	// ZoomFactor shrinks the window per steer (0 = default 4).
	ZoomFactor float64 `json:"zoom_factor,omitempty"`
	// MaxSteers bounds how many zoom passes follow the survey
	// (default 1, max 8; the runner steers at most this many times).
	MaxSteers int `json:"max_steers,omitempty"`
}

func (s *ScanSpec) validate() error {
	if s.TilesX < 0 || s.TilesX > 64 || s.TilesY < 0 || s.TilesY > 64 {
		return fmt.Errorf("sched: scan tile grid %dx%d outside 0..64", s.TilesX, s.TilesY)
	}
	if s.PixelsPerTile < 0 || s.PixelsPerTile > 256 {
		return fmt.Errorf("sched: scan pixels_per_tile %d outside 0..256", s.PixelsPerTile)
	}
	if !finiteIn(s.DwellUS, 0, 1e6) {
		return fmt.Errorf("sched: scan dwell_us %v outside 0..1e6", s.DwellUS)
	}
	if !finiteIn(s.MinScore, 0, 1e6) {
		return fmt.Errorf("sched: scan min_score %v outside 0..1e6", s.MinScore)
	}
	if !finiteIn(s.ZoomFactor, 0, 64) {
		return fmt.Errorf("sched: scan zoom_factor %v outside 0..64", s.ZoomFactor)
	}
	if s.MaxSteers < 0 || s.MaxSteers > 8 {
		return fmt.Errorf("sched: scan max_steers %d outside 0..8", s.MaxSteers)
	}
	return nil
}

// JobSpec is the declarative experiment request a tenant submits to
// the gateway.
type JobSpec struct {
	// Tenant identifies the submitting tenant (required).
	Tenant string `json:"tenant"`
	// Kind selects the workload: "cv" (the paper's tasks A–E), or
	// "campaign" (closed-loop rounds over the lab stations; one cell
	// runs alone, several cells run as a fleet sharing the instrument).
	Kind string `json:"kind"`
	// Priority orders a tenant's own jobs (0–9, higher first). It does
	// not jump the fair-share ordering across tenants.
	Priority int `json:"priority,omitempty"`
	// Facility targets the experiment at a specific facility's
	// instruments in a federated cluster. Empty means the facility of
	// the gateway the job was submitted to; a foreign facility makes
	// the receiving gateway forward the job to that facility's leader
	// and proxy status/SSE back to the submitter.
	Facility string `json:"facility,omitempty"`
	// DeadlineMS bounds the job's end-to-end wall time in milliseconds,
	// measured from admission (queue wait included). The scheduler
	// derives a context deadline that flows gateway → runner → pyro
	// calls, with per-phase sub-budgets, so a hung instrument surfaces
	// in seconds instead of riding out the lease TTL. 0 means no
	// deadline. A deadline below the scheduler's configured minimum is
	// rejected at admission with 503 + Retry-After rather than
	// admitted to certainly fail.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ScanRateMVs and Points parameterise a cv job.
	ScanRateMVs float64 `json:"scan_rate_mvs,omitempty"`
	Points      int     `json:"points,omitempty"`
	// Cells parameterise a campaign job (1..16 cells).
	Cells []CellSpec `json:"cells,omitempty"`
	// DAG carries the declarative node-graph document for a dag job.
	// It is validated (schema, references, cycles) at admission with
	// dag.DecodeSpec, so the queue never holds a malformed graph.
	DAG json.RawMessage `json:"dag,omitempty"`
	// Scan parameterises a scan job (survey → steer → zoom on a
	// scan-steering microscope); nil uses instrument defaults.
	Scan *ScanSpec `json:"scan,omitempty"`
}

// Job kinds.
const (
	KindCV       = "cv"
	KindCampaign = "campaign"
	KindDAG      = "dag"
	KindScan     = "scan"
)

// DecodeJobSpec parses and validates a tenant-submitted job spec. It
// is strict — unknown fields, trailing garbage, oversized bodies, and
// out-of-range values are all errors — and never panics on malformed
// input (FuzzDecodeJobSpec holds it to that).
func DecodeJobSpec(data []byte) (JobSpec, error) {
	var spec JobSpec
	if len(data) > MaxJobSpecBytes {
		return spec, fmt.Errorf("sched: job spec exceeds %d bytes", MaxJobSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, fmt.Errorf("sched: decode job spec: %w", err)
	}
	// A second document after the first is garbage, not a request.
	if dec.More() {
		return JobSpec{}, fmt.Errorf("sched: trailing data after job spec")
	}
	if err := spec.Validate(); err != nil {
		return JobSpec{}, err
	}
	return spec, nil
}

// Validate checks the spec's shape and ranges.
func (s *JobSpec) Validate() error {
	if err := validateName("tenant", s.Tenant, maxTenantLen, true); err != nil {
		return err
	}
	if s.Priority < 0 || s.Priority > maxPriority {
		return fmt.Errorf("sched: priority %d outside 0..%d", s.Priority, maxPriority)
	}
	if err := validateName("facility", s.Facility, maxLabelLen, false); err != nil {
		return err
	}
	// One day bounds any legitimate experiment; negative is nonsense.
	if s.DeadlineMS < 0 || s.DeadlineMS > 86_400_000 {
		return fmt.Errorf("sched: deadline_ms %d outside 0..86400000", s.DeadlineMS)
	}
	switch s.Kind {
	case KindCV:
		if len(s.Cells) != 0 {
			return fmt.Errorf("sched: cv job does not take cells")
		}
		if len(s.DAG) != 0 {
			return fmt.Errorf("sched: cv job does not take a dag")
		}
		if s.Scan != nil {
			return fmt.Errorf("sched: cv job does not take a scan")
		}
		if !finiteIn(s.ScanRateMVs, 0, 10_000) {
			return fmt.Errorf("sched: scan rate %v mV/s outside 0..10000", s.ScanRateMVs)
		}
		if s.Points < 0 || s.Points > maxCVPoints {
			return fmt.Errorf("sched: points %d outside 0..%d", s.Points, maxCVPoints)
		}
	case KindCampaign:
		if s.ScanRateMVs != 0 || s.Points != 0 {
			return fmt.Errorf("sched: campaign job takes per-round scan rates, not top-level cv fields")
		}
		if len(s.DAG) != 0 {
			return fmt.Errorf("sched: campaign job does not take a dag")
		}
		if s.Scan != nil {
			return fmt.Errorf("sched: campaign job does not take a scan")
		}
		if len(s.Cells) == 0 || len(s.Cells) > maxCells {
			return fmt.Errorf("sched: campaign needs 1..%d cells, got %d", maxCells, len(s.Cells))
		}
		for i := range s.Cells {
			if err := s.Cells[i].validate(); err != nil {
				return fmt.Errorf("sched: cell %d: %w", i+1, err)
			}
		}
	case KindDAG:
		if len(s.Cells) != 0 || s.ScanRateMVs != 0 || s.Points != 0 || s.Scan != nil {
			return fmt.Errorf("sched: dag job takes only a dag document, not cv, campaign or scan fields")
		}
		if len(s.DAG) == 0 {
			return fmt.Errorf("sched: dag job needs a dag document")
		}
		if _, err := dag.DecodeSpec(s.DAG); err != nil {
			return err
		}
	case KindScan:
		if len(s.Cells) != 0 || len(s.DAG) != 0 || s.ScanRateMVs != 0 || s.Points != 0 {
			return fmt.Errorf("sched: scan job takes only a scan spec, not cv, campaign or dag fields")
		}
		if s.Scan != nil {
			if err := s.Scan.validate(); err != nil {
				return err
			}
		}
	case "":
		return fmt.Errorf("sched: job spec needs a kind")
	default:
		return fmt.Errorf("sched: unknown job kind %q", s.Kind)
	}
	return nil
}

func (c *CellSpec) validate() error {
	if err := validateName("cell name", c.Name, maxLabelLen, false); err != nil {
		return err
	}
	hasRounds := len(c.Rounds) > 0
	hasSearch := c.TargetPeakUA != 0 || c.MinMM != 0 || c.MaxMM != 0
	switch {
	case hasRounds && hasSearch:
		return fmt.Errorf("needs rounds or a target-peak search, not both")
	case hasRounds:
		if len(c.Rounds) > maxRounds {
			return fmt.Errorf("more than %d rounds", maxRounds)
		}
		for j, r := range c.Rounds {
			if !finiteIn(r.ConcentrationMM, 0, 1000) {
				return fmt.Errorf("round %d: concentration %v mM outside 0..1000", j+1, r.ConcentrationMM)
			}
			if !finiteIn(r.ScanRateMVs, 0, 10_000) {
				return fmt.Errorf("round %d: scan rate %v mV/s outside 0..10000", j+1, r.ScanRateMVs)
			}
		}
	case hasSearch:
		if !finiteIn(c.TargetPeakUA, 0, 1e6) || c.TargetPeakUA <= 0 {
			return fmt.Errorf("target peak %v µA outside (0, 1e6]", c.TargetPeakUA)
		}
		if !finiteIn(c.MinMM, 0, 1000) || !finiteIn(c.MaxMM, 0, 1000) ||
			c.MinMM <= 0 || c.MaxMM <= c.MinMM {
			return fmt.Errorf("search bounds [%v, %v] mM invalid", c.MinMM, c.MaxMM)
		}
	default:
		return fmt.Errorf("needs rounds or a target-peak search")
	}
	return nil
}

// validateName bounds a label's length and restricts it to printable
// ASCII without whitespace, so identifiers are safe in logs, file
// names and SSE frames.
func validateName(what, s string, maxLen int, required bool) error {
	if s == "" {
		if required {
			return fmt.Errorf("sched: %s required", what)
		}
		return nil
	}
	if len(s) > maxLen {
		return fmt.Errorf("sched: %s longer than %d bytes", what, maxLen)
	}
	for _, r := range s {
		if r <= ' ' || r > '~' || r == '/' || r == '\\' || r == '"' {
			return fmt.Errorf("sched: %s contains disallowed character %q", what, r)
		}
	}
	return nil
}

// finiteIn reports whether v is a finite number inside [lo, hi].
func finiteIn(v, lo, hi float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= lo && v <= hi
}
