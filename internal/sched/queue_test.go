package sched

import (
	"fmt"
	"math/rand"
	"testing"
)

func mkJob(id, tenant string, priority int) *Job {
	return &Job{ID: id, Tenant: tenant, Spec: JobSpec{Tenant: tenant, Kind: KindCV, Priority: priority}}
}

func TestQueueCapacityRejects(t *testing.T) {
	q := newFairQueue(3)
	for i := 0; i < 3; i++ {
		if !q.Push(mkJob(fmt.Sprintf("j-%d", i), "a", 0), 1) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if q.Push(mkJob("j-overflow", "a", 0), 1) {
		t.Fatal("push beyond capacity accepted")
	}
	// Draining one slot re-admits.
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if !q.Push(mkJob("j-readmit", "a", 0), 1) {
		t.Fatal("push after drain rejected")
	}
}

// TestQueueFairShareNoStarvation is the ISSUE's acceptance property: a
// tenant submitting 10× the jobs cannot starve the minority tenant.
// With equal weights, stride scheduling interleaves them 1:1 until the
// light tenant drains, so every light job is dispatched within the
// first 2×k pops.
func TestQueueFairShareNoStarvation(t *testing.T) {
	q := newFairQueue(128)
	for i := 0; i < 50; i++ {
		q.Push(mkJob(fmt.Sprintf("heavy-%02d", i), "heavy", 0), 1)
	}
	for i := 0; i < 5; i++ {
		q.Push(mkJob(fmt.Sprintf("light-%02d", i), "light", 0), 1)
	}
	lastLight := -1
	for i := 0; i < 55; i++ {
		job, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if job.Tenant == "light" {
			lastLight = i
		}
	}
	if lastLight > 10 {
		t.Fatalf("light tenant's final job dispatched at position %d; 10:1 imbalance starved it", lastLight)
	}
}

// TestQueueWeightedShare verifies weights skew the interleave: a
// weight-3 tenant should receive about three dispatches per dispatch
// of a weight-1 tenant.
func TestQueueWeightedShare(t *testing.T) {
	q := newFairQueue(256)
	for i := 0; i < 60; i++ {
		q.Push(mkJob(fmt.Sprintf("big-%02d", i), "big", 0), 3)
		q.Push(mkJob(fmt.Sprintf("small-%02d", i), "small", 0), 1)
	}
	big := 0
	for i := 0; i < 40; i++ {
		job, _ := q.Pop()
		if job.Tenant == "big" {
			big++
		}
	}
	// Exactly 3:1 in steady state; allow slack for the initial ties.
	if big < 26 || big > 34 {
		t.Fatalf("weight-3 tenant got %d of first 40 dispatches, want ~30", big)
	}
}

func TestQueuePriorityWithinTenant(t *testing.T) {
	q := newFairQueue(16)
	q.Push(mkJob("low-1", "a", 1), 1)
	q.Push(mkJob("high", "a", 5), 1)
	q.Push(mkJob("low-2", "a", 1), 1)
	var got []string
	for i := 0; i < 3; i++ {
		job, _ := q.Pop()
		got = append(got, job.ID)
	}
	want := []string{"high", "low-1", "low-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", got, want)
		}
	}
}

// TestQueueIdleTenantCannotBankCredit: a tenant that idles while
// another drains the queue must not re-enter with an ancient pass and
// monopolise dispatch.
func TestQueueIdleTenantCannotBankCredit(t *testing.T) {
	q := newFairQueue(128)
	// Tenant a alone dispatches 20 jobs; its pass advances to 20.
	for i := 0; i < 20; i++ {
		q.Push(mkJob(fmt.Sprintf("a-%02d", i), "a", 0), 1)
	}
	for i := 0; i < 20; i++ {
		q.Pop()
	}
	// Tenant b was idle the whole time. Now both submit 10.
	for i := 0; i < 10; i++ {
		q.Push(mkJob(fmt.Sprintf("a2-%02d", i), "a", 0), 1)
		q.Push(mkJob(fmt.Sprintf("b-%02d", i), "b", 0), 1)
	}
	bRun := 0
	for i := 0; i < 10; i++ {
		job, _ := q.Pop()
		if job.Tenant == "b" {
			bRun++
		}
	}
	if bRun < 3 || bRun > 7 {
		t.Fatalf("idle tenant b got %d of first 10 dispatches after re-entry, want ~5", bRun)
	}
}

func TestQueueRemoveAndConservation(t *testing.T) {
	q := newFairQueue(256)
	rng := rand.New(rand.NewSource(7))
	pushed := 0
	var victim string
	for i := 0; i < 100; i++ {
		tenant := fmt.Sprintf("t%d", rng.Intn(4))
		id := fmt.Sprintf("%s-j%d", tenant, i)
		if q.Push(mkJob(id, tenant, rng.Intn(10)), float64(1+rng.Intn(3))) {
			pushed++
			if i == 42 {
				victim = id
			}
		}
	}
	if !q.Remove(victim) {
		t.Fatalf("queued job %s not removable", victim)
	}
	popped := 0
	for q.Len() > 0 {
		if _, ok := q.Pop(); ok {
			popped++
		}
	}
	if popped != pushed-1 {
		t.Fatalf("conservation: pushed %d, removed 1, popped %d", pushed, popped)
	}
	if q.Remove("never-existed") {
		t.Fatal("removed a job that was never queued")
	}
}

func TestQueueCloseUnblocksAndKeepsBacklog(t *testing.T) {
	q := newFairQueue(8)
	q.Push(mkJob("j-1", "a", 0), 1)
	done := make(chan bool)
	go func() {
		q.Pop() // takes j-1 (or j-2, whichever lands first)
		_, ok := q.Pop()
		done <- ok
	}()
	q.Push(mkJob("j-2", "a", 0), 1)
	// j-2 may or may not be taken before Close lands; what matters is
	// that Pop returns false after Close instead of hanging.
	q.Close()
	if ok := <-done; ok {
		// The second Pop legitimately got j-2 before Close; a third Pop
		// must now report closed.
		if _, ok := q.Pop(); ok {
			t.Fatal("Pop returned a job after Close")
		}
	}
	if q.Push(mkJob("j-3", "a", 0), 1) {
		t.Fatal("Push accepted after Close")
	}
}
