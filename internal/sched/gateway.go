package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ice/internal/sched/health"
	"ice/internal/telemetry"
	"ice/internal/trace"
)

// Gateway exposes a Scheduler over HTTP/JSON — the multi-tenant intake
// the paper's remote operators submit experiments through:
//
//	POST /v1/jobs             submit a JobSpec  → 202 + job, 429 + Retry-After when saturated
//	GET  /v1/jobs             list jobs (?tenant= filters)
//	GET  /v1/jobs/{id}        one job's state and result
//	GET  /v1/jobs/{id}/events live progress as server-sent events
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	GET  /v1/leases           active instrument leases
//	GET  /v1/metrics          one coherent snapshot of every series
//	                          (text by default, ?format=json for JSON)
//	GET  /v1/traces           stored trace summaries, newest first
//	GET  /v1/traces/{id}      one trace: spans + critical-path breakdown
type Gateway struct {
	S     *Scheduler
	reg   *telemetry.Registry
	mux   *http.ServeMux
	ready func() ReadyStatus
}

// ReadyStatus is GET /v1/readyz: whether this gateway is serving its
// facility, in which role, and how far its replication stream lags.
// A standalone gateway is always the leader of its own (unnamed)
// facility with no replication; a cluster node installs its own
// provider with SetReady.
type ReadyStatus struct {
	Ready    bool   `json:"ready"`
	Role     string `json:"role"` // "leader" or "replica"
	Facility string `json:"facility,omitempty"`
	Term     uint64 `json:"term,omitempty"`
	// ReplicationLag counts records accepted locally but not yet
	// acknowledged by all peers (0 when fully replicated).
	ReplicationLag int64           `json:"replication_lag"`
	Peers          map[string]bool `json:"peers,omitempty"`
}

// NewGateway wires the routes and assembles the metrics registry: the
// scheduler's QoS collector plus the tracer's span, store, and
// flight-recorder counters, all served from one Snapshot.
func NewGateway(s *Scheduler) *Gateway {
	reg := telemetry.NewRegistry()
	reg.AddCollector("", s.Metrics())
	reg.AddSource(traceSource(s.Tracer()))
	g := &Gateway{S: s, reg: reg, mux: http.NewServeMux()}
	g.mux.HandleFunc("POST /v1/jobs", g.submit)
	g.mux.HandleFunc("GET /v1/jobs", g.list)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.job)
	g.mux.HandleFunc("GET /v1/jobs/{id}/events", g.events)
	g.mux.HandleFunc("POST /v1/jobs/{id}/cancel", g.cancel)
	g.mux.HandleFunc("GET /v1/leases", g.leases)
	g.mux.HandleFunc("GET /v1/metrics", g.metrics)
	g.mux.HandleFunc("GET /v1/traces", g.traces)
	g.mux.HandleFunc("GET /v1/traces/{id}", g.traceByID)
	g.mux.HandleFunc("GET /v1/healthz", g.healthz)
	g.mux.HandleFunc("GET /v1/readyz", g.readyz)
	return g
}

// Registry returns the gateway's metrics registry; a cluster node
// adds its replication/leadership gauges to it so /v1/metrics and
// /v1/readyz tell one coherent story.
func (g *Gateway) Registry() *telemetry.Registry { return g.reg }

// SetReady installs the readiness provider (cluster role, term,
// replication lag). Without one, readyz reports a standalone leader
// whose lag comes from the collector's cluster.replication.lag gauge
// (zero when no cluster is attached).
func (g *Gateway) SetReady(f func() ReadyStatus) { g.ready = f }

// healthz is process liveness plus the instrument health view: the
// per-instrument breaker snapshots and the count currently
// quarantined. The process answers 200 even with instruments down —
// operators watch the quarantined count, orchestrators the status code.
func (g *Gateway) healthz(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		OK          bool                    `json:"ok"`
		Quarantined int                     `json:"quarantined,omitempty"`
		Instruments []health.ResourceHealth `json:"instruments,omitempty"`
	}{OK: true}
	if sup := g.S.Health(); sup != nil {
		resp.Instruments = sup.Snapshot()
		for _, ih := range resp.Instruments {
			if ih.State != health.Closed {
				resp.Quarantined++
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// readyz reports role and replication health; 503 while not ready so
// load balancers and peers stop routing here.
func (g *Gateway) readyz(w http.ResponseWriter, r *http.Request) {
	st := ReadyStatus{Ready: true, Role: "leader"}
	if g.ready != nil {
		st = g.ready()
	} else {
		st.ReplicationLag = g.S.Metrics().GaugeValue("cluster.replication.lag")
	}
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// traceSource exposes the tracer's counters as metric series.
func traceSource(tr *trace.Tracer) telemetry.Source {
	return func() map[string]int64 {
		st := tr.Stats()
		out := map[string]int64{
			"trace.spans.started":  st.Started,
			"trace.spans.finished": st.Finished,
			"trace.spans.sampled":  st.Sampled,
			"trace.spans.dropped":  st.Dropped,
			"trace.spans.errors":   st.Errors,
			"trace.tail_rescued":   st.TailRescued,
			"trace.recorder.dumps": st.RecorderDump,
		}
		if store := tr.Store(); store != nil {
			ss := store.Stats()
			out["trace.store.traces"] = int64(ss.Traces)
			out["trace.store.spans"] = int64(ss.Spans)
			out["trace.store.evicted_traces"] = ss.EvictedTraces
			out["trace.store.dropped_spans"] = ss.DroppedSpans
		}
		if rec := tr.Recorder(); rec != nil {
			rs := rec.Stats()
			out["trace.recorder.held"] = int64(rs.Held)
			out["trace.recorder.noted"] = rs.Noted
			out["trace.recorder.evicted"] = rs.Evicted
		}
		return out
	}
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error      string  `json:"error"`
	RetryAfter float64 `json:"retry_after_s,omitempty"`
	// Permanent: resubmitting unchanged will never succeed here; try
	// another facility instead of sleeping on Retry-After.
	Permanent bool `json:"permanent,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

// submit is the admission edge: *Busy rejections become 429 with a
// Retry-After header so well-behaved clients back off instead of
// hammering a saturated gateway.
func (g *Gateway) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxJobSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	spec, err := DecodeJobSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := g.S.Submit(spec)
	if err != nil {
		var busy *Busy
		var unavail *Unavailable
		switch {
		case errors.As(err, &busy):
			secs := int(busy.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, apiError{
				Error:      busy.Reason,
				RetryAfter: busy.RetryAfter.Seconds(),
			})
		case errors.As(err, &unavail):
			// 503, not 429: the facility is sick, not saturated. The
			// Retry-After reflects the quarantine cool-down so the client
			// resubmits when a recovery probe could have run.
			secs := int(unavail.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusServiceUnavailable, apiError{
				Error:      unavail.Reason,
				RetryAfter: unavail.RetryAfter.Seconds(),
				Permanent:  unavail.Permanent,
			})
		case errors.Is(err, ErrStopped):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (g *Gateway) list(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	jobs := g.S.Jobs()
	if tenant != "" {
		filtered := jobs[:0]
		for _, j := range jobs {
			if j.Tenant == tenant {
				filtered = append(filtered, j)
			}
		}
		jobs = filtered
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []Job `json:"jobs"`
	}{Jobs: jobs})
}

func (g *Gateway) job(w http.ResponseWriter, r *http.Request) {
	job, ok := g.S.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// events streams the job's progress as server-sent events: the full
// backlog first, then live events until the job reaches a terminal
// state or the client disconnects.
func (g *Gateway) events(w http.ResponseWriter, r *http.Request) {
	past, live, unsub, err := g.S.Events(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	defer unsub()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, ev := range past {
		if !writeEvent(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				fmt.Fprint(w, "event: end\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			if !writeEvent(ev) {
				return
			}
		}
	}
}

func (g *Gateway) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := g.S.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	job, _ := g.S.Job(id)
	writeJSON(w, http.StatusAccepted, job)
}

func (g *Gateway) leases(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Leases []LeaseInfo `json:"leases"`
	}{Leases: g.S.Leases().Active()})
}

func (g *Gateway) metrics(w http.ResponseWriter, r *http.Request) {
	snap := g.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, strings.Join(snap.Render(), "\n"))
}

// TraceResponse is GET /v1/traces/{id}: the trace's spans in start
// order plus the critical-path decomposition of its wall time.
type TraceResponse struct {
	TraceID   string          `json:"trace_id"`
	Spans     []trace.Record  `json:"spans"`
	Breakdown trace.Breakdown `json:"breakdown"`
}

func (g *Gateway) traces(w http.ResponseWriter, r *http.Request) {
	store := g.S.Tracer().Store()
	if store == nil {
		writeError(w, http.StatusNotFound, "tracing has no store attached")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []trace.Summary `json:"traces"`
	}{Traces: store.Summaries()})
}

func (g *Gateway) traceByID(w http.ResponseWriter, r *http.Request) {
	store := g.S.Tracer().Store()
	if store == nil {
		writeError(w, http.StatusNotFound, "tracing has no store attached")
		return
	}
	id := r.PathValue("id")
	recs := store.Trace(id)
	if len(recs) == 0 {
		writeError(w, http.StatusNotFound, "unknown trace")
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{
		TraceID:   id,
		Spans:     recs,
		Breakdown: trace.Analyze(recs),
	})
}
