package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ice/internal/telemetry"
	"ice/internal/trace"
)

// Default instrument resources the gateway leases out. A deployment
// with more channels or units registers more names; the manager
// creates resources lazily on first acquisition.
const (
	// ResourceSP200 is the potentiostat's channel 1.
	ResourceSP200 = "sp200/ch1"
	// ResourceJKem is J-Kem unit 1 (syringe pumps, gas, collector).
	ResourceJKem = "jkem/u1"
	// ResourceScan is the scan-steering microscope's first column — the
	// default lease a scan job gates on when the facility config does
	// not name its own.
	ResourceScan = "stem/scan1"
)

// ErrLeaseRevoked is returned by Renew after the manager has revoked
// the lease (TTL expired without a heartbeat, or the manager closed).
var ErrLeaseRevoked = errors.New("sched: lease revoked")

// LeaseInfo is the externally visible state of one active lease.
type LeaseInfo struct {
	// Resource is the leased instrument.
	Resource string `json:"resource"`
	// Holder identifies the leaseholder (job or cell).
	Holder string `json:"holder"`
	// ExpiresUnixNano is when the lease lapses without renewal.
	ExpiresUnixNano int64 `json:"expires"`
}

// Leases hands out exclusive, TTL'd leases over instrument resources.
// Holders renew by heartbeat; a holder that stops heartbeating — a
// crashed worker, a wedged network — loses the lease when its TTL
// lapses, and the next waiter acquires the instrument instead of the
// lab staying wedged forever.
type Leases struct {
	ttl     time.Duration
	now     func() time.Time
	metrics *telemetry.Collector

	mu        sync.Mutex
	closed    bool
	resources map[string]*leaseState

	// quarantined, when set, vetoes grants on sick instruments: a free
	// resource for which it returns true is not granted, and the waiter
	// polls until the health supervisor recovers the instrument and
	// calls WakeAll.
	quarantined func(resource string) bool
	// onExpired, when set, observes TTL revocations — the scheduler
	// feeds them to the health supervisor as instrument-class failures
	// (a heartbeat that died mid-hold is wedge evidence). Called in a
	// fresh goroutine: the observer's downstream (supervisor →
	// scheduler → WakeAll) re-enters this mutex.
	onExpired func(resource, holder string)
}

// leaseState is one resource's slot: the current grant (if any) and a
// wake channel closed whenever the slot may have freed.
type leaseState struct {
	grant   *Lease
	expires time.Time
	wake    chan struct{}
}

// Lease is one exclusive grant. The holder renews it with Renew and
// returns it with Release; both are safe after revocation. The handle
// itself is immutable — whether it still owns the slot is decided
// under the manager's lock, so a heartbeat goroutine and a revoking
// manager never race on shared state.
type Lease struct {
	// Resource and Holder identify the grant.
	Resource string
	Holder   string

	m *Leases
}

// NewLeases returns a manager granting leases with the given TTL
// (default 10s when ttl <= 0).
func NewLeases(ttl time.Duration) *Leases {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	return &Leases{
		ttl:       ttl,
		now:       time.Now,
		resources: make(map[string]*leaseState),
	}
}

// SetMetrics attaches a collector: the "sched.leases.active" gauge
// tracks grants, and "sched.leases.expired" counts TTL revocations.
func (m *Leases) SetMetrics(c *telemetry.Collector) { m.metrics = c }

// TTL returns the configured lease duration.
func (m *Leases) TTL() time.Duration { return m.ttl }

// SetQuarantined installs the health veto. Set it before the scheduler
// starts granting; passing nil removes the veto.
func (m *Leases) SetQuarantined(fn func(resource string) bool) {
	m.mu.Lock()
	m.quarantined = fn
	m.mu.Unlock()
}

// SetOnExpired installs the TTL-revocation observer.
func (m *Leases) SetOnExpired(fn func(resource, holder string)) {
	m.mu.Lock()
	m.onExpired = fn
	m.mu.Unlock()
}

// WakeAll signals every waiter to retry — called when an instrument
// leaves quarantine, since no release or expiry event fires then.
func (m *Leases) WakeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.resources {
		m.wakeLocked(st)
	}
}

// Acquire blocks until the resource is free (or its current lease
// expires un-renewed), then grants an exclusive lease to holder.
func (m *Leases) Acquire(ctx context.Context, resource, holder string) (*Lease, error) {
	for {
		lease, wake, remaining, err := m.tryAcquire(resource, holder)
		if err != nil {
			return nil, err
		}
		if lease != nil {
			return lease, nil
		}
		// Wait for a release/revocation signal, the incumbent's TTL, or
		// cancellation — whichever lands first.
		timer := time.NewTimer(remaining)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// TryAcquire grants the lease immediately or reports the incumbent.
func (m *Leases) TryAcquire(resource, holder string) (*Lease, error) {
	lease, _, _, err := m.tryAcquire(resource, holder)
	if err != nil {
		return nil, err
	}
	if lease == nil {
		m.mu.Lock()
		q := m.quarantined != nil && m.quarantined(resource)
		free := m.resources[resource] == nil || m.resources[resource].grant == nil
		m.mu.Unlock()
		if q && free {
			return nil, fmt.Errorf("sched: %s is quarantined", resource)
		}
		return nil, fmt.Errorf("sched: %s is leased", resource)
	}
	return lease, nil
}

// tryAcquire attempts the grant. When the resource is held it returns
// the slot's wake channel and the incumbent's remaining TTL so the
// caller can wait precisely.
func (m *Leases) tryAcquire(resource, holder string) (*Lease, chan struct{}, time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, 0, fmt.Errorf("sched: lease manager closed")
	}
	st, ok := m.resources[resource]
	if !ok {
		st = &leaseState{wake: make(chan struct{})}
		m.resources[resource] = st
	}
	m.expireLocked(resource, st)
	if st.grant != nil {
		return nil, st.wake, st.expires.Sub(m.now()), nil
	}
	if m.quarantined != nil && m.quarantined(resource) {
		// The slot is free but the instrument is sick. Poll on a short
		// interval: recovery wakes waiters via WakeAll, the timer is
		// the backstop if that signal is lost.
		poll := m.ttl / 4
		if poll < 50*time.Millisecond {
			poll = 50 * time.Millisecond
		}
		if poll > time.Second {
			poll = time.Second
		}
		return nil, st.wake, poll, nil
	}
	lease := &Lease{Resource: resource, Holder: holder, m: m}
	st.grant = lease
	st.expires = m.now().Add(m.ttl)
	if m.metrics != nil {
		m.metrics.Gauge("sched.leases.active").Inc()
	}
	return lease, nil, 0, nil
}

// expireLocked revokes the resource's grant if its TTL has lapsed.
// The stale holder's handle is not touched — its next Renew or
// Release finds st.grant no longer pointing at it and fails or no-ops.
func (m *Leases) expireLocked(resource string, st *leaseState) {
	if st.grant == nil || m.now().Before(st.expires) {
		return
	}
	holder := st.grant.Holder
	st.grant = nil
	m.wakeLocked(st)
	if m.metrics != nil {
		m.metrics.Gauge("sched.leases.active").Dec()
		m.metrics.Counter("sched.leases.expired").Inc()
	}
	if m.onExpired != nil {
		// Fresh goroutine: the observer chain re-enters m.mu.
		go m.onExpired(resource, holder)
	}
}

// wakeLocked signals waiters that the slot may have freed.
func (m *Leases) wakeLocked(st *leaseState) {
	close(st.wake)
	st.wake = make(chan struct{})
}

// Renew extends the lease by a full TTL. It fails with ErrLeaseRevoked
// once the manager has expired or released the grant — the signal for
// a slow worker that it no longer owns the instrument.
func (l *Lease) Renew() error {
	if l == nil {
		return ErrLeaseRevoked
	}
	m := l.m
	if m == nil {
		return ErrLeaseRevoked
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.resources[l.Resource]
	if !ok || st.grant != l {
		return ErrLeaseRevoked
	}
	m.expireLocked(l.Resource, st)
	if st.grant != l {
		return ErrLeaseRevoked
	}
	st.expires = m.now().Add(m.ttl)
	return nil
}

// Release returns the lease. Releasing an already-revoked lease is a
// no-op.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	m := l.m
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.resources[l.Resource]
	if !ok || st.grant != l {
		return
	}
	st.grant = nil
	m.wakeLocked(st)
	if m.metrics != nil {
		m.metrics.Gauge("sched.leases.active").Dec()
	}
}

// Active lists current grants (expired ones are swept first), sorted
// by resource for stable output.
func (m *Leases) Active() []LeaseInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []LeaseInfo
	for name, st := range m.resources {
		m.expireLocked(name, st)
		if st.grant == nil {
			continue
		}
		out = append(out, LeaseInfo{
			Resource:        name,
			Holder:          st.grant.Holder,
			ExpiresUnixNano: st.expires.UnixNano(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out
}

// Close revokes every grant and fails future acquisitions.
func (m *Leases) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, st := range m.resources {
		if st.grant != nil {
			st.grant = nil
			if m.metrics != nil {
				m.metrics.Gauge("sched.leases.active").Dec()
			}
		}
		m.wakeLocked(st)
	}
}

// InstrumentGate adapts lease acquisition to the sync.Locker contract
// campaign executors and fleets already speak: Lock acquires every
// configured resource (in sorted order, so concurrent gates cannot
// deadlock) and starts a heartbeat that renews the leases while held;
// Unlock stops the heartbeat and releases them. Installing one as
// Executor.InstrumentGate (or Fleet.Gate) makes the instrument lease
// release at exactly the point the fleet gate releases — right after
// GetTechPathRslt — so one tenant's WAN retrieval and analysis overlap
// the next tenant's instrument time.
type InstrumentGate struct {
	// M is the lease manager.
	M *Leases
	// Resources are the instruments to lease (default: SP200 + J-Kem).
	Resources []string
	// Holder identifies the leaseholder in LeaseInfo.
	Holder string
	// HeartbeatEvery paces renewal (default TTL/3).
	HeartbeatEvery time.Duration
	// OnEvent, when set, receives "acquired <res>" / "released <res>"
	// notifications (the gateway forwards them to the job's SSE stream).
	OnEvent func(msg string)
	// TraceCtx, when set, parents the gate's spans: each Lock opens a
	// "lease.acquire" (sched-class) span covering the wait for the
	// instruments and then a "lease.held" (instrument-class) span, ended
	// by the matching Unlock. The held span carries the holder attr, so
	// the critical-path analyzer can measure one holder's data phase
	// overlapping another's instrument hold.
	TraceCtx context.Context

	mu       sync.Mutex
	held     []*Lease
	stopHB   chan struct{}
	heldSpan *trace.Span
}

// Lock implements sync.Locker: it blocks until every resource is
// leased.
func (g *InstrumentGate) Lock() {
	resources := append([]string(nil), g.Resources...)
	if len(resources) == 0 {
		resources = []string{ResourceSP200, ResourceJKem}
	}
	sort.Strings(resources)
	var acqSpan *trace.Span
	if g.TraceCtx != nil {
		_, acqSpan = trace.Start(g.TraceCtx, "lease.acquire", trace.ClassSched)
		acqSpan.SetAttr("holder", g.Holder)
	}
	leases := make([]*Lease, 0, len(resources))
	for _, res := range resources {
		lease, err := g.M.Acquire(context.Background(), res, g.Holder)
		if err != nil {
			// Manager closed mid-shutdown: surrender what we hold and
			// park; the campaign's context is being cancelled anyway.
			for _, l := range leases {
				l.Release()
			}
			leases = nil
			break
		}
		leases = append(leases, lease)
		if g.OnEvent != nil {
			g.OnEvent("acquired " + res)
		}
	}
	acqSpan.End()
	var heldSpan *trace.Span
	if g.TraceCtx != nil && len(leases) > 0 {
		_, heldSpan = trace.Start(g.TraceCtx, "lease.held", trace.ClassInstrument)
		heldSpan.SetAttr("holder", g.Holder)
	}
	hb := g.HeartbeatEvery
	if hb <= 0 {
		hb = g.M.TTL() / 3
	}
	stop := make(chan struct{})
	go heartbeat(leases, hb, stop)
	g.mu.Lock()
	g.held = leases
	g.stopHB = stop
	g.heldSpan = heldSpan
	g.mu.Unlock()
}

// Unlock implements sync.Locker: it stops the heartbeat and releases
// the leases.
func (g *InstrumentGate) Unlock() {
	g.mu.Lock()
	held, stop, heldSpan := g.held, g.stopHB, g.heldSpan
	g.held, g.stopHB, g.heldSpan = nil, nil, nil
	g.mu.Unlock()
	heldSpan.End()
	if stop != nil {
		close(stop)
	}
	for _, l := range held {
		l.Release()
		if g.OnEvent != nil {
			g.OnEvent("released " + l.Resource)
		}
	}
}

// heartbeat renews the leases every interval until stopped. A renewal
// failure means the manager revoked us (the TTL lapsed, e.g. under a
// stop-the-world pause); nothing to do but stop renewing — the next
// Acquire will queue afresh.
func heartbeat(leases []*Lease, every time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			for _, l := range leases {
				if err := l.Renew(); err != nil {
					return
				}
			}
		}
	}
}
