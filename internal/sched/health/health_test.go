package health

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cool-down tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3})
	if b.Failure("one") || b.Failure("two") {
		t.Fatal("breaker opened below the failure threshold")
	}
	if b.State() != Closed {
		t.Fatalf("state = %v before threshold, want closed", b.State())
	}
	if !b.Failure("three") {
		t.Fatal("third consecutive failure did not open the breaker")
	}
	if b.State() != Open {
		t.Fatalf("state = %v after threshold, want open", b.State())
	}
	// Further failures while open are absorbed, not re-transitions.
	if b.Failure("four") {
		t.Error("failure while open reported a transition")
	}
	if got := b.Snapshot().Opens; got != 1 {
		t.Errorf("opens = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3})
	b.Failure("one")
	b.Failure("two")
	b.Success()
	b.Failure("three")
	b.Failure("four")
	if b.State() != Closed {
		t.Fatal("interleaved success did not reset the consecutive-failure count")
	}
}

func TestBreakerTripBypassesThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 5})
	if !b.Trip("phase budget blown") {
		t.Fatal("Trip did not open a closed breaker")
	}
	if b.State() != Open {
		t.Fatalf("state = %v after Trip, want open", b.State())
	}
	if b.Trip("again") {
		t.Error("Trip on an already-open breaker reported a transition")
	}
}

func TestBreakerRecoveryCycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: 10 * time.Second, Now: clk.Now})
	b.Failure("wedged")
	if b.ProbeDue() {
		t.Fatal("open breaker inside its cool-down admitted a probe")
	}
	// A lucky success while open must not unquarantine.
	if b.Success() {
		t.Fatal("success while open recovered the breaker without a half-open probe")
	}
	clk.Advance(11 * time.Second)
	if !b.ProbeDue() {
		t.Fatal("cool-down elapsed but no probe admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after cool-down, want half-open", b.State())
	}
	if !b.Success() {
		t.Fatal("half-open success did not recover the breaker")
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after recovery, want closed", b.State())
	}
	snap := b.Snapshot()
	if snap.Opens != 1 || snap.Recovered != 1 {
		t.Errorf("opens/recovered = %d/%d, want 1/1", snap.Opens, snap.Recovered)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: 10 * time.Second, Now: clk.Now})
	b.Failure("wedged")
	clk.Advance(11 * time.Second)
	b.ProbeDue() // → half-open
	if !b.Failure("still busy") {
		t.Fatal("half-open failure did not re-open")
	}
	// The cool-down restarted: no probe until another OpenFor passes.
	if b.ProbeDue() {
		t.Fatal("re-opened breaker admitted a probe without a fresh cool-down")
	}
	clk.Advance(11 * time.Second)
	if !b.ProbeDue() {
		t.Fatal("second cool-down elapsed but no probe admitted")
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "deadline reached" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassWorkload},
		{context.Canceled, ClassWorkload},
		{fmt.Errorf("run: %w", context.Canceled), ClassWorkload},
		{context.DeadlineExceeded, ClassInstrument},
		{fmt.Errorf("step 7: %w", context.DeadlineExceeded), ClassInstrument},
		{&net.OpError{Op: "dial", Err: timeoutErr{}}, ClassTransport},
		{io.EOF, ClassTransport},
		{io.ErrUnexpectedEOF, ClassTransport},
		{errors.New("dial tcp 10.0.0.1:9999: connection refused"), ClassTransport},
		{errors.New("write: broken pipe"), ClassTransport},
		{errors.New("potentiostat: Connect invalid in current state off"), ClassInstrument},
		{errors.New("potentiostat: injected device fault: StartChannel"), ClassInstrument},
		{errors.New("run cancelled: potentiostat: acquisition aborted after 128 records"), ClassInstrument},
		{errors.New("lease expired while held by j-000007"), ClassInstrument},
		{errors.New("sp200 acquire phase exceeded its 1.5s budget"), ClassInstrument},
		{errors.New("cv spec: scan rate 900 mV/s out of range"), ClassWorkload},
		{errors.New("some application error"), ClassWorkload},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestSupervisorQuarantineAndRecovery(t *testing.T) {
	var mu sync.Mutex
	probeErr := errors.New("potentiostat: injected device fault: Status")
	fenced := 0
	var transitions []Transition

	sup := NewSupervisor(Config{
		ProbeInterval: time.Hour, // probes only via ProbeNow
		ProbeTimeout:  time.Second,
		Breaker:       BreakerConfig{FailureThreshold: 2, OpenFor: time.Millisecond},
		OnTransition: func(tr Transition) {
			mu.Lock()
			transitions = append(transitions, tr)
			mu.Unlock()
		},
		Fence: func(ctx context.Context, resource string) {
			mu.Lock()
			fenced++
			mu.Unlock()
		},
	})
	sup.Register("sp200/ch1", func(ctx context.Context, recovering bool) error {
		mu.Lock()
		defer mu.Unlock()
		return probeErr
	})
	sup.Start()
	defer sup.Stop()

	sup.ProbeNow("sp200/ch1")
	if sup.Quarantined("sp200/ch1") {
		t.Fatal("quarantined after one failure with threshold 2")
	}
	sup.ProbeNow("sp200/ch1")
	if !sup.Quarantined("sp200/ch1") {
		t.Fatal("not quarantined after reaching the failure threshold")
	}
	if got := sup.QuarantinedList(); len(got) != 1 || got[0] != "sp200/ch1" {
		t.Fatalf("QuarantinedList = %v", got)
	}

	// Heal the instrument; after the cool-down a half-open probe closes
	// the breaker.
	mu.Lock()
	probeErr = nil
	mu.Unlock()
	time.Sleep(5 * time.Millisecond) // cool-down (1ms) elapses
	sup.ProbeNow("sp200/ch1")
	if sup.Quarantined("sp200/ch1") {
		t.Fatal("still quarantined after a successful recovery probe")
	}

	sup.Stop() // waits for the async fence
	mu.Lock()
	defer mu.Unlock()
	if fenced != 1 {
		t.Errorf("fence ran %d times, want 1", fenced)
	}
	if len(transitions) != 2 {
		t.Fatalf("transitions = %+v, want open then closed", transitions)
	}
	if transitions[0].To != Open || transitions[1].To != Closed {
		t.Errorf("transition sequence = %+v", transitions)
	}
}

func TestSupervisorProbeTimeoutDetectsHang(t *testing.T) {
	sup := NewSupervisor(Config{
		ProbeInterval: time.Hour,
		ProbeTimeout:  20 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour},
	})
	// A hung controller: the probe never answers; only the supervisor's
	// deadline notices.
	sup.Register("sp200/ch1", func(ctx context.Context, recovering bool) error {
		<-ctx.Done()
		return ctx.Err()
	})
	sup.Start()
	defer sup.Stop()
	sup.ProbeNow("sp200/ch1")
	if !sup.Quarantined("sp200/ch1") {
		t.Fatal("hung probe did not quarantine the instrument")
	}
	snap := sup.Snapshot()
	if len(snap) != 1 || snap[0].State != Open {
		t.Fatalf("snapshot = %+v, want one open instrument", snap)
	}
}

func TestSupervisorRecoveringProbeFlag(t *testing.T) {
	var mu sync.Mutex
	var sawRecovering bool
	sup := NewSupervisor(Config{
		ProbeInterval: time.Hour,
		ProbeTimeout:  time.Second,
		Breaker:       BreakerConfig{FailureThreshold: 1, OpenFor: time.Millisecond},
	})
	sup.Register("sp200/ch1", func(ctx context.Context, recovering bool) error {
		mu.Lock()
		defer mu.Unlock()
		if recovering {
			sawRecovering = true
		}
		return nil
	})
	sup.Start()
	defer sup.Stop()

	sup.ProbeNow("sp200/ch1")
	mu.Lock()
	if sawRecovering {
		mu.Unlock()
		t.Fatal("closed-state liveness probe ran with recovering=true")
	}
	mu.Unlock()

	sup.ReportWedge("sp200/ch1", "budget blown")
	time.Sleep(5 * time.Millisecond)
	sup.ProbeNow("sp200/ch1")
	mu.Lock()
	defer mu.Unlock()
	if !sawRecovering {
		t.Fatal("half-open probe did not run with recovering=true")
	}
}
