package health

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
)

// Class is a failure attribution: who is to blame decides what the
// scheduler does about it.
type Class string

const (
	// ClassTransport: the network between facilities misbehaved. The
	// instrument itself may be fine — retry cheaply, only repeated
	// transport failures should open a breaker.
	ClassTransport Class = "transport"
	// ClassInstrument: the instrument (or its controller) is sick —
	// bad state, injected fault, a phase that blew its budget, a lease
	// heartbeat that died while held. Counts against the breaker and
	// justifies quarantine.
	ClassInstrument Class = "instrument"
	// ClassWorkload: the job itself is at fault (validation error,
	// cancellation, its own deadline exhausted). Never counts against
	// an instrument.
	ClassWorkload Class = "workload"
)

// Classify attributes an error to a failure class. The scheduler
// layers job-deadline awareness on top: a context.DeadlineExceeded is
// attributed to the instrument only when the job's own deadline had
// not yet arrived (i.e. a per-phase sub-budget fired, which is
// evidence of a hang rather than a slow workload).
func Classify(err error) Class {
	if err == nil {
		return ClassWorkload
	}
	if errors.Is(err, context.Canceled) {
		return ClassWorkload
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// A deadline that fired mid-phase is hang evidence. Callers
		// who know the job budget itself expired should not report the
		// failure here at all.
		return ClassInstrument
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return ClassTransport
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ClassTransport
	}
	msg := err.Error()
	for _, pat := range transportPatterns {
		if strings.Contains(msg, pat) {
			return ClassTransport
		}
	}
	for _, pat := range instrumentPatterns {
		if strings.Contains(msg, pat) {
			return ClassInstrument
		}
	}
	return ClassWorkload
}

// transportPatterns match errors from the dial/stream layer; Go's net
// package wraps syscall errors in text that survives fmt.Errorf
// chains even when errors.As cannot reach the original type.
var transportPatterns = []string{
	"connection refused",
	"connection reset",
	"broken pipe",
	"use of closed network connection",
	"no such host",
	"i/o timeout",
	"dial tcp",
}

// instrumentPatterns match instrument-side failures that arrive as
// rendered text through the pyro error envelope (the daemon transports
// error strings, not error values).
var instrumentPatterns = []string{
	"invalid in current state", // potentiostat ErrBadState
	"injected device fault",    // potentiostat/jkem fault injection
	"acquisition aborted",      // potentiostat ErrAborted (fenced run)
	"lease expired while held", // heartbeat died mid-hold
	"exceeded its",             // phase budget wrapper text
	"OVERLOAD",                 // persistent range overload
}
