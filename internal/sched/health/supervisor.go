package health

import (
	"context"
	"sort"
	"sync"
	"time"

	"ice/internal/telemetry"
)

// Prober issues one cheap status read against an instrument. The
// recovering flag is true for half-open probes deciding whether to
// close the breaker; probers should apply stricter criteria there
// (e.g. the potentiostat prober also requires no busy channel, since a
// legitimate holder cannot exist while the instrument is quarantined —
// a channel still busy means the wedge survived).
type Prober func(ctx context.Context, recovering bool) error

// Transition describes one breaker state change.
type Transition struct {
	Resource string
	From, To State
	Cause    string
}

// Config parameterises a Supervisor.
type Config struct {
	// ProbeInterval paces the background probe loop (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe call (default 500ms) — a probe
	// that cannot answer inside it counts as a failure, which is how a
	// hung controller is detected at all.
	ProbeTimeout time.Duration
	// Breaker configures every instrument's breaker.
	Breaker BreakerConfig
	// OnTransition, when set, is called (outside supervisor locks) on
	// every breaker state change.
	OnTransition func(Transition)
	// OnProbe, when set, observes every probe outcome.
	OnProbe func(resource string, recovering bool, err error)
	// Fence, when set, is called once (async) when a breaker opens —
	// the hook that aborts whatever the quarantined instrument is
	// doing so a wedged run cannot complete behind the scheduler's
	// back and break exactly-once accounting.
	Fence func(ctx context.Context, resource string)
	// Metrics, when set, receives breaker gauges and probe counters.
	Metrics *telemetry.Collector
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	return c
}

// Supervisor runs per-instrument circuit breakers and the background
// probe loop. It knows nothing about jobs or leases; the scheduler
// subscribes via OnTransition/Changed and asks Quarantined before
// granting work.
type Supervisor struct {
	cfg Config

	mu          sync.Mutex
	instruments map[string]*instrument
	changed     chan struct{}
	stop        chan struct{}
	started     bool
	wg          sync.WaitGroup
}

type instrument struct {
	resource string
	breaker  *Breaker
	prober   Prober
	probing  bool // a probe is in flight; skip this tick
}

// ResourceHealth is one instrument's externally visible health.
type ResourceHealth struct {
	Resource string `json:"resource"`
	BreakerSnapshot
}

// NewSupervisor returns a supervisor with no instruments registered.
func NewSupervisor(cfg Config) *Supervisor {
	return &Supervisor{
		cfg:         cfg.withDefaults(),
		instruments: make(map[string]*instrument),
		changed:     make(chan struct{}),
		stop:        make(chan struct{}),
	}
}

// Register adds an instrument. A nil prober is allowed: the breaker
// then moves only on reported outcomes (runner errors, lease expiry),
// and recovery happens via ReportSuccess or a half-open ProbeNow from
// an operator. Safe to call before or after Start.
func (s *Supervisor) Register(resource string, prober Prober) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.instruments[resource]; ok {
		if prober != nil {
			s.instruments[resource].prober = prober
		}
		return
	}
	s.instruments[resource] = &instrument{
		resource: resource,
		breaker:  NewBreaker(s.cfg.Breaker),
		prober:   prober,
	}
	s.setGauge(resource, Closed)
}

// Start launches the background probe loop. Idempotent.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.wg.Add(1)
	go s.probeLoop()
}

// Stop halts the probe loop and waits for in-flight probes.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

func (s *Supervisor) probeLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.probeTick()
		}
	}
}

// probeTick probes every due instrument concurrently; each instrument
// has at most one probe in flight.
func (s *Supervisor) probeTick() {
	s.mu.Lock()
	var due []*instrument
	for _, in := range s.instruments {
		if in.prober == nil || in.probing {
			continue
		}
		if !in.breaker.ProbeDue() {
			continue
		}
		in.probing = true
		due = append(due, in)
	}
	s.mu.Unlock()
	for _, in := range due {
		in := in
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.probeOne(in)
		}()
	}
}

func (s *Supervisor) probeOne(in *instrument) {
	recovering := in.breaker.State() == HalfOpen
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
	err := in.prober(ctx, recovering)
	cancel()
	s.mu.Lock()
	in.probing = false
	s.mu.Unlock()
	if s.cfg.OnProbe != nil {
		s.cfg.OnProbe(in.resource, recovering, err)
	}
	if s.cfg.Metrics != nil {
		if err != nil {
			s.cfg.Metrics.Counter("health.probes.fail").Inc()
		} else {
			s.cfg.Metrics.Counter("health.probes.ok").Inc()
		}
	}
	if err != nil {
		from := in.breaker.State()
		if opened := in.breaker.Failure("probe: " + err.Error()); opened {
			s.transitioned(in, from, Open, "probe: "+err.Error())
		}
		return
	}
	from := in.breaker.State()
	if recovered := in.breaker.Success(); recovered {
		s.transitioned(in, from, Closed, "recovery probe succeeded")
	}
}

// ProbeNow runs one synchronous probe against the instrument (tests
// and operator tooling; the background loop uses the same path).
func (s *Supervisor) ProbeNow(resource string) {
	s.mu.Lock()
	in, ok := s.instruments[resource]
	if !ok || in.prober == nil || in.probing {
		s.mu.Unlock()
		return
	}
	// ProbeDue performs the Open → HalfOpen move when the cool-down
	// has elapsed; skip probing an instrument still cooling down.
	if !in.breaker.ProbeDue() {
		s.mu.Unlock()
		return
	}
	in.probing = true
	s.mu.Unlock()
	s.probeOne(in)
}

// ReportFailure feeds one instrument-class failure observed outside
// the probe loop (a runner error, a lease that expired while held).
// Transport- and workload-class errors should not be reported here;
// the caller classifies first.
func (s *Supervisor) ReportFailure(resource, cause string) {
	s.mu.Lock()
	in, ok := s.instruments[resource]
	s.mu.Unlock()
	if !ok {
		return
	}
	from := in.breaker.State()
	if opened := in.breaker.Failure(cause); opened {
		s.transitioned(in, from, Open, cause)
	}
}

// ReportWedge opens the breaker immediately — hard evidence such as a
// phase budget blown mid-acquire, where waiting out the failure
// threshold would wedge more jobs on a known-sick instrument.
func (s *Supervisor) ReportWedge(resource, cause string) {
	s.mu.Lock()
	in, ok := s.instruments[resource]
	s.mu.Unlock()
	if !ok {
		return
	}
	from := in.breaker.State()
	if opened := in.breaker.Trip(cause); opened {
		s.transitioned(in, from, Open, cause)
	}
}

// ReportSuccess feeds one successful instrument interaction.
func (s *Supervisor) ReportSuccess(resource string) {
	s.mu.Lock()
	in, ok := s.instruments[resource]
	s.mu.Unlock()
	if !ok {
		return
	}
	from := in.breaker.State()
	if recovered := in.breaker.Success(); recovered {
		s.transitioned(in, from, Closed, "reported success")
	}
}

// transitioned records a state change: gauges, counters, the Changed
// broadcast, the fence (on open), and the OnTransition callback. Never
// called with supervisor locks held.
func (s *Supervisor) transitioned(in *instrument, from, to State, cause string) {
	s.setGauge(in.resource, to)
	if s.cfg.Metrics != nil {
		switch to {
		case Open:
			s.cfg.Metrics.Counter("health.quarantines").Inc()
		case Closed:
			s.cfg.Metrics.Counter("health.recoveries").Inc()
		}
	}
	s.broadcast()
	if to == Open && s.cfg.Fence != nil {
		resource := in.resource
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
			defer cancel()
			s.cfg.Fence(ctx, resource)
		}()
	}
	if s.cfg.OnTransition != nil {
		s.cfg.OnTransition(Transition{Resource: in.resource, From: from, To: to, Cause: cause})
	}
}

func (s *Supervisor) setGauge(resource string, st State) {
	if s.cfg.Metrics == nil {
		return
	}
	s.cfg.Metrics.Gauge("health.breaker." + resource).Set(int64(st))
}

// broadcast closes and replaces the changed channel.
func (s *Supervisor) broadcast() {
	s.mu.Lock()
	close(s.changed)
	s.changed = make(chan struct{})
	s.mu.Unlock()
}

// Changed returns a channel closed at the next breaker transition.
// Grab a fresh one after each wake.
func (s *Supervisor) Changed() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.changed
}

// Quarantined reports whether the resource's breaker is open or
// half-open (a half-open instrument is still quarantined: only the
// recovery probe may touch it). Unregistered resources are healthy.
func (s *Supervisor) Quarantined(resource string) bool {
	s.mu.Lock()
	in, ok := s.instruments[resource]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return in.breaker.State() != Closed
}

// QuarantinedList returns the sorted quarantined resources.
func (s *Supervisor) QuarantinedList() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name, in := range s.instruments {
		if in.breaker.State() != Closed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every instrument's health, sorted by resource.
func (s *Supervisor) Snapshot() []ResourceHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ResourceHealth, 0, len(s.instruments))
	for name, in := range s.instruments {
		out = append(out, ResourceHealth{Resource: name, BreakerSnapshot: in.breaker.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out
}
