// Package health supervises instrument liveness for the scheduler: a
// per-instrument circuit breaker (closed → open → half-open), a
// background probe loop that issues cheap status reads, and a failure
// classifier that separates transport hiccups from sick instruments
// and from workload bugs. The scheduler quarantines instruments whose
// breaker is open; this package deliberately knows nothing about jobs
// or leases so the dependency points one way (sched imports health).
package health

import (
	"fmt"
	"sync"
	"time"
)

// State is a circuit-breaker position.
type State int

const (
	// Closed: the instrument is believed healthy; work flows.
	Closed State = iota
	// Open: the instrument is quarantined; no work is dispatched and
	// no lease is granted until a recovery probe succeeds.
	Open
	// HalfOpen: the cool-down elapsed and a recovery probe is in
	// flight; the next probe outcome decides Open vs Closed.
	HalfOpen
)

// String renders the state for logs and metrics labels.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig parameterises one breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive instrument-class
	// failures that opens the breaker (default 3). Trip bypasses it.
	FailureThreshold int
	// OpenFor is the cool-down before an open breaker admits a
	// half-open recovery probe (default 5s).
	OpenFor time.Duration
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is one instrument's circuit breaker. All methods are safe
// for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	lastCause string    // most recent failure description
	opens     int64     // lifetime open transitions
	recovered int64     // lifetime open→closed recoveries
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Failure records one instrument-class failure. It reports whether
// this failure transitioned the breaker to Open. A failure observed
// during HalfOpen (the recovery probe failed) re-opens immediately and
// restarts the cool-down.
func (b *Breaker) Failure(cause string) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastCause = cause
	switch b.state {
	case Open:
		return false
	case HalfOpen:
		b.openLocked()
		return true
	default:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openLocked()
			return true
		}
		return false
	}
}

// Trip opens the breaker immediately regardless of the failure count —
// for hard evidence like a phase-budget timeout, where waiting for two
// more failures just wedges two more jobs. Reports whether this call
// performed the transition.
func (b *Breaker) Trip(cause string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		return false
	}
	b.lastCause = cause
	b.openLocked()
	return true
}

func (b *Breaker) openLocked() {
	b.state = Open
	b.failures = 0
	b.openedAt = b.cfg.Now()
	b.opens++
}

// Success records one successful interaction (a probe or a completed
// job phase). It reports whether this success recovered the breaker
// from quarantine (HalfOpen → Closed).
func (b *Breaker) Success() (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.state = Closed
		b.failures = 0
		b.recovered++
		return true
	case Open:
		// Successes while Open are ignored: recovery must go through
		// a half-open probe so a single lucky call can't unquarantine
		// a flapping instrument.
		return false
	default:
		b.failures = 0
		return false
	}
}

// ProbeDue reports whether a recovery probe should run now, and moves
// Open → HalfOpen when the cool-down has elapsed. Closed breakers are
// always probe-eligible (cheap liveness checks); an Open breaker
// inside its cool-down is not.
func (b *Breaker) ProbeDue() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		return true
	default:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
			b.state = HalfOpen
			return true
		}
		return false
	}
}

// State returns the current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSnapshot is a point-in-time view for healthz and metrics.
type BreakerSnapshot struct {
	State     State  `json:"-"`
	StateName string `json:"state"`
	Failures  int    `json:"consecutive_failures,omitempty"`
	LastCause string `json:"last_cause,omitempty"`
	Opens     int64  `json:"opens,omitempty"`
	Recovered int64  `json:"recoveries,omitempty"`
	// OpenForMS is how long the breaker has been open (0 when closed).
	OpenForMS int64 `json:"open_for_ms,omitempty"`
}

// Snapshot returns the current view.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerSnapshot{
		State:     b.state,
		StateName: b.state.String(),
		Failures:  b.failures,
		LastCause: b.lastCause,
		Opens:     b.opens,
		Recovered: b.recovered,
	}
	if b.state != Closed && !b.openedAt.IsZero() {
		s.OpenForMS = b.cfg.Now().Sub(b.openedAt).Milliseconds()
	}
	return s
}
