package sched

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/sched/health"
	"ice/internal/telemetry"
)

// LabProber bridges the health supervisor to the lab: it builds cheap
// status probes and quarantine fences over the gateway's Connector,
// sharing one lazily-opened pyro session across all probes (opening a
// control connection per probe would itself stress a sick agent).
//
//	p := &LabProber{Connector: conn}
//	sched.RegisterProber(sched.ResourceSP200, p.ProberFor(sched.ResourceSP200))
//	sched.RegisterProber(sched.ResourceJKem, p.ProberFor(sched.ResourceJKem))
//	sched.SetFence(p.FenceFor)
type LabProber struct {
	// Connector opens the probe session (same connector the runner uses).
	Connector Connector

	mu      sync.Mutex
	session *core.RemoteSession
	mount   datachan.Share
	// probes / failures count outcomes for the telemetry source.
	probes, failures int64
}

// acquireSession returns the shared probe session, dialling on first use.
func (p *LabProber) acquireSession() (*core.RemoteSession, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.session != nil {
		return p.session, nil
	}
	session, mount, err := p.Connector.ConnectSession()
	if err != nil {
		return nil, fmt.Errorf("probe connect: %w", err)
	}
	// The probe session doubles as the liveness sentinel: its watchdog
	// heartbeats feed the session.* series HealthSource exports.
	session.StartWatchdog(2*time.Second, 3)
	p.session, p.mount = session, mount
	return session, nil
}

// dropSession tears the shared session down so the next probe redials —
// called after a transport-class probe failure, where the session
// itself (not the instrument) may be the broken part.
func (p *LabProber) dropSession() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closeLocked()
}

func (p *LabProber) closeLocked() {
	if p.session != nil {
		p.session.Close()
		p.session = nil
	}
	if p.mount != nil {
		p.mount.Close()
		p.mount = nil
	}
}

// Close releases the probe session.
func (p *LabProber) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closeLocked()
}

// ProberFor builds the health.Prober for one instrument. Probes are
// cheap status reads bounded by the supervisor's ProbeTimeout — the
// deadline is the hang detector. A half-open recovery probe for the
// potentiostat additionally requires the channel to be idle: while the
// instrument was quarantined no legitimate holder existed, so a busy
// channel means the wedged acquisition is still draining and the
// breaker must stay open.
func (p *LabProber) ProberFor(resource string) health.Prober {
	class := resourceClass(resource)
	return func(ctx context.Context, recovering bool) error {
		session, err := p.acquireSession()
		if err != nil {
			p.count(err)
			return err
		}
		switch class {
		case "sp200":
			status, err := session.SP200StatusCtx(ctx)
			if err == nil && recovering && !strings.Contains(status, "busy=0") {
				err = fmt.Errorf("sp200 recovery probe: channel still busy (%s)", status)
			}
			p.afterProbe(err)
			return err
		case "jkem":
			_, err := session.JKemStatusCtx(ctx)
			p.afterProbe(err)
			return err
		default:
			err := fmt.Errorf("probe: unknown instrument class %q", class)
			p.count(err)
			return err
		}
	}
}

// afterProbe counts the outcome and drops the shared session on
// transport-class failures so the next probe redials fresh.
func (p *LabProber) afterProbe(err error) {
	p.count(err)
	if err != nil && health.Classify(err) == health.ClassTransport {
		p.dropSession()
	}
}

func (p *LabProber) count(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probes++
	if err != nil {
		p.failures++
	}
}

// FenceFor is the quarantine fence: when the potentiostat's breaker
// opens mid-acquisition the fence aborts the channel, so the wedged
// run terminates as an explicit ErrAborted partial instead of
// completing behind the scheduler's back after the job was already
// checkpoint-requeued (which would double-count against exactly-once
// accounting). The J-Kem needs no fence: its commands are discrete.
func (p *LabProber) FenceFor(ctx context.Context, resource string) {
	if resourceClass(resource) != "sp200" {
		return
	}
	session, err := p.acquireSession()
	if err != nil {
		return
	}
	session.BindCallContext(ctx)
	defer session.BindCallContext(context.Background())
	// Abort is tolerated when no acquisition is running.
	if _, err := session.AbortSP200(); err != nil {
		p.dropSession()
	}
}

// HealthSource exposes probe traffic — and, when the probe session is
// open, its watchdog's session.* liveness series — to /v1/metrics.
func (p *LabProber) HealthSource() telemetry.Source {
	return func() map[string]int64 {
		p.mu.Lock()
		out := map[string]int64{
			"probe.total":     p.probes,
			"probe.failures":  p.failures,
			"probe.connected": 0,
		}
		session := p.session
		p.mu.Unlock()
		if session != nil {
			out["probe.connected"] = 1
			for k, v := range session.HealthSource("session.")() {
				out[k] = v
			}
		}
		return out
	}
}

// resourceClass extracts the instrument class from a lease resource
// name: "sp200/ch1" → "sp200", and with a facility scope,
// "facA/sp200/ch1" → "sp200" or "labA-sp200/ch1" → "sp200".
func resourceClass(resource string) string {
	parts := strings.Split(resource, "/")
	class := parts[0]
	if len(parts) >= 2 {
		class = parts[len(parts)-2]
	}
	if i := strings.LastIndexByte(class, '-'); i >= 0 {
		class = class[i+1:]
	}
	return class
}
