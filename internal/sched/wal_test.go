package sched

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func walSpec(tenant string) *JobSpec {
	return &JobSpec{Tenant: tenant, Kind: KindCV}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, jobs, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh WAL replayed %d jobs", len(jobs))
	}
	must := func(rec WALRecord) {
		t.Helper()
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(WALRecord{Job: "j-000001", Tenant: "acl", State: StatePending, Spec: walSpec("acl")})
	must(WALRecord{Job: "j-000001", State: StateRunning, Attempt: 1})
	must(WALRecord{Job: "j-000001", State: StateDone, Result: json.RawMessage(`{"points":600}`)})
	must(WALRecord{Job: "j-000002", Tenant: "dgx", State: StatePending, Spec: walSpec("dgx")})
	must(WALRecord{Job: "j-000002", State: StateRunning, Attempt: 1})
	must(WALRecord{Job: "j-000003", Tenant: "acl", State: StatePending, Spec: walSpec("acl")})
	w.Close()

	_, jobs, err = OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	byID := map[string]*Job{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	if j := byID["j-000001"]; j.State != StateDone || string(j.Result) != `{"points":600}` {
		t.Fatalf("j-000001 replayed as %+v", j)
	}
	// The RUNNING job is the crash-recovery case: its spec and tenant
	// must survive from the PENDING record.
	if j := byID["j-000002"]; j.State != StateRunning || j.Tenant != "dgx" || j.Spec.Kind != KindCV || j.Attempts != 1 {
		t.Fatalf("j-000002 replayed as %+v", j)
	}
	if j := byID["j-000003"]; j.State != StatePending {
		t.Fatalf("j-000003 replayed as %+v", j)
	}
	if got := highestJobSeq(jobs); got != 3 {
		t.Fatalf("highestJobSeq = %d, want 3", got)
	}
}

// TestWALTruncatedTailTolerated: a crash mid-append leaves a partial
// final line; replay must drop it and keep everything before it.
func TestWALTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(WALRecord{Job: "j-000001", Tenant: "acl", State: StatePending, Spec: walSpec("acl")})
	w.Append(WALRecord{Job: "j-000001", State: StateRunning, Attempt: 1})
	w.Close()

	path := filepath.Join(dir, WALFileName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"job":"j-000001","state":"DO`) // power cut mid-write
	f.Close()

	_, jobs, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("truncated tail rejected: %v", err)
	}
	if len(jobs) != 1 || jobs[0].State != StateRunning {
		t.Fatalf("replay after truncation = %+v, want one RUNNING job", jobs)
	}
}

// TestWALInteriorCorruptionRejected: garbage before the last line is
// real corruption, not a crash signature — silently skipping it could
// resurrect a completed job, so replay must fail loudly.
func TestWALInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		`{"job":"j-000001","tenant":"acl","state":"PENDING"}`,
		`{"job":"j-000001","state":"DO`, // corrupt, NOT last
		`{"job":"j-000002","tenant":"dgx","state":"PENDING"}`,
	}
	if err := os.WriteFile(filepath.Join(dir, WALFileName), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir); err == nil {
		t.Fatal("interior corruption replayed without error")
	}
}

func TestWALLatestRecordWins(t *testing.T) {
	r := strings.NewReader(strings.Join([]string{
		`{"job":"j-000001","tenant":"acl","state":"PENDING","spec":{"tenant":"acl","kind":"cv"}}`,
		`{"job":"j-000001","state":"RUNNING","attempt":1}`,
		`{"job":"j-000001","state":"PENDING"}`, // re-enqueued after restart
		`{"job":"j-000001","state":"RUNNING","attempt":2}`,
		`{"job":"j-000001","state":"DONE","result":{"ok":true}}`,
	}, "\n") + "\n")
	jobs, err := ReplayWAL(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
	j := jobs[0]
	if j.State != StateDone || j.Attempts != 2 || j.Tenant != "acl" {
		t.Fatalf("folded job = %+v", j)
	}
}
