package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/dag"
	"ice/internal/netsim"
	"ice/internal/workflow"
)

// deployLab stands up one fresh simulated lab with auditing on.
func deployLab(t *testing.T) (*core.Deployment, string) {
	t.Helper()
	labDir := filepath.Join(t.TempDir(), "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.Agent.EnableAudit(); err != nil {
		t.Fatal(err)
	}
	return d, labDir
}

func auditCounts(t *testing.T, labDir string) map[string]int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(labDir, core.AuditFileName))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := core.ParseAuditJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, e := range entries {
		counts[e.Method]++
	}
	return counts
}

func runJob(t *testing.T, s *Scheduler, spec JobSpec) Job {
	t.Helper()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := s.WaitTerminal(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job %s = %s (%s), want DONE", job.ID, final.State, final.Error)
	}
	return final
}

func exampleDAG(t *testing.T, name string) json.RawMessage {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "dag", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDAGJobMatchesClassicCV is the headline equivalence drill: the
// shipped cv_classic.json DAG, run on a fresh lab, must produce a
// measurement digest-identical to the hardwired cv job on an equally
// fresh lab — and the same ML normality verdict — then hit the
// content-keyed cache on resubmission without touching the
// instrument again.
func TestDAGJobMatchesClassicCV(t *testing.T) {
	clf, err := dag.ClassifierForSeed(dag.DefaultClassifierSeed)
	if err != nil {
		t.Fatal(err)
	}

	// Classic path on lab A.
	dA, _ := deployLab(t)
	sA, err := New(Config{Dir: filepath.Join(t.TempDir(), "state"), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sA.SetRunner(&LabRunner{
		Connector:  &DeploymentConnector{D: dA, Host: netsim.HostDGX},
		Leases:     sA.Leases(),
		Dir:        sA.Dir(),
		Classifier: clf,
	})
	if err := sA.Start(); err != nil {
		t.Fatal(err)
	}
	defer sA.Stop()
	classicJob := runJob(t, sA, JobSpec{Tenant: "acl", Kind: KindCV})
	var classic CVResult
	if err := json.Unmarshal(classicJob.Result, &classic); err != nil {
		t.Fatal(err)
	}
	if classic.SHA256 == "" || classic.ClassName == "" {
		t.Fatalf("classic result incomplete: %+v", classic)
	}

	// DAG path on fresh lab B.
	dB, labB := deployLab(t)
	sB, err := New(Config{Dir: filepath.Join(t.TempDir(), "state"), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sB.SetRunner(&LabRunner{
		Connector:  &DeploymentConnector{D: dB, Host: netsim.HostDGX},
		Leases:     sB.Leases(),
		Dir:        sB.Dir(),
		Classifier: clf,
		Metrics:    sB.Metrics(),
	})
	if err := sB.Start(); err != nil {
		t.Fatal(err)
	}
	defer sB.Stop()
	spec := JobSpec{Tenant: "acl", Kind: KindDAG, DAG: exampleDAG(t, "cv_classic.json")}
	dagJob := runJob(t, sB, spec)
	var res dag.Result
	if err := json.Unmarshal(dagJob.Result, &res); err != nil {
		t.Fatal(err)
	}
	nodes := make(map[string]dag.NodeResult)
	for _, n := range res.Nodes {
		nodes[n.Node] = n
	}
	if got := nodes["d_retrieve"].Digest; got != classic.SHA256 {
		t.Errorf("DAG measurement digest %s, classic %s — paths diverged", got, classic.SHA256)
	}
	if got := nodes["d_analyze"].Points; got != classic.Points {
		t.Errorf("DAG points %d, classic %d", got, classic.Points)
	}
	if got := nodes["d_classify"].ClassName; got != classic.ClassName {
		t.Errorf("DAG verdict %q, classic %q", got, classic.ClassName)
	}
	if res.NodesRun != len(res.Nodes) {
		t.Errorf("first run: %d/%d nodes live", res.NodesRun, len(res.Nodes))
	}

	// Resubmission: every cacheable node (acquire, retrieve, analyze,
	// classify) is served from the content-keyed cache; effectful
	// pyro/fill nodes re-run, so the dispense count doubles while the
	// acquisition count must not.
	rerunJob := runJob(t, sB, spec)
	var rerun dag.Result
	if err := json.Unmarshal(rerunJob.Result, &rerun); err != nil {
		t.Fatal(err)
	}
	if rerun.NodesCached < 4 {
		t.Errorf("re-run cached %d nodes, want >= 4 (acquire/retrieve/analyze/classify)", rerun.NodesCached)
	}
	if got := sB.Metrics().CounterValue("dag.nodes.cached"); got < 4 {
		t.Errorf("dag.nodes.cached = %d, want >= 4", got)
	}
	counts := auditCounts(t, labB)
	if counts["StartChannelSP200"] != 1 {
		t.Errorf("StartChannelSP200 ×%d across original+cached runs, want exactly 1", counts["StartChannelSP200"])
	}
	if counts["DispenseSyringePump"] != 2 {
		t.Errorf("DispenseSyringePump ×%d, want 2 (fills are never cached)", counts["DispenseSyringePump"])
	}
	if active := sB.Leases().Active(); len(active) != 0 {
		t.Fatalf("leaked leases: %+v", active)
	}
}

// TestDAGCrashResumeExactlyOnce kills the daemon (kill -9 semantics)
// right after the retrieve node checkpoints, restarts over the same
// state directory, and requires completion with the finished nodes
// restored — the retrieve payload served from the content-keyed blob
// store — and an audit journal proving no command re-ran.
func TestDAGCrashResumeExactlyOnce(t *testing.T) {
	d, labDir := deployLab(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	connector := &DeploymentConnector{D: d, Host: netsim.HostDGX}

	s1, err := New(Config{Dir: stateDir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	var crashOnce sync.Once
	lab1 := &LabRunner{Connector: connector, Leases: s1.Leases(), Dir: stateDir}
	grab := &ctxGrabRunner{inner: lab1, ctxs: make(map[string]context.Context)}
	lab1.OnTask = func(jobID string, rec workflow.TaskRecord) {
		if rec.TaskID != "d_retrieve" || rec.Status != "OK" {
			return
		}
		crashOnce.Do(func() {
			go func() {
				s1.Kill()
				close(killed)
			}()
			<-grab.ctx(jobID).Done()
		})
	}
	s1.SetRunner(grab)
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}

	job, err := s1.Submit(JobSpec{Tenant: "acl", Kind: KindDAG, DAG: exampleDAG(t, "cv_classic.json")})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-killed:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never died at the crash seam")
	}

	s2, err := New(Config{Dir: stateDir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	recovered, ok := s2.Job(job.ID)
	if !ok {
		t.Fatal("crashed job missing after WAL replay")
	}
	if recovered.State != StatePending || !recovered.Resumed {
		t.Fatalf("replayed job = state %s resumed %v, want PENDING resumed", recovered.State, recovered.Resumed)
	}
	s2.SetRunner(&LabRunner{Connector: connector, Leases: s2.Leases(), Dir: stateDir})
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := s2.WaitTerminal(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("resumed job = %s (%s), want DONE", final.State, final.Error)
	}
	if final.Attempts != 2 || !final.Resumed {
		t.Fatalf("resumed job attempts = %d resumed = %v, want 2 resumed", final.Attempts, final.Resumed)
	}
	var res dag.Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.NodesRestored == 0 {
		t.Error("no nodes restored from checkpoint journal on resume")
	}
	nodes := make(map[string]dag.NodeResult)
	for _, n := range res.Nodes {
		nodes[n.Node] = n
	}
	// The restored retrieve's bytes came from the content-keyed blob
	// store; its digest must still match the lab's file right now.
	sess, mount, err := d.ConnectFrom(netsim.HostDGX)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	defer mount.Close()
	sum, _, err := mount.Checksum(nodes["d_retrieve"].File)
	if err != nil {
		t.Fatal(err)
	}
	if sum != nodes["d_retrieve"].Digest {
		t.Fatalf("digest mismatch after resume: result %s, data channel %s", nodes["d_retrieve"].Digest, sum)
	}
	counts := auditCounts(t, labDir)
	for _, method := range []string{"WithdrawSyringePump", "DispenseSyringePump", "StartChannelSP200"} {
		if counts[method] != 1 {
			t.Errorf("audit journal shows %s ×%d, want exactly once", method, counts[method])
		}
	}
	if active := s2.Leases().Active(); len(active) != 0 {
		t.Fatalf("leaked leases after recovery: %+v", active)
	}
}

// kindErrRunner simulates a runner build that lacks the submitted
// kind (a rolling upgrade skew): every run fails with
// ErrUnknownJobKind.
type kindErrRunner struct{}

func (kindErrRunner) Run(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	return nil, fmt.Errorf("%w %q", ErrUnknownJobKind, "warp")
}

// TestUnknownJobKindFailsTerminally covers the satellite: a kind no
// runner handles is workload-class — counted, failed on the first
// attempt, never requeued.
func TestUnknownJobKindFailsTerminally(t *testing.T) {
	// Runner-level contract first: LabRunner tags the error.
	lab := &LabRunner{}
	_, err := lab.Run(context.Background(), Job{Spec: JobSpec{Kind: "warp"}}, func(string, string) {})
	if !errors.Is(err, ErrUnknownJobKind) {
		t.Fatalf("LabRunner.Run(warp) = %v, want ErrUnknownJobKind", err)
	}

	s, err := New(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRunner(kindErrRunner{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	job, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.WaitTerminal(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("job = %s, want FAILED", final.State)
	}
	if final.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (unknown kinds are never requeued)", final.Attempts)
	}
	if got := s.Metrics().CounterValue("sched.jobs.rejected.unknown_type"); got != 1 {
		t.Errorf("sched.jobs.rejected.unknown_type = %d, want 1", got)
	}
}

// TestDAGJobSpecValidation holds admission to the DAG rules: a dag
// job needs a valid document, and cv/campaign jobs reject one.
func TestDAGJobSpecValidation(t *testing.T) {
	bad := []JobSpec{
		{Tenant: "acl", Kind: KindDAG},
		{Tenant: "acl", Kind: KindDAG, DAG: json.RawMessage(`{"name":"x","nodes":[]}`)},
		{Tenant: "acl", Kind: KindDAG, DAG: json.RawMessage(`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"jkem","method":"Status","needs":["a"]}]}`)},
		{Tenant: "acl", Kind: KindDAG, Points: 100, DAG: json.RawMessage(`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"jkem","method":"Status"}]}`)},
		{Tenant: "acl", Kind: KindCV, DAG: json.RawMessage(`{}`)},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d validated, want rejection: %+v", i, spec)
		}
	}
	ok := JobSpec{Tenant: "acl", Kind: KindDAG, DAG: json.RawMessage(`{"name":"x","nodes":[{"id":"a","type":"pyro","object":"jkem","method":"Status"}]}`)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid dag spec rejected: %v", err)
	}
}
