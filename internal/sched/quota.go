package sched

import (
	"sync"
	"time"
)

// TenantLimits are one tenant's admission-control knobs. The zero
// value means "defaults": weight 1, 16 outstanding jobs, no rate
// limit.
type TenantLimits struct {
	// Weight is the fair-share weight (default 1). A weight-2 tenant
	// receives twice the dispatch share of a weight-1 tenant under
	// contention.
	Weight float64 `json:"weight,omitempty"`
	// MaxOutstanding bounds the tenant's queued + running jobs
	// (default 16).
	MaxOutstanding int `json:"max_outstanding,omitempty"`
	// RatePerSec is the sustained submission rate (token-bucket refill;
	// 0 = unlimited).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token-bucket capacity (default: max(1, RatePerSec)).
	Burst float64 `json:"burst,omitempty"`
}

func (l TenantLimits) weight() float64 {
	if l.Weight <= 0 {
		return 1
	}
	return l.Weight
}

func (l TenantLimits) maxOutstanding() int {
	if l.MaxOutstanding <= 0 {
		return 16
	}
	return l.MaxOutstanding
}

func (l TenantLimits) burst() float64 {
	if l.Burst > 0 {
		return l.Burst
	}
	if l.RatePerSec > 1 {
		return l.RatePerSec
	}
	return 1
}

// rateLimiter holds one token bucket per tenant.
type rateLimiter struct {
	mu      sync.Mutex
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(now func() time.Time) *rateLimiter {
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{now: now, buckets: make(map[string]*bucket)}
}

// take spends one token from the tenant's bucket. When the bucket is
// empty it reports false and how long until the next token refills —
// the Retry-After the gateway hands back.
func (r *rateLimiter) take(tenant string, limits TenantLimits) (ok bool, retryAfter time.Duration) {
	if limits.RatePerSec <= 0 {
		return true, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	b, found := r.buckets[tenant]
	if !found {
		b = &bucket{tokens: limits.burst(), last: now}
		r.buckets[tenant] = b
	}
	burst := limits.burst()
	b.tokens += now.Sub(b.last).Seconds() * limits.RatePerSec
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / limits.RatePerSec * float64(time.Second))
}
