package sched

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeJobSpecValid(t *testing.T) {
	cases := []string{
		`{"tenant": "acl", "kind": "cv"}`,
		`{"tenant": "acl", "kind": "cv", "priority": 9, "scan_rate_mvs": 100, "points": 600}`,
		`{"tenant": "dgx", "kind": "campaign", "cells": [{"rounds": [{"concentration_mm": 2}]}]}`,
		`{"tenant": "dgx", "kind": "campaign", "cells": [
			{"name": "a", "rounds": [{"concentration_mm": 1, "scan_rate_mvs": 50}]},
			{"name": "b", "target_peak_ua": 30, "min_mm": 0.25, "max_mm": 5}
		]}`,
		`{"tenant": "stem", "kind": "scan"}`,
		`{"tenant": "stem", "kind": "scan", "scan": {"tiles_x": 6, "tiles_y": 6, "pixels_per_tile": 8, "dwell_us": 2, "min_score": 0.05, "zoom_factor": 4, "max_steers": 2}}`,
	}
	for _, c := range cases {
		if _, err := DecodeJobSpec([]byte(c)); err != nil {
			t.Errorf("valid spec rejected: %v\n  %s", err, c)
		}
	}
}

func TestDecodeJobSpecInvalid(t *testing.T) {
	cases := map[string]string{
		"empty":              ``,
		"not json":           `nope`,
		"no tenant":          `{"kind": "cv"}`,
		"no kind":            `{"tenant": "acl"}`,
		"unknown kind":       `{"tenant": "acl", "kind": "eis"}`,
		"unknown field":      `{"tenant": "acl", "kind": "cv", "bogus": 1}`,
		"trailing garbage":   `{"tenant": "acl", "kind": "cv"} {"more": true}`,
		"priority range":     `{"tenant": "acl", "kind": "cv", "priority": 10}`,
		"negative points":    `{"tenant": "acl", "kind": "cv", "points": -1}`,
		"huge points":        `{"tenant": "acl", "kind": "cv", "points": 1000000}`,
		"cv with cells":      `{"tenant": "acl", "kind": "cv", "cells": [{"rounds": [{}]}]}`,
		"campaign no cells":  `{"tenant": "acl", "kind": "campaign"}`,
		"cell empty":         `{"tenant": "acl", "kind": "campaign", "cells": [{}]}`,
		"rounds and search":  `{"tenant": "acl", "kind": "campaign", "cells": [{"rounds": [{}], "target_peak_ua": 30, "min_mm": 1, "max_mm": 2}]}`,
		"bad search bounds":  `{"tenant": "acl", "kind": "campaign", "cells": [{"target_peak_ua": 30, "min_mm": 5, "max_mm": 1}]}`,
		"tenant with slash":  `{"tenant": "a/b", "kind": "cv"}`,
		"tenant with quote":  `{"tenant": "a\"b", "kind": "cv"}`,
		"tenant with space":  `{"tenant": "a b", "kind": "cv"}`,
		"tenant too long":    `{"tenant": "` + strings.Repeat("x", 65) + `", "kind": "cv"}`,
		"oversized":          `{"tenant": "acl", "kind": "cv", "points": ` + strings.Repeat(" ", MaxJobSpecBytes) + `1}`,
		"nan via string":     `{"tenant": "acl", "kind": "cv", "scan_rate_mvs": 1e999}`,
		"campaign cv fields": `{"tenant": "acl", "kind": "campaign", "points": 100, "cells": [{"rounds": [{}]}]}`,
		"cv with scan":       `{"tenant": "acl", "kind": "cv", "scan": {"tiles_x": 4}}`,
		"campaign with scan": `{"tenant": "acl", "kind": "campaign", "cells": [{"rounds": [{}]}], "scan": {}}`,
		"scan with cells":    `{"tenant": "acl", "kind": "scan", "cells": [{"rounds": [{}]}]}`,
		"scan with points":   `{"tenant": "acl", "kind": "scan", "points": 100}`,
		"scan huge tiles":    `{"tenant": "acl", "kind": "scan", "scan": {"tiles_x": 65}}`,
		"scan neg tiles":     `{"tenant": "acl", "kind": "scan", "scan": {"tiles_y": -1}}`,
		"scan huge pixels":   `{"tenant": "acl", "kind": "scan", "scan": {"pixels_per_tile": 257}}`,
		"scan nan dwell":     `{"tenant": "acl", "kind": "scan", "scan": {"dwell_us": 1e999}}`,
		"scan neg score":     `{"tenant": "acl", "kind": "scan", "scan": {"min_score": -0.5}}`,
		"scan huge zoom":     `{"tenant": "acl", "kind": "scan", "scan": {"zoom_factor": 100}}`,
		"scan many steers":   `{"tenant": "acl", "kind": "scan", "scan": {"max_steers": 9}}`,
		"scan unknown field": `{"tenant": "acl", "kind": "scan", "scan": {"bogus": 1}}`,
	}
	for name, c := range cases {
		if _, err := DecodeJobSpec([]byte(c)); err == nil {
			t.Errorf("%s: invalid spec accepted: %s", name, c)
		}
	}
}

// FuzzDecodeJobSpec holds the gateway's intake parser to its contract:
// arbitrary bytes never panic, and anything it accepts re-validates
// and survives a marshal/decode round trip (so the WAL can persist
// what was admitted).
func FuzzDecodeJobSpec(f *testing.F) {
	f.Add([]byte(`{"tenant": "acl", "kind": "cv"}`))
	f.Add([]byte(`{"tenant": "acl", "kind": "cv", "priority": 3, "scan_rate_mvs": 100.5, "points": 1200}`))
	f.Add([]byte(`{"tenant": "dgx", "kind": "campaign", "cells": [{"name": "c1", "rounds": [{"concentration_mm": 2, "scan_rate_mvs": 50}]}]}`))
	f.Add([]byte(`{"tenant": "dgx", "kind": "campaign", "cells": [{"target_peak_ua": 30, "min_mm": 0.25, "max_mm": 5}]}`))
	f.Add([]byte(`{"tenant":"a","kind":"cv","points":1e4}`))
	f.Add([]byte(`{"tenant": "stem", "kind": "scan", "scan": {"tiles_x": 6, "min_score": 0.05, "zoom_factor": 4}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"tenant": "nul", "kind": "cv"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(data)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
		encoded, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		again, err := DecodeJobSpec(encoded)
		if err != nil {
			t.Fatalf("round-tripped spec rejected: %v\n  %s", err, encoded)
		}
		if again.Tenant != spec.Tenant || again.Kind != spec.Kind || again.Priority != spec.Priority ||
			len(again.Cells) != len(spec.Cells) {
			t.Fatalf("round trip changed the spec: %+v != %+v", again, spec)
		}
	})
}
