package sched

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// stubRunner is a controllable Runner: it reports dispatches and
// blocks each job until released.
type stubRunner struct {
	mu       sync.Mutex
	order    []string // job IDs in dispatch order
	runs     map[string]int
	release  chan struct{} // closed (or fed) to let jobs finish
	started  chan string   // receives each job ID at dispatch
	result   json.RawMessage
	failWith error
	lastCtx  context.Context
	blockCtx bool // when set, block until the job's ctx is cancelled
}

func newStubRunner() *stubRunner {
	return &stubRunner{
		runs:    make(map[string]int),
		release: make(chan struct{}),
		started: make(chan string, 64),
		result:  json.RawMessage(`{"ok":true}`),
	}
}

func (r *stubRunner) Run(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	r.mu.Lock()
	r.order = append(r.order, job.ID)
	r.runs[job.ID]++
	r.lastCtx = ctx
	blockCtx := r.blockCtx
	r.mu.Unlock()
	r.started <- job.ID
	if blockCtx {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-r.release:
	}
	if r.failWith != nil {
		return nil, r.failWith
	}
	return r.result, nil
}

func (r *stubRunner) dispatched() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

func newTestScheduler(t *testing.T, dir string, cfg Config, r Runner) *Scheduler {
	t.Helper()
	cfg.Dir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRunner(r)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchedulerSubmitRunDone(t *testing.T) {
	runner := newStubRunner()
	close(runner.release) // jobs finish immediately
	s := newTestScheduler(t, t.TempDir(), Config{Workers: 1}, runner)
	defer s.Stop()

	job, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := s.WaitTerminal(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || string(final.Result) != `{"ok":true}` || final.Attempts != 1 {
		t.Fatalf("final job = %+v", final)
	}
	events, _, _, err := s.Events(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, e := range events {
		types = append(types, e.Type)
	}
	if len(types) < 3 || types[0] != "queued" || types[len(types)-1] != "done" {
		t.Fatalf("event types = %v, want queued…done", types)
	}
}

func TestSchedulerQueueFullRejectsWithRetryAfter(t *testing.T) {
	runner := newStubRunner() // never released: worker stays busy
	s := newTestScheduler(t, t.TempDir(), Config{Workers: 1, QueueCapacity: 2, RetryAfter: 3 * time.Second}, runner)
	defer func() {
		close(runner.release)
		s.Stop()
	}()

	// First job occupies the worker; K=2 more fill the queue.
	if _, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV}); err != nil {
		t.Fatal(err)
	}
	<-runner.started
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// The (K+1)th queued submission must bounce with a retry hint.
	_, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	var busy *Busy
	if !errors.As(err, &busy) {
		t.Fatalf("overflow submit: err = %v, want *Busy", err)
	}
	if busy.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", busy.RetryAfter)
	}
}

func TestSchedulerTenantQuota(t *testing.T) {
	runner := newStubRunner()
	s := newTestScheduler(t, t.TempDir(), Config{
		Workers:       1,
		DefaultLimits: TenantLimits{MaxOutstanding: 1},
	}, runner)
	defer func() {
		close(runner.release)
		s.Stop()
	}()

	if _, err := s.Submit(JobSpec{Tenant: "greedy", Kind: KindCV}); err != nil {
		t.Fatal(err)
	}
	var busy *Busy
	if _, err := s.Submit(JobSpec{Tenant: "greedy", Kind: KindCV}); !errors.As(err, &busy) {
		t.Fatalf("quota overflow: err = %v, want *Busy", err)
	}
	// Another tenant is unaffected.
	if _, err := s.Submit(JobSpec{Tenant: "other", Kind: KindCV}); err != nil {
		t.Fatalf("independent tenant rejected: %v", err)
	}
}

func TestSchedulerRateLimit(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	s := newTestScheduler(t, t.TempDir(), Config{
		Workers: 1,
		Tenants: map[string]TenantLimits{
			"bursty": {RatePerSec: 0.5, Burst: 2},
		},
	}, runner)
	defer s.Stop()

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "bursty", Kind: KindCV}); err != nil {
			t.Fatalf("within burst %d: %v", i, err)
		}
	}
	_, err := s.Submit(JobSpec{Tenant: "bursty", Kind: KindCV})
	var busy *Busy
	if !errors.As(err, &busy) {
		t.Fatalf("rate overflow: err = %v, want *Busy", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("rate rejection without a retry hint: %+v", busy)
	}
}

// TestSchedulerFairShareAcrossTenants is the scheduler-level starvation
// property: with one worker and a 10:1 submission imbalance, the light
// tenant's jobs are dispatched at their fair interleave, not after the
// heavy tenant's backlog.
func TestSchedulerFairShareAcrossTenants(t *testing.T) {
	runner := newStubRunner()
	s := newTestScheduler(t, t.TempDir(), Config{
		Workers:       1,
		QueueCapacity: 64,
		DefaultLimits: TenantLimits{MaxOutstanding: 32},
	}, runner)
	defer s.Stop()

	jobs := make(map[string]string) // job ID → tenant
	for i := 0; i < 20; i++ {
		job, err := s.Submit(JobSpec{Tenant: "heavy", Kind: KindCV})
		if err != nil {
			t.Fatal(err)
		}
		jobs[job.ID] = "heavy"
	}
	for i := 0; i < 2; i++ {
		job, err := s.Submit(JobSpec{Tenant: "light", Kind: KindCV})
		if err != nil {
			t.Fatal(err)
		}
		jobs[job.ID] = "light"
	}
	// Release jobs one at a time and record the dispatch order.
	var order []string
	for i := 0; i < 22; i++ {
		id := <-runner.started
		order = append(order, jobs[id])
		runner.release <- struct{}{}
	}
	lightSeen, lastLight := 0, -1
	for i, tenant := range order {
		if tenant == "light" {
			lightSeen++
			lastLight = i
		}
	}
	if lightSeen != 2 {
		t.Fatalf("light tenant ran %d of 2 jobs", lightSeen)
	}
	// The first dispatch happened before light submitted (the worker was
	// idle), but both light jobs must land within the first handful.
	if lastLight > 6 {
		t.Fatalf("light tenant's last job at position %d of %v — starved", lastLight, order)
	}
}

func TestSchedulerCancelQueuedAndRunning(t *testing.T) {
	runner := newStubRunner()
	runner.blockCtx = true // running jobs end only by cancellation
	s := newTestScheduler(t, t.TempDir(), Config{Workers: 1}, runner)
	defer s.Stop()

	running, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started
	queued, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if job, _ := s.Job(queued.ID); job.State != StateCancelled {
		t.Fatalf("queued job after cancel = %+v", job)
	}
	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := s.WaitTerminal(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("running job after cancel = %+v", final)
	}
	if err := s.Cancel("j-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

// TestSchedulerCrashReplay is the WAL property test: kill the daemon
// mid-job, restart over the same directory, and the job re-runs to
// completion exactly once — while already-completed jobs stay
// completed and are not re-dispatched.
func TestSchedulerCrashReplay(t *testing.T) {
	dir := t.TempDir()

	runner1 := newStubRunner()
	s1 := newTestScheduler(t, dir, Config{Workers: 1}, runner1)

	// Job 1 completes before the crash.
	done1, err := s1.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	<-runner1.started
	runner1.release <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if final, err := s1.WaitTerminal(ctx, done1.ID); err != nil || final.State != StateDone {
		t.Fatalf("pre-crash job: %v %+v", err, final)
	}

	// Job 2 is RUNNING and job 3 PENDING when the power goes out.
	crashed, err := s1.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	<-runner1.started
	pending, err := s1.Submit(JobSpec{Tenant: "dgx", Kind: KindCampaign,
		Cells: []CellSpec{{Rounds: []RoundSpec{{ConcentrationMM: 1}}}}})
	if err != nil {
		t.Fatal(err)
	}
	s1.Kill()

	// A new daemon over the same state directory.
	runner2 := newStubRunner()
	close(runner2.release)
	s2 := newTestScheduler(t, dir, Config{Workers: 1}, runner2)
	defer s2.Stop()

	for _, id := range []string{crashed.ID, pending.ID} {
		final, err := s2.WaitTerminal(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("recovered job %s = %+v", id, final)
		}
	}
	// The RUNNING job resumed (attempt 2, Resumed flag); the PENDING one
	// started fresh.
	if job, _ := s2.Job(crashed.ID); job.Attempts != 2 || !job.Resumed {
		t.Fatalf("crashed job after recovery = %+v", job)
	}
	if job, _ := s2.Job(pending.ID); job.Attempts != 1 {
		t.Fatalf("pending job after recovery = %+v", job)
	}
	// Exactly-once dispatch per incarnation: the completed job must not
	// re-run, each recovered job ran once on s2.
	if n := runner2.runs[done1.ID]; n != 0 {
		t.Fatalf("completed job re-dispatched %d times after restart", n)
	}
	if runner2.runs[crashed.ID] != 1 || runner2.runs[pending.ID] != 1 {
		t.Fatalf("recovered dispatch counts = %v", runner2.runs)
	}
	// Completed history survives the restart.
	if job, ok := s2.Job(done1.ID); !ok || job.State != StateDone {
		t.Fatalf("pre-crash job lost after restart: %+v", job)
	}
	// A fresh submission does not collide with replayed IDs.
	fresh, err := s2.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == done1.ID || fresh.ID == crashed.ID || fresh.ID == pending.ID {
		t.Fatalf("job ID %s reused after restart", fresh.ID)
	}
	if final, err := s2.WaitTerminal(ctx, fresh.ID); err != nil || final.State != StateDone {
		t.Fatalf("fresh job after restart: %v %+v", err, final)
	}
}

func TestSchedulerStopKeepsQueuedJobsPending(t *testing.T) {
	dir := t.TempDir()
	runner := newStubRunner()
	runner.blockCtx = true
	s := newTestScheduler(t, dir, Config{Workers: 1}, runner)

	if _, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV}); err != nil {
		t.Fatal(err)
	}
	<-runner.started
	queued, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if _, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: %v", err)
	}

	// The queued job survives as PENDING and completes after restart.
	runner2 := newStubRunner()
	close(runner2.release)
	s2 := newTestScheduler(t, dir, Config{Workers: 1}, runner2)
	defer s2.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if final, err := s2.WaitTerminal(ctx, queued.ID); err != nil || final.State != StateDone {
		t.Fatalf("queued job after restart: %v %+v", err, final)
	}
}

func TestSchedulerEventsStream(t *testing.T) {
	runner := newStubRunner()
	s := newTestScheduler(t, t.TempDir(), Config{Workers: 1}, runner)
	defer s.Stop()

	job, err := s.Submit(JobSpec{Tenant: "acl", Kind: KindCV})
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started
	past, live, unsub, err := s.Events(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	if len(past) < 1 || past[0].Type != "queued" {
		t.Fatalf("past events = %+v", past)
	}
	runner.release <- struct{}{}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // closed at terminal state: the contract
			}
			if ev.Job != job.ID {
				t.Fatalf("event for wrong job: %+v", ev)
			}
		case <-deadline:
			t.Fatal("live channel never closed after completion")
		}
	}
}

func TestSchedulerRejectsInvalidSpec(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	s := newTestScheduler(t, t.TempDir(), Config{}, runner)
	defer s.Stop()
	if _, err := s.Submit(JobSpec{Tenant: "acl", Kind: "warp-drive"}); err == nil {
		t.Fatal("invalid spec admitted")
	}
	if _, err := s.Submit(JobSpec{Kind: KindCV}); err == nil {
		t.Fatal("tenantless spec admitted")
	}
}
