package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ice/internal/sched/health"
	"ice/internal/telemetry"
	"ice/internal/trace"
)

// Runner executes one admitted job against the lab. The scheduler
// hands it a cancellable context (cancelled on Cancel/Stop/Kill), a
// snapshot of the job (Resumed/Attempts tell a restarted daemon to
// pick up the workflow journal instead of starting over), and an emit
// callback for progress events. It returns the job's JSON result.
type Runner interface {
	Run(ctx context.Context, job Job, emit func(eventType, message string)) (json.RawMessage, error)
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(ctx context.Context, job Job, emit func(eventType, message string)) (json.RawMessage, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	return f(ctx, job, emit)
}

// Config parameterises a Scheduler. The zero value of every field is
// a usable default.
type Config struct {
	// Dir is the gateway state directory: the job WAL plus per-job
	// workflow journals live here. Required.
	Dir string
	// QueueCapacity bounds queued jobs across all tenants (default 64).
	// At capacity, submissions are rejected with a retry-after.
	QueueCapacity int
	// RetryAfter is the back-off hint attached to full-queue
	// rejections (default 2s).
	RetryAfter time.Duration
	// Workers is how many jobs may run concurrently (default 2 — one
	// tenant's WAN retrieval and analysis overlap the next tenant's
	// instrument time, serialised by the lease manager).
	Workers int
	// LeaseTTL is the instrument lease duration (default 10s).
	LeaseTTL time.Duration
	// DefaultLimits apply to tenants absent from Tenants.
	DefaultLimits TenantLimits
	// Tenants carries per-tenant overrides (weights, quotas, rates).
	Tenants map[string]TenantLimits
	// Metrics receives the gateway's QoS series (optional).
	Metrics *telemetry.Collector
	// Tracer records the scheduler's distributed traces. Left nil, New
	// installs one with a bounded in-memory store and flight recorder,
	// so GET /v1/traces works out of the box.
	Tracer *trace.Tracer
	// IDPrefix namespaces job IDs (default "j", yielding "j-000042").
	// A federated cluster node sets its facility name here, so IDs are
	// collision-free fleet-wide and any gateway can route a status
	// query from the ID alone.
	IDPrefix string
	// WALCommitWindow widens WAL group-commit batches: each fsync
	// waits this long for more records. Zero fsyncs immediately (still
	// batching whatever arrived while the previous fsync ran).
	WALCommitWindow time.Duration
	// WALMirror, when set, replicates every WAL record to the
	// cluster's peer(s): it runs after the record is durable locally
	// and before the append is acknowledged.
	WALMirror func(WALRecord) error
	// Health configures instrument health supervision: circuit
	// breakers, probes, quarantine-aware dispatch, checkpoint-requeue,
	// and deadline admission. The zero value enables it with defaults;
	// set Health.Disabled for the pre-health behaviour.
	Health HealthConfig
}

// jobEntry is the scheduler's in-memory record of one job: its state,
// its event log, and any live SSE subscribers.
type jobEntry struct {
	job    Job
	events []Event
	subs   []chan Event
	// span is the job's root trace span, open from admission (or WAL
	// re-enqueue) until the terminal transition.
	span *trace.Span
	// queued covers the fair-share queue wait: admission to dispatch.
	queued *trace.Span
	// cancelRequested distinguishes a user Cancel from a failure when
	// the runner returns a context error.
	cancelRequested bool
	// requeueRequested marks a running job cut down by an instrument
	// quarantine: its terminal transition is a checkpoint-requeue, not
	// a failure.
	requeueRequested bool
	// resources are the instruments assigned at dispatch (one healthy
	// instance per class); a quarantine of any of them cuts the job.
	resources []string
}

// Scheduler is the multi-tenant experiment scheduler: admission
// control in front, fair-share queue in the middle, lease-guarded
// execution behind, everything journaled through the WAL.
type Scheduler struct {
	cfg     Config
	runner  Runner
	queue   *fairQueue
	leases  *Leases
	wal     *WAL
	limiter *rateLimiter
	metrics *telemetry.Collector
	tracer  *trace.Tracer

	mu        sync.Mutex
	jobs      map[string]*jobEntry
	cancels   map[string]context.CancelFunc
	recovered []*Job
	nextSeq   int
	started   bool
	stopped   bool

	// health is the instrument supervisor (nil when disabled);
	// healthSpan is the long-lived trace span carrying probe and
	// quarantine events; fence is the abort hook fired on quarantine.
	health     *health.Supervisor
	healthSpan *trace.Span
	fence      func(ctx context.Context, resource string)

	// stopCh unblocks workers parked in the dispatch-wait loop (all
	// capable instruments quarantined) when the scheduler shuts down.
	stopCh   chan struct{}
	stopOnce sync.Once

	killed atomic.Bool
	wg     sync.WaitGroup
}

// New opens (or creates) the job store under cfg.Dir and replays it:
// terminal jobs become queryable history, while PENDING and RUNNING
// jobs are staged for re-enqueue when Start runs. Attach a Runner
// with SetRunner before Start.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("sched: config needs a state dir")
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewCollector()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.New(
			trace.WithStore(trace.NewStore(0, 0)),
			trace.WithRecorder(trace.NewRecorder(512)),
		)
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "j"
	}
	wal, replayed, err := OpenWAL(cfg.Dir)
	if err != nil {
		return nil, err
	}
	wal.SetCommitWindow(cfg.WALCommitWindow)
	wal.SetMirror(cfg.WALMirror)
	s := &Scheduler{
		cfg:     cfg,
		queue:   newFairQueue(cfg.QueueCapacity),
		leases:  NewLeases(cfg.LeaseTTL),
		wal:     wal,
		limiter: newRateLimiter(nil),
		metrics: cfg.Metrics,
		tracer:  cfg.Tracer,
		jobs:    make(map[string]*jobEntry),
		cancels: make(map[string]context.CancelFunc),
		stopCh:  make(chan struct{}),
	}
	s.leases.SetMetrics(s.metrics)
	s.initHealth()
	s.nextSeq = highestJobSeq(replayed)
	sortJobsBySubmission(replayed)
	for _, job := range replayed {
		entry := &jobEntry{job: *job}
		s.jobs[job.ID] = entry
		if job.State.Terminal() {
			continue
		}
		// An interrupted job: PENDING never started, RUNNING was cut
		// down mid-flight. Both re-enqueue; RUNNING ones resume through
		// their workflow journal.
		entry.job.Resumed = entry.job.State == StateRunning
		entry.job.State = StatePending
		s.recovered = append(s.recovered, &entry.job)
	}
	return s, nil
}

// SetRunner attaches the job executor. Must be called before Start.
func (s *Scheduler) SetRunner(r Runner) { s.runner = r }

// Leases returns the instrument lease manager (runners install it as
// their campaign gate; the gateway serves it at /v1/leases).
func (s *Scheduler) Leases() *Leases { return s.leases }

// Metrics returns the scheduler's QoS collector.
func (s *Scheduler) Metrics() *telemetry.Collector { return s.metrics }

// Tracer returns the scheduler's tracer (the gateway serves its store
// at /v1/traces).
func (s *Scheduler) Tracer() *trace.Tracer { return s.tracer }

// Dir returns the state directory (runners keep workflow journals
// there).
func (s *Scheduler) Dir() string { return s.cfg.Dir }

// WAL returns the job store; a cluster node stamps leadership terms
// and reads sequence positions through it.
func (s *Scheduler) WAL() *WAL { return s.wal }

// Recovered snapshots the WAL-replayed non-terminal jobs staged for
// re-enqueue (valid between New and Start). A cluster node inspects
// them at join time: jobs a peer already adopted are Disowned instead
// of re-enqueued, so a job never runs at two facilities.
func (s *Scheduler) Recovered() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.recovered))
	for _, j := range s.recovered {
		out = append(out, *j)
	}
	return out
}

// Disown drops a staged recovered job from the re-enqueue list (it
// stays queryable with its replayed state). Must be called between
// New and Start.
func (s *Scheduler) Disown(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, j := range s.recovered {
		if j.ID == id {
			s.recovered = append(s.recovered[:i], s.recovered[i+1:]...)
			return true
		}
	}
	return false
}

// Adopt enqueues a foreign job reconstructed from a replicated peer
// WAL after that peer's gateway died. The job keeps its identity —
// ID, trace, tenant, attempt count — so its spans stitch into the
// original trace and its workflow journal (installed into Dir by the
// caller) resumes it exactly once. A job that had begun running on
// the dead peer resumes; a queued one starts fresh.
func (s *Scheduler) Adopt(job Job) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if !s.started {
		s.mu.Unlock()
		return fmt.Errorf("sched: adopt before start")
	}
	if _, dup := s.jobs[job.ID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("sched: job %s already known", job.ID)
	}
	job.Resumed = job.Resumed || job.State == StateRunning
	job.State = StatePending
	entry := &jobEntry{job: job}
	s.jobs[job.ID] = entry
	s.mu.Unlock()

	// Re-root into the job's persisted trace and mark the handoff: the
	// stitched trace shows the crashed attempt and the adopted resume
	// as one story, joined by the failover event.
	span := s.rootSpan(&entry.job)
	span.SetAttr("adopted", "true")
	span.Event("cluster.failover", "job", job.ID)
	queued := s.queuedSpan(span)
	s.mu.Lock()
	entry.span, entry.queued = span, queued
	snapshot := entry.job
	s.mu.Unlock()

	limits := s.tenantLimits(snapshot.Tenant)
	if !s.queue.Push(&entry.job, limits.weight()) {
		s.mu.Lock()
		delete(s.jobs, snapshot.ID)
		s.mu.Unlock()
		queued.End()
		span.EndErr(fmt.Errorf("adoption rejected: queue full"))
		return &Busy{Reason: "queue full", RetryAfter: s.cfg.RetryAfter}
	}
	s.metrics.Gauge("sched.queue.depth").Inc()
	s.metrics.Counter("sched.jobs.adopted").Inc()
	s.emit(snapshot.ID, "adopted", fmt.Sprintf("adopted from failed peer gateway (attempt %d begun before crash)", snapshot.Attempts))
	return s.wal.Append(WALRecord{
		Job:     snapshot.ID,
		Tenant:  snapshot.Tenant,
		State:   StatePending,
		Spec:    &snapshot.Spec,
		TraceID: snapshot.TraceID,
		Attempt: snapshot.Attempts,
	})
}

// Start launches the worker pool and re-enqueues jobs recovered from
// the WAL.
func (s *Scheduler) Start() error {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("sched: scheduler already started or stopped")
	}
	if s.runner == nil {
		s.mu.Unlock()
		return fmt.Errorf("sched: no runner attached")
	}
	s.started = true
	recovered := s.recovered
	s.recovered = nil
	s.mu.Unlock()

	for _, job := range recovered {
		limits := s.tenantLimits(job.Tenant)
		// Re-root the recovered job into the trace ID persisted in the
		// WAL: the new incarnation's spans land next to the crashed
		// attempt's, stitching the trace across the restart.
		span := s.rootSpan(job)
		span.SetAttr("recovered", "true")
		queued := s.queuedSpan(span)
		s.mu.Lock()
		if e, ok := s.jobs[job.ID]; ok {
			e.span, e.queued = span, queued
		}
		s.mu.Unlock()
		if !s.queue.Push(job, limits.weight()) {
			// Can only happen if the WAL holds more live jobs than the
			// (shrunken) queue capacity; keep the job visible as FAILED
			// rather than silently dropping it.
			s.completeOrphan(job.ID, "recovered job exceeds queue capacity")
			continue
		}
		s.metrics.Gauge("sched.queue.depth").Inc()
		s.metrics.Counter("sched.jobs.recovered").Inc()
		if job.Resumed {
			s.emit(job.ID, "resumed", fmt.Sprintf("re-enqueued after daemon restart (attempt %d begun before crash)", job.Attempts))
		} else {
			s.emit(job.ID, "queued", "re-enqueued after daemon restart")
		}
		// Journal the re-enqueue so a second crash replays the same way.
		s.wal.Append(WALRecord{Job: job.ID, State: StatePending, Attempt: job.Attempts, TraceID: job.TraceID})
	}
	if s.health != nil {
		// The health span is a trace of its own: probe outcomes and
		// quarantine transitions land here (job-affecting transitions
		// are mirrored onto the affected jobs' root spans).
		span := s.tracer.StartTrace("", "instrument.health", trace.ClassInstrument)
		s.mu.Lock()
		s.healthSpan = span
		s.mu.Unlock()
		s.health.Start()
	}
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return nil
}

// Submit runs admission control and enqueues the job: spec validation,
// per-tenant quota, token-bucket rate limit, then bounded queue push.
// Rejections for load return *Busy so the gateway can answer 429 with
// Retry-After instead of blocking the intake.
func (s *Scheduler) Submit(spec JobSpec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	// An unmeetable deadline bounces at the door instead of occupying
	// a lease to certainly fail. This is admission policy, not
	// supervision: it holds even with the probe loop disabled.
	if min := s.cfg.Health.MinDeadline; spec.DeadlineMS > 0 && min > 0 &&
		time.Duration(spec.DeadlineMS)*time.Millisecond < min {
		s.metrics.Counter("sched.jobs.rejected.deadline").Inc()
		return Job{}, &Unavailable{
			Reason:     fmt.Sprintf("deadline %dms below this facility's minimum %v", spec.DeadlineMS, min),
			RetryAfter: s.cfg.RetryAfter,
			Permanent:  true,
		}
	}
	if s.healthApplies(spec) {
		h := s.cfg.Health
		// When every instance of some capable class is quarantined the
		// job cannot start; tell the submitter to come back after the
		// cool-down (or go to another facility).
		if _, blocked, ok := s.assignInstruments(spec); !ok {
			s.metrics.Counter("sched.jobs.rejected.quarantine").Inc()
			retry := h.OpenFor
			if retry < s.cfg.RetryAfter {
				retry = s.cfg.RetryAfter
			}
			return Job{}, &Unavailable{
				Reason:     fmt.Sprintf("every %s instrument is quarantined", blocked),
				RetryAfter: retry,
			}
		}
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return Job{}, ErrStopped
	}
	limits := s.tenantLimitsLocked(spec.Tenant)
	outstanding := 0
	for _, e := range s.jobs {
		if e.job.Tenant == spec.Tenant && !e.job.State.Terminal() {
			outstanding++
		}
	}
	if outstanding >= limits.maxOutstanding() {
		s.mu.Unlock()
		s.metrics.Counter("sched.jobs.rejected.quota").Inc()
		return Job{}, &Busy{Reason: fmt.Sprintf("tenant quota (%d outstanding jobs)", outstanding), RetryAfter: s.cfg.RetryAfter}
	}
	s.mu.Unlock()

	if ok, retryAfter := s.limiter.take(spec.Tenant, limits); !ok {
		s.metrics.Counter("sched.jobs.rejected.rate").Inc()
		if retryAfter < time.Second {
			retryAfter = time.Second
		}
		return Job{}, &Busy{Reason: "rate limit", RetryAfter: retryAfter}
	}

	s.mu.Lock()
	s.nextSeq++
	job := Job{
		ID:                fmt.Sprintf("%s-%06d", s.cfg.IDPrefix, s.nextSeq),
		Tenant:            spec.Tenant,
		Spec:              spec,
		State:             StatePending,
		SubmittedUnixNano: time.Now().UnixNano(),
	}
	// The job's root span opens at admission and ends at the terminal
	// transition; its trace ID is returned to the submitter and survives
	// in the WAL, so the whole lifecycle — across daemon restarts — is
	// one trace.
	span := s.rootSpan(&job)
	entry := &jobEntry{job: job, span: span, queued: s.queuedSpan(span)}
	s.jobs[job.ID] = entry
	s.mu.Unlock()

	reject := func() {
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		entry.queued.End()
		span.EndErr(fmt.Errorf("rejected at admission"))
	}
	if !s.queue.Push(&entry.job, limits.weight()) {
		reject()
		s.metrics.Counter("sched.jobs.rejected.full").Inc()
		return Job{}, &Busy{Reason: fmt.Sprintf("queue full (%d jobs)", s.cfg.QueueCapacity), RetryAfter: s.cfg.RetryAfter}
	}
	s.metrics.Gauge("sched.queue.depth").Inc()
	s.metrics.Counter("sched.jobs.submitted").Inc()
	// The fsynced PENDING record makes the admission durable: after
	// this append, a crashed daemon re-enqueues the job on restart.
	if err := s.wal.Append(WALRecord{Job: job.ID, Tenant: job.Tenant, State: StatePending, Spec: &spec, TraceID: job.TraceID}); err != nil {
		s.queue.Remove(job.ID)
		s.metrics.Gauge("sched.queue.depth").Dec()
		reject()
		return Job{}, err
	}
	s.emit(job.ID, "queued", fmt.Sprintf("admitted %s job for tenant %s", spec.Kind, spec.Tenant))
	return job, nil
}

// Cancel stops a job: queued jobs are dropped before dispatch, running
// jobs have their context cancelled and finish as CANCELLED.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	entry, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	if entry.job.State.Terminal() {
		s.mu.Unlock()
		return nil
	}
	entry.cancelRequested = true
	cancel := s.cancels[id]
	s.mu.Unlock()

	if cancel != nil {
		cancel() // running: the runner unwinds, completion records CANCELLED
		return nil
	}
	if s.queue.Remove(id) {
		s.metrics.Gauge("sched.queue.depth").Dec()
		s.complete(id, StateCancelled, nil, nil)
	}
	return nil
}

// Job returns a snapshot of the job's current state.
func (s *Scheduler) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return entry.job, true
}

// Jobs lists all known jobs, newest last.
func (s *Scheduler) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, e := range s.jobs {
		out = append(out, e.job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Events returns the job's event log so far plus a live subscription
// for what follows; the channel closes when the job reaches a
// terminal state. Call the returned cancel func to unsubscribe early.
func (s *Scheduler) Events(id string) ([]Event, <-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.jobs[id]
	if !ok {
		return nil, nil, nil, ErrUnknownJob
	}
	past := append([]Event(nil), entry.events...)
	if entry.job.State.Terminal() {
		ch := make(chan Event)
		close(ch)
		return past, ch, func() {}, nil
	}
	ch := make(chan Event, 256)
	entry.subs = append(entry.subs, ch)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, sub := range entry.subs {
			if sub == ch {
				entry.subs = append(entry.subs[:i], entry.subs[i+1:]...)
				return
			}
		}
	}
	return past, ch, cancel, nil
}

// WaitTerminal blocks until the job reaches a terminal state.
func (s *Scheduler) WaitTerminal(ctx context.Context, id string) (Job, error) {
	_, ch, cancel, err := s.Events(id)
	if err != nil {
		return Job{}, err
	}
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return Job{}, ctx.Err()
		case _, ok := <-ch:
			if !ok {
				job, _ := s.Job(id)
				return job, nil
			}
		}
	}
}

// Stop refuses new submissions, cancels running jobs, and waits for
// the workers. Queued jobs stay PENDING in the WAL and re-enqueue on
// the next start.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	cancels := make([]context.CancelFunc, 0, len(s.cancels))
	for _, c := range s.cancels {
		cancels = append(cancels, c)
	}
	s.mu.Unlock()
	s.queue.Close()
	s.stopOnce.Do(func() { close(s.stopCh) })
	for _, c := range cancels {
		c()
	}
	s.wg.Wait()
	s.stopHealth()
	s.leases.Close()
	s.wal.Close()
	s.sweepSpans(nil)
}

// stopHealth halts the probe loop and closes the health span.
func (s *Scheduler) stopHealth() {
	if s.health == nil {
		return
	}
	s.health.Stop()
	s.mu.Lock()
	span := s.healthSpan
	s.healthSpan = nil
	s.mu.Unlock()
	span.End()
}

// Kill simulates a crash (kill -9) for recovery drills: in-flight
// work is abandoned without completion records or events — the WAL
// keeps whatever was fsynced before the "power went out", exactly the
// state a restarted daemon must recover from. The in-process lab the
// job was driving does get its context cancelled, standing in for the
// instrument commands that stop arriving when the real process dies.
func (s *Scheduler) Kill() {
	s.killed.Store(true)
	s.mu.Lock()
	s.stopped = true
	cancels := make([]context.CancelFunc, 0, len(s.cancels))
	for _, c := range s.cancels {
		cancels = append(cancels, c)
	}
	s.mu.Unlock()
	s.queue.Close()
	s.stopOnce.Do(func() { close(s.stopCh) })
	for _, c := range cancels {
		c()
	}
	s.wg.Wait()
	s.stopHealth()
	s.leases.Close()
	s.wal.Close()
	s.sweepSpans(errors.New("daemon killed"))
}

// sweepSpans closes any still-open job spans at shutdown. A real
// crash would simply lose them; the in-process drills share one
// tracer with the next incarnation, so dangling parents here would
// show up as orphans in the stitched trace.
func (s *Scheduler) sweepSpans(cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.jobs {
		e.queued.End()
		if cause != nil {
			e.span.EndErr(cause)
		} else {
			e.span.End()
		}
		e.span, e.queued = nil, nil
	}
}

// worker pulls fair-share winners off the queue until it closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		job, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(job)
	}
}

// runJob drives one job through RUNNING to a terminal state (or a
// checkpoint-requeue back to PENDING when an instrument quarantine or
// transient failure cut it down with retry budget left).
func (s *Scheduler) runJob(job *Job) {
	s.mu.Lock()
	entry, ok := s.jobs[job.ID]
	if !ok || entry.job.State.Terminal() {
		s.mu.Unlock()
		return // cancelled between Pop and here
	}
	pre := entry.job
	s.mu.Unlock()

	gated := s.healthApplies(pre.Spec)
	deadline, hasDeadline := jobDeadline(&pre)

	// Health gating before dispatch: hold the job while every instance
	// of some capable class is quarantined, routing to a healthy
	// equivalent the moment one exists.
	var resources []string
	if gated {
		var proceed bool
		resources, proceed = s.waitForInstruments(&pre, deadline, hasDeadline)
		if !proceed {
			return // stopped (job stays PENDING in the WAL), failed on deadline, or cancelled
		}
	}
	// A deadline that exhausted in the queue fails before a lease is
	// ever taken.
	if hasDeadline && !time.Now().Before(deadline) {
		s.complete(job.ID, StateFailed, nil, fmt.Errorf("deadline exhausted before dispatch (%dms budget)", pre.Spec.DeadlineMS))
		return
	}

	baseCtx := context.Background()
	var cancelDeadline context.CancelFunc = func() {}
	if hasDeadline {
		baseCtx, cancelDeadline = context.WithDeadline(baseCtx, deadline)
	}
	defer cancelDeadline()
	ctx, cancel := context.WithCancel(baseCtx)
	defer cancel()

	s.mu.Lock()
	if entry.job.State.Terminal() {
		s.mu.Unlock()
		return
	}
	entry.job.State = StateRunning
	entry.job.Attempts++
	entry.job.StartedUnixNano = time.Now().UnixNano()
	entry.job.Resources = resources
	entry.resources = resources
	entry.requeueRequested = false
	s.cancels[job.ID] = cancel
	snapshot := entry.job
	rootSpan, queued := entry.span, entry.queued
	entry.queued = nil
	s.mu.Unlock()

	queued.End()
	s.metrics.Gauge("sched.queue.depth").Dec()
	s.metrics.Gauge("sched.jobs.running").Inc()
	s.wal.Append(WALRecord{Job: snapshot.ID, State: StateRunning, Attempt: snapshot.Attempts})
	if snapshot.Resumed {
		s.emit(snapshot.ID, "started", fmt.Sprintf("resuming (attempt %d)", snapshot.Attempts))
	} else {
		s.emit(snapshot.ID, "started", fmt.Sprintf("dispatched to worker (attempt %d)", snapshot.Attempts))
	}

	// The run span carries the attempt; the runner's context carries it
	// downstream, so every task, lease, RPC and retrieval span in this
	// attempt parents under it.
	runCtx, runSpan := trace.Start(trace.ContextWithSpan(ctx, rootSpan), "sched.run", trace.ClassSched)
	runSpan.SetAttr("attempt", fmt.Sprintf("%d", snapshot.Attempts))
	result, err := s.runner.Run(runCtx, snapshot, func(eventType, message string) {
		if s.killed.Load() {
			return
		}
		s.emit(snapshot.ID, eventType, message)
	})
	runSpan.EndErr(err)

	s.metrics.Gauge("sched.jobs.running").Dec()
	if s.killed.Load() {
		return // crashed: no completion record — the WAL says RUNNING
	}
	s.mu.Lock()
	cancelled := entry.cancelRequested
	stopped := s.stopped
	delete(s.cancels, job.ID)
	s.mu.Unlock()

	if gated && err == nil {
		for _, res := range resources {
			s.health.ReportSuccess(res)
		}
	}

	switch {
	case err == nil:
		s.finishRun(entry)
		s.complete(job.ID, StateDone, result, nil)
	case cancelled && errors.Is(err, context.Canceled):
		s.finishRun(entry)
		s.complete(job.ID, StateCancelled, nil, err)
	default:
		deadlinePast := hasDeadline && !time.Now().Before(deadline)
		cls := health.ClassWorkload
		switch {
		case errors.Is(err, ErrUnknownJobKind):
			// A kind no runner path handles is a workload fault by
			// definition: count it and keep the instruments' health
			// record out of it — retrying cannot help, so the default
			// workload class below also guarantees no requeue.
			s.metrics.Counter("sched.jobs.rejected.unknown_type").Inc()
		case gated:
			cls = s.reportRunError(resources, err, deadlinePast)
		}
		// finishRun comes after reportRunError on purpose: a wedge
		// report runs the quarantine cut-down synchronously, and the
		// job must still be attributable (entry.resources set) so the
		// cut-down lands the instrument.quarantine event on its span
		// and marks the requeue intent finishRun collects.
		requeueRequested := s.finishRun(entry)
		// Checkpoint-requeue rather than fail when the evidence points
		// at the facility (quarantine cut-down, sick instrument, flaky
		// transport) and the job still has retry budget and time.
		retriable := requeueRequested || cls == health.ClassInstrument || cls == health.ClassTransport
		if gated && retriable && !stopped && !deadlinePast &&
			snapshot.Attempts < 1+s.cfg.Health.RetryBudget {
			if s.requeueJob(entry, err) {
				return
			}
		}
		if deadlinePast && errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("deadline exceeded (%dms end-to-end budget): %w", snapshot.Spec.DeadlineMS, err)
		}
		s.complete(job.ID, StateFailed, nil, err)
	}
}

// finishRun retires the attempt's instrument attribution: it clears
// entry.resources and collects the requeue intent, whether it was set
// by a mid-run quarantine cut-down or by the breaker opening on this
// attempt's own run error.
func (s *Scheduler) finishRun(entry *jobEntry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	requeueRequested := entry.requeueRequested
	entry.requeueRequested = false
	entry.resources = nil
	return requeueRequested
}

// waitForInstruments parks the worker until every resource class
// offers a healthy instance. It returns proceed=false when the job
// should not run: the scheduler stopped (the popped job keeps its
// PENDING WAL record and re-enqueues next start), its deadline
// exhausted, or it was cancelled while held.
func (s *Scheduler) waitForInstruments(job *Job, deadline time.Time, hasDeadline bool) ([]string, bool) {
	warned := false
	for {
		if res, blocked, ok := s.assignInstruments(job.Spec); ok {
			return res, true
		} else if !warned {
			warned = true
			s.metrics.Counter("sched.dispatch.held").Inc()
			s.emit(job.ID, "waiting", fmt.Sprintf("dispatch held: every %s instrument is quarantined", blocked))
		}
		s.mu.Lock()
		cancelled := false
		if e, ok := s.jobs[job.ID]; ok {
			if e.job.State.Terminal() {
				s.mu.Unlock()
				return nil, false
			}
			cancelled = e.cancelRequested
		}
		s.mu.Unlock()
		if cancelled {
			s.complete(job.ID, StateCancelled, nil, nil)
			return nil, false
		}
		if hasDeadline && !time.Now().Before(deadline) {
			s.complete(job.ID, StateFailed, nil, fmt.Errorf("deadline exhausted while every capable instrument was quarantined (%dms budget)", job.Spec.DeadlineMS))
			return nil, false
		}
		changed := s.health.Changed()
		timer := time.NewTimer(250 * time.Millisecond)
		select {
		case <-s.stopCh:
			timer.Stop()
			return nil, false
		case <-changed:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// requeueJob returns a cut-down job to the queue: state back to
// PENDING with Resumed set (the runner restores the workflow journal,
// so completed tasks are not re-run), a fresh queued span under the
// same root, and a durable PENDING record. Returns false when the
// requeue could not happen and the caller should fail the job instead.
func (s *Scheduler) requeueJob(entry *jobEntry, cause error) bool {
	s.mu.Lock()
	if entry.job.State.Terminal() {
		s.mu.Unlock()
		return false
	}
	entry.job.State = StatePending
	entry.job.Resumed = true
	entry.job.Resources = nil
	snapshot := entry.job
	root := entry.span
	s.mu.Unlock()

	root.Event("sched.requeue", "cause", cause.Error())
	queued := s.queuedSpan(root)
	s.mu.Lock()
	entry.queued = queued
	s.mu.Unlock()

	limits := s.tenantLimits(snapshot.Tenant)
	if !s.queue.Push(&entry.job, limits.weight()) {
		// Queue closed (shutdown) or full. At shutdown, journal the
		// PENDING state so the next incarnation resumes the checkpoint.
		s.mu.Lock()
		stopped := s.stopped
		entry.queued = nil
		s.mu.Unlock()
		queued.End()
		if stopped {
			s.wal.Append(WALRecord{Job: snapshot.ID, State: StatePending, Attempt: snapshot.Attempts, TraceID: snapshot.TraceID})
			return true
		}
		return false
	}
	s.metrics.Gauge("sched.queue.depth").Inc()
	s.metrics.Counter("sched.jobs.requeued").Inc()
	s.wal.Append(WALRecord{Job: snapshot.ID, State: StatePending, Attempt: snapshot.Attempts, TraceID: snapshot.TraceID})
	s.emit(snapshot.ID, "requeued", fmt.Sprintf("checkpoint-requeued after attempt %d: %v", snapshot.Attempts, cause))
	return true
}

// complete records a terminal transition: WAL, state, event,
// counters, and subscriber shutdown.
func (s *Scheduler) complete(id string, state State, result json.RawMessage, cause error) {
	rec := WALRecord{Job: id, State: state, Result: result}
	if cause != nil && state == StateFailed {
		rec.Error = cause.Error()
	}
	s.wal.Append(rec)

	s.mu.Lock()
	entry := s.jobs[id]
	entry.job.State = state
	entry.job.Result = result
	entry.job.FinishedUnixNano = time.Now().UnixNano()
	if rec.Error != "" {
		entry.job.Error = rec.Error
	}
	span, queued := entry.span, entry.queued
	entry.span, entry.queued = nil, nil
	s.mu.Unlock()

	// Close out the trace: the queue-wait child first (still open when
	// a job dies queued), then the root with the terminal state.
	queued.End()
	span.SetAttr("state", string(state))
	if state == StateFailed {
		span.EndErr(cause)
	} else {
		span.End()
	}

	switch state {
	case StateDone:
		s.metrics.Counter("sched.jobs.done").Inc()
		s.emit(id, "done", "job complete")
	case StateFailed:
		s.metrics.Counter("sched.jobs.failed").Inc()
		s.emit(id, "failed", rec.Error)
	case StateCancelled:
		s.metrics.Counter("sched.jobs.cancelled").Inc()
		s.emit(id, "cancelled", "job cancelled")
	}

	s.mu.Lock()
	subs := entry.subs
	entry.subs = nil
	s.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

// completeOrphan fails a recovered job that could not re-enqueue.
func (s *Scheduler) completeOrphan(id, reason string) {
	s.complete(id, StateFailed, nil, fmt.Errorf("%s", reason))
}

// emit appends an event to the job's log and fans it out to
// subscribers (non-blocking: a stalled SSE client drops events rather
// than stalling the lab).
func (s *Scheduler) emit(id, eventType, message string) {
	s.mu.Lock()
	entry, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	ev := Event{
		Seq:          len(entry.events) + 1,
		TimeUnixNano: time.Now().UnixNano(),
		Job:          id,
		Type:         eventType,
		Message:      message,
	}
	entry.events = append(entry.events, ev)
	subs := append([]chan Event(nil), entry.subs...)
	s.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// rootSpan opens the job's root span and stamps the job with its
// trace ID (reusing an ID a previous daemon incarnation persisted in
// the WAL, so recovered attempts share the original trace).
func (s *Scheduler) rootSpan(job *Job) *trace.Span {
	span := s.tracer.StartTrace(job.TraceID, "job "+job.ID, trace.ClassSched)
	span.SetAttr("job", job.ID)
	span.SetAttr("tenant", job.Tenant)
	span.SetAttr("kind", string(job.Spec.Kind))
	if id := span.TraceID(); id != "" {
		job.TraceID = id
	}
	return span
}

// queuedSpan opens the queue-wait child under the job's root span; it
// ends when a worker dispatches (or the job dies queued).
func (s *Scheduler) queuedSpan(root *trace.Span) *trace.Span {
	_, queued := trace.Start(trace.ContextWithSpan(context.Background(), root), "sched.queued", trace.ClassSched)
	return queued
}

// tenantLimits resolves a tenant's limits outside the lock.
func (s *Scheduler) tenantLimits(tenant string) TenantLimits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantLimitsLocked(tenant)
}

func (s *Scheduler) tenantLimitsLocked(tenant string) TenantLimits {
	if l, ok := s.cfg.Tenants[tenant]; ok {
		return l
	}
	return s.cfg.DefaultLimits
}
