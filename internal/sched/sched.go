// Package sched is the facility-side scheduling layer that turns the
// single-notebook ICE into a shared service: many tenants submit
// declarative experiment requests, and the gateway queues, prioritises,
// accounts for, and dispatches them onto the lab's scarce instruments.
//
// The package provides four cooperating pieces:
//
//   - a priority job queue with per-tenant fair-share weights (stride
//     scheduling), admission control and bounded backpressure — when
//     the queue is full the (K+1)th submission is rejected with a
//     retry-after hint instead of blocking the intake;
//   - an instrument lease manager handing out exclusive, TTL'd leases
//     over potentiostat channels and J-Kem units, with heartbeat
//     renewal and automatic revocation of expired leases, so a crashed
//     worker never wedges the lab;
//   - a crash-recoverable job store — an append-only JSONL WAL in the
//     style of the workflow checkpoint journal — that replays PENDING
//     and RUNNING jobs on daemon restart and resumes them through the
//     existing workflow Restore/Resume machinery;
//   - per-tenant quotas and token-bucket rate limits.
//
// cmd/icegated wraps a Scheduler in an HTTP/JSON API; tests drive it
// in-process against a netsim Deployment.
package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// State is a job's lifecycle state. The WAL records every transition;
// the latest record per job wins on replay.
type State string

// Job states. PENDING and RUNNING jobs are re-enqueued when a
// restarted daemon replays its WAL; the other states are terminal.
const (
	StatePending   State = "PENDING"
	StateRunning   State = "RUNNING"
	StateDone      State = "DONE"
	StateFailed    State = "FAILED"
	StateCancelled State = "CANCELLED"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one admitted experiment request.
type Job struct {
	// ID is the gateway-assigned identifier ("j-000042").
	ID string `json:"id"`
	// Tenant is the submitting tenant.
	Tenant string `json:"tenant"`
	// Spec is the declarative request as admitted.
	Spec JobSpec `json:"spec"`
	// TraceID names the job's distributed trace — every span the job
	// produces, across daemon restarts, lands in this trace, served at
	// GET /v1/traces/{trace_id}.
	TraceID string `json:"trace_id,omitempty"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Attempts counts executions begun (2+ after a crash resume).
	Attempts int `json:"attempts,omitempty"`
	// Resumed marks a job re-enqueued from the WAL after a daemon
	// restart found it PENDING or RUNNING — or checkpoint-requeued
	// after an instrument quarantine cut its attempt short.
	Resumed bool `json:"resumed,omitempty"`
	// Resources are the instruments assigned at dispatch (one healthy
	// instance per resource class); the runner leases exactly these,
	// which is how queued jobs route around a quarantined instrument
	// when the lab offers an equivalent.
	Resources []string `json:"resources,omitempty"`
	// Result is the runner's JSON result for DONE jobs.
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries the failure message for FAILED jobs.
	Error string `json:"error,omitempty"`
	// SubmittedUnixNano/StartedUnixNano/FinishedUnixNano are wall-clock
	// transition times.
	SubmittedUnixNano int64 `json:"submitted,omitempty"`
	StartedUnixNano   int64 `json:"started,omitempty"`
	FinishedUnixNano  int64 `json:"finished,omitempty"`
}

// Event is one entry of a job's progress stream (served as SSE by the
// gateway): admission, workflow task transitions, campaign rounds,
// lease activity, completion.
type Event struct {
	// Seq is the 1-based position within the job's stream.
	Seq int `json:"seq"`
	// TimeUnixNano is the emission wall time.
	TimeUnixNano int64 `json:"t"`
	// Job is the job ID.
	Job string `json:"job"`
	// Type classifies the event: queued, started, resumed, workflow,
	// round, lease, done, failed, cancelled.
	Type string `json:"type"`
	// Message is the human-readable detail.
	Message string `json:"message,omitempty"`
}

// Busy is the admission-control rejection: the request was well-formed
// but the facility cannot take it right now. The gateway maps it to
// HTTP 429 with a Retry-After header.
type Busy struct {
	// Reason names the exhausted resource ("queue full", "rate limit",
	// "tenant quota").
	Reason string
	// RetryAfter is the suggested back-off before resubmitting.
	RetryAfter time.Duration
}

// Error implements error.
func (b *Busy) Error() string {
	return fmt.Sprintf("sched: %s, retry after %v", b.Reason, b.RetryAfter)
}

// Unavailable is the health-aware admission rejection: the request is
// well-formed and the tenant within quota, but the facility cannot
// execute it — every capable instrument is quarantined, or the
// requested deadline cannot be met. The gateway maps it to HTTP 503
// with a Retry-After header (vs Busy's 429: Busy means "you are
// sending too much", Unavailable means "we are sick — try later or
// try another facility").
type Unavailable struct {
	// Reason names the unavailability ("sp200/ch1 quarantined",
	// "deadline 50ms below minimum 2s").
	Reason string
	// RetryAfter is the suggested back-off before resubmitting.
	RetryAfter time.Duration
	// Permanent marks rejections that resubmitting unchanged can never
	// cure here (a deadline below the facility floor): clients should
	// try another facility or give up, not sleep and retry.
	Permanent bool
}

// Error implements error.
func (u *Unavailable) Error() string {
	return fmt.Sprintf("sched: unavailable: %s, retry after %v", u.Reason, u.RetryAfter)
}

// ErrUnknownJob is returned for job IDs the scheduler has never seen.
var ErrUnknownJob = errors.New("sched: unknown job")

// ErrStopped is returned by Submit after the scheduler has stopped.
var ErrStopped = errors.New("sched: scheduler stopped")
