package sched

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/workflow"
)

// ctxGrabRunner wraps a Runner and captures each job's context, so a
// crash seam running inside the worker goroutine can wait for the kill
// to actually land before letting the workflow engine proceed.
type ctxGrabRunner struct {
	inner Runner
	mu    sync.Mutex
	ctxs  map[string]context.Context
}

func (r *ctxGrabRunner) Run(ctx context.Context, job Job, emit func(string, string)) (json.RawMessage, error) {
	r.mu.Lock()
	r.ctxs[job.ID] = ctx
	r.mu.Unlock()
	return r.inner.Run(ctx, job, emit)
}

func (r *ctxGrabRunner) ctx(id string) context.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctxs[id]
}

// TestRecoveryCrashMidJobExactlyOnce is the ISSUE's headline
// acceptance drill against a real lab: the daemon is killed (kill -9
// semantics — no goodbye records) right after task C has filled the
// electrochemical cell, a fresh daemon restarts over the same state
// directory, and the job must complete exactly once: DONE on the
// second attempt, digest-verified measurement, and an audit journal
// showing each liquid-moving command dispatched exactly once — the
// fill was not repeated on resume.
func TestRecoveryCrashMidJobExactlyOnce(t *testing.T) {
	base := t.TempDir()
	labDir := filepath.Join(base, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.Agent.EnableAudit(); err != nil {
		t.Fatal(err)
	}

	stateDir := filepath.Join(base, "state")
	connector := &DeploymentConnector{D: d, Host: netsim.HostDGX}

	// Daemon incarnation one, rigged to die at the C→D boundary.
	s1, err := New(Config{Dir: stateDir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	var crashOnce sync.Once
	lab1 := &LabRunner{Connector: connector, Leases: s1.Leases(), Dir: stateDir}
	grab := &ctxGrabRunner{inner: lab1, ctxs: make(map[string]context.Context)}
	lab1.OnTask = func(jobID string, rec workflow.TaskRecord) {
		if rec.TaskID != "C" || rec.Status != "OK" {
			return
		}
		// This callback runs inside the worker goroutine; Kill waits for
		// that goroutine, so the kill must run concurrently while we hold
		// the workflow here until the job's context is cut.
		crashOnce.Do(func() {
			go func() {
				s1.Kill()
				close(killed)
			}()
			<-grab.ctx(jobID).Done()
		})
	}
	s1.SetRunner(grab)
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}

	job, err := s1.Submit(JobSpec{Tenant: "acl", Kind: KindCV, Points: 400})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-killed:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never died at the crash seam")
	}

	// Daemon incarnation two over the same state directory.
	s2, err := New(Config{Dir: stateDir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	recovered, ok := s2.Job(job.ID)
	if !ok {
		t.Fatal("crashed job missing after replay")
	}
	if recovered.State != StatePending || !recovered.Resumed {
		t.Fatalf("replayed job = state %s resumed %v, want PENDING resumed", recovered.State, recovered.Resumed)
	}
	s2.SetRunner(&LabRunner{Connector: connector, Leases: s2.Leases(), Dir: stateDir})
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := s2.WaitTerminal(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("resumed job = %s (%s), want DONE", final.State, final.Error)
	}
	if final.Attempts != 2 || !final.Resumed {
		t.Fatalf("resumed job attempts = %d resumed = %v, want 2 resumed", final.Attempts, final.Resumed)
	}

	// Digest verification: the result's sha256 must match what the data
	// channel reports for the measurement file right now.
	var result CVResult
	if err := json.Unmarshal(final.Result, &result); err != nil {
		t.Fatal(err)
	}
	if result.Points != 401 || result.SHA256 == "" {
		t.Fatalf("resumed result = %+v", result)
	}
	_, mount, err := d.ConnectFrom(netsim.HostDGX)
	if err != nil {
		t.Fatal(err)
	}
	defer mount.Close()
	sum, _, err := mount.Checksum(result.File)
	if err != nil {
		t.Fatal(err)
	}
	if sum != result.SHA256 {
		t.Fatalf("digest mismatch: result %s, data channel %s", result.SHA256, sum)
	}

	// Exactly-once: the audit journal at the lab must show each
	// liquid-moving command once. A re-run of the fill on resume would
	// double the cell's analyte and show up here.
	auditData, err := os.ReadFile(filepath.Join(labDir, core.AuditFileName))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := core.ParseAuditJournal(auditData)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, e := range entries {
		counts[e.Method]++
	}
	for _, method := range []string{"WithdrawSyringePump", "DispenseSyringePump", "StartChannelSP200"} {
		if counts[method] != 1 {
			t.Errorf("audit journal shows %s ×%d, want exactly once", method, counts[method])
		}
	}

	if active := s2.Leases().Active(); len(active) != 0 {
		t.Fatalf("leaked leases after recovery: %+v", active)
	}
}
