package sched

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestWALGroupCommitCollapsesFsyncs drives concurrent appenders
// through the group-commit path: every append is durably acknowledged
// (all records present with distinct sequence numbers after reopen)
// while the fsync count stays well below the append count — the whole
// point of batching.
func TestWALGroupCommitCollapsesFsyncs(t *testing.T) {
	dir := t.TempDir()
	w, replayed, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh WAL replayed %d jobs", len(replayed))
	}
	w.SetCommitWindow(2 * time.Millisecond)

	const writers, perWriter = 8, 25
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				rec := WALRecord{
					Job:   fmt.Sprintf("j-%03d%03d", g, i),
					State: StatePending,
					Spec:  &JobSpec{Tenant: "acl", Kind: KindCV},
				}
				if err := w.Append(rec); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := w.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("syncs = %d not below appends = %d: group commit never batched", st.Syncs, st.Appends)
	}
	t.Logf("group commit: %d appends in %d fsyncs", st.Appends, st.Syncs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadWALRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("reopened WAL holds %d records, want %d", len(recs), writers*perWriter)
	}
	seen := make(map[uint64]bool, len(recs))
	var maxSeq uint64
	for _, rec := range recs {
		if rec.Seq == 0 || seen[rec.Seq] {
			t.Fatalf("record %s has duplicate or zero seq %d", rec.Job, rec.Seq)
		}
		seen[rec.Seq] = true
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	if maxSeq != uint64(writers*perWriter) {
		t.Fatalf("max seq = %d, want %d (dense assignment)", maxSeq, writers*perWriter)
	}
}

// TestFoldWALRecordsDuplicateSeqHigherTermWins replays a merged
// stream where a partition left two records claiming the same
// sequence slot: the higher leadership term must win regardless of
// file order.
func TestFoldWALRecordsDuplicateSeqHigherTermWins(t *testing.T) {
	spec := &JobSpec{Tenant: "acl", Kind: KindCV}
	recs := []WALRecord{
		{Seq: 1, Term: 1, Job: "faca-000001", Tenant: "acl", State: StatePending, Spec: spec},
		// The adopter's term-2 completion arrives first in the merged
		// file; the stale term-1 RUNNING record from the old leader's
		// flushed backlog lands after it.
		{Seq: 2, Term: 2, Job: "faca-000001", State: StateDone},
		{Seq: 2, Term: 1, Job: "faca-000001", State: StateRunning, Attempt: 1},
	}
	jobs := FoldWALRecords(recs)
	if len(jobs) != 1 {
		t.Fatalf("folded %d jobs, want 1", len(jobs))
	}
	if jobs[0].State != StateDone {
		t.Fatalf("duplicate seq folded to %s, want DONE (term 2 over term 1)", jobs[0].State)
	}
}

// TestFoldWALRecordsInterleavedTenants folds a stream whose records
// interleave two tenants' jobs — each job must reach its own final
// state, in submission order, with no cross-talk.
func TestFoldWALRecordsInterleavedTenants(t *testing.T) {
	recs := []WALRecord{
		{Seq: 1, Job: "faca-000001", Tenant: "acl", State: StatePending, Spec: &JobSpec{Tenant: "acl", Kind: KindCV}, TimeUnixNano: 10},
		{Seq: 2, Job: "faca-000002", Tenant: "mit", State: StatePending, Spec: &JobSpec{Tenant: "mit", Kind: KindCV}, TimeUnixNano: 20},
		{Seq: 3, Job: "faca-000001", State: StateRunning, Attempt: 1},
		{Seq: 4, Job: "faca-000002", State: StateRunning, Attempt: 1},
		{Seq: 5, Job: "faca-000001", State: StateDone},
		{Seq: 6, Job: "faca-000002", State: StateFailed, Error: "cell fault"},
	}
	jobs := FoldWALRecords(recs)
	if len(jobs) != 2 {
		t.Fatalf("folded %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "faca-000001" || jobs[1].ID != "faca-000002" {
		t.Fatalf("fold order = %s, %s; want submission order", jobs[0].ID, jobs[1].ID)
	}
	if jobs[0].Tenant != "acl" || jobs[0].State != StateDone {
		t.Fatalf("job 1 = tenant %s state %s, want acl DONE", jobs[0].Tenant, jobs[0].State)
	}
	if jobs[1].Tenant != "mit" || jobs[1].State != StateFailed || jobs[1].Error != "cell fault" {
		t.Fatalf("job 2 = tenant %s state %s (%s), want mit FAILED", jobs[1].Tenant, jobs[1].State, jobs[1].Error)
	}
}

// TestFoldWALRecordsReplicaAhead models a replica that is strictly
// ahead of a restarted leader: the leader re-ships a prefix it had
// already replicated, so the merged stream repeats low sequence
// numbers after the replica's higher ones. The fold must order by
// sequence, keep the high-water records, and not let the
// retransmitted prefix roll the job's state back.
func TestFoldWALRecordsReplicaAhead(t *testing.T) {
	spec := &JobSpec{Tenant: "acl", Kind: KindCV}
	recs := []WALRecord{
		// The replica's copy, already at seq 3.
		{Seq: 1, Term: 1, Job: "faca-000001", Tenant: "acl", State: StatePending, Spec: spec},
		{Seq: 2, Term: 1, Job: "faca-000001", State: StateRunning, Attempt: 1},
		{Seq: 3, Term: 1, Job: "faca-000001", State: StateDone},
		// The restarted leader's retransmission of its prefix.
		{Seq: 1, Term: 1, Job: "faca-000001", Tenant: "acl", State: StatePending, Spec: spec},
		{Seq: 2, Term: 1, Job: "faca-000001", State: StateRunning, Attempt: 1},
	}
	jobs := FoldWALRecords(recs)
	if len(jobs) != 1 {
		t.Fatalf("folded %d jobs, want 1", len(jobs))
	}
	if jobs[0].State != StateDone {
		t.Fatalf("replica-ahead fold = %s, want DONE (seq 3 must survive the retransmitted prefix)", jobs[0].State)
	}
	if jobs[0].Attempts != 1 {
		t.Fatalf("replica-ahead fold attempts = %d, want 1", jobs[0].Attempts)
	}

	// Legacy streams (no sequence numbers) still fold in file order.
	legacy := []WALRecord{
		{Job: "j-000001", Tenant: "acl", State: StatePending, Spec: spec},
		{Job: "j-000001", State: StateRunning, Attempt: 1},
	}
	folded := FoldWALRecords(legacy)
	if len(folded) != 1 || folded[0].State != StateRunning {
		t.Fatalf("legacy fold = %+v, want single RUNNING job", folded)
	}
}
