package sched

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestGateway(t *testing.T, cfg Config, r Runner) (*Scheduler, *httptest.Server) {
	t.Helper()
	cfg.Dir = t.TempDir()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRunner(r)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewGateway(s))
	t.Cleanup(func() {
		srv.Close()
		s.Stop()
	})
	return s, srv
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) Job {
	t.Helper()
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func TestGatewaySubmitAndStatus(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	_, srv := newTestGateway(t, Config{Workers: 1}, runner)

	resp := postJSON(t, srv.URL+"/v1/jobs", `{"tenant": "acl", "kind": "cv"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %s", resp.Status)
	}
	job := decodeJob(t, resp)
	if job.ID == "" || job.Tenant != "acl" {
		t.Fatalf("submitted job = %+v", job)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		got := decodeJob(t, resp)
		if got.State.Terminal() {
			var result struct {
				OK bool `json:"ok"`
			}
			if got.State != StateDone || json.Unmarshal(got.Result, &result) != nil || !result.OK {
				t.Fatalf("terminal job = %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// List, with and without the tenant filter.
	for query, want := range map[string]int{"": 1, "?tenant=acl": 1, "?tenant=ghost": 0} {
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []Job `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) != want {
			t.Fatalf("list %q returned %d jobs, want %d", query, len(list.Jobs), want)
		}
	}
}

func TestGatewayRejectsBadRequests(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	_, srv := newTestGateway(t, Config{}, runner)

	for name, body := range map[string]string{
		"not json":      `<xml/>`,
		"unknown field": `{"tenant": "acl", "kind": "cv", "hack": true}`,
		"no tenant":     `{"kind": "cv"}`,
	} {
		resp := postJSON(t, srv.URL+"/v1/jobs", body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %s, want 400", name, resp.Status)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %s, want 404", resp.Status)
	}
}

// TestGatewayBackpressure429 is the ISSUE's acceptance check at the
// HTTP layer: with the queue at capacity K, the (K+1)th submission is
// rejected with 429 and a Retry-After header.
func TestGatewayBackpressure429(t *testing.T) {
	runner := newStubRunner() // never released: the worker stays busy
	_, srv := newTestGateway(t, Config{Workers: 1, QueueCapacity: 2, RetryAfter: 4 * time.Second}, runner)
	t.Cleanup(func() { close(runner.release) })

	// One running + K queued.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, srv.URL+"/v1/jobs", `{"tenant": "acl", "kind": "cv"}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: %s", i, resp.Status)
		}
		if i == 0 {
			<-runner.started // ensure it left the queue before filling up
		}
	}
	resp := postJSON(t, srv.URL+"/v1/jobs", `{"tenant": "acl", "kind": "cv"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %s, want 429", resp.Status)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}
	var apiErr struct {
		Error      string  `json:"error"`
		RetryAfter float64 `json:"retry_after_s"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.RetryAfter != 4 {
		t.Fatalf("retry_after_s = %v, want 4", apiErr.RetryAfter)
	}
}

func TestGatewayCancel(t *testing.T) {
	runner := newStubRunner()
	runner.blockCtx = true
	s, srv := newTestGateway(t, Config{Workers: 1}, runner)

	resp := postJSON(t, srv.URL+"/v1/jobs", `{"tenant": "acl", "kind": "cv"}`)
	job := decodeJob(t, resp)
	<-runner.started
	cresp := postJSON(t, srv.URL+"/v1/jobs/"+job.ID+"/cancel", "")
	io.Copy(io.Discard, cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %s", cresp.Status)
	}
	ctx := t.Context()
	final, err := s.WaitTerminal(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("cancelled job = %+v", final)
	}
}

// TestGatewaySSE streams a job's events over the wire and checks the
// stream replays the backlog, follows live progress, and terminates
// with the end event.
func TestGatewaySSE(t *testing.T) {
	runner := newStubRunner()
	_, srv := newTestGateway(t, Config{Workers: 1}, runner)

	resp := postJSON(t, srv.URL+"/v1/jobs", `{"tenant": "acl", "kind": "cv"}`)
	job := decodeJob(t, resp)
	<-runner.started

	sresp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	runner.release <- struct{}{} // let the job finish while we stream

	var eventTypes []string
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "event: "); ok {
			eventTypes = append(eventTypes, rest)
			if rest == "end" {
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(eventTypes, ",")
	if !strings.Contains(joined, "queued") || !strings.Contains(joined, "done") || eventTypes[len(eventTypes)-1] != "end" {
		t.Fatalf("SSE event sequence = %v", eventTypes)
	}

	// A terminal job's stream replays and ends immediately.
	sresp2, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(sresp2.Body)
	sresp2.Body.Close()
	if !strings.Contains(string(body), "event: end") {
		t.Fatal("terminal job's SSE stream did not end")
	}
}

func TestGatewayLeasesAndMetrics(t *testing.T) {
	runner := newStubRunner()
	close(runner.release)
	s, srv := newTestGateway(t, Config{Workers: 1}, runner)

	// Hold a lease by hand so the endpoint has something to show.
	lease, err := s.Leases().TryAcquire(ResourceSP200, "manual")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	var leases struct {
		Leases []LeaseInfo `json:"leases"`
	}
	err = json.NewDecoder(resp.Body).Decode(&leases)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(leases.Leases) != 1 || leases.Leases[0].Holder != "manual" {
		t.Fatalf("leases = %+v", leases.Leases)
	}
	lease.Release()

	resp = postJSON(t, srv.URL+"/v1/jobs", `{"tenant": "acl", "kind": "cv"}`)
	job := decodeJob(t, resp)
	if _, err := s.WaitTerminal(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}
	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(report), "sched.jobs.submitted") || !strings.Contains(string(report), "sched.jobs.done") {
		t.Fatalf("metrics report missing scheduler series:\n%s", report)
	}
}
