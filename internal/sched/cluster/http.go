package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"ice/internal/sched"
)

// maxReplicateBytes bounds a replication batch body.
const maxReplicateBytes = 8 << 20

// stateMsg is the node's advertised cluster state: heartbeat payload,
// heartbeat response, and GET /v1/cluster/state body.
type stateMsg struct {
	Facility string            `json:"facility"`
	Term     uint64            `json:"term"`
	Seq      uint64            `json:"seq"`
	Leading  map[string]uint64 `json:"leading"`
	// Adopted lists, per foreign facility this node leads, the live
	// job IDs it adopted — a restarting gateway disowns exactly these.
	Adopted map[string][]string `json:"adopted,omitempty"`
	// Quarantined lists this node's instruments currently under an open
	// (or half-open) health breaker. Peers remember the last
	// advertisement: failover onto a facility whose lab was sick when
	// its gateway died is held back, so adoption never lands jobs onto
	// a known-quarantined instrument.
	Quarantined []string `json:"quarantined,omitempty"`
}

// state snapshots the node's advertisement.
func (n *Node) state() stateMsg {
	n.mu.Lock()
	leading := make(map[string]uint64, len(n.leading))
	for fac, term := range n.leading {
		leading[fac] = term
	}
	term := n.leading[n.cfg.Facility]
	n.mu.Unlock()

	adopted := make(map[string][]string)
	for _, job := range n.sch.Jobs() {
		if job.State.Terminal() {
			continue
		}
		fac := facilityOfJob(job.ID)
		if fac == "" || fac == n.cfg.Facility {
			continue
		}
		adopted[fac] = append(adopted[fac], job.ID)
	}
	var quarantined []string
	if sup := n.sch.Health(); sup != nil {
		quarantined = sup.QuarantinedList()
	}
	return stateMsg{
		Facility:    n.cfg.Facility,
		Term:        term,
		Seq:         n.sch.WAL().LastSeq(),
		Leading:     leading,
		Adopted:     adopted,
		Quarantined: quarantined,
	}
}

func (n *Node) handleState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.state())
}

// handleHeartbeat receives a peer's state and answers with ours; both
// sides learn liveness and leadership from the exchange.
func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var msg stateMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil {
		writeError(w, http.StatusBadRequest, "decode heartbeat: "+err.Error())
		return
	}
	if msg.Facility == "" || !n.knowsPeer(msg.Facility) {
		writeError(w, http.StatusBadRequest, "unknown peer facility")
		return
	}
	n.observeState(msg.Facility, msg)
	writeJSON(w, http.StatusOK, n.state())
}

// handleReplicate persists a peer's replication batch and returns the
// acknowledged high-water mark.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var batch repBatch
	if err := json.NewDecoder(io.LimitReader(r.Body, maxReplicateBytes)).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "decode batch: "+err.Error())
		return
	}
	if batch.From == "" || !n.knowsPeer(batch.From) {
		writeError(w, http.StatusBadRequest, "unknown peer facility")
		return
	}
	acked, err := n.store.Apply(batch.From, batch.Items)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	n.markSeen(batch.From)
	writeJSON(w, http.StatusOK, repAck{Acked: acked})
}

func (n *Node) knowsPeer(facility string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.peers[facility]
	return ok
}

// route is the federated front door: submissions go to the target
// facility's leader, job queries follow the ID's facility prefix,
// and everything else is local.
func (n *Node) route(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
		n.routeSubmit(w, r)
		return
	}
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/jobs/"); ok && rest != "" {
		id := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			id = rest[:i]
		}
		n.routeJob(w, r, id)
		return
	}
	n.gw.ServeHTTP(w, r)
}

// routeSubmit decodes the spec, pins its facility (empty means the
// facility it was submitted to), and either admits locally or
// forwards to the facility's current leader.
func (n *Node) routeSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, sched.MaxJobSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	spec, err := sched.DecodeJobSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if spec.Facility == "" {
		spec.Facility = n.cfg.Facility
	}
	rewritten, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(rewritten))
	r.ContentLength = int64(len(rewritten))

	if n.leads(spec.Facility) {
		n.gw.ServeHTTP(w, r)
		return
	}
	ps, status := n.leaderPeer(spec.Facility)
	if ps == nil {
		n.writeUnavailable(w, fmt.Sprintf("facility %s %s", spec.Facility, status))
		return
	}
	ps.proxy.ServeHTTP(w, r)
}

// routeJob serves a job-scoped request (status, events, cancel)
// locally when the job is known here, otherwise proxies to the
// facility leader the ID's prefix names.
func (n *Node) routeJob(w http.ResponseWriter, r *http.Request, id string) {
	if _, ok := n.sch.Job(id); ok {
		n.gw.ServeHTTP(w, r)
		return
	}
	fac := facilityOfJob(id)
	if fac == "" || fac == n.cfg.Facility || n.leads(fac) {
		n.gw.ServeHTTP(w, r) // ours (404s naturally if truly unknown)
		return
	}
	ps, status := n.leaderPeer(fac)
	if ps == nil {
		n.writeUnavailable(w, fmt.Sprintf("facility %s %s", fac, status))
		return
	}
	ps.proxy.ServeHTTP(w, r)
}

// leads reports whether this node currently leads the facility.
func (n *Node) leads(facility string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.leading[facility]
	return ok
}

// leaderPeer resolves the reachable peer currently serving a
// facility: a peer explicitly leading it (possibly a third facility
// that adopted it), else the facility's own gateway when reachable.
// A nil result carries the reason ("partitioned" vs "unreachable")
// for the 503 body.
func (n *Node) leaderPeer(facility string) (*peerState, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ps := range n.peers {
		if _, ok := ps.leading[facility]; ok && ps.reachable {
			return ps, ""
		}
	}
	if ps, ok := n.peers[facility]; ok {
		if ps.reachable {
			return ps, ""
		}
		if ps.partitioned {
			return nil, "unreachable (partitioned)"
		}
		return nil, "unreachable"
	}
	return nil, "unknown"
}

// writeUnavailable answers 503 + Retry-After: the facility exists but
// cannot be reached from here right now — the caller should back off
// and retry (or resubmit to the surviving peer directly).
func (n *Node) writeUnavailable(w http.ResponseWriter, msg string) {
	secs := int(n.cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, struct {
		Error      string  `json:"error"`
		RetryAfter float64 `json:"retry_after_s"`
	}{Error: msg, RetryAfter: n.cfg.RetryAfter.Seconds()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: msg})
}
