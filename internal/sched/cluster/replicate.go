package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ice/internal/sched"
)

// Replication item kinds.
const (
	kindWAL     = "wal"
	kindJournal = "journal"
)

// repItem is one replicated unit: a WAL record or a workflow
// checkpoint journal line, stamped with a per-origin monotonic
// replication sequence so replicas deduplicate retransmissions.
type repItem struct {
	RepSeq uint64           `json:"rep_seq"`
	Kind   string           `json:"kind"`
	WAL    *sched.WALRecord `json:"wal,omitempty"`
	Job    string           `json:"job,omitempty"`
	Line   json.RawMessage  `json:"line,omitempty"`
}

// repBatch is the POST /v1/cluster/replicate body.
type repBatch struct {
	From  string    `json:"from"`
	Items []repItem `json:"items"`
}

// repAck is the replicate response: the highest replication sequence
// the replica has fsynced.
type repAck struct {
	Acked uint64 `json:"acked"`
}

// repPeer is the outbound cursor towards one peer.
type repPeer struct {
	url   string
	acked uint64
	up    bool
	// sendMu serialises pushes to this peer so batches arrive in
	// order even when several appenders mirror concurrently.
	sendMu sync.Mutex
}

// replicator ships the node's WAL records and checkpoint lines to
// its peers. While a peer is up, mirror calls block until the peer
// acknowledges — synchronous replication, the admission/checkpoint
// is not confirmed before the copy is durable remotely. While a peer
// is down (crash or partition), items accumulate and flush when the
// peer returns; mirror never fails the local operation, so a
// partition degrades replication to async catch-up instead of
// halting the facility.
type replicator struct {
	from    string
	client  *http.Client
	timeout time.Duration

	mu    sync.Mutex
	next  uint64
	items []repItem
	peers map[string]*repPeer
}

func newReplicator(client *http.Client, from string, timeout time.Duration) *replicator {
	return &replicator{
		from:    from,
		client:  client,
		timeout: timeout,
		peers:   make(map[string]*repPeer),
	}
}

func (r *replicator) addPeer(facility, baseURL string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peers[facility] = &repPeer{url: baseURL}
}

// mirrorWAL replicates one WAL record (the sched.Config.WALMirror
// hook).
func (r *replicator) mirrorWAL(rec sched.WALRecord) error {
	return r.mirror(repItem{Kind: kindWAL, WAL: &rec})
}

// mirrorJournal replicates one checkpoint journal line.
func (r *replicator) mirrorJournal(jobID string, line []byte) error {
	return r.mirror(repItem{Kind: kindJournal, Job: jobID, Line: line})
}

func (r *replicator) mirror(it repItem) error {
	r.mu.Lock()
	r.next++
	it.RepSeq = r.next
	r.items = append(r.items, it)
	targets := make([]*repPeer, 0, len(r.peers))
	for _, p := range r.peers {
		if p.up {
			targets = append(targets, p)
		}
	}
	r.mu.Unlock()
	for _, p := range targets {
		r.push(p) // degraded-mode errors mark the peer down, never fail the mirror
	}
	return nil
}

// push sends the peer's unacknowledged suffix and advances its
// cursor. On any transport failure the peer is marked down; the
// node's heartbeat monitor marks it up again, which re-runs push as
// the catch-up flush.
func (r *replicator) push(p *repPeer) {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	for {
		r.mu.Lock()
		var batch []repItem
		for _, it := range r.items {
			if it.RepSeq > p.acked {
				batch = append(batch, it)
			}
		}
		r.mu.Unlock()
		if len(batch) == 0 {
			return
		}
		ack, err := r.send(p.url, batch)
		r.mu.Lock()
		if err != nil {
			p.up = false
			r.mu.Unlock()
			return
		}
		if ack > p.acked {
			p.acked = ack
		}
		done := p.acked >= r.next
		r.mu.Unlock()
		if done {
			return
		}
	}
}

func (r *replicator) send(baseURL string, items []repItem) (uint64, error) {
	body, err := json.Marshal(repBatch{From: r.from, Items: items})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/cluster/replicate", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("replicate: %s", resp.Status)
	}
	var ack repAck
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ack); err != nil {
		return 0, err
	}
	return ack.Acked, nil
}

// markUp flips a peer's replication link and, when it just came back,
// flushes the backlog accumulated while it was away.
func (r *replicator) markUp(facility string, up bool) {
	r.mu.Lock()
	p, ok := r.peers[facility]
	if !ok {
		r.mu.Unlock()
		return
	}
	was := p.up
	p.up = up
	r.mu.Unlock()
	if up && !was {
		r.push(p)
	}
}

// lag is the number of items not yet acknowledged by every peer.
func (r *replicator) lag() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	min := r.next
	for _, p := range r.peers {
		if p.acked < min {
			min = p.acked
		}
	}
	return int64(r.next - min)
}
