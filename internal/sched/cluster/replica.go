package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ice/internal/core"
	"ice/internal/sched"
)

// replicaStreamFile is the per-origin replicated stream inside the
// replica directory ("replica/<facility>/stream.jsonl").
const replicaStreamFile = "stream.jsonl"

// origin is one peer facility's replicated stream.
type origin struct {
	file *core.AppendFile
	last uint64
}

// replicaStore persists the replication streams this node receives
// from its peers — each item fsynced before it is acknowledged, so
// an acknowledged admission or checkpoint survives this node's own
// crash too. On failover the stream is folded back into jobs and
// journals; items are idempotent by replication sequence, so a
// retransmitted batch after a partition heals is deduplicated here.
type replicaStore struct {
	dir string

	mu      sync.Mutex
	origins map[string]*origin
	closed  bool
}

func openReplicaStore(dir string) (*replicaStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: replica dir: %w", err)
	}
	s := &replicaStore{dir: dir, origins: make(map[string]*origin)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: scan replica dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := s.open(e.Name()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// open loads (creating if needed) one origin's stream and recovers
// its high-water replication sequence.
func (s *replicaStore) open(facility string) (*origin, error) {
	if o, ok := s.origins[facility]; ok {
		return o, nil
	}
	facDir := filepath.Join(s.dir, facility)
	if err := os.MkdirAll(facDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: replica dir %s: %w", facility, err)
	}
	items, err := readStream(filepath.Join(facDir, replicaStreamFile))
	if err != nil {
		return nil, err
	}
	o := &origin{}
	for _, it := range items {
		if it.RepSeq > o.last {
			o.last = it.RepSeq
		}
	}
	o.file, err = core.OpenAppendFile(facDir, replicaStreamFile)
	if err != nil {
		return nil, fmt.Errorf("cluster: replica stream %s: %w", facility, err)
	}
	s.origins[facility] = o
	return o, nil
}

// Apply persists a batch from one origin, skipping already-seen
// replication sequences, and returns the origin's high-water mark as
// the acknowledgement.
func (s *replicaStore) Apply(from string, items []repItem) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("cluster: replica store closed")
	}
	o, err := s.open(from)
	if err != nil {
		return 0, err
	}
	for _, it := range items {
		if it.RepSeq <= o.last {
			continue
		}
		line, err := json.Marshal(it)
		if err != nil {
			return o.last, fmt.Errorf("cluster: encode replica item: %w", err)
		}
		line = append(line, '\n')
		if _, err := o.file.Write(line); err != nil {
			return o.last, fmt.Errorf("cluster: persist replica item: %w", err)
		}
		o.last = it.RepSeq
	}
	return o.last, nil
}

// LastSeq returns the origin's high-water replication sequence.
func (s *replicaStore) LastSeq(facility string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.origins[facility]; ok {
		return o.last
	}
	return 0
}

// Read returns one origin's full replicated stream.
func (s *replicaStore) Read(facility string) ([]repItem, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return readStream(filepath.Join(s.dir, facility, replicaStreamFile))
}

// Close releases the stream files.
func (s *replicaStore) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, o := range s.origins {
		o.file.Close()
	}
}

// readStream parses one stream file (missing file = empty stream). A
// truncated trailing line — a crash mid-append — is dropped; interior
// corruption is an error.
func readStream(path string) ([]repItem, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("cluster: open replica stream: %w", err)
	}
	defer f.Close()
	var items []repItem
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var it repItem
		if err := json.Unmarshal(raw, &it); err != nil {
			pendingErr = fmt.Errorf("cluster: replica stream line %d: %w", lineNo, err)
			continue
		}
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: read replica stream: %w", err)
	}
	return items, nil
}

// foldStream splits a replicated stream into its WAL records and
// per-job journal lines — the inputs of a failover adoption.
func foldStream(items []repItem) ([]sched.WALRecord, map[string][]json.RawMessage) {
	var recs []sched.WALRecord
	journals := make(map[string][]json.RawMessage)
	for _, it := range items {
		switch it.Kind {
		case kindWAL:
			if it.WAL != nil {
				recs = append(recs, *it.WAL)
			}
		case kindJournal:
			if it.Job != "" {
				journals[it.Job] = append(journals[it.Job], it.Line)
			}
		}
	}
	return recs, journals
}
