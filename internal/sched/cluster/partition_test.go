package cluster

import (
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/sched"
	"ice/internal/trace"
)

// TestClusterPartitionDegradesAndHeals cuts the WAN between the two
// facilities and asserts the degraded contract: local jobs keep
// running on both sides, cross-facility submissions get 503 +
// Retry-After, neither side adopts the other (no split-brain lease
// grant — the fencing probe fails across the cut too), and
// cluster.partition is recorded. On heal the replication backlogs
// flush to convergence, cross-facility routing works again, and
// cluster.heal is recorded.
func TestClusterPartitionDegradesAndHeals(t *testing.T) {
	base := t.TempDir()
	nw := newFabric(t)
	labProbeTarget(t, nw, hostLabA)
	labProbeTarget(t, nw, hostLabB)

	// Each facility drives its own lab deployment here — unlike the
	// failover drill, nobody may touch the other side's instruments.
	deploy := func(name string) *core.Deployment {
		dir := filepath.Join(base, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		dep, err := core.Deploy(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dep.Close() })
		return dep
	}
	depA := deploy("lab-a")
	depB := deploy("lab-b")

	tracer := trace.New(trace.WithStore(trace.NewStore(0, 0)))

	newNode := func(fac, dir, host string, dep *core.Deployment, peer Peer) *Node {
		node, err := NewNode(Config{
			Facility: fac,
			Peers:    []Peer{peer},
			Sched:    sched.Config{Dir: filepath.Join(base, dir), Workers: 1, Tracer: tracer},
			NewRunner: func(n *Node, facility string) sched.Runner {
				return &sched.LabRunner{
					Connector:     &sched.DeploymentConnector{D: dep, Host: netsim.HostDGX},
					Leases:        n.Scheduler().Leases(),
					Dir:           n.Scheduler().Dir(),
					Resources:     FacilityResources(facility),
					MirrorJournal: n.MirrorJournal,
				}
			},
			Transport:      nsTransport(nw, host),
			HeartbeatEvery: 50 * time.Millisecond,
			FailoverAfter:  250 * time.Millisecond,
			RetryAfter:     2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	nodeA := newNode("faca", "state-a", hostGwA, depA,
		Peer{Facility: "facb", URL: urlGwB, Probe: probeVia(nw, hostGwA, hostLabB)})
	nodeB := newNode("facb", "state-b", hostGwB, depB,
		Peer{Facility: "faca", URL: urlGwA, Probe: probeVia(nw, hostGwB, hostLabA)})

	serveNode(t, nw, hostGwA, nodeA)
	serveNode(t, nw, hostGwB, nodeB)
	if err := nodeA.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nodeA.Stop)
	if err := nodeB.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nodeB.Stop)

	awaitTrue(t, 5*time.Second, "peers see each other", func() bool {
		return nodeA.Ready().Peers["facb"] && nodeB.Ready().Peers["faca"]
	})

	clientA := nsClient(nw, hostUserA)
	clientB := nsClient(nw, hostUserB)

	// Sanity before the cut: cross-facility submission from A routes
	// to B and completes; the origin proxies status for it.
	crossBefore := submitJob(t, clientA, urlGwA, sched.JobSpec{
		Tenant: "acl", Kind: sched.KindCV, Points: 100, Facility: "facb",
	})
	if facilityOfJob(crossBefore.ID) != "facb" {
		t.Fatalf("cross-facility job admitted as %q, want facb prefix", crossBefore.ID)
	}
	done := awaitJobDone(t, clientA, urlGwA, crossBefore.ID, 60*time.Second)
	if done.State != sched.StateDone {
		t.Fatalf("pre-partition cross job = %s (%s)", done.State, done.Error)
	}

	// ---- Partition the WAN. ----
	if err := nw.Partition("wan"); err != nil {
		t.Fatal(err)
	}

	// Both sides must classify the silence as a partition (fencing
	// probe fails across the same cut), not a failover.
	awaitTrue(t, 5*time.Second, "both sides mark cluster.partition", func() bool {
		return nodeA.Scheduler().Metrics().CounterValue("cluster.partitions") >= 1 &&
			nodeB.Scheduler().Metrics().CounterValue("cluster.partitions") >= 1
	})

	// Degraded mode: local submissions on each side still run to DONE.
	localA := submitJob(t, clientA, urlGwA, sched.JobSpec{Tenant: "acl", Kind: sched.KindCV, Points: 100})
	localB := submitJob(t, clientB, urlGwB, sched.JobSpec{Tenant: "mit", Kind: sched.KindCV, Points: 100})
	if got := awaitJobDone(t, clientA, urlGwA, localA.ID, 60*time.Second); got.State != sched.StateDone {
		t.Fatalf("local job on A during partition = %s (%s)", got.State, got.Error)
	}
	if got := awaitJobDone(t, clientB, urlGwB, localB.ID, 60*time.Second); got.State != sched.StateDone {
		t.Fatalf("local job on B during partition = %s (%s)", got.State, got.Error)
	}

	// Cross-facility submission degrades to 503 + Retry-After.
	_, status, err := trySubmit(clientA, urlGwA, sched.JobSpec{
		Tenant: "acl", Kind: sched.KindCV, Points: 100, Facility: "facb",
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("cross-facility submit during partition = HTTP %d, want 503", status)
	}
	resp, err := clientA.Post(urlGwA+"/v1/jobs", "application/json",
		strings.NewReader(`{"tenant":"acl","kind":"cv","points":100,"facility":"facb"}`))
	if err != nil {
		t.Fatal(err)
	}
	retryAfter := resp.Header.Get("Retry-After")
	resp.Body.Close()
	if secs, convErr := strconv.Atoi(retryAfter); convErr != nil || secs < 1 {
		t.Fatalf("503 Retry-After = %q, want a positive integer", retryAfter)
	}

	// No split-brain: neither side claims the other's facility, so no
	// foreign instrument lease can exist on either side of the cut.
	if _, leads := nodeB.state().Leading["faca"]; leads {
		t.Fatal("node B claimed faca leadership during partition")
	}
	if _, leads := nodeA.state().Leading["facb"]; leads {
		t.Fatal("node A claimed facb leadership during partition")
	}
	for _, job := range nodeB.Scheduler().Jobs() {
		if facilityOfJob(job.ID) == "faca" {
			t.Fatalf("node B runs foreign job %s during partition", job.ID)
		}
	}

	// Readiness reflects the degraded-but-leading state: still ready
	// (we lead our own facility), peer marked unreachable.
	st := nodeA.Ready()
	if !st.Ready || st.Role != "leader" || st.Peers["facb"] {
		t.Fatalf("node A readiness during partition = %+v", st)
	}

	// ---- Heal. ----
	if err := nw.Heal("wan"); err != nil {
		t.Fatal(err)
	}

	// Replication backlogs (the partition-era local jobs' records)
	// flush until every peer acknowledged everything.
	awaitTrue(t, 10*time.Second, "replication converges after heal", func() bool {
		return nodeA.rep.lag() == 0 && nodeB.rep.lag() == 0 &&
			nodeA.Scheduler().Metrics().CounterValue("cluster.heals") >= 1 &&
			nodeB.Scheduler().Metrics().CounterValue("cluster.heals") >= 1
	})

	// The replicas converge deterministically: B's copy of A's stream
	// reaches A's high-water mark (and vice versa), and folding it
	// yields the partition-era job as DONE exactly once.
	items, err := nodeB.store.Read("faca")
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := foldStream(items)
	jobs := sched.FoldWALRecords(recs)
	var sawLocalA bool
	for _, j := range jobs {
		if j.ID == localA.ID {
			sawLocalA = true
			if j.State != sched.StateDone {
				t.Fatalf("replicated fold of %s = %s, want DONE", j.ID, j.State)
			}
		}
	}
	if !sawLocalA {
		t.Fatalf("partition-era job %s missing from healed replica", localA.ID)
	}

	// Cross-facility routing works again end to end.
	crossAfter := submitJob(t, clientA, urlGwA, sched.JobSpec{
		Tenant: "acl", Kind: sched.KindCV, Points: 100, Facility: "facb",
	})
	if got := awaitJobDone(t, clientA, urlGwA, crossAfter.ID, 60*time.Second); got.State != sched.StateDone {
		t.Fatalf("post-heal cross job = %s (%s)", got.State, got.Error)
	}

	// The cluster spans carry the partition and heal events.
	nodeA.Stop()
	nodeB.Stop()
	var sawPartition, sawHeal bool
	for _, traceID := range []string{nodeA.span.TraceID(), nodeB.span.TraceID()} {
		for _, rec := range tracer.Store().Trace(traceID) {
			for _, ev := range rec.Events {
				switch ev.Name {
				case "cluster.partition":
					sawPartition = true
				case "cluster.heal":
					sawHeal = true
				}
			}
		}
	}
	if !sawPartition || !sawHeal {
		t.Fatalf("cluster spans: partition event %v, heal event %v, want both", sawPartition, sawHeal)
	}
}
