package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ice/internal/sched"
)

// monitor is the node's federation heartbeat: every HeartbeatEvery it
// exchanges state with each peer, then evaluates transitions —
// silence past FailoverAfter triggers the fencing probe and either a
// failover (gateway dead, lab alive) or a partition (both dark);
// renewed contact heals; drained adopted jobs hand leadership back.
func (n *Node) monitor() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		n.tick()
	}
}

func (n *Node) tick() {
	peers := n.snapshotPeers()
	var wg sync.WaitGroup
	for _, ps := range peers {
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			st, err := n.sendHeartbeat(ps.peer)
			if err != nil {
				n.noteSilent(ps.peer.Facility)
				return
			}
			n.observeState(ps.peer.Facility, st)
		}(ps)
	}
	wg.Wait()
	n.evaluate()
	n.updateGauges()
}

// sendHeartbeat POSTs our state to the peer and returns theirs.
func (n *Node) sendHeartbeat(p Peer) (stateMsg, error) {
	body, err := json.Marshal(n.state())
	if err != nil {
		return stateMsg{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ReplTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.URL+"/v1/cluster/heartbeat", bytes.NewReader(body))
	if err != nil {
		return stateMsg{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return stateMsg{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return stateMsg{}, fmt.Errorf("heartbeat: %s", resp.Status)
	}
	var st stateMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return stateMsg{}, err
	}
	return st, nil
}

// fetchState GETs a peer's state (used at join, before we advertise).
func (n *Node) fetchState(p Peer) (stateMsg, error) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ReplTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/v1/cluster/state", nil)
	if err != nil {
		return stateMsg{}, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return stateMsg{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return stateMsg{}, fmt.Errorf("state: %s", resp.Status)
	}
	var st stateMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return stateMsg{}, err
	}
	return st, nil
}

// observeState folds a peer's advertisement into the peer table; a
// peer heard from is reachable, and a previously partitioned peer
// heals (replication backlog flushes).
func (n *Node) observeState(facility string, st stateMsg) {
	n.mu.Lock()
	ps, ok := n.peers[facility]
	if !ok {
		n.mu.Unlock()
		return
	}
	healed := ps.partitioned
	ps.lastSeen = time.Now()
	ps.everSeen = true
	ps.reachable = true
	ps.partitioned = false
	ps.adoptBlocked = false
	ps.term = st.Term
	ps.quarantined = append([]string(nil), st.Quarantined...)
	if len(st.Quarantined) > 0 {
		ps.quarantinedAt = time.Now()
	}
	leading := make(map[string]uint64, len(st.Leading))
	for fac, term := range st.Leading {
		leading[fac] = term
	}
	ps.leading = leading
	if t, held := st.Leading[n.cfg.Facility]; held && t > n.maxHomeTerm {
		n.maxHomeTerm = t
	}
	n.mu.Unlock()
	if healed {
		n.span.Event("cluster.heal", "peer", facility)
		n.metrics.Counter("cluster.heals").Inc()
	}
	n.rep.markUp(facility, true)
}

// markSeen is the lightweight liveness update for non-heartbeat
// contact (a replication batch landing here proves the sender lives).
func (n *Node) markSeen(facility string) {
	n.mu.Lock()
	ps, ok := n.peers[facility]
	if !ok {
		n.mu.Unlock()
		return
	}
	healed := ps.partitioned
	ps.lastSeen = time.Now()
	ps.everSeen = true
	ps.reachable = true
	ps.partitioned = false
	n.mu.Unlock()
	if healed {
		n.span.Event("cluster.heal", "peer", facility)
		n.metrics.Counter("cluster.heals").Inc()
	}
	n.rep.markUp(facility, true)
}

// noteSilent records a failed heartbeat round trip.
func (n *Node) noteSilent(facility string) {
	n.mu.Lock()
	if ps, ok := n.peers[facility]; ok {
		ps.reachable = false
	}
	n.mu.Unlock()
	n.rep.markUp(facility, false)
}

// evaluate applies the federation state machine after a heartbeat
// round: fencing-gated failover or partition marking for silent
// peers, leadership handback for drained adoptions, and home-claim
// when an adopter has released our facility.
func (n *Node) evaluate() {
	now := time.Now()
	n.mu.Lock()
	type decision struct {
		ps        *peerState
		silentFor time.Duration
	}
	var silent []decision
	for _, ps := range n.peers {
		if ps.reachable {
			continue
		}
		last := ps.lastSeen
		if !ps.everSeen {
			last = n.startedAt
		}
		if d := now.Sub(last); d >= n.cfg.FailoverAfter {
			if _, alreadyLead := n.leading[ps.peer.Facility]; !alreadyLead {
				silent = append(silent, decision{ps: ps, silentFor: d})
			}
		}
	}
	n.mu.Unlock()

	for _, dec := range silent {
		ps := dec.ps
		if err := n.probe(ps.peer); err == nil {
			// Fencing passed: the facility's lab answers but its gateway
			// does not — a crashed gateway, not a severed WAN. Adopt.
			n.adoptFacility(ps)
		} else {
			n.mu.Lock()
			first := !ps.partitioned
			ps.partitioned = true
			n.mu.Unlock()
			if first {
				n.span.Event("cluster.partition", "peer", ps.peer.Facility, "silent_for", dec.silentFor.String())
				n.metrics.Counter("cluster.partitions").Inc()
			}
		}
	}

	n.handback()
	n.claimHomeIfFree()
}

// probe runs the peer's fencing check: reach the facility's lab.
func (n *Node) probe(p Peer) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ReplTimeout)
	defer cancel()
	if p.Probe != nil {
		return p.Probe(ctx)
	}
	if p.LabAddr == "" {
		return fmt.Errorf("cluster: no lab probe configured for %s", p.Facility)
	}
	conn, err := n.cfg.Dial(p.LabAddr)
	if err != nil {
		return err
	}
	conn.Close()
	return nil
}

// adoptFacility performs the failover: raise the facility's term,
// replay the replicated WAL, install the replicated checkpoint
// journals, and re-enqueue every non-terminal job locally. Each
// adopted job resumes through the normal workflow Restore path —
// completed tasks are skipped, so the drill's audit journal shows
// every liquid-handling action exactly once.
func (n *Node) adoptFacility(ps *peerState) {
	fac := ps.peer.Facility
	// Failover never adopts jobs onto a known-quarantined instrument:
	// if the dead gateway's last heartbeat advertised sick instruments,
	// its jobs would land straight back on the same wedged lab. Hold
	// adoption until the advertisement ages out (QuarantineHold); the
	// fencing probe still gates after that.
	n.mu.Lock()
	quarantined := ps.quarantined
	heldBack := len(quarantined) > 0 && time.Since(ps.quarantinedAt) < n.cfg.QuarantineHold
	firstBlock := heldBack && !ps.adoptBlocked
	ps.adoptBlocked = heldBack
	n.mu.Unlock()
	if heldBack {
		if firstBlock {
			n.span.Event("cluster.failover.held",
				"facility", fac,
				"quarantined", strings.Join(quarantined, ","))
			n.metrics.Counter("cluster.failovers.held").Inc()
		}
		return
	}
	items, err := n.store.Read(fac)
	if err != nil {
		n.span.Event("cluster.failover.error", "facility", fac, "error", err.Error())
		return
	}
	recs, journals := foldStream(items)
	jobs := sched.FoldWALRecords(recs)

	maxTerm := ps.term
	for _, rec := range recs {
		if rec.Term > maxTerm {
			maxTerm = rec.Term
		}
	}
	n.mu.Lock()
	if _, already := n.leading[fac]; already {
		n.mu.Unlock()
		return
	}
	n.leading[fac] = maxTerm + 1
	ps.adopted = true
	ps.partitioned = false
	n.mu.Unlock()

	adopted := 0
	for _, job := range jobs {
		if job.State.Terminal() {
			continue
		}
		if _, known := n.sch.Job(job.ID); known {
			continue
		}
		var lines [][]byte
		for _, l := range journals[job.ID] {
			lines = append(lines, l)
		}
		if err := n.installJournal(job.ID, lines); err != nil {
			n.span.Event("cluster.failover.error", "job", job.ID, "error", err.Error())
			continue
		}
		j := *job
		if j.Spec.Facility == "" {
			j.Spec.Facility = fac
		}
		if err := n.sch.Adopt(j); err != nil {
			n.span.Event("cluster.failover.error", "job", j.ID, "error", err.Error())
			continue
		}
		adopted++
	}
	n.span.Event("cluster.failover",
		"facility", fac,
		"term", strconv.FormatUint(maxTerm+1, 10),
		"jobs", strconv.Itoa(adopted))
	n.metrics.Counter("cluster.failovers").Inc()
}

// handback releases an adopted facility once its jobs have drained
// and its own gateway is back: the restarted gateway claims home
// leadership at a higher term on its next heartbeat round.
func (n *Node) handback() {
	n.mu.Lock()
	var release []string
	for fac := range n.leading {
		if fac == n.cfg.Facility {
			continue
		}
		ps, ok := n.peers[fac]
		if !ok || !ps.reachable {
			continue
		}
		live := false
		for _, job := range n.sch.Jobs() {
			if !job.State.Terminal() && facilityOfJob(job.ID) == fac {
				live = true
				break
			}
		}
		if !live {
			release = append(release, fac)
		}
	}
	for _, fac := range release {
		delete(n.leading, fac)
		if ps, ok := n.peers[fac]; ok {
			ps.adopted = false
		}
	}
	n.mu.Unlock()
	for _, fac := range release {
		n.span.Event("cluster.handback", "facility", fac)
	}
}

// claimHomeIfFree takes home leadership once no peer claims it — the
// normal case at startup, or after an adopter's handback.
func (n *Node) claimHomeIfFree() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.leading[n.cfg.Facility]; ok {
		return
	}
	for _, ps := range n.peers {
		if _, held := ps.leading[n.cfg.Facility]; held {
			// A peer's last advertisement still claims our facility:
			// even if it is unreachable right now, claiming would risk
			// split-brain on our own instruments. Wait for contact.
			return
		}
	}
	n.claimHomeLocked(n.maxHomeTerm)
	n.span.Event("cluster.claim", "facility", n.cfg.Facility)
}
