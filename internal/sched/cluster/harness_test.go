package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"ice/internal/netsim"
	"ice/internal/sched"
)

// The drills run two facility gateways over a simulated WAN:
//
//	user-a  icegated-a  lab-a            lab-b  icegated-b  user-b
//	   \        |        /                 \        |        /
//	    [lan-a hub] -- edge-a -- [wan hub] -- edge-b -- [lan-b hub]
//
// Taking the wan hub down partitions the facilities from each other
// while each LAN keeps working — the exact failure the cluster must
// degrade through without split-brain.
const (
	gwPort    = 9700
	probePort = 7

	hostGwA   = "icegated-a"
	hostGwB   = "icegated-b"
	hostLabA  = "lab-a"
	hostLabB  = "lab-b"
	hostUserA = "user-a"
	hostUserB = "user-b"

	urlGwA = "http://icegated-a:9700"
	urlGwB = "http://icegated-b:9700"
)

// newFabric builds the two-facility WAN topology.
func newFabric(t *testing.T) *netsim.Network {
	t.Helper()
	nw := netsim.New()
	steps := []error{
		nw.AddHub("lan-a", 200*time.Microsecond, 0),
		nw.AddHub("wan", 2*time.Millisecond, 0),
		nw.AddHub("lan-b", 200*time.Microsecond, 0),
		nw.AddGateway("edge-a", "lan-a", "wan"),
		nw.AddGateway("edge-b", "lan-b", "wan"),
		nw.AddHost(hostGwA, "lan-a"),
		nw.AddHost(hostGwB, "lan-b"),
		nw.AddHost(hostLabA, "lan-a"),
		nw.AddHost(hostLabB, "lan-b"),
		nw.AddHost(hostUserA, "lan-a"),
		nw.AddHost(hostUserB, "lan-b"),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// labProbeTarget runs a bare accept-and-close listener on a lab host:
// the fencing probe's "is the facility alive" signal.
func labProbeTarget(t *testing.T, nw *netsim.Network, host string) {
	t.Helper()
	lis, err := nw.Listen(host, probePort)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
}

// probeVia returns a fencing probe that dials a lab host from the
// node's own gateway host, across the simulated fabric.
func probeVia(nw *netsim.Network, fromHost, labHost string) func(ctx context.Context) error {
	addr := net.JoinHostPort(labHost, fmt.Sprintf("%d", probePort))
	return func(ctx context.Context) error {
		c, err := nw.Dial(fromHost, addr)
		if err != nil {
			return err
		}
		c.Close()
		return nil
	}
}

// nsTransport carries a node's peer traffic over the simulated WAN.
// Keep-alives are off so a healed partition never reuses a connection
// the hub outage already aborted.
func nsTransport(nw *netsim.Network, fromHost string) http.RoundTripper {
	return &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return nw.Dial(fromHost, addr)
		},
		DisableKeepAlives: true,
	}
}

// nsClient is an HTTP client originating at a user host.
func nsClient(nw *netsim.Network, fromHost string) *http.Client {
	return &http.Client{
		Transport: nsTransport(nw, fromHost),
		Timeout:   15 * time.Second,
	}
}

// serveNode exposes a node over the simulated network.
func serveNode(t *testing.T, nw *netsim.Network, host string, node *Node) *http.Server {
	t.Helper()
	lis, err := nw.Listen(host, gwPort)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: node}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// submitJob POSTs a spec to a gateway and returns the admitted job.
func submitJob(t *testing.T, client *http.Client, base string, spec sched.JobSpec) sched.Job {
	t.Helper()
	job, status, err := trySubmit(client, base, spec)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusAccepted {
		t.Fatalf("submit to %s = HTTP %d, want 202", base, status)
	}
	return job
}

// trySubmit POSTs a spec and reports the status code without failing
// the test — partition drills expect rejections.
func trySubmit(client *http.Client, base string, spec sched.JobSpec) (sched.Job, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return sched.Job{}, 0, err
	}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return sched.Job{}, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return sched.Job{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return sched.Job{}, resp.StatusCode, nil
	}
	var job sched.Job
	if err := json.Unmarshal(data, &job); err != nil {
		return sched.Job{}, resp.StatusCode, fmt.Errorf("decode submit response: %w (%s)", err, data)
	}
	return job, resp.StatusCode, nil
}

// fetchJob GETs a job's status through a gateway.
func fetchJob(client *http.Client, base, id string) (sched.Job, int, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return sched.Job{}, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return sched.Job{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return sched.Job{}, resp.StatusCode, nil
	}
	var job sched.Job
	if err := json.Unmarshal(data, &job); err != nil {
		return sched.Job{}, resp.StatusCode, err
	}
	return job, resp.StatusCode, nil
}

// awaitJobDone polls a gateway until the job reaches a terminal state.
func awaitJobDone(t *testing.T, client *http.Client, base, id string, within time.Duration) sched.Job {
	t.Helper()
	deadline := time.Now().Add(within)
	var last sched.Job
	var lastStatus int
	for time.Now().Before(deadline) {
		job, status, err := fetchJob(client, base, id)
		if err == nil && status == http.StatusOK {
			last, lastStatus = job, status
			if job.State.Terminal() {
				return job
			}
		} else if err == nil {
			lastStatus = status
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal within %s via %s (last state %q, HTTP %d)",
		id, within, base, last.State, lastStatus)
	return sched.Job{}
}

// awaitTrue polls a condition with a deadline.
func awaitTrue(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("condition %q not reached within %s", what, within)
}

// grabRunner wraps a runner and captures each job's context so a crash
// seam can wait for the kill to land (mirrors the single-facility
// recovery drill's idiom).
type grabRunner struct {
	inner sched.Runner
	mu    sync.Mutex
	ctxs  map[string]context.Context
}

func newGrabRunner(inner sched.Runner) *grabRunner {
	return &grabRunner{inner: inner, ctxs: make(map[string]context.Context)}
}

func (r *grabRunner) Run(ctx context.Context, job sched.Job, emit func(string, string)) (json.RawMessage, error) {
	r.mu.Lock()
	r.ctxs[job.ID] = ctx
	r.mu.Unlock()
	return r.inner.Run(ctx, job, emit)
}

func (r *grabRunner) ctx(id string) context.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctxs[id]
}
