package cluster

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/netsim"
	"ice/internal/sched"
	"ice/internal/trace"
	"ice/internal/workflow"
)

// TestClusterFailoverKillDashNineExactlyOnce is the ISSUE's headline
// acceptance drill: facility A's gateway is killed (kill -9 — no
// goodbye, no flush beyond what replication already acknowledged)
// right after the CV workflow's task C filled the electrochemical
// cell. Facility B's gateway must detect the silence, pass the
// fencing probe (A's lab still answers — crashed gateway, live
// facility), replay the replicated WAL, install the replicated
// checkpoint journal, and finish the job exactly once: DONE on
// attempt two, digest-verified measurement, each liquid-moving
// command in A's lab audit journal exactly once, no leaked leases,
// and one stitched trace carrying a cluster.failover event.
func TestClusterFailoverKillDashNineExactlyOnce(t *testing.T) {
	base := t.TempDir()
	labDir := filepath.Join(base, "lab-a")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		t.Fatal(err)
	}
	dep, err := core.Deploy(labDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	if err := dep.Agent.EnableAudit(); err != nil {
		t.Fatal(err)
	}
	connector := &sched.DeploymentConnector{D: dep, Host: netsim.HostDGX}

	nw := newFabric(t)
	labProbeTarget(t, nw, hostLabA)
	labProbeTarget(t, nw, hostLabB)

	// One tracer for both nodes: the acceptance criterion is a single
	// stitched trace across the failover, and a shared store makes
	// that directly observable.
	tracer := trace.New(trace.WithStore(trace.NewStore(0, 0)))

	dirA := filepath.Join(base, "state-a")
	dirB := filepath.Join(base, "state-b")

	// Node A, rigged to die at the C→D task boundary.
	killed := make(chan struct{})
	var crashOnce sync.Once
	var srvA *http.Server
	var nodeA *Node
	newRunnerA := func(n *Node, fac string) sched.Runner {
		lr := &sched.LabRunner{
			Connector:     connector,
			Leases:        n.Scheduler().Leases(),
			Dir:           n.Scheduler().Dir(),
			Resources:     FacilityResources(fac),
			MirrorJournal: n.MirrorJournal,
		}
		grab := newGrabRunner(lr)
		lr.OnTask = func(jobID string, rec workflow.TaskRecord) {
			if rec.TaskID != "C" || rec.Status != "OK" {
				return
			}
			// Runs inside the worker goroutine; Kill waits for that
			// goroutine, so the kill must proceed concurrently while the
			// workflow is held here until the job's context is cut.
			crashOnce.Do(func() {
				go func() {
					srvA.Close()
					nodeA.Kill()
					close(killed)
				}()
				<-grab.ctx(jobID).Done()
			})
		}
		return grab
	}
	nodeA, err = NewNode(Config{
		Facility: "faca",
		Peers: []Peer{{
			Facility: "facb",
			URL:      urlGwB,
			Probe:    probeVia(nw, hostGwA, hostLabB),
		}},
		Sched:          sched.Config{Dir: dirA, Workers: 1, Tracer: tracer},
		NewRunner:      newRunnerA,
		Transport:      nsTransport(nw, hostGwA),
		HeartbeatEvery: 50 * time.Millisecond,
		FailoverAfter:  250 * time.Millisecond,
		RetryAfter:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Node B: same lab (it adopts A's instruments on failover), no seam.
	nodeB, err := NewNode(Config{
		Facility: "facb",
		Peers: []Peer{{
			Facility: "faca",
			URL:      urlGwA,
			Probe:    probeVia(nw, hostGwB, hostLabA),
		}},
		Sched: sched.Config{Dir: dirB, Workers: 1, Tracer: tracer},
		NewRunner: func(n *Node, fac string) sched.Runner {
			return &sched.LabRunner{
				Connector:     connector,
				Leases:        n.Scheduler().Leases(),
				Dir:           n.Scheduler().Dir(),
				Resources:     FacilityResources(fac),
				MirrorJournal: n.MirrorJournal,
			}
		},
		Transport:      nsTransport(nw, hostGwB),
		HeartbeatEvery: 50 * time.Millisecond,
		FailoverAfter:  250 * time.Millisecond,
		RetryAfter:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	srvA = serveNode(t, nw, hostGwA, nodeA)
	serveNode(t, nw, hostGwB, nodeB)
	if err := nodeB.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nodeB.Stop)
	if err := nodeA.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nodeA.Kill) // idempotent; normally already dead by then

	// Wait for the first heartbeat exchange so replication is live
	// before admission — the synchronous path the drill depends on.
	awaitTrue(t, 5*time.Second, "peers see each other", func() bool {
		return nodeA.Ready().Peers["facb"] && nodeB.Ready().Peers["faca"]
	})

	clientA := nsClient(nw, hostUserA)
	clientB := nsClient(nw, hostUserB)
	job := submitJob(t, clientA, urlGwA, sched.JobSpec{Tenant: "acl", Kind: sched.KindCV, Points: 400})
	if facilityOfJob(job.ID) != "faca" {
		t.Fatalf("job ID %q not prefixed with admitting facility", job.ID)
	}

	select {
	case <-killed:
	case <-time.After(30 * time.Second):
		t.Fatal("facility A gateway never died at the crash seam")
	}
	killedAt := time.Now()

	// B must notice the silence, fence, adopt, and finish the job. The
	// ISSUE asks for failover (adoption) under 10s; the CV itself then
	// re-runs from the replicated checkpoint.
	awaitTrue(t, 10*time.Second, "node B adopts faca", func() bool {
		_, known := nodeB.Scheduler().Job(job.ID)
		return known
	})
	t.Logf("adoption latency: %s", time.Since(killedAt))

	final := awaitJobDone(t, clientB, urlGwB, job.ID, 90*time.Second)
	if final.State != sched.StateDone {
		t.Fatalf("adopted job = %s (%s), want DONE", final.State, final.Error)
	}
	if final.Attempts != 2 || !final.Resumed {
		t.Fatalf("adopted job attempts = %d resumed = %v, want 2 resumed", final.Attempts, final.Resumed)
	}

	// The origin gateway is dead, but the surviving peer answers for
	// the job ID from anywhere — route by prefix, serve locally.
	viaB, status, err := fetchJob(clientB, urlGwB, job.ID)
	if err != nil || status != http.StatusOK || viaB.State != sched.StateDone {
		t.Fatalf("status via surviving peer = %v HTTP %d err %v", viaB.State, status, err)
	}

	// Digest verification against the data channel.
	var result sched.CVResult
	if err := json.Unmarshal(final.Result, &result); err != nil {
		t.Fatal(err)
	}
	if result.Points != 401 || result.SHA256 == "" {
		t.Fatalf("resumed result = %+v", result)
	}
	_, mount, err := dep.ConnectFrom(netsim.HostDGX)
	if err != nil {
		t.Fatal(err)
	}
	defer mount.Close()
	sum, _, err := mount.Checksum(result.File)
	if err != nil {
		t.Fatal(err)
	}
	if sum != result.SHA256 {
		t.Fatalf("digest mismatch: result %s, data channel %s", result.SHA256, sum)
	}

	// Exactly-once: each liquid-moving command appears once in the
	// lab's audit journal — the adopted attempt resumed from the
	// replicated checkpoint instead of re-filling the cell.
	auditData, err := os.ReadFile(filepath.Join(labDir, core.AuditFileName))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := core.ParseAuditJournal(auditData)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, e := range entries {
		counts[e.Method]++
	}
	for _, method := range []string{"WithdrawSyringePump", "DispenseSyringePump", "StartChannelSP200"} {
		if counts[method] != 1 {
			t.Errorf("audit journal shows %s ×%d, want exactly once", method, counts[method])
		}
	}

	if active := nodeB.Scheduler().Leases().Active(); len(active) != 0 {
		t.Fatalf("leaked leases on the adopter: %+v", active)
	}

	// No WAL record loss despite group commit and kill -9: every
	// record A acknowledged on disk must be present in B's replica
	// stream (synchronous replication ran ahead of the local ack).
	walFile, err := os.Open(filepath.Join(dirA, sched.WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	local, err := sched.ReadWALRecords(walFile)
	walFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	items, err := nodeB.store.Read("faca")
	if err != nil {
		t.Fatal(err)
	}
	replicated, _ := foldStream(items)
	repSeqs := make(map[uint64]bool, len(replicated))
	for _, rec := range replicated {
		repSeqs[rec.Seq] = true
	}
	for _, rec := range local {
		if !repSeqs[rec.Seq] {
			t.Errorf("WAL record seq %d (%s %s) on A's disk missing from B's replica", rec.Seq, rec.Job, rec.State)
		}
	}

	// One stitched trace: the adopted attempt's spans re-rooted into
	// the original trace, carrying the cluster.failover event.
	recs := tracer.Store().Trace(job.TraceID)
	if len(recs) == 0 {
		t.Fatal("job trace empty")
	}
	var sawFailover, sawAdoptedSpan bool
	for _, rec := range recs {
		if rec.Attrs["adopted"] == "true" {
			sawAdoptedSpan = true
		}
		for _, ev := range rec.Events {
			if ev.Name == "cluster.failover" {
				sawFailover = true
			}
		}
	}
	if !sawFailover || !sawAdoptedSpan {
		t.Fatalf("stitched trace: failover event %v, adopted span %v, want both", sawFailover, sawAdoptedSpan)
	}
}
