package cluster

import (
	"encoding/json"
	"testing"

	"ice/internal/sched"
)

// TestReplicaStoreDedupAndRecover exercises the replica's durability
// contract: applied items are deduplicated by replication sequence
// (retransmitted batches after a heal are harmless), the
// acknowledgement is the per-origin high-water mark, and a reopened
// store recovers it from disk.
func TestReplicaStoreDedupAndRecover(t *testing.T) {
	dir := t.TempDir()
	store, err := openReplicaStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	rec := func(seq uint64, state sched.State) repItem {
		return repItem{
			RepSeq: seq,
			Kind:   kindWAL,
			WAL:    &sched.WALRecord{Seq: seq, Job: "faca-000001", State: state},
		}
	}
	ack, err := store.Apply("faca", []repItem{
		rec(1, sched.StatePending),
		{RepSeq: 2, Kind: kindJournal, Job: "faca-000001", Line: json.RawMessage(`{"task_id":"A","status":"OK"}`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack != 2 {
		t.Fatalf("ack = %d, want 2", ack)
	}

	// A retransmitted batch overlapping the acknowledged prefix: the
	// overlap is skipped, only the new suffix lands.
	ack, err = store.Apply("faca", []repItem{
		rec(1, sched.StatePending),
		{RepSeq: 2, Kind: kindJournal, Job: "faca-000001", Line: json.RawMessage(`{"task_id":"A","status":"OK"}`)},
		rec(3, sched.StateRunning),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack != 3 {
		t.Fatalf("ack after retransmission = %d, want 3", ack)
	}

	items, err := store.Read("faca")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("stream holds %d items after dedup, want 3", len(items))
	}
	recs, journals := foldStream(items)
	if len(recs) != 2 || len(journals["faca-000001"]) != 1 {
		t.Fatalf("fold = %d WAL records, %d journal lines; want 2 and 1", len(recs), len(journals["faca-000001"]))
	}
	store.Close()

	// Reopen: the high-water mark survives, so a replayed batch from
	// before the restart is still deduplicated.
	reopened, err := openReplicaStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if last := reopened.LastSeq("faca"); last != 3 {
		t.Fatalf("recovered LastSeq = %d, want 3", last)
	}
	if ack, err = reopened.Apply("faca", []repItem{rec(3, sched.StateRunning)}); err != nil || ack != 3 {
		t.Fatalf("replayed batch after reopen: ack %d err %v, want 3 nil", ack, err)
	}
	items, err = reopened.Read("faca")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("stream grew to %d items on replayed batch, want 3", len(items))
	}
}
