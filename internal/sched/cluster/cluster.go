// Package cluster federates one icegated gateway per facility into a
// partition-tolerant whole, the cross-facility control plane the
// paper's two-site ecosystem needs once a single scheduler process is
// no longer allowed to be a single point of failure.
//
// Each Node owns its local instruments and runs the existing
// sched.Scheduler underneath, with three federation layers on top:
//
//   - Routing: a job may be submitted to any gateway; the spec's
//     facility field (default: the receiving gateway's own) decides
//     where it runs, and the origin gateway forwards the submission
//     and proxies status/SSE from the owner. Job IDs are prefixed
//     with the admitting facility ("facA-000007"), so any node can
//     route a query from the ID alone.
//
//   - Replication: every WAL record and every workflow checkpoint
//     line is shipped to the peer(s) synchronously — an admission is
//     not confirmed, and a workflow does not cross a task boundary,
//     until the peer has fsynced the copy. When a peer is down the
//     stream degrades to a backlog that catches up on reconnect, so
//     a partition never blocks local work.
//
//   - Failover: peers heartbeat each other; when a gateway goes
//     silent past the failover threshold, a peer probes the silent
//     facility's lab to tell a crashed gateway from a severed WAN.
//     Only if the lab answers — gateway dead, facility alive — does
//     the peer raise the term, replay the replicated WAL, install
//     the replicated checkpoint journals and adopt the dead
//     gateway's queued and running jobs, which then resume exactly
//     once through the normal workflow Restore path. If the lab is
//     unreachable too, it is a partition: the peer serves 503 +
//     Retry-After for that facility, records a cluster.partition
//     trace event, and — crucially — adopts nothing, so an
//     instrument lease can never be live on both sides of the split.
//
// On heal the sides reconcile deterministically: replication
// backlogs flush (replicas deduplicate by replication sequence), WAL
// merges order by sequence number with the higher term winning a
// duplicated slot, and last-writer-wins applies only to idempotent
// status records.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ice/internal/sched"
	"ice/internal/telemetry"
	"ice/internal/trace"
)

// Peer describes one remote facility's gateway.
type Peer struct {
	// Facility is the peer's home facility name.
	Facility string
	// URL is the peer gateway's base URL ("http://gw-b:9700").
	URL string
	// LabAddr is an address inside the peer's facility (its control
	// agent or lab) dialed as the failover fencing probe: this node
	// adopts the peer's jobs only when the gateway is silent but the
	// lab still answers. Empty with no Probe means the probe always
	// fails, i.e. the node treats every silence as a partition and
	// never adopts — the safe default.
	LabAddr string
	// Probe overrides the LabAddr dial (tests and in-process drills).
	Probe func(ctx context.Context) error
}

// Config parameterises a Node.
type Config struct {
	// Facility is this node's home facility name (required; becomes
	// the scheduler's job-ID prefix).
	Facility string
	// Peers are the other facilities' gateways.
	Peers []Peer
	// Sched configures the underlying scheduler. Dir is required;
	// IDPrefix and WALMirror are owned by the node.
	Sched sched.Config
	// NewRunner builds the executor that drives one facility's
	// instruments (required). It is called for the home facility at
	// startup and lazily for a peer facility on failover; the
	// returned runner should be a LabRunner wired with
	// facility-scoped lease resources and the node's MirrorJournal.
	NewRunner func(n *Node, facility string) sched.Runner
	// Transport carries all peer HTTP traffic (heartbeats,
	// replication, proxying). Defaults to http.DefaultTransport;
	// netsim drills install a simulated-WAN dialer.
	Transport http.RoundTripper
	// Dial is used for LabAddr probes (default: net.DialTimeout tcp).
	Dial func(addr string) (net.Conn, error)
	// HeartbeatEvery paces peer heartbeats (default 500ms).
	HeartbeatEvery time.Duration
	// FailoverAfter is how long a peer may be silent before the node
	// probes and, if fencing allows, adopts (default 4 heartbeats).
	FailoverAfter time.Duration
	// ReplTimeout bounds one replication/heartbeat round trip
	// (default 2s).
	ReplTimeout time.Duration
	// RetryAfter is the back-off hint attached to 503 responses for
	// unreachable facilities (default 2s).
	RetryAfter time.Duration
	// QuarantineHold is how long a dead peer's last-advertised
	// instrument quarantine blocks adopting its jobs (default 30s):
	// failing over onto a lab whose potentiostat was wedged minutes ago
	// just re-runs the jobs into the same wall. After the hold the
	// fencing probe alone gates adoption again.
	QuarantineHold time.Duration
}

// peerState is the node's live view of one peer.
type peerState struct {
	peer  Peer
	proxy *httputil.ReverseProxy

	lastSeen    time.Time
	everSeen    bool
	reachable   bool
	partitioned bool
	adopted     bool
	term        uint64
	leading     map[string]uint64
	// quarantined is the peer's last-advertised sick-instrument list;
	// quarantinedAt stamps when it was heard. A dead gateway's stale
	// advertisement holds back adoption for QuarantineHold.
	quarantined   []string
	quarantinedAt time.Time
	adoptBlocked  bool
}

// Node is one facility's gateway inside the federation.
type Node struct {
	cfg     Config
	sch     *sched.Scheduler
	gw      *sched.Gateway
	mux     *http.ServeMux
	client  *http.Client
	rep     *replicator
	store   *replicaStore
	metrics *telemetry.Collector
	tracer  *trace.Tracer
	span    *trace.Span

	mu          sync.Mutex
	started     bool
	stopped     bool
	startedAt   time.Time
	leading     map[string]uint64
	maxHomeTerm uint64
	peers       map[string]*peerState
	runners     map[string]sched.Runner

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewNode builds the node: scheduler (with facility-prefixed job IDs
// and the replication mirror installed), gateway, replica store, and
// peer table. Call Start to claim leadership and begin heartbeats.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Facility == "" {
		return nil, fmt.Errorf("cluster: config needs a facility name")
	}
	if cfg.NewRunner == nil {
		return nil, fmt.Errorf("cluster: config needs a runner factory")
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, time.Second)
		}
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.FailoverAfter <= 0 {
		cfg.FailoverAfter = 4 * cfg.HeartbeatEvery
	}
	if cfg.ReplTimeout <= 0 {
		cfg.ReplTimeout = 2 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.QuarantineHold <= 0 {
		cfg.QuarantineHold = 30 * time.Second
	}

	n := &Node{
		cfg:     cfg,
		client:  &http.Client{Transport: cfg.Transport},
		leading: make(map[string]uint64),
		peers:   make(map[string]*peerState),
		runners: make(map[string]sched.Runner),
		stopCh:  make(chan struct{}),
	}
	n.rep = newReplicator(n.client, cfg.Facility, cfg.ReplTimeout)
	store, err := openReplicaStore(filepath.Join(cfg.Sched.Dir, "replica"))
	if err != nil {
		return nil, err
	}
	n.store = store

	for _, p := range cfg.Peers {
		if p.Facility == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer needs facility and url")
		}
		target, err := url.Parse(p.URL)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %s url: %w", p.Facility, err)
		}
		proxy := httputil.NewSingleHostReverseProxy(target)
		proxy.Transport = cfg.Transport
		// SSE streams must flush per event, not per buffer.
		proxy.FlushInterval = -1
		ps := &peerState{peer: p, proxy: proxy, leading: make(map[string]uint64)}
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			n.writeUnavailable(w, fmt.Sprintf("facility %s unreachable: %v", p.Facility, err))
		}
		n.peers[p.Facility] = ps
		n.rep.addPeer(p.Facility, strings.TrimSuffix(p.URL, "/"))
	}

	scfg := cfg.Sched
	scfg.IDPrefix = cfg.Facility
	scfg.WALMirror = func(rec sched.WALRecord) error {
		return n.rep.mirrorWAL(rec)
	}
	// Health gating is facility-scoped: the breakers watch this node's
	// own instruments (the facility-prefixed lease names its LabRunner
	// gates on), and only home-facility jobs are gated by them —
	// adopted foreign jobs drive the peer's lab, whose health the peer
	// advertised in heartbeats instead.
	if !scfg.Health.Disabled && scfg.Health.Instruments == nil {
		home := FacilityResources(cfg.Facility)
		scfg.Health.Instruments = map[string][]string{
			"sp200": {home[0]},
			"jkem":  {home[1]},
		}
	}
	if scfg.Health.Applies == nil {
		homeFac := cfg.Facility
		scfg.Health.Applies = func(spec sched.JobSpec) bool {
			return spec.Facility == "" || spec.Facility == homeFac
		}
	}
	s, err := sched.New(scfg)
	if err != nil {
		return nil, err
	}
	n.sch = s
	n.metrics = s.Metrics()
	n.tracer = s.Tracer()
	s.SetRunner(&dispatchRunner{n: n})
	n.gw = sched.NewGateway(s)
	n.gw.SetReady(n.Ready)
	n.mux = http.NewServeMux()
	n.mux.HandleFunc("POST /v1/cluster/heartbeat", n.handleHeartbeat)
	n.mux.HandleFunc("POST /v1/cluster/replicate", n.handleReplicate)
	n.mux.HandleFunc("GET /v1/cluster/state", n.handleState)
	n.mux.HandleFunc("/", n.route)
	return n, nil
}

// Scheduler returns the underlying scheduler.
func (n *Node) Scheduler() *sched.Scheduler { return n.sch }

// Gateway returns the underlying single-facility gateway.
func (n *Node) Gateway() *sched.Gateway { return n.gw }

// Facility returns the node's home facility name.
func (n *Node) Facility() string { return n.cfg.Facility }

// ServeHTTP implements http.Handler: the full federated API surface
// (the gateway's /v1/* plus /v1/cluster/*, with cross-facility
// requests routed or proxied).
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// Start joins the cluster (querying peers so jobs a peer already
// adopted are disowned rather than double-run), claims home-facility
// leadership when uncontested, starts the scheduler, and begins
// heartbeats.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.started || n.stopped {
		n.mu.Unlock()
		return fmt.Errorf("cluster: node already started or stopped")
	}
	n.started = true
	n.startedAt = time.Now()
	n.mu.Unlock()

	n.span = n.tracer.StartTrace("", "cluster "+n.cfg.Facility, trace.ClassCluster)
	n.span.SetAttr("facility", n.cfg.Facility)

	// Join: learn who (if anyone) currently leads our facility. A peer
	// still finishing jobs it adopted from our previous incarnation
	// keeps the leadership until those drain; we disown them locally
	// and route around ourselves until the handback.
	adoptedElsewhere := make(map[string]bool)
	var maxHomeTerm uint64
	for _, ps := range n.snapshotPeers() {
		st, err := n.fetchState(ps.peer)
		if err != nil {
			continue
		}
		n.observeState(ps.peer.Facility, st)
		if t, ok := st.Leading[n.cfg.Facility]; ok {
			if t > maxHomeTerm {
				maxHomeTerm = t
			}
			for _, id := range st.Adopted[n.cfg.Facility] {
				adoptedElsewhere[id] = true
			}
		}
	}
	for _, job := range n.sch.Recovered() {
		if adoptedElsewhere[job.ID] {
			n.sch.Disown(job.ID)
			n.span.Event("cluster.disown", "job", job.ID)
		}
	}

	n.mu.Lock()
	contested := false
	for _, ps := range n.peers {
		if _, ok := ps.leading[n.cfg.Facility]; ok {
			contested = true
		}
	}
	if !contested {
		n.claimHomeLocked(maxHomeTerm)
	}
	n.mu.Unlock()

	n.runnerFor(n.cfg.Facility)
	if err := n.sch.Start(); err != nil {
		return err
	}
	n.updateGauges()
	n.wg.Add(1)
	go n.monitor()
	return nil
}

// claimHomeLocked takes home-facility leadership at a term above
// every term observed for it so far (ours or an adopter's).
func (n *Node) claimHomeLocked(observed uint64) {
	term := n.sch.WAL().Term()
	if observed > term {
		term = observed
	}
	term++
	n.leading[n.cfg.Facility] = term
	n.sch.WAL().SetTerm(term)
}

// Stop shuts the node down gracefully: heartbeats stop, the
// scheduler drains, replica files close, the cluster span ends.
func (n *Node) Stop() {
	n.shutdown(false)
}

// Kill simulates a gateway crash (kill -9) for failover drills: the
// scheduler abandons in-flight work without completion records and
// no goodbye is said to the peers — they must detect the silence.
func (n *Node) Kill() {
	n.shutdown(true)
}

func (n *Node) shutdown(kill bool) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stopCh)
	n.wg.Wait()
	if kill {
		n.sch.Kill()
	} else {
		n.sch.Stop()
	}
	n.store.Close()
	if kill {
		n.span.EndErr(fmt.Errorf("gateway killed"))
	} else {
		n.span.End()
	}
}

// Ready implements the gateway's readiness provider.
func (n *Node) Ready() sched.ReadyStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	term, leads := n.leading[n.cfg.Facility]
	role := "replica"
	if leads {
		role = "leader"
	}
	peers := make(map[string]bool, len(n.peers))
	for fac, ps := range n.peers {
		peers[fac] = ps.reachable
	}
	return sched.ReadyStatus{
		Ready:          leads,
		Role:           role,
		Facility:       n.cfg.Facility,
		Term:           term,
		ReplicationLag: n.rep.lag(),
		Peers:          peers,
	}
}

// updateGauges publishes the node's federation state as metric
// gauges; /v1/readyz and /v1/metrics read the same numbers.
func (n *Node) updateGauges() {
	st := n.Ready()
	var lead int64
	if st.Role == "leader" {
		lead = 1
	}
	var reach int64
	for _, ok := range st.Peers {
		if ok {
			reach++
		}
	}
	n.metrics.Gauge("cluster.leader").Set(lead)
	n.metrics.Gauge("cluster.term").Set(int64(st.Term))
	n.metrics.Gauge("cluster.replication.lag").Set(st.ReplicationLag)
	n.metrics.Gauge("cluster.peers.reachable").Set(reach)
	if sup := n.sch.Health(); sup != nil {
		n.metrics.Gauge("cluster.quarantined").Set(int64(len(sup.QuarantinedList())))
	}
}

// MirrorJournal replicates one workflow checkpoint line; LabRunners
// built by NewRunner install it so a peer can resume an adopted job
// from the exact task boundary the dead gateway reached.
func (n *Node) MirrorJournal(jobID string, line []byte) error {
	cp := append([]byte(nil), line...)
	return n.rep.mirrorJournal(jobID, cp)
}

// FacilityResources returns the lease resource names for a
// facility's instruments — facility-scoped so an adopted foreign
// job's gate never collides with a local job's in the lease table.
func FacilityResources(facility string) []string {
	return []string{
		facility + "/" + sched.ResourceSP200,
		facility + "/" + sched.ResourceJKem,
	}
}

// runnerFor returns (building on first use) the executor for one
// facility's instruments.
func (n *Node) runnerFor(facility string) sched.Runner {
	n.mu.Lock()
	if r, ok := n.runners[facility]; ok {
		n.mu.Unlock()
		return r
	}
	n.mu.Unlock()
	r := n.cfg.NewRunner(n, facility)
	n.mu.Lock()
	defer n.mu.Unlock()
	if prior, ok := n.runners[facility]; ok {
		return prior
	}
	n.runners[facility] = r
	return r
}

// dispatchRunner routes each dispatched job to its facility's
// executor (adopted foreign jobs drive the foreign facility's
// instruments through the connector NewRunner built for it).
type dispatchRunner struct{ n *Node }

// Run implements sched.Runner.
func (d *dispatchRunner) Run(ctx context.Context, job sched.Job, emit func(string, string)) (json.RawMessage, error) {
	fac := job.Spec.Facility
	if fac == "" {
		fac = d.n.cfg.Facility
	}
	return d.n.runnerFor(fac).Run(ctx, job, emit)
}

// snapshotPeers copies the peer list for lock-free iteration.
func (n *Node) snapshotPeers() []*peerState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*peerState, 0, len(n.peers))
	for _, ps := range n.peers {
		out = append(out, ps)
	}
	return out
}

// facilityOfJob extracts the admitting facility from a job ID
// ("facA-000007" → "facA").
func facilityOfJob(id string) string {
	if i := strings.LastIndexByte(id, '-'); i > 0 {
		return id[:i]
	}
	return ""
}

// installJournal writes an adopted job's replicated checkpoint lines
// into the scheduler's state dir, where the LabRunner's Restore path
// expects them.
func (n *Node) installJournal(jobID string, lines [][]byte) error {
	if len(lines) == 0 {
		return nil
	}
	var buf []byte
	for _, l := range lines {
		buf = append(buf, l...)
		if len(l) > 0 && l[len(l)-1] != '\n' {
			buf = append(buf, '\n')
		}
	}
	return os.WriteFile(filepath.Join(n.sch.Dir(), jobID+".journal"), buf, 0o644)
}
