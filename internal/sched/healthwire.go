package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ice/internal/sched/health"
)

// HealthConfig wires the instrument health supervisor into the
// scheduler: per-instrument circuit breakers, a background probe loop,
// quarantine-aware dispatch, checkpoint-requeue of jobs cut down by a
// quarantine, and deadline admission.
type HealthConfig struct {
	// Disabled turns the supervisor off entirely (no probes, no
	// quarantine, no requeue) — the pre-health scheduler behaviour.
	Disabled bool
	// ProbeInterval paces the background status probes (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe (default 500ms) — the deadline is
	// the hang detector.
	ProbeTimeout time.Duration
	// FailureThreshold consecutive instrument-class failures open a
	// breaker (default 3). Phase-budget wedges trip immediately.
	FailureThreshold int
	// OpenFor is the quarantine cool-down before a half-open recovery
	// probe (default 5s).
	OpenFor time.Duration
	// RetryBudget is how many extra attempts a checkpoint-requeued job
	// gets beyond its first (default 2). Exhausted budget fails the
	// job instead of requeueing forever against a flapping instrument.
	RetryBudget int
	// MinDeadline, when > 0, rejects DeadlineMS below it at admission
	// with 503 + Retry-After: a deadline no experiment can meet should
	// bounce at the door, not occupy a lease and then fail.
	MinDeadline time.Duration
	// Instruments maps a resource class to its equivalent instances
	// (default {"sp200": [sp200/ch1], "jkem": [jkem/u1]}). A job needs
	// one healthy instance of every class it uses; when a class offers
	// several, queued jobs route around a quarantined one.
	Instruments map[string][]string
	// ClassesFor, when set, narrows the resource classes a job needs
	// (default: every registered class — the single-workload
	// behaviour). A mixed facility maps cv/campaign/dag jobs to
	// {jkem, sp200} and scan jobs to {stem}, so an electrochemistry
	// tenant never leases the microscope and a quarantined column
	// never blocks a cv queue.
	ClassesFor func(JobSpec) []string
	// Applies, when set, scopes health gating to matching jobs. A
	// federated node sets it to its home facility so adopted foreign
	// jobs (driven against the peer's lab) are not gated by local
	// instrument health.
	Applies func(JobSpec) bool
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.ProbeInterval <= 0 {
		h.ProbeInterval = time.Second
	}
	if h.ProbeTimeout <= 0 {
		h.ProbeTimeout = 500 * time.Millisecond
	}
	if h.FailureThreshold <= 0 {
		h.FailureThreshold = 3
	}
	if h.OpenFor <= 0 {
		h.OpenFor = 5 * time.Second
	}
	if h.RetryBudget <= 0 {
		h.RetryBudget = 2
	}
	if len(h.Instruments) == 0 {
		h.Instruments = map[string][]string{
			"sp200": {ResourceSP200},
			"jkem":  {ResourceJKem},
		}
	}
	return h
}

// classes returns the resource classes in stable order.
func (h HealthConfig) classes() []string {
	out := make([]string, 0, len(h.Instruments))
	for c := range h.Instruments {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// initHealth builds the supervisor and wires it to the lease manager.
// Called from New; the supervisor starts with Start.
func (s *Scheduler) initHealth() {
	if s.cfg.Health.Disabled {
		return
	}
	s.cfg.Health = s.cfg.Health.withDefaults()
	h := s.cfg.Health
	s.health = health.NewSupervisor(health.Config{
		ProbeInterval: h.ProbeInterval,
		ProbeTimeout:  h.ProbeTimeout,
		Breaker: health.BreakerConfig{
			FailureThreshold: h.FailureThreshold,
			OpenFor:          h.OpenFor,
		},
		Metrics:      s.metrics,
		OnTransition: s.onHealthTransition,
		OnProbe:      s.onHealthProbe,
		Fence: func(ctx context.Context, resource string) {
			s.mu.Lock()
			fence := s.fence
			s.mu.Unlock()
			if fence != nil {
				fence(ctx, resource)
			}
		},
	})
	for _, class := range h.classes() {
		for _, res := range h.Instruments[class] {
			s.health.Register(res, nil)
		}
	}
	s.leases.SetQuarantined(s.health.Quarantined)
	s.leases.SetOnExpired(s.onLeaseExpired)
}

// Health returns the instrument health supervisor (nil when disabled).
func (s *Scheduler) Health() *health.Supervisor { return s.health }

// RegisterProber attaches a status-probe for one instrument; see
// health.Prober. Typically called by the gateway with probes built
// over the lab connector (LabProber) before Start.
func (s *Scheduler) RegisterProber(resource string, p health.Prober) {
	if s.health != nil {
		s.health.Register(resource, p)
	}
}

// SetFence installs the quarantine fence: called once (async) when a
// breaker opens, it aborts whatever the instrument is doing so a
// wedged acquisition cannot complete behind the scheduler's back and
// double-count against exactly-once accounting.
func (s *Scheduler) SetFence(fence func(ctx context.Context, resource string)) {
	s.mu.Lock()
	s.fence = fence
	s.mu.Unlock()
}

// healthApplies reports whether health gating governs this job.
func (s *Scheduler) healthApplies(spec JobSpec) bool {
	if s.health == nil {
		return false
	}
	if s.cfg.Health.Applies != nil && !s.cfg.Health.Applies(spec) {
		return false
	}
	return true
}

// assignInstruments picks one healthy instance per resource class the
// job needs (ClassesFor narrows; default every class). It returns
// ok=false with the blocking class name when some needed class has
// every instance quarantined.
func (s *Scheduler) assignInstruments(spec JobSpec) (resources []string, blockedClass string, ok bool) {
	h := s.cfg.Health
	classes := h.classes()
	if h.ClassesFor != nil {
		if narrowed := h.ClassesFor(spec); len(narrowed) > 0 {
			// Keep only classes the supervisor actually registered, in
			// stable order; unknown names are ignored rather than
			// wedging dispatch forever.
			keep := map[string]bool{}
			for _, c := range narrowed {
				keep[c] = true
			}
			var filtered []string
			for _, c := range classes {
				if keep[c] {
					filtered = append(filtered, c)
				}
			}
			classes = filtered
		}
	}
	for _, class := range classes {
		picked := ""
		for _, res := range h.Instruments[class] {
			if !s.health.Quarantined(res) {
				picked = res
				break
			}
		}
		if picked == "" {
			return nil, class, false
		}
		resources = append(resources, picked)
	}
	sort.Strings(resources)
	return resources, "", true
}

// onHealthTransition reacts to breaker state changes. Quarantine cuts
// down in-flight jobs on the instrument (checkpoint-requeue, not
// fail); recovery wakes lease waiters and dispatch-blocked workers.
// Runs outside supervisor locks.
func (s *Scheduler) onHealthTransition(t health.Transition) {
	switch t.To {
	case health.Open:
		s.healthEvent("instrument.quarantine", t.Resource, t.Cause)
		s.emitGlobal("quarantine", fmt.Sprintf("%s quarantined: %s", t.Resource, t.Cause))
		// Cut down in-flight jobs holding (or assigned) the sick
		// instrument: cancel with requeue intent so the terminal
		// handler re-enqueues from the checkpoint instead of failing.
		s.mu.Lock()
		type cut struct {
			id     string
			cancel context.CancelFunc
		}
		var cuts []cut
		for id, e := range s.jobs {
			if e.job.State != StateRunning || !containsResource(e.resources, t.Resource) {
				continue
			}
			e.requeueRequested = true
			e.span.Event("instrument.quarantine", "resource", t.Resource, "cause", t.Cause)
			if c := s.cancels[id]; c != nil {
				cuts = append(cuts, cut{id, c})
			}
		}
		s.mu.Unlock()
		for _, c := range cuts {
			s.emit(c.id, "quarantined", fmt.Sprintf("instrument %s quarantined mid-run: checkpoint-requeueing", t.Resource))
			c.cancel()
		}
	case health.Closed:
		s.healthEvent("instrument.recovered", t.Resource, t.Cause)
		s.emitGlobal("recovered", fmt.Sprintf("%s recovered: %s", t.Resource, t.Cause))
		// Mark recovery on the root spans of jobs waiting to retry on
		// this instrument, so the stitched trace tells the full story.
		s.mu.Lock()
		for _, e := range s.jobs {
			if e.job.State == StatePending && e.job.Resumed {
				e.span.Event("instrument.recovered", "resource", t.Resource)
			}
		}
		s.mu.Unlock()
		s.leases.WakeAll()
	}
}

// onHealthProbe records probe outcomes onto the health span — failures
// and recovery probes only, so a 1s probe cadence does not flood the
// trace store.
func (s *Scheduler) onHealthProbe(resource string, recovering bool, err error) {
	if err == nil && !recovering {
		return
	}
	s.mu.Lock()
	span := s.healthSpan
	s.mu.Unlock()
	if span == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		outcome = err.Error()
	}
	kind := "liveness"
	if recovering {
		kind = "recovery"
	}
	span.Event("instrument.probe", "resource", resource, "kind", kind, "outcome", outcome)
}

// healthEvent lands a quarantine/recovery event on the long-lived
// health span.
func (s *Scheduler) healthEvent(name, resource, cause string) {
	s.mu.Lock()
	span := s.healthSpan
	s.mu.Unlock()
	if span != nil {
		span.Event(name, "resource", resource, "cause", cause)
	}
}

// emitGlobal broadcasts a health event to every non-terminal job's
// stream, so SSE watchers see quarantines as they happen.
func (s *Scheduler) emitGlobal(eventType, message string) {
	s.mu.Lock()
	var ids []string
	for id, e := range s.jobs {
		if !e.job.State.Terminal() {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.emit(id, eventType, message)
	}
}

// onLeaseExpired feeds TTL revocations to the supervisor: a heartbeat
// that died while the lease was held is instrument-class evidence (the
// holder's process wedged against the instrument, or the instrument
// wedged the holder). Runs in its own goroutine (see Leases.SetOnExpired).
func (s *Scheduler) onLeaseExpired(resource, holder string) {
	if s.health == nil {
		return
	}
	s.health.ReportFailure(resource, fmt.Sprintf("lease expired while held by %s", holder))
}

// reportRunError classifies a failed attempt and feeds the supervisor.
// It returns the class used for the requeue decision; jobDeadlinePast
// tells the classifier whether a DeadlineExceeded belongs to the job
// (its own budget ran out — workload) or to a phase budget (hang
// evidence — instrument).
func (s *Scheduler) reportRunError(resources []string, err error, jobDeadlinePast bool) health.Class {
	cls := health.Classify(err)
	if errors.Is(err, context.DeadlineExceeded) && jobDeadlinePast {
		cls = health.ClassWorkload
	}
	if s.health == nil || cls != health.ClassInstrument {
		return cls
	}
	cause := err.Error()
	wedge := strings.Contains(cause, "exceeded its") // phase-budget text: hard evidence
	for _, res := range attributeResources(resources, cause) {
		if wedge {
			s.health.ReportWedge(res, cause)
		} else {
			s.health.ReportFailure(res, cause)
		}
	}
	return cls
}

// attributeResources matches an error's text against the assigned
// instruments: "sp200 acquire phase exceeded..." blames sp200/ch1, a
// J-Kem protocol error blames jkem/u1. Errors naming no instrument
// blame none — requeue still happens, but no breaker moves on
// ambiguous evidence.
func attributeResources(resources []string, cause string) []string {
	lc := strings.ToLower(cause)
	var out []string
	for _, res := range resources {
		class := resourceClass(res)
		if class != "" && strings.Contains(lc, strings.ToLower(class)) {
			out = append(out, res)
		}
	}
	return out
}

// containsResource reports whether rs includes res.
func containsResource(rs []string, res string) bool {
	for _, r := range rs {
		if r == res {
			return true
		}
	}
	return false
}

// jobDeadline computes the job's absolute end-to-end deadline: wall
// time from admission, so queue wait counts against the budget.
func jobDeadline(job *Job) (time.Time, bool) {
	if job.Spec.DeadlineMS <= 0 {
		return time.Time{}, false
	}
	base := time.Unix(0, job.SubmittedUnixNano)
	if job.SubmittedUnixNano == 0 {
		// A recovered job without a submission stamp restarts its budget.
		base = time.Now()
	}
	return base.Add(time.Duration(job.Spec.DeadlineMS) * time.Millisecond), true
}
