package sched

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/netsim"
	"ice/internal/telemetry"
)

// schedChaosSeed fixes the fault generator on a schedule under which
// 20% data-port loss provably interrupts the tenants' transfers (the
// loss-counter assertion below fails if a change shifts it away from
// faults entirely).
const schedChaosSeed = 11

// TestChaosTwoTenantsThroughGateway is the ISSUE's end-to-end chaos
// drill: two tenants submit fleet (campaign) jobs through icegated's
// HTTP API while the site hub loses 20% of data-port traffic, each
// loss tearing connections down mid-stream. Both jobs must complete
// exactly once — every round's acquisition started exactly once per
// the lab's audit journal, a digest-verified cv measurement riding the
// same lossy link — and no instrument lease may leak.
func TestChaosTwoTenantsThroughGateway(t *testing.T) {
	base := t.TempDir()
	labDir := filepath.Join(base, "lab")
	if err := os.MkdirAll(labDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d, err := core.Deploy(labDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.AttachLab(7, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Agent.EnableAudit(); err != nil {
		t.Fatal(err)
	}

	metrics := telemetry.NewCollector()
	d.Network.SetSeed(schedChaosSeed)
	d.Network.SetMetrics(metrics)
	if err := d.Network.SetHubFaults(netsim.HubSite, netsim.FaultSpec{
		Loss:  0.20,
		Ports: []int{netsim.PaperPorts.Data},
	}); err != nil {
		t.Fatal(err)
	}

	// Every job reads through a self-healing mount: small chunks
	// checkpoint verified progress often, so the lossy link interrupts
	// transfers mid-file rather than between files. Both workers mint
	// mounts concurrently, so the bookkeeping is locked.
	var mountsMu sync.Mutex
	var mounts []*datachan.ReliableMount
	connector := &DeploymentConnector{
		D:    d,
		Host: netsim.HostDGX,
		NewMount: func() (datachan.Share, error) {
			rm := datachan.NewReliableMount(func() (net.Conn, error) {
				return d.Network.Dial(netsim.HostDGX, d.DataAddr)
			})
			rm.MaxRetries = 50
			rm.Backoff = time.Millisecond
			rm.MaxBackoff = 10 * time.Millisecond
			rm.ChunkBytes = 2048
			rm.SetMetrics(metrics)
			mountsMu.Lock()
			mounts = append(mounts, rm)
			mountsMu.Unlock()
			return rm, nil
		},
	}

	s, err := New(Config{
		Dir:     filepath.Join(base, "state"),
		Workers: 2,
		Metrics: metrics,
		Tenants: map[string]TenantLimits{"acl": {Weight: 3}, "dgx": {Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRunner(&LabRunner{
		Connector:        connector,
		Leases:           s.Leases(),
		Dir:              s.Dir(),
		CampaignCVPoints: 300,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	srv := httptest.NewServer(NewGateway(s))
	defer srv.Close()

	submit := func(spec string) Job {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit rejected: %s\n%s", resp.Status, body)
		}
		var job Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		return job
	}

	// Each tenant's fleet: two cells, two fixed rounds per cell. The
	// concentrations differ per tenant so cross-wired measurements
	// would be visible in the peaks.
	aclJob := submit(`{"tenant": "acl", "kind": "campaign", "cells": [
		{"name": "acl-low",  "rounds": [{"concentration_mm": 1}, {"concentration_mm": 1}]},
		{"name": "acl-high", "rounds": [{"concentration_mm": 4}, {"concentration_mm": 4}]}
	]}`)
	dgxJob := submit(`{"tenant": "dgx", "kind": "campaign", "cells": [
		{"name": "dgx-a", "rounds": [{"concentration_mm": 2}, {"concentration_mm": 2}]},
		{"name": "dgx-b", "rounds": [{"concentration_mm": 2}, {"concentration_mm": 2}]}
	]}`)
	// A cv job rides the same lossy link; its result carries the
	// end-to-end digest the data channel must reproduce.
	cvJob := submit(`{"tenant": "acl", "kind": "cv", "points": 400}`)

	ctx := t.Context()
	results := make(map[string]Job)
	for _, job := range []Job{aclJob, dgxJob, cvJob} {
		final, err := s.WaitTerminal(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("job %s (%s) = %s under chaos: %s", final.ID, final.Tenant, final.State, final.Error)
		}
		if final.Attempts != 1 {
			t.Fatalf("job %s took %d attempts; chaos must heal inside the mount, not via re-dispatch", final.ID, final.Attempts)
		}
		results[final.ID] = final
	}

	// Both fleets complete: every cell ran both rounds, and the 4 mM
	// cell's peak is ≈ 4× the 1 mM cell's — retried transfers did not
	// duplicate or cross-wire any tenant's measurements.
	peaks := make(map[string]float64)
	for _, id := range []string{aclJob.ID, dgxJob.ID} {
		var res CampaignResult
		if err := json.Unmarshal(results[id].Result, &res); err != nil {
			t.Fatal(err)
		}
		if len(res.Cells) != 2 {
			t.Fatalf("job %s finished %d cells, want 2", id, len(res.Cells))
		}
		for _, cell := range res.Cells {
			if len(cell.Rounds) != 2 {
				t.Fatalf("cell %s ran %d rounds under chaos, want 2", cell.Name, len(cell.Rounds))
			}
			for _, r := range cell.Rounds {
				if r.PeakUA <= 0 {
					t.Fatalf("cell %s round %d has no peak", cell.Name, r.Round)
				}
			}
			peaks[cell.Name] = cell.Rounds[0].PeakUA
		}
	}
	if ratio := peaks["acl-high"] / peaks["acl-low"]; ratio < 3.2 || ratio > 4.8 {
		t.Errorf("4 mM / 1 mM peak ratio = %.2f under chaos, want ≈ 4", ratio)
	}

	// Digest verification across the lossy link.
	var cv CVResult
	if err := json.Unmarshal(results[cvJob.ID].Result, &cv); err != nil {
		t.Fatal(err)
	}
	verify := datachan.NewReliableMount(func() (net.Conn, error) {
		return d.Network.Dial(netsim.HostDGX, d.DataAddr)
	})
	verify.MaxRetries = 50
	verify.Backoff = time.Millisecond
	verify.MaxBackoff = 10 * time.Millisecond
	defer verify.Close()
	sum, _, err := verify.Checksum(cv.File)
	if err != nil {
		t.Fatal(err)
	}
	if sum != cv.SHA256 || cv.SHA256 == "" {
		t.Fatalf("cv digest mismatch under chaos: result %q, data channel %q", cv.SHA256, sum)
	}

	// Exactly-once at the instruments: the audit journal shows one
	// acquisition start per round plus one for the cv job, and one fill
	// per cv-style round — no duplicates despite the chaos.
	auditData, err := os.ReadFile(filepath.Join(labDir, core.AuditFileName))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := core.ParseAuditJournal(auditData)
	if err != nil {
		t.Fatal(err)
	}
	starts := 0
	for _, e := range entries {
		if e.Method == "StartChannelSP200" {
			starts++
		}
	}
	if wantStarts := 2*2*2 + 1; starts != wantStarts {
		t.Errorf("audit journal shows %d acquisition starts, want exactly %d", starts, wantStarts)
	}

	// The chaos schedule must actually have engaged, and every healed
	// transfer was digest-checked with zero mismatches.
	if v := metrics.CounterValue("netsim.faults.loss"); v == 0 {
		t.Error("no losses injected — chaos schedule did not engage")
	}
	healed := int64(0)
	for _, rm := range mounts {
		stats := rm.Stats()
		healed += stats.Redials + stats.Resumes
		if stats.ChecksumFailures != 0 {
			t.Errorf("mount saw %d checksum failures under pure loss", stats.ChecksumFailures)
		}
	}
	if healed == 0 {
		t.Error("jobs survived without any redials or resumes — faults never hit the data path")
	}

	if active := s.Leases().Active(); len(active) != 0 {
		t.Fatalf("leaked leases after chaos run: %+v", active)
	}
}
