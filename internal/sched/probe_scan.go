package sched

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"ice/internal/core"
	"ice/internal/datachan"
	"ice/internal/microscope"
	"ice/internal/sched/health"
	"ice/internal/telemetry"
)

// ScanProber is the microscope's LabProber: cheap StatusScan reads
// over a shared lazily-dialled session, an AbortScan quarantine fence,
// and a telemetry source. Mirrors LabProber's session lifecycle —
// including dropping the session after transport-class failures — but
// heartbeats via StatusScan instead of JKemStatus, since the scan
// station's daemon exports no echem objects.
type ScanProber struct {
	// Connector opens the probe session (same connector the runner uses).
	Connector ScanConnector

	mu      sync.Mutex
	session *core.RemoteSession
	client  *microscope.Client
	mount   datachan.Share
	// probes / failures count outcomes for the telemetry source.
	probes, failures int64
}

// acquire returns the shared probe client, dialling on first use.
func (p *ScanProber) acquire() (*microscope.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.client != nil {
		return p.client, nil
	}
	session, mount, object, err := p.Connector.ConnectScan()
	if err != nil {
		return nil, fmt.Errorf("scan probe connect: %w", err)
	}
	caller, err := session.Object(object, microscope.NonIdempotentScanMethods...)
	if err != nil {
		session.Close()
		mount.Close()
		return nil, fmt.Errorf("scan probe object: %w", err)
	}
	client := microscope.NewClient(caller)
	// The default watchdog heartbeat pings JKemStatus, which this
	// station does not export — point it at the scan status instead.
	session.SetHeartbeat(func() error {
		_, err := client.Status(context.Background())
		return err
	})
	session.StartWatchdog(2*time.Second, 3)
	p.session, p.client, p.mount = session, client, mount
	return client, nil
}

// dropSession tears the shared session down so the next probe redials.
func (p *ScanProber) dropSession() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closeLocked()
}

func (p *ScanProber) closeLocked() {
	if p.session != nil {
		p.session.Close()
		p.session = nil
		p.client = nil
	}
	if p.mount != nil {
		p.mount.Close()
		p.mount = nil
	}
}

// Close releases the probe session.
func (p *ScanProber) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closeLocked()
}

// Prober builds the health.Prober for the scan instrument. Like the
// potentiostat's, a half-open recovery probe additionally requires the
// column to be idle: while quarantined no legitimate holder existed,
// so a busy scanner means the wedged acquisition is still draining.
func (p *ScanProber) Prober() health.Prober {
	return func(ctx context.Context, recovering bool) error {
		client, err := p.acquire()
		if err != nil {
			p.count(err)
			return err
		}
		status, err := client.Status(ctx)
		if err == nil && recovering && !strings.Contains(status, "busy=0") {
			err = fmt.Errorf("stem recovery probe: scanner still busy (%s)", status)
		}
		p.afterProbe(err)
		return err
	}
}

// afterProbe counts the outcome and drops the shared session on
// transport-class failures so the next probe redials fresh.
func (p *ScanProber) afterProbe(err error) {
	p.count(err)
	if err != nil && health.Classify(err) == health.ClassTransport {
		p.dropSession()
	}
}

func (p *ScanProber) count(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probes++
	if err != nil {
		p.failures++
	}
}

// Fence is the scan quarantine fence: abort any in-flight acquisition
// so a wedged raster terminates as an explicit aborted partial rather
// than completing behind the scheduler's back after requeue. Abort is
// tolerated when nothing is running.
func (p *ScanProber) Fence(ctx context.Context, resource string) {
	if resourceClass(resource) != "stem" {
		return
	}
	client, err := p.acquire()
	if err != nil {
		return
	}
	p.mu.Lock()
	session := p.session
	p.mu.Unlock()
	if session != nil {
		session.BindCallContext(ctx)
		defer session.BindCallContext(context.Background())
	}
	if _, err := client.Abort(ctx); err != nil {
		p.dropSession()
	}
}

// HealthSource exposes scan-probe traffic — and, when the probe
// session is open, its watchdog's liveness series — to /v1/metrics.
func (p *ScanProber) HealthSource() telemetry.Source {
	return func() map[string]int64 {
		p.mu.Lock()
		out := map[string]int64{
			"scanprobe.total":     p.probes,
			"scanprobe.failures":  p.failures,
			"scanprobe.connected": 0,
		}
		session := p.session
		p.mu.Unlock()
		if session != nil {
			out["scanprobe.connected"] = 1
			for k, v := range session.HealthSource("scansession.")() {
				out[k] = v
			}
		}
		return out
	}
}
