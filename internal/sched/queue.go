package sched

import (
	"sort"
	"sync"
)

// fairQueue is a bounded multi-tenant job queue with stride-scheduled
// fair sharing: each tenant carries a virtual-time "pass" that advances
// by 1/weight per dispatched job, and Pop always serves the active
// tenant with the smallest pass. A tenant submitting 10× more jobs
// therefore cannot starve a light tenant — the light tenant's pass
// stays behind and its jobs interleave at its weighted share. Within a
// tenant, higher Priority pops first, FIFO among equals.
type fairQueue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	capacity int
	size     int
	seq      int64
	closed   bool
	tenants  map[string]*tenantQueue
}

// tenantQueue is one tenant's backlog plus its stride-scheduling state.
type tenantQueue struct {
	weight float64
	// pass is the tenant's virtual time; the active tenant with the
	// smallest pass is served next.
	pass float64
	jobs []queued
}

// queued is one backlog entry.
type queued struct {
	job *Job
	seq int64
}

func newFairQueue(capacity int) *fairQueue {
	if capacity <= 0 {
		capacity = 64
	}
	q := &fairQueue{capacity: capacity, tenants: make(map[string]*tenantQueue)}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Len returns the number of queued jobs.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Full reports whether the queue is at capacity.
func (q *fairQueue) Full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size >= q.capacity
}

// Push enqueues a job for its tenant at the given fair-share weight.
// It reports false when the queue is at capacity — the caller turns
// that into a retry-after rejection rather than blocking admission.
func (q *fairQueue) Push(job *Job, weight float64) bool {
	if weight <= 0 {
		weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size >= q.capacity {
		return false
	}
	tq, ok := q.tenants[job.Tenant]
	if !ok {
		tq = &tenantQueue{}
		q.tenants[job.Tenant] = tq
	}
	tq.weight = weight
	if len(tq.jobs) == 0 {
		// A tenant re-entering after idling resumes at the current
		// virtual time instead of spending banked credit in a burst.
		tq.pass = maxf(tq.pass, q.minActivePassLocked())
	}
	q.seq++
	entry := queued{job: job, seq: q.seq}
	// Insert in (priority desc, seq asc) order; bursts are small, so a
	// linear scan beats a heap in clarity and allocation.
	i := sort.Search(len(tq.jobs), func(i int) bool {
		return tq.jobs[i].job.Spec.Priority < job.Spec.Priority
	})
	tq.jobs = append(tq.jobs, queued{})
	copy(tq.jobs[i+1:], tq.jobs[i:])
	tq.jobs[i] = entry
	q.size++
	q.notEmpty.Signal()
	return true
}

// Pop blocks until a job is available or the queue is closed, then
// dequeues the fair-share winner. After Close, Pop returns false even
// with a backlog — an un-dispatched job stays PENDING in the WAL and
// re-enqueues on the next start instead of racing a shutdown.
func (q *fairQueue) Pop() (job *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.closed || q.size == 0 {
		return nil, false
	}
	var winner *tenantQueue
	for _, tq := range q.tenants {
		if len(tq.jobs) == 0 {
			continue
		}
		if winner == nil || tq.pass < winner.pass {
			winner = tq
		}
	}
	entry := winner.jobs[0]
	copy(winner.jobs, winner.jobs[1:])
	winner.jobs[len(winner.jobs)-1] = queued{}
	winner.jobs = winner.jobs[:len(winner.jobs)-1]
	winner.pass += 1 / winner.weight
	q.size--
	return entry.job, true
}

// Remove drops a queued job by ID (cancellation before dispatch). It
// reports whether the job was found in the backlog.
func (q *fairQueue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, tq := range q.tenants {
		for i, entry := range tq.jobs {
			if entry.job.ID == id {
				copy(tq.jobs[i:], tq.jobs[i+1:])
				tq.jobs[len(tq.jobs)-1] = queued{}
				tq.jobs = tq.jobs[:len(tq.jobs)-1]
				q.size--
				return true
			}
		}
	}
	return false
}

// Close wakes all blocked Pops; subsequent Pushes are refused.
func (q *fairQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
}

// minActivePassLocked returns the smallest pass among tenants with a
// backlog, or 0 when none are active.
func (q *fairQueue) minActivePassLocked() float64 {
	min, found := 0.0, false
	for _, tq := range q.tenants {
		if len(tq.jobs) == 0 {
			continue
		}
		if !found || tq.pass < min {
			min, found = tq.pass, true
		}
	}
	return min
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
