package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ice/internal/telemetry"
)

// fakeClock drives the lease manager's notion of time so expiry tests
// need no sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLeases(ttl time.Duration) (*Leases, *fakeClock) {
	m := NewLeases(ttl)
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	m.now = clock.now
	return m, clock
}

func TestLeaseExclusive(t *testing.T) {
	m, _ := newTestLeases(time.Minute)
	l, err := m.TryAcquire(ResourceSP200, "job-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TryAcquire(ResourceSP200, "job-b"); err == nil {
		t.Fatal("second acquisition of a held lease succeeded")
	}
	// A different resource is independent.
	if _, err := m.TryAcquire(ResourceJKem, "job-b"); err != nil {
		t.Fatal(err)
	}
	l.Release()
	if _, err := m.TryAcquire(ResourceSP200, "job-b"); err != nil {
		t.Fatalf("acquisition after release: %v", err)
	}
}

// TestLeaseExpiryWithoutHeartbeat is the ISSUE's lease property: a
// holder whose heartbeat stops loses the instrument after the TTL, the
// next tenant acquires it, and the stale handle can neither renew nor
// release the new grant.
func TestLeaseExpiryWithoutHeartbeat(t *testing.T) {
	metrics := telemetry.NewCollector()
	m, clock := newTestLeases(time.Minute)
	m.SetMetrics(metrics)

	stale, err := m.TryAcquire(ResourceSP200, "crashed-worker")
	if err != nil {
		t.Fatal(err)
	}
	// Within the TTL the lease holds.
	clock.advance(59 * time.Second)
	if _, err := m.TryAcquire(ResourceSP200, "next"); err == nil {
		t.Fatal("lease fell before its TTL")
	}
	// Past the TTL with no renewal the lease is revoked.
	clock.advance(2 * time.Second)
	fresh, err := m.TryAcquire(ResourceSP200, "next")
	if err != nil {
		t.Fatalf("expired lease not revoked: %v", err)
	}
	if !errors.Is(stale.Renew(), ErrLeaseRevoked) {
		t.Fatal("stale handle renewed after revocation")
	}
	stale.Release() // must not disturb the fresh grant
	if err := fresh.Renew(); err != nil {
		t.Fatalf("fresh grant lost to a stale release: %v", err)
	}
	if n := metrics.CounterValue("sched.leases.expired"); n != 1 {
		t.Fatalf("expired counter = %d, want 1", n)
	}
	active := m.Active()
	if len(active) != 1 || active[0].Holder != "next" {
		t.Fatalf("active leases = %+v, want one held by next", active)
	}
}

func TestLeaseRenewExtends(t *testing.T) {
	m, clock := newTestLeases(time.Minute)
	l, _ := m.TryAcquire(ResourceSP200, "steady")
	for i := 0; i < 5; i++ {
		clock.advance(45 * time.Second)
		if err := l.Renew(); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	// 3m45s of wall time, renewed throughout: still held.
	if _, err := m.TryAcquire(ResourceSP200, "other"); err == nil {
		t.Fatal("renewed lease was revoked")
	}
}

// TestLeaseAcquireWaitsOutExpiredIncumbent exercises the blocking
// path against real time: Acquire parks on the incumbent's TTL timer
// and wins the lease without anyone calling Release.
func TestLeaseAcquireWaitsOutExpiredIncumbent(t *testing.T) {
	m := NewLeases(50 * time.Millisecond)
	if _, err := m.TryAcquire(ResourceSP200, "crashed"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	l, err := m.Acquire(ctx, ResourceSP200, "patient")
	if err != nil {
		t.Fatalf("acquire after incumbent expiry: %v", err)
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Fatalf("acquired after %v, before the incumbent's TTL could lapse", waited)
	}
	l.Release()
}

func TestLeaseAcquireHonorsContext(t *testing.T) {
	m := NewLeases(time.Minute)
	if _, err := m.TryAcquire(ResourceSP200, "holder"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.Acquire(ctx, ResourceSP200, "blocked"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestInstrumentGateHeartbeatKeepsLease drives the sync.Locker adapter
// with a TTL much shorter than the hold time: the background heartbeat
// must keep the leases alive until Unlock, and Unlock must drain them.
func TestInstrumentGateHeartbeatKeepsLease(t *testing.T) {
	m := NewLeases(60 * time.Millisecond)
	var events []string
	var mu sync.Mutex
	g := &InstrumentGate{M: m, Holder: "j-000001", OnEvent: func(msg string) {
		mu.Lock()
		events = append(events, msg)
		mu.Unlock()
	}}
	g.Lock()
	time.Sleep(200 * time.Millisecond) // > 3 TTLs
	active := m.Active()
	if len(active) != 2 {
		t.Fatalf("leases dropped while heartbeating: %+v", active)
	}
	for _, l := range active {
		if l.Holder != "j-000001" {
			t.Fatalf("unexpected holder %q", l.Holder)
		}
	}
	g.Unlock()
	if active := m.Active(); len(active) != 0 {
		t.Fatalf("leases leaked after Unlock: %+v", active)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 4 { // acquired ×2, released ×2
		t.Fatalf("gate events = %v, want 2 acquisitions and 2 releases", events)
	}
}

// TestInstrumentGateSerialisesTenants: two gates contending for the
// default resource pair must never overlap their critical sections.
func TestInstrumentGateSerialisesTenants(t *testing.T) {
	m := NewLeases(time.Minute)
	var inside, maxInside int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		g := &InstrumentGate{M: m, Holder: "tenant"}
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				g.Lock()
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				inside--
				mu.Unlock()
				g.Unlock()
			}
		}()
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("%d holders inside the instrument section at once", maxInside)
	}
	if active := m.Active(); len(active) != 0 {
		t.Fatalf("leases leaked: %+v", active)
	}
}
