package backoff

import (
	"testing"
	"time"
)

func TestJitterBounds(t *testing.T) {
	var p Policy
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := p.Jitter(d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("jitter %v outside [%v, %v)", j, d/2, d+d/2)
		}
	}
	if p.Jitter(0) != 0 {
		t.Error("jitter of 0 should be 0")
	}
	if p.Jitter(1) != 1 {
		t.Error("jitter of 1ns should be 1ns")
	}
}

func TestSequenceDoublesAndCaps(t *testing.T) {
	p := Policy{Initial: 10 * time.Millisecond, Max: 35 * time.Millisecond}
	s := p.Start()
	// Raw (pre-jitter) schedule: 10, 20, 35, 35, ... Jitter keeps each
	// delay within [d/2, 3d/2).
	for i, want := range []time.Duration{10, 20, 35, 35, 35} {
		want *= time.Millisecond
		got := s.Next()
		if got < want/2 || got >= want+want/2 {
			t.Fatalf("delay %d = %v, want within [%v, %v)", i, got, want/2, want+want/2)
		}
	}
}

func TestSequenceDefaults(t *testing.T) {
	var p Policy
	s := p.Start()
	if s.next != DefaultInitial || s.max != DefaultMax {
		t.Errorf("defaults not applied: next=%v max=%v", s.next, s.max)
	}
}

func TestSleepInterruptible(t *testing.T) {
	p := Policy{Initial: 10 * time.Second, Max: 10 * time.Second}
	s := p.Start()
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	if s.Sleep(cancel) {
		t.Error("Sleep completed despite closed cancel channel")
	}
	if time.Since(start) > time.Second {
		t.Error("Sleep did not abort promptly")
	}
}

func TestSleepCompletes(t *testing.T) {
	p := Policy{Initial: time.Millisecond, Max: time.Millisecond}
	s := p.Start()
	if !s.Sleep(nil, nil) {
		t.Error("Sleep with nil cancels did not complete")
	}
}
