// Package backoff implements the jittered, capped exponential retry
// delay policy shared by the reliability layers of both ICE channels:
// the control channel's reconnecting Pyro proxy and the data channel's
// reconnecting mount. Jitter spreads a fleet of clients recovering
// from the same facility outage over [d/2, 3d/2) so they do not redial
// the control agent in lockstep.
package backoff

import (
	"crypto/rand"
	"math/big"
	"sync"
	"time"
)

// Defaults applied when a Policy field is zero.
const (
	// DefaultInitial is the first retry delay.
	DefaultInitial = 50 * time.Millisecond
	// DefaultMax caps the exponential growth.
	DefaultMax = 2 * time.Second
)

// Policy describes one exponential-backoff schedule. The zero value is
// usable and applies the defaults.
type Policy struct {
	// Initial is the first delay, doubled per attempt.
	Initial time.Duration
	// Max caps the doubling.
	Max time.Duration

	mu       sync.Mutex
	rngState uint64
}

// Jitter spreads d uniformly over [d/2, 3d/2) with a cheap xorshift
// generator seeded once from crypto/rand.
func (p *Policy) Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	p.mu.Lock()
	if p.rngState == 0 {
		seed, err := rand.Int(rand.Reader, big.NewInt(1<<62))
		if err == nil && seed.Int64() != 0 {
			p.rngState = uint64(seed.Int64())
		} else {
			p.rngState = uint64(time.Now().UnixNano()) | 1
		}
	}
	p.rngState ^= p.rngState << 13
	p.rngState ^= p.rngState >> 7
	p.rngState ^= p.rngState << 17
	u := p.rngState
	p.mu.Unlock()
	if int64(d) <= 1 {
		return d
	}
	return d/2 + time.Duration(u%uint64(d))
}

// Start begins one retry sequence under the policy.
func (p *Policy) Start() *Sequence { return p.StartWith(p.Initial, p.Max) }

// StartWith begins a retry sequence with explicit bounds, overriding
// the policy's fields (zero values fall back to the defaults). It lets
// concurrent retry loops share one jitter generator without mutating
// shared configuration.
func (p *Policy) StartWith(initial, max time.Duration) *Sequence {
	if initial <= 0 {
		initial = DefaultInitial
	}
	if max <= 0 {
		max = DefaultMax
	}
	return &Sequence{policy: p, next: initial, max: max}
}

// Sequence yields the successive delays of one retry loop.
type Sequence struct {
	policy *Policy
	next   time.Duration
	max    time.Duration
}

// Next returns the jittered delay for the coming attempt and advances
// the schedule (doubling, capped at the policy max).
func (s *Sequence) Next() time.Duration {
	d := s.policy.Jitter(s.next)
	s.next *= 2
	if s.next > s.max {
		s.next = s.max
	}
	return d
}

// Sleep blocks for the sequence's next delay, aborting early if either
// channel closes first. It returns false when interrupted. Nil
// channels never fire, so callers without a cancel signal pass nil.
func (s *Sequence) Sleep(cancel ...<-chan struct{}) bool {
	timer := time.NewTimer(s.Next())
	defer timer.Stop()
	var a, b <-chan struct{}
	if len(cancel) > 0 {
		a = cancel[0]
	}
	if len(cancel) > 1 {
		b = cancel[1]
	}
	select {
	case <-timer.C:
		return true
	case <-a:
		return false
	case <-b:
		return false
	}
}
