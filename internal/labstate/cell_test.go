package labstate

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"ice/internal/echem"
	"ice/internal/units"
)

func TestAddAndWithdraw(t *testing.T) {
	c := DefaultCell()
	sol := echem.FerroceneSolution()
	if err := c.AddSolution(sol, units.Milliliters(8)); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if math.Abs(s.Volume.Milliliters()-8) > 1e-9 {
		t.Errorf("volume = %v, want 8 mL", s.Volume)
	}
	if !s.HasSolution || s.Solution.Analyte.Name != sol.Analyte.Name {
		t.Errorf("solution not recorded: %+v", s.Solution)
	}
	got, err := c.Withdraw(units.Milliliters(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Analyte.Name != sol.Analyte.Name {
		t.Errorf("withdrawn solution = %v", got)
	}
	if v := c.Snapshot().Volume.Milliliters(); math.Abs(v-5) > 1e-9 {
		t.Errorf("volume after withdraw = %v, want 5", v)
	}
}

func TestOverflowRejected(t *testing.T) {
	c := NewCell(units.Milliliters(10), units.Milliliters(2))
	if err := c.AddSolution(echem.FerroceneSolution(), units.Milliliters(11)); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow add = %v, want ErrOverflow", err)
	}
	// Volume unchanged after rejected add.
	if v := c.Snapshot().Volume; v != 0 {
		t.Errorf("volume after rejected add = %v, want 0", v)
	}
}

func TestUnderflowAndEmpty(t *testing.T) {
	c := DefaultCell()
	if _, err := c.Withdraw(units.Milliliters(1)); !errors.Is(err, ErrEmpty) {
		t.Errorf("withdraw from empty = %v, want ErrEmpty", err)
	}
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(2))
	if _, err := c.Withdraw(units.Milliliters(5)); !errors.Is(err, ErrUnderflow) {
		t.Errorf("over-withdraw = %v, want ErrUnderflow", err)
	}
}

func TestNegativeVolumesRejected(t *testing.T) {
	c := DefaultCell()
	if err := c.AddSolution(echem.FerroceneSolution(), units.Milliliters(-1)); err == nil {
		t.Error("negative add accepted")
	}
	if err := c.AddSolvent("acetonitrile", units.Milliliters(-1)); err == nil {
		t.Error("negative solvent add accepted")
	}
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(5))
	if _, err := c.Withdraw(units.Milliliters(-1)); err == nil {
		t.Error("negative withdraw accepted")
	}
}

func TestWithdrawToEmptyClearsSolution(t *testing.T) {
	c := DefaultCell()
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(2))
	if _, err := c.Withdraw(units.Milliliters(2)); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.HasSolution || s.Volume != 0 {
		t.Errorf("cell not empty after full withdraw: %+v", s)
	}
}

func TestDrain(t *testing.T) {
	c := DefaultCell()
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(7))
	c.Drain()
	s := c.Snapshot()
	if s.Volume != 0 || s.HasSolution {
		t.Errorf("drain left %+v", s)
	}
}

func TestSolventWashClearsAnalyte(t *testing.T) {
	c := DefaultCell()
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(3))
	c.Drain()
	if err := c.AddSolvent("acetonitrile", units.Milliliters(5)); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.HasSolution {
		t.Error("solvent wash should not count as analyte solution")
	}
	if s.Solution.Solvent != "acetonitrile" {
		t.Errorf("solvent = %q", s.Solution.Solvent)
	}
}

func TestFilledThreshold(t *testing.T) {
	c := NewCell(units.Milliliters(20), units.Milliliters(5))
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(4.9))
	if c.Filled() {
		t.Error("4.9 mL reported filled with 5 mL minimum")
	}
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(0.2))
	if !c.Filled() {
		t.Error("5.1 mL reported not filled")
	}
}

func TestGasTemperatureStirring(t *testing.T) {
	c := DefaultCell()
	c.SetGasFlow("argon", units.SCCM(20))
	c.SetTemperature(units.Celsius(30))
	c.SetStirring(true)
	s := c.Snapshot()
	if s.Gas != "argon" || s.GasFlow.SCCM() != 20 {
		t.Errorf("gas state = %q %v", s.Gas, s.GasFlow)
	}
	if math.Abs(s.Temperature.Celsius()-30) > 1e-9 {
		t.Errorf("temperature = %v", s.Temperature)
	}
	if !s.Stirring {
		t.Error("stirring not set")
	}
}

func TestMeasurementConfigNormal(t *testing.T) {
	c := DefaultCell()
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(8))
	cfg := c.MeasurementConfig(units.SquareCentimeters(0.07), 7)
	if cfg.Fault != echem.FaultNone {
		t.Errorf("fault = %v, want none", cfg.Fault)
	}
	if cfg.Solution.Analyte.Name != "ferrocene/ferrocenium" {
		t.Errorf("solution = %v", cfg.Solution)
	}
	if cfg.NoiseSeed != 7 {
		t.Errorf("seed = %d", cfg.NoiseSeed)
	}
}

func TestMeasurementConfigLowVolume(t *testing.T) {
	c := DefaultCell()
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(2))
	cfg := c.MeasurementConfig(units.SquareCentimeters(0.07), 1)
	if cfg.Fault != echem.FaultLowVolume {
		t.Errorf("fault = %v, want low-volume", cfg.Fault)
	}
}

func TestMeasurementConfigDisconnected(t *testing.T) {
	c := DefaultCell()
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(8))
	c.SetElectrodesConnected(false)
	cfg := c.MeasurementConfig(units.SquareCentimeters(0.07), 1)
	if cfg.Fault != echem.FaultDisconnectedElectrode {
		t.Errorf("fault = %v, want disconnected", cfg.Fault)
	}
}

func TestMeasurementConfigEmptyCell(t *testing.T) {
	c := DefaultCell()
	cfg := c.MeasurementConfig(units.SquareCentimeters(0.07), 1)
	if cfg.Fault != echem.FaultDisconnectedElectrode {
		t.Errorf("empty cell fault = %v, want open-circuit behaviour", cfg.Fault)
	}
	// Solvent-only cell is also featureless.
	c.AddSolvent("acetonitrile", units.Milliliters(8))
	cfg = c.MeasurementConfig(units.SquareCentimeters(0.07), 1)
	if cfg.Fault != echem.FaultDisconnectedElectrode {
		t.Errorf("solvent-only fault = %v", cfg.Fault)
	}
}

func TestCellStringVariants(t *testing.T) {
	c := DefaultCell()
	if s := c.String(); s == "" {
		t.Error("empty-cell String is empty")
	}
	c.AddSolution(echem.FerroceneSolution(), units.Milliliters(8))
	if s := c.String(); s == "" {
		t.Error("filled-cell String is empty")
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	c := NewCell(units.Liters(1), units.Milliliters(5))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.AddSolution(echem.FerroceneSolution(), units.Microliters(10))
				c.Withdraw(units.Microliters(10))
				c.Snapshot()
				c.Filled()
			}
		}()
	}
	wg.Wait()
}

// Property: volume accounting balances — after any sequence of valid
// adds and withdraws, volume equals the running sum.
func TestVolumeAccountingProperty(t *testing.T) {
	f := func(ops []int8) bool {
		c := NewCell(units.Milliliters(100), units.Milliliters(5))
		want := 0.0
		for _, op := range ops {
			ml := float64(op%10) / 2 // -4.5..4.5 mL
			if ml >= 0 {
				if err := c.AddSolution(echem.FerroceneSolution(), units.Milliliters(ml)); err == nil {
					want += ml
				}
			} else {
				if _, err := c.Withdraw(units.Milliliters(-ml)); err == nil {
					want += ml
				}
			}
			if want < 1e-9 && c.Snapshot().Volume.Liters() < 1e-12 {
				want = math.Max(want, 0)
			}
		}
		got := c.Snapshot().Volume.Milliliters()
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: volume never goes negative or above capacity.
func TestVolumeBoundsProperty(t *testing.T) {
	f := func(ops []int8) bool {
		c := NewCell(units.Milliliters(50), units.Milliliters(5))
		for _, op := range ops {
			ml := float64(op) / 4
			if ml >= 0 {
				c.AddSolution(echem.FerroceneSolution(), units.Milliliters(ml))
			} else {
				c.Withdraw(units.Milliliters(-ml))
			}
			v := c.Snapshot().Volume.Milliliters()
			if v < 0 || v > 50+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
