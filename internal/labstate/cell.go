// Package labstate models the shared physical state of the
// electrochemistry workstation: the electrochemical cell with its
// liquid contents, gas headspace, temperature and electrode
// connections. The J-Kem instrument models mutate this state (filling,
// withdrawing, purging, heating) and the potentiostat reads it to
// derive the cell configuration its physics simulation runs against —
// so an under-filled cell really does produce the distorted
// voltammograms the paper's ML method flags.
package labstate

import (
	"errors"
	"fmt"
	"sync"

	"ice/internal/echem"
	"ice/internal/units"
)

// Errors returned by cell operations.
var (
	// ErrOverflow is returned when adding liquid beyond capacity.
	ErrOverflow = errors.New("labstate: cell overflow")
	// ErrUnderflow is returned when withdrawing more than is present.
	ErrUnderflow = errors.New("labstate: not enough liquid in cell")
	// ErrEmpty is returned when an operation needs liquid but the cell
	// is empty.
	ErrEmpty = errors.New("labstate: cell is empty")
)

// State is an immutable snapshot of the cell.
type State struct {
	// Volume currently in the cell.
	Volume units.Volume
	// Capacity of the cell body.
	Capacity units.Volume
	// Solution describes the liquid; zero-value when the cell is empty
	// or holds pure solvent after a wash.
	Solution echem.Solution
	// HasSolution reports whether analyte solution is loaded.
	HasSolution bool
	// GasFlow is the current purge rate.
	GasFlow units.GasFlow
	// Gas names the purge gas.
	Gas string
	// Temperature of the cell.
	Temperature units.Temperature
	// ElectrodesConnected reports whether the three-electrode stack is
	// wired to the potentiostat leads.
	ElectrodesConnected bool
	// Stirring reports whether the stir bar is on.
	Stirring bool
}

// Cell is the electrochemical cell. It is safe for concurrent use —
// instrument servers run in separate goroutines.
type Cell struct {
	mu    sync.Mutex
	state State
	// minWorking is the volume below which the working electrode is
	// only partially immersed.
	minWorking units.Volume
}

// NewCell returns a cell with the given capacity and minimum working
// volume (the immersion threshold for the electrode stack).
func NewCell(capacity, minWorking units.Volume) *Cell {
	return &Cell{
		state: State{
			Capacity:            capacity,
			Temperature:         units.Celsius(25),
			Gas:                 "argon",
			ElectrodesConnected: true,
		},
		minWorking: minWorking,
	}
}

// DefaultCell returns the bench cell used in the demonstrations:
// 20 mL capacity, 5 mL minimum working volume.
func DefaultCell() *Cell {
	return NewCell(units.Milliliters(20), units.Milliliters(5))
}

// Snapshot returns the current state.
func (c *Cell) Snapshot() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// AddSolution dispenses vol of sol into the cell. Mixing rules are
// simplified: the incoming solution replaces the identity of the cell
// contents (the workflows always wash between solutions).
func (c *Cell) AddSolution(sol echem.Solution, vol units.Volume) error {
	if vol.Liters() < 0 {
		return fmt.Errorf("labstate: negative volume %v", vol)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.state.Volume.Liters() + vol.Liters()
	if next > c.state.Capacity.Liters()+1e-12 {
		return fmt.Errorf("%w: %v + %v exceeds %v", ErrOverflow, c.state.Volume, vol, c.state.Capacity)
	}
	c.state.Volume = units.Liters(next)
	c.state.Solution = sol
	c.state.HasSolution = true
	return nil
}

// AddSolvent dispenses pure solvent (wash liquid): it dilutes the cell
// to effectively no analyte.
func (c *Cell) AddSolvent(name string, vol units.Volume) error {
	if vol.Liters() < 0 {
		return fmt.Errorf("labstate: negative volume %v", vol)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.state.Volume.Liters() + vol.Liters()
	if next > c.state.Capacity.Liters()+1e-12 {
		return fmt.Errorf("%w: %v + %v exceeds %v", ErrOverflow, c.state.Volume, vol, c.state.Capacity)
	}
	c.state.Volume = units.Liters(next)
	c.state.Solution = echem.Solution{Solvent: name}
	c.state.HasSolution = false
	return nil
}

// Withdraw removes vol from the cell (to a syringe or fraction vial)
// and returns the solution it contained.
func (c *Cell) Withdraw(vol units.Volume) (echem.Solution, error) {
	if vol.Liters() < 0 {
		return echem.Solution{}, fmt.Errorf("labstate: negative volume %v", vol)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state.Volume.Liters() <= 0 {
		return echem.Solution{}, ErrEmpty
	}
	if vol.Liters() > c.state.Volume.Liters()+1e-12 {
		return echem.Solution{}, fmt.Errorf("%w: have %v, want %v", ErrUnderflow, c.state.Volume, vol)
	}
	c.state.Volume = units.Liters(c.state.Volume.Liters() - vol.Liters())
	sol := c.state.Solution
	if c.state.Volume.Liters() < 1e-12 {
		c.state.Volume = 0
		c.state.HasSolution = false
		c.state.Solution = echem.Solution{}
	}
	return sol, nil
}

// Drain empties the cell completely (waste line).
func (c *Cell) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state.Volume = 0
	c.state.HasSolution = false
	c.state.Solution = echem.Solution{}
}

// SetGasFlow sets the purge gas and flow rate.
func (c *Cell) SetGasFlow(gas string, flow units.GasFlow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state.Gas = gas
	c.state.GasFlow = flow
}

// SetTemperature sets the cell temperature (chiller/heater action).
func (c *Cell) SetTemperature(t units.Temperature) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state.Temperature = t
}

// SetStirring turns the stir bar on or off.
func (c *Cell) SetStirring(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state.Stirring = on
}

// SetElectrodesConnected wires or unwires the electrode stack; used to
// inject the disconnected-electrode fault.
func (c *Cell) SetElectrodesConnected(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state.ElectrodesConnected = on
}

// Filled reports whether the cell holds at least the minimum working
// volume.
func (c *Cell) Filled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.Volume.Liters() >= c.minWorking.Liters()
}

// MeasurementConfig derives the echem.CellConfig the potentiostat
// should simulate against, translating physical conditions into fault
// modes:
//
//   - disconnected electrodes → FaultDisconnectedElectrode
//   - volume below the working minimum → FaultLowVolume
//   - empty or analyte-free cell → open circuit (nothing to oxidise)
func (c *Cell) MeasurementConfig(area units.Area, noiseSeed int64) echem.CellConfig {
	c.mu.Lock()
	defer c.mu.Unlock()

	cfg := echem.DefaultCell()
	cfg.ElectrodeArea = area
	cfg.Temperature = c.state.Temperature
	cfg.NoiseSeed = noiseSeed

	switch {
	case !c.state.ElectrodesConnected:
		cfg.Fault = echem.FaultDisconnectedElectrode
	case !c.state.HasSolution || c.state.Volume.Liters() <= 0:
		// No analyte: electrically connected but featureless.
		cfg.Fault = echem.FaultDisconnectedElectrode
	case c.state.Volume.Liters() < c.minWorking.Liters():
		cfg.Solution = c.state.Solution
		cfg.Fault = echem.FaultLowVolume
	default:
		cfg.Solution = c.state.Solution
	}
	if c.state.Stirring {
		// A stirred cell establishes a ~25 µm Nernst diffusion layer:
		// sweeps become sigmoidal at the convective limiting current.
		cfg.ConvectionDelta = 25e-6
	}
	return cfg
}

// String renders a one-line status, e.g. for GUI panels.
func (c *Cell) String() string {
	s := c.Snapshot()
	label := "empty"
	if s.HasSolution {
		label = s.Solution.String()
	} else if s.Volume.Liters() > 0 {
		label = s.Solution.Solvent
	}
	return fmt.Sprintf("cell[%v/%v %s, %s %v, %v, electrodes=%t]",
		s.Volume, s.Capacity, label, s.Gas, s.GasFlow, s.Temperature, s.ElectrodesConnected)
}
