package echem

import (
	"fmt"
	"math"

	"ice/internal/units"
)

// Waveform is a potential program E(t) applied to the working
// electrode. Implementations must be pure functions of t over
// [0, Duration].
type Waveform interface {
	// Potential returns the programmed potential at time t (seconds).
	Potential(t float64) units.Potential
	// Duration returns the total program length in seconds.
	Duration() float64
}

// Segment is one linear piece of a piecewise waveform.
type Segment struct {
	// From and To are the segment's start and end potentials.
	From, To units.Potential
	// Seconds is the segment duration.
	Seconds float64
}

// piecewise is a waveform built from consecutive linear segments.
type piecewise struct {
	segs  []Segment
	total float64
}

// NewPiecewise builds a waveform from linear segments played in order.
func NewPiecewise(segs ...Segment) (Waveform, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("echem: piecewise waveform needs at least one segment")
	}
	total := 0.0
	for i, s := range segs {
		if s.Seconds <= 0 || math.IsNaN(s.Seconds) || math.IsInf(s.Seconds, 0) {
			return nil, fmt.Errorf("echem: segment %d has non-positive duration %g", i, s.Seconds)
		}
		total += s.Seconds
	}
	return &piecewise{segs: segs, total: total}, nil
}

func (p *piecewise) Duration() float64 { return p.total }

func (p *piecewise) Potential(t float64) units.Potential {
	if t <= 0 {
		return p.segs[0].From
	}
	for _, s := range p.segs {
		if t <= s.Seconds {
			frac := t / s.Seconds
			return units.Volts(s.From.Volts() + frac*(s.To.Volts()-s.From.Volts()))
		}
		t -= s.Seconds
	}
	return p.segs[len(p.segs)-1].To
}

// CVProgram describes a cyclic-voltammetry potential program in the
// vocabulary of the EC-Lab technique parameters: start at Ei, sweep to
// the first vertex E1, reverse to the second vertex E2, and finish at
// Ef, at a fixed scan rate, for a number of cycles.
type CVProgram struct {
	// Ei is the initial potential.
	Ei units.Potential
	// E1 is the first vertex (the forward sweep target).
	E1 units.Potential
	// E2 is the second vertex (the reverse sweep target).
	E2 units.Potential
	// Ef is the final potential after the last cycle.
	Ef units.Potential
	// Rate is the scan rate.
	Rate units.ScanRate
	// Cycles is the number of E1→E2 cycles; minimum 1.
	Cycles int
}

// Validate checks the program's physical plausibility.
func (p CVProgram) Validate() error {
	switch {
	case p.Rate.VoltsPerSecond() <= 0:
		return fmt.Errorf("echem: CV scan rate must be positive, got %v", p.Rate)
	case p.Cycles < 1:
		return fmt.Errorf("echem: CV cycles must be ≥ 1, got %d", p.Cycles)
	case p.E1 == p.E2:
		return fmt.Errorf("echem: CV vertices must differ (E1 = E2 = %v)", p.E1)
	}
	return nil
}

// Waveform renders the program as a piecewise-linear waveform.
func (p CVProgram) Waveform() (Waveform, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	v := p.Rate.VoltsPerSecond()
	dur := func(a, b units.Potential) float64 {
		return math.Abs(b.Volts()-a.Volts()) / v
	}
	var segs []Segment
	at := p.Ei
	for c := 0; c < p.Cycles; c++ {
		if at != p.E1 {
			segs = append(segs, Segment{From: at, To: p.E1, Seconds: dur(at, p.E1)})
		}
		segs = append(segs, Segment{From: p.E1, To: p.E2, Seconds: dur(p.E1, p.E2)})
		at = p.E2
	}
	if at != p.Ef {
		segs = append(segs, Segment{From: at, To: p.Ef, Seconds: dur(at, p.Ef)})
	}
	return NewPiecewise(segs...)
}

// StepProgram holds the electrode at a rest potential then steps to a
// target, the chronoamperometry (CA) program used for Cottrell
// validation.
type StepProgram struct {
	// Rest is the pre-step potential where no reaction occurs.
	Rest units.Potential
	// Step is the post-step potential.
	Step units.Potential
	// RestSeconds and StepSeconds are the two phase durations.
	RestSeconds, StepSeconds float64
}

// Waveform renders the step program.
func (p StepProgram) Waveform() (Waveform, error) {
	if p.StepSeconds <= 0 {
		return nil, fmt.Errorf("echem: step duration must be positive, got %g", p.StepSeconds)
	}
	segs := []Segment{}
	if p.RestSeconds > 0 {
		segs = append(segs, Segment{From: p.Rest, To: p.Rest, Seconds: p.RestSeconds})
	}
	segs = append(segs, Segment{From: p.Step, To: p.Step, Seconds: p.StepSeconds})
	return NewPiecewise(segs...)
}

// LinearSweep returns a single ramp from Ei to Ef at the given rate
// (the LSV technique).
func LinearSweep(ei, ef units.Potential, rate units.ScanRate) (Waveform, error) {
	v := rate.VoltsPerSecond()
	if v <= 0 {
		return nil, fmt.Errorf("echem: LSV scan rate must be positive, got %v", rate)
	}
	if ei == ef {
		return nil, fmt.Errorf("echem: LSV endpoints must differ")
	}
	return NewPiecewise(Segment{From: ei, To: ef, Seconds: math.Abs(ef.Volts()-ei.Volts()) / v})
}

// Hold returns a constant-potential waveform (OCV-style monitoring or
// preconditioning holds).
func Hold(e units.Potential, seconds float64) (Waveform, error) {
	if seconds <= 0 {
		return nil, fmt.Errorf("echem: hold duration must be positive, got %g", seconds)
	}
	return NewPiecewise(Segment{From: e, To: e, Seconds: seconds})
}

// Sample returns n+1 uniformly spaced (t, E) samples over the waveform,
// including both endpoints.
func Sample(w Waveform, n int) (ts []float64, es []units.Potential) {
	if n < 1 {
		n = 1
	}
	dur := w.Duration()
	ts = make([]float64, n+1)
	es = make([]units.Potential, n+1)
	for i := 0; i <= n; i++ {
		t := dur * float64(i) / float64(n)
		ts[i] = t
		es[i] = w.Potential(t)
	}
	return ts, es
}
