// Package echem implements the electrochemistry that the ICE's
// instruments act on: potential waveform programs, Nernstian and
// Butler–Volmer electrode kinetics, a one-dimensional finite-difference
// diffusion simulator that generates cyclic-voltammetry (and other
// technique) current responses from first principles, closed-form
// theory (Randles–Ševčík, Cottrell) used to validate the simulator,
// and fault models for the abnormal conditions the paper's ML method
// flags (disconnected electrode, under-filled cell).
//
// The simulator follows the classical explicit-grid approach of Bard &
// Faulkner (Electrochemical Methods, App. B): Fick's second law is
// integrated with forward-time central-space steps, and the electrode
// boundary condition couples the surface concentrations of the reduced
// and oxidised species through Butler–Volmer kinetics.
package echem

// Physical constants (CODATA 2018).
const (
	// Faraday is the Faraday constant in C/mol.
	Faraday = 96485.33212
	// GasConstant is the molar gas constant in J/(mol·K).
	GasConstant = 8.314462618
)

// StandardTemperature is the reference temperature (25 °C) in kelvin.
const StandardTemperature = 298.15
