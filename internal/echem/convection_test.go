package echem

import (
	"math"
	"testing"

	"ice/internal/units"
)

// TestStirredSweepReachesLimitingCurrent validates hydrodynamic
// voltammetry: with a 25 µm Nernst layer, a slow LSV plateaus at
// i_L = nFADC/δ instead of peaking.
func TestStirredSweepReachesLimitingCurrent(t *testing.T) {
	cfg := DefaultCell()
	cfg.NoiseRMS = 0
	cfg.UncompensatedResistance = 0
	cfg.DoubleLayerCapacitance = 0
	cfg.ConvectionDelta = 25e-6
	w, err := LinearSweep(units.Volts(0.05), units.Volts(0.8), units.MillivoltsPerSecond(10))
	if err != nil {
		t.Fatal(err)
	}
	vg, err := Simulate(cfg, w, 1500)
	if err != nil {
		t.Fatal(err)
	}
	want := LimitingCurrent(1, cfg.ElectrodeArea, cfg.Solution.Concentration,
		cfg.Solution.Analyte.DiffusionReduced, 25e-6).Amperes()

	// The tail of the sweep sits on the plateau.
	tail := vg.Points[len(vg.Points)*9/10:]
	for _, p := range tail {
		rel := math.Abs(p.I.Amperes()-want) / want
		if rel > 0.05 {
			t.Fatalf("plateau current %v vs i_L %v: %.1f%% off", p.I.Amperes(), want, rel*100)
		}
	}
	// Sigmoid, not duck: the maximum is essentially the plateau value,
	// not a transient peak above it.
	max := 0.0
	for _, p := range vg.Points {
		if p.I.Amperes() > max {
			max = p.I.Amperes()
		}
	}
	if max > want*1.10 {
		t.Errorf("stirred sweep peaked at %v, %v%% above i_L: not steady-state", max, (max/want-1)*100)
	}
}

// TestLimitingCurrentScalesInverselyWithDelta checks the i_L ∝ 1/δ law
// through the simulator.
func TestLimitingCurrentScalesInverselyWithDelta(t *testing.T) {
	plateau := func(delta float64) float64 {
		cfg := DefaultCell()
		cfg.NoiseRMS = 0
		cfg.UncompensatedResistance = 0
		cfg.DoubleLayerCapacitance = 0
		cfg.ConvectionDelta = delta
		w, err := LinearSweep(units.Volts(0.05), units.Volts(0.8), units.MillivoltsPerSecond(10))
		if err != nil {
			t.Fatal(err)
		}
		vg, err := Simulate(cfg, w, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return vg.Points[len(vg.Points)-1].I.Amperes()
	}
	thin := plateau(20e-6)
	thick := plateau(40e-6)
	ratio := thin / thick
	if math.Abs(ratio-2) > 0.15 {
		t.Errorf("i_L(20µm)/i_L(40µm) = %v, want ≈ 2", ratio)
	}
}

func TestLimitingCurrentTheory(t *testing.T) {
	// 1·F·7e-6·2.4e-9·2/25e-6 = 0.1297 mA... compute directly.
	got := LimitingCurrent(1, units.SquareCentimeters(0.07), units.Millimolar(2), 2.4e-9, 25e-6)
	want := 96485.33212 * 7e-6 * 2.4e-9 * 2 / 25e-6
	if math.Abs(got.Amperes()-want)/want > 1e-12 {
		t.Errorf("i_L = %v, want %v", got.Amperes(), want)
	}
	if !math.IsInf(LimitingCurrent(1, units.SquareCentimeters(1), units.Millimolar(1), 1e-9, 0).Amperes(), 1) {
		t.Error("zero delta should give infinite i_L")
	}
}

func TestConvectionValidation(t *testing.T) {
	cfg := DefaultCell()
	cfg.ConvectionDelta = -1
	w, _ := LinearSweep(units.Volts(0), units.Volts(0.5), units.MillivoltsPerSecond(50))
	if _, err := Simulate(cfg, w, 100); err == nil {
		t.Error("negative convection delta accepted")
	}
}
