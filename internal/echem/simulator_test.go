package echem

import (
	"math"
	"testing"

	"ice/internal/units"
)

// paperCV returns the demonstration program: 0.05 → 0.8 → 0.05 V at
// 50 mV/s, one cycle.
func paperCV() CVProgram {
	return CVProgram{
		Ei: units.Volts(0.05), E1: units.Volts(0.8), E2: units.Volts(0.05), Ef: units.Volts(0.05),
		Rate: units.MillivoltsPerSecond(50), Cycles: 1,
	}
}

func quietCell() CellConfig {
	cfg := DefaultCell()
	cfg.NoiseRMS = 0
	cfg.UncompensatedResistance = 0
	cfg.DoubleLayerCapacitance = 0
	return cfg
}

func runCV(t *testing.T, cfg CellConfig, prog CVProgram, samples int) *Voltammogram {
	t.Helper()
	w, err := prog.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	vg, err := Simulate(cfg, w, samples)
	if err != nil {
		t.Fatal(err)
	}
	return vg
}

// splitPeaks returns the maximum (anodic) and minimum (cathodic)
// currents and the potentials they occur at.
func splitPeaks(vg *Voltammogram) (ipa, epa, ipc, epc float64) {
	ipa, ipc = math.Inf(-1), math.Inf(1)
	for _, p := range vg.Points {
		if p.I.Amperes() > ipa {
			ipa, epa = p.I.Amperes(), p.E.Volts()
		}
		if p.I.Amperes() < ipc {
			ipc, epc = p.I.Amperes(), p.E.Volts()
		}
	}
	return ipa, epa, ipc, epc
}

func TestCVPeakCurrentMatchesRandlesSevcik(t *testing.T) {
	cfg := quietCell()
	vg := runCV(t, cfg, paperCV(), 1500)
	ipa, _, _, _ := splitPeaks(vg)
	want := RandlesSevcik(1, cfg.ElectrodeArea, cfg.Solution.Concentration,
		paperCV().Rate, cfg.Solution.Analyte.DiffusionReduced, cfg.Temperature)
	rel := math.Abs(ipa-want.Amperes()) / want.Amperes()
	if rel > 0.04 {
		t.Errorf("anodic peak %v A vs Randles–Ševčík %v A: %.1f%% off (want ≤ 4%%)",
			ipa, want.Amperes(), rel*100)
	}
}

func TestCVPeakSeparationNearTheory(t *testing.T) {
	cfg := quietCell()
	vg := runCV(t, cfg, paperCV(), 2000)
	_, epa, _, epc := splitPeaks(vg)
	dEp := (epa - epc) * 1000 // mV
	// Reversible theory: ≈ 57 mV; accept 50–75 mV for the discrete grid.
	if dEp < 50 || dEp > 75 {
		t.Errorf("ΔEp = %.1f mV, want ≈ 57 (50–75 accepted)", dEp)
	}
}

func TestCVHalfWavePotentialNearFormal(t *testing.T) {
	cfg := quietCell()
	vg := runCV(t, cfg, paperCV(), 2000)
	_, epa, _, epc := splitPeaks(vg)
	eHalf := (epa + epc) / 2
	e0 := cfg.Solution.Analyte.FormalPotential.Volts()
	if math.Abs(eHalf-e0) > 0.01 {
		t.Errorf("E½ = %.4f V, want within 10 mV of E0' = %.3f V", eHalf, e0)
	}
}

func TestCVPeakScalesWithSqrtScanRate(t *testing.T) {
	cfg := quietCell()
	peak := func(rateMV float64) float64 {
		prog := paperCV()
		prog.Rate = units.MillivoltsPerSecond(rateMV)
		vg := runCV(t, cfg, prog, 1500)
		ipa, _, _, _ := splitPeaks(vg)
		return ipa
	}
	i50 := peak(50)
	i200 := peak(200)
	ratio := i200 / i50
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("ip(200)/ip(50) = %.3f, want ≈ 2 (√4)", ratio)
	}
}

func TestCVPeakLinearInConcentration(t *testing.T) {
	cfg := quietCell()
	peak := func(mm float64) float64 {
		c := cfg
		c.Solution.Concentration = units.Millimolar(mm)
		vg := runCV(t, c, paperCV(), 1000)
		ipa, _, _, _ := splitPeaks(vg)
		return ipa
	}
	ratio := peak(4) / peak(2)
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("ip(4mM)/ip(2mM) = %.3f, want ≈ 2", ratio)
	}
}

func TestCVDuckShape(t *testing.T) {
	// The voltammogram must have a positive forward peak, a negative
	// reverse peak, and near-zero current at the start (the classic
	// duck of Fig. 7).
	cfg := quietCell()
	vg := runCV(t, cfg, paperCV(), 1500)
	ipa, _, ipc, _ := splitPeaks(vg)
	if ipa <= 0 {
		t.Fatalf("anodic peak %v, want positive", ipa)
	}
	if ipc >= 0 {
		t.Fatalf("cathodic peak %v, want negative", ipc)
	}
	if start := vg.Points[0].I.Amperes(); math.Abs(start) > ipa*0.02 {
		t.Errorf("initial current %v not ≈ 0 (peak %v)", start, ipa)
	}
	// Reverse peak smaller in magnitude than forward (diffusion away).
	if math.Abs(ipc) > ipa {
		t.Errorf("cathodic magnitude %v exceeds anodic %v", math.Abs(ipc), ipa)
	}
	// For a reversible couple it should still be a substantial fraction.
	if math.Abs(ipc) < 0.5*ipa {
		t.Errorf("cathodic magnitude %v under half of anodic %v; not reversible-like", math.Abs(ipc), ipa)
	}
}

func TestChronoamperometryMatchesCottrell(t *testing.T) {
	cfg := quietCell()
	// Step from well below E0 to far above: diffusion-limited oxidation.
	w, err := StepProgram{
		Rest: units.Volts(0.0), Step: units.Volts(0.9),
		RestSeconds: 0, StepSeconds: 5,
	}.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	vg, err := Simulate(cfg, w, 2500)
	if err != nil {
		t.Fatal(err)
	}
	// Compare at t = 1 s and t = 4 s, past the initial transient.
	for _, tt := range []float64{1, 4} {
		idx := int(tt / 5 * 2500)
		got := vg.Points[idx].I.Amperes()
		want := Cottrell(1, cfg.ElectrodeArea, cfg.Solution.Concentration,
			cfg.Solution.Analyte.DiffusionReduced, vg.Points[idx].T).Amperes()
		rel := math.Abs(got-want) / want
		if rel > 0.05 {
			t.Errorf("i(%gs) = %v, Cottrell = %v: %.1f%% off", tt, got, want, rel*100)
		}
	}
}

func TestSimulateSampleCountAndMonotonicTime(t *testing.T) {
	cfg := quietCell()
	vg := runCV(t, cfg, paperCV(), 300)
	if len(vg.Points) != 301 {
		t.Fatalf("points = %d, want 301", len(vg.Points))
	}
	for i := 1; i < len(vg.Points); i++ {
		if vg.Points[i].T <= vg.Points[i-1].T {
			t.Fatalf("time not monotonic at %d: %v then %v", i, vg.Points[i-1].T, vg.Points[i].T)
		}
	}
	if vg.Points[0].T != 0 {
		t.Errorf("first sample at t=%v, want 0", vg.Points[0].T)
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := quietCell()
	w, _ := paperCV().Waveform()
	if _, err := Simulate(cfg, w, 1); err == nil {
		t.Error("1 sample accepted")
	}
	if _, err := Simulate(cfg, nil, 100); err == nil {
		t.Error("nil waveform accepted")
	}
	bad := cfg
	bad.ElectrodeArea = 0
	if _, err := Simulate(bad, w, 100); err == nil {
		t.Error("zero area accepted")
	}
	bad = cfg
	bad.Solution.Analyte.TransferCoefficient = 1.5
	if _, err := Simulate(bad, w, 100); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestSimulateDeterministicForSameSeed(t *testing.T) {
	cfg := DefaultCell()
	a := runCV(t, cfg, paperCV(), 400)
	b := runCV(t, cfg, paperCV(), 400)
	for i := range a.Points {
		if a.Points[i].I != b.Points[i].I {
			t.Fatalf("sample %d differs between identical runs", i)
		}
	}
	cfg2 := cfg
	cfg2.NoiseSeed = 99
	c := runCV(t, cfg2, paperCV(), 400)
	same := true
	for i := range a.Points {
		if a.Points[i].I != c.Points[i].I {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestDisconnectedElectrodeFault(t *testing.T) {
	cfg := DefaultCell()
	cfg.Fault = FaultDisconnectedElectrode
	vg := runCV(t, cfg, paperCV(), 800)
	// Currents must be at noise scale, nowhere near the 40 µA peak.
	for _, p := range vg.Points {
		if math.Abs(p.I.Amperes()) > 1e-6 {
			t.Fatalf("open-circuit current %v exceeds 1 µA", p.I)
		}
	}
	if vg.Fault != FaultDisconnectedElectrode {
		t.Errorf("Fault = %v", vg.Fault)
	}
}

func TestLowVolumeFaultShrinksPeak(t *testing.T) {
	normal := DefaultCell()
	normal.NoiseRMS = 0
	low := normal
	low.Fault = FaultLowVolume
	vgN := runCV(t, normal, paperCV(), 800)
	vgL := runCV(t, low, paperCV(), 800)
	ipaN, _, _, _ := splitPeaks(vgN)
	ipaL, _, _, _ := splitPeaks(vgL)
	if ipaL >= 0.6*ipaN {
		t.Errorf("low-volume peak %v not well below normal %v", ipaL, ipaN)
	}
	if ipaL <= 0 {
		t.Errorf("low-volume peak %v should still be positive", ipaL)
	}
}

func TestNoisyContactFaultRaisesNoiseFloor(t *testing.T) {
	cfg := DefaultCell()
	cfg.Fault = FaultNoisyContact
	vg := runCV(t, cfg, paperCV(), 800)
	// Estimate noise from the flat pre-wave region (first 10% of sweep).
	var sum2 float64
	n := len(vg.Points) / 10
	for _, p := range vg.Points[:n] {
		sum2 += p.I.Amperes() * p.I.Amperes()
	}
	rms := math.Sqrt(sum2 / float64(n))
	if rms < 5e-7 {
		t.Errorf("noisy-contact RMS %v too small", rms)
	}
}

func TestFaultString(t *testing.T) {
	cases := map[Fault]string{
		FaultNone:                  "normal",
		FaultDisconnectedElectrode: "disconnected-electrode",
		FaultLowVolume:             "low-volume",
		FaultNoisyContact:          "noisy-contact",
		Fault(99):                  "fault(99)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(f), got, want)
		}
	}
}

func TestVoltammogramAccessors(t *testing.T) {
	vg := runCV(t, quietCell(), paperCV(), 100)
	if len(vg.Potentials()) != 101 || len(vg.Currents()) != 101 || len(vg.Times()) != 101 {
		t.Fatal("accessor lengths mismatch")
	}
	if vg.Potentials()[0] != vg.Points[0].E.Volts() {
		t.Error("Potentials()[0] mismatch")
	}
}

func TestMassConservationInThinLayer(t *testing.T) {
	// In a sealed thin layer the total moles of R+O per unit area is
	// conserved by the scheme (electrode converts R↔O, never destroys).
	cfg := quietCell()
	cfg.DomainThickness = 50e-6
	w, _ := paperCV().Waveform()
	vg, err := Simulate(cfg, w, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Indirect check: integrated current over a full cycle returns near
	// zero net charge (everything oxidised is re-reduced).
	var q float64
	for i := 1; i < len(vg.Points); i++ {
		dt := vg.Points[i].T - vg.Points[i-1].T
		q += vg.Points[i].I.Amperes() * dt
	}
	// Compare against the forward-leg charge magnitude.
	var qFwd float64
	for i := 1; i < len(vg.Points)/2; i++ {
		dt := vg.Points[i].T - vg.Points[i-1].T
		qFwd += math.Abs(vg.Points[i].I.Amperes()) * dt
	}
	if qFwd == 0 {
		t.Fatal("no charge passed")
	}
	if math.Abs(q)/qFwd > 0.35 {
		t.Errorf("net charge %.3g vs forward %.3g: thin layer should nearly rebalance", q, qFwd)
	}
}

func TestSecondCycleReproducesFirstApproximately(t *testing.T) {
	cfg := quietCell()
	prog := paperCV()
	prog.Cycles = 2
	vg := runCV(t, cfg, prog, 3000)
	half := len(vg.Points) / 2
	ipa1, _, _, _ := splitPeaks(&Voltammogram{Points: vg.Points[:half]})
	ipa2, _, _, _ := splitPeaks(&Voltammogram{Points: vg.Points[half:]})
	// Cycle 2 peak is slightly smaller (depleted diffusion layer) but
	// within 15% for a reversible couple.
	if ipa2 > ipa1 {
		t.Errorf("cycle 2 peak %v exceeds cycle 1 %v", ipa2, ipa1)
	}
	if ipa2 < 0.85*ipa1 {
		t.Errorf("cycle 2 peak %v under 85%% of cycle 1 %v", ipa2, ipa1)
	}
}
