package echem

import (
	"math"
	"testing"

	"ice/internal/units"
)

func quietSWVCell() CellConfig {
	cfg := DefaultCell()
	cfg.NoiseRMS = 0
	cfg.UncompensatedResistance = 0
	cfg.DoubleLayerCapacitance = 0
	return cfg
}

func TestSWVPeakAtHalfWavePotential(t *testing.T) {
	cfg := quietSWVCell()
	prog := DefaultSWV(units.Volts(0.1), units.Volts(0.7))
	points, err := SimulateSWV(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != prog.Steps() {
		t.Fatalf("points = %d, want %d", len(points), prog.Steps())
	}
	peakE, peakDelta := SWVPeak(points)
	// Equal diffusion coefficients: E½ = E0' = 0.40 V.
	if math.Abs(peakE-0.40) > 0.01 {
		t.Errorf("SWV peak at %.3f V, want ≈ 0.400", peakE)
	}
	if peakDelta <= 0 {
		t.Errorf("peak ΔI = %v", peakDelta)
	}
	// Baseline near the start is tiny relative to the peak.
	if base := points[2].Delta; math.Abs(base) > peakDelta*0.05 {
		t.Errorf("baseline ΔI %v not ≪ peak %v", base, peakDelta)
	}
}

func TestSWVForwardReverseOpposeNearPeak(t *testing.T) {
	// At the peak the forward half-cycle oxidises (positive current)
	// and the reverse half-cycle re-reduces (negative current) — the
	// cancellation of capacitive background that makes SWV sensitive.
	cfg := quietSWVCell()
	points, err := SimulateSWV(cfg, DefaultSWV(units.Volts(0.1), units.Volts(0.7)))
	if err != nil {
		t.Fatal(err)
	}
	peakE, _ := SWVPeak(points)
	for _, p := range points {
		if math.Abs(p.Stair-peakE) < 0.005 {
			if p.Forward <= 0 {
				t.Errorf("forward current %v at peak not positive", p.Forward)
			}
			if p.Reverse >= 0 {
				t.Errorf("reverse current %v at peak not negative", p.Reverse)
			}
		}
	}
}

func TestSWVPeakGrowsWithAmplitude(t *testing.T) {
	cfg := quietSWVCell()
	height := func(ampMV float64) float64 {
		prog := DefaultSWV(units.Volts(0.1), units.Volts(0.7))
		prog.Amplitude = units.Millivolts(ampMV)
		points, err := SimulateSWV(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		_, h := SWVPeak(points)
		return h
	}
	small := height(10)
	large := height(50)
	if large <= small*1.5 {
		t.Errorf("ΔIp(50 mV) = %v not well above ΔIp(10 mV) = %v", large, small)
	}
}

func TestSWVPeakLinearInConcentration(t *testing.T) {
	height := func(mm float64) float64 {
		cfg := quietSWVCell()
		cfg.Solution.Concentration = units.Millimolar(mm)
		points, err := SimulateSWV(cfg, DefaultSWV(units.Volts(0.1), units.Volts(0.7)))
		if err != nil {
			t.Fatal(err)
		}
		_, h := SWVPeak(points)
		return h
	}
	ratio := height(4) / height(2)
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("ΔIp(4mM)/ΔIp(2mM) = %v, want ≈ 2", ratio)
	}
}

func TestSWVValidation(t *testing.T) {
	cfg := quietSWVCell()
	bad := []SWVProgram{
		{Start: units.Volts(0), End: units.Volts(0.5), Step: 0, Amplitude: units.Millivolts(25), Frequency: 25},
		{Start: units.Volts(0), End: units.Volts(0.5), Step: units.Millivolts(4), Amplitude: 0, Frequency: 25},
		{Start: units.Volts(0), End: units.Volts(0.5), Step: units.Millivolts(4), Amplitude: units.Millivolts(25), Frequency: 0},
		{Start: units.Volts(0.3), End: units.Volts(0.3), Step: units.Millivolts(4), Amplitude: units.Millivolts(25), Frequency: 25},
	}
	for i, p := range bad {
		if _, err := SimulateSWV(cfg, p); err == nil {
			t.Errorf("program %d accepted", i)
		}
	}
}

func TestSWVDescendingSweep(t *testing.T) {
	// Sweeping downward through E½ gives a negative (reduction) peak
	// for an initially oxidised... our solution is reduced, so the
	// descending sweep from 0.7 still shows the couple: forward pulses
	// go negative-ward. Just check it runs and the staircase descends.
	cfg := quietSWVCell()
	prog := DefaultSWV(units.Volts(0.7), units.Volts(0.1))
	points, err := SimulateSWV(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Stair <= points[len(points)-1].Stair {
		t.Errorf("staircase not descending: %v → %v", points[0].Stair, points[len(points)-1].Stair)
	}
}
