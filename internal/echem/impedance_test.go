package echem

import (
	"math"
	"testing"

	"ice/internal/units"
)

func referenceCircuit() RandlesCircuit {
	return RandlesCircuit{
		SolutionResistance:       10,
		ChargeTransferResistance: 100,
		DoubleLayerCapacitance:   2e-6,
		WarburgCoefficient:       0, // pure semicircle for limit checks
	}
}

func TestImpedanceHighFrequencyLimit(t *testing.T) {
	// As ω→∞ the capacitor shorts the faradaic branch: Z → Rs.
	rc := referenceCircuit()
	z := rc.Impedance(2 * math.Pi * 1e9)
	if math.Abs(real(z)-10) > 0.5 {
		t.Errorf("Re Z at high f = %v, want ≈ Rs = 10", real(z))
	}
	if math.Abs(imag(z)) > 1 {
		t.Errorf("Im Z at high f = %v, want ≈ 0", imag(z))
	}
}

func TestImpedanceLowFrequencyLimit(t *testing.T) {
	// As ω→0 with no Warburg: Z → Rs + Rct.
	rc := referenceCircuit()
	z := rc.Impedance(2 * math.Pi * 1e-4)
	if math.Abs(real(z)-110) > 1 {
		t.Errorf("Re Z at low f = %v, want ≈ Rs+Rct = 110", real(z))
	}
}

func TestImpedanceSemicircleApex(t *testing.T) {
	// At ω = 1/(Rct·Cdl) the imaginary part peaks at −Rct/2.
	rc := referenceCircuit()
	fMax := rc.CharacteristicFrequency()
	z := rc.Impedance(2 * math.Pi * fMax)
	if math.Abs(imag(z)+50) > 1 {
		t.Errorf("Im Z at apex = %v, want ≈ −Rct/2 = −50", imag(z))
	}
	if math.Abs(real(z)-60) > 1 {
		t.Errorf("Re Z at apex = %v, want ≈ Rs+Rct/2 = 60", real(z))
	}
}

func TestImpedanceWarburgTail(t *testing.T) {
	// With Warburg, the low-frequency tail has slope ≈ 1 in the
	// Nyquist plane (−Im vs Re with unit slope).
	rc := referenceCircuit()
	rc.WarburgCoefficient = 50
	z1 := rc.Impedance(2 * math.Pi * 0.01)
	z2 := rc.Impedance(2 * math.Pi * 0.0025)
	dRe := real(z2) - real(z1)
	dIm := -(imag(z2) - imag(z1))
	if dRe <= 0 || dIm <= 0 {
		t.Fatalf("tail not advancing: dRe=%v dIm=%v", dRe, dIm)
	}
	slope := dIm / dRe
	if math.Abs(slope-1) > 0.15 {
		t.Errorf("Warburg tail slope = %v, want ≈ 1", slope)
	}
}

func TestImpedanceZeroFrequency(t *testing.T) {
	z := referenceCircuit().Impedance(0)
	if !math.IsInf(real(z), 1) {
		t.Errorf("Z(0) = %v, want +Inf (blocked by Cdl)", z)
	}
}

func TestCellRandlesCircuitPhysicalScales(t *testing.T) {
	cfg := DefaultCell()
	rc, err := CellRandlesCircuit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// For k0 = 1e-2 m/s and 1 mol/m³ half-concentration, Rct should be
	// tiny (reversible couple): well under 10 Ω on 0.07 cm².
	if rc.ChargeTransferResistance <= 0 || rc.ChargeTransferResistance > 10 {
		t.Errorf("Rct = %v Ω, want small positive for a fast couple", rc.ChargeTransferResistance)
	}
	// Cdl = 0.2 F/m² × 7e-6 m² = 1.4 µF.
	if math.Abs(rc.DoubleLayerCapacitance-1.4e-6) > 1e-7 {
		t.Errorf("Cdl = %v F, want 1.4e-6", rc.DoubleLayerCapacitance)
	}
	if rc.SolutionResistance != 10 {
		t.Errorf("Rs = %v, want the cell's Ru = 10", rc.SolutionResistance)
	}
	if rc.WarburgCoefficient <= 0 {
		t.Errorf("σ = %v, want positive", rc.WarburgCoefficient)
	}
}

func TestCellRandlesCircuitSlowKinetics(t *testing.T) {
	// A sluggish couple (small k0) must show a much larger Rct.
	fast := DefaultCell()
	slow := DefaultCell()
	slow.Solution.Analyte.RateConstant = 1e-6
	rcFast, err := CellRandlesCircuit(fast)
	if err != nil {
		t.Fatal(err)
	}
	rcSlow, err := CellRandlesCircuit(slow)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rcSlow.ChargeTransferResistance / rcFast.ChargeTransferResistance
	if math.Abs(ratio-1e4) > 1e3 {
		t.Errorf("Rct ratio = %v, want ≈ k0 ratio 1e4", ratio)
	}
}

func TestCellRandlesCircuitOpenCircuit(t *testing.T) {
	cfg := DefaultCell()
	cfg.Fault = FaultDisconnectedElectrode
	rc, err := CellRandlesCircuit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rc.ChargeTransferResistance < 1e9 {
		t.Errorf("open-circuit Rct = %v, want enormous", rc.ChargeTransferResistance)
	}
}

func TestSimulateEISSpectrumShape(t *testing.T) {
	cfg := DefaultCell()
	sweep := EISSweepConfig{
		FreqMin: 0.1, FreqMax: 100_000, PointsPerDecade: 10,
		AmplitudeRMS: units.Millivolts(10),
	}
	points, err := SimulateEIS(cfg, sweep)
	if err != nil {
		t.Fatal(err)
	}
	// 6 decades × 10 + 1 points, ordered high → low frequency.
	if len(points) != 61 {
		t.Fatalf("points = %d, want 61", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Frequency >= points[i-1].Frequency {
			t.Fatalf("frequency not descending at %d", i)
		}
	}
	// Capacitive: Im Z ≤ 0 everywhere (noise-free run).
	for _, p := range points {
		if p.Zim > 1e-9 {
			t.Errorf("Im Z = %v at %v Hz, want ≤ 0", p.Zim, p.Frequency)
		}
	}
	// High-frequency end approaches Rs; low-frequency end exceeds it.
	if math.Abs(points[0].Zre-10) > 3 {
		t.Errorf("high-f Re Z = %v, want ≈ 10", points[0].Zre)
	}
	last := points[len(points)-1]
	if last.Zre <= points[0].Zre {
		t.Errorf("low-f Re Z = %v not above high-f %v", last.Zre, points[0].Zre)
	}
}

func TestSimulateEISValidation(t *testing.T) {
	cfg := DefaultCell()
	bad := []EISSweepConfig{
		{FreqMin: 0, FreqMax: 100, PointsPerDecade: 5},
		{FreqMin: 100, FreqMax: 1, PointsPerDecade: 5},
		{FreqMin: 1, FreqMax: 100, PointsPerDecade: 0},
		{FreqMin: 1, FreqMax: 100, PointsPerDecade: 5, NoiseFraction: -1},
	}
	for i, s := range bad {
		if _, err := SimulateEIS(cfg, s); err == nil {
			t.Errorf("sweep %d accepted", i)
		}
	}
}

func TestSimulateEISNoiseDeterminism(t *testing.T) {
	cfg := DefaultCell()
	sweep := EISSweepConfig{
		FreqMin: 1, FreqMax: 1000, PointsPerDecade: 5,
		NoiseFraction: 0.01, NoiseSeed: 5,
	}
	a, err := SimulateEIS(cfg, sweep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateEIS(cfg, sweep)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded EIS not deterministic at %d", i)
		}
	}
	sweep.NoiseSeed = 6
	c, _ := SimulateEIS(cfg, sweep)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical noise")
	}
}

func TestImpedancePointDerived(t *testing.T) {
	p := ImpedancePoint{Frequency: 10, Zre: 3, Zim: -4}
	if p.Magnitude() != 5 {
		t.Errorf("|Z| = %v", p.Magnitude())
	}
	if math.Abs(p.Phase()+53.13) > 0.01 {
		t.Errorf("phase = %v, want ≈ −53.13°", p.Phase())
	}
}
