package echem

import (
	"testing"

	"ice/internal/units"
)

func benchProgram(b *testing.B) Waveform {
	b.Helper()
	prog := CVProgram{
		Ei: units.Volts(0.05), E1: units.Volts(0.8), E2: units.Volts(0.05), Ef: units.Volts(0.05),
		Rate: units.MillivoltsPerSecond(50), Cycles: 1,
	}
	w, err := prog.Waveform()
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkSimulateCV measures the full diffusion simulation of the
// paper's demonstration program at default resolution.
func BenchmarkSimulateCV(b *testing.B) {
	w := benchProgram(b)
	cfg := DefaultCell()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, w, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateOpenCircuit measures the fault path.
func BenchmarkSimulateOpenCircuit(b *testing.B) {
	w := benchProgram(b)
	cfg := DefaultCell()
	cfg.Fault = FaultDisconnectedElectrode
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, w, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaveformSample measures potential-program evaluation.
func BenchmarkWaveformSample(b *testing.B) {
	w := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sample(w, 1000)
	}
}

// BenchmarkRandlesSevcik measures the closed-form theory call.
func BenchmarkRandlesSevcik(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RandlesSevcik(1, units.SquareCentimeters(0.07), units.Millimolar(2),
			units.MillivoltsPerSecond(50), 2.4e-9, units.Celsius(25))
	}
}
