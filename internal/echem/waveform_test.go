package echem

import (
	"math"
	"testing"
	"testing/quick"

	"ice/internal/units"
)

func TestCVProgramWaveformShape(t *testing.T) {
	prog := CVProgram{
		Ei:     units.Volts(0.05),
		E1:     units.Volts(0.8),
		E2:     units.Volts(0.05),
		Ef:     units.Volts(0.05),
		Rate:   units.MillivoltsPerSecond(50),
		Cycles: 1,
	}
	w, err := prog.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	// Forward leg: 0.75 V at 0.05 V/s = 15 s; round trip = 30 s.
	if got := w.Duration(); math.Abs(got-30) > 1e-9 {
		t.Errorf("Duration = %v, want 30", got)
	}
	if got := w.Potential(0).Volts(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("E(0) = %v, want 0.05", got)
	}
	if got := w.Potential(15).Volts(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("E(15) = %v, want 0.8 (vertex)", got)
	}
	if got := w.Potential(30).Volts(); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("E(30) = %v, want 0.05", got)
	}
	// Midway up the forward sweep.
	if got := w.Potential(7.5).Volts(); math.Abs(got-0.425) > 1e-9 {
		t.Errorf("E(7.5) = %v, want 0.425", got)
	}
}

func TestCVProgramMultipleCycles(t *testing.T) {
	prog := CVProgram{
		Ei: units.Volts(0), E1: units.Volts(1), E2: units.Volts(0), Ef: units.Volts(0),
		Rate: units.VoltsPerSecond(1), Cycles: 3,
	}
	w, err := prog.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Duration(); math.Abs(got-6) > 1e-9 {
		t.Errorf("3 cycles of 2 s = %v, want 6", got)
	}
	// Vertex of cycle 2 at t = 3 s.
	if got := w.Potential(3).Volts(); math.Abs(got-1) > 1e-9 {
		t.Errorf("E(3) = %v, want 1 (second forward vertex)", got)
	}
}

func TestCVProgramValidation(t *testing.T) {
	base := CVProgram{
		Ei: units.Volts(0), E1: units.Volts(1), E2: units.Volts(0), Ef: units.Volts(0),
		Rate: units.VoltsPerSecond(1), Cycles: 1,
	}
	bad := base
	bad.Rate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero scan rate accepted")
	}
	bad = base
	bad.Cycles = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cycles accepted")
	}
	bad = base
	bad.E2 = bad.E1
	if err := bad.Validate(); err == nil {
		t.Error("identical vertices accepted")
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestPiecewiseBeyondEndClamps(t *testing.T) {
	w, err := NewPiecewise(Segment{From: units.Volts(0), To: units.Volts(1), Seconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Potential(5).Volts(); got != 1 {
		t.Errorf("E(beyond end) = %v, want clamp to 1", got)
	}
	if got := w.Potential(-1).Volts(); got != 0 {
		t.Errorf("E(negative) = %v, want clamp to 0", got)
	}
}

func TestPiecewiseRejectsBadSegments(t *testing.T) {
	if _, err := NewPiecewise(); err == nil {
		t.Error("empty waveform accepted")
	}
	if _, err := NewPiecewise(Segment{From: 0, To: 1, Seconds: 0}); err == nil {
		t.Error("zero-duration segment accepted")
	}
	if _, err := NewPiecewise(Segment{From: 0, To: 1, Seconds: math.NaN()}); err == nil {
		t.Error("NaN duration accepted")
	}
}

func TestStepProgramWaveform(t *testing.T) {
	w, err := StepProgram{
		Rest: units.Volts(0), Step: units.Volts(0.8),
		RestSeconds: 1, StepSeconds: 4,
	}.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Duration(); got != 5 {
		t.Errorf("Duration = %v, want 5", got)
	}
	if got := w.Potential(0.5).Volts(); got != 0 {
		t.Errorf("E during rest = %v, want 0", got)
	}
	if got := w.Potential(2).Volts(); got != 0.8 {
		t.Errorf("E after step = %v, want 0.8", got)
	}
}

func TestStepProgramRejectsZeroStep(t *testing.T) {
	if _, err := (StepProgram{StepSeconds: 0}).Waveform(); err == nil {
		t.Error("zero step duration accepted")
	}
}

func TestLinearSweep(t *testing.T) {
	w, err := LinearSweep(units.Volts(-0.2), units.Volts(0.6), units.MillivoltsPerSecond(100))
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Duration(); math.Abs(got-8) > 1e-9 {
		t.Errorf("Duration = %v, want 8", got)
	}
	if _, err := LinearSweep(units.Volts(0), units.Volts(0), units.VoltsPerSecond(1)); err == nil {
		t.Error("degenerate sweep accepted")
	}
	if _, err := LinearSweep(units.Volts(0), units.Volts(1), 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestHold(t *testing.T) {
	w, err := Hold(units.Volts(0.3), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 5, 10} {
		if got := w.Potential(tt).Volts(); got != 0.3 {
			t.Errorf("E(%v) = %v, want 0.3", tt, got)
		}
	}
	if _, err := Hold(units.Volts(0), -1); err == nil {
		t.Error("negative hold accepted")
	}
}

func TestSampleEndpoints(t *testing.T) {
	w, _ := LinearSweep(units.Volts(0), units.Volts(1), units.VoltsPerSecond(1))
	ts, es := Sample(w, 10)
	if len(ts) != 11 || len(es) != 11 {
		t.Fatalf("Sample lengths = %d, %d; want 11", len(ts), len(es))
	}
	if ts[0] != 0 || math.Abs(ts[10]-1) > 1e-12 {
		t.Errorf("time endpoints = %v, %v", ts[0], ts[10])
	}
	if es[0].Volts() != 0 || math.Abs(es[10].Volts()-1) > 1e-9 {
		t.Errorf("potential endpoints = %v, %v", es[0], es[10])
	}
}

// Property: a piecewise waveform is continuous — adjacent samples never
// jump by more than the segment slope allows (for continuous segments).
func TestCVWaveformContinuityProperty(t *testing.T) {
	f := func(rateMV uint8, spanMV uint16) bool {
		rate := float64(rateMV%200) + 1 // 1..200 mV/s
		span := float64(spanMV%1500)/1000 + 0.05
		prog := CVProgram{
			Ei: units.Volts(0), E1: units.Volts(span), E2: units.Volts(0), Ef: units.Volts(0),
			Rate: units.MillivoltsPerSecond(rate), Cycles: 2,
		}
		w, err := prog.Waveform()
		if err != nil {
			return false
		}
		ts, es := Sample(w, 400)
		maxStep := rate / 1000 * (ts[1] - ts[0]) * 1.01
		for i := 1; i < len(es); i++ {
			if math.Abs(es[i].Volts()-es[i-1].Volts()) > maxStep+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CV waveform potentials always stay within [min, max] of the
// program's vertex and endpoint potentials.
func TestCVWaveformBoundedProperty(t *testing.T) {
	f := func(e1m, e2m int16) bool {
		e1 := float64(e1m%2000) / 1000
		e2 := float64(e2m%2000) / 1000
		if e1 == e2 {
			return true
		}
		prog := CVProgram{
			Ei: units.Volts(e2), E1: units.Volts(e1), E2: units.Volts(e2), Ef: units.Volts(e2),
			Rate: units.MillivoltsPerSecond(100), Cycles: 1,
		}
		w, err := prog.Waveform()
		if err != nil {
			return false
		}
		lo, hi := math.Min(e1, e2), math.Max(e1, e2)
		_, es := Sample(w, 200)
		for _, e := range es {
			if e.Volts() < lo-1e-9 || e.Volts() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
