package echem

import (
	"math"

	"ice/internal/units"
)

// NernstRatio returns the equilibrium surface concentration ratio
// [O]/[R] at potential e for a couple with formal potential e0 and n
// electrons, at temperature T: exp(nF(E−E0')/RT).
func NernstRatio(e, e0 units.Potential, n int, temp units.Temperature) float64 {
	f := float64(n) * Faraday / (GasConstant * temp.Kelvin())
	return math.Exp(f * (e.Volts() - e0.Volts()))
}

// NernstPotential returns the equilibrium potential for a given
// concentration ratio [O]/[R]: E = E0' + (RT/nF)·ln([O]/[R]).
func NernstPotential(e0 units.Potential, ratio float64, n int, temp units.Temperature) units.Potential {
	if ratio <= 0 {
		return e0
	}
	rtnf := GasConstant * temp.Kelvin() / (float64(n) * Faraday)
	return units.Volts(e0.Volts() + rtnf*math.Log(ratio))
}

// RandlesSevcik returns the theoretical peak current for a reversible
// couple at 25-ish °C generalised to temperature T:
//
//	ip = 0.4463 · n·F·A·C · sqrt(n·F·v·D / (R·T))
//
// with area in m², concentration as a units.Concentration, scan rate v
// and the diffusion coefficient D of the species being consumed.
func RandlesSevcik(n int, area units.Area, conc units.Concentration, rate units.ScanRate, d float64, temp units.Temperature) units.Current {
	nf := float64(n) * Faraday
	inner := nf * rate.VoltsPerSecond() * d / (GasConstant * temp.Kelvin())
	ip := 0.4463 * nf * area.SquareMeters() * conc.MolesPerCubicMeter() * math.Sqrt(inner)
	return units.Amperes(ip)
}

// Cottrell returns the diffusion-limited current t seconds after a
// potential step: i(t) = n·F·A·C·sqrt(D/(π·t)).
func Cottrell(n int, area units.Area, conc units.Concentration, d, t float64) units.Current {
	if t <= 0 {
		return units.Amperes(math.Inf(1))
	}
	i := float64(n) * Faraday * area.SquareMeters() * conc.MolesPerCubicMeter() * math.Sqrt(d/(math.Pi*t))
	return units.Amperes(i)
}

// ReversiblePeakSeparation returns the theoretical anodic-to-cathodic
// peak separation ΔEp ≈ 2.218·RT/nF for a reversible couple
// (≈ 57 mV at 25 °C for n = 1).
func ReversiblePeakSeparation(n int, temp units.Temperature) units.Potential {
	return units.Volts(2.218 * GasConstant * temp.Kelvin() / (float64(n) * Faraday))
}

// ReversiblePeakOffset returns Ep − E½ ≈ 1.109·RT/nF, the offset of the
// forward peak from the half-wave potential (≈ 28.5 mV at 25 °C, n=1).
func ReversiblePeakOffset(n int, temp units.Temperature) units.Potential {
	return units.Volts(1.109 * GasConstant * temp.Kelvin() / (float64(n) * Faraday))
}

// LimitingCurrent returns the convective steady-state (hydrodynamic)
// limiting current for a Nernst diffusion layer of thickness δ:
// i_L = n·F·A·D·C/δ.
func LimitingCurrent(n int, area units.Area, conc units.Concentration, d, delta float64) units.Current {
	if delta <= 0 {
		return units.Amperes(math.Inf(1))
	}
	return units.Amperes(float64(n) * Faraday * area.SquareMeters() * d * conc.MolesPerCubicMeter() / delta)
}

// DiffusionLayerThickness estimates the depletion-layer thickness
// after t seconds, 6·sqrt(D·t), the span the simulation grid must cover.
func DiffusionLayerThickness(d, t float64) float64 {
	return 6 * math.Sqrt(d*t)
}

// MatchesRandlesSevcik reports whether a measured peak current agrees
// with the Randles–Ševčík prediction within the relative tolerance.
func MatchesRandlesSevcik(measured, predicted units.Current, tol float64) bool {
	p := predicted.Amperes()
	if p == 0 {
		return measured.Amperes() == 0
	}
	return math.Abs(measured.Amperes()-p)/math.Abs(p) <= tol
}
