package echem

import (
	"math"
	"testing"
	"testing/quick"

	"ice/internal/units"
)

func TestNernstRatioAtFormalPotential(t *testing.T) {
	if r := NernstRatio(units.Volts(0.4), units.Volts(0.4), 1, units.Celsius(25)); math.Abs(r-1) > 1e-12 {
		t.Errorf("ratio at E0 = %v, want 1", r)
	}
}

func TestNernstRatio59mVDecade(t *testing.T) {
	// At 25 °C, +59.16 mV shifts the ratio by one decade for n = 1.
	r := NernstRatio(units.Millivolts(459.16), units.Millivolts(400), 1, units.Celsius(25))
	if math.Abs(r-10) > 0.01 {
		t.Errorf("ratio one decade above E0 = %v, want 10", r)
	}
}

func TestNernstPotentialInverse(t *testing.T) {
	e0 := units.Volts(0.40)
	temp := units.Celsius(25)
	for _, ratio := range []float64{0.1, 0.5, 1, 2, 10, 100} {
		e := NernstPotential(e0, ratio, 1, temp)
		back := NernstRatio(e, e0, 1, temp)
		if math.Abs(back-ratio)/ratio > 1e-9 {
			t.Errorf("ratio %v: round trip = %v", ratio, back)
		}
	}
	// Non-positive ratio degrades to E0.
	if e := NernstPotential(e0, 0, 1, temp); e != e0 {
		t.Errorf("NernstPotential(0 ratio) = %v, want E0", e)
	}
}

func TestRandlesSevcikKnownValue(t *testing.T) {
	// Hand-computed: n=1, A=0.07 cm², C=2 mM, v=50 mV/s, D=2.4e-9 m²/s,
	// T=25 °C → ip ≈ 41.2 µA.
	ip := RandlesSevcik(1, units.SquareCentimeters(0.07), units.Millimolar(2),
		units.MillivoltsPerSecond(50), 2.4e-9, units.Celsius(25))
	if math.Abs(ip.Microamperes()-41.2) > 0.5 {
		t.Errorf("ip = %v µA, want ≈ 41.2", ip.Microamperes())
	}
}

func TestRandlesSevcikScalesWithSqrtRate(t *testing.T) {
	base := RandlesSevcik(1, units.SquareCentimeters(0.07), units.Millimolar(2),
		units.MillivoltsPerSecond(50), 2.4e-9, units.Celsius(25))
	quad := RandlesSevcik(1, units.SquareCentimeters(0.07), units.Millimolar(2),
		units.MillivoltsPerSecond(200), 2.4e-9, units.Celsius(25))
	if math.Abs(quad.Amperes()/base.Amperes()-2) > 1e-9 {
		t.Errorf("4x rate should give 2x current, got ratio %v", quad.Amperes()/base.Amperes())
	}
}

func TestCottrellKnownValue(t *testing.T) {
	// i(1 s) = nFAC·sqrt(D/π): 96485·7e-6·2·sqrt(2.4e-9/π) ≈ 37.3 µA.
	i := Cottrell(1, units.SquareCentimeters(0.07), units.Millimolar(2), 2.4e-9, 1)
	want := 96485.33212 * 7e-6 * 2 * math.Sqrt(2.4e-9/math.Pi)
	if math.Abs(i.Amperes()-want)/want > 1e-9 {
		t.Errorf("Cottrell(1s) = %v, want %v", i.Amperes(), want)
	}
}

func TestCottrellDecaysAsInverseSqrtT(t *testing.T) {
	i1 := Cottrell(1, units.SquareCentimeters(1), units.Millimolar(1), 1e-9, 1)
	i4 := Cottrell(1, units.SquareCentimeters(1), units.Millimolar(1), 1e-9, 4)
	if math.Abs(i1.Amperes()/i4.Amperes()-2) > 1e-9 {
		t.Errorf("i(1)/i(4) = %v, want 2", i1.Amperes()/i4.Amperes())
	}
	if !math.IsInf(Cottrell(1, units.SquareCentimeters(1), units.Millimolar(1), 1e-9, 0).Amperes(), 1) {
		t.Error("Cottrell at t=0 should be +Inf")
	}
}

func TestReversiblePeakSeparation57mV(t *testing.T) {
	dEp := ReversiblePeakSeparation(1, units.Celsius(25))
	if math.Abs(dEp.Millivolts()-57) > 1 {
		t.Errorf("ΔEp = %v mV, want ≈ 57", dEp.Millivolts())
	}
	// Two electrons halve the separation.
	dEp2 := ReversiblePeakSeparation(2, units.Celsius(25))
	if math.Abs(dEp2.Millivolts()-dEp.Millivolts()/2) > 0.1 {
		t.Errorf("n=2 ΔEp = %v mV, want half of n=1", dEp2.Millivolts())
	}
}

func TestReversiblePeakOffset28mV(t *testing.T) {
	off := ReversiblePeakOffset(1, units.Celsius(25))
	if math.Abs(off.Millivolts()-28.5) > 0.5 {
		t.Errorf("Ep-E½ = %v mV, want ≈ 28.5", off.Millivolts())
	}
}

func TestDiffusionLayerThickness(t *testing.T) {
	// 6·sqrt(2.4e-9 · 30) ≈ 1.61 mm.
	got := DiffusionLayerThickness(2.4e-9, 30)
	if math.Abs(got-1.61e-3) > 0.02e-3 {
		t.Errorf("thickness = %v m, want ≈ 1.61e-3", got)
	}
}

func TestMatchesRandlesSevcik(t *testing.T) {
	p := units.Microamperes(40)
	if !MatchesRandlesSevcik(units.Microamperes(41), p, 0.05) {
		t.Error("2.5% deviation rejected at 5% tolerance")
	}
	if MatchesRandlesSevcik(units.Microamperes(50), p, 0.05) {
		t.Error("25% deviation accepted at 5% tolerance")
	}
	if !MatchesRandlesSevcik(0, 0, 0.05) {
		t.Error("zero/zero should match")
	}
	if MatchesRandlesSevcik(units.Microamperes(1), 0, 0.05) {
		t.Error("nonzero/zero should not match")
	}
}

// Property: the Nernst ratio is monotonically increasing in potential.
func TestNernstMonotonicProperty(t *testing.T) {
	f := func(a, b int16) bool {
		// Constrain to ±1 V so exp() neither under- nor overflows.
		ea := float64(a%1000) / 1000
		eb := float64(b%1000) / 1000
		if ea >= eb {
			ea, eb = eb, ea
		}
		if ea == eb {
			return true
		}
		ra := NernstRatio(units.Volts(ea), units.Volts(0), 1, units.Celsius(25))
		rb := NernstRatio(units.Volts(eb), units.Volts(0), 1, units.Celsius(25))
		return ra < rb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Randles–Ševčík current is linear in concentration and area.
func TestRandlesSevcikLinearityProperty(t *testing.T) {
	f := func(cRaw, aRaw uint8) bool {
		c := float64(cRaw%50)/10 + 0.1 // 0.1..5 mM
		a := float64(aRaw%50)/100 + 0.01
		one := RandlesSevcik(1, units.SquareCentimeters(a), units.Millimolar(c),
			units.MillivoltsPerSecond(50), 2.4e-9, units.Celsius(25)).Amperes()
		two := RandlesSevcik(1, units.SquareCentimeters(2*a), units.Millimolar(2*c),
			units.MillivoltsPerSecond(50), 2.4e-9, units.Celsius(25)).Amperes()
		return math.Abs(two/one-4) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
