package echem

import (
	"fmt"

	"ice/internal/units"
)

// RedoxCouple describes a one-step redox pair R ⇌ O + n·e⁻ studied at
// the working electrode. The forward (anodic) direction oxidises the
// reduced species; cyclic voltammetry of ferrocene starts from the
// reduced form and sweeps positive.
type RedoxCouple struct {
	// Name identifies the couple, e.g. "ferrocene/ferrocenium".
	Name string
	// Electrons is n, the number of electrons transferred.
	Electrons int
	// FormalPotential E0' versus the reference electrode, in volts.
	FormalPotential units.Potential
	// DiffusionReduced and DiffusionOxidized are the diffusion
	// coefficients of the two forms in m²/s.
	DiffusionReduced  float64
	DiffusionOxidized float64
	// RateConstant k0 is the standard heterogeneous electron-transfer
	// rate constant in m/s. Large values (≥ 1e-3 m/s) give reversible
	// behaviour at bench scan rates.
	RateConstant float64
	// TransferCoefficient α (0 < α < 1); 0.5 for a symmetric barrier.
	TransferCoefficient float64
}

// Validate reports whether the couple's parameters are physically
// sensible.
func (rc RedoxCouple) Validate() error {
	switch {
	case rc.Electrons < 1:
		return fmt.Errorf("echem: couple %q: electrons must be ≥ 1, got %d", rc.Name, rc.Electrons)
	case rc.DiffusionReduced <= 0 || rc.DiffusionOxidized <= 0:
		return fmt.Errorf("echem: couple %q: diffusion coefficients must be positive", rc.Name)
	case rc.RateConstant <= 0:
		return fmt.Errorf("echem: couple %q: rate constant must be positive", rc.Name)
	case rc.TransferCoefficient <= 0 || rc.TransferCoefficient >= 1:
		return fmt.Errorf("echem: couple %q: transfer coefficient must lie in (0,1), got %g", rc.Name, rc.TransferCoefficient)
	}
	return nil
}

// Ferrocene returns the ferrocene/ferrocenium couple in acetonitrile,
// the analyte used in the paper's demonstration (Fc ⇌ Fc⁺ + e⁻,
// D ≈ 2.4e-9 m²/s, fast kinetics, E0' ≈ +0.40 V vs the quasi-reference).
func Ferrocene() RedoxCouple {
	return RedoxCouple{
		Name:                "ferrocene/ferrocenium",
		Electrons:           1,
		FormalPotential:     units.Volts(0.40),
		DiffusionReduced:    2.4e-9,
		DiffusionOxidized:   2.4e-9,
		RateConstant:        1e-2, // effectively reversible
		TransferCoefficient: 0.5,
	}
}

// Solution describes the liquid loaded into the electrochemical cell.
type Solution struct {
	// Solvent, e.g. "acetonitrile".
	Solvent string
	// SupportingElectrolyte, e.g. "0.1 M TBAOTf".
	SupportingElectrolyte string
	// Analyte is the redox couple under study.
	Analyte RedoxCouple
	// Concentration is the bulk analyte concentration (reduced form).
	Concentration units.Concentration
}

// FerroceneSolution returns the paper's test solution: 2 mM ferrocene
// in acetonitrile with 0.1 M tetrabutylammonium triflate.
func FerroceneSolution() Solution {
	return Solution{
		Solvent:               "acetonitrile",
		SupportingElectrolyte: "0.1 M tetrabutylammonium triflate",
		Analyte:               Ferrocene(),
		Concentration:         units.Millimolar(2),
	}
}

// String summarises the solution the way a lab notebook would.
func (s Solution) String() string {
	return fmt.Sprintf("%v %s in %s (%s)", s.Concentration, s.Analyte.Name, s.Solvent, s.SupportingElectrolyte)
}
