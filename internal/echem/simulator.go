package echem

import (
	"fmt"
	"math"
	"sync"

	"ice/internal/units"
)

// Fault identifies an abnormal experimental condition injected into a
// simulation. These are the conditions the paper's ML method is
// trained to flag.
type Fault int

// Fault values.
const (
	// FaultNone is a normal experiment.
	FaultNone Fault = iota
	// FaultDisconnectedElectrode models an open working-electrode
	// lead: no faradaic current, only instrument noise and a drifting
	// measured potential.
	FaultDisconnectedElectrode
	// FaultLowVolume models an under-filled cell: the electrode is
	// only partially wetted and the solution layer above it is thin,
	// so peaks shrink and distort as the layer depletes.
	FaultLowVolume
	// FaultNoisyContact models an intermittent lead: full faradaic
	// response buried under strongly amplified noise.
	FaultNoisyContact
)

// String names the fault for logs and dataset labels.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "normal"
	case FaultDisconnectedElectrode:
		return "disconnected-electrode"
	case FaultLowVolume:
		return "low-volume"
	case FaultNoisyContact:
		return "noisy-contact"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// CellConfig describes the simulated electrochemical cell attached to
// the potentiostat.
type CellConfig struct {
	// Solution in the cell.
	Solution Solution
	// ElectrodeArea is the working-electrode area.
	ElectrodeArea units.Area
	// Temperature of the cell.
	Temperature units.Temperature
	// UncompensatedResistance Ru in ohms (solution + contact).
	UncompensatedResistance float64
	// DoubleLayerCapacitance in F/m² of electrode area.
	DoubleLayerCapacitance float64
	// DomainThickness limits the diffusion domain (m). Zero means
	// semi-infinite; small values model a thin liquid layer.
	DomainThickness float64
	// ConvectionDelta, when > 0, models a stirred solution with a
	// Nernst diffusion layer of this thickness (m): beyond δ the
	// concentration is pinned at bulk by convection, so sweeps become
	// sigmoidal with limiting current i_L = n·F·A·D·C/δ.
	ConvectionDelta float64
	// NoiseRMS is the RMS of additive Gaussian current noise.
	NoiseRMS units.Current
	// NoiseSeed seeds the deterministic noise generator.
	NoiseSeed int64
	// Fault optionally injects an abnormal condition.
	Fault Fault
	// Substeps is the number of diffusion substeps per recorded
	// sample; zero selects the default (20).
	Substeps int
}

// DefaultCell returns the bench configuration used throughout the
// reproduction: the paper's ferrocene solution on a 0.07 cm² working
// electrode at 25 °C with small Ru and a typical double layer.
func DefaultCell() CellConfig {
	return CellConfig{
		Solution:                FerroceneSolution(),
		ElectrodeArea:           units.SquareCentimeters(0.07),
		Temperature:             units.Celsius(25),
		UncompensatedResistance: 10,
		DoubleLayerCapacitance:  0.20, // 20 µF/cm²
		NoiseRMS:                units.Nanoamperes(20),
		NoiseSeed:               1,
	}
}

// Validate checks the configuration.
func (c CellConfig) Validate() error {
	if err := c.Solution.Analyte.Validate(); err != nil {
		return err
	}
	switch {
	case c.ElectrodeArea.SquareMeters() <= 0:
		return fmt.Errorf("echem: electrode area must be positive")
	case c.Solution.Concentration.Molar() < 0:
		return fmt.Errorf("echem: concentration must be non-negative")
	case c.Temperature.Kelvin() <= 0:
		return fmt.Errorf("echem: temperature must be positive")
	case c.UncompensatedResistance < 0:
		return fmt.Errorf("echem: uncompensated resistance must be non-negative")
	case c.DomainThickness < 0:
		return fmt.Errorf("echem: domain thickness must be non-negative")
	case c.ConvectionDelta < 0:
		return fmt.Errorf("echem: convection delta must be non-negative")
	}
	return nil
}

// Point is one acquired sample of the current response.
type Point struct {
	// T is the elapsed time in seconds.
	T float64
	// E is the applied (programmed) potential.
	E units.Potential
	// I is the measured current.
	I units.Current
}

// Voltammogram is the sampled response of one technique run.
type Voltammogram struct {
	// Points in acquisition order, starting at t = 0.
	Points []Point
	// Fault records the injected condition (FaultNone for normal).
	Fault Fault
	// Label describes the run for transcripts and datasets.
	Label string
}

// Potentials returns the potential samples in volts.
func (v *Voltammogram) Potentials() []float64 {
	out := make([]float64, len(v.Points))
	for i, p := range v.Points {
		out[i] = p.E.Volts()
	}
	return out
}

// Currents returns the current samples in amperes.
func (v *Voltammogram) Currents() []float64 {
	out := make([]float64, len(v.Points))
	for i, p := range v.Points {
		out[i] = p.I.Amperes()
	}
	return out
}

// Times returns the time samples in seconds.
func (v *Voltammogram) Times() []float64 {
	out := make([]float64, len(v.Points))
	for i, p := range v.Points {
		out[i] = p.T
	}
	return out
}

// stabilityFactor is the dimensionless diffusion number D·Δt/Δx² used
// by the explicit scheme; it must stay below 0.5 for stability.
const stabilityFactor = 0.45

// maxGridPoints bounds the spatial grid so pathological configurations
// cannot exhaust memory.
const maxGridPoints = 20000

// gridPool recycles concentration-grid scratch between simulations.
// Parallel dataset generation runs thousands of simulations whose four
// grids otherwise dominate allocation.
var gridPool = sync.Pool{}

// getGrid returns a zeroed scratch slice of length n.
func getGrid(n int) []float64 {
	if p, _ := gridPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		g := (*p)[:n]
		for i := range g {
			g[i] = 0
		}
		return g
	}
	return make([]float64, n)
}

// putGrid returns a scratch slice to the pool.
func putGrid(g []float64) {
	gridPool.Put(&g)
}

// Simulate integrates the cell response to the waveform and returns
// samples+1 points (including t = 0). It is the physics engine behind
// the potentiostat simulator.
func Simulate(cfg CellConfig, w Waveform, samples int) (*Voltammogram, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil || w.Duration() <= 0 {
		return nil, fmt.Errorf("echem: waveform must have positive duration")
	}
	if samples < 2 {
		return nil, fmt.Errorf("echem: need at least 2 samples, got %d", samples)
	}

	cfg = applyFault(cfg)

	noise := newNoise(cfg.NoiseSeed)
	if cfg.Fault == FaultDisconnectedElectrode {
		return simulateOpenCircuit(cfg, w, samples, noise), nil
	}

	couple := cfg.Solution.Analyte
	nElec := float64(couple.Electrons)
	fRT := nElec * Faraday / (GasConstant * cfg.Temperature.Kelvin())
	area := cfg.ElectrodeArea.SquareMeters()
	bulk := cfg.Solution.Concentration.MolesPerCubicMeter()
	dR, dO := couple.DiffusionReduced, couple.DiffusionOxidized
	dMax := math.Max(dR, dO)
	e0 := couple.FormalPotential.Volts()
	alpha := couple.TransferCoefficient
	k0 := couple.RateConstant

	total := w.Duration()
	sub := cfg.Substeps
	if sub <= 0 {
		sub = 20
	}
	dt := total / float64(samples)
	dts := dt / float64(sub)
	dx := math.Sqrt(dMax * dts / stabilityFactor)

	domain := DiffusionLayerThickness(dMax, total)
	thinLayer := false
	if cfg.DomainThickness > 0 && cfg.DomainThickness < domain {
		domain = cfg.DomainThickness
		thinLayer = true
	}
	// Convection dominates over a sealed thin layer: a stirred cell is
	// bulk-pinned at δ rather than sealed.
	finiteDomain := thinLayer
	if cfg.ConvectionDelta > 0 && cfg.ConvectionDelta < domain {
		domain = cfg.ConvectionDelta
		thinLayer = false
		finiteDomain = true
	}
	n := int(domain/dx) + 2
	if finiteDomain && domain > 3*dx {
		// Snap the grid so the outer boundary lands exactly on the
		// physical domain edge; flooring keeps dx' ≥ dx, preserving
		// the explicit scheme's stability margin.
		n = int(domain/dx) + 1
		dx = domain / float64(n-1)
	}
	if n < 4 {
		n = 4
	}
	if n > maxGridPoints {
		n = maxGridPoints
	}

	lamR := dR * dts / (dx * dx)
	lamO := dO * dts / (dx * dx)

	cR := getGrid(n)
	cO := getGrid(n)
	nR := getGrid(n)
	nO := getGrid(n)
	defer func() {
		putGrid(cR)
		putGrid(cO)
		putGrid(nR)
		putGrid(nO)
	}()
	for i := range cR {
		cR[i] = bulk
	}

	points := make([]Point, 0, samples+1)
	points = append(points, Point{T: 0, E: w.Potential(0), I: noiseCurrent(noise, cfg)})

	iPrev := 0.0
	ePrev := w.Potential(0).Volts()

	// The electrode-boundary solver is hoisted out of the substep loop:
	// it reads the per-substep state (surface-adjacent concentrations,
	// charging current) through captured variables, so only the scalars
	// below change between calls and no closure is re-allocated per
	// substep. boundary evaluates the Butler–Volmer/diffusion balance at
	// a trial interfacial potential — solving the 2×2 linear system
	//   (D_R/dx + ka)·C_R0 − kc·C_O0 = D_R/dx·C_R1
	//   −ka·C_R0 + (D_O/dx + kc)·C_O0 = D_O/dx·C_O1
	// — and returns surface concentrations, rate constants and total
	// current.
	gR := dR / dx
	gO := dO / dx
	var iC float64
	boundary := func(eInt float64) (cR0, cO0, ka, kc, iTot float64) {
		eta := eInt - e0
		ka = k0 * math.Exp((1-alpha)*fRT*eta)
		kc = k0 * math.Exp(-alpha*fRT*eta)
		a11 := gR + ka
		a12 := -kc
		a21 := -ka
		a22 := gO + kc
		b1 := gR * nR[1]
		b2 := gO * nO[1]
		det := a11*a22 - a12*a21
		cR0 = (b1*a22 - a12*b2) / det
		cO0 = (a11*b2 - b1*a21) / det
		if cR0 < 0 {
			cR0 = 0
		}
		if cO0 < 0 {
			cO0 = 0
		}
		iTot = nElec*Faraday*area*(ka*cR0-kc*cO0) + iC
		return cR0, cO0, ka, kc, iTot
	}
	for s := 1; s <= samples; s++ {
		var iTotal float64
		for k := 0; k < sub; k++ {
			tNow := (float64((s-1)*sub+k) + 1) * dts
			eApp := w.Potential(tNow).Volts()

			// Diffusion step (FTCS) on interior nodes.
			for i := 1; i < n-1; i++ {
				nR[i] = cR[i] + lamR*(cR[i+1]-2*cR[i]+cR[i-1])
				nO[i] = cO[i] + lamO*(cO[i+1]-2*cO[i]+cO[i-1])
			}
			// Outer boundary: bulk for semi-infinite, zero-flux mirror
			// for a thin layer.
			if thinLayer {
				nR[n-1] = nR[n-2]
				nO[n-1] = nO[n-2]
			} else {
				nR[n-1] = bulk
				nO[n-1] = 0
			}

			// Electrode boundary via the hoisted solver. The interfacial
			// potential couples back through the ohmic drop
			// (E_int = E_app − i·Ru), so with Ru > 0 the boundary is
			// found by bisection — the explicit one-step-lag form
			// oscillates at large Ru·di/dE gain.
			dEdt := (eApp - ePrev) / dts
			iC = cfg.DoubleLayerCapacitance * area * dEdt

			var cR0, cO0, ka, kc float64
			if cfg.UncompensatedResistance == 0 {
				cR0, cO0, ka, kc, _ = boundary(eApp)
			} else {
				// The faradaic current is monotone increasing in the
				// interfacial potential, so E_int + Ru·i(E_int) = E_app
				// has a unique root; bisect within the diffusion-
				// limited current bounds.
				ru := cfg.UncompensatedResistance
				iMax := nElec*Faraday*area*(gR*nR[1]+gO*nO[1]) + math.Abs(iC)
				lo := eApp - ru*iMax
				hi := eApp + ru*iMax
				for it := 0; it < 60; it++ {
					mid := (lo + hi) / 2
					_, _, _, _, iTot := boundary(mid)
					if mid+ru*iTot < eApp {
						lo = mid
					} else {
						hi = mid
					}
					if hi-lo < 1e-8 {
						break
					}
				}
				cR0, cO0, ka, kc, _ = boundary((lo + hi) / 2)
			}
			nR[0], nO[0] = cR0, cO0

			cR, nR = nR, cR
			cO, nO = nO, cO

			// Anodic-positive current: faradaic + double-layer charging.
			flux := ka*cR[0] - kc*cO[0]
			iF := nElec * Faraday * area * flux
			iPrev = iF + iC
			iTotal = iPrev
			ePrev = eApp
		}
		t := float64(s) * dt
		i := iTotal + noiseCurrent(noise, cfg).Amperes()
		points = append(points, Point{T: t, E: w.Potential(t), I: units.Amperes(i)})
	}

	return &Voltammogram{Points: points, Fault: cfg.Fault, Label: cfg.Fault.String()}, nil
}

// Effective returns the configuration after fault adjustments have
// been applied — the parameters the physics actually runs with. It is
// what semi-analytic techniques (e.g. chronopotentiometry) use to stay
// consistent with the diffusion simulator's fault handling. Apply it
// at most once: the adjustments compound.
func (c CellConfig) Effective() CellConfig { return applyFault(c) }

// applyFault adjusts the cell configuration for the injected condition.
func applyFault(cfg CellConfig) CellConfig {
	switch cfg.Fault {
	case FaultLowVolume:
		// Partially wetted electrode over a thin solution layer.
		cfg.ElectrodeArea = units.SquareMeters(cfg.ElectrodeArea.SquareMeters() * 0.35)
		if cfg.DomainThickness == 0 || cfg.DomainThickness > 40e-6 {
			cfg.DomainThickness = 40e-6
		}
		cfg.NoiseRMS = units.Amperes(cfg.NoiseRMS.Amperes() * 3)
	case FaultNoisyContact:
		cfg.NoiseRMS = units.Amperes(cfg.NoiseRMS.Amperes()*80 + 1e-7)
	}
	return cfg
}

// simulateOpenCircuit produces the signature of a disconnected working
// electrode: noise-scale current and a drifting measured potential.
func simulateOpenCircuit(cfg CellConfig, w Waveform, samples int, noise *noiseGen) *Voltammogram {
	points := make([]Point, 0, samples+1)
	dur := w.Duration()
	drift := 0.0
	for s := 0; s <= samples; s++ {
		t := dur * float64(s) / float64(samples)
		drift += noise.gauss() * 0.002
		e := w.Potential(t).Volts() + drift
		i := noise.gauss() * math.Max(cfg.NoiseRMS.Amperes(), 1e-9)
		points = append(points, Point{T: t, E: units.Volts(e), I: units.Amperes(i)})
	}
	return &Voltammogram{Points: points, Fault: FaultDisconnectedElectrode, Label: FaultDisconnectedElectrode.String()}
}

func noiseCurrent(g *noiseGen, cfg CellConfig) units.Current {
	rms := cfg.NoiseRMS.Amperes()
	if rms <= 0 {
		return 0
	}
	return units.Amperes(g.gauss() * rms)
}
