package echem

import "math/rand"

// noiseGen produces deterministic Gaussian noise for reproducible
// simulated measurements. Every simulation seeds its own generator so
// parallel runs never contend or perturb each other.
type noiseGen struct {
	rng *rand.Rand
}

func newNoise(seed int64) *noiseGen {
	if seed == 0 {
		seed = 1
	}
	return &noiseGen{rng: rand.New(rand.NewSource(seed))}
}

// gauss returns a standard-normal sample.
func (g *noiseGen) gauss() float64 { return g.rng.NormFloat64() }
