package echem

import (
	"fmt"
	"math"

	"ice/internal/units"
)

// SWVProgram describes square-wave voltammetry: a staircase from Start
// to End in Step increments, with a symmetric square pulse of
// ±Amplitude superimposed at Frequency. The current is sampled at the
// end of each half-cycle; the forward−reverse difference peaks sharply
// at E½, giving far better sensitivity than a linear sweep.
type SWVProgram struct {
	// Start and End bound the staircase.
	Start, End units.Potential
	// Step is the staircase increment per cycle (positive).
	Step units.Potential
	// Amplitude is the square-pulse half-amplitude.
	Amplitude units.Potential
	// Frequency is the square-wave frequency in Hz.
	Frequency float64
}

// DefaultSWV returns bench-typical parameters: 4 mV steps, 25 mV
// amplitude, 25 Hz.
func DefaultSWV(start, end units.Potential) SWVProgram {
	return SWVProgram{
		Start: start, End: end,
		Step:      units.Millivolts(4),
		Amplitude: units.Millivolts(25),
		Frequency: 25,
	}
}

// Validate checks the program.
func (p SWVProgram) Validate() error {
	switch {
	case p.Step.Volts() <= 0:
		return fmt.Errorf("echem: SWV step must be positive, got %v", p.Step)
	case p.Amplitude.Volts() <= 0:
		return fmt.Errorf("echem: SWV amplitude must be positive, got %v", p.Amplitude)
	case p.Frequency <= 0:
		return fmt.Errorf("echem: SWV frequency must be positive, got %g", p.Frequency)
	case p.Start == p.End:
		return fmt.Errorf("echem: SWV endpoints must differ")
	}
	return nil
}

// Steps returns the number of staircase cycles.
func (p SWVProgram) Steps() int {
	span := math.Abs(p.End.Volts() - p.Start.Volts())
	return int(math.Ceil(span / p.Step.Volts()))
}

// Waveform renders the pulsed staircase. Each cycle holds
// E_stair + A for the first half-period and E_stair − A for the
// second.
func (p SWVProgram) Waveform() (Waveform, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	half := 1 / (2 * p.Frequency)
	dir := 1.0
	if p.End.Volts() < p.Start.Volts() {
		dir = -1
	}
	steps := p.Steps()
	segs := make([]Segment, 0, 2*steps)
	for k := 0; k < steps; k++ {
		stair := p.Start.Volts() + dir*float64(k)*p.Step.Volts()
		fwd := units.Volts(stair + dir*p.Amplitude.Volts())
		rev := units.Volts(stair - dir*p.Amplitude.Volts())
		segs = append(segs,
			Segment{From: fwd, To: fwd, Seconds: half},
			Segment{From: rev, To: rev, Seconds: half},
		)
	}
	return NewPiecewise(segs...)
}

// SWVPoint is one differential sample.
type SWVPoint struct {
	// Stair is the staircase (centre) potential in volts.
	Stair float64
	// Forward and Reverse are the half-cycle end currents in amperes.
	Forward, Reverse float64
	// Delta is Forward − Reverse, the SWV signal.
	Delta float64
}

// SimulateSWV runs the program against the cell and returns the
// differential voltammogram. The simulator samples exactly at each
// half-cycle end (2 samples per staircase cycle).
func SimulateSWV(cfg CellConfig, p SWVProgram) ([]SWVPoint, error) {
	w, err := p.Waveform()
	if err != nil {
		return nil, err
	}
	steps := p.Steps()
	vg, err := Simulate(cfg, w, 2*steps)
	if err != nil {
		return nil, err
	}
	dir := 1.0
	if p.End.Volts() < p.Start.Volts() {
		dir = -1
	}
	out := make([]SWVPoint, steps)
	for k := 0; k < steps; k++ {
		// Points[0] is t=0; half-cycle ends land at indices 1, 2, ….
		fwd := vg.Points[2*k+1].I.Amperes()
		rev := vg.Points[2*k+2].I.Amperes()
		out[k] = SWVPoint{
			Stair:   p.Start.Volts() + dir*float64(k)*p.Step.Volts(),
			Forward: fwd,
			Reverse: rev,
			Delta:   fwd - rev,
		}
	}
	return out, nil
}

// SWVPeak returns the differential peak potential and height.
func SWVPeak(points []SWVPoint) (peakE, peakDelta float64) {
	peakDelta = math.Inf(-1)
	for _, p := range points {
		if p.Delta > peakDelta {
			peakDelta = p.Delta
			peakE = p.Stair
		}
	}
	return peakE, peakDelta
}
