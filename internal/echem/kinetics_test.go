package echem

import (
	"math"
	"testing"

	"ice/internal/units"
)

// peaksOf returns the anodic/cathodic peak potentials of a simulated
// CV at the given rate and rate constant.
func peaksOf(t *testing.T, k0 float64, rate units.ScanRate, samples int) (epa, epc float64) {
	t.Helper()
	cfg := DefaultCell()
	cfg.NoiseRMS = 0
	cfg.UncompensatedResistance = 0
	cfg.DoubleLayerCapacitance = 0
	cfg.Solution.Analyte.RateConstant = k0
	prog := CVProgram{
		Ei: units.Volts(0.05), E1: units.Volts(0.8), E2: units.Volts(0.05), Ef: units.Volts(0.05),
		Rate: rate, Cycles: 1,
	}
	w, err := prog.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	vg, err := Simulate(cfg, w, samples)
	if err != nil {
		t.Fatal(err)
	}
	ipa, ipc := math.Inf(-1), math.Inf(1)
	for _, p := range vg.Points {
		if p.I.Amperes() > ipa {
			ipa, epa = p.I.Amperes(), p.E.Volts()
		}
		if p.I.Amperes() < ipc {
			ipc, epc = p.I.Amperes(), p.E.Volts()
		}
	}
	return epa, epc
}

// TestQuasiReversibleKineticsWidenPeaks verifies Nicholson's classical
// result: slowing the electron-transfer rate constant pushes the
// system from reversible (ΔEp ≈ 57 mV, rate-independent) to
// quasi-reversible (ΔEp grows), and for a quasi-reversible couple ΔEp
// grows with scan rate.
func TestQuasiReversibleKineticsWidenPeaks(t *testing.T) {
	rate := units.MillivoltsPerSecond(50)
	// Fast kinetics: reversible separation.
	epaF, epcF := peaksOf(t, 1e-2, rate, 1500)
	dEpFast := (epaF - epcF) * 1000
	if dEpFast < 50 || dEpFast > 75 {
		t.Fatalf("fast-kinetics ΔEp = %.1f mV, want ≈ 57", dEpFast)
	}
	// Sluggish kinetics: clearly wider.
	epaS, epcS := peaksOf(t, 5e-6, rate, 1500)
	dEpSlow := (epaS - epcS) * 1000
	if dEpSlow < dEpFast+30 {
		t.Errorf("slow-kinetics ΔEp = %.1f mV, want well above %.1f", dEpSlow, dEpFast)
	}
	// Peaks shift symmetrically outwards (α = 0.5).
	if epaS <= epaF {
		t.Errorf("slow anodic peak %.3f V not shifted positive of fast %.3f V", epaS, epaF)
	}
	if epcS >= epcF {
		t.Errorf("slow cathodic peak %.3f V not shifted negative of fast %.3f V", epcS, epcF)
	}
}

func TestQuasiReversibleSeparationGrowsWithScanRate(t *testing.T) {
	const k0 = 2e-5 // quasi-reversible regime
	epa1, epc1 := peaksOf(t, k0, units.MillivoltsPerSecond(20), 1500)
	epa2, epc2 := peaksOf(t, k0, units.MillivoltsPerSecond(500), 1500)
	d1 := (epa1 - epc1) * 1000
	d2 := (epa2 - epc2) * 1000
	if d2 < d1+15 {
		t.Errorf("ΔEp(500 mV/s) = %.1f mV not clearly above ΔEp(20 mV/s) = %.1f mV", d2, d1)
	}
}

func TestReversibleSeparationRateIndependent(t *testing.T) {
	const k0 = 1e-2 // reversible regime
	epa1, epc1 := peaksOf(t, k0, units.MillivoltsPerSecond(20), 2000)
	epa2, epc2 := peaksOf(t, k0, units.MillivoltsPerSecond(200), 2000)
	d1 := (epa1 - epc1) * 1000
	d2 := (epa2 - epc2) * 1000
	if math.Abs(d2-d1) > 10 {
		t.Errorf("reversible ΔEp moved %.1f → %.1f mV across a 10× rate change", d1, d2)
	}
}

// TestUncompensatedResistanceWidensPeaks: ohmic drop distorts the CV
// like slow kinetics — the interface sees less than the applied
// potential, so peaks spread apart and flatten.
func TestUncompensatedResistanceWidensPeaks(t *testing.T) {
	run := func(ru float64) (dEp, ipa float64) {
		cfg := DefaultCell()
		cfg.NoiseRMS = 0
		cfg.DoubleLayerCapacitance = 0
		cfg.UncompensatedResistance = ru
		prog := CVProgram{
			Ei: units.Volts(0.05), E1: units.Volts(0.8), E2: units.Volts(0.05), Ef: units.Volts(0.05),
			Rate: units.MillivoltsPerSecond(50), Cycles: 1,
		}
		w, err := prog.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		vg, err := Simulate(cfg, w, 1500)
		if err != nil {
			t.Fatal(err)
		}
		max, min := math.Inf(-1), math.Inf(1)
		var epa, epc float64
		for _, p := range vg.Points {
			if p.I.Amperes() > max {
				max, epa = p.I.Amperes(), p.E.Volts()
			}
			if p.I.Amperes() < min {
				min, epc = p.I.Amperes(), p.E.Volts()
			}
		}
		return (epa - epc) * 1000, max
	}
	dEpClean, ipClean := run(0)
	// 1 kΩ at ~40 µA is a ~40 mV error — clearly visible.
	dEpOhmic, ipOhmic := run(1000)
	if dEpOhmic < dEpClean+20 {
		t.Errorf("ΔEp with 1 kΩ = %.1f mV, not clearly above clean %.1f mV", dEpOhmic, dEpClean)
	}
	if ipOhmic >= ipClean {
		t.Errorf("ohmic peak %v not attenuated below clean %v", ipOhmic, ipClean)
	}
}

// TestTransferCoefficientAsymmetry: α ≠ 0.5 makes the peak shifts
// asymmetric for a sluggish couple.
func TestTransferCoefficientAsymmetry(t *testing.T) {
	shiftFor := func(alpha float64) (anodic, cathodic float64) {
		cfg := DefaultCell()
		cfg.NoiseRMS = 0
		cfg.UncompensatedResistance = 0
		cfg.DoubleLayerCapacitance = 0
		cfg.Solution.Analyte.RateConstant = 5e-6
		cfg.Solution.Analyte.TransferCoefficient = alpha
		prog := CVProgram{
			Ei: units.Volts(-0.1), E1: units.Volts(0.9), E2: units.Volts(-0.1), Ef: units.Volts(-0.1),
			Rate: units.MillivoltsPerSecond(50), Cycles: 1,
		}
		w, err := prog.Waveform()
		if err != nil {
			t.Fatal(err)
		}
		vg, err := Simulate(cfg, w, 1500)
		if err != nil {
			t.Fatal(err)
		}
		e0 := cfg.Solution.Analyte.FormalPotential.Volts()
		ipa, ipc := math.Inf(-1), math.Inf(1)
		var epa, epc float64
		for _, p := range vg.Points {
			if p.I.Amperes() > ipa {
				ipa, epa = p.I.Amperes(), p.E.Volts()
			}
			if p.I.Amperes() < ipc {
				ipc, epc = p.I.Amperes(), p.E.Volts()
			}
		}
		return epa - e0, e0 - epc
	}
	// α = 0.3: the anodic branch is favoured ((1−α) = 0.7 in the
	// anodic exponent), so the anodic peak needs less overpotential
	// than the cathodic one.
	an, ca := shiftFor(0.3)
	if an >= ca {
		t.Errorf("α=0.3: anodic shift %.0f mV not below cathodic %.0f mV", an*1000, ca*1000)
	}
	// α = 0.7 mirrors it.
	an2, ca2 := shiftFor(0.7)
	if an2 <= ca2 {
		t.Errorf("α=0.7: anodic shift %.0f mV not above cathodic %.0f mV", an2*1000, ca2*1000)
	}
}
