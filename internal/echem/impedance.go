package echem

import (
	"fmt"
	"math"
	"math/cmplx"

	"ice/internal/units"
)

// RandlesCircuit is the equivalent circuit used to model the cell's
// small-signal impedance for electrochemical impedance spectroscopy
// (EIS): solution resistance Rs in series with the double-layer
// capacitance Cdl in parallel with the charge-transfer branch
// (charge-transfer resistance Rct plus Warburg diffusion element).
type RandlesCircuit struct {
	// SolutionResistance Rs in ohms.
	SolutionResistance float64
	// ChargeTransferResistance Rct in ohms.
	ChargeTransferResistance float64
	// DoubleLayerCapacitance Cdl in farads.
	DoubleLayerCapacitance float64
	// WarburgCoefficient σ in Ω·s^(-1/2).
	WarburgCoefficient float64
}

// Impedance returns the complex impedance at angular frequency ω
// (rad/s):
//
//	Z(ω) = Rs + 1 / ( jωCdl + 1/(Rct + σ·ω^(-1/2)·(1 − j)) )
func (rc RandlesCircuit) Impedance(omega float64) complex128 {
	if omega <= 0 {
		return complex(math.Inf(1), 0)
	}
	warburg := complex(rc.WarburgCoefficient/math.Sqrt(omega), -rc.WarburgCoefficient/math.Sqrt(omega))
	faradaic := complex(rc.ChargeTransferResistance, 0) + warburg
	ydl := complex(0, omega*rc.DoubleLayerCapacitance)
	return complex(rc.SolutionResistance, 0) + 1/(ydl+1/faradaic)
}

// CharacteristicFrequency returns the semicircle apex frequency
// f_max = 1/(2π·Rct·Cdl) in Hz, the diagnostic EIS readout.
func (rc RandlesCircuit) CharacteristicFrequency() float64 {
	if rc.ChargeTransferResistance <= 0 || rc.DoubleLayerCapacitance <= 0 {
		return math.Inf(1)
	}
	return 1 / (2 * math.Pi * rc.ChargeTransferResistance * rc.DoubleLayerCapacitance)
}

// CellRandlesCircuit derives the equivalent circuit from a cell
// configuration, evaluated at the half-wave potential where the
// oxidised and reduced surface concentrations are equal (C*/2 each):
//
//	Rct = RT / (n·F·i0·A),  i0 = F·k0·(C*/2)      (α = 0.5 symmetric)
//	σ   = RT / (n²F²·A·√2) · (1/(C_O√D_O) + 1/(C_R√D_R))
func CellRandlesCircuit(cfg CellConfig) (RandlesCircuit, error) {
	if err := cfg.Validate(); err != nil {
		return RandlesCircuit{}, err
	}
	eff := cfg.Effective()
	couple := eff.Solution.Analyte
	n := float64(couple.Electrons)
	area := eff.ElectrodeArea.SquareMeters()
	bulk := eff.Solution.Concentration.MolesPerCubicMeter()
	rt := GasConstant * eff.Temperature.Kelvin()

	if eff.Fault == FaultDisconnectedElectrode || bulk <= 0 {
		// Open circuit: essentially capacitive leakage only.
		return RandlesCircuit{
			SolutionResistance:       1e9,
			ChargeTransferResistance: 1e12,
			DoubleLayerCapacitance:   1e-12,
			WarburgCoefficient:       0,
		}, nil
	}

	half := bulk / 2
	i0 := Faraday * couple.RateConstant * half // A/m² exchange current density
	rct := rt / (n * Faraday * i0 * area)
	sigma := rt / (n * n * Faraday * Faraday * area * math.Sqrt2) *
		(1/(half*math.Sqrt(couple.DiffusionOxidized)) + 1/(half*math.Sqrt(couple.DiffusionReduced)))
	rs := eff.UncompensatedResistance
	if rs <= 0 {
		rs = 1
	}
	cdl := eff.DoubleLayerCapacitance * area
	if cdl <= 0 {
		cdl = 1e-7
	}
	return RandlesCircuit{
		SolutionResistance:       rs,
		ChargeTransferResistance: rct,
		DoubleLayerCapacitance:   cdl,
		WarburgCoefficient:       sigma,
	}, nil
}

// ImpedancePoint is one EIS spectrum sample.
type ImpedancePoint struct {
	// Frequency in Hz.
	Frequency float64
	// Zre and Zim are the real and imaginary impedance parts in ohms
	// (Zim is negative for capacitive behaviour).
	Zre float64
	Zim float64
}

// Magnitude returns |Z| in ohms.
func (p ImpedancePoint) Magnitude() float64 { return math.Hypot(p.Zre, p.Zim) }

// Phase returns the phase angle in degrees.
func (p ImpedancePoint) Phase() float64 {
	return math.Atan2(p.Zim, p.Zre) * 180 / math.Pi
}

// EISSweepConfig describes a logarithmic frequency sweep.
type EISSweepConfig struct {
	// FreqMin and FreqMax bound the sweep in Hz.
	FreqMin, FreqMax float64
	// PointsPerDecade sets resolution; minimum 1.
	PointsPerDecade int
	// AmplitudeRMS is the excitation amplitude (information only; the
	// small-signal model is linear).
	AmplitudeRMS units.Potential
	// NoiseFraction adds relative Gaussian noise to each point.
	NoiseFraction float64
	// NoiseSeed seeds the noise generator.
	NoiseSeed int64
}

// Validate checks the sweep parameters.
func (c EISSweepConfig) Validate() error {
	switch {
	case c.FreqMin <= 0 || c.FreqMax <= 0:
		return fmt.Errorf("echem: EIS frequencies must be positive")
	case c.FreqMin >= c.FreqMax:
		return fmt.Errorf("echem: EIS needs FreqMin < FreqMax, got %g ≥ %g", c.FreqMin, c.FreqMax)
	case c.PointsPerDecade < 1:
		return fmt.Errorf("echem: EIS needs ≥ 1 point per decade")
	case c.NoiseFraction < 0:
		return fmt.Errorf("echem: EIS noise fraction must be non-negative")
	}
	return nil
}

// SimulateEIS sweeps the cell's Randles circuit over frequency and
// returns the spectrum from high to low frequency (the instrument
// convention).
func SimulateEIS(cellCfg CellConfig, sweep EISSweepConfig) ([]ImpedancePoint, error) {
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	rc, err := CellRandlesCircuit(cellCfg)
	if err != nil {
		return nil, err
	}
	noise := newNoise(sweep.NoiseSeed)

	decades := math.Log10(sweep.FreqMax / sweep.FreqMin)
	n := int(math.Ceil(decades*float64(sweep.PointsPerDecade))) + 1
	points := make([]ImpedancePoint, 0, n)
	for i := 0; i < n; i++ {
		logf := math.Log10(sweep.FreqMax) - decades*float64(i)/float64(n-1)
		f := math.Pow(10, logf)
		z := rc.Impedance(2 * math.Pi * f)
		re, im := real(z), imag(z)
		if sweep.NoiseFraction > 0 {
			mag := cmplx.Abs(z)
			re += noise.gauss() * sweep.NoiseFraction * mag
			im += noise.gauss() * sweep.NoiseFraction * mag
		}
		points = append(points, ImpedancePoint{Frequency: f, Zre: re, Zim: im})
	}
	return points, nil
}
