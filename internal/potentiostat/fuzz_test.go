package potentiostat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseMPT ensures arbitrary bytes never panic the measurement
// parser.
func FuzzParseMPT(f *testing.F) {
	var good bytes.Buffer
	WriteMPTHeader(&good, "CV", "normal", 2)
	WriteMPTRecords(&good, sampleRecords())
	f.Add(good.String())
	f.Add("")
	f.Add("EC-Lab ASCII FILE (ICE simulated)\n")
	f.Add("EC-Lab ASCII FILE (ICE simulated)\nNb of data points : -9\nmode\tt\n2\t1\t2\t3\t4\n")
	f.Fuzz(func(t *testing.T, input string) {
		mf, err := ParseMPT(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted files must carry internally consistent records.
		for i, r := range mf.Records {
			if i > 0 && r.T < mf.Records[i-1].T-1e9 {
				// wildly non-monotonic time is fine to parse; just
				// ensure no panic touching fields
				_ = r
			}
		}
	})
}

// FuzzDecodeBinary ensures arbitrary bytes never panic or over-allocate
// the binary record decoder.
func FuzzDecodeBinary(f *testing.F) {
	var good bytes.Buffer
	EncodeBinary(&good, sampleRecords())
	f.Add(good.Bytes())
	f.Add([]byte("VMP3"))
	f.Add([]byte{})
	f.Add(append([]byte("VMP3"), 0xFF, 0xFF, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, input []byte) {
		recs, err := DecodeBinary(bytes.NewReader(input))
		if err == nil && len(input) < 12 && len(recs) > 0 {
			t.Fatalf("decoded %d records from %d bytes", len(recs), len(input))
		}
	})
}

// FuzzParseEIS ensures the EIS parser is panic-free.
func FuzzParseEIS(f *testing.F) {
	var good bytes.Buffer
	WriteEIS(&good, "normal", nil)
	f.Add(good.String())
	f.Add("EC-Lab EIS ASCII FILE (ICE simulated)\n")
	f.Fuzz(func(t *testing.T, input string) {
		ParseEIS(strings.NewReader(input))
	})
}
