package potentiostat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseMPT ensures arbitrary bytes never panic the measurement
// parser.
func FuzzParseMPT(f *testing.F) {
	var good bytes.Buffer
	WriteMPTHeader(&good, "CV", "normal", 2)
	WriteMPTRecords(&good, sampleRecords())
	f.Add(good.String())
	f.Add("")
	f.Add("EC-Lab ASCII FILE (ICE simulated)\n")
	f.Add("EC-Lab ASCII FILE (ICE simulated)\nNb of data points : -9\nmode\tt\n2\t1\t2\t3\t4\n")
	f.Fuzz(func(t *testing.T, input string) {
		mf, err := ParseMPT(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted files must carry internally consistent records.
		for i, r := range mf.Records {
			if i > 0 && r.T < mf.Records[i-1].T-1e9 {
				// wildly non-monotonic time is fine to parse; just
				// ensure no panic touching fields
				_ = r
			}
		}
	})
}

// FuzzStreamParser differentially fuzzes the incremental MPT parser
// against the offline one: for any input and any chunking, when both
// accept the bytes they must produce identical record sets, and the
// streaming parser must never panic.
func FuzzStreamParser(f *testing.F) {
	var good bytes.Buffer
	WriteMPTHeader(&good, "CV", "normal", 2)
	WriteMPTRecords(&good, sampleRecords())
	f.Add(good.String(), 3)
	f.Add(good.String(), 1)
	f.Add("", 1)
	f.Add("EC-Lab ASCII FILE (ICE simulated)\nmode\tt\n2\t1\t2\t3\t4\n", 5)
	f.Add("EC-Lab ASCII FILE (ICE simulated)\nLabel : x\nmode\tt\n2\t1\t2\tbad\t4\n2\t1\t2\t3\t4", 7)
	f.Fuzz(func(t *testing.T, input string, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		p := &StreamParser{}
		streamErr := false
		for off := 0; off < len(input); off += chunk {
			end := off + chunk
			if end > len(input) {
				end = len(input)
			}
			if _, err := p.Feed([]byte(input[off:end])); err != nil {
				streamErr = true
				break
			}
		}
		mf, err := ParseMPT(strings.NewReader(input))
		if err != nil || streamErr {
			return
		}
		// ParseMPT reads a final unterminated line; the stream parser
		// buffers it awaiting more bytes, so only compare the records
		// completed by a newline.
		want := mf.Records
		if len(input) > 0 && input[len(input)-1] != '\n' && len(want) > 0 {
			want = want[:len(want)-1]
		}
		got := p.Records()
		if len(got) > len(mf.Records) {
			t.Fatalf("stream parsed %d records, offline only %d", len(got), len(mf.Records))
		}
		if len(got) < len(want) {
			t.Fatalf("stream parsed %d records, offline %d (terminated rows)", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d diverges: stream %+v offline %+v", i, got[i], want[i])
			}
		}
	})
}

// FuzzDecodeBinary ensures arbitrary bytes never panic or over-allocate
// the binary record decoder.
func FuzzDecodeBinary(f *testing.F) {
	var good bytes.Buffer
	EncodeBinary(&good, sampleRecords())
	f.Add(good.Bytes())
	f.Add([]byte("VMP3"))
	f.Add([]byte{})
	f.Add(append([]byte("VMP3"), 0xFF, 0xFF, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, input []byte) {
		recs, err := DecodeBinary(bytes.NewReader(input))
		if err == nil && len(input) < 12 && len(recs) > 0 {
			t.Fatalf("decoded %d records from %d bytes", len(recs), len(input))
		}
	})
}

// FuzzParseEIS ensures the EIS parser is panic-free.
func FuzzParseEIS(f *testing.F) {
	var good bytes.Buffer
	WriteEIS(&good, "normal", nil)
	f.Add(good.String())
	f.Add("EC-Lab EIS ASCII FILE (ICE simulated)\n")
	f.Fuzz(func(t *testing.T, input string) {
		ParseEIS(strings.NewReader(input))
	})
}
