package potentiostat

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDirSinkWritesIntoDirectory(t *testing.T) {
	dir := t.TempDir()
	sink := DirSink{Dir: dir}
	w, err := sink.Create("CV_ch1_run001.mpt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(filepath.Join(dir, "CV_ch1_run001.mpt"))
	if err != nil || string(data) != "data" {
		t.Errorf("file = %q, %v", data, err)
	}
}

func TestDirSinkSanitisesNames(t *testing.T) {
	dir := t.TempDir()
	sink := DirSink{Dir: dir}
	// Path traversal is confined to the directory.
	w, err := sink.Create("../../etc/evil.mpt")
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := os.Stat(filepath.Join(dir, "evil.mpt")); err != nil {
		t.Errorf("sanitised file not in sink dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "evil.mpt")); err == nil {
		t.Error("traversal escaped the sink directory")
	}
	// Degenerate names rejected.
	for _, bad := range []string{".", "..", "/"} {
		if _, err := sink.Create(bad); err == nil {
			t.Errorf("Create(%q) accepted", bad)
		}
	}
}

func TestMemSinkFind(t *testing.T) {
	sink := NewMemSink()
	w, _ := sink.Create("CV_ch1_run007.mpt")
	w.Write([]byte("payload"))
	w.Close()
	data, name, ok := sink.Find("run007")
	if !ok || name != "CV_ch1_run007.mpt" || string(data) != "payload" {
		t.Errorf("Find = %q %q %v", data, name, ok)
	}
	if _, _, ok := sink.Find("absent"); ok {
		t.Error("Find matched an absent file")
	}
	if _, ok := sink.Bytes("ghost"); ok {
		t.Error("Bytes matched an absent file")
	}
}

func TestOCVAndCPDurations(t *testing.T) {
	if got := (OCV{Seconds: 12}).Duration(); got != 12 {
		t.Errorf("OCV duration = %v", got)
	}
	if got := (CP{Seconds: 7}).Duration(); got != 7 {
		t.Errorf("CP duration = %v", got)
	}
}
