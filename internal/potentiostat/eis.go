package potentiostat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ice/internal/echem"
	"ice/internal/units"
)

// EIS is the electrochemical impedance spectroscopy technique: a
// logarithmic frequency sweep returning the complex impedance
// spectrum. It is one of the "other electrochemical testing
// techniques" the paper's future work targets.
type EIS struct {
	// FreqMinHz and FreqMaxHz bound the sweep.
	FreqMinHz, FreqMaxHz float64
	// PointsPerDecade sets spectral resolution; zero selects 10.
	PointsPerDecade int
	// AmplitudeMV is the excitation amplitude in mV RMS; zero selects
	// 10 mV.
	AmplitudeMV float64
}

// DefaultEIS returns a 100 kHz → 0.1 Hz sweep at 10 points/decade.
func DefaultEIS() EIS {
	return EIS{FreqMinHz: 0.1, FreqMaxHz: 100_000, PointsPerDecade: 10, AmplitudeMV: 10}
}

// Name implements Technique.
func (EIS) Name() string { return "PEIS" }

// Validate implements Technique.
func (e EIS) Validate() error {
	return e.sweep(0).Validate()
}

// Samples implements Technique.
func (e EIS) Samples() int {
	s := e.sweep(0)
	if s.FreqMin <= 0 || s.FreqMax <= s.FreqMin {
		return 0
	}
	decades := 0.0
	for f := s.FreqMin; f < s.FreqMax; f *= 10 {
		decades++
	}
	return int(decades)*s.PointsPerDecade + 1
}

// Duration implements Technique. A real sweep spends ~5 periods per
// point; the estimate is dominated by the lowest decade.
func (e EIS) Duration() float64 {
	if e.FreqMinHz <= 0 {
		return 0
	}
	return 5 / e.FreqMinHz * float64(e.points())
}

func (e EIS) points() int {
	if e.PointsPerDecade > 0 {
		return e.PointsPerDecade
	}
	return 10
}

func (e EIS) sweep(seed int64) echem.EISSweepConfig {
	amp := e.AmplitudeMV
	if amp == 0 {
		amp = 10
	}
	return echem.EISSweepConfig{
		FreqMin:         e.FreqMinHz,
		FreqMax:         e.FreqMaxHz,
		PointsPerDecade: e.points(),
		AmplitudeRMS:    units.Millivolts(amp),
		NoiseFraction:   0.002,
		NoiseSeed:       seed,
	}
}

// eisMagic is the banner of the impedance measurement file format.
const eisMagic = "EC-Lab EIS ASCII FILE (ICE simulated)"

// WriteEIS writes an impedance spectrum file (freq, Re Z, −Im Z, |Z|,
// phase columns, matching EC-Lab's PEIS export vocabulary).
func WriteEIS(w io.Writer, label string, points []echem.ImpedancePoint) error {
	if _, err := fmt.Fprintf(w, "%s\nTechnique : PEIS\nLabel : %s\nNb of data points : %d\nfreq/Hz\tRe(Z)/Ohm\t-Im(Z)/Ohm\t|Z|/Ohm\tPhase(Z)/deg\n",
		eisMagic, label, len(points)); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%.6e\t%.6e\t%.6e\t%.6e\t%.4f\n",
			p.Frequency, p.Zre, -p.Zim, p.Magnitude(), p.Phase()); err != nil {
			return err
		}
	}
	return nil
}

// ParseEIS parses an impedance spectrum file back.
func ParseEIS(r io.Reader) (label string, points []echem.ImpedancePoint, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != eisMagic {
		return "", nil, fmt.Errorf("potentiostat: not an EIS file")
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Technique :"):
		case strings.HasPrefix(line, "Label :"):
			label = strings.TrimSpace(strings.TrimPrefix(line, "Label :"))
		case strings.HasPrefix(line, "Nb of data points :"):
		case strings.HasPrefix(line, "freq/Hz\t"):
			goto body
		default:
			return "", nil, fmt.Errorf("potentiostat: unexpected EIS header %q", line)
		}
	}
	return "", nil, fmt.Errorf("potentiostat: missing EIS column header")

body:
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 5 {
			break
		}
		f, e1 := strconv.ParseFloat(fields[0], 64)
		re, e2 := strconv.ParseFloat(fields[1], 64)
		negIm, e3 := strconv.ParseFloat(fields[2], 64)
		if e1 != nil || e2 != nil || e3 != nil {
			break
		}
		points = append(points, echem.ImpedancePoint{Frequency: f, Zre: re, Zim: -negIm})
	}
	return label, points, sc.Err()
}

// RunEIS executes an impedance sweep on channel ch: the device must be
// firmware-loaded. The spectrum is written to the sink and returned.
func (d *SP200) RunEIS(ch int, tech EIS) ([]echem.ImpedancePoint, string, error) {
	d.mu.Lock()
	if d.state != StateFirmwareLoaded {
		d.mu.Unlock()
		return nil, "", fmt.Errorf("%w: RunEIS from %v", ErrBadState, d.state)
	}
	cs, err := d.channel(ch)
	if err != nil {
		d.mu.Unlock()
		return nil, "", err
	}
	if cs.running {
		d.mu.Unlock()
		return nil, "", fmt.Errorf("potentiostat: channel %d is acquiring", ch)
	}
	if err := tech.Validate(); err != nil {
		d.mu.Unlock()
		return nil, "", err
	}
	d.runSeq++
	runID := int64(d.runSeq)
	fileName := fmt.Sprintf("PEIS_ch%d_run%03d.mpt", ch, runID)
	cs.fileName = fileName
	cfg := d.cfg
	cell := d.cell
	sink := d.sink
	d.logf("PEIS sweep started (%g Hz → %g Hz)", tech.FreqMaxHz, tech.FreqMinHz)
	d.mu.Unlock()

	cellCfg := cell.MeasurementConfig(cfg.ElectrodeArea, cfg.NoiseSeed+runID*104729)
	points, err := echem.SimulateEIS(cellCfg, tech.sweep(cellCfg.NoiseSeed))
	if err != nil {
		return nil, "", err
	}
	if sink != nil {
		w, err := sink.Create(fileName)
		if err != nil {
			return nil, "", err
		}
		defer w.Close()
		if err := WriteEIS(w, cellCfg.Fault.String(), points); err != nil {
			return nil, "", err
		}
	}
	d.mu.Lock()
	d.logf("PEIS sweep complete: %d points", len(points))
	d.mu.Unlock()
	return points, fileName, nil
}
