package potentiostat

import (
	"fmt"

	"ice/internal/echem"
	"ice/internal/units"
)

// SWV is the square-wave voltammetry technique. The measurement file
// stores the differential voltammogram: Ewe is the staircase potential
// and I is the forward−reverse difference current.
type SWV struct {
	// StartV and EndV bound the staircase in volts.
	StartV, EndV float64
	// StepMV is the staircase increment in mV; zero selects 4.
	StepMV float64
	// AmplitudeMV is the pulse half-amplitude in mV; zero selects 25.
	AmplitudeMV float64
	// FrequencyHz is the square-wave frequency; zero selects 25.
	FrequencyHz float64
}

// program converts to the physics-layer form with defaults applied.
func (s SWV) program() echem.SWVProgram {
	p := echem.SWVProgram{
		Start:     units.Volts(s.StartV),
		End:       units.Volts(s.EndV),
		Step:      units.Millivolts(s.StepMV),
		Amplitude: units.Millivolts(s.AmplitudeMV),
		Frequency: s.FrequencyHz,
	}
	if s.StepMV == 0 {
		p.Step = units.Millivolts(4)
	}
	if s.AmplitudeMV == 0 {
		p.Amplitude = units.Millivolts(25)
	}
	if s.FrequencyHz == 0 {
		p.Frequency = 25
	}
	return p
}

// Validate checks the technique parameters.
func (s SWV) Validate() error { return s.program().Validate() }

// RunSWV executes a square-wave sweep on channel ch (device must be
// firmware-loaded), writes the differential voltammogram as an MPT
// file, and returns the points plus file name.
func (d *SP200) RunSWV(ch int, tech SWV) ([]echem.SWVPoint, string, error) {
	d.mu.Lock()
	if d.state != StateFirmwareLoaded {
		d.mu.Unlock()
		return nil, "", fmt.Errorf("%w: RunSWV from %v", ErrBadState, d.state)
	}
	cs, err := d.channel(ch)
	if err != nil {
		d.mu.Unlock()
		return nil, "", err
	}
	if cs.running {
		d.mu.Unlock()
		return nil, "", fmt.Errorf("potentiostat: channel %d is acquiring", ch)
	}
	prog := tech.program()
	if err := prog.Validate(); err != nil {
		d.mu.Unlock()
		return nil, "", err
	}
	d.runSeq++
	runID := int64(d.runSeq)
	fileName := fmt.Sprintf("SWV_ch%d_run%03d.mpt", ch, runID)
	cs.fileName = fileName
	cfg := d.cfg
	cell := d.cell
	sink := d.sink
	d.logf("SWV sweep started (%g → %g V, %g Hz)", tech.StartV, tech.EndV, prog.Frequency)
	d.mu.Unlock()

	cellCfg := cell.MeasurementConfig(cfg.ElectrodeArea, cfg.NoiseSeed+runID*7129)
	points, err := echem.SimulateSWV(cellCfg, prog)
	if err != nil {
		return nil, "", err
	}
	if sink != nil {
		w, err := sink.Create(fileName)
		if err != nil {
			return nil, "", err
		}
		defer w.Close()
		if err := WriteMPTHeader(w, "SWV", cellCfg.Fault.String(), len(points)); err != nil {
			return nil, "", err
		}
		period := 1 / prog.Frequency
		recs := make([]Record, len(points))
		for i, p := range points {
			recs[i] = Record{T: float64(i) * period, Ewe: p.Stair, I: p.Delta}
		}
		if err := WriteMPTRecords(w, recs); err != nil {
			return nil, "", err
		}
	}
	d.mu.Lock()
	d.logf("SWV sweep complete: %d points", len(points))
	d.mu.Unlock()
	return points, fileName, nil
}
