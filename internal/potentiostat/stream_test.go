package potentiostat

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleMPT(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMPTHeader(&buf, "CV", "normal", n); err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{T: float64(i) * 0.02, Ewe: 0.05 + float64(i)*1e-3, I: float64(i) * 1e-6, Cycle: i / 100}
	}
	if err := WriteMPTRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamParserMatchesParseMPT feeds the same file in chunk sizes
// from single bytes to whole-file and checks the incremental result is
// identical to the offline parser in every case.
func TestStreamParserMatchesParseMPT(t *testing.T) {
	data := sampleMPT(t, 300)
	want, err := ParseMPT(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 3, 7, 64, 1024, len(data)} {
		p := &StreamParser{}
		var incremental []Record
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			recs, err := p.Feed(data[off:end])
			if err != nil {
				t.Fatalf("chunk %d: feed: %v", chunk, err)
			}
			incremental = append(incremental, recs...)
		}
		if p.File.Technique != want.Technique || p.File.Label != want.Label {
			t.Errorf("chunk %d: header %q/%q, want %q/%q", chunk, p.File.Technique, p.File.Label, want.Technique, want.Label)
		}
		if !reflect.DeepEqual(p.Records(), want.Records) {
			t.Fatalf("chunk %d: %d records, want %d", chunk, len(p.Records()), len(want.Records))
		}
		if !reflect.DeepEqual(incremental, want.Records) {
			t.Fatalf("chunk %d: incremental deliveries diverge from final set", chunk)
		}
	}
}

// TestStreamParserTruncationTolerant stops mid-row like an in-flight
// transfer: complete rows parse, the partial tail stays buffered.
func TestStreamParserTruncationTolerant(t *testing.T) {
	data := sampleMPT(t, 50)
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 4 // mid final row
	p := &StreamParser{}
	if _, err := p.Feed(data[:cut]); err != nil {
		t.Fatal(err)
	}
	want, err := ParseMPT(bytes.NewReader(data[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Records(), want.Records) {
		t.Fatalf("partial file: stream %d records, offline %d", len(p.Records()), len(want.Records))
	}
	// Completing the row delivers exactly the missing record.
	recs, err := p.Feed(data[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("completing the tail delivered %d records", len(recs))
	}
	full, _ := ParseMPT(bytes.NewReader(data))
	if !reflect.DeepEqual(p.Records(), full.Records) {
		t.Fatal("final record set diverges from offline parse")
	}
}

// TestStreamParserReset clears all state on a nil chunk (the datachan
// refetch signal) so a replay parses cleanly.
func TestStreamParserReset(t *testing.T) {
	data := sampleMPT(t, 30)
	p := &StreamParser{}
	if _, err := p.Feed(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Feed(nil); err != nil {
		t.Fatal(err)
	}
	if len(p.Records()) != 0 {
		t.Fatal("reset kept records")
	}
	if _, err := p.Feed(data); err != nil {
		t.Fatal(err)
	}
	want, _ := ParseMPT(bytes.NewReader(data))
	if !reflect.DeepEqual(p.Records(), want.Records) {
		t.Fatal("replay after reset diverges from offline parse")
	}
}

// TestStreamParserBadHeader surfaces header corruption as an error.
func TestStreamParserBadHeader(t *testing.T) {
	p := &StreamParser{}
	if _, err := p.Feed([]byte("not an mpt file\n")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := p.Feed([]byte("anything\n")); err == nil {
		t.Fatal("failed parser accepted more input")
	}
}
