package potentiostat

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// StreamParser parses an MPT measurement file incrementally, as the
// byte stream arrives over the data channel: Feed returns the records
// completed by each new chunk, so online analysis can run inside the
// acquisition window instead of waiting for the whole file. Partial
// trailing lines are buffered across Feed calls; the final record set
// is byte-for-byte what ParseMPT would produce on the complete file.
type StreamParser struct {
	// File accumulates parsed header fields and records.
	File MeasurementFile

	buf        []byte
	headerDone bool
	magicDone  bool
	stopped    bool // a malformed complete row ends the body, as in ParseMPT
	failed     error
}

// Reset discards all state, for reuse after a stream restart (the nil
// chunk a datachan refetch emits).
func (p *StreamParser) Reset() {
	*p = StreamParser{}
}

// Records returns all records parsed so far.
func (p *StreamParser) Records() []Record { return p.File.Records }

// Feed consumes the next chunk of the file and returns the records it
// completed (nil when the chunk only extended the header or a partial
// row). A nil chunk resets the parser — the datachan streaming layer's
// signal that the streamed prefix was invalid and a fresh authoritative
// copy follows.
func (p *StreamParser) Feed(chunk []byte) ([]Record, error) {
	if chunk == nil {
		p.Reset()
		return nil, nil
	}
	if p.failed != nil {
		return nil, p.failed
	}
	p.buf = append(p.buf, chunk...)
	before := len(p.File.Records)
	for {
		nl := bytes.IndexByte(p.buf, '\n')
		if nl < 0 {
			break // partial line: wait for more bytes
		}
		line := string(p.buf[:nl])
		p.buf = p.buf[nl+1:]
		if err := p.line(line); err != nil {
			p.failed = err
			return nil, err
		}
	}
	if len(p.File.Records) == before {
		return nil, nil
	}
	return p.File.Records[before:], nil
}

// line applies one complete line, mirroring ParseMPT's header and row
// handling exactly.
func (p *StreamParser) line(line string) error {
	if !p.magicDone {
		if strings.TrimSpace(line) != mptMagic {
			return fmt.Errorf("potentiostat: bad magic %q", line)
		}
		p.magicDone = true
		return nil
	}
	if !p.headerDone {
		switch {
		case strings.HasPrefix(line, "Technique :"):
			p.File.Technique = strings.TrimSpace(strings.TrimPrefix(line, "Technique :"))
		case strings.HasPrefix(line, "Label :"):
			p.File.Label = strings.TrimSpace(strings.TrimPrefix(line, "Label :"))
		case strings.HasPrefix(line, "Nb of data points :"):
			if _, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "Nb of data points :"))); err != nil {
				return fmt.Errorf("potentiostat: bad point count: %v", err)
			}
		case strings.HasPrefix(line, "mode\t"):
			p.headerDone = true
		default:
			return fmt.Errorf("potentiostat: unexpected header line %q", line)
		}
		return nil
	}
	if p.stopped || strings.TrimSpace(line) == "" {
		return nil
	}
	fields := strings.Split(line, "\t")
	if len(fields) != 5 {
		// A malformed complete row ends the body silently, matching
		// ParseMPT's truncation tolerance: records so far stand,
		// subsequent rows are ignored.
		p.stopped = true
		return nil
	}
	t, err1 := strconv.ParseFloat(fields[1], 64)
	e, err2 := strconv.ParseFloat(fields[2], 64)
	i, err3 := strconv.ParseFloat(fields[3], 64)
	cyc, err4 := strconv.Atoi(fields[4])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		p.stopped = true
		return nil
	}
	p.File.Records = append(p.File.Records, Record{T: t, Ewe: e, I: i, Cycle: cyc})
	return nil
}
