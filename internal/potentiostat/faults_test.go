package potentiostat

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// readyDevice returns a filled device driven through steps 1-5, ready
// for StartChannel.
func readyDevice(t *testing.T, cfg SystemConfig) *SP200 {
	t.Helper()
	d, _, _ := filledDevice(t)
	if err := d.Initialize(cfg); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadFirmware(); err != nil {
		t.Fatal(err)
	}
	if err := d.ConfigureTechnique(1, DefaultCV()); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadTechnique(1); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFaultHangBlocksStatusUntilCleared(t *testing.T) {
	d := readyDevice(t, DefaultSystemConfig())
	if err := d.InjectFault(DeviceFault{Mode: FaultHang}); err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 1)
	go func() { done <- d.Status() }()
	select {
	case s := <-done:
		t.Fatalf("Status answered %q under a hang fault", s)
	case <-time.After(50 * time.Millisecond):
	}
	d.ClearFault()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Status still blocked after ClearFault")
	}
}

func TestFaultWedgeBusyStallsStreamingButAnswersStatus(t *testing.T) {
	cfg := DefaultSystemConfig()
	cfg.TimeScale = 0 // stream as fast as the wedge gate allows
	d := readyDevice(t, cfg)
	if err := d.InjectFault(DeviceFault{Mode: FaultWedgeBusy}); err != nil {
		t.Fatal(err)
	}
	// Commands still answer: the wedge's damage is in the stream.
	if err := d.StartChannel(1); err != nil {
		t.Fatalf("StartChannel under wedge-busy: %v", err)
	}
	if s := d.Status(); !strings.Contains(s, "busy=1") {
		t.Fatalf("Status = %q, want busy=1 while wedged", s)
	}
	// The acquisition never finishes on its own.
	done := make(chan error, 1)
	go func() {
		_, err := d.Wait(1)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("wedged acquisition finished: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	// The emergency stop bypasses fault gating and unwedges it.
	if err := d.AbortChannel(1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("Wait = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not unwedge the acquisition")
	}
	if s := d.Status(); !strings.Contains(s, "busy=0") {
		t.Errorf("Status = %q, want busy=0 after abort", s)
	}
}

func TestFaultWedgeBusyClearResumesStreaming(t *testing.T) {
	cfg := DefaultSystemConfig()
	cfg.TimeScale = 0
	d := readyDevice(t, cfg)
	if err := d.InjectFault(DeviceFault{Mode: FaultWedgeBusy}); err != nil {
		t.Fatal(err)
	}
	if err := d.StartChannel(1); err != nil {
		t.Fatal(err)
	}
	d.ClearFault()
	done := make(chan error, 1)
	go func() {
		_, err := d.Wait(1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("acquisition after clear: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquisition did not resume after ClearFault")
	}
}

func TestFaultErrorBurstSelfClears(t *testing.T) {
	d := readyDevice(t, DefaultSystemConfig())
	if err := d.InjectFault(DeviceFault{Mode: FaultErrorBurst, Count: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := d.StartChannel(1); !errors.Is(err, ErrInjected) {
			t.Fatalf("burst command %d = %v, want ErrInjected", i+1, err)
		}
	}
	if got := d.ActiveFault(); got != FaultNone {
		t.Fatalf("fault %q still active after the burst ran out", got)
	}
	if err := d.StartChannel(1); err != nil {
		t.Fatalf("StartChannel after burst self-clear: %v", err)
	}
	if _, err := d.Wait(1); err != nil {
		t.Fatal(err)
	}
}

func TestFaultSlowDriftGrowsLatency(t *testing.T) {
	d := readyDevice(t, DefaultSystemConfig())
	if err := d.InjectFault(DeviceFault{Mode: FaultSlowDrift, Delay: 5 * time.Millisecond, Growth: 2, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	var durations []time.Duration
	for i := 0; i < 4; i++ {
		start := time.Now()
		if err := d.ConfigureTechnique(1, DefaultCV()); err != nil {
			t.Fatal(err)
		}
		durations = append(durations, time.Since(start))
	}
	// With growth 2 the fourth call's floor (0.75 jitter · 40ms) is well
	// above the first call's ceiling (1.25 jitter · 5ms).
	if durations[3] < 2*durations[0] {
		t.Errorf("latency did not grow: %v", durations)
	}
	d.ClearFault()
	start := time.Now()
	if err := d.ConfigureTechnique(1, DefaultCV()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Millisecond {
		t.Error("commands still slow after ClearFault")
	}
}

func TestInjectFaultRejectsUnknownMode(t *testing.T) {
	d, _, _ := filledDevice(t)
	if err := d.InjectFault(DeviceFault{Mode: "gremlins"}); err == nil {
		t.Fatal("unknown fault mode accepted")
	}
}
