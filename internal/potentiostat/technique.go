// Package potentiostat simulates the Bio-Logic SP200 potentiostat and
// the EC-Lab-style developer API the paper wraps: system
// initialisation, channel connection, firmware loading, technique
// configuration and loading, channel start, streamed acquisition and
// automatic disconnection — the eight-step pipeline of the paper's
// Fig. 6. Measurements are produced by the internal/echem physics
// engine against the shared internal/labstate cell, and written as
// EC-Lab-flavoured measurement files that the data channel exposes to
// remote systems.
package potentiostat

import (
	"fmt"
	"math"

	"ice/internal/echem"
	"ice/internal/units"
)

// Technique is an electrochemical technique a channel can run.
type Technique interface {
	// Name is the EC-Lab-style short name ("CV", "LSV", "CA", "CP",
	// "OCV").
	Name() string
	// Validate checks the technique parameters.
	Validate() error
	// Samples is the number of points to acquire (excluding t = 0).
	Samples() int
	// Duration is the technique runtime in experiment seconds.
	Duration() float64
}

// potentialTechnique is implemented by techniques that drive the cell
// with a potential waveform through the diffusion simulator.
type potentialTechnique interface {
	Technique
	waveform() (echem.Waveform, error)
	// cycleAt maps experiment time to a cycle number.
	cycleAt(t float64) int
}

// CV is cyclic voltammetry, the paper's demonstrated technique.
type CV struct {
	// Program holds the sweep parameters (Ei, E1, E2, Ef, rate, cycles).
	Program echem.CVProgram
	// PointsPerCycle is the number of samples acquired per cycle;
	// zero selects 1500 (≈ 1 mV resolution at the demo settings).
	PointsPerCycle int
}

// DefaultCV returns the paper's demonstration program: 0.05 → 0.8 →
// 0.05 V at 50 mV/s, one cycle.
func DefaultCV() CV {
	return CV{Program: echem.CVProgram{
		Ei:     units.Volts(0.05),
		E1:     units.Volts(0.8),
		E2:     units.Volts(0.05),
		Ef:     units.Volts(0.05),
		Rate:   units.MillivoltsPerSecond(50),
		Cycles: 1,
	}}
}

// Name implements Technique.
func (CV) Name() string { return "CV" }

// Validate implements Technique.
func (c CV) Validate() error {
	if err := c.Program.Validate(); err != nil {
		return err
	}
	if c.PointsPerCycle < 0 {
		return fmt.Errorf("potentiostat: CV points per cycle must be non-negative")
	}
	return nil
}

func (c CV) pointsPerCycle() int {
	if c.PointsPerCycle > 0 {
		return c.PointsPerCycle
	}
	return 1500
}

// Samples implements Technique.
func (c CV) Samples() int { return c.pointsPerCycle() * c.Program.Cycles }

// Duration implements Technique.
func (c CV) Duration() float64 {
	w, err := c.Program.Waveform()
	if err != nil {
		return 0
	}
	return w.Duration()
}

func (c CV) waveform() (echem.Waveform, error) { return c.Program.Waveform() }

func (c CV) cycleAt(t float64) int {
	dur := c.Duration()
	if dur <= 0 {
		return 0
	}
	per := dur / float64(c.Program.Cycles)
	cyc := int(t / per)
	if cyc >= c.Program.Cycles {
		cyc = c.Program.Cycles - 1
	}
	if cyc < 0 {
		cyc = 0
	}
	return cyc
}

// LSV is linear sweep voltammetry: a single ramp.
type LSV struct {
	// Ei and Ef are the sweep endpoints.
	Ei, Ef units.Potential
	// Rate is the scan rate.
	Rate units.ScanRate
	// Points is the sample count; zero selects 1000.
	Points int
}

// Name implements Technique.
func (LSV) Name() string { return "LSV" }

// Validate implements Technique.
func (l LSV) Validate() error {
	_, err := echem.LinearSweep(l.Ei, l.Ef, l.Rate)
	return err
}

// Samples implements Technique.
func (l LSV) Samples() int {
	if l.Points > 0 {
		return l.Points
	}
	return 1000
}

// Duration implements Technique.
func (l LSV) Duration() float64 {
	if l.Rate.VoltsPerSecond() <= 0 {
		return 0
	}
	return math.Abs(l.Ef.Volts()-l.Ei.Volts()) / l.Rate.VoltsPerSecond()
}

func (l LSV) waveform() (echem.Waveform, error) { return echem.LinearSweep(l.Ei, l.Ef, l.Rate) }
func (l LSV) cycleAt(float64) int               { return 0 }

// CA is chronoamperometry: a potential step with current sampling,
// used for Cottrell analysis.
type CA struct {
	// Rest is the pre-step potential, Step the applied step.
	Rest, Step units.Potential
	// RestSeconds and StepSeconds are the two phase durations.
	RestSeconds, StepSeconds float64
	// Points is the sample count; zero selects 1000.
	Points int
}

// Name implements Technique.
func (CA) Name() string { return "CA" }

// Validate implements Technique.
func (c CA) Validate() error {
	_, err := c.waveform()
	return err
}

// Samples implements Technique.
func (c CA) Samples() int {
	if c.Points > 0 {
		return c.Points
	}
	return 1000
}

// Duration implements Technique.
func (c CA) Duration() float64 { return c.RestSeconds + c.StepSeconds }

func (c CA) waveform() (echem.Waveform, error) {
	return echem.StepProgram{
		Rest: c.Rest, Step: c.Step,
		RestSeconds: c.RestSeconds, StepSeconds: c.StepSeconds,
	}.Waveform()
}
func (c CA) cycleAt(float64) int { return 0 }

// OCV monitors the open-circuit potential without applying current.
type OCV struct {
	// Seconds is the monitoring duration.
	Seconds float64
	// Points is the sample count; zero selects 200.
	Points int
}

// Name implements Technique.
func (OCV) Name() string { return "OCV" }

// Validate implements Technique.
func (o OCV) Validate() error {
	if o.Seconds <= 0 {
		return fmt.Errorf("potentiostat: OCV duration must be positive, got %g", o.Seconds)
	}
	return nil
}

// Samples implements Technique.
func (o OCV) Samples() int {
	if o.Points > 0 {
		return o.Points
	}
	return 200
}

// Duration implements Technique.
func (o OCV) Duration() float64 { return o.Seconds }

// CP is chronopotentiometry: a constant applied current with potential
// sampling. The response is computed semi-analytically from Sand's
// equation for a reversible couple: the surface concentrations follow
//
//	C_R(0,t) = C* − 2·i·√t / (n·F·A·√(π·D_R))
//	C_O(0,t) =      2·i·√t / (n·F·A·√(π·D_O))
//
// and the potential tracks Nernst until the transition time τ where
// C_R(0,τ) → 0, after which it slews to the limit.
type CP struct {
	// Current is the applied (anodic-positive) current.
	Current units.Current
	// Seconds is the electrolysis duration.
	Seconds float64
	// Points is the sample count; zero selects 500.
	Points int
}

// Name implements Technique.
func (CP) Name() string { return "CP" }

// Validate implements Technique.
func (c CP) Validate() error {
	if c.Seconds <= 0 {
		return fmt.Errorf("potentiostat: CP duration must be positive, got %g", c.Seconds)
	}
	if c.Current.Amperes() == 0 {
		return fmt.Errorf("potentiostat: CP current must be non-zero")
	}
	return nil
}

// Samples implements Technique.
func (c CP) Samples() int {
	if c.Points > 0 {
		return c.Points
	}
	return 500
}

// Duration implements Technique.
func (c CP) Duration() float64 { return c.Seconds }

// SandTransitionTime returns τ, the time at which the reduced species
// is exhausted at the electrode under constant current i:
//
//	τ = (n·F·A·C*)²·π·D / (4·i²)
func SandTransitionTime(n int, area units.Area, conc units.Concentration, d float64, i units.Current) float64 {
	if i.Amperes() == 0 {
		return math.Inf(1)
	}
	nfac := float64(n) * echem.Faraday * area.SquareMeters() * conc.MolesPerCubicMeter()
	return nfac * nfac * math.Pi * d / (4 * i.Amperes() * i.Amperes())
}
