package potentiostat

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{T: 0, Ewe: 0.05, I: 0, Cycle: 0},
		{T: 0.02, Ewe: 0.051, I: 1.2e-7, Cycle: 0},
		{T: 0.04, Ewe: 0.052, I: -3.4e-6, Cycle: 1},
	}
}

func TestMPTRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	if err := WriteMPTHeader(&buf, "CV", "normal", len(recs)); err != nil {
		t.Fatal(err)
	}
	if err := WriteMPTRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	mf, err := ParseMPT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Technique != "CV" || mf.Label != "normal" {
		t.Errorf("header = %q %q", mf.Technique, mf.Label)
	}
	if len(mf.Records) != len(recs) {
		t.Fatalf("records = %d, want %d", len(mf.Records), len(recs))
	}
	for i, r := range mf.Records {
		if math.Abs(r.T-recs[i].T) > 1e-6 || math.Abs(r.Ewe-recs[i].Ewe) > 1e-6 {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
		if r.Cycle != recs[i].Cycle {
			t.Errorf("record %d cycle = %d, want %d", i, r.Cycle, recs[i].Cycle)
		}
		// Currents use %.6e: relative accuracy.
		if recs[i].I != 0 && math.Abs(r.I-recs[i].I)/math.Abs(recs[i].I) > 1e-5 {
			t.Errorf("record %d I = %v, want %v", i, r.I, recs[i].I)
		}
	}
}

func TestParseMPTToleratesTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	WriteMPTHeader(&buf, "CV", "normal", len(recs))
	WriteMPTRecords(&buf, recs)
	full := buf.Bytes()
	// Chop mid-way through the last row, as an in-flight transfer would.
	cut := full[:len(full)-7]
	mf, err := ParseMPT(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Records) != len(recs)-1 {
		t.Errorf("records = %d, want %d (truncated tail dropped)", len(mf.Records), len(recs)-1)
	}
}

func TestParseMPTRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a measurement file\n",
		"EC-Lab ASCII FILE (ICE simulated)\nTechnique : CV\n", // no column header
		"EC-Lab ASCII FILE (ICE simulated)\nWAT : x\n",
	} {
		if _, err := ParseMPT(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMPT(%q) accepted", bad)
		}
	}
}

func TestParseMPTBadPointCount(t *testing.T) {
	in := "EC-Lab ASCII FILE (ICE simulated)\nNb of data points : many\nmode\tt\n"
	if _, err := ParseMPT(strings.NewReader(in)); err == nil {
		t.Error("non-numeric point count accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	if err := EncodeBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	if _, err := DecodeBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DecodeBinary(bytes.NewReader([]byte("XXXX\x00\x00\x00\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated record payload.
	var buf bytes.Buffer
	EncodeBinary(&buf, sampleRecords())
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := DecodeBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated payload accepted")
	}
	// Implausible count.
	huge := append([]byte("VMP3"), 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeBinary(bytes.NewReader(huge)); err == nil {
		t.Error("absurd record count accepted")
	}
}

// Property: binary encoding is lossless for arbitrary records.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ts, es, is []float64, cycles []uint8) bool {
		n := len(ts)
		for _, other := range []int{len(es), len(is), len(cycles)} {
			if other < n {
				n = other
			}
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{T: ts[i], Ewe: es[i], I: is[i], Cycle: int(cycles[i])}
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, recs); err != nil {
			return false
		}
		got, err := DecodeBinary(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range recs {
			a, b := recs[i], got[i]
			// NaN compares unequal to itself; accept bit-identical NaN.
			if a.Cycle != b.Cycle ||
				!floatEqual(a.T, b.T) || !floatEqual(a.Ewe, b.Ewe) || !floatEqual(a.I, b.I) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func floatEqual(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
