package potentiostat

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one acquired data point in the EC-Lab column convention:
// time, working-electrode potential, current and cycle number.
type Record struct {
	// T is elapsed time in seconds.
	T float64
	// Ewe is the working-electrode potential in volts.
	Ewe float64
	// I is the current in amperes.
	I float64
	// Cycle is the zero-based cycle number.
	Cycle int
}

// MeasurementFile is a parsed measurement file.
type MeasurementFile struct {
	// Technique is the short technique name from the header.
	Technique string
	// Label carries the run label (fault class in simulated datasets).
	Label string
	// Records in acquisition order.
	Records []Record
}

// mptMagic is the first header line of the ASCII measurement format,
// mirroring EC-Lab's export banner.
const mptMagic = "EC-Lab ASCII FILE (ICE simulated)"

// WriteMPTHeader writes the file banner. The body is streamed with
// WriteMPTRecords so acquisition can flush incrementally, the way the
// instrument software appends during a run.
func WriteMPTHeader(w io.Writer, technique, label string, points int) error {
	_, err := fmt.Fprintf(w, "%s\nTechnique : %s\nLabel : %s\nNb of data points : %d\nmode\ttime/s\tEwe/V\tI/A\tcycle number\n",
		mptMagic, technique, label, points)
	return err
}

// WriteMPTRecords appends data rows.
func WriteMPTRecords(w io.Writer, recs []Record) error {
	var b bytes.Buffer
	for _, r := range recs {
		fmt.Fprintf(&b, "2\t%.6f\t%.6f\t%.6e\t%d\n", r.T, r.Ewe, r.I, r.Cycle)
	}
	_, err := w.Write(b.Bytes())
	return err
}

// ParseMPT parses a measurement file produced by WriteMPTHeader/
// WriteMPTRecords. It tolerates a truncated final line, so it can be
// used on files still being written across the data channel.
func ParseMPT(r io.Reader) (*MeasurementFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("potentiostat: empty measurement file")
	}
	if strings.TrimSpace(sc.Text()) != mptMagic {
		return nil, fmt.Errorf("potentiostat: bad magic %q", sc.Text())
	}
	mf := &MeasurementFile{}
	declared := -1
	// Header lines until the column header.
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Technique :"):
			mf.Technique = strings.TrimSpace(strings.TrimPrefix(line, "Technique :"))
		case strings.HasPrefix(line, "Label :"):
			mf.Label = strings.TrimSpace(strings.TrimPrefix(line, "Label :"))
		case strings.HasPrefix(line, "Nb of data points :"):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "Nb of data points :")))
			if err != nil {
				return nil, fmt.Errorf("potentiostat: bad point count: %v", err)
			}
			declared = n
		case strings.HasPrefix(line, "mode\t"):
			goto body
		default:
			return nil, fmt.Errorf("potentiostat: unexpected header line %q", line)
		}
	}
	return nil, fmt.Errorf("potentiostat: missing column header")

body:
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			// Truncated tail row from an in-flight transfer: stop here.
			break
		}
		t, err1 := strconv.ParseFloat(fields[1], 64)
		e, err2 := strconv.ParseFloat(fields[2], 64)
		i, err3 := strconv.ParseFloat(fields[3], 64)
		cyc, err4 := strconv.Atoi(fields[4])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			break
		}
		mf.Records = append(mf.Records, Record{T: t, Ewe: e, I: i, Cycle: cyc})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	_ = declared // informational; in-flight files may hold fewer rows
	return mf, nil
}

// vmpMagic marks the binary record block format (loosely modelled on
// the VMP3 data blocks the paper's Fig. 6b dumps as array('L', ...)).
var vmpMagic = [4]byte{'V', 'M', 'P', '3'}

// EncodeBinary serialises records into the compact binary block format.
func EncodeBinary(w io.Writer, recs []Record) error {
	if _, err := w.Write(vmpMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(recs))); err != nil {
		return err
	}
	for _, r := range recs {
		if err := binary.Write(w, binary.LittleEndian, r.T); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, r.Ewe); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, r.I); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(r.Cycle)); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBinary parses a binary record block.
func DecodeBinary(r io.Reader) ([]Record, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("potentiostat: binary block magic: %w", err)
	}
	if magic != vmpMagic {
		return nil, fmt.Errorf("potentiostat: bad binary magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxRecords = 50_000_000
	if count > maxRecords {
		return nil, fmt.Errorf("potentiostat: implausible record count %d", count)
	}
	recs := make([]Record, 0, count)
	for i := uint32(0); i < count; i++ {
		var rec Record
		var cyc uint32
		if err := binary.Read(r, binary.LittleEndian, &rec.T); err != nil {
			return nil, fmt.Errorf("potentiostat: record %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &rec.Ewe); err != nil {
			return nil, fmt.Errorf("potentiostat: record %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &rec.I); err != nil {
			return nil, fmt.Errorf("potentiostat: record %d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &cyc); err != nil {
			return nil, fmt.Errorf("potentiostat: record %d: %w", i, err)
		}
		rec.Cycle = int(cyc)
		recs = append(recs, rec)
	}
	return recs, nil
}
