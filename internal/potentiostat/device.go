package potentiostat

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"ice/internal/echem"
	"ice/internal/labstate"
	"ice/internal/units"
)

// State is the device-level state of the SP200.
type State int

// Device states, in the order the Fig. 6 pipeline advances them.
const (
	// StateOff is the power-on state before Initialize.
	StateOff State = iota
	// StateInitialized follows a successful Initialize call.
	StateInitialized
	// StateConnected follows Connect.
	StateConnected
	// StateFirmwareLoaded follows LoadFirmware; techniques can now be
	// configured.
	StateFirmwareLoaded
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateInitialized:
		return "initialized"
	case StateConnected:
		return "connected"
	case StateFirmwareLoaded:
		return "firmware-loaded"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrBadState is wrapped by errors returned when a pipeline step is
// invoked out of order.
var ErrBadState = errors.New("potentiostat: operation invalid in current state")

// SystemConfig is the Initialize payload (the SP200_config_params of
// the paper's step 1).
type SystemConfig struct {
	// SerialNumber identifies the instrument.
	SerialNumber string
	// FirmwarePath is the kernel image to load (e.g. "kernel4.bin").
	FirmwarePath string
	// Channels is the number of potentiostat channels; SP200 has 1–2.
	Channels int
	// ElectrodeArea of the working electrode in the attached cell.
	ElectrodeArea units.Area
	// NoiseSeed seeds measurement noise; successive runs derive
	// sub-seeds from it.
	NoiseSeed int64
	// TimeScale multiplies experiment time for acquisition pacing.
	// 0 runs instantly; 1.0 is real time.
	TimeScale float64
}

// DefaultSystemConfig returns the demonstration configuration.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		SerialNumber:  "SP200-0042",
		FirmwarePath:  "kernel4.bin",
		Channels:      2,
		ElectrodeArea: units.SquareCentimeters(0.07),
		NoiseSeed:     1,
	}
}

// channelState tracks one potentiostat channel through the technique
// lifecycle.
type channelState struct {
	tech     Technique
	loaded   bool
	running  bool
	done     chan struct{}
	records  []Record
	fileName string
	err      error
	// rangeAmps is the selected current range (full scale); 0 means
	// autorange.
	rangeAmps float64
	// overloads counts samples clipped at the range limit in the last
	// run.
	overloads int
	// abort is closed to cancel an in-flight paced acquisition.
	abort chan struct{}
}

// ErrAborted is wrapped by Wait when the run was cancelled with
// AbortChannel.
var ErrAborted = errors.New("potentiostat: acquisition aborted")

// AbortChannel cancels a running acquisition. The channel's Wait
// returns ErrAborted; records streamed so far remain in the
// measurement file. Aborting an idle channel is a no-op.
func (d *SP200) AbortChannel(ch int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cs, err := d.channel(ch)
	if err != nil {
		return err
	}
	if !cs.running || cs.abort == nil {
		return nil
	}
	select {
	case <-cs.abort:
		// already aborted
	default:
		close(cs.abort)
		d.logf("Channel %d abort requested", ch)
	}
	return nil
}

// CurrentRanges are the selectable full-scale current ranges in
// amperes (the SP200 hardware offers decade ranges).
var CurrentRanges = []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// SetCurrentRange selects a channel's full-scale current range;
// rangeAmps must be one of CurrentRanges, or 0 for autorange.
// Measurements beyond the range are clipped and counted as overloads.
func (d *SP200) SetCurrentRange(ch int, rangeAmps float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cs, err := d.channel(ch)
	if err != nil {
		return err
	}
	if rangeAmps != 0 {
		ok := false
		for _, r := range CurrentRanges {
			if r == rangeAmps {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("potentiostat: unsupported current range %g A", rangeAmps)
		}
	}
	cs.rangeAmps = rangeAmps
	return nil
}

// Overloads reports how many samples the channel's last run clipped at
// the range limit (0 in autorange).
func (d *SP200) Overloads(ch int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cs, err := d.channel(ch)
	if err != nil {
		return 0, err
	}
	return cs.overloads, nil
}

// SP200 is the simulated Bio-Logic SP200 potentiostat.
type SP200 struct {
	mu       sync.Mutex
	state    State
	cfg      SystemConfig
	cell     *labstate.Cell
	sink     Sink
	channels []*channelState
	events   []string
	runSeq   int

	// faults carries injected device-level failures (see faults.go);
	// it has its own lock so faults clear even while a hung command
	// blocks. AbortChannel and the read-only accessors bypass the gate
	// — the emergency-stop path works on a sick instrument.
	faults faultState
}

// NewSP200 returns a powered-on but uninitialised instrument attached
// to the cell, writing measurement files to sink.
func NewSP200(cell *labstate.Cell, sink Sink) *SP200 {
	return &SP200{cell: cell, sink: sink}
}

// logf appends a line to the instrument event log (the console
// transcript of the paper's Fig. 6b).
func (d *SP200) logf(format string, args ...any) {
	d.events = append(d.events, fmt.Sprintf(format, args...))
}

// EventLog returns a copy of the instrument's console transcript.
func (d *SP200) EventLog() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.events))
	copy(out, d.events)
	return out
}

// State returns the device state.
func (d *SP200) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Initialize performs step 1 of the pipeline: system/firmware and
// connection parameters.
func (d *SP200) Initialize(cfg SystemConfig) error {
	if err := d.faults.admit("Initialize"); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != StateOff {
		return fmt.Errorf("%w: Initialize from %v", ErrBadState, d.state)
	}
	if cfg.Channels < 1 {
		return fmt.Errorf("potentiostat: need at least one channel, got %d", cfg.Channels)
	}
	if cfg.ElectrodeArea.SquareMeters() <= 0 {
		return fmt.Errorf("potentiostat: electrode area must be positive")
	}
	if cfg.FirmwarePath == "" {
		return fmt.Errorf("potentiostat: firmware path required")
	}
	d.cfg = cfg
	d.channels = make([]*channelState, cfg.Channels)
	for i := range d.channels {
		d.channels[i] = &channelState{}
	}
	d.state = StateInitialized
	d.logf("Initialization done!!")
	return nil
}

// Connect performs step 2: open the instrument link.
func (d *SP200) Connect() error {
	if err := d.faults.admit("Connect"); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != StateInitialized {
		return fmt.Errorf("%w: Connect from %v", ErrBadState, d.state)
	}
	d.state = StateConnected
	d.logf("Connection to the Potentiostat is Done")
	return nil
}

// LoadFirmware performs step 3: load the channel kernel.
func (d *SP200) LoadFirmware() error {
	if err := d.faults.admit("LoadFirmware"); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != StateConnected {
		return fmt.Errorf("%w: LoadFirmware from %v", ErrBadState, d.state)
	}
	d.logf("> Loading %s ...", d.cfg.FirmwarePath)
	d.state = StateFirmwareLoaded
	d.logf("> ... firmware loaded")
	return nil
}

// ConfigureTechnique performs step 4: install technique parameters on
// a channel.
func (d *SP200) ConfigureTechnique(ch int, tech Technique) error {
	if err := d.faults.admit("ConfigureTechnique"); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != StateFirmwareLoaded {
		return fmt.Errorf("%w: ConfigureTechnique from %v", ErrBadState, d.state)
	}
	cs, err := d.channel(ch)
	if err != nil {
		return err
	}
	if cs.running {
		return fmt.Errorf("potentiostat: channel %d is acquiring", ch)
	}
	if err := tech.Validate(); err != nil {
		return err
	}
	cs.tech = tech
	cs.loaded = false
	d.logf("%s technique initialization is done !!", tech.Name())
	return nil
}

// LoadTechnique performs step 5: push the technique firmware to the
// channel.
func (d *SP200) LoadTechnique(ch int) error {
	if err := d.faults.admit("LoadTechnique"); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cs, err := d.channel(ch)
	if err != nil {
		return err
	}
	if cs.tech == nil {
		return fmt.Errorf("potentiostat: channel %d has no technique configured", ch)
	}
	cs.loaded = true
	d.logf("Loading technique is done !!")
	return nil
}

// StartChannel performs step 6: begin acquisition. The run proceeds
// asynchronously; Wait blocks for completion (step 7), after which the
// channel is automatically disconnected (step 8).
func (d *SP200) StartChannel(ch int) error {
	if err := d.faults.admit("StartChannel"); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cs, err := d.channel(ch)
	if err != nil {
		return err
	}
	if !cs.loaded {
		return fmt.Errorf("potentiostat: channel %d technique not loaded", ch)
	}
	if cs.running {
		return fmt.Errorf("potentiostat: channel %d already running", ch)
	}
	d.runSeq++
	runID := d.runSeq
	cs.running = true
	cs.done = make(chan struct{})
	cs.abort = make(chan struct{})
	cs.err = nil
	cs.records = nil
	cs.fileName = fmt.Sprintf("%s_ch%d_run%03d.mpt", cs.tech.Name(), ch, runID)
	d.logf("Channel connection is initiated")

	tech := cs.tech
	cfg := d.cfg
	cell := d.cell
	sink := d.sink
	rangeAmps := cs.rangeAmps
	abort := cs.abort
	go func() {
		recs, overloads, err := acquire(cell, sink, cfg, tech, cs.fileName, int64(runID), rangeAmps, abort, d.faults.wedgeGate)
		d.mu.Lock()
		cs.records = recs
		cs.err = err
		cs.overloads = overloads
		cs.running = false
		if err != nil {
			d.logf("acquisition error: %v", err)
		} else {
			d.logf("> data record : %d points", len(recs))
			if overloads > 0 {
				d.logf("OVERLOAD: %d samples clipped at %g A range", overloads, rangeAmps)
			}
			d.logf("Channel is automatically disconnected")
		}
		d.mu.Unlock()
		close(cs.done)
	}()
	return nil
}

// clipToRange saturates currents at the selected full scale, the way a
// fixed-range measurement amplifier overloads.
func clipToRange(recs []Record, rangeAmps float64) ([]Record, int) {
	overloads := 0
	for i := range recs {
		switch {
		case recs[i].I > rangeAmps:
			recs[i].I = rangeAmps
			overloads++
		case recs[i].I < -rangeAmps:
			recs[i].I = -rangeAmps
			overloads++
		}
	}
	return recs, overloads
}

// Wait blocks until channel ch finishes acquiring and returns its
// records (step 7 of the pipeline).
func (d *SP200) Wait(ch int) ([]Record, error) {
	if err := d.faults.admit("Wait"); err != nil {
		return nil, err
	}
	d.mu.Lock()
	cs, err := d.channel(ch)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	done := cs.done
	d.mu.Unlock()
	if done == nil {
		return nil, fmt.Errorf("potentiostat: channel %d was never started", ch)
	}
	<-done
	d.mu.Lock()
	defer d.mu.Unlock()
	return cs.records, cs.err
}

// Busy reports whether channel ch is currently acquiring.
func (d *SP200) Busy(ch int) bool {
	d.faults.admitVoid()
	d.mu.Lock()
	defer d.mu.Unlock()
	cs, err := d.channel(ch)
	return err == nil && cs.running
}

// MeasurementFileName returns the name of the file the channel's last
// run streamed to.
func (d *SP200) MeasurementFileName(ch int) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cs, err := d.channel(ch)
	if err != nil {
		return "", err
	}
	if cs.fileName == "" {
		return "", fmt.Errorf("potentiostat: channel %d has no measurement file", ch)
	}
	return cs.fileName, nil
}

// Disconnect shuts the instrument link down (workflow task E). Any
// running channels are waited for first.
func (d *SP200) Disconnect() error {
	if err := d.faults.admit("Disconnect"); err != nil {
		return err
	}
	d.mu.Lock()
	if d.state == StateOff {
		d.mu.Unlock()
		return fmt.Errorf("%w: Disconnect from %v", ErrBadState, StateOff)
	}
	var pending []chan struct{}
	for _, cs := range d.channels {
		if cs.running {
			pending = append(pending, cs.done)
		}
	}
	d.mu.Unlock()
	for _, ch := range pending {
		<-ch
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = StateOff
	d.logf("Potentiostat disconnected")
	return nil
}

// Status renders a short state summary. A hang fault blocks it (the
// controller is gone); a wedge-busy fault does not (the status
// register answers while the acquisition is stuck).
func (d *SP200) Status() string {
	d.faults.admitVoid()
	d.mu.Lock()
	defer d.mu.Unlock()
	busy := 0
	for _, cs := range d.channels {
		if cs.running {
			busy++
		}
	}
	return fmt.Sprintf("SP200[%s channels=%d busy=%d firmware=%s]",
		d.state, len(d.channels), busy, d.cfg.FirmwarePath)
}

func (d *SP200) channel(ch int) (*channelState, error) {
	if ch < 1 || ch > len(d.channels) {
		return nil, fmt.Errorf("potentiostat: channel %d out of range 1..%d", ch, len(d.channels))
	}
	return d.channels[ch-1], nil
}

// streamChunk is the number of records flushed to the sink at a time,
// so the data channel sees the file grow during acquisition.
const streamChunk = 128

// acquire runs the technique against the cell, applies the current
// range, and streams records to the sink. It executes outside the
// device lock. wedge (optional) is re-sampled before each chunk so a
// wedge-busy fault injected mid-acquire stalls streaming at the next
// chunk boundary; only an abort (or clearing the fault) unwedges it.
func acquire(cell *labstate.Cell, sink Sink, cfg SystemConfig, tech Technique, fileName string, runID int64, rangeAmps float64, abort <-chan struct{}, wedge func() <-chan struct{}) ([]Record, int, error) {
	cellCfg := cell.MeasurementConfig(cfg.ElectrodeArea, cfg.NoiseSeed+runID*7919)

	var recs []Record
	var err error
	switch tt := tech.(type) {
	case potentialTechnique:
		recs, err = acquirePotential(cellCfg, tt)
	case OCV:
		recs = acquireOCV(cellCfg, tt)
	case CP:
		recs = acquireCP(cellCfg, tt)
	default:
		err = fmt.Errorf("potentiostat: unsupported technique %T", tech)
	}
	if err != nil {
		return nil, 0, err
	}
	overloads := 0
	if rangeAmps > 0 {
		recs, overloads = clipToRange(recs, rangeAmps)
	}

	if sink != nil {
		w, err := sink.Create(fileName)
		if err != nil {
			return nil, 0, fmt.Errorf("potentiostat: create measurement file: %w", err)
		}
		defer w.Close()
		if err := WriteMPTHeader(w, tech.Name(), cellCfg.Fault.String(), len(recs)); err != nil {
			return nil, 0, err
		}
		chunkPause := time.Duration(0)
		if cfg.TimeScale > 0 && len(recs) > 0 {
			perRec := tech.Duration() / float64(len(recs)) * cfg.TimeScale
			chunkPause = time.Duration(perRec * streamChunk * float64(time.Second))
		}
		for at := 0; at < len(recs); at += streamChunk {
			end := at + streamChunk
			if end > len(recs) {
				end = len(recs)
			}
			if wedge != nil {
				if wch := wedge(); wch != nil {
					select {
					case <-wch: // fault cleared; resume streaming
					case <-abort:
						return recs[:at], overloads, fmt.Errorf("%w after %d records", ErrAborted, at)
					}
				}
			}
			if err := WriteMPTRecords(w, recs[at:end]); err != nil {
				return nil, 0, err
			}
			if chunkPause > 0 {
				select {
				case <-time.After(chunkPause):
				case <-abort:
					return recs[:end], overloads, fmt.Errorf("%w after %d records", ErrAborted, end)
				}
			} else if abort != nil {
				select {
				case <-abort:
					return recs[:end], overloads, fmt.Errorf("%w after %d records", ErrAborted, end)
				default:
				}
			}
		}
	}
	return recs, overloads, nil
}

// acquirePotential drives the diffusion simulator with the technique's
// waveform.
func acquirePotential(cellCfg echem.CellConfig, tech potentialTechnique) ([]Record, error) {
	w, err := tech.waveform()
	if err != nil {
		return nil, err
	}
	vg, err := echem.Simulate(cellCfg, w, tech.Samples())
	if err != nil {
		return nil, err
	}
	recs := make([]Record, len(vg.Points))
	for i, p := range vg.Points {
		recs[i] = Record{T: p.T, Ewe: p.E.Volts(), I: p.I.Amperes(), Cycle: tech.cycleAt(p.T)}
	}
	return recs, nil
}

// acquireOCV samples the rest potential with no applied current. A
// mostly-reduced solution rests below the formal potential; the
// simulated trace adds slow drift and noise.
func acquireOCV(cellCfg echem.CellConfig, tech OCV) []Record {
	rng := rand.New(rand.NewSource(cellCfg.NoiseSeed*31 + 17))
	n := tech.Samples()
	recs := make([]Record, n+1)

	rest := 0.0
	connected := cellCfg.Fault != echem.FaultDisconnectedElectrode
	if connected {
		// ~1% oxidised impurity: E = E0 + (RT/nF)·ln(0.01).
		couple := cellCfg.Solution.Analyte
		rtnf := echem.GasConstant * cellCfg.Temperature.Kelvin() /
			(float64(couple.Electrons) * echem.Faraday)
		rest = couple.FormalPotential.Volts() + rtnf*math.Log(0.01)
	}
	drift := 0.0
	for i := 0; i <= n; i++ {
		t := tech.Seconds * float64(i) / float64(n)
		scale := 0.0005
		if !connected {
			scale = 0.01 // floating input drifts hard
		}
		drift += rng.NormFloat64() * scale
		recs[i] = Record{T: t, Ewe: rest + drift, I: 0, Cycle: 0}
	}
	return recs
}

// acquireCP computes the constant-current potential response from
// Sand's equation (see the CP type documentation).
func acquireCP(cellCfg echem.CellConfig, tech CP) []Record {
	eff := cellCfg.Effective()
	rng := rand.New(rand.NewSource(eff.NoiseSeed*37 + 11))
	n := tech.Samples()
	recs := make([]Record, n+1)
	i0 := tech.Current.Amperes()

	couple := eff.Solution.Analyte
	nElec := float64(couple.Electrons)
	area := eff.ElectrodeArea.SquareMeters()
	bulk := eff.Solution.Concentration.MolesPerCubicMeter()
	rtnf := echem.GasConstant * eff.Temperature.Kelvin() / (nElec * echem.Faraday)
	const rail = 10.0 // compliance limit in volts

	disconnected := eff.Fault == echem.FaultDisconnectedElectrode || bulk <= 0
	for s := 0; s <= n; s++ {
		t := tech.Seconds * float64(s) / float64(n)
		var e float64
		switch {
		case disconnected:
			// Galvanostat cannot push current into an open circuit:
			// the output rails.
			e = rail + rng.NormFloat64()*0.05
		case t == 0:
			e = couple.FormalPotential.Volts() + rtnf*math.Log(1e-3)
		default:
			dep := 2 * math.Abs(i0) * math.Sqrt(t) /
				(nElec * echem.Faraday * area * math.Sqrt(math.Pi*couple.DiffusionReduced))
			cr := bulk - dep
			co := dep
			if cr <= bulk*1e-6 {
				e = rail // past the Sand transition time
			} else {
				e = couple.FormalPotential.Volts() + rtnf*math.Log(co/cr)
			}
		}
		e += rng.NormFloat64() * 0.0002
		if e > rail {
			e = rail
		}
		recs[s] = Record{T: t, Ewe: e, I: i0, Cycle: 0}
	}
	return recs
}
