package potentiostat

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"ice/internal/echem"
	"ice/internal/labstate"
	"ice/internal/units"
)

func TestEISTechniqueMetadata(t *testing.T) {
	e := DefaultEIS()
	if e.Name() != "PEIS" {
		t.Errorf("Name = %q", e.Name())
	}
	if err := e.Validate(); err != nil {
		t.Errorf("default EIS invalid: %v", err)
	}
	if got := e.Samples(); got != 61 {
		t.Errorf("Samples = %d, want 61 (6 decades × 10 + 1)", got)
	}
	if e.Duration() <= 0 {
		t.Errorf("Duration = %v", e.Duration())
	}
	bad := EIS{FreqMinHz: 10, FreqMaxHz: 1, PointsPerDecade: 5}
	if err := bad.Validate(); err == nil {
		t.Error("inverted sweep accepted")
	}
}

func TestRunEISOnDevice(t *testing.T) {
	cell := labstate.DefaultCell()
	cell.AddSolution(echem.FerroceneSolution(), units.Milliliters(8))
	sink := NewMemSink()
	d := NewSP200(cell, sink)
	// EIS needs the pipeline through firmware.
	if _, _, err := d.RunEIS(1, DefaultEIS()); !errors.Is(err, ErrBadState) {
		t.Errorf("RunEIS before pipeline = %v, want ErrBadState", err)
	}
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()

	points, name, err := d.RunEIS(1, DefaultEIS())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 61 {
		t.Errorf("points = %d", len(points))
	}
	if !strings.HasPrefix(name, "PEIS_ch1_") {
		t.Errorf("file = %q", name)
	}
	// The file parses back identically (within print precision).
	data, ok := sink.Bytes(name)
	if !ok {
		t.Fatal("EIS file missing")
	}
	label, parsed, err := ParseEIS(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if label != "normal" {
		t.Errorf("label = %q", label)
	}
	if len(parsed) != len(points) {
		t.Fatalf("parsed %d points, want %d", len(parsed), len(points))
	}
	for i := range points {
		if math.Abs(parsed[i].Frequency-points[i].Frequency)/points[i].Frequency > 1e-5 {
			t.Fatalf("freq mismatch at %d", i)
		}
		if relDiff(parsed[i].Zre, points[i].Zre) > 1e-5 || relDiff(parsed[i].Zim, points[i].Zim) > 1e-5 {
			t.Fatalf("Z mismatch at %d: %+v vs %+v", i, parsed[i], points[i])
		}
	}
	// Event log recorded the sweep.
	log := strings.Join(d.EventLog(), "\n")
	if !strings.Contains(log, "PEIS sweep complete") {
		t.Errorf("event log missing sweep: %s", log)
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestRunEISInvalidTechnique(t *testing.T) {
	cell := labstate.DefaultCell()
	cell.AddSolution(echem.FerroceneSolution(), units.Milliliters(8))
	d := NewSP200(cell, NewMemSink())
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	if _, _, err := d.RunEIS(1, EIS{FreqMinHz: -1, FreqMaxHz: 1}); err == nil {
		t.Error("invalid sweep accepted")
	}
	if _, _, err := d.RunEIS(9, DefaultEIS()); err == nil {
		t.Error("bad channel accepted")
	}
}

func TestParseEISRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "nope\n", eisMagic + "\nWAT : x\n"} {
		if _, _, err := ParseEIS(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseEIS(%q) accepted", bad)
		}
	}
}

func TestEISFileNameSequenceAdvances(t *testing.T) {
	cell := labstate.DefaultCell()
	cell.AddSolution(echem.FerroceneSolution(), units.Milliliters(8))
	d := NewSP200(cell, NewMemSink())
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	_, n1, err := d.RunEIS(1, DefaultEIS())
	if err != nil {
		t.Fatal(err)
	}
	_, n2, err := d.RunEIS(1, DefaultEIS())
	if err != nil {
		t.Fatal(err)
	}
	if n1 == n2 {
		t.Errorf("EIS runs reused file name %q", n1)
	}
}
