package potentiostat

import (
	"errors"
	"testing"
	"time"
)

func TestAbortPacedAcquisition(t *testing.T) {
	d, _, sink := filledDevice(t)
	cfg := DefaultSystemConfig()
	cfg.TimeScale = 0.05 // 30 s CV → 1.5 s wall
	if err := d.Initialize(cfg); err != nil {
		t.Fatal(err)
	}
	d.Connect()
	d.LoadFirmware()
	cv := DefaultCV()
	cv.PointsPerCycle = 1200
	d.ConfigureTechnique(1, cv)
	d.LoadTechnique(1)
	if err := d.StartChannel(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let some chunks stream
	if err := d.AbortChannel(1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := d.Wait(1)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("Wait after abort = %v, want ErrAborted", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("abort did not take effect promptly")
	}
	// The partial measurement file still parses.
	name, err := d.MeasurementFileName(1)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := sink.Bytes(name); !ok || len(data) == 0 {
		t.Error("no partial measurement file after abort")
	}
	// The channel is reusable.
	cv.PointsPerCycle = 100
	if err := d.ConfigureTechnique(1, cv); err != nil {
		t.Fatal(err)
	}
	d.LoadTechnique(1)
	if err := d.StartChannel(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(1); err != nil {
		t.Fatalf("run after abort: %v", err)
	}
}

func TestAbortIdleChannelIsNoop(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	if err := d.AbortChannel(1); err != nil {
		t.Errorf("abort idle channel = %v", err)
	}
	if err := d.AbortChannel(9); err == nil {
		t.Error("abort bad channel accepted")
	}
}

func TestDoubleAbortIsSafe(t *testing.T) {
	d, _, _ := filledDevice(t)
	cfg := DefaultSystemConfig()
	cfg.TimeScale = 0.05
	d.Initialize(cfg)
	d.Connect()
	d.LoadFirmware()
	cv := DefaultCV()
	cv.PointsPerCycle = 1200
	d.ConfigureTechnique(1, cv)
	d.LoadTechnique(1)
	d.StartChannel(1)
	time.Sleep(50 * time.Millisecond)
	if err := d.AbortChannel(1); err != nil {
		t.Fatal(err)
	}
	if err := d.AbortChannel(1); err != nil {
		t.Fatalf("second abort = %v", err)
	}
	d.Wait(1)
}
