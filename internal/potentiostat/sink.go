package potentiostat

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Sink receives measurement files as the instrument produces them. The
// control agent points it at the directory the data channel exports.
type Sink interface {
	// Create opens a named measurement file for streaming writes.
	Create(name string) (io.WriteCloser, error)
}

// DirSink writes measurement files into a directory.
type DirSink struct {
	// Dir is the destination directory; it must exist.
	Dir string
}

// Create implements Sink. Names are sanitised to their base component
// so instrument-supplied names cannot escape the directory.
func (d DirSink) Create(name string) (io.WriteCloser, error) {
	base := filepath.Base(name)
	if base == "." || base == ".." || base == string(filepath.Separator) {
		return nil, fmt.Errorf("potentiostat: invalid measurement file name %q", name)
	}
	return os.Create(filepath.Join(d.Dir, base))
}

// MemSink keeps measurement files in memory, for tests and for the
// single-process workbench.
type MemSink struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink { return &MemSink{files: make(map[string]*memFile)} }

// Create implements Sink.
func (m *MemSink) Create(name string) (io.WriteCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{sink: m, name: name}
	m.files[name] = f
	return f, nil
}

// Bytes returns the current contents of a file.
func (m *MemSink) Bytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.buf.Bytes()...), true
}

// Names returns the file names created so far.
func (m *MemSink) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for k := range m.files {
		out = append(out, k)
	}
	return out
}

// Find returns the first file whose name contains substr.
func (m *MemSink) Find(substr string) ([]byte, string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if strings.Contains(name, substr) {
			return append([]byte(nil), f.buf.Bytes()...), name, true
		}
	}
	return nil, "", false
}

type memFile struct {
	sink *MemSink
	name string
	buf  bytes.Buffer
}

func (f *memFile) Write(p []byte) (int, error) {
	f.sink.mu.Lock()
	defer f.sink.mu.Unlock()
	return f.buf.Write(p)
}

func (f *memFile) Close() error { return nil }
