package potentiostat

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// FaultMode selects a device-level failure behaviour. Unlike the
// netsim layer — which corrupts the wire between facilities — these
// faults live inside the instrument itself, the failure class the
// network-chaos suite never models: a controller that stops answering,
// an acquisition that never finishes, an aging interface that slows
// down, a flaky backplane that errors in bursts.
type FaultMode string

const (
	// FaultNone clears any injected fault.
	FaultNone FaultMode = ""
	// FaultHang blocks every gated command (including status reads)
	// until the fault is cleared — a controller whose firmware stopped
	// scheduling its command loop. A liveness probe with a deadline is
	// the only way to notice it from outside.
	FaultHang FaultMode = "hang"
	// FaultWedgeBusy lets commands and status reads answer normally but
	// stalls in-flight acquisition streaming at the next chunk boundary:
	// the channel reports busy forever and Wait never returns. Only an
	// AbortChannel (the emergency-stop path, which bypasses fault
	// gating) or clearing the fault unwedges it.
	FaultWedgeBusy FaultMode = "wedge-busy"
	// FaultSlowDrift delays every gated command, the latency growing
	// multiplicatively per call — a thermal or firmware degradation that
	// starts subtle and ends unusable.
	FaultSlowDrift FaultMode = "slow-drift"
	// FaultErrorBurst fails the next Count gated commands with
	// ErrInjected, then self-clears — a transient controller brown-out.
	FaultErrorBurst FaultMode = "error-burst"
)

// ErrInjected is wrapped by errors produced by an error-burst fault.
var ErrInjected = errors.New("potentiostat: injected device fault")

// DeviceFault parameterises one injected fault. Inject mid-phase at
// any time — gating takes effect at the next command (or, for
// wedge-busy, the next streamed chunk) — and clear with ClearFault.
type DeviceFault struct {
	// Mode selects the behaviour; FaultNone clears.
	Mode FaultMode
	// Count bounds an error-burst: that many commands fail, then the
	// fault self-clears (default 3).
	Count int
	// Delay is slow-drift's initial per-command latency (default 10ms).
	Delay time.Duration
	// Growth multiplies the slow-drift delay after each command
	// (default 1.25; clamped to at least 1).
	Growth float64
	// Seed drives slow-drift's deterministic jitter (same xorshift64
	// generator as netsim fault sampling). 0 means seed 1.
	Seed int64
}

// faultState is the injected-fault side of a device. It has its own
// mutex — never the device mutex — so faults can be injected, observed
// and cleared while a hung command blocks, and so the gate itself
// never deadlocks against device state.
type faultState struct {
	mu      sync.Mutex
	mode    FaultMode
	cleared chan struct{} // closed when the current fault clears
	count   int           // error-burst commands remaining
	delay   time.Duration // slow-drift current latency
	growth  float64
	rng     uint64
}

// set installs a fault spec (validated) or clears the active one.
func (f *faultState) set(spec DeviceFault) error {
	switch spec.Mode {
	case FaultNone, FaultHang, FaultWedgeBusy, FaultSlowDrift, FaultErrorBurst:
	default:
		return fmt.Errorf("potentiostat: unknown fault mode %q", spec.Mode)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cleared != nil {
		close(f.cleared) // release anything blocked on the previous fault
		f.cleared = nil
	}
	f.mode = spec.Mode
	if spec.Mode == FaultNone {
		return nil
	}
	f.cleared = make(chan struct{})
	f.count = spec.Count
	if f.count <= 0 {
		f.count = 3
	}
	f.delay = spec.Delay
	if f.delay <= 0 {
		f.delay = 10 * time.Millisecond
	}
	f.growth = spec.Growth
	if f.growth < 1 {
		f.growth = 1.25
	}
	f.rng = uint64(spec.Seed)
	if f.rng == 0 {
		f.rng = 1
	}
	return nil
}

// clearLocked resets to no-fault, releasing blocked commands.
func (f *faultState) clearLocked() {
	f.mode = FaultNone
	if f.cleared != nil {
		close(f.cleared)
		f.cleared = nil
	}
}

// active returns the current mode.
func (f *faultState) active() FaultMode {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mode
}

// xorshift64 is the same deterministic sampler netsim faults use.
func (f *faultState) xorshift64() uint64 {
	x := f.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.rng = x
	return x
}

// admit gates one command. It blocks for hang (until the fault
// clears), sleeps for slow-drift, and returns ErrInjected for
// error-burst. Wedge-busy admits commands — its damage is done in the
// streaming loop via wedgeGate.
func (f *faultState) admit(op string) error {
	f.mu.Lock()
	switch f.mode {
	case FaultHang:
		cleared := f.cleared
		f.mu.Unlock()
		<-cleared
		return nil
	case FaultSlowDrift:
		delay := f.delay
		// Grow multiplicatively with ±25% deterministic jitter.
		jitter := 0.75 + 0.5*float64(f.xorshift64()>>11)/float64(1<<53)
		f.delay = time.Duration(float64(f.delay) * f.growth)
		f.mu.Unlock()
		time.Sleep(time.Duration(float64(delay) * jitter))
		return nil
	case FaultErrorBurst:
		f.count--
		if f.count <= 0 {
			f.clearLocked()
		}
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrInjected, op)
	default:
		f.mu.Unlock()
		return nil
	}
}

// admitVoid gates commands that cannot report an error (Status, Busy):
// hang still blocks and slow-drift still sleeps, but error-burst
// passes — a status register keeps answering through a flaky command
// path, which is exactly why busy-wedges need probe deadlines and
// phase budgets to detect.
func (f *faultState) admitVoid() {
	f.mu.Lock()
	switch f.mode {
	case FaultHang:
		cleared := f.cleared
		f.mu.Unlock()
		<-cleared
	case FaultSlowDrift:
		delay := f.delay
		f.mu.Unlock()
		time.Sleep(delay)
	default:
		f.mu.Unlock()
	}
}

// wedgeGate returns a channel to block on before streaming the next
// chunk while a wedge-busy (or hang) fault is active, nil otherwise.
// The channel closes when the fault clears.
func (f *faultState) wedgeGate() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mode == FaultWedgeBusy || f.mode == FaultHang {
		return f.cleared
	}
	return nil
}

// InjectFault installs (or, with FaultNone, clears) a device-level
// fault. Safe to call at any moment, including while a previous fault
// has commands blocked — the old fault is released first.
func (d *SP200) InjectFault(spec DeviceFault) error {
	if err := d.faults.set(spec); err != nil {
		return err
	}
	if spec.Mode != FaultNone {
		d.mu.Lock()
		d.logf("FAULT INJECTED: %s", spec.Mode)
		d.mu.Unlock()
	}
	return nil
}

// ClearFault removes any injected fault, releasing blocked commands
// and wedged acquisitions.
func (d *SP200) ClearFault() {
	d.faults.mu.Lock()
	wasActive := d.faults.mode != FaultNone
	d.faults.clearLocked()
	d.faults.mu.Unlock()
	if wasActive {
		d.mu.Lock()
		d.logf("FAULT CLEARED")
		d.mu.Unlock()
	}
}

// ActiveFault reports the injected fault mode (FaultNone when healthy).
func (d *SP200) ActiveFault() FaultMode { return d.faults.active() }
