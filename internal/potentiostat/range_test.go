package potentiostat

import (
	"math"
	"strings"
	"testing"
)

func TestCurrentRangeClipsAndCountsOverloads(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	// The ferrocene peak is ~40 µA; a 10 µA range must clip it.
	if err := d.SetCurrentRange(1, 1e-5); err != nil {
		t.Fatal(err)
	}
	cv := DefaultCV()
	cv.PointsPerCycle = 400
	d.ConfigureTechnique(1, cv)
	d.LoadTechnique(1)
	d.StartChannel(1)
	recs, err := d.Wait(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if math.Abs(r.I) > 1e-5+1e-12 {
			t.Fatalf("current %v beyond 10 µA range", r.I)
		}
	}
	n, err := d.Overloads(1)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no overloads counted for a clipped run")
	}
	if !strings.Contains(strings.Join(d.EventLog(), "\n"), "OVERLOAD") {
		t.Error("overload not logged")
	}
}

func TestAutorangeDoesNotClip(t *testing.T) {
	d, _, _ := filledDevice(t)
	cv := DefaultCV()
	cv.PointsPerCycle = 400
	recs := runPipeline(t, d, cv)
	peak := 0.0
	for _, r := range recs {
		if r.I > peak {
			peak = r.I
		}
	}
	if peak < 3e-5 {
		t.Errorf("autorange peak %v suspiciously low", peak)
	}
	n, _ := d.Overloads(1)
	if n != 0 {
		t.Errorf("autorange counted %d overloads", n)
	}
}

func TestGenerousRangePassesSignal(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	if err := d.SetCurrentRange(1, 1e-3); err != nil {
		t.Fatal(err)
	}
	cv := DefaultCV()
	cv.PointsPerCycle = 300
	d.ConfigureTechnique(1, cv)
	d.LoadTechnique(1)
	d.StartChannel(1)
	if _, err := d.Wait(1); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Overloads(1); n != 0 {
		t.Errorf("1 mA range clipped %d samples of a 40 µA signal", n)
	}
}

func TestSetCurrentRangeValidation(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	if err := d.SetCurrentRange(1, 3e-5); err == nil {
		t.Error("non-decade range accepted")
	}
	if err := d.SetCurrentRange(1, 0); err != nil {
		t.Errorf("autorange rejected: %v", err)
	}
	if err := d.SetCurrentRange(9, 1e-5); err == nil {
		t.Error("bad channel accepted")
	}
}
