package potentiostat

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"ice/internal/echem"
	"ice/internal/labstate"
	"ice/internal/units"
)

// filledDevice returns an SP200 on a properly filled ferrocene cell.
func filledDevice(t *testing.T) (*SP200, *labstate.Cell, *MemSink) {
	t.Helper()
	cell := labstate.DefaultCell()
	if err := cell.AddSolution(echem.FerroceneSolution(), units.Milliliters(8)); err != nil {
		t.Fatal(err)
	}
	sink := NewMemSink()
	return NewSP200(cell, sink), cell, sink
}

// runPipeline drives the eight-step Fig. 6 pipeline through Wait.
func runPipeline(t *testing.T, d *SP200, tech Technique) []Record {
	t.Helper()
	if err := d.Initialize(DefaultSystemConfig()); err != nil {
		t.Fatalf("Initialize: %v", err)
	}
	if err := d.Connect(); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := d.LoadFirmware(); err != nil {
		t.Fatalf("LoadFirmware: %v", err)
	}
	if err := d.ConfigureTechnique(1, tech); err != nil {
		t.Fatalf("ConfigureTechnique: %v", err)
	}
	if err := d.LoadTechnique(1); err != nil {
		t.Fatalf("LoadTechnique: %v", err)
	}
	if err := d.StartChannel(1); err != nil {
		t.Fatalf("StartChannel: %v", err)
	}
	recs, err := d.Wait(1)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return recs
}

func TestFullCVPipeline(t *testing.T) {
	d, _, sink := filledDevice(t)
	cv := DefaultCV()
	cv.PointsPerCycle = 600
	recs := runPipeline(t, d, cv)

	if len(recs) != 601 {
		t.Fatalf("records = %d, want 601", len(recs))
	}
	// Find the anodic peak; it should match Randles–Ševčík within the
	// simulator's tolerance plus noise.
	var ip float64
	for _, r := range recs {
		if r.I > ip {
			ip = r.I
		}
	}
	want := echem.RandlesSevcik(1, units.SquareCentimeters(0.07), units.Millimolar(2),
		units.MillivoltsPerSecond(50), 2.4e-9, units.Celsius(25)).Amperes()
	if math.Abs(ip-want)/want > 0.08 {
		t.Errorf("peak %v vs theory %v", ip, want)
	}

	// The measurement file exists and parses back to the same count.
	name, err := d.MeasurementFileName(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "CV_ch1_") {
		t.Errorf("file name = %q", name)
	}
	data, ok := sink.Bytes(name)
	if !ok {
		t.Fatalf("measurement file %q missing from sink", name)
	}
	mf, err := ParseMPT(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Records) != len(recs) {
		t.Errorf("file records = %d, want %d", len(mf.Records), len(recs))
	}
	if mf.Technique != "CV" || mf.Label != "normal" {
		t.Errorf("file header = %q %q", mf.Technique, mf.Label)
	}
}

func TestPipelineStepOrderEnforced(t *testing.T) {
	d, _, _ := filledDevice(t)
	if err := d.Connect(); !errors.Is(err, ErrBadState) {
		t.Errorf("Connect before Initialize = %v, want ErrBadState", err)
	}
	if err := d.LoadFirmware(); !errors.Is(err, ErrBadState) {
		t.Errorf("LoadFirmware before Connect = %v", err)
	}
	if err := d.ConfigureTechnique(1, DefaultCV()); !errors.Is(err, ErrBadState) {
		t.Errorf("ConfigureTechnique before pipeline = %v", err)
	}
	if err := d.Initialize(DefaultSystemConfig()); err != nil {
		t.Fatal(err)
	}
	if err := d.Initialize(DefaultSystemConfig()); !errors.Is(err, ErrBadState) {
		t.Errorf("double Initialize = %v", err)
	}
	if err := d.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadTechnique(1); err == nil {
		t.Error("LoadTechnique without ConfigureTechnique accepted")
	}
	if err := d.LoadFirmware(); err != nil {
		t.Fatal(err)
	}
	if err := d.StartChannel(1); err == nil {
		t.Error("StartChannel without loaded technique accepted")
	}
}

func TestInitializeValidation(t *testing.T) {
	d, _, _ := filledDevice(t)
	bad := DefaultSystemConfig()
	bad.Channels = 0
	if err := d.Initialize(bad); err == nil {
		t.Error("zero channels accepted")
	}
	bad = DefaultSystemConfig()
	bad.ElectrodeArea = 0
	if err := d.Initialize(bad); err == nil {
		t.Error("zero area accepted")
	}
	bad = DefaultSystemConfig()
	bad.FirmwarePath = ""
	if err := d.Initialize(bad); err == nil {
		t.Error("missing firmware accepted")
	}
}

func TestChannelRangeChecked(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	if err := d.ConfigureTechnique(0, DefaultCV()); err == nil {
		t.Error("channel 0 accepted")
	}
	if err := d.ConfigureTechnique(3, DefaultCV()); err == nil {
		t.Error("channel 3 accepted on 2-channel device")
	}
	if _, err := d.Wait(1); err == nil {
		t.Error("Wait on never-started channel accepted")
	}
}

func TestConfigureRejectsInvalidTechnique(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	bad := DefaultCV()
	bad.Program.Rate = 0
	if err := d.ConfigureTechnique(1, bad); err == nil {
		t.Error("invalid CV accepted")
	}
	if err := d.ConfigureTechnique(1, OCV{Seconds: -1}); err == nil {
		t.Error("invalid OCV accepted")
	}
	if err := d.ConfigureTechnique(1, CP{Seconds: 1, Current: 0}); err == nil {
		t.Error("zero-current CP accepted")
	}
}

func TestEventLogMatchesFig6(t *testing.T) {
	d, _, _ := filledDevice(t)
	cv := DefaultCV()
	cv.PointsPerCycle = 200
	runPipeline(t, d, cv)
	log := strings.Join(d.EventLog(), "\n")
	for _, want := range []string{
		"Initialization done!!",
		"Connection to the Potentiostat is Done",
		"> Loading kernel4.bin ...",
		"> ... firmware loaded",
		"CV technique initialization is done !!",
		"Loading technique is done !!",
		"Channel connection is initiated",
		"Channel is automatically disconnected",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q\nlog:\n%s", want, log)
		}
	}
}

func TestDisconnectedElectrodeProducesFlatline(t *testing.T) {
	d, cell, sink := filledDevice(t)
	cell.SetElectrodesConnected(false)
	cv := DefaultCV()
	cv.PointsPerCycle = 300
	recs := runPipeline(t, d, cv)
	for _, r := range recs {
		if math.Abs(r.I) > 1e-6 {
			t.Fatalf("open-circuit current %v", r.I)
		}
	}
	name, _ := d.MeasurementFileName(1)
	data, _ := sink.Bytes(name)
	mf, err := ParseMPT(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if mf.Label != "disconnected-electrode" {
		t.Errorf("file label = %q", mf.Label)
	}
}

func TestLowVolumeLabelInFile(t *testing.T) {
	cell := labstate.DefaultCell()
	cell.AddSolution(echem.FerroceneSolution(), units.Milliliters(2)) // below 5 mL minimum
	sink := NewMemSink()
	d := NewSP200(cell, sink)
	cv := DefaultCV()
	cv.PointsPerCycle = 300
	runPipeline(t, d, cv)
	name, _ := d.MeasurementFileName(1)
	data, _ := sink.Bytes(name)
	mf, _ := ParseMPT(bytes.NewReader(data))
	if mf.Label != "low-volume" {
		t.Errorf("file label = %q, want low-volume", mf.Label)
	}
}

func TestOCVTechnique(t *testing.T) {
	d, _, _ := filledDevice(t)
	recs := runPipeline(t, d, OCV{Seconds: 10, Points: 100})
	if len(recs) != 101 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if r.I != 0 {
			t.Fatalf("OCV passed current %v", r.I)
		}
	}
	// Rest potential of a mostly reduced solution sits below E0'.
	if recs[0].Ewe >= 0.40 {
		t.Errorf("rest potential %v ≥ E0'", recs[0].Ewe)
	}
	if recs[0].Ewe < 0.40-0.3 {
		t.Errorf("rest potential %v implausibly low", recs[0].Ewe)
	}
}

func TestCPTechniqueShowsSandTransition(t *testing.T) {
	d, _, _ := filledDevice(t)
	// Pick a current whose Sand time falls inside the run.
	i := units.Microamperes(60)
	tau := SandTransitionTime(1, units.SquareCentimeters(0.07), units.Millimolar(2), 2.4e-9, i)
	if tau <= 0.5 || tau >= 60 {
		t.Fatalf("test setup: tau = %v s not in window", tau)
	}
	recs := runPipeline(t, d, CP{Current: i, Seconds: tau * 2, Points: 400})
	// Before τ/2 the potential sits near E0; after 1.5τ it must have
	// railed upward.
	var early, late float64
	for _, r := range recs {
		if r.T > tau*0.4 && r.T < tau*0.5 {
			early = r.Ewe
		}
		if r.T > tau*1.5 {
			late = r.Ewe
			break
		}
	}
	if math.Abs(early-0.40) > 0.1 {
		t.Errorf("pre-transition potential %v not near E0'", early)
	}
	if late < 5 {
		t.Errorf("post-transition potential %v did not rail", late)
	}
}

func TestCPOnOpenCircuitRails(t *testing.T) {
	d, cell, _ := filledDevice(t)
	cell.SetElectrodesConnected(false)
	recs := runPipeline(t, d, CP{Current: units.Microamperes(10), Seconds: 5, Points: 100})
	for _, r := range recs {
		if r.Ewe < 5 {
			t.Fatalf("open-circuit CP potential %v, want railed", r.Ewe)
		}
	}
}

func TestLSVTechnique(t *testing.T) {
	d, _, _ := filledDevice(t)
	recs := runPipeline(t, d, LSV{
		Ei: units.Volts(0.05), Ef: units.Volts(0.8),
		Rate: units.MillivoltsPerSecond(50), Points: 500,
	})
	// LSV forward sweep only: positive peak, no negative peak.
	var ipa, ipc float64
	for _, r := range recs {
		if r.I > ipa {
			ipa = r.I
		}
		if r.I < ipc {
			ipc = r.I
		}
	}
	if ipa < 1e-5 {
		t.Errorf("LSV peak %v too small", ipa)
	}
	if ipc < -2e-6 {
		t.Errorf("LSV shows cathodic current %v on a forward sweep", ipc)
	}
}

func TestMultiCycleCycleNumbers(t *testing.T) {
	d, _, _ := filledDevice(t)
	cv := DefaultCV()
	cv.Program.Cycles = 3
	cv.PointsPerCycle = 200
	recs := runPipeline(t, d, cv)
	seen := map[int]bool{}
	for _, r := range recs {
		seen[r.Cycle] = true
	}
	for c := 0; c < 3; c++ {
		if !seen[c] {
			t.Errorf("cycle %d never recorded", c)
		}
	}
	if seen[3] {
		t.Error("cycle 3 recorded on a 3-cycle run")
	}
	// Cycle numbers are non-decreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].Cycle < recs[i-1].Cycle {
			t.Fatalf("cycle regressed at %d", i)
		}
	}
}

func TestSecondRunGetsNewFileAndSeed(t *testing.T) {
	d, _, sink := filledDevice(t)
	cv := DefaultCV()
	cv.PointsPerCycle = 150
	runPipeline(t, d, cv)
	name1, _ := d.MeasurementFileName(1)

	// Re-run on the same channel without re-initialising.
	if err := d.ConfigureTechnique(1, cv); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadTechnique(1); err != nil {
		t.Fatal(err)
	}
	if err := d.StartChannel(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(1); err != nil {
		t.Fatal(err)
	}
	name2, _ := d.MeasurementFileName(1)
	if name1 == name2 {
		t.Errorf("second run reused file name %q", name1)
	}
	if len(sink.Names()) != 2 {
		t.Errorf("sink holds %d files, want 2", len(sink.Names()))
	}
}

func TestTwoChannelsRunConcurrently(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	cv := DefaultCV()
	cv.PointsPerCycle = 200
	for _, ch := range []int{1, 2} {
		if err := d.ConfigureTechnique(ch, cv); err != nil {
			t.Fatal(err)
		}
		if err := d.LoadTechnique(ch); err != nil {
			t.Fatal(err)
		}
		if err := d.StartChannel(ch); err != nil {
			t.Fatal(err)
		}
	}
	for _, ch := range []int{1, 2} {
		recs, err := d.Wait(ch)
		if err != nil {
			t.Fatalf("channel %d: %v", ch, err)
		}
		if len(recs) != 201 {
			t.Errorf("channel %d records = %d", ch, len(recs))
		}
	}
}

func TestDoubleStartRejected(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	cv := DefaultCV()
	cv.PointsPerCycle = 5000 // long enough to still be running
	d.ConfigureTechnique(1, cv)
	d.LoadTechnique(1)
	if err := d.StartChannel(1); err != nil {
		t.Fatal(err)
	}
	err := d.StartChannel(1)
	if err == nil && d.Busy(1) {
		t.Error("double StartChannel accepted while running")
	}
	d.Wait(1)
}

func TestDisconnectWaitsForRuns(t *testing.T) {
	d, _, _ := filledDevice(t)
	d.Initialize(DefaultSystemConfig())
	d.Connect()
	d.LoadFirmware()
	cv := DefaultCV()
	cv.PointsPerCycle = 1000
	d.ConfigureTechnique(1, cv)
	d.LoadTechnique(1)
	d.StartChannel(1)
	if err := d.Disconnect(); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateOff {
		t.Errorf("state after Disconnect = %v", d.State())
	}
	if d.Busy(1) {
		t.Error("channel still busy after Disconnect")
	}
	if err := d.Disconnect(); !errors.Is(err, ErrBadState) {
		t.Errorf("double Disconnect = %v", err)
	}
}

func TestStatusString(t *testing.T) {
	d, _, _ := filledDevice(t)
	if s := d.Status(); !strings.Contains(s, "off") {
		t.Errorf("Status = %q", s)
	}
	d.Initialize(DefaultSystemConfig())
	if s := d.Status(); !strings.Contains(s, "initialized") || !strings.Contains(s, "channels=2") {
		t.Errorf("Status = %q", s)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateOff: "off", StateInitialized: "initialized",
		StateConnected: "connected", StateFirmwareLoaded: "firmware-loaded",
		State(9): "state(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func TestSandTransitionTime(t *testing.T) {
	// τ scales inversely with i².
	tau1 := SandTransitionTime(1, units.SquareCentimeters(0.07), units.Millimolar(2), 2.4e-9, units.Microamperes(60))
	tau2 := SandTransitionTime(1, units.SquareCentimeters(0.07), units.Millimolar(2), 2.4e-9, units.Microamperes(120))
	if math.Abs(tau1/tau2-4) > 1e-9 {
		t.Errorf("tau ratio = %v, want 4", tau1/tau2)
	}
	if !math.IsInf(SandTransitionTime(1, units.SquareCentimeters(1), units.Millimolar(1), 1e-9, 0), 1) {
		t.Error("zero current should give infinite tau")
	}
}

func TestTechniqueMetadata(t *testing.T) {
	cv := DefaultCV()
	if cv.Name() != "CV" || cv.Samples() != 1500 {
		t.Errorf("CV metadata: %q %d", cv.Name(), cv.Samples())
	}
	if math.Abs(cv.Duration()-30) > 1e-9 {
		t.Errorf("CV duration = %v, want 30", cv.Duration())
	}
	l := LSV{Ei: units.Volts(0), Ef: units.Volts(1), Rate: units.VoltsPerSecond(0.5)}
	if l.Samples() != 1000 || math.Abs(l.Duration()-2) > 1e-9 {
		t.Errorf("LSV metadata: %d %v", l.Samples(), l.Duration())
	}
	ca := CA{Rest: units.Volts(0), Step: units.Volts(0.8), RestSeconds: 1, StepSeconds: 4}
	if ca.Name() != "CA" || ca.Duration() != 5 || ca.Samples() != 1000 {
		t.Errorf("CA metadata: %q %v %d", ca.Name(), ca.Duration(), ca.Samples())
	}
	o := OCV{Seconds: 10}
	if o.Name() != "OCV" || o.Samples() != 200 {
		t.Errorf("OCV metadata: %q %d", o.Name(), o.Samples())
	}
	cp := CP{Current: units.Microamperes(10), Seconds: 5}
	if cp.Name() != "CP" || cp.Samples() != 500 {
		t.Errorf("CP metadata: %q %d", cp.Name(), cp.Samples())
	}
}

func TestCATechniqueThroughDevice(t *testing.T) {
	d, _, _ := filledDevice(t)
	recs := runPipeline(t, d, CA{
		Rest: units.Volts(0.05), Step: units.Volts(0.9),
		RestSeconds: 0.5, StepSeconds: 4.5, Points: 500,
	})
	// Current decays after the step.
	var at1, at4 float64
	for _, r := range recs {
		if at1 == 0 && r.T >= 1.5 {
			at1 = r.I
		}
		if r.T >= 4.5 {
			at4 = r.I
			break
		}
	}
	if at1 <= at4 {
		t.Errorf("CA current did not decay: i(1.5s)=%v i(4.5s)=%v", at1, at4)
	}
}
