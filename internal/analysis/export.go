package analysis

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteCSV emits "potential_V,current_A" rows with a header — the I-V
// profile data behind Fig. 7, ready for any plotting tool.
func WriteCSV(w io.Writer, potential, current []float64) error {
	if len(potential) != len(current) {
		return fmt.Errorf("analysis: %d potentials vs %d currents", len(potential), len(current))
	}
	if _, err := fmt.Fprintln(w, "potential_V,current_A"); err != nil {
		return err
	}
	for i := range potential {
		if _, err := fmt.Fprintf(w, "%.6f,%.6e\n", potential[i], current[i]); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIPlot renders an I-V scatter as a text plot (the terminal stand-
// in for Fig. 7). Width and height are the plot body dimensions.
func ASCIIPlot(potential, current []float64, width, height int) string {
	return ASCIIPlotXY(potential, current, width, height, "E/V", "I/A")
}

// ASCIIPlotXY is ASCIIPlot with caller-chosen axis labels (e.g. Re Z /
// −Im Z for a Nyquist plot).
func ASCIIPlotXY(potential, current []float64, width, height int, xlabel, ylabel string) string {
	if len(potential) == 0 || len(potential) != len(current) {
		return "(no data)"
	}
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	minE, maxE := minMax(potential)
	minI, maxI := minMax(current)
	if maxE == minE {
		maxE = minE + 1e-9
	}
	if maxI == minI {
		maxI = minI + 1e-12
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range potential {
		c := int(float64(width-1) * (potential[i] - minE) / (maxE - minE))
		r := int(float64(height-1) * (current[i] - minI) / (maxI - minI))
		row := height - 1 - r // origin at bottom
		if row >= 0 && row < height && c >= 0 && c < width {
			grid[row][c] = '*'
		}
	}
	// Zero-current axis, when it crosses the view.
	if minI < 0 && maxI > 0 {
		r := int(float64(height-1) * (0 - minI) / (maxI - minI))
		row := height - 1 - r
		if row >= 0 && row < height {
			for c := 0; c < width; c++ {
				if grid[row][c] == ' ' {
					grid[row][c] = '-'
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %+.3e\n", ylabel, maxI)
	for _, row := range grid {
		b.WriteString("    |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "     %+.3e\n", minI)
	fmt.Fprintf(&b, "     %s: %.3f .. %.3f\n", xlabel, minE, maxE)
	return b.String()
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if math.IsNaN(x) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	return lo, hi
}
