package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ice/internal/echem"
	"ice/internal/units"
)

func TestMovingAverageConstantSignal(t *testing.T) {
	v := []float64{3, 3, 3, 3, 3}
	out, err := MovingAverage(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o != 3 {
			t.Errorf("out[%d] = %v", i, o)
		}
	}
}

func TestMovingAverageReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 500)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	out, err := MovingAverage(v, 9)
	if err != nil {
		t.Fatal(err)
	}
	if NoiseRMS(out) >= NoiseRMS(v)/2 {
		t.Errorf("window-9 average only reduced noise %v → %v", NoiseRMS(v), NoiseRMS(out))
	}
}

func TestMovingAverageValidation(t *testing.T) {
	if _, err := MovingAverage([]float64{1}, 2); err == nil {
		t.Error("even window accepted")
	}
	if _, err := MovingAverage([]float64{1}, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestSavitzkyGolayPreservesQuadratic(t *testing.T) {
	// SG with quadratic fitting reproduces any quadratic exactly in
	// the interior.
	v := make([]float64, 50)
	for i := range v {
		x := float64(i)
		v[i] = 2*x*x - 3*x + 1
	}
	out, err := SavitzkyGolay(v, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < len(v)-3; i++ {
		if math.Abs(out[i]-v[i]) > 1e-9 {
			t.Fatalf("SG distorted quadratic at %d: %v vs %v", i, out[i], v[i])
		}
	}
}

func TestSavitzkyGolayPreservesPeakBetterThanMA(t *testing.T) {
	// A narrow Gaussian peak plus noise: SG must retain more height
	// than a moving average of the same window.
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 201)
	for i := range v {
		x := float64(i-100) / 8
		v[i] = math.Exp(-0.5*x*x) + rng.NormFloat64()*0.01
	}
	sg, err := SavitzkyGolay(v, 11)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := MovingAverage(v, 11)
	if err != nil {
		t.Fatal(err)
	}
	peak := func(v []float64) float64 {
		best := math.Inf(-1)
		for _, x := range v {
			if x > best {
				best = x
			}
		}
		return best
	}
	if peak(sg) <= peak(ma) {
		t.Errorf("SG peak %v not above MA peak %v", peak(sg), peak(ma))
	}
	if peak(sg) < 0.97 {
		t.Errorf("SG peak %v lost too much height", peak(sg))
	}
}

func TestSavitzkyGolayValidation(t *testing.T) {
	if _, err := SavitzkyGolay(make([]float64, 100), 4); err == nil {
		t.Error("even window accepted")
	}
	if _, err := SavitzkyGolay(make([]float64, 100), 3); err == nil {
		t.Error("window 3 accepted (needs ≥ 5)")
	}
	if _, err := SavitzkyGolay(make([]float64, 3), 5); err == nil {
		t.Error("input shorter than window accepted")
	}
}

func TestNoiseRMSEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 5000)
	for i := range v {
		v[i] = rng.NormFloat64() * 0.05
	}
	got := NoiseRMS(v)
	if math.Abs(got-0.05) > 0.01 {
		t.Errorf("NoiseRMS = %v, want ≈ 0.05", got)
	}
	if NoiseRMS([]float64{1}) != 0 {
		t.Error("single sample should report 0")
	}
}

func TestIntegrateChargeKnownSignal(t *testing.T) {
	// Constant 2 A over 3 s → 6 C.
	times := []float64{0, 1, 2, 3}
	currents := []float64{2, 2, 2, 2}
	q, err := IntegrateCharge(times, currents)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q[3]-6) > 1e-12 {
		t.Errorf("Q(3) = %v, want 6", q[3])
	}
	// Linear ramp i = t over [0,2] → Q = 2.
	times = []float64{0, 0.5, 1, 1.5, 2}
	currents = []float64{0, 0.5, 1, 1.5, 2}
	q, _ = IntegrateCharge(times, currents)
	if math.Abs(q[4]-2) > 1e-12 {
		t.Errorf("ramp Q = %v, want 2", q[4])
	}
}

func TestIntegrateChargeValidation(t *testing.T) {
	if _, err := IntegrateCharge([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := IntegrateCharge([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := IntegrateCharge([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Error("non-monotonic time accepted")
	}
}

func TestAnsonAnalysisRecoversDiffusion(t *testing.T) {
	// Simulate a CA step and confirm the Anson plot returns D.
	cfg := echem.DefaultCell()
	cfg.NoiseRMS = 0
	cfg.UncompensatedResistance = 0
	cfg.DoubleLayerCapacitance = 0
	w, err := echem.StepProgram{
		Rest: units.Volts(0.05), Step: units.Volts(0.9),
		RestSeconds: 0, StepSeconds: 5,
	}.Waveform()
	if err != nil {
		t.Fatal(err)
	}
	vg, err := echem.Simulate(cfg, w, 2000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := AnsonAnalysis(vg.Times(), vg.Currents(), 0.25,
		1, units.SquareCentimeters(0.07), units.Millimolar(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.R2 < 0.999 {
		t.Errorf("Anson r² = %v", s.R2)
	}
	if math.Abs(s.Diffusion-2.4e-9)/2.4e-9 > 0.1 {
		t.Errorf("Anson D = %v, want within 10%% of 2.4e-9", s.Diffusion)
	}
}

func TestAnsonAnalysisValidation(t *testing.T) {
	if _, err := AnsonAnalysis([]float64{0, 1}, []float64{1, 1}, 5,
		1, units.SquareCentimeters(1), units.Millimolar(1)); err == nil {
		t.Error("tMin beyond data accepted")
	}
}

// Property: moving average output stays within the input's bounds.
func TestMovingAverageBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Bound magnitudes so window sums cannot overflow.
			raw[i] = math.Mod(v, 1e6)
		}
		out, err := MovingAverage(raw, 5)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
